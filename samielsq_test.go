package samielsq_test

import (
	"strings"
	"testing"

	"samielsq"
)

func TestBenchmarksList(t *testing.T) {
	bs := samielsq.Benchmarks()
	if len(bs) != 26 {
		t.Fatalf("suite has %d programs, want 26", len(bs))
	}
	if _, err := samielsq.BenchmarkPersonality("swim"); err != nil {
		t.Fatal(err)
	}
	if _, err := samielsq.BenchmarkPersonality("nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestPaperConfigs(t *testing.T) {
	sc := samielsq.PaperSAMIEConfig()
	if sc.Banks != 64 || sc.EntriesPerBank != 2 || sc.SlotsPerEntry != 8 {
		t.Fatalf("Table 3 config wrong: %+v", sc)
	}
	cc := samielsq.PaperCPUConfig()
	if cc.ROBSize != 256 || cc.FetchWidth != 8 {
		t.Fatalf("Table 2 config wrong: %+v", cc)
	}
}

func TestCompareHeadlines(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	r := samielsq.Compare("swim", 50_000)
	if r.IPCLossPct > 5 {
		t.Errorf("swim IPC loss %.2f%% too high", r.IPCLossPct)
	}
	if r.LSQSavingPct < 40 {
		t.Errorf("LSQ saving %.1f%% too low", r.LSQSavingPct)
	}
	if r.DcacheSavingPct < 15 {
		t.Errorf("Dcache saving %.1f%% too low", r.DcacheSavingPct)
	}
	if r.DTLBSavingPct < 30 {
		t.Errorf("DTLB saving %.1f%% too low", r.DTLBSavingPct)
	}
}

func TestStaticArtefacts(t *testing.T) {
	t1 := samielsq.Table1()
	if len(t1.Rows) != 8 {
		t.Fatalf("Table 1 rows = %d", len(t1.Rows))
	}
	if !strings.Contains(t1.String(), "8KB") {
		t.Fatal("Table 1 rendering broken")
	}
	d := samielsq.Delays()
	if len(d.Rows) < 6 || !strings.Contains(d.String(), "SharedLSQ") {
		t.Fatal("delay analysis broken")
	}
	if !strings.Contains(samielsq.Tables456(), "452") {
		t.Fatal("Tables 4/5/6 rendering broken")
	}
}
