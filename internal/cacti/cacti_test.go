package cacti

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeometryValidate(t *testing.T) {
	for _, g := range []Geometry{
		{Rows: 0, Bits: 8, Assoc: 1, Ports: 1},
		{Rows: 8, Bits: 0, Assoc: 1, Ports: 1},
		{Rows: 8, Bits: 8, Assoc: 0, Ports: 1},
		{Rows: 8, Bits: 8, Assoc: 1, Ports: 0},
	} {
		if err := g.Validate(); err == nil {
			t.Errorf("invalid geometry accepted: %+v", g)
		}
	}
}

func TestDelayMonotonicInRows(t *testing.T) {
	tech := Tech100nm()
	prev := 0.0
	for rows := 2; rows <= 512; rows *= 2 {
		d := tech.AccessDelay(Geometry{Rows: rows, Bits: 32, Assoc: 1, Ports: 2, CAM: true})
		if d <= prev {
			t.Fatalf("delay not increasing at %d rows: %v <= %v", rows, d, prev)
		}
		prev = d
	}
}

func TestDelayMonotonicInPorts(t *testing.T) {
	tech := Tech100nm()
	prev := 0.0
	for ports := 1; ports <= 8; ports++ {
		d := tech.AccessDelay(Geometry{Rows: 64, Bits: 32, Assoc: 1, Ports: ports})
		if d <= prev {
			t.Fatalf("delay not increasing at %d ports", ports)
		}
		prev = d
	}
}

func TestCAMSlowerThanRAM(t *testing.T) {
	tech := Tech100nm()
	ram := tech.AccessDelay(Geometry{Rows: 64, Bits: 32, Assoc: 1, Ports: 2})
	cam := tech.AccessDelay(Geometry{Rows: 64, Bits: 32, Assoc: 1, Ports: 2, CAM: true})
	if cam <= ram {
		t.Fatalf("CAM (%v) not slower than RAM (%v)", cam, ram)
	}
	eRAM := tech.AccessEnergy(Geometry{Rows: 64, Bits: 32, Assoc: 1, Ports: 2})
	eCAM := tech.AccessEnergy(Geometry{Rows: 64, Bits: 32, Assoc: 1, Ports: 2, CAM: true})
	if eCAM <= eRAM {
		t.Fatalf("CAM energy (%v) not above RAM (%v)", eCAM, eRAM)
	}
}

func TestPositiveOutputs(t *testing.T) {
	tech := Tech100nm()
	f := func(rows, bits, ports uint8, cam bool) bool {
		g := Geometry{
			Rows:  int(rows%200) + 1,
			Bits:  int(bits%200) + 1,
			Assoc: 1,
			Ports: int(ports%8) + 1,
			CAM:   cam,
		}
		return tech.AccessDelay(g) > 0 && tech.AccessEnergy(g) > 0 && tech.Area(g) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCacheAccessWayKnownNeverSlower(t *testing.T) {
	tech := Tech100nm()
	for _, p := range PaperTable1 {
		d := tech.CacheAccess(p.SizeKB<<10, p.Ways, 32, p.Ports)
		if d.WayKnown > d.Conventional {
			t.Errorf("%dKB %dw %dp: way-known %.3f > conventional %.3f",
				p.SizeKB, p.Ways, p.Ports, d.WayKnown, d.Conventional)
		}
		if d.Conventional <= 0 {
			t.Errorf("non-positive delay for %+v", p)
		}
	}
}

func TestTable1Trends(t *testing.T) {
	tech := Tech100nm()
	// Trend 1: bigger cache is slower (same assoc/ports).
	d8 := tech.CacheAccess(8<<10, 2, 32, 2)
	d32 := tech.CacheAccess(32<<10, 2, 32, 2)
	if d32.Conventional <= d8.Conventional {
		t.Error("32KB not slower than 8KB")
	}
	// Trend 2: more ports are slower.
	d8p4 := tech.CacheAccess(8<<10, 2, 32, 4)
	if d8p4.Conventional <= d8.Conventional {
		t.Error("4 ports not slower than 2 ports")
	}
	// Trend 3 (the paper's key observation): the way-known improvement
	// shrinks as the data path grows; the 8KB 2-way 2-port improvement
	// exceeds the 32KB 4-way 4-port improvement.
	imprSmall := 1 - d8.WayKnown/d8.Conventional
	big := tech.CacheAccess(32<<10, 4, 32, 4)
	imprBig := 1 - big.WayKnown/big.Conventional
	if imprSmall <= imprBig {
		t.Errorf("improvement trend inverted: small %.3f <= big %.3f", imprSmall, imprBig)
	}
}

func TestModelNearPaperAnchors(t *testing.T) {
	tech := Tech100nm()
	within := func(name string, got, want, tol float64) {
		if got < want*(1-tol) || got > want*(1+tol) {
			t.Errorf("%s: model %.3f vs paper %.3f (tolerance %.0f%%)", name, got, want, tol*100)
		}
	}
	// §3.6 anchors within 35% (the model is trend-calibrated, not
	// point-fitted; EXPERIMENTS.md records the exact deltas).
	within("conv 128-entry LSQ", tech.LSQDelay(128, 32, 4), DelayConv128, 0.35)
	within("DistribLSQ bank", tech.LSQDelay(2, 27, 2), DelayDistribCompare, 0.35)
	within("SharedLSQ", tech.LSQDelay(8, 27, 2), DelayShared, 0.35)
	// Table 1 anchors within 45%; more importantly the improvement
	// (conv - known) must track the paper row by row within 7 points
	// of percentage — that pattern is the paper's claim.
	for _, p := range PaperTable1 {
		d := tech.CacheAccess(p.SizeKB<<10, p.Ways, 32, p.Ports)
		within("table1 conv", d.Conventional, p.Conventional, 0.45)
		within("table1 known", d.WayKnown, p.WayKnown, 0.45)
		gotImpr := 1 - d.WayKnown/d.Conventional
		wantImpr := 1 - p.WayKnown/p.Conventional
		if math.Abs(gotImpr-wantImpr) > 0.07 {
			t.Errorf("%dKB %dw %dp: improvement %.1f%% vs paper %.1f%%",
				p.SizeKB, p.Ways, p.Ports, gotImpr*100, wantImpr*100)
		}
	}
}

func TestAreaScaling(t *testing.T) {
	tech := Tech100nm()
	a1 := tech.Area(Geometry{Rows: 64, Bits: 32, Assoc: 1, Ports: 1})
	a2 := tech.Area(Geometry{Rows: 128, Bits: 32, Assoc: 1, Ports: 1})
	if a2 != 2*a1 {
		t.Fatalf("area not linear in rows: %v vs %v", a1, a2)
	}
	ap := tech.Area(Geometry{Rows: 64, Bits: 32, Assoc: 1, Ports: 4})
	if ap <= a1 {
		t.Fatal("ports do not grow area")
	}
}

func TestBusDelayGrowsWithCapacity(t *testing.T) {
	tech := Tech100nm()
	small := tech.BusDelay(16, 32)
	big := tech.BusDelay(1024, 64)
	if big <= small {
		t.Fatalf("bus delay not increasing: %v <= %v", big, small)
	}
}

func TestPublishedConstantsSanity(t *testing.T) {
	// Spot-check the transcription of the paper's tables.
	if ConvLSQ.CmpBase != 452 || ConvLSQ.CmpPerAddr != 3.53 {
		t.Fatal("Table 4 transcription wrong")
	}
	if DistribLSQ.CmpBase != 4.33 || SharedLSQ.CmpBase != 22.7 {
		t.Fatal("Table 5 transcription wrong")
	}
	if DcacheFullAccess != 1009 || DcacheWayKnown != 276 || DTLBAccess != 273 {
		t.Fatal("cache/TLB energies wrong")
	}
	if len(PaperTable1) != 8 {
		t.Fatalf("Table 1 has %d rows, want 8", len(PaperTable1))
	}
	// Paper invariant: way-known never slower, and the 32KB 4-way
	// 4-port row shows zero improvement.
	last := PaperTable1[7]
	if last.Conventional != last.WayKnown {
		t.Fatal("32KB/4w/4p row should show no improvement")
	}
}
