package cacti

import (
	"fmt"
	"math"
)

// This file implements the analytical RC model. It follows the
// component decomposition of Wilton & Jouppi as used by CACTI 3.0 —
// decoder, wordline, bitline, sense amplifier, tag comparator, way
// multiplexer and output driver — with coefficients fitted at 0.10 µm
// against the paper's published anchors (§3.6 delays and Table 1).
//
// The model is intentionally simple: each component delay is an affine
// function of the relevant geometry (rows, columns, associativity) and
// extra ports stretch wires, scaling the wire-dominated terms by a
// port factor. CACTI's internal array partitioning is folded into the
// coefficients.

// Tech holds the technology-dependent coefficients (delays in ns,
// energies in pJ, areas in µm²).
type Tech struct {
	FeatureUM float64 // feature size in µm

	// Delay coefficients.
	DecBase, DecPerLog2Row float64
	WLPerBit               float64
	BLPerRow, BLBase       float64
	Sense                  float64
	CmpBase, CmpPerBit     float64
	MuxPerWay              float64
	OutDrive               float64
	PortWireFactor         float64 // per extra port wire-stretch factor

	// Energy coefficients (per access).
	EFixed, EPerRow, EPerBit float64

	// Area coefficients (per cell, µm²).
	RAMCell, CAMCell float64
	PortAreaFactor   float64 // per extra port linear cell growth
}

// Tech100nm returns the coefficient set fitted at 0.10 µm against the
// paper's anchors.
func Tech100nm() Tech {
	return Tech{
		FeatureUM:      0.10,
		DecBase:        0.060,
		DecPerLog2Row:  0.011,
		WLPerBit:       0.00020,
		BLPerRow:       0.00070,
		BLBase:         0.050,
		Sense:          0.060,
		CmpBase:        0.120,
		CmpPerBit:      0.0120,
		MuxPerWay:      0.050,
		OutDrive:       0.080,
		PortWireFactor: 0.70,
		EFixed:         18.0,
		EPerRow:        0.55,
		EPerBit:        0.095,
		RAMCell:        5.0,
		CAMCell:        9.0,
		PortAreaFactor: 0.45,
	}
}

// Geometry describes one RAM or CAM array.
type Geometry struct {
	Rows  int // entries (sets for a cache)
	Bits  int // bits per row actually read/compared
	Assoc int // ways sharing the row (1 for plain arrays)
	Ports int // read/write ports
	CAM   bool
}

// Validate reports geometry errors.
func (g *Geometry) Validate() error {
	if g.Rows <= 0 || g.Bits <= 0 {
		return fmt.Errorf("cacti: rows and bits must be positive (got %d, %d)", g.Rows, g.Bits)
	}
	if g.Assoc <= 0 {
		return fmt.Errorf("cacti: assoc must be positive")
	}
	if g.Ports <= 0 {
		return fmt.Errorf("cacti: ports must be positive")
	}
	return nil
}

func (t Tech) portFactor(ports int) float64 {
	return 1 + t.PortWireFactor*float64(ports-1)
}

// AccessDelay returns the array access delay in ns: decode + wordline
// + bitline + sense (+ match compare for CAMs) + output drive.
func (t Tech) AccessDelay(g Geometry) float64 {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	pf := t.portFactor(g.Ports)
	d := t.DecBase + t.DecPerLog2Row*math.Log2(float64(g.Rows)+1)
	d += t.WLPerBit * float64(g.Bits) * pf
	d += t.BLBase + t.BLPerRow*float64(g.Rows)*pf
	d += t.Sense
	if g.CAM {
		d += t.CmpBase + t.CmpPerBit*float64(g.Bits)
	}
	d += t.OutDrive
	return d
}

// AccessEnergy returns the dynamic energy of one access in pJ.
func (t Tech) AccessEnergy(g Geometry) float64 {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	pf := t.portFactor(g.Ports)
	e := t.EFixed + t.EPerRow*float64(g.Rows)*pf + t.EPerBit*float64(g.Bits)*pf
	if g.CAM {
		e *= 1.45 // match-line precharge overhead
	}
	return e * pf
}

// Area returns the array area in µm².
func (t Tech) Area(g Geometry) float64 {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	cell := t.RAMCell
	if g.CAM {
		cell = t.CAMCell
	}
	lin := 1 + t.PortAreaFactor*float64(g.Ports-1)
	return cell * lin * lin * float64(g.Rows) * float64(g.Bits)
}

// CacheDelay models a set-associative cache access (Table 1): the
// conventional path is the slower of the data-array path (all ways
// read) and the tag path (tag read + compare + way-select), plus the
// output drive; the way-known path reads a single way with no tag
// work.
type CacheDelay struct {
	Conventional float64
	WayKnown     float64
}

// CacheAccess computes conventional and way-known access delays in ns
// for a cache of the given total size, associativity, line size and
// port count.
func (t Tech) CacheAccess(sizeBytes, ways, lineBytes, ports int) CacheDelay {
	if sizeBytes <= 0 || ways <= 0 || lineBytes <= 0 || ports <= 0 {
		panic("cacti: cache parameters must be positive")
	}
	sets := sizeBytes / (lineBytes * ways)
	if sets < 1 {
		sets = 1
	}
	pf := t.portFactor(ports)
	tagBits := 30 - int(math.Round(math.Log2(float64(sets*lineBytes))))
	if tagBits < 8 {
		tagBits = 8
	}

	dec := t.DecBase + t.DecPerLog2Row*math.Log2(float64(sets)+1)

	// Data side: the ways are read from banked subarrays in parallel
	// and the way-select multiplexer is driven in both access modes
	// (the data of the chosen way must be routed out either way), so
	// higher associativity slows the way-known access too, exactly as
	// in the paper's Table 1.
	convData := dec + t.WLPerBit*float64(lineBytes*8)*pf +
		t.BLBase + t.BLPerRow*float64(sets)*pf + t.Sense +
		t.MuxPerWay*float64(ways)

	// Tag side: tags for all ways read and compared; the match result
	// gates the output driver. The way-known access removes this path
	// entirely, so the improvement is the tag path's overhang over the
	// data path — which shrinks as ports and associativity grow the
	// data path.
	tagBitsAll := tagBits * ways
	tagPath := dec + t.WLPerBit*float64(tagBitsAll)*pf +
		t.BLBase + t.BLPerRow*float64(sets)*pf + t.Sense +
		t.CmpBase + t.CmpPerBit*float64(tagBits)

	conv := math.Max(convData, tagPath) + t.OutDrive
	known := convData + t.OutDrive
	if known > conv {
		known = conv
	}
	return CacheDelay{Conventional: conv, WayKnown: known}
}

// LSQDelay models the paper's §3.6 structures with the analytical
// model: a fully-associative CAM search over addrBits in an array of
// `entries` rows.
func (t Tech) LSQDelay(entries, addrBits, ports int) float64 {
	return t.AccessDelay(Geometry{Rows: entries, Bits: addrBits, Assoc: 1, Ports: ports, CAM: true})
}

// BusDelay models the extra wire delay of broadcasting an address to
// the banks of a structure whose total capacity matches `entries`
// rows of `bits` (§3.6 charges SAMIE-LSQ the bus delay of a 128-entry
// structure of the same total capacity).
func (t Tech) BusDelay(entries, bits int) float64 {
	// Wire delay grows with the perimeter of the laid-out array.
	area := float64(entries*bits) * t.RAMCell
	side := math.Sqrt(area)
	return 0.010 + 0.00012*side
}
