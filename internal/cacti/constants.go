// Package cacti provides the timing, energy and area model for
// memory-like structures, in the spirit of CACTI 3.0 (Shivakumar &
// Jouppi), which the paper uses at 0.10 µm.
//
// Two layers are exposed:
//
//  1. The published constants of the paper (Tables 1, 4, 5, 6 and the
//     §3.6 delays), as the canonical calibrated parameter set. The
//     energy accounting uses these so that the reproduced energy
//     *ratios* (Figures 7–12) match the paper's methodology exactly.
//
//  2. An analytical RC model (model.go) for RAM and CAM arrays that
//     reproduces the paper's *trends* — how delay, energy and area
//     scale with entries, width, associativity and ports — and is used
//     for Table 1 and the §3.6 delay analysis, plus the ablation
//     benches on alternative SAMIE-LSQ geometries.
package cacti

// LSQEnergy is the per-activity energy of an LSQ-like structure, in
// picojoules, following the schema of Tables 4 and 5.
type LSQEnergy struct {
	CmpBase     float64 // address comparison, fixed part
	CmpPerAddr  float64 // address comparison, per address compared
	RWAddr      float64 // read/write one address
	AgeCmpBase  float64 // age-id comparison in one entry, fixed part
	AgeCmpPerID float64 // age-id comparison, per age id compared
	RWAge       float64 // read/write one age id
	RWDatum     float64 // read/write one datum
	RWTLB       float64 // read/write a cached TLB translation
	RWLineID    float64 // read/write a cached cache-line id
}

// Table 4: 128-entry conventional fully-associative LSQ.
var ConvLSQ = LSQEnergy{
	CmpBase:    452,
	CmpPerAddr: 3.53,
	RWAddr:     57.1,
	RWDatum:    93.2,
}

// Table 5: DistribLSQ (per bank: 2 entries x 8 slots).
var DistribLSQ = LSQEnergy{
	CmpBase:     4.33,
	CmpPerAddr:  2.17,
	RWAddr:      4.07,
	AgeCmpBase:  19.4,
	AgeCmpPerID: 1.21,
	RWAge:       1.64,
	RWDatum:     10.9,
	RWTLB:       6.02,
	RWLineID:    0.236,
}

// Table 5: SharedLSQ (8 entries x 8 slots, fully associative).
var SharedLSQ = LSQEnergy{
	CmpBase:     22.7,
	CmpPerAddr:  2.83,
	RWAddr:      6.16,
	AgeCmpBase:  19.4,
	AgeCmpPerID: 2.43,
	RWAge:       1.64,
	RWDatum:     10.9,
	RWTLB:       8.73,
	RWLineID:    0.342,
}

// Table 5: remaining SAMIE-LSQ activity energies (pJ).
const (
	BusSendAddr     = 54.4 // send an address to a DistribLSQ bank
	AddrBufferDatum = 31.6 // read/write a datum in the AddrBuffer
	AddrBufferAgeID = 15.7 // read/write an age id in the AddrBuffer
)

// §4.2: L1 Dcache and DTLB access energies (pJ) for the 8KB 4-way L1.
const (
	DcacheFullAccess = 1009 // conventional access: all ways + tag compare
	DcacheWayKnown   = 276  // single way, no tag compare (§3.4)
	DTLBAccess       = 273  // one DTLB lookup
)

// Table 6: cell areas in µm². The conventional LSQ and the AddrBuffer
// use heavily ported cells; the banked structures use small cells.
type CellAreas struct {
	AddrCAM float64
	AgeCAM  float64
	Datum   float64
	TLB     float64
	LineID  float64
}

// Areas per structure, from Table 6.
var (
	ConvAreas       = CellAreas{AddrCAM: 28, Datum: 20}
	DistribAreas    = CellAreas{AddrCAM: 10, AgeCAM: 10, Datum: 6, TLB: 6, LineID: 6}
	SharedAreas     = CellAreas{AddrCAM: 10, AgeCAM: 10, Datum: 6, TLB: 6, LineID: 6}
	AddrBufferAreas = CellAreas{Datum: 20, AgeCAM: 20} // Table 6 lists both as RAM cells
)

// §3.6: structure delays in ns at 0.10 µm.
const (
	DelayDistribBus     = 0.124 // send an address to a bank
	DelayDistribCompare = 0.590 // compare line addresses within a bank
	DelayDistribTotal   = 0.714
	DelayShared         = 0.617
	DelayAddrBuffer     = 0.319
	DelayConv128        = 0.881 // 128-entry conventional LSQ
)

// Table1Row is one row of the paper's Table 1 (cache access times).
type Table1Row struct {
	SizeKB       int
	Ways         int
	Ports        int
	Conventional float64 // ns
	WayKnown     float64 // ns ("physical line known")
}

// PaperTable1 reproduces the published Table 1 values (32-byte lines).
var PaperTable1 = []Table1Row{
	{8, 2, 2, 0.865, 0.700},
	{8, 2, 4, 1.014, 0.875},
	{8, 4, 2, 1.008, 0.878},
	{8, 4, 4, 1.307, 1.266},
	{32, 2, 2, 1.195, 1.092},
	{32, 2, 4, 1.551, 1.490},
	{32, 4, 2, 1.194, 1.165},
	{32, 4, 4, 1.693, 1.693},
}
