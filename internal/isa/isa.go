// Package isa defines the trace-driven micro-operation representation
// consumed by the cycle-level CPU model.
//
// The simulator is a timing model in the spirit of SimpleScalar's
// sim-outorder: it does not execute program semantics, it replays a
// dynamic instruction stream annotated with everything timing needs —
// instruction class, register operands, effective addresses for memory
// operations and outcomes for branches.
package isa

import "fmt"

// Class enumerates micro-op classes with distinct timing behaviour.
type Class uint8

// Instruction classes. Latencies and functional-unit bindings live in
// the cpu package (Table 2 of the paper).
const (
	ClassNop    Class = iota // no functional unit, retires immediately after issue
	ClassIntALU              // 1-cycle integer ALU op
	ClassIntMul              // 3-cycle integer multiply
	ClassIntDiv              // 20-cycle non-pipelined integer divide
	ClassFPALU               // 2-cycle FP add/sub/cmp
	ClassFPMul               // 4-cycle FP multiply
	ClassFPDiv               // 12-cycle non-pipelined FP divide
	ClassLoad                // memory load
	ClassStore               // memory store
	ClassBranch              // conditional branch
	numClasses
)

// NumClasses is the number of distinct instruction classes.
const NumClasses = int(numClasses)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassNop:
		return "nop"
	case ClassIntALU:
		return "ialu"
	case ClassIntMul:
		return "imul"
	case ClassIntDiv:
		return "idiv"
	case ClassFPALU:
		return "falu"
	case ClassFPMul:
		return "fmul"
	case ClassFPDiv:
		return "fdiv"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// IsMem reports whether the class is a memory operation.
func (c Class) IsMem() bool { return c == ClassLoad || c == ClassStore }

// IsFP reports whether the class executes on the FP cluster.
func (c Class) IsFP() bool {
	return c == ClassFPALU || c == ClassFPMul || c == ClassFPDiv
}

// NumLogicalRegs is the size of the logical register space used by the
// trace generator (shared INT+FP namespace; the CPU model tracks
// dependences, not values, so a single namespace suffices).
const NumLogicalRegs = 64

// RegNone marks an absent register operand.
const RegNone int16 = -1

// Inst is one dynamic micro-operation of the trace.
type Inst struct {
	Seq uint64 // dynamic sequence number, 0-based
	PC  uint64 // instruction address (for branch prediction indexing)
	Cls Class

	// Register operands; RegNone if unused. Dest is written, SrcA/SrcB
	// are read. For stores, SrcA is the address base and SrcB the data.
	Dest, SrcA, SrcB int16

	// Memory operations.
	Addr uint64 // effective virtual address
	Size uint8  // access size in bytes (1, 2, 4, 8)

	// Branches.
	Taken  bool
	Target uint64
}

// LineAddr returns the cache-line address of the access for the given
// line size (which must be a power of two).
func (in *Inst) LineAddr(lineBytes uint64) uint64 {
	return in.Addr &^ (lineBytes - 1)
}

// Validate performs basic structural checks, returning a descriptive
// error for malformed trace records. It is used by trace tests and by
// the CPU front-end in debug builds.
func (in *Inst) Validate() error {
	if int(in.Cls) >= NumClasses {
		return fmt.Errorf("isa: inst %d has invalid class %d", in.Seq, in.Cls)
	}
	if in.Cls.IsMem() {
		switch in.Size {
		case 1, 2, 4, 8:
		default:
			return fmt.Errorf("isa: mem inst %d has invalid size %d", in.Seq, in.Size)
		}
		if in.Addr == 0 {
			return fmt.Errorf("isa: mem inst %d has zero address", in.Seq)
		}
	}
	for _, r := range [...]int16{in.Dest, in.SrcA, in.SrcB} {
		if r != RegNone && (r < 0 || r >= NumLogicalRegs) {
			return fmt.Errorf("isa: inst %d has invalid register %d", in.Seq, r)
		}
	}
	return nil
}

// Stream is a source of dynamic instructions. Next returns false when
// the stream is exhausted. Implementations must be deterministic for a
// given construction so that simulations are reproducible.
type Stream interface {
	Next(out *Inst) bool
}

// SliceStream adapts a pre-built slice of instructions to the Stream
// interface; used heavily in tests.
type SliceStream struct {
	insts []Inst
	pos   int
}

// NewSliceStream returns a Stream replaying insts in order. Sequence
// numbers are rewritten to be consecutive from 0.
func NewSliceStream(insts []Inst) *SliceStream {
	cp := make([]Inst, len(insts))
	copy(cp, insts)
	for i := range cp {
		cp[i].Seq = uint64(i)
	}
	return &SliceStream{insts: cp}
}

// Next implements Stream.
func (s *SliceStream) Next(out *Inst) bool {
	if s.pos >= len(s.insts) {
		return false
	}
	*out = s.insts[s.pos]
	s.pos++
	return true
}

// Reset rewinds the stream to the beginning.
func (s *SliceStream) Reset() { s.pos = 0 }

// Len returns the total number of instructions in the stream.
func (s *SliceStream) Len() int { return len(s.insts) }
