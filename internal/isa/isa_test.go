package isa

import (
	"strings"
	"testing"
)

func TestClassPredicates(t *testing.T) {
	mem := map[Class]bool{ClassLoad: true, ClassStore: true}
	fp := map[Class]bool{ClassFPALU: true, ClassFPMul: true, ClassFPDiv: true}
	for c := Class(0); int(c) < NumClasses; c++ {
		if c.IsMem() != mem[c] {
			t.Errorf("%v.IsMem() = %v", c, c.IsMem())
		}
		if c.IsFP() != fp[c] {
			t.Errorf("%v.IsFP() = %v", c, c.IsFP())
		}
	}
}

func TestClassString(t *testing.T) {
	for c := Class(0); int(c) < NumClasses; c++ {
		s := c.String()
		if s == "" || strings.HasPrefix(s, "class(") {
			t.Errorf("class %d has no name: %q", c, s)
		}
	}
	if s := Class(200).String(); !strings.HasPrefix(s, "class(") {
		t.Errorf("invalid class string = %q", s)
	}
}

func TestLineAddr(t *testing.T) {
	in := Inst{Addr: 0x1234}
	if got := in.LineAddr(32); got != 0x1220 {
		t.Fatalf("LineAddr = %#x, want 0x1220", got)
	}
	if got := in.LineAddr(64); got != 0x1200 {
		t.Fatalf("LineAddr(64) = %#x, want 0x1200", got)
	}
}

func TestValidate(t *testing.T) {
	good := Inst{Cls: ClassLoad, Addr: 0x1000, Size: 4, Dest: 1, SrcA: 2, SrcB: RegNone}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid inst rejected: %v", err)
	}
	cases := []Inst{
		{Cls: Class(100)},                            // bad class
		{Cls: ClassLoad, Addr: 0x1000, Size: 3},      // bad size
		{Cls: ClassStore, Addr: 0, Size: 4},          // zero address
		{Cls: ClassIntALU, Dest: 127, SrcA: RegNone}, // bad register
		{Cls: ClassIntALU, Dest: RegNone, SrcA: -2},  // bad register
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid inst accepted: %+v", i, c)
		}
	}
}

func TestSliceStream(t *testing.T) {
	insts := []Inst{
		{Seq: 99, Cls: ClassIntALU},
		{Seq: 7, Cls: ClassLoad, Addr: 0x1000, Size: 4},
	}
	s := NewSliceStream(insts)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	var out Inst
	if !s.Next(&out) || out.Seq != 0 || out.Cls != ClassIntALU {
		t.Fatalf("first = %+v", out)
	}
	if !s.Next(&out) || out.Seq != 1 || out.Cls != ClassLoad {
		t.Fatalf("second = %+v", out)
	}
	if s.Next(&out) {
		t.Fatal("stream should be exhausted")
	}
	s.Reset()
	if !s.Next(&out) || out.Seq != 0 {
		t.Fatal("reset failed")
	}
	// The constructor must not alias the caller's slice.
	insts[0].Cls = ClassStore
	s.Reset()
	s.Next(&out)
	if out.Cls != ClassIntALU {
		t.Fatal("SliceStream aliases caller slice")
	}
}
