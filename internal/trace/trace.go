// Package trace generates deterministic synthetic instruction streams
// that stand in for the SPEC CPU2000 workloads of the paper.
//
// The SAMIE-LSQ evaluation depends on the *structure* of each
// program's dynamic memory reference stream — how many in-flight
// memory instructions share a cache line, how line addresses spread
// over the DistribLSQ banks, how much LSQ capacity the program needs —
// plus the instruction mix and branch behaviour that set the baseline
// IPC. This package models exactly those properties.
//
// Each of the 26 SPEC2000 programs is given a Personality: a parameter
// set calibrated to the qualitative facts the paper reports per
// benchmark (see DESIGN.md §1). Streams are seeded from the benchmark
// name, so every simulation in this repository is bit-reproducible.
package trace

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"samielsq/internal/isa"
)

// Params configures a synthetic workload generator.
type Params struct {
	Name string // benchmark name (also the default seed source)
	Seed int64  // if zero, derived from Name
	FP   bool   // floating-point program (affects compute-op classes)

	// Instruction mix: fractions of the dynamic stream. The remainder
	// after loads, stores and branches is compute (INT or FP per FP and
	// MulFrac/DivFrac).
	LoadFrac   float64
	StoreFrac  float64
	BranchFrac float64
	MulFrac    float64 // fraction of compute ops that are multiplies
	DivFrac    float64 // fraction of compute ops that are divides

	// Memory reference stream structure.
	Streams     int     // number of concurrent sequential streams
	StrideBytes uint64  // distance between consecutive lines of a stream
	RunLen      int     // accesses issued to a line before advancing
	RandFrac    float64 // fraction of accesses to random working-set addresses
	Revisit     float64 // probability of re-touching one of the last lines
	WorkingSet  uint64  // bytes, bounds random accesses
	AccessSize  uint8   // bytes per access (4 or 8)

	// BankSpread > 0 pins the streams into exactly BankSpread distinct
	// DistribLSQ banks (assuming 64 banks and 32-byte lines): stream i
	// starts i%BankSpread lines into a region and StrideBytes must then
	// be a multiple of 64 lines so every access of the stream stays in
	// its starting bank. This models the paper's observation that some
	// FP programs (ammp, apsi, art, facerec, mgrid) concentrate their
	// in-flight lines in very few banks. BankSpread == 0 uses natural
	// spacing, spreading streams evenly.
	BankSpread int

	// Branch behaviour.
	StaticBranches   int     // size of the static branch pool
	RandomBranchFrac float64 // fraction of branch instances with random outcome
	TakenBias        float64 // P(taken) for random-outcome branches

	// CodeBytes bounds the instruction-address footprint (the "loop
	// body"): fetch PCs wrap within it, so it controls L1 I-cache and
	// ITLB pressure. Zero means 16 KiB.
	CodeBytes uint64

	// Register dependences: each source register is drawn from the
	// last-writer history with geometric distance; higher DepGeom means
	// tighter chains and less ILP.
	DepGeom float64

	// FarSrcFrac is the probability that a source operand is a
	// long-dead value (loop invariant, base pointer, constant-like):
	// such operands are almost always ready, providing the
	// instruction-level parallelism real programs exhibit.
	FarSrcFrac float64
}

// Validate reports a descriptive error for out-of-range parameters.
func (p *Params) Validate() error {
	sum := p.LoadFrac + p.StoreFrac + p.BranchFrac
	if sum >= 1.0 {
		return fmt.Errorf("trace: %s: load+store+branch fractions %.2f >= 1", p.Name, sum)
	}
	for _, f := range [...]struct {
		n string
		v float64
	}{
		{"LoadFrac", p.LoadFrac}, {"StoreFrac", p.StoreFrac},
		{"BranchFrac", p.BranchFrac}, {"MulFrac", p.MulFrac},
		{"DivFrac", p.DivFrac}, {"RandFrac", p.RandFrac},
		{"Revisit", p.Revisit}, {"RandomBranchFrac", p.RandomBranchFrac},
		{"TakenBias", p.TakenBias},
		{"FarSrcFrac", p.FarSrcFrac},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("trace: %s: %s=%v out of [0,1]", p.Name, f.n, f.v)
		}
	}
	if p.Streams <= 0 {
		return fmt.Errorf("trace: %s: Streams must be positive", p.Name)
	}
	if p.RunLen <= 0 {
		return fmt.Errorf("trace: %s: RunLen must be positive", p.Name)
	}
	if p.StrideBytes == 0 {
		return fmt.Errorf("trace: %s: StrideBytes must be positive", p.Name)
	}
	if p.WorkingSet < 4096 {
		return fmt.Errorf("trace: %s: WorkingSet too small", p.Name)
	}
	switch p.AccessSize {
	case 1, 2, 4, 8:
	default:
		return fmt.Errorf("trace: %s: AccessSize %d invalid", p.Name, p.AccessSize)
	}
	if p.StaticBranches <= 0 {
		return fmt.Errorf("trace: %s: StaticBranches must be positive", p.Name)
	}
	if p.BankSpread < 0 {
		return fmt.Errorf("trace: %s: BankSpread must be >= 0", p.Name)
	}
	if p.BankSpread > 0 && p.StrideBytes%(64*LineBytes) != 0 {
		return fmt.Errorf("trace: %s: BankSpread requires StrideBytes to be a multiple of %d", p.Name, 64*LineBytes)
	}
	if p.DepGeom <= 0 || p.DepGeom >= 1 {
		return fmt.Errorf("trace: %s: DepGeom=%v out of (0,1)", p.Name, p.DepGeom)
	}
	return nil
}

// seedFor derives a stable 63-bit seed from a benchmark name.
func seedFor(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// stream is one sequential reference stream.
type stream struct {
	base    uint64
	lineIdx uint64
	inRun   int
}

// branchSite is one static branch with a deterministic local pattern
// and a fixed target (so the BTB can learn it).
type branchSite struct {
	pc     uint64
	target uint64
	period int // taken (period-1) times, then not taken once; 0 = random
	count  int
}

// Generator produces a deterministic instruction stream per Params.
// It implements isa.Stream.
type Generator struct {
	p        Params
	rng      *rand.Rand
	seq      uint64
	pc       uint64
	streams  []stream
	branches []branchSite
	recent   []uint64 // ring of recently touched line addresses
	recentN  int
	lastW    [isa.NumLogicalRegs]int16 // ring of recently written regs
	lastWLen int
	nextDest int16
	lineMask uint64
}

// LineBytes is the cache line size assumed by the generators; it
// matches the paper's 32-byte L1 lines.
const LineBytes = 32

// NewGenerator builds a generator for the given parameters. It panics
// on invalid parameters (programming error); use Params.Validate to
// check data-driven configurations first.
func NewGenerator(p Params) *Generator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	seed := p.Seed
	if seed == 0 {
		seed = seedFor(p.Name)
	}
	if p.CodeBytes == 0 {
		p.CodeBytes = 16 << 10
	}
	g := &Generator{
		p:        p,
		rng:      rand.New(rand.NewSource(seed)),
		pc:       0x120000000, // Alpha-style text base
		recent:   make([]uint64, 16),
		lineMask: ^(uint64(LineBytes) - 1),
	}
	// Give streams distinct bases spread over a large virtual region so
	// different streams touch different pages and lines. Base spacing is
	// offset by one line per stream so that, with bank-aliasing strides,
	// distinct streams can still start in distinct banks when desired.
	g.streams = make([]stream, p.Streams)
	for i := range g.streams {
		if p.BankSpread > 0 {
			// Pin stream i to bank i%BankSpread: regions are 1 MiB apart
			// (a multiple of 64 lines, so bank-preserving) and the
			// in-region offset selects the bank.
			g.streams[i].base = 0x200000000 +
				uint64(i%p.BankSpread)*LineBytes +
				uint64(i/p.BankSpread)*0x100000
		} else {
			g.streams[i].base = 0x200000000 + uint64(i)*(p.WorkingSet/uint64(p.Streams)+LineBytes)
		}
	}
	g.branches = make([]branchSite, p.StaticBranches)
	for i := range g.branches {
		// Branch sites live inside the code footprint, with fixed
		// backward targets, like loop back-edges.
		g.branches[i].pc = 0x120000000 + (uint64(i)*257*4)%p.CodeBytes
		back := uint64(4 + g.rng.Intn(64)*4)
		if back > g.branches[i].pc-0x120000000 {
			back = g.branches[i].pc - 0x120000000
		}
		g.branches[i].target = g.branches[i].pc - back
		if g.rng.Float64() < p.RandomBranchFrac {
			g.branches[i].period = 0 // random outcome
		} else {
			g.branches[i].period = 6 + g.rng.Intn(42) // loop-like pattern
		}
	}
	for i := range g.lastW {
		g.lastW[i] = int16(i % isa.NumLogicalRegs)
	}
	g.lastWLen = 8
	return g
}

// Params returns the generator's parameters (a copy).
func (g *Generator) Params() Params { return g.p }

// hotRegs is the number of registers used as round-robin destinations
// (the actively renamed values); the remaining registers hold
// long-lived values (base pointers, loop invariants) that are almost
// never in flight — the source of real programs' ILP.
const hotRegs = 24

// srcReg draws a source register: either a far (long-ready) operand
// from the cold registers or one at a geometric dependence distance
// from the most recent writes.
func (g *Generator) srcReg() int16 {
	if g.rng.Float64() < g.p.FarSrcFrac {
		return g.coldReg()
	}
	dist := 1
	for g.rng.Float64() < g.p.DepGeom && dist < g.lastWLen {
		dist++
	}
	idx := (int(g.nextDest) - dist + hotRegs) % hotRegs
	return int16(idx)
}

// coldReg picks a long-lived register.
func (g *Generator) coldReg() int16 {
	return int16(hotRegs + g.rng.Intn(isa.NumLogicalRegs-hotRegs))
}

// memAddrReg picks the address-base register of a memory operation:
// predominantly a long-lived base pointer (array base, stack pointer),
// occasionally a freshly computed value (indexed/pointer-chasing
// accesses). mcf-style personalities raise DepGeom, which lowers the
// cold fraction here. Store addresses are even more often
// base-relative than load addresses; this matters because under the
// conservative readyBit scheme one slow store address blocks every
// younger load.
func (g *Generator) memAddrReg(isStore bool) int16 {
	coldP := 0.8 - 0.4*g.p.DepGeom
	if isStore {
		coldP = 0.95 - 0.2*g.p.DepGeom
	}
	if g.rng.Float64() < coldP {
		return g.coldReg()
	}
	return g.srcReg()
}

// destReg allocates the next destination register round-robin over the
// hot set, keeping WAW pressure low so dependences are dominated by
// RAW via srcReg. Occasionally a cold register is refreshed.
func (g *Generator) destReg() int16 {
	if g.rng.Float64() < 0.02 {
		return g.coldReg()
	}
	d := g.nextDest
	g.nextDest = (g.nextDest + 1) % hotRegs
	if g.lastWLen < hotRegs {
		g.lastWLen++
	}
	return d
}

// nextAddr produces the next memory effective address.
func (g *Generator) nextAddr() uint64 {
	// Temporal revisit of a recently touched line.
	if g.recentN > 0 && g.rng.Float64() < g.p.Revisit {
		line := g.recent[g.rng.Intn(min(g.recentN, len(g.recent)))]
		return line + uint64(g.rng.Intn(LineBytes/int(g.p.AccessSize)))*uint64(g.p.AccessSize)
	}
	// Random working-set access.
	if g.rng.Float64() < g.p.RandFrac {
		off := (g.rng.Uint64() % g.p.WorkingSet) &^ (uint64(g.p.AccessSize) - 1)
		addr := 0x200000000 + off
		g.remember(addr & g.lineMask)
		return addr
	}
	// Sequential stream access.
	s := &g.streams[g.rng.Intn(len(g.streams))]
	line := s.base + s.lineIdx*g.p.StrideBytes
	off := uint64(s.inRun%g.p.RunLen) * uint64(g.p.AccessSize) % LineBytes
	s.inRun++
	if s.inRun >= g.p.RunLen {
		s.inRun = 0
		s.lineIdx++
		// Wrap the stream within its share of the working set so the
		// footprint stays bounded.
		span := g.p.WorkingSet / uint64(len(g.streams))
		if span < g.p.StrideBytes {
			span = g.p.StrideBytes
		}
		if s.lineIdx*g.p.StrideBytes >= span {
			s.lineIdx = 0
		}
	}
	addr := line + off
	g.remember(addr & g.lineMask)
	return addr
}

func (g *Generator) remember(line uint64) {
	g.recent[g.recentN%len(g.recent)] = line
	g.recentN++
}

// Next implements isa.Stream.
func (g *Generator) Next(out *isa.Inst) bool {
	*out = isa.Inst{Seq: g.seq, PC: g.pc, Dest: isa.RegNone, SrcA: isa.RegNone, SrcB: isa.RegNone}
	g.seq++
	g.pc += 4
	if g.pc >= 0x120000000+g.p.CodeBytes {
		g.pc = 0x120000000 // wrap within the code footprint
	}

	r := g.rng.Float64()
	switch {
	case r < g.p.LoadFrac:
		out.Cls = isa.ClassLoad
		out.Addr = g.nextAddr()
		out.Size = g.p.AccessSize
		out.SrcA = g.memAddrReg(false)
		out.Dest = g.destReg()
	case r < g.p.LoadFrac+g.p.StoreFrac:
		out.Cls = isa.ClassStore
		out.Addr = g.nextAddr()
		out.Size = g.p.AccessSize
		out.SrcA = g.memAddrReg(true)
		out.SrcB = g.srcReg()
	case r < g.p.LoadFrac+g.p.StoreFrac+g.p.BranchFrac:
		b := &g.branches[g.rng.Intn(len(g.branches))]
		out.Cls = isa.ClassBranch
		out.PC = b.pc
		// Branch conditions mostly compare induction variables or
		// other quickly available values, so they resolve fast.
		if g.rng.Float64() < 0.75 {
			out.SrcA = g.coldReg()
		} else {
			out.SrcA = g.srcReg()
		}
		if b.period == 0 {
			out.Taken = g.rng.Float64() < g.p.TakenBias
		} else {
			b.count++
			out.Taken = b.count%b.period != 0
		}
		out.Target = b.target
	default:
		c := g.rng.Float64()
		switch {
		case c < g.p.DivFrac:
			if g.p.FP {
				out.Cls = isa.ClassFPDiv
			} else {
				out.Cls = isa.ClassIntDiv
			}
		case c < g.p.DivFrac+g.p.MulFrac:
			if g.p.FP {
				out.Cls = isa.ClassFPMul
			} else {
				out.Cls = isa.ClassIntMul
			}
		default:
			if g.p.FP && g.rng.Float64() < 0.7 {
				out.Cls = isa.ClassFPALU
			} else {
				out.Cls = isa.ClassIntALU
			}
		}
		out.SrcA = g.srcReg()
		out.SrcB = g.srcReg()
		out.Dest = g.destReg()
	}
	return true
}

// Generate materialises n instructions into a slice (handy for tests
// and for replaying the identical stream into several simulators).
func Generate(p Params, n int) []isa.Inst {
	g := NewGenerator(p)
	out := make([]isa.Inst, n)
	for i := range out {
		g.Next(&out[i])
	}
	return out
}

// Benchmarks returns the 26 SPEC2000 program names in the paper's
// (alphabetical) order. The adversarial stress workloads are not
// included (see AdversarialBenchmarks); the paper suite is exactly
// these 26.
func Benchmarks() []string {
	names := make([]string, 0, len(personalities))
	for n := range personalities {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AdversarialBenchmarks returns the names of the adversarial stress
// personalities, sorted. They resolve through Personality like the
// SPEC programs but never join the default suite.
func AdversarialBenchmarks() []string {
	names := make([]string, 0, len(adversarialPersonalities))
	for n := range adversarialPersonalities {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Personality returns the calibrated parameters for a benchmark name —
// the 26 SPEC2000 programs or an adversarial workload — or an error
// for unknown names.
func Personality(name string) (Params, error) {
	if p, ok := personalities[name]; ok {
		return p, nil
	}
	if p, ok := adversarialPersonalities[name]; ok {
		return p, nil
	}
	return Params{}, fmt.Errorf("trace: unknown benchmark %q", name)
}

// MustPersonality is Personality, panicking on unknown names.
func MustPersonality(name string) Params {
	p, err := Personality(name)
	if err != nil {
		panic(err)
	}
	return p
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
