package trace

import (
	"sync"
	"testing"

	"samielsq/internal/isa"
)

func TestSlabMatchesGenerator(t *testing.T) {
	p := MustPersonality("gzip")
	g := NewGenerator(p)
	ss := NewSlab(p).Stream()
	var a, b isa.Inst
	for i := 0; i < 40_000; i++ {
		if !g.Next(&a) || !ss.Next(&b) {
			t.Fatal("stream ended")
		}
		if a != b {
			t.Fatalf("inst %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestSlabConcurrentStreams(t *testing.T) {
	p := MustPersonality("swim")
	slab := NewSlab(p)
	want := Generate(p, 20_000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ss := slab.Stream()
			var in isa.Inst
			for i := range want {
				ss.Next(&in)
				if in != want[i] {
					t.Errorf("inst %d differs under concurrency", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestSharedStreamCacheAndEviction(t *testing.T) {
	prev := SetSlabCacheLimit(1) // bytes: evict on every new personality
	defer SetSlabCacheLimit(prev)

	s1 := SharedStream(MustPersonality("gzip"))
	var in isa.Inst
	for i := 0; i < slabChunk; i++ {
		s1.Next(&in) // materialize beyond the 1-byte budget
	}
	SharedStream(MustPersonality("swim")) // must evict gzip's slab
	if n := SlabCacheLen(); n > 2 {
		t.Fatalf("slab cache holds %d entries over a 1-byte budget", n)
	}
	// The evicted slab's stream keeps working.
	for i := 0; i < 100; i++ {
		if !s1.Next(&in) {
			t.Fatal("stream over evicted slab ended")
		}
	}
	// And a re-acquired stream still replays the identical prefix.
	s2 := SharedStream(MustPersonality("gzip"))
	want := Generate(MustPersonality("gzip"), 1000)
	for i := range want {
		s2.Next(&in)
		if in != want[i] {
			t.Fatalf("re-acquired stream diverged at %d", i)
		}
	}
}

// TestSlabStreamNextZeroAlloc guards the trace side of the hot path.
func TestSlabStreamNextZeroAlloc(t *testing.T) {
	ss := SharedStream(MustPersonality("gzip"))
	var in isa.Inst
	for i := 0; i < slabChunk; i++ {
		ss.Next(&in) // materialize the first chunks
	}
	fresh := NewSlab(MustPersonality("gzip")).Stream()
	for i := 0; i < 2*slabChunk; i++ {
		fresh.Next(&in)
	}
	pos := 0
	if n := testing.AllocsPerRun(10, func() {
		for i := 0; i < 1000; i++ {
			fresh.Next(&in)
			pos++
		}
	}); n > 1 { // amortized: an occasional chunk extension is one append
		t.Errorf("SlabStream.Next allocates %.1f per 1000 (amortized budget 1)", n)
	}
}

// TestGeneratorNextZeroAlloc pins Generator.Next itself as
// allocation-free.
func TestGeneratorNextZeroAlloc(t *testing.T) {
	g := NewGenerator(MustPersonality("mcf"))
	var in isa.Inst
	for i := 0; i < 1000; i++ {
		g.Next(&in)
	}
	if n := testing.AllocsPerRun(10, func() {
		for i := 0; i < 1000; i++ {
			g.Next(&in)
		}
	}); n > 0 {
		t.Errorf("Generator.Next allocates %.1f per 1000 insts, want 0", n)
	}
}

func BenchmarkHotPathTraceNext(b *testing.B) {
	g := NewGenerator(MustPersonality("gzip"))
	var in isa.Inst
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next(&in)
	}
}

func BenchmarkHotPathSlabNext(b *testing.B) {
	ss := NewSlab(MustPersonality("gzip")).Stream()
	var in isa.Inst
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss.Next(&in)
	}
}
