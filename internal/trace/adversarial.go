package trace

// Adversarial stress personalities beyond the paper's 26 SPEC CPU2000
// programs. They are deliberately kept out of Benchmarks() — the
// paper-suite figures, goldens and default sweeps stay exactly the
// SPEC set — but resolve through Personality like any other workload,
// so every harness, the HTTP service and the cluster CLI accept them
// by name (e.g. `-bench pointer-chaser,store-burst`, or the
// "adversarial" scenario-registry entry).
var adversarialPersonalities = map[string]Params{
	// pointer-chaser: a worst case for memory-level parallelism. One
	// stream of almost entirely random, dependence-chained loads over a
	// working set far beyond any cache: each address comes from the
	// previous load (DepGeom near 1, almost no far operands), runs are
	// a single access, and lines are essentially never revisited — so
	// the LSQ sees one long serial chain with near-zero line sharing,
	// the regime where the PR 2 issue-walk cost dominates and SAMIE's
	// multi-instruction entries help least.
	"pointer-chaser": func() Params {
		p := intBase("pointer-chaser")
		p.LoadFrac, p.StoreFrac, p.BranchFrac = 0.40, 0.04, 0.10
		p.Streams = 1
		p.RunLen = 1
		p.RandFrac = 0.95
		p.Revisit = 0.02
		p.WorkingSet = 32 << 20
		p.AccessSize = 8
		p.DepGeom = 0.92
		p.FarSrcFrac = 0.02
		return p
	}(),
	// store-burst: a store-dominated streaming mix (log writers,
	// checkpointing, memset-heavy phases). Many concurrent unit-stride
	// streams with long per-line runs and stores outnumbering loads
	// two to one: maximal pressure on store slots, forwarding and
	// commit-time line turnover, with plenty of ILP to keep the bursts
	// back to back.
	"store-burst": func() Params {
		p := intBase("store-burst")
		p.LoadFrac, p.StoreFrac, p.BranchFrac = 0.16, 0.32, 0.08
		p.Streams = 12
		p.RunLen = 8
		p.RandFrac = 0.04
		p.Revisit = 0.10
		p.WorkingSet = 1 << 20
		p.DepGeom = 0.30
		p.FarSrcFrac = 0.65
		return p
	}(),
}
