package trace

import (
	"math"
	"testing"

	"samielsq/internal/isa"
)

func TestAllPersonalitiesValid(t *testing.T) {
	names := Benchmarks()
	if len(names) != 26 {
		t.Fatalf("suite has %d benchmarks, want 26", len(names))
	}
	for _, n := range names {
		p := MustPersonality(n)
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", n, err)
		}
		if p.Name != n {
			t.Errorf("%s: Name field is %q", n, p.Name)
		}
	}
}

func TestPersonalityUnknown(t *testing.T) {
	if _, err := Personality("nonesuch"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustPersonality should panic on unknown names")
		}
	}()
	MustPersonality("nonesuch")
}

func TestDeterminism(t *testing.T) {
	a := Generate(MustPersonality("gzip"), 5000)
	b := Generate(MustPersonality("gzip"), 5000)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDistinctSeeds(t *testing.T) {
	a := Generate(MustPersonality("gzip"), 1000)
	b := Generate(MustPersonality("bzip2"), 1000)
	same := 0
	for i := range a {
		if a[i].Cls == b[i].Cls && a[i].Addr == b[i].Addr {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different benchmarks generated identical streams")
	}
}

func TestInstructionMix(t *testing.T) {
	p := MustPersonality("gzip")
	const n = 60000
	insts := Generate(p, n)
	var loads, stores, branches int
	for i := range insts {
		switch insts[i].Cls {
		case isa.ClassLoad:
			loads++
		case isa.ClassStore:
			stores++
		case isa.ClassBranch:
			branches++
		}
	}
	check := func(name string, got int, want float64) {
		frac := float64(got) / n
		if math.Abs(frac-want) > 0.02 {
			t.Errorf("%s fraction %.3f, want %.3f ± 0.02", name, frac, want)
		}
	}
	check("load", loads, p.LoadFrac)
	check("store", stores, p.StoreFrac)
	check("branch", branches, p.BranchFrac)
}

func TestValidInstructions(t *testing.T) {
	for _, b := range []string{"gzip", "ammp", "mcf", "swim"} {
		insts := Generate(MustPersonality(b), 20000)
		for i := range insts {
			if err := insts[i].Validate(); err != nil {
				t.Fatalf("%s: %v", b, err)
			}
			if insts[i].Seq != uint64(i) {
				t.Fatalf("%s: seq %d at position %d", b, insts[i].Seq, i)
			}
		}
	}
}

func TestBankSpreadPinning(t *testing.T) {
	// ammp pins its streams to BankSpread banks; non-random,
	// non-revisit accesses must land in at most BankSpread banks.
	p := MustPersonality("ammp")
	p.RandFrac = 0
	p.Revisit = 0
	insts := Generate(p, 30000)
	banks := map[uint64]bool{}
	for i := range insts {
		if insts[i].Cls.IsMem() {
			banks[(insts[i].Addr/LineBytes)%64] = true
		}
	}
	if len(banks) > p.BankSpread {
		t.Fatalf("ammp streams touch %d banks, want <= %d", len(banks), p.BankSpread)
	}
}

func TestEvenSpreadTouchesManyBanks(t *testing.T) {
	p := MustPersonality("swim")
	insts := Generate(p, 30000)
	banks := map[uint64]bool{}
	for i := range insts {
		if insts[i].Cls.IsMem() {
			banks[(insts[i].Addr/LineBytes)%64] = true
		}
	}
	if len(banks) < 32 {
		t.Fatalf("swim touches only %d banks", len(banks))
	}
}

func TestCodeFootprintWrap(t *testing.T) {
	p := MustPersonality("gzip")
	insts := Generate(p, 100000)
	lo := uint64(0x120000000)
	hi := lo + p.CodeBytes
	if p.CodeBytes == 0 {
		hi = lo + 16<<10
	}
	for i := range insts {
		if insts[i].PC < lo || insts[i].PC >= hi {
			t.Fatalf("PC %#x outside code footprint [%#x, %#x)", insts[i].PC, lo, hi)
		}
	}
}

func TestBranchTargetsStable(t *testing.T) {
	// Each static branch PC must always use the same target so the BTB
	// can learn it.
	insts := Generate(MustPersonality("gzip"), 50000)
	targets := map[uint64]uint64{}
	for i := range insts {
		if insts[i].Cls != isa.ClassBranch {
			continue
		}
		if prev, ok := targets[insts[i].PC]; ok && prev != insts[i].Target {
			t.Fatalf("branch %#x has targets %#x and %#x", insts[i].PC, prev, insts[i].Target)
		}
		targets[insts[i].PC] = insts[i].Target
	}
	if len(targets) == 0 {
		t.Fatal("no branches generated")
	}
}

func TestLineSharing(t *testing.T) {
	// swim (unit-stride, RunLen 8) must exhibit much higher
	// consecutive-window line sharing than mcf (pointer chasing).
	sharing := func(name string) float64 {
		insts := Generate(MustPersonality(name), 40000)
		var mem []uint64
		for i := range insts {
			if insts[i].Cls.IsMem() {
				mem = append(mem, insts[i].Addr&^uint64(LineBytes-1))
			}
		}
		// Count distinct lines per window of 64 memory ops.
		const w = 64
		var windows, totalDistinct int
		for i := 0; i+w <= len(mem); i += w {
			set := map[uint64]bool{}
			for _, l := range mem[i : i+w] {
				set[l] = true
			}
			windows++
			totalDistinct += len(set)
		}
		return float64(w) / (float64(totalDistinct) / float64(windows))
	}
	sw, mc := sharing("swim"), sharing("mcf")
	if sw <= mc {
		t.Fatalf("swim sharing %.2f should exceed mcf sharing %.2f", sw, mc)
	}
	if sw < 2 {
		t.Fatalf("swim sharing %.2f too low for a streaming workload", sw)
	}
}

func TestParamsValidate(t *testing.T) {
	base := MustPersonality("gzip")
	cases := []func(*Params){
		func(p *Params) { p.LoadFrac = 0.9; p.StoreFrac = 0.2 }, // sum >= 1
		func(p *Params) { p.LoadFrac = -0.1 },
		func(p *Params) { p.Streams = 0 },
		func(p *Params) { p.RunLen = 0 },
		func(p *Params) { p.StrideBytes = 0 },
		func(p *Params) { p.WorkingSet = 128 },
		func(p *Params) { p.AccessSize = 3 },
		func(p *Params) { p.StaticBranches = 0 },
		func(p *Params) { p.DepGeom = 1.0 },
		func(p *Params) { p.DepGeom = 0 },
		func(p *Params) { p.BankSpread = -1 },
		func(p *Params) { p.BankSpread = 2; p.StrideBytes = 64 }, // not bank-preserving
	}
	for i, mutate := range cases {
		p := base
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestGeneratorPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGenerator should panic on invalid params")
		}
	}()
	NewGenerator(Params{Name: "bad"})
}

func TestFPClassesOnlyInFPPrograms(t *testing.T) {
	insts := Generate(MustPersonality("gzip"), 20000) // integer program
	for i := range insts {
		if insts[i].Cls.IsFP() {
			t.Fatalf("integer program generated FP op at %d", i)
		}
	}
	insts = Generate(MustPersonality("swim"), 20000)
	fp := 0
	for i := range insts {
		if insts[i].Cls.IsFP() {
			fp++
		}
	}
	if fp == 0 {
		t.Fatal("FP program generated no FP ops")
	}
}

func TestWorkingSetBounded(t *testing.T) {
	p := MustPersonality("gzip")
	insts := Generate(p, 50000)
	// All data addresses live in the stream/working-set region and
	// within a generous bound of the configured footprint.
	for i := range insts {
		if !insts[i].Cls.IsMem() {
			continue
		}
		if insts[i].Addr < 0x200000000 {
			t.Fatalf("data address %#x below data base", insts[i].Addr)
		}
		if insts[i].Addr > 0x200000000+4*p.WorkingSet+1<<22 {
			t.Fatalf("data address %#x far outside working set", insts[i].Addr)
		}
	}
}
