package trace

import (
	"testing"

	"samielsq/internal/isa"
)

func TestAdversarialPersonalitiesValid(t *testing.T) {
	names := AdversarialBenchmarks()
	if len(names) != 2 {
		t.Fatalf("have %d adversarial personalities, want 2: %v", len(names), names)
	}
	for _, n := range names {
		p := MustPersonality(n)
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", n, err)
		}
		if p.Name != n {
			t.Errorf("%s: Name field is %q", n, p.Name)
		}
		// Determinism holds for the stress workloads like any other.
		a := Generate(p, 2000)
		b := Generate(p, 2000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: instruction %d differs across generations", n, i)
			}
		}
	}
	// The paper suite must stay exactly the 26 SPEC programs.
	for _, n := range Benchmarks() {
		for _, a := range names {
			if n == a {
				t.Fatalf("adversarial personality %s leaked into Benchmarks()", a)
			}
		}
	}
}

// TestPointerChaserShape asserts the near-zero-MLP structure: almost
// no line reuse between the in-flight loads (every access lands on a
// fresh random line), unlike a streaming workload.
func TestPointerChaserShape(t *testing.T) {
	chaser := Generate(MustPersonality("pointer-chaser"), 20_000)
	stream := Generate(MustPersonality("swim"), 20_000)
	lineReuse := func(insts []isa.Inst) float64 {
		seen := map[uint64]bool{}
		mem, reused := 0, 0
		for _, in := range insts {
			if in.Cls != isa.ClassLoad && in.Cls != isa.ClassStore {
				continue
			}
			mem++
			line := in.Addr &^ uint64(LineBytes-1)
			if seen[line] {
				reused++
			}
			seen[line] = true
		}
		if mem == 0 {
			return 0
		}
		return float64(reused) / float64(mem)
	}
	cr, sr := lineReuse(chaser), lineReuse(stream)
	if cr >= sr {
		t.Errorf("pointer-chaser line reuse %.3f not below streaming swim %.3f", cr, sr)
	}
	if cr > 0.35 {
		t.Errorf("pointer-chaser reuses %.0f%% of lines; want a mostly-fresh random walk", cr*100)
	}
}

// TestStoreBurstShape asserts stores dominate loads in the store-burst
// mix, the inverse of every SPEC personality.
func TestStoreBurstShape(t *testing.T) {
	insts := Generate(MustPersonality("store-burst"), 20_000)
	loads, stores := 0, 0
	for _, in := range insts {
		switch in.Cls {
		case isa.ClassLoad:
			loads++
		case isa.ClassStore:
			stores++
		}
	}
	if stores <= loads {
		t.Errorf("store-burst has %d stores vs %d loads; want store-dominated", stores, loads)
	}
	if frac := float64(stores) / float64(len(insts)); frac < 0.25 {
		t.Errorf("store fraction %.2f below the burst mix", frac)
	}
}
