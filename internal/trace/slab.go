package trace

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"samielsq/internal/isa"
)

// A Slab lazily materializes the deterministic instruction stream of
// one Params into a shared, append-only slice. Many simulations of the
// same workload (the conventional/SAMIE/ARB variants every figure
// sweeps over) replay the same prefix instead of re-running the
// generator per simulation; the published prefix is immutable, so
// readers never take the lock for instructions already materialized.
type Slab struct {
	mu    sync.Mutex
	gen   *Generator
	insts []isa.Inst
	bytes atomic.Int64 // materialized footprint, for the cache bound
}

// slabChunk is the minimum extension granularity.
const slabChunk = 16 * 1024

// NewSlab builds an empty slab for p.
func NewSlab(p Params) *Slab { return &Slab{gen: NewGenerator(p)} }

// view returns the materialized prefix, at least n instructions long.
func (s *Slab) view(n int) []isa.Inst {
	s.mu.Lock()
	if len(s.insts) < n {
		start := len(s.insts)
		target := start + slabChunk
		if target < n {
			target = n
		}
		s.insts = append(s.insts, make([]isa.Inst, target-start)...)
		for i := start; i < target; i++ {
			s.gen.Next(&s.insts[i])
		}
		s.bytes.Store(int64(len(s.insts)) * int64(unsafe.Sizeof(isa.Inst{})))
	}
	v := s.insts
	s.mu.Unlock()
	return v
}

// Bytes returns the materialized footprint of the slab.
func (s *Slab) Bytes() int64 { return s.bytes.Load() }

// Stream returns a fresh cursor over the slab from instruction 0.
// Streams are independent; a slab may serve any number concurrently.
func (s *Slab) Stream() *SlabStream { return &SlabStream{slab: s} }

// SlabStream is an isa.Stream cursor over a Slab. Next is
// allocation-free and lock-free for instructions already materialized.
type SlabStream struct {
	slab *Slab
	v    []isa.Inst
	pos  int
}

// Next implements isa.Stream.
func (ss *SlabStream) Next(out *isa.Inst) bool {
	if ss.pos >= len(ss.v) {
		ss.v = ss.slab.view(ss.pos + 1)
	}
	*out = ss.v[ss.pos]
	ss.pos++
	return true
}

// slabCache memoizes slabs per Params with an approximate byte bound,
// evicting least-recently-acquired slabs. Eviction only drops the
// cache's reference: streams over an evicted slab stay valid.
var slabCache = struct {
	mu    sync.Mutex
	m     map[Params]*slabEntry
	limit int64
	tick  int64
}{m: make(map[Params]*slabEntry), limit: 256 << 20}

type slabEntry struct {
	slab    *Slab
	lastUse int64
}

// SharedStream returns a stream replaying the deterministic trace for
// p, backed by a process-wide cache of materialized instructions. The
// sequence is identical to NewGenerator(p); only the generation work
// is shared.
func SharedStream(p Params) *SlabStream {
	c := &slabCache
	c.mu.Lock()
	e, ok := c.m[p]
	if !ok {
		e = &slabEntry{slab: NewSlab(p)}
		c.m[p] = e
	}
	c.tick++
	e.lastUse = c.tick
	// Approximate LRU bound: evict coldest slabs while over budget.
	// The footprint is re-summed here (acquisition is rare relative to
	// generation) and lags in-flight growth by design.
	var used int64
	//lint:ordered commutative integer sum
	for _, v := range c.m {
		used += v.slab.Bytes()
	}
	for used > c.limit && len(c.m) > 1 {
		var coldK Params
		var cold *slabEntry
		//lint:ordered eviction victim choice is cache policy, invisible in any replayed instruction sequence
		for k, v := range c.m {
			if v != e && (cold == nil || v.lastUse < cold.lastUse) {
				coldK, cold = k, v
			}
		}
		if cold == nil {
			break
		}
		used -= cold.slab.Bytes()
		delete(c.m, coldK)
	}
	c.mu.Unlock()
	return e.slab.Stream()
}

// SetSlabCacheLimit adjusts the byte bound of the shared slab cache
// (0 restores the default) and returns the previous value. Intended
// for tests and long-lived services tuning memory.
func SetSlabCacheLimit(bytes int64) int64 {
	c := &slabCache
	c.mu.Lock()
	prev := c.limit
	if bytes <= 0 {
		bytes = 256 << 20
	}
	c.limit = bytes
	c.mu.Unlock()
	return prev
}

// SlabCacheLen returns the number of cached slabs (test hook).
func SlabCacheLen() int {
	c := &slabCache
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
