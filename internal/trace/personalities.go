package trace

// This file defines the calibrated personalities for the 26 SPEC
// CPU2000 programs used in the paper's evaluation. The parameters are
// chosen to reproduce the qualitative per-benchmark facts the paper
// reports (DESIGN.md §1 lists them); absolute values are synthetic.
//
// Notation used in the comments:
//   concentrated = streams pinned to few DistribLSQ banks (BankSpread)
//   even         = unit-line strides, streams spread over all banks

// fpBase and intBase are templates; each personality overrides fields.
func fpBase(name string) Params {
	return Params{
		Name:             name,
		FP:               true,
		LoadFrac:         0.28,
		StoreFrac:        0.12,
		BranchFrac:       0.06,
		MulFrac:          0.12,
		DivFrac:          0.01,
		Streams:          6,
		StrideBytes:      LineBytes,
		RunLen:           4,
		RandFrac:         0.10,
		Revisit:          0.20,
		WorkingSet:       2 << 20,
		AccessSize:       8,
		StaticBranches:   32,
		RandomBranchFrac: 0.04,
		TakenBias:        0.72,
		DepGeom:          0.45,
		FarSrcFrac:       0.50,
	}
}

func intBase(name string) Params {
	return Params{
		Name:             name,
		FP:               false,
		LoadFrac:         0.24,
		StoreFrac:        0.10,
		BranchFrac:       0.18,
		MulFrac:          0.04,
		DivFrac:          0.01,
		Streams:          3,
		StrideBytes:      LineBytes,
		RunLen:           4,
		RandFrac:         0.30,
		Revisit:          0.30,
		WorkingSet:       256 << 10,
		AccessSize:       4,
		StaticBranches:   64,
		RandomBranchFrac: 0.10,
		TakenBias:        0.72,
		DepGeom:          0.58,
		FarSrcFrac:       0.38,
	}
}

// bankStride is the smallest stride that keeps a stream inside one
// DistribLSQ bank (64 banks x 32-byte lines).
const bankStride = 64 * LineBytes

var personalities = map[string]Params{
	// ---- Floating point -------------------------------------------------
	// ammp: heavily concentrated lines (worst SharedLSQ pressure and the
	// only program with many deadlock flushes, Fig. 6), yet high line
	// reuse (top Dcache savings, Fig. 9).
	"ammp": func() Params {
		p := fpBase("ammp")
		p.LoadFrac, p.StoreFrac = 0.30, 0.10
		p.Streams, p.BankSpread = 8, 7
		p.StrideBytes = bankStride
		p.RunLen = 5
		p.Revisit = 0.30
		p.RandFrac = 0.02
		p.WorkingSet = 2 << 20
		return p
	}(),
	// applu: even-spread dense solver, moderate pressure.
	"applu": func() Params {
		p := fpBase("applu")
		p.Streams = 8
		p.LoadFrac, p.StoreFrac = 0.28, 0.14
		p.RunLen = 4
		return p
	}(),
	// apsi: concentrated (high SharedLSQ needs, Fig. 3), mild IPC loss.
	"apsi": func() Params {
		p := fpBase("apsi")
		p.Streams, p.BankSpread = 10, 10
		p.StrideBytes = bankStride
		p.RunLen = 5
		p.LoadFrac = 0.30
		p.RandFrac = 0.04
		return p
	}(),
	// art: concentrated and cache-hostile (large working set, low IPC).
	"art": func() Params {
		p := fpBase("art")
		p.Streams, p.BankSpread = 6, 6
		p.StrideBytes = bankStride
		p.RunLen = 5
		p.WorkingSet = 8 << 20
		p.LoadFrac = 0.32
		p.RandFrac = 0.30
		return p
	}(),
	// equake: sparse solver, even spread, some random gathers.
	"equake": func() Params {
		p := fpBase("equake")
		p.Streams = 6
		p.RandFrac = 0.25
		p.LoadFrac = 0.30
		p.WorkingSet = 2 << 20
		return p
	}(),
	// facerec: concentrated *and* very high LSQ pressure with strong
	// line sharing — gains IPC under SAMIE (Fig. 5) because well-shared
	// entries hold more than 128 in-flight memory instructions.
	"facerec": func() Params {
		p := fpBase("facerec")
		p.Streams, p.BankSpread = 16, 16
		p.StrideBytes = bankStride
		p.RunLen = 6
		p.LoadFrac, p.StoreFrac = 0.38, 0.18
		p.RandFrac = 0.02
		p.DepGeom = 0.35
		return p
	}(),
	// fma3d: even spread, very high memory pressure, gains IPC.
	"fma3d": func() Params {
		p := fpBase("fma3d")
		p.Streams = 16
		p.RunLen = 8
		p.LoadFrac, p.StoreFrac = 0.36, 0.18
		p.WorkingSet = 1 << 20
		p.DepGeom = 0.35
		return p
	}(),
	// galgel: blocked linear algebra, high reuse, even spread.
	"galgel": func() Params {
		p := fpBase("galgel")
		p.Streams = 8
		p.RunLen = 6
		p.LoadFrac = 0.30
		p.WorkingSet = 512 << 10
		p.Revisit = 0.30
		return p
	}(),
	// lucas: FFT-style power-of-two strides, two-line jumps, even.
	"lucas": func() Params {
		p := fpBase("lucas")
		p.Streams = 4
		p.StrideBytes = 2 * LineBytes
		p.WorkingSet = 4 << 20
		return p
	}(),
	// mesa: FP but branchy and small-footprint (renders scanlines).
	"mesa": func() Params {
		p := fpBase("mesa")
		p.CodeBytes = 48 << 10
		p.BranchFrac = 0.12
		p.LoadFrac = 0.24
		p.WorkingSet = 256 << 10
		p.Streams = 4
		p.RandomBranchFrac = 0.10
		return p
	}(),
	// mgrid: concentrated multigrid strides, high SharedLSQ needs, some
	// IPC loss (Fig. 5).
	"mgrid": func() Params {
		p := fpBase("mgrid")
		p.Streams, p.BankSpread = 8, 9
		p.StrideBytes = bankStride
		p.RunLen = 6
		p.LoadFrac = 0.32
		p.RandFrac = 0.03
		return p
	}(),
	// sixtrack: lowest line reuse of the FP suite (lowest Dcache
	// savings, Fig. 9): short runs, little revisit, much randomness.
	"sixtrack": func() Params {
		p := fpBase("sixtrack")
		p.RunLen = 2
		p.Revisit = 0.25
		p.RandFrac = 0.30
		p.WorkingSet = 1 << 20
		p.LoadFrac = 0.26
		return p
	}(),
	// swim: textbook unit-stride streaming with long runs (top Dcache
	// savings alongside ammp, Fig. 9).
	"swim": func() Params {
		p := fpBase("swim")
		p.Streams = 6
		p.RunLen = 8
		p.LoadFrac, p.StoreFrac = 0.30, 0.14
		p.WorkingSet = 4 << 20
		p.Revisit = 0.15
		return p
	}(),
	// wupwise: even spread, good reuse.
	"wupwise": func() Params {
		p := fpBase("wupwise")
		p.Streams = 6
		p.RunLen = 6
		p.WorkingSet = 1 << 20
		return p
	}(),

	// ---- Integer --------------------------------------------------------
	// bzip2: buffer-oriented compression, modest LSQ needs (a worst
	// case for SAMIE active area, Fig. 11).
	"bzip2": func() Params {
		p := intBase("bzip2")
		p.WorkingSet = 4 << 20
		p.RunLen = 5
		p.Streams = 3
		return p
	}(),
	// crafty: branch-heavy chess search, tiny footprint.
	"crafty": func() Params {
		p := intBase("crafty")
		p.CodeBytes = 48 << 10
		p.BranchFrac = 0.20
		p.WorkingSet = 128 << 10
		p.RandomBranchFrac = 0.15
		return p
	}(),
	// eon: C++ ray tracer; stores relatively frequent.
	"eon": func() Params {
		p := intBase("eon")
		p.CodeBytes = 48 << 10
		p.StoreFrac = 0.16
		p.BranchFrac = 0.14
		p.WorkingSet = 64 << 10
		return p
	}(),
	// gap: group theory; list walking with medium footprint.
	"gap": func() Params {
		p := intBase("gap")
		p.Streams = 4
		p.BranchFrac = 0.14
		p.WorkingSet = 512 << 10
		return p
	}(),
	// gcc: large code/data footprint, very branchy.
	"gcc": func() Params {
		p := intBase("gcc")
		p.CodeBytes = 128 << 10
		p.BranchFrac = 0.20
		p.RandFrac = 0.40
		p.WorkingSet = 1 << 20
		p.RandomBranchFrac = 0.15
		return p
	}(),
	// gzip: small dictionary compression.
	"gzip": func() Params {
		p := intBase("gzip")
		p.WorkingSet = 512 << 10
		p.RunLen = 5
		return p
	}(),
	// mcf: pointer-chasing over a huge arc network: almost no line
	// sharing (lowest DTLB savings, Fig. 10) and long dependence chains.
	"mcf": func() Params {
		p := intBase("mcf")
		p.LoadFrac = 0.34
		p.RandFrac = 0.50
		p.RunLen = 2
		p.Revisit = 0.30
		p.WorkingSet = 16 << 20
		p.DepGeom = 0.75
		p.FarSrcFrac = 0.15
		return p
	}(),
	// parser: dictionary lookups, scattered accesses.
	"parser": func() Params {
		p := intBase("parser")
		p.RandFrac = 0.45
		p.BranchFrac = 0.20
		p.WorkingSet = 512 << 10
		return p
	}(),
	// perlbmk: interpreter dispatch, branchiest of the suite.
	"perlbmk": func() Params {
		p := intBase("perlbmk")
		p.CodeBytes = 96 << 10
		p.CodeBytes = 128 << 10
		p.BranchFrac = 0.22
		p.RandFrac = 0.35
		p.WorkingSet = 256 << 10
		p.RandomBranchFrac = 0.15
		return p
	}(),
	// twolf: place-and-route, scattered small structures.
	"twolf": func() Params {
		p := intBase("twolf")
		p.RandFrac = 0.40
		p.BranchFrac = 0.16
		p.WorkingSet = 256 << 10
		return p
	}(),
	// vortex: OO database, store-rich.
	"vortex": func() Params {
		p := intBase("vortex")
		p.CodeBytes = 64 << 10
		p.LoadFrac, p.StoreFrac = 0.26, 0.16
		p.BranchFrac = 0.16
		p.WorkingSet = 1 << 20
		return p
	}(),
	// vpr: FPGA place/route, scattered.
	"vpr": func() Params {
		p := intBase("vpr")
		p.LoadFrac = 0.26
		p.RandFrac = 0.35
		p.BranchFrac = 0.16
		p.WorkingSet = 256 << 10
		return p
	}(),
}
