package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d", c.Value())
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("reset counter = %d", c.Value())
	}
}

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Fatal("empty mean should be 0")
	}
	m.Observe(2)
	m.Observe(4)
	if m.Value() != 3 {
		t.Fatalf("mean = %v, want 3", m.Value())
	}
	m.ObserveN(10, 2)
	// Samples: 2, 4, 10, 10.
	if m.Value() != 6.5 {
		t.Fatalf("mean = %v, want 6.5", m.Value())
	}
	if m.Count() != 4 {
		t.Fatalf("count = %d, want 4", m.Count())
	}
	if m.Sum() != 26 {
		t.Fatalf("sum = %v, want 26", m.Sum())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(8)
	for v := 0; v < 8; v++ {
		h.Observe(v)
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Mean() != 3.5 {
		t.Fatalf("mean = %v, want 3.5", h.Mean())
	}
	if got := h.Bucket(3); got != 1 {
		t.Fatalf("bucket(3) = %d, want 1", got)
	}
	if got := h.Bucket(100); got != 0 {
		t.Fatalf("bucket(100) = %d, want 0", got)
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(4)
	h.Observe(-5)
	h.Observe(100)
	if h.Bucket(0) != 1 || h.Bucket(3) != 1 {
		t.Fatalf("clamping failed: %d %d", h.Bucket(0), h.Bucket(3))
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(10)
	for i := 0; i < 100; i++ {
		h.Observe(i % 10)
	}
	if q := h.Quantile(0.5); q != 4 {
		t.Fatalf("median = %d, want 4", q)
	}
	if q := h.Quantile(1.0); q != 9 {
		t.Fatalf("p100 = %d, want 9", q)
	}
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("p0 = %d, want 0", q)
	}
}

func TestHistogramFractionAtMost(t *testing.T) {
	h := NewHistogram(4)
	h.Observe(0)
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	if f := h.FractionAtMost(1); f != 0.5 {
		t.Fatalf("FractionAtMost(1) = %v, want 0.5", f)
	}
	if f := h.FractionAtMost(-1); f != 0 {
		t.Fatalf("FractionAtMost(-1) = %v, want 0", f)
	}
	if f := h.FractionAtMost(99); f != 1 {
		t.Fatalf("FractionAtMost(99) = %v, want 1", f)
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	// Property: quantile is monotonically non-decreasing in q.
	f := func(vals []uint8) bool {
		h := NewHistogram(32)
		for _, v := range vals {
			h.Observe(int(v) % 32)
		}
		prev := -1
		for q := 0.0; q <= 1.0; q += 0.05 {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSet(t *testing.T) {
	s := NewSet()
	s.Counter("b").Add(2)
	s.Counter("a").Inc()
	s.Mean("m").Observe(5)
	if s.Counter("a").Value() != 1 || s.Counter("b").Value() != 2 {
		t.Fatal("counter values wrong")
	}
	names := s.CounterNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	if !strings.Contains(s.String(), "a=1") {
		t.Fatalf("String() = %q", s.String())
	}
	// Same name returns the same counter.
	if s.Counter("a") != s.Counter("a") {
		t.Fatal("counter identity broken")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("x", 1.5)
	tb.AddRow("longer-name", "str")
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header missing: %q", lines[0])
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	// Columns align: all lines the same displayed prefix width for col 0.
	if !strings.HasPrefix(lines[3], "longer-name") {
		t.Fatalf("row = %q", lines[3])
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{3, "3"},
		{1234.5, "1234.5"},
		{3.14159, "3.142"},
		{0.01234, "0.0123"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.123); got != "12.3%" {
		t.Fatalf("Percent = %q", got)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("geomean(1,4) = %v", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("geomean(nil) = %v", g)
	}
	// Zero/negative samples are skipped.
	if g := GeoMean([]float64{0, -1, 9}); math.Abs(g-9) > 1e-12 {
		t.Fatalf("geomean with invalid samples = %v", g)
	}
}

func TestArithMean(t *testing.T) {
	if m := ArithMean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("mean = %v", m)
	}
	if m := ArithMean(nil); m != 0 {
		t.Fatalf("mean(nil) = %v", m)
	}
}

func TestGeoMeanBetweenMinMax(t *testing.T) {
	// Property: geometric mean lies within [min, max] of positive inputs.
	f := func(raw []float64) bool {
		var vs []float64
		for _, v := range raw {
			v = math.Abs(v)
			if v > 1e-9 && v < 1e9 {
				vs = append(vs, v)
			}
		}
		if len(vs) == 0 {
			return true
		}
		lo, hi := vs[0], vs[0]
		for _, v := range vs {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		g := GeoMean(vs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
