// Package stats provides lightweight statistics primitives used across
// the simulator: named counters, histograms, running means and table
// formatting helpers for the experiment harnesses.
//
// All types are plain value-oriented structures without locking; a
// simulation is single-goroutine and experiment fan-out keeps one Set
// per simulation.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event counter.
type Counter struct {
	n uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Mean tracks a running arithmetic mean without storing samples.
type Mean struct {
	sum float64
	n   uint64
}

// Observe adds one sample.
func (m *Mean) Observe(v float64) {
	m.sum += v
	m.n++
}

// ObserveN adds a sample with weight n (e.g. an occupancy sampled once
// per cycle for n cycles).
func (m *Mean) ObserveN(v float64, n uint64) {
	m.sum += v * float64(n)
	m.n += n
}

// Value returns the mean of all samples, or 0 if none were observed.
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// Count returns the number of samples observed.
func (m *Mean) Count() uint64 { return m.n }

// Sum returns the raw sample sum.
func (m *Mean) Sum() float64 { return m.sum }

// Histogram is a fixed-bucket integer histogram over [0, len(buckets)).
// Values beyond the last bucket are clamped into it.
type Histogram struct {
	buckets []uint64
	total   uint64
}

// NewHistogram returns a histogram with n buckets for values 0..n-1.
func NewHistogram(n int) *Histogram {
	if n <= 0 {
		panic("stats: histogram needs at least one bucket")
	}
	return &Histogram{buckets: make([]uint64, n)}
}

// Observe records one occurrence of value v.
func (h *Histogram) Observe(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.buckets) {
		v = len(h.buckets) - 1
	}
	h.buckets[v]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 {
	if i < 0 || i >= len(h.buckets) {
		return 0
	}
	return h.buckets[i]
}

// Len returns the number of buckets.
func (h *Histogram) Len() int { return len(h.buckets) }

// Mean returns the histogram's mean value.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var s float64
	for v, c := range h.buckets {
		s += float64(v) * float64(c)
	}
	return s / float64(h.total)
}

// Quantile returns the smallest value v such that at least q (0..1) of
// the observations are <= v.
func (h *Histogram) Quantile(q float64) int {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	need := uint64(math.Ceil(q * float64(h.total)))
	var acc uint64
	for v, c := range h.buckets {
		acc += c
		if acc >= need {
			return v
		}
	}
	return len(h.buckets) - 1
}

// FractionAtMost returns the fraction of observations with value <= v.
func (h *Histogram) FractionAtMost(v int) float64 {
	if h.total == 0 {
		return 1
	}
	if v < 0 {
		return 0
	}
	if v >= len(h.buckets) {
		v = len(h.buckets) - 1
	}
	var acc uint64
	for i := 0; i <= v; i++ {
		acc += h.buckets[i]
	}
	return float64(acc) / float64(h.total)
}

// Set is a named collection of counters and means, used as the
// simulator's statistics sink.
type Set struct {
	counters map[string]*Counter
	means    map[string]*Mean
}

// NewSet returns an empty statistics set.
func NewSet() *Set {
	return &Set{
		counters: make(map[string]*Counter),
		means:    make(map[string]*Mean),
	}
}

// Counter returns (creating if needed) the counter with the given name.
func (s *Set) Counter(name string) *Counter {
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Mean returns (creating if needed) the running mean with the given name.
func (s *Set) Mean(name string) *Mean {
	m, ok := s.means[name]
	if !ok {
		m = &Mean{}
		s.means[name] = m
	}
	return m
}

// CounterNames returns the sorted names of all counters.
func (s *Set) CounterNames() []string {
	names := make([]string, 0, len(s.counters))
	for n := range s.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String renders the set for debugging.
//
//samie:deterministic
func (s *Set) String() string {
	var b strings.Builder
	for _, n := range s.CounterNames() {
		fmt.Fprintf(&b, "%s=%d\n", n, s.counters[n].Value())
	}
	return b.String()
}

// Table is a simple column-aligned text table used by the experiment
// harnesses to print paper-style rows.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
//
//samie:deterministic
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// FormatFloat renders a float with a sensible number of digits for
// table output.
//
//samie:deterministic
func FormatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Percent formats a ratio as a percentage string, e.g. 0.123 -> "12.3%".
func Percent(ratio float64) string {
	return fmt.Sprintf("%.1f%%", ratio*100)
}

// GeoMean returns the geometric mean of vs; zero or negative samples
// are ignored (matching how IPC ratios are aggregated).
func GeoMean(vs []float64) float64 {
	var logSum float64
	var n int
	for _, v := range vs {
		if v > 0 {
			logSum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// ArithMean returns the arithmetic mean of vs (0 for empty input).
func ArithMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}
