package experiments

import (
	"context"
	"fmt"
	"strings"

	"samielsq/internal/core"
	"samielsq/internal/stats"
)

// mustFigure unwraps a Figure*Ctx result for the context-less
// wrappers: with a background context the only possible error is a
// contained simulation panic, which is re-raised.
func mustFigure[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// ---- Figure 1 ---------------------------------------------------------------

// ARBConfig is one banks-x-addresses point of Figure 1.
type ARBConfig struct{ Banks, Addrs int }

// Figure1Configs returns the paper's eight ARB geometries
// (1x128 ... 128x1).
func Figure1Configs() []ARBConfig {
	return []ARBConfig{
		{1, 128}, {2, 64}, {4, 32}, {8, 16}, {16, 8}, {32, 4}, {64, 2}, {128, 1},
	}
}

// Figure1Row is the relative IPC of one ARB configuration.
type Figure1Row struct {
	Config     ARBConfig
	RelIPC     float64 // geometric-mean IPC relative to the unbounded LSQ
	RelIPCHalf float64 // same with the in-flight cap halved (64)
}

// Figure1Result holds the Figure 1 series.
type Figure1Result struct {
	Rows  []Figure1Row
	Insts uint64
}

// Figure1 reproduces Figure 1 through a fresh single-use batch.
func Figure1(benchmarks []string, insts uint64) Figure1Result {
	return NewBatch(0).Figure1(benchmarks, insts)
}

// Figure1 reproduces Figure 1: ARB IPC relative to an ideal unbounded
// LSQ for the eight geometries, with the normal (128) and halved (64)
// in-flight caps.
func (bt *Batch) Figure1(benchmarks []string, insts uint64) Figure1Result {
	return mustFigure(bt.Figure1Ctx(context.Background(), benchmarks, insts))
}

// Figure1Ctx is Figure1 with cancellation: when ctx fires, the
// figure's queued simulations are withdrawn and the context error is
// returned (started or shared simulations finish into the cache).
func (bt *Batch) Figure1Ctx(ctx context.Context, benchmarks []string, insts uint64) (Figure1Result, error) {
	base, err := bt.RunAllCtx(ctx, benchmarks, func(b string) RunSpec {
		return RunSpec{Benchmark: b, Insts: insts, Model: ModelUnbounded}
	})
	if err != nil {
		return Figure1Result{}, err
	}
	baseIPC := make(map[string]float64, len(base))
	for _, r := range base {
		baseIPC[r.Spec.Benchmark] = r.CPU.IPC
	}
	res := Figure1Result{Insts: insts}
	for _, cfg := range Figure1Configs() {
		row := Figure1Row{Config: cfg}
		for i, inflight := range [...]int{128, 64} {
			runs, err := bt.RunAllCtx(ctx, benchmarks, func(b string) RunSpec {
				return RunSpec{
					Benchmark: b, Insts: insts, Model: ModelARB,
					ARBBanks: cfg.Banks, ARBAddrs: cfg.Addrs, ARBInflight: inflight,
				}
			})
			if err != nil {
				return Figure1Result{}, err
			}
			ratios := make([]float64, 0, len(runs))
			for _, r := range runs {
				if b := baseIPC[r.Spec.Benchmark]; b > 0 {
					ratios = append(ratios, r.CPU.IPC/b)
				}
			}
			g := stats.GeoMean(ratios)
			if i == 0 {
				row.RelIPC = g
			} else {
				row.RelIPCHalf = g
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the figure as a table.
//
//samie:deterministic
func (f Figure1Result) String() string {
	t := stats.NewTable("BanksxAddrs", "%IPC vs unbounded", "%IPC (half in-flight)")
	for _, r := range f.Rows {
		t.AddRow(fmt.Sprintf("%dx%d", r.Config.Banks, r.Config.Addrs),
			stats.Percent(r.RelIPC), stats.Percent(r.RelIPCHalf))
	}
	return "Figure 1: ARB IPC relative to an unbounded LSQ\n" + t.String()
}

// ---- Figure 3 ---------------------------------------------------------------

// Figure3Row is one benchmark's mean unbounded-SharedLSQ occupancy
// under three DistribLSQ geometries.
type Figure3Row struct {
	Benchmark                  string
	Occ128x1, Occ64x2, Occ32x4 float64
}

// Figure3Result holds the Figure 3 series.
type Figure3Result struct {
	Rows  []Figure3Row
	Insts uint64
}

// Figure3 reproduces Figure 3 through a fresh single-use batch.
func Figure3(benchmarks []string, insts uint64) Figure3Result {
	return NewBatch(0).Figure3(benchmarks, insts)
}

// Figure3 reproduces Figure 3: average occupancy of an unbounded
// SharedLSQ for DistribLSQ geometries 128x1, 64x2 and 32x4 (8 slots
// per entry).
func (bt *Batch) Figure3(benchmarks []string, insts uint64) Figure3Result {
	return mustFigure(bt.Figure3Ctx(context.Background(), benchmarks, insts))
}

// Figure3Ctx is Figure3 with cancellation (see Figure1Ctx).
func (bt *Batch) Figure3Ctx(ctx context.Context, benchmarks []string, insts uint64) (Figure3Result, error) {
	geoms := figure3Geoms
	res := Figure3Result{Insts: insts}
	rows := make(map[string]*Figure3Row, len(benchmarks))
	for _, b := range benchmarks {
		rows[b] = &Figure3Row{Benchmark: b}
	}
	for gi, g := range geoms {
		cfg := core.PaperConfig()
		cfg.Banks, cfg.EntriesPerBank = g.banks, g.entries
		cfg.SharedUnbounded = true
		cfgCopy := cfg
		runs, err := bt.RunAllCtx(ctx, benchmarks, func(b string) RunSpec {
			return RunSpec{Benchmark: b, Insts: insts, Model: ModelSAMIE, SAMIE: &cfgCopy}
		})
		if err != nil {
			return Figure3Result{}, err
		}
		for _, r := range runs {
			occ := r.SAMIE.MeanSharedOcc()
			switch gi {
			case 0:
				rows[r.Spec.Benchmark].Occ128x1 = occ
			case 1:
				rows[r.Spec.Benchmark].Occ64x2 = occ
			case 2:
				rows[r.Spec.Benchmark].Occ32x4 = occ
			}
		}
	}
	for _, b := range benchmarks {
		res.Rows = append(res.Rows, *rows[b])
	}
	return res, nil
}

// String renders the figure as a table with a SPEC average row.
//
//samie:deterministic
func (f Figure3Result) String() string {
	t := stats.NewTable("benchmark", "128x1", "64x2", "32x4")
	var a1, a2, a3 []float64
	for _, r := range f.Rows {
		t.AddRow(r.Benchmark, r.Occ128x1, r.Occ64x2, r.Occ32x4)
		a1, a2, a3 = append(a1, r.Occ128x1), append(a2, r.Occ64x2), append(a3, r.Occ32x4)
	}
	t.AddRow("SPEC", stats.ArithMean(a1), stats.ArithMean(a2), stats.ArithMean(a3))
	return "Figure 3: average entries occupied in an unbounded SharedLSQ\n" + t.String()
}

// ---- Figure 4 ---------------------------------------------------------------

// Figure4Result counts, for each SharedLSQ size, how many programs
// keep the AddrBuffer unused for at least 99% of their cycles.
type Figure4Result struct {
	Sizes    []int
	Programs []int          // cumulative count per size
	PerBench map[string]int // minimal SharedLSQ size per benchmark (-1 if none)
	Insts    uint64
}

// Figure4 reproduces Figure 4 through a fresh single-use batch.
func Figure4(benchmarks []string, insts uint64, sizes []int) Figure4Result {
	return NewBatch(0).Figure4(benchmarks, insts, sizes)
}

// Figure4 reproduces Figure 4, sweeping the SharedLSQ size.
func (bt *Batch) Figure4(benchmarks []string, insts uint64, sizes []int) Figure4Result {
	return mustFigure(bt.Figure4Ctx(context.Background(), benchmarks, insts, sizes))
}

// Figure4Ctx is Figure4 with cancellation (see Figure1Ctx).
func (bt *Batch) Figure4Ctx(ctx context.Context, benchmarks []string, insts uint64, sizes []int) (Figure4Result, error) {
	if len(sizes) == 0 {
		sizes = figure4DefaultSizes
	}
	res := Figure4Result{Sizes: sizes, Insts: insts, PerBench: make(map[string]int)}
	need := make(map[string]int, len(benchmarks))
	for _, b := range benchmarks {
		need[b] = -1
	}
	for _, size := range sizes {
		cfg := core.PaperConfig()
		cfg.SharedEntries = size
		if size == 0 {
			// A zero-entry SharedLSQ is modeled as one entry that is
			// never free... instead use the DistribLSQ only.
			cfg.SharedEntries = 0
		}
		cfgCopy := cfg
		runs, err := bt.RunAllCtx(ctx, benchmarks, func(b string) RunSpec {
			return RunSpec{Benchmark: b, Insts: insts, Model: ModelSAMIE, SAMIE: &cfgCopy}
		})
		if err != nil {
			return Figure4Result{}, err
		}
		for _, r := range runs {
			b := r.Spec.Benchmark
			if need[b] < 0 && r.SAMIE.ABEmptyFraction() >= 0.99 {
				need[b] = size
			}
		}
	}
	for _, size := range sizes {
		n := 0
		for _, b := range benchmarks {
			if need[b] >= 0 && need[b] <= size {
				n++
			}
		}
		res.Programs = append(res.Programs, n)
	}
	for b, s := range need {
		res.PerBench[b] = s
	}
	return res, nil
}

// String renders the cumulative curve.
//
//samie:deterministic
func (f Figure4Result) String() string {
	t := stats.NewTable("SharedLSQ entries", "programs with AddrBuffer idle >= 99% of cycles")
	for i, s := range f.Sizes {
		t.AddRow(s, f.Programs[i])
	}
	return "Figure 4: programs not using the AddrBuffer for 99% of execution\n" + t.String()
}

// ---- Figures 5 & 6 ----------------------------------------------------------

// Figure56Row is one benchmark's SAMIE-vs-conventional comparison.
type Figure56Row struct {
	Benchmark     string
	ConvIPC       float64
	SAMIEIPC      float64
	IPCLossPct    float64 // positive = SAMIE slower (Figure 5)
	DeadlocksPerM float64 // deadlock flushes per million cycles (Figure 6)
}

// Figure56Result holds Figures 5 and 6 (one simulation pair yields
// both).
type Figure56Result struct {
	Rows  []Figure56Row
	Insts uint64
}

// Figure56 reproduces Figures 5 and 6 through a fresh single-use
// batch.
func Figure56(benchmarks []string, insts uint64) Figure56Result {
	return NewBatch(0).Figure56(benchmarks, insts)
}

// Figure56 reproduces Figure 5 (% IPC loss of SAMIE-LSQ vs the
// 128-entry conventional LSQ) and Figure 6 (deadlock-avoidance flushes
// per million cycles).
func (bt *Batch) Figure56(benchmarks []string, insts uint64) Figure56Result {
	return mustFigure(bt.Figure56Ctx(context.Background(), benchmarks, insts))
}

// Figure56Ctx is Figure56 with cancellation (see Figure1Ctx).
func (bt *Batch) Figure56Ctx(ctx context.Context, benchmarks []string, insts uint64) (Figure56Result, error) {
	conv, err := bt.RunAllCtx(ctx, benchmarks, func(b string) RunSpec {
		return RunSpec{Benchmark: b, Insts: insts, Model: ModelConventional}
	})
	if err != nil {
		return Figure56Result{}, err
	}
	samie, err := bt.RunAllCtx(ctx, benchmarks, func(b string) RunSpec {
		return RunSpec{Benchmark: b, Insts: insts, Model: ModelSAMIE}
	})
	if err != nil {
		return Figure56Result{}, err
	}
	res := Figure56Result{Insts: insts}
	for i, b := range benchmarks {
		row := Figure56Row{
			Benchmark: b,
			ConvIPC:   conv[i].CPU.IPC,
			SAMIEIPC:  samie[i].CPU.IPC,
		}
		if row.ConvIPC > 0 {
			row.IPCLossPct = (row.ConvIPC - row.SAMIEIPC) / row.ConvIPC * 100
		}
		if samie[i].CPU.Cycles > 0 {
			row.DeadlocksPerM = float64(samie[i].CPU.DeadlockFlushes) / float64(samie[i].CPU.Cycles) * 1e6
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// MeanIPCLossPct returns the arithmetic-mean IPC loss (the paper
// reports 0.6%).
func (f Figure56Result) MeanIPCLossPct() float64 {
	var vs []float64
	for _, r := range f.Rows {
		vs = append(vs, r.IPCLossPct)
	}
	return stats.ArithMean(vs)
}

// String renders both figures.
//
//samie:deterministic
func (f Figure56Result) String() string {
	t := stats.NewTable("benchmark", "conv IPC", "SAMIE IPC", "%IPC loss", "deadlocks/Mcycle")
	for _, r := range f.Rows {
		t.AddRow(r.Benchmark, r.ConvIPC, r.SAMIEIPC,
			fmt.Sprintf("%+.2f%%", r.IPCLossPct), r.DeadlocksPerM)
	}
	var b strings.Builder
	b.WriteString("Figures 5 and 6: SAMIE-LSQ IPC loss and deadlock flushes\n")
	b.WriteString(t.String())
	fmt.Fprintf(&b, "SPEC mean IPC loss: %.2f%% (paper: 0.6%%)\n", f.MeanIPCLossPct())
	return b.String()
}
