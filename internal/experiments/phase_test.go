package experiments

import (
	"testing"

	"samielsq/internal/obs"
)

// TestRunPhasesSimulated: a fresh simulation reports queue_wait,
// warmup and measured phase timings on the result, persists to disk
// with a persist phase, and feeds the batch's per-phase histograms.
func TestRunPhasesSimulated(t *testing.T) {
	dir := t.TempDir()
	b, err := NewBatchWithCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	r := b.Run(cacheTestSpec())
	if r.Phases.Measured <= 0 || r.Phases.Warmup < 0 || r.Phases.QueueWait < 0 {
		t.Fatalf("simulated run phases implausible: %+v", r.Phases)
	}
	if r.Phases.Persist <= 0 {
		t.Errorf("disk-backed run recorded no persist phase: %+v", r.Phases)
	}
	// The disk tier was probed (a timed miss); no peer store exists, so
	// that phase must stay untouched.
	if r.Phases.PeerTier != 0 {
		t.Errorf("fresh run claims peer-tier time without a peer store: %+v", r.Phases)
	}

	ps := b.PhaseStats()
	for _, phase := range []obs.Phase{obs.PhaseQueueWait, obs.PhaseDiskTier, obs.PhaseWarmup, obs.PhaseMeasured, obs.PhasePersist} {
		if ps[phase.String()].Count != 1 {
			t.Errorf("batch phase %s count = %d, want 1", phase, ps[phase.String()].Count)
		}
	}
	// Untouched phases carry no observations and are omitted entirely.
	if _, ok := ps[obs.PhasePeerTier.String()]; ok {
		t.Error("batch reports a peer-tier phase the run never entered")
	}
}

// TestRunPhasesDiskTier: a second batch over the same cache directory
// serves the spec from the disk tier and says so in its phase
// breakdown — disk_tier time instead of warmup/measured.
func TestRunPhasesDiskTier(t *testing.T) {
	dir := t.TempDir()
	b1, err := NewBatchWithCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	b1.Run(cacheTestSpec())

	b2, err := NewBatchWithCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	r := b2.Run(cacheTestSpec())
	if r.Phases.DiskTier <= 0 {
		t.Fatalf("disk-served run recorded no disk_tier phase: %+v", r.Phases)
	}
	if r.Phases.Measured != 0 || r.Phases.Warmup != 0 {
		t.Errorf("disk-served run claims simulation time: %+v", r.Phases)
	}
	ps := b2.PhaseStats()
	if ps[obs.PhaseDiskTier.String()].Count != 1 {
		t.Errorf("batch disk_tier count = %d, want 1", ps[obs.PhaseDiskTier.String()].Count)
	}
	if _, ok := ps[obs.PhaseMeasured.String()]; ok {
		t.Error("disk-served batch reports a measured phase")
	}
}

// TestRunPhasesMemoizedHit: the memoized second request for
// the same spec is a pure map lookup — it must return the cached
// result without inventing new phase timings beyond the recorded ones.
func TestRunPhasesMemoizedHit(t *testing.T) {
	b := NewBatch(1)
	first := b.Run(cacheTestSpec())
	second := b.Run(cacheTestSpec())
	if second.Phases != first.Phases {
		t.Errorf("memoized hit rewrote phases: first %+v second %+v", first.Phases, second.Phases)
	}
	ps := b.PhaseStats()
	if ps[obs.PhaseMeasured.String()].Count != 1 {
		t.Errorf("measured phase observed %d times for one execution", ps[obs.PhaseMeasured.String()].Count)
	}
}
