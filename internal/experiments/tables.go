package experiments

import (
	"fmt"
	"strings"

	"samielsq/internal/cacti"
	"samielsq/internal/stats"
)

// Table1Row compares the analytical model against a published Table 1
// row.
type Table1Row struct {
	SizeKB, Ways, Ports int

	ModelConv, ModelKnown float64 // analytical model, ns
	PaperConv, PaperKnown float64 // published, ns

	ModelImprovement float64 // 1 - known/conv (model)
	PaperImprovement float64
}

// Table1Result holds the Table 1 reproduction.
type Table1Result struct{ Rows []Table1Row }

// Table1 reproduces Table 1 with the analytical CACTI-style model and
// lists the published values next to it.
func Table1() Table1Result {
	tech := cacti.Tech100nm()
	var res Table1Result
	for _, p := range cacti.PaperTable1 {
		d := tech.CacheAccess(p.SizeKB<<10, p.Ways, 32, p.Ports)
		row := Table1Row{
			SizeKB: p.SizeKB, Ways: p.Ways, Ports: p.Ports,
			ModelConv: d.Conventional, ModelKnown: d.WayKnown,
			PaperConv: p.Conventional, PaperKnown: p.WayKnown,
		}
		if d.Conventional > 0 {
			row.ModelImprovement = 1 - d.WayKnown/d.Conventional
		}
		if p.Conventional > 0 {
			row.PaperImprovement = 1 - p.WayKnown/p.Conventional
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// String renders the comparison.
//
//samie:deterministic
func (t Table1Result) String() string {
	tb := stats.NewTable("size", "assoc", "ports",
		"model conv (ns)", "model known (ns)", "model improv",
		"paper conv (ns)", "paper known (ns)", "paper improv")
	for _, r := range t.Rows {
		tb.AddRow(fmt.Sprintf("%dKB", r.SizeKB), fmt.Sprintf("%d way", r.Ways), r.Ports,
			fmt.Sprintf("%.3f", r.ModelConv), fmt.Sprintf("%.3f", r.ModelKnown),
			stats.Percent(r.ModelImprovement),
			fmt.Sprintf("%.3f", r.PaperConv), fmt.Sprintf("%.3f", r.PaperKnown),
			stats.Percent(r.PaperImprovement))
	}
	return "Table 1: cache access time, conventional vs physical-line-known\n" + tb.String()
}

// DelayRow compares one §3.6 structure delay against the model.
type DelayRow struct {
	Structure string
	Model     float64
	Paper     float64
}

// DelayResult holds the §3.6 delay analysis.
type DelayResult struct{ Rows []DelayRow }

// Delays reproduces the §3.6 delay analysis with the analytical model:
// DistribLSQ bank compare + bus, SharedLSQ, AddrBuffer and the
// 128-entry and 16-entry conventional LSQs (the paper quotes the
// 16-entry delay as ~4% above the SAMIE-LSQ total).
func Delays() DelayResult {
	tech := cacti.Tech100nm()
	const addrBits = 27 // line address bits compared by the CAMs

	bankCmp := tech.LSQDelay(2, addrBits, 2)
	bus := tech.BusDelay(128, addrBits+64)
	shared := tech.LSQDelay(8, addrBits, 2)
	addrBuf := tech.AccessDelay(cacti.Geometry{Rows: 64, Bits: 41, Assoc: 1, Ports: 2})
	conv128 := tech.LSQDelay(128, 32, 4)
	conv16 := tech.LSQDelay(16, 32, 4)

	return DelayResult{Rows: []DelayRow{
		{"DistribLSQ bank compare", bankCmp, cacti.DelayDistribCompare},
		{"DistribLSQ bus", bus, cacti.DelayDistribBus},
		{"DistribLSQ total", bankCmp + bus, cacti.DelayDistribTotal},
		{"SharedLSQ", shared, cacti.DelayShared},
		{"AddrBuffer", addrBuf, cacti.DelayAddrBuffer},
		{"Conventional LSQ (128)", conv128, cacti.DelayConv128},
		{"Conventional LSQ (16)", conv16, cacti.DelayDistribTotal * 1.04},
	}}
}

// String renders the delay comparison.
//
//samie:deterministic
func (d DelayResult) String() string {
	t := stats.NewTable("structure", "model (ns)", "paper (ns)")
	for _, r := range d.Rows {
		t.AddRow(r.Structure, fmt.Sprintf("%.3f", r.Model), fmt.Sprintf("%.3f", r.Paper))
	}
	return "Section 3.6: structure delays\n" + t.String()
}

// Tables456String renders the published energy and area constants
// (Tables 4, 5 and 6) that drive the accounting, next to the
// analytical model's estimates for the same geometries.
//
//samie:deterministic
func Tables456String() string {
	var b strings.Builder
	tech := cacti.Tech100nm()

	b.WriteString("Table 4: conventional 128-entry LSQ energies (pJ)\n")
	t4 := stats.NewTable("activity", "paper")
	t4.AddRow("address comparison (base)", cacti.ConvLSQ.CmpBase)
	t4.AddRow("address comparison (per addr)", cacti.ConvLSQ.CmpPerAddr)
	t4.AddRow("read/write an address", cacti.ConvLSQ.RWAddr)
	t4.AddRow("read/write a datum", cacti.ConvLSQ.RWDatum)
	b.WriteString(t4.String())

	b.WriteString("\nTable 5: SAMIE-LSQ energies (pJ)\n")
	t5 := stats.NewTable("activity", "DistribLSQ", "SharedLSQ")
	t5.AddRow("address comparison (base)", cacti.DistribLSQ.CmpBase, cacti.SharedLSQ.CmpBase)
	t5.AddRow("address comparison (per addr)", cacti.DistribLSQ.CmpPerAddr, cacti.SharedLSQ.CmpPerAddr)
	t5.AddRow("read/write an address", cacti.DistribLSQ.RWAddr, cacti.SharedLSQ.RWAddr)
	t5.AddRow("age comparison (base/entry)", cacti.DistribLSQ.AgeCmpBase, cacti.SharedLSQ.AgeCmpBase)
	t5.AddRow("age comparison (per id)", cacti.DistribLSQ.AgeCmpPerID, cacti.SharedLSQ.AgeCmpPerID)
	t5.AddRow("read/write an age id", cacti.DistribLSQ.RWAge, cacti.SharedLSQ.RWAge)
	t5.AddRow("read/write a datum", cacti.DistribLSQ.RWDatum, cacti.SharedLSQ.RWDatum)
	t5.AddRow("read/write a TLB translation", cacti.DistribLSQ.RWTLB, cacti.SharedLSQ.RWTLB)
	t5.AddRow("read/write a cache line id", cacti.DistribLSQ.RWLineID, cacti.SharedLSQ.RWLineID)
	b.WriteString(t5.String())
	fmt.Fprintf(&b, "bus send: %.1f pJ; AddrBuffer datum/age: %.1f/%.1f pJ\n",
		cacti.BusSendAddr, cacti.AddrBufferDatum, cacti.AddrBufferAgeID)
	fmt.Fprintf(&b, "Dcache access full/way-known: %d/%d pJ; DTLB access: %d pJ\n",
		cacti.DcacheFullAccess, cacti.DcacheWayKnown, cacti.DTLBAccess)

	b.WriteString("\nTable 6: cell areas (µm²)\n")
	t6 := stats.NewTable("structure", "cell", "paper")
	t6.AddRow("conventional LSQ", "address CAM", cacti.ConvAreas.AddrCAM)
	t6.AddRow("conventional LSQ", "datum RAM", cacti.ConvAreas.Datum)
	t6.AddRow("DistribLSQ/SharedLSQ", "address CAM", cacti.DistribAreas.AddrCAM)
	t6.AddRow("DistribLSQ/SharedLSQ", "age id CAM", cacti.DistribAreas.AgeCAM)
	t6.AddRow("DistribLSQ/SharedLSQ", "datum RAM", cacti.DistribAreas.Datum)
	t6.AddRow("AddrBuffer", "datum/age RAM", cacti.AddrBufferAreas.Datum)
	b.WriteString(t6.String())

	// Model cross-check: energy per activity from the analytical model
	// for the corresponding geometries.
	b.WriteString("\nAnalytical-model cross-check (pJ per access)\n")
	tc := stats.NewTable("structure", "model estimate")
	tc.AddRow("conventional LSQ CAM search (128x32, 4 ports)",
		tech.AccessEnergy(cacti.Geometry{Rows: 128, Bits: 32, Assoc: 1, Ports: 4, CAM: true}))
	tc.AddRow("DistribLSQ bank CAM search (2x27, 2 ports)",
		tech.AccessEnergy(cacti.Geometry{Rows: 2, Bits: 27, Assoc: 1, Ports: 2, CAM: true}))
	tc.AddRow("SharedLSQ CAM search (8x27, 2 ports)",
		tech.AccessEnergy(cacti.Geometry{Rows: 8, Bits: 27, Assoc: 1, Ports: 2, CAM: true}))
	b.WriteString(tc.String())
	return b.String()
}
