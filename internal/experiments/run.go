// Package experiments contains one harness per table and figure of
// the paper's evaluation (see DESIGN.md §3 for the index). Each
// harness runs the necessary simulations and returns a result struct
// that renders to the same rows/series the paper reports.
//
// Harnesses execute through a shared Batch: a memoizing scheduler
// (internal/experiments/engine) that keys every RunSpec canonically
// and runs each distinct simulation exactly once per batch, however
// many figures request it. Figure 5/6, the energy figures and Compare
// all share the same conventional/SAMIE pair per benchmark, so a
// whole-suite batch executes a fraction of the naive run count.
//
// Simulation length is configurable: the paper simulates 100M
// instructions per benchmark after warm-up; these harnesses default to
// a smaller, deterministic sample that preserves the qualitative
// shape, and accept larger counts for higher-fidelity runs.
package experiments

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"samielsq/internal/core"
	"samielsq/internal/cpu"
	"samielsq/internal/energy"
	"samielsq/internal/experiments/engine"
	"samielsq/internal/lsq"
	"samielsq/internal/mem"
	"samielsq/internal/obs"
	"samielsq/internal/tlb"
	"samielsq/internal/trace"
)

// DefaultInsts is the default per-benchmark instruction budget for the
// experiment harnesses.
const DefaultInsts = 300_000

// ModelKind selects the LSQ organization for a run.
type ModelKind int

// Supported LSQ organizations.
const (
	ModelConventional ModelKind = iota
	ModelUnbounded
	ModelARB
	ModelSAMIE
)

// RunSpec describes one simulation.
type RunSpec struct {
	Benchmark string
	Insts     uint64
	Warmup    uint64 // warm-up instructions before measurement; default Insts/2
	Model     ModelKind

	// Conventional.
	ConvEntries int // default 128

	// ARB geometry.
	ARBBanks, ARBAddrs, ARBInflight int

	// SAMIE configuration; zero value means core.PaperConfig().
	SAMIE *core.Config

	// CPU overrides; zero value means cpu.PaperConfig().
	CPU *cpu.Config
}

// RunResult bundles everything a harness needs from one simulation.
// Results delivered through a Batch are shared between consumers:
// treat the Meter, Hier and stats as read-only.
type RunResult struct {
	Spec  RunSpec
	CPU   cpu.Result
	Meter *energy.Meter
	Hier  *mem.Hierarchy
	SAMIE core.Stats         // populated for ModelSAMIE
	Conv  lsq.OccupancyStats // populated for ModelConventional

	// Phases is where the wall-clock went materializing this result
	// (see internal/obs.Phase). It describes the process and tier that
	// produced the result — a disk-served result reports only the
	// lookup phases — and is observability metadata, not simulation
	// output: it is excluded from disk artifacts and determinism
	// comparisons.
	Phases obs.PhaseTimes

	// Timeline is the run's interval telemetry (occupancy, IPC,
	// per-structure energy deltas; see obs.IntervalSampler). Like
	// Phases it is observability metadata outside the deterministic
	// payload: excluded from disk artifacts, so only results this
	// process simulated carry one — disk- and peer-served results
	// report nil.
	Timeline *obs.Timeline
}

// LSQEnergyNJ returns the headline LSQ dynamic energy in nJ: the
// conventional LSQ's or the SAMIE structures' total, whichever the
// model accounts.
func (r RunResult) LSQEnergyNJ() float64 {
	if r.Meter == nil {
		return 0
	}
	return (r.Meter.ConvLSQ + r.Meter.SAMIETotal()) / 1e3
}

// Normalize fills the spec's defaults and zeroes every field the
// selected model ignores, so two specs describing the same simulation
// canonicalize to the same value. The SAMIE and CPU pointers are
// materialized to concrete configurations.
func Normalize(spec RunSpec) RunSpec {
	if spec.Insts == 0 {
		spec.Insts = DefaultInsts
	}
	if spec.Warmup == 0 {
		spec.Warmup = spec.Insts / 2
	}
	ccfg := cpu.PaperConfig()
	if spec.CPU != nil {
		ccfg = *spec.CPU
	}
	spec.CPU = &ccfg

	switch spec.Model {
	case ModelConventional:
		if spec.ConvEntries == 0 {
			spec.ConvEntries = 128
		}
		spec.ARBBanks, spec.ARBAddrs, spec.ARBInflight = 0, 0, 0
		spec.SAMIE = nil
	case ModelUnbounded:
		spec.ConvEntries = 0
		spec.ARBBanks, spec.ARBAddrs, spec.ARBInflight = 0, 0, 0
		spec.SAMIE = nil
	case ModelARB:
		spec.ConvEntries = 0
		spec.SAMIE = nil
	case ModelSAMIE:
		spec.ConvEntries = 0
		spec.ARBBanks, spec.ARBAddrs, spec.ARBInflight = 0, 0, 0
		scfg := core.PaperConfig()
		if spec.SAMIE != nil {
			scfg = *spec.SAMIE
		}
		spec.SAMIE = &scfg
	default:
		panic("experiments: unknown model kind")
	}
	return spec
}

// Key returns the canonical cache key for a spec: two specs share a
// key exactly when they describe the same simulation.
//
//samie:deterministic
func Key(spec RunSpec) string { return keyOf(Normalize(spec)) }

// keyOf renders the key of an already-normalized spec.
func keyOf(n RunSpec) string {
	var scfg core.Config
	if n.SAMIE != nil {
		scfg = *n.SAMIE
	}
	return fmt.Sprintf("b=%s|m=%d|i=%d|w=%d|conv=%d|arb=%d.%d.%d|samie=%+v|cpu=%+v",
		n.Benchmark, n.Model, n.Insts, n.Warmup,
		n.ConvEntries, n.ARBBanks, n.ARBAddrs, n.ARBInflight,
		scfg, *n.CPU)
}

// Run executes one simulation per the spec, bypassing any cache. Use a
// Batch to share and memoize runs across harnesses.
func Run(spec RunSpec) RunResult { return runNormalized(Normalize(spec)) }

// runNormalized executes an already-normalized spec, recording the
// warmup/measured wall-clock split into the result's Phases.
func runNormalized(spec RunSpec) RunResult {
	p := trace.MustPersonality(spec.Benchmark)
	meter := energy.NewMeter()

	var model lsq.Model
	var samie *core.SAMIE
	var conv *lsq.Conventional
	switch spec.Model {
	case ModelConventional:
		conv = lsq.NewConventional(spec.ConvEntries, meter)
		model = conv
	case ModelUnbounded:
		model = lsq.NewUnbounded()
	case ModelARB:
		model = lsq.NewARB(spec.ARBBanks, spec.ARBAddrs, spec.ARBInflight)
	case ModelSAMIE:
		samie = core.New(*spec.SAMIE, meter)
		model = samie
	}

	hier := mem.NewPaper()
	c := cpu.New(*spec.CPU, trace.SharedStream(p), model, hier, tlb.New(tlb.PaperDTLB()), nil, meter)
	// Every fresh simulation carries interval telemetry: the sampler
	// fires once per stride (default every 4096 cycles), so its cost
	// is unmeasurable against the simulation itself, and the samples
	// never feed back into architectural or metered state.
	sampler := obs.NewIntervalSampler(0, 0)
	sampler.SetEnabled(true)
	c.SetSampler(sampler)
	res := RunResult{Spec: spec, Meter: meter}
	var warmDur, measDur time.Duration
	res.CPU, warmDur, measDur = c.RunWarmTimed(spec.Warmup, spec.Insts)
	res.Phases.Set(obs.PhaseWarmup, warmDur)
	res.Phases.Set(obs.PhaseMeasured, measDur)
	res.Timeline = sampler.Snapshot()
	res.Hier = hier
	if samie != nil {
		res.SAMIE = samie.Stats()
	}
	if conv != nil {
		res.Conv = conv.Occupancy()
	}
	return res
}

// Batch is a shared simulation run: a memoizing scheduler over
// canonically-keyed RunSpecs with a bounded worker pool. All harness
// methods on a Batch share one run cache, so a spec requested by
// several figures simulates exactly once. A Batch is safe for
// concurrent use; results are deterministic regardless of worker
// count.
type Batch struct {
	sched *engine.Scheduler[string, RunResult]
	disk  *DiskCache

	// Tier-2 peer-fetch backend (see store.go); nil disables the tier.
	peer                               atomic.Pointer[peerBox]
	peerHits, peerMisses, peerInstalls atomic.Int64
	peerFetch                          *obs.Histogram

	// phase holds one latency histogram per obs.Phase, fed by jobFor.
	phase [obs.NumPhases]*obs.Histogram

	// Telemetry rollups fed at simulate time (timeline.go): occupancy
	// aggregates per benchmark, simulated dynamic energy per structure,
	// and a bounded retention of raw timelines for -timeline-out.
	occMu     sync.Mutex
	occ       map[string]*obs.OccupancyAgg
	energyPJ  map[string]float64
	timelines []RunTimeline
}

// NewBatch returns a batch bounded to `workers` concurrent
// simulations; workers <= 0 means GOMAXPROCS.
func NewBatch(workers int) *Batch {
	b := &Batch{
		sched:     engine.New[string, RunResult](workers),
		peerFetch: obs.NewHistogram(fetchBuckets),
		occ:       map[string]*obs.OccupancyAgg{},
		energyPJ:  map[string]float64{},
	}
	for i := range b.phase {
		b.phase[i] = obs.NewHistogram(obs.PhaseBuckets)
	}
	return b
}

// NewBatchWithCache is NewBatch plus a disk spill: results are served
// from (and persisted to) cacheDir, content-addressed by the canonical
// spec key, so finished simulations are reused across processes — not
// just within one batch. Results restored from disk carry a nil Hier.
func NewBatchWithCache(workers int, cacheDir string) (*Batch, error) {
	d, err := NewDiskCache(cacheDir)
	if err != nil {
		return nil, err
	}
	b := NewBatch(workers)
	b.disk = d
	return b, nil
}

// Run returns the memoized result for spec, simulating it only if this
// batch has not seen an equivalent spec before — consulting the disk
// cache first when one is attached.
func (b *Batch) Run(spec RunSpec) RunResult {
	n := Normalize(spec)
	key := keyOf(n)
	return b.sched.Do(key, b.jobFor(context.Background(), n, key))
}

// RunCtx is Run with cancellation: a caller that goes away while its
// simulation is still queued (not yet started, not shared with another
// caller) withdraws it instead of occupying a worker slot. A started
// or shared simulation runs to completion — its result is memoized for
// everyone — and only this caller's wait is abandoned. An error is
// always this caller's own context error: coalescing onto a job whose
// owner canceled is retried transparently while ctx stays live.
func (b *Batch) RunCtx(ctx context.Context, spec RunSpec) (RunResult, error) {
	n := Normalize(spec)
	key := keyOf(n)
	for {
		r, err := b.sched.DoCtx(ctx, key, b.jobFor(ctx, n, key))
		if err == nil {
			return r, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return RunResult{}, cerr
		}
		// The error was another caller's: we coalesced onto a queued
		// job whose owner disconnected and withdrew it. Our context is
		// still live, so re-request — the key is free again.
	}
}

// jobFor builds the memoized execution closure for a normalized spec:
// the tiered-store walk. The closure runs inside the singleflight
// owner, so concurrent misses on one key coalesce into a single disk
// read, a single peer fetch, or a single simulation. ctx is the
// owning request's context; it bounds the peer probe (the simulation
// itself ignores it — engine jobs run to completion once started).
// A tier-served result reclassifies the job as a scheduler hit, so
// engine Executed keeps counting simulations this process performed.
//
// The closure attributes its wall-clock to obs phases (queue-wait
// from jobFor construction to closure start, then one phase per tier
// touched) onto both the result's Phases block and the batch's phase
// histograms, and opens child spans on the owner's trace so a traced
// request shows where each run's time went.
func (b *Batch) jobFor(ctx context.Context, n RunSpec, key string) func() RunResult {
	enqueued := time.Now()
	return func() RunResult {
		var pt obs.PhaseTimes
		observe := func(p obs.Phase, d time.Duration) {
			pt.Set(p, d)
			b.phase[p].Observe(d)
		}
		observe(obs.PhaseQueueWait, time.Since(enqueued))
		runCtx, span := obs.StartSpan(ctx, "run")
		span.SetAttr("benchmark", n.Benchmark)
		span.SetAttr("key", key)
		defer span.End()

		if b.disk != nil {
			start := time.Now()
			_, dspan := obs.StartSpan(runCtx, "tier.disk")
			r, ok := b.disk.load(key)
			dspan.End()
			observe(obs.PhaseDiskTier, time.Since(start))
			if ok {
				span.SetAttr("tier", "disk")
				r.Spec = n
				r.Phases = pt
				b.sched.NoteExternalHit()
				return r
			}
		}
		if p := b.PeerStore(); p != nil {
			start := time.Now()
			peerCtx, pspan := obs.StartSpan(runCtx, "tier.peer")
			r, ok := p.Fetch(peerCtx, key)
			pspan.End()
			d := time.Since(start)
			b.peerFetch.Observe(d)
			observe(obs.PhasePeerTier, d)
			if ok {
				span.SetAttr("tier", "peer")
				b.peerHits.Add(1)
				// The wire carries no spec or hierarchy; restore the
				// identity the caller asked for, exactly like a
				// disk-served result.
				r.Spec = n
				r.Hier = nil
				if b.disk != nil {
					start := time.Now()
					b.disk.store(key, r)
					observe(obs.PhasePersist, time.Since(start))
					b.peerInstalls.Add(1)
				}
				r.Phases = pt
				b.sched.NoteExternalHit()
				return r
			}
			b.peerMisses.Add(1)
		}
		span.SetAttr("tier", "simulate")
		simStart := time.Now()
		_, sspan := obs.StartSpan(runCtx, "simulate")
		r := runNormalized(n)
		sspan.End()
		b.noteSimulated(runCtx, n, r, simStart, time.Since(simStart))
		b.phase[obs.PhaseWarmup].Observe(time.Duration(r.Phases.Warmup * float64(time.Second)))
		b.phase[obs.PhaseMeasured].Observe(time.Duration(r.Phases.Measured * float64(time.Second)))
		pt.Warmup, pt.Measured = r.Phases.Warmup, r.Phases.Measured
		if b.disk != nil {
			start := time.Now()
			b.disk.store(key, r)
			observe(obs.PhasePersist, time.Since(start))
		}
		r.Phases = pt
		return r
	}
}

// Disk returns the attached disk cache, or nil.
func (b *Batch) Disk() *DiskCache { return b.disk }

// Close flushes the attached disk cache's debounced index (if any).
// Call it when a batch that persisted results is done — CLI exit,
// server drain — so sibling processes adopting the cache directory
// enumerate every artifact this batch wrote.
func (b *Batch) Close() error {
	if b.disk != nil {
		return b.disk.Close()
	}
	return nil
}

// PreloadDisk installs every indexed on-disk artifact into the batch's
// in-memory run cache, so a long-lived batch (a service) starts warm
// without re-reading artifacts on first request. Returns how many
// results were installed. Preloading counts toward neither the engine
// request stats nor the disk traffic counters.
func (b *Batch) PreloadDisk() (int, error) {
	if b.disk == nil {
		return 0, fmt.Errorf("experiments: batch has no disk cache to preload from")
	}
	n := 0
	for _, key := range b.disk.Keys() {
		r, ok := b.disk.read(key)
		if !ok {
			continue
		}
		if b.sched.Offer(key, r) {
			n++
		}
	}
	return n, nil
}

// DiskStats reports the attached disk cache's traffic; the zero value
// when the batch has no disk cache.
func (b *Batch) DiskStats() DiskCacheStats {
	if b.disk == nil {
		return DiskCacheStats{}
	}
	return b.disk.Stats()
}

// SetCacheLimit bounds the in-memory run cache to the n most recently
// requested results (LRU); n <= 0 removes the bound. Evicted specs
// re-simulate (or reload from the disk cache) on the next request.
// Intended for long-lived batches such as services.
func (b *Batch) SetCacheLimit(n int) { b.sched.SetLimit(n) }

// RunAll executes one simulation per benchmark through the batch
// (results are deterministic per benchmark; parallelism only reorders
// wall time). build constructs the spec for each benchmark name. A
// simulation panic re-raises in this caller (as an error value
// carrying the original panic and stack) instead of crashing the
// process from a fan-out goroutine.
func (b *Batch) RunAll(benchmarks []string, build func(bench string) RunSpec) []RunResult {
	rs, err := b.RunAllCtx(context.Background(), benchmarks, build)
	if err != nil {
		// A background context never cancels, so the only error here is
		// a contained simulation panic.
		panic(err)
	}
	return rs
}

// RunAllCtx is RunAll with cancellation and panic containment: when
// ctx fires, the sweep's queued simulations are withdrawn and the
// first context error is returned; a panicking simulation surfaces as
// an error instead of crashing its fan-out goroutine's process. On
// error the partial results are discarded, but every cell that did
// complete stays memoized in the batch.
func (b *Batch) RunAllCtx(ctx context.Context, benchmarks []string, build func(bench string) RunSpec) ([]RunResult, error) {
	out := make([]RunResult, len(benchmarks))
	errs := make(chan error, len(benchmarks))
	for i, bench := range benchmarks {
		go func(i int, bench string) {
			var err error
			defer func() {
				if p := recover(); p != nil {
					// The panic site's stack is only reachable here;
					// carry it so the failure stays diagnosable once
					// flattened to an error.
					err = fmt.Errorf("experiments: %s simulation panicked: %v\n%s", bench, p, debug.Stack())
				}
				errs <- err
			}()
			out[i], err = b.RunCtx(ctx, build(bench))
		}(i, bench)
	}
	var firstErr error
	for range benchmarks {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Stats returns the batch's scheduler accounting: how many runs were
// requested, how many actually simulated, and how many were served
// from the cache or coalesced onto an in-flight simulation.
func (b *Batch) Stats() engine.Stats { return b.sched.Stats() }

// DistinctRuns returns the number of distinct specs the batch has
// seen.
func (b *Batch) DistinctRuns() int { return b.sched.Len() }

// Workers returns the batch's concurrency bound.
func (b *Batch) Workers() int { return b.sched.Workers() }

// RunAll executes one simulation per benchmark in parallel through a
// fresh single-use batch. Kept for callers that do not share runs
// across harnesses; prefer NewBatch + the Batch methods.
func RunAll(benchmarks []string, build func(bench string) RunSpec) []RunResult {
	return NewBatch(0).RunAll(benchmarks, build)
}

// Benchmarks returns the benchmark list (re-exported for cmd tools).
func Benchmarks() []string { return trace.Benchmarks() }
