// Package experiments contains one harness per table and figure of
// the paper's evaluation (see DESIGN.md §3 for the index). Each
// harness runs the necessary simulations and returns a result struct
// that renders to the same rows/series the paper reports.
//
// Simulation length is configurable: the paper simulates 100M
// instructions per benchmark after warm-up; these harnesses default to
// a smaller, deterministic sample that preserves the qualitative
// shape, and accept larger counts for higher-fidelity runs.
package experiments

import (
	"runtime"
	"sync"

	"samielsq/internal/core"
	"samielsq/internal/cpu"
	"samielsq/internal/energy"
	"samielsq/internal/lsq"
	"samielsq/internal/mem"
	"samielsq/internal/tlb"
	"samielsq/internal/trace"
)

// DefaultInsts is the default per-benchmark instruction budget for the
// experiment harnesses.
const DefaultInsts = 300_000

// ModelKind selects the LSQ organization for a run.
type ModelKind int

// Supported LSQ organizations.
const (
	ModelConventional ModelKind = iota
	ModelUnbounded
	ModelARB
	ModelSAMIE
)

// RunSpec describes one simulation.
type RunSpec struct {
	Benchmark string
	Insts     uint64
	Warmup    uint64 // warm-up instructions before measurement; default Insts/2
	Model     ModelKind

	// Conventional.
	ConvEntries int // default 128

	// ARB geometry.
	ARBBanks, ARBAddrs, ARBInflight int

	// SAMIE configuration; zero value means core.PaperConfig().
	SAMIE *core.Config

	// CPU overrides; zero value means cpu.PaperConfig().
	CPU *cpu.Config
}

// RunResult bundles everything a harness needs from one simulation.
type RunResult struct {
	Spec  RunSpec
	CPU   cpu.Result
	Meter *energy.Meter
	Hier  *mem.Hierarchy
	SAMIE core.Stats         // populated for ModelSAMIE
	Conv  lsq.OccupancyStats // populated for ModelConventional
}

// Run executes one simulation per the spec.
func Run(spec RunSpec) RunResult {
	if spec.Insts == 0 {
		spec.Insts = DefaultInsts
	}
	if spec.Warmup == 0 {
		spec.Warmup = spec.Insts / 2
	}
	p := trace.MustPersonality(spec.Benchmark)
	meter := energy.NewMeter()

	var model lsq.Model
	var samie *core.SAMIE
	var conv *lsq.Conventional
	switch spec.Model {
	case ModelConventional:
		entries := spec.ConvEntries
		if entries == 0 {
			entries = 128
		}
		conv = lsq.NewConventional(entries, meter)
		model = conv
	case ModelUnbounded:
		model = lsq.NewUnbounded()
	case ModelARB:
		model = lsq.NewARB(spec.ARBBanks, spec.ARBAddrs, spec.ARBInflight)
	case ModelSAMIE:
		cfg := core.PaperConfig()
		if spec.SAMIE != nil {
			cfg = *spec.SAMIE
		}
		samie = core.New(cfg, meter)
		model = samie
	default:
		panic("experiments: unknown model kind")
	}

	ccfg := cpu.PaperConfig()
	if spec.CPU != nil {
		ccfg = *spec.CPU
	}
	hier := mem.NewPaper()
	c := cpu.New(ccfg, trace.NewGenerator(p), model, hier, tlb.New(tlb.PaperDTLB()), nil, meter)
	res := RunResult{Spec: spec, Meter: meter}
	res.CPU = c.RunWarm(spec.Warmup, spec.Insts)
	res.Hier = hier
	if samie != nil {
		res.SAMIE = samie.Stats()
	}
	if conv != nil {
		res.Conv = conv.Occupancy()
	}
	return res
}

// RunAll executes one simulation per benchmark in parallel (results
// are deterministic per benchmark; parallelism only reorders wall
// time). build constructs the spec for each benchmark name.
func RunAll(benchmarks []string, build func(bench string) RunSpec) []RunResult {
	out := make([]RunResult, len(benchmarks))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, b := range benchmarks {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, b string) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i] = Run(build(b))
		}(i, b)
	}
	wg.Wait()
	return out
}

// Benchmarks returns the benchmark list (re-exported for cmd tools).
func Benchmarks() []string { return trace.Benchmarks() }
