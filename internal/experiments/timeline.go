package experiments

// Telemetry rollups: everything the batch learns from the timelines
// of runs it simulated itself. Fed by jobFor's simulate branch, read
// by /v1/stats, /metrics and samie-bench -timeline-out. Tier-served
// results (disk, peer) carry no timeline and contribute nothing, so
// the rollups count each simulation's telemetry exactly once
// fabric-wide — on the replica that performed it.

import (
	"context"
	"time"

	"samielsq/internal/obs"
)

// maxRetainedTimelines bounds the raw timelines a batch keeps for
// -timeline-out; a full 148-spec sweep fits with room to spare, and a
// long-lived server stops retaining (the aggregates keep counting)
// rather than growing without bound.
const maxRetainedTimelines = 512

// RunTimeline pairs one simulated run's identity with its timeline.
type RunTimeline struct {
	Key       string               `json:"key"`
	Benchmark string               `json:"benchmark"`
	Model     string               `json:"model"`
	Stride    uint64               `json:"stride"`
	Samples   []obs.TimelineSample `json:"samples"`
}

// modelName renders a ModelKind for telemetry labels.
func modelName(m ModelKind) string {
	switch m {
	case ModelConventional:
		return "conv"
	case ModelUnbounded:
		return "unbounded"
	case ModelARB:
		return "arb"
	case ModelSAMIE:
		return "samie"
	}
	return "unknown"
}

// noteSimulated folds one freshly simulated run into the batch's
// telemetry rollups and, when the owning request is traced, records
// the run's occupancy/IPC curves as a counter track on that trace so
// -trace-out renders them under the span tree.
func (b *Batch) noteSimulated(ctx context.Context, n RunSpec, r RunResult, start time.Time, dur time.Duration) {
	t := r.Timeline
	if t == nil || len(t.Samples) == 0 {
		return
	}
	key := keyOf(n)

	b.occMu.Lock()
	agg := b.occ[n.Benchmark]
	if agg == nil {
		agg = &obs.OccupancyAgg{}
		b.occ[n.Benchmark] = agg
	}
	agg.Observe(t)
	if r.Meter != nil {
		m := r.Meter
		b.energyPJ["conv_lsq"] += m.ConvLSQ
		b.energyPJ["distrib"] += m.Distrib
		b.energyPJ["shared"] += m.Shared
		b.energyPJ["addr_buffer"] += m.AddrBuffer
		b.energyPJ["bus"] += m.Bus
		b.energyPJ["dcache"] += m.Dcache
		b.energyPJ["dtlb"] += m.DTLB
	}
	if len(b.timelines) < maxRetainedTimelines {
		b.timelines = append(b.timelines, RunTimeline{
			Key:       key,
			Benchmark: n.Benchmark,
			Model:     modelName(n.Model),
			Stride:    t.Stride,
			Samples:   t.Samples,
		})
	}
	b.occMu.Unlock()

	obs.RecordCounters(ctx, counterTrack(n, t, start, dur))
}

// counterTrack converts a run's timeline into a Chrome counter track:
// the simulated cycles map linearly onto the simulate span's
// wall-clock window, so the curves line up under the run's spans in
// Perfetto. Occupancies and IPC become the series; energy stays in
// the timeline endpoint (a pJ-per-interval curve has no natural
// counter scale next to entry counts).
func counterTrack(n RunSpec, t *obs.Timeline, start time.Time, dur time.Duration) obs.CounterTrack {
	name := "occ " + n.Benchmark + "/" + modelName(n.Model)
	samples := make([]obs.CounterSample, 0, len(t.Samples))
	lastCycle := t.Samples[len(t.Samples)-1].Cycle
	firstCycle := t.Samples[0].Cycle
	span := lastCycle - firstCycle
	for _, ts := range t.Samples {
		frac := 1.0
		if span > 0 {
			frac = float64(ts.Cycle-firstCycle) / float64(span)
		}
		samples = append(samples, obs.CounterSample{
			TS: start.Add(time.Duration(frac * float64(dur))).UnixMicro(),
			Values: map[string]float64{
				"lsq":      float64(ts.LSQ),
				"rob":      float64(ts.ROB),
				"addr_buf": float64(ts.AddrBuf),
				"ipc":      ts.IPC,
			},
		})
	}
	return obs.CounterTrack{Name: name, Samples: samples}
}

// TimelineStats snapshots the per-benchmark occupancy aggregates of
// every run this batch simulated. Exposed through /v1/stats
// ("timeline_stats") and the samie_lsq_occupancy metric family;
// cluster tooling merges per-replica maps with OccupancyAgg.Add.
func (b *Batch) TimelineStats() map[string]obs.OccupancyAgg {
	b.occMu.Lock()
	defer b.occMu.Unlock()
	out := make(map[string]obs.OccupancyAgg, len(b.occ))
	for k, v := range b.occ {
		out[k] = *v
	}
	return out
}

// EnergyPJ snapshots the per-structure dynamic energy (pJ) summed
// over every run this batch simulated — the source of
// samie_energy_joules_total{structure}.
func (b *Batch) EnergyPJ() map[string]float64 {
	b.occMu.Lock()
	defer b.occMu.Unlock()
	out := make(map[string]float64, len(b.energyPJ))
	for k, v := range b.energyPJ {
		out[k] = v
	}
	return out
}

// Timelines returns the retained raw timelines, one per simulated
// run, up to the retention bound (oldest retained first). The backing
// sample slices are shared — treat them as read-only.
func (b *Batch) Timelines() []RunTimeline {
	b.occMu.Lock()
	defer b.occMu.Unlock()
	return append([]RunTimeline(nil), b.timelines...)
}
