package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDoMemoizes verifies the exactly-once contract: any number of
// requests for one key execute the job a single time and all observe
// the same value.
func TestDoMemoizes(t *testing.T) {
	s := New[string, int](4)
	var runs atomic.Int32
	const callers = 64
	results := make([]int, callers)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = s.Do("k", func() int {
				return int(runs.Add(1)) * 100
			})
		}(i)
	}
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Fatalf("job ran %d times, want exactly 1", got)
	}
	for i, r := range results {
		if r != 100 {
			t.Fatalf("caller %d got %d, want 100", i, r)
		}
	}
	st := s.Stats()
	if st.Requests != callers || st.Executed != 1 || st.Hits != callers-1 {
		t.Fatalf("stats %+v, want requests=%d executed=1 hits=%d", st, callers, callers-1)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

// TestDeterminismAcrossWorkerCounts verifies that the result set is a
// pure function of the keys, independent of pool size and submission
// concurrency.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	compute := func(k int) int { return k*k + 7 }
	const keys = 200
	run := func(workers int) []int {
		s := New[int, int](workers)
		out := make([]int, keys)
		var wg sync.WaitGroup
		for k := 0; k < keys; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				// Every key requested three times from racing goroutines.
				for i := 0; i < 3; i++ {
					out[k] = s.Do(k%50, func() int { return compute(k % 50) })
				}
			}(k)
		}
		wg.Wait()
		if st := s.Stats(); st.Executed != 50 {
			t.Fatalf("workers=%d executed %d distinct jobs, want 50", workers, st.Executed)
		}
		return out
	}
	serial := run(1)
	for _, workers := range []int{2, 8, 32} {
		if got := run(workers); !equalInts(got, serial) {
			t.Fatalf("workers=%d results differ from serial run", workers)
		}
	}
}

// TestWorkerBound verifies the pool never runs more than `workers`
// jobs at once.
func TestWorkerBound(t *testing.T) {
	const workers = 3
	s := New[int, int](workers)
	var inFlight, peak atomic.Int32
	var wg sync.WaitGroup
	for k := 0; k < 100; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			s.Do(k, func() int {
				n := inFlight.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				defer inFlight.Add(-1)
				return k
			})
		}(k)
	}
	wg.Wait()
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds worker bound %d", p, workers)
	}
	if s.Workers() != workers {
		t.Fatalf("Workers() = %d, want %d", s.Workers(), workers)
	}
}

// TestCached verifies non-blocking cache reads.
func TestCached(t *testing.T) {
	s := New[string, int](1)
	if _, ok := s.Cached("missing"); ok {
		t.Fatal("Cached hit on a key never requested")
	}
	release := make(chan struct{})
	started := make(chan struct{})
	go s.Do("slow", func() int { close(started); <-release; return 9 })
	<-started
	if _, ok := s.Cached("slow"); ok {
		t.Fatal("Cached returned an in-flight job")
	}
	close(release)
	if v := s.Do("slow", func() int { t.Error("re-ran a cached job"); return 0 }); v != 9 {
		t.Fatalf("got %d, want 9", v)
	}
	if v, ok := s.Cached("slow"); !ok || v != 9 {
		t.Fatalf("Cached = %d,%v after completion, want 9,true", v, ok)
	}
}

// TestStressConcurrency hammers the scheduler from many goroutines
// over a shared key space; run under -race this validates the
// synchronization of the job map, the singleflight handoff and the
// stats counters.
func TestStressConcurrency(t *testing.T) {
	s := New[string, string](8)
	const goroutines, iters, keySpace = 32, 200, 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := fmt.Sprintf("key-%d", (g*iters+i)%keySpace)
				want := k + "!"
				if got := s.Do(k, func() string { return k + "!" }); got != want {
					t.Errorf("Do(%q) = %q, want %q", k, got, want)
					return
				}
				if v, ok := s.Cached(k); ok && v != want {
					t.Errorf("Cached(%q) = %q, want %q", k, v, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Executed != keySpace {
		t.Fatalf("executed %d, want %d", st.Executed, keySpace)
	}
	if st.Requests != goroutines*iters || st.Hits != st.Requests-keySpace {
		t.Fatalf("stats %+v inconsistent", st)
	}
	if r := st.HitRate(); r <= 0.9 {
		t.Fatalf("hit rate %.3f suspiciously low", r)
	}
}

// TestPanicSafety verifies a panicking job releases its worker slot,
// re-raises in present and future callers, and leaves the scheduler
// usable for other keys.
func TestPanicSafety(t *testing.T) {
	s := New[string, int](1)
	mustPanic := func(f func()) (r any) {
		defer func() { r = recover() }()
		f()
		return nil
	}
	if r := mustPanic(func() { s.Do("bad", func() int { panic("boom") }) }); r != "boom" {
		t.Fatalf("executor recovered %v, want boom", r)
	}
	// A later caller for the same key sees the same panic...
	if r := mustPanic(func() { s.Do("bad", func() int { return 1 }) }); r != "boom" {
		t.Fatalf("waiter recovered %v, want boom", r)
	}
	// ...Cached does not report it as a value...
	if _, ok := s.Cached("bad"); ok {
		t.Fatal("Cached returned a panicked job as a value")
	}
	// ...and the single worker slot was released: other keys still run.
	if v := s.Do("good", func() int { return 42 }); v != 42 {
		t.Fatalf("scheduler unusable after panic: got %d", v)
	}
	if st := s.Stats(); st.Executed != 2 {
		t.Fatalf("executed %d, want 2 (panicked job counts as executed)", st.Executed)
	}
}

// TestDoCtxCancelWhileQueued verifies the satellite fix: a request
// canceled while waiting for a worker slot (queued, never started)
// releases immediately, does not leak the slot, and withdraws the key
// so a later request re-executes it.
func TestDoCtxCancelWhileQueued(t *testing.T) {
	s := New[string, int](1)
	release := make(chan struct{})
	started := make(chan struct{})
	go s.Do("hog", func() int { close(started); <-release; return 1 })
	<-started

	// The pool's only slot is held; this request queues behind it.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.DoCtx(ctx, "queued", func() int {
			t.Error("canceled job ran")
			return 0
		})
		errc <- err
	}()
	// Wait until the request has registered its job, then cancel it.
	for s.Len() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("DoCtx returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled request did not release")
	}
	if st := s.Stats(); st.Canceled != 1 {
		t.Fatalf("canceled count %d, want 1", st.Canceled)
	}
	if s.Len() != 1 {
		t.Fatalf("withdrawn key still registered: Len = %d, want 1", s.Len())
	}

	// The slot was never consumed by the canceled request: finishing the
	// hog and re-requesting the key must execute it fresh.
	close(release)
	var ran atomic.Int32
	v, err := s.DoCtx(context.Background(), "queued", func() int { ran.Add(1); return 7 })
	if err != nil || v != 7 || ran.Load() != 1 {
		t.Fatalf("re-request after cancel: v=%d err=%v ran=%d, want 7,nil,1", v, err, ran.Load())
	}
}

// TestDoCtxWaiterCancel verifies a waiter that coalesced onto an
// in-flight run can abandon it without affecting the run or the other
// waiters.
func TestDoCtxWaiterCancel(t *testing.T) {
	s := New[string, int](2)
	release := make(chan struct{})
	started := make(chan struct{})
	go s.Do("slow", func() int { close(started); <-release; return 42 })
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.DoCtx(ctx, "slow", func() int { return 0 }); !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter got %v, want context.Canceled", err)
	}
	// The run is unaffected: it completes and serves future requests.
	close(release)
	if v := s.Do("slow", func() int { t.Error("re-ran"); return 0 }); v != 42 {
		t.Fatalf("got %d, want 42", v)
	}
}

// TestDoRetriesWithdrawnJob verifies a plain Do that coalesced onto a
// job withdrawn by its canceled owner transparently re-executes it.
func TestDoRetriesWithdrawnJob(t *testing.T) {
	s := New[string, int](1)
	release := make(chan struct{})
	started := make(chan struct{})
	go s.Do("hog", func() int { close(started); <-release; return 1 })
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	ownerErr := make(chan error, 1)
	go func() {
		_, err := s.DoCtx(ctx, "contended", func() int { return 0 })
		ownerErr <- err
	}()
	for s.Len() < 2 {
		time.Sleep(time.Millisecond)
	}
	// A plain Do coalesces onto the queued owner's job...
	got := make(chan int, 1)
	go func() { got <- s.Do("contended", func() int { return 9 }) }()
	// Give the Do waiter a moment to block on the shared job, then
	// cancel the owner: Do must retry and still produce the value once
	// the pool frees up.
	time.Sleep(5 * time.Millisecond)
	cancel()
	if err := <-ownerErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("owner got %v, want context.Canceled", err)
	}
	close(release)
	select {
	case v := <-got:
		if v != 9 {
			t.Fatalf("Do returned %d, want 9", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do never recovered from the withdrawn job")
	}
}

// TestWithdrawReclassifiesWaiters verifies the accounting of queued
// cancellation: waiters released unserved by a withdrawn owner count
// as Canceled, not Hits, so Requests = Executed + Hits + Canceled
// holds once the scheduler is idle.
func TestWithdrawReclassifiesWaiters(t *testing.T) {
	s := New[string, int](1)
	release := make(chan struct{})
	started := make(chan struct{})
	go s.Do("hog", func() int { close(started); <-release; return 1 })
	<-started

	// The owner queues behind the hog; waiters coalesce onto its job.
	ctx, cancel := context.WithCancel(context.Background())
	ownerErr := make(chan error, 1)
	go func() {
		_, err := s.DoCtx(ctx, "contended", func() int { return 0 })
		ownerErr <- err
	}()
	for s.Len() < 2 {
		time.Sleep(time.Millisecond)
	}
	// The waiters carry their own cancelable context so the outcome is
	// deterministic whatever the goroutine schedule: a waiter that
	// coalesced before the owner's cancellation is released with the
	// owner's error; one that arrived after becomes a new owner and is
	// withdrawn by its own context. Either way it ends Canceled exactly
	// once and the job never runs (the hog holds the only slot
	// throughout).
	wctx, wcancel := context.WithCancel(context.Background())
	const waiters = 3
	waiterErr := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			_, err := s.DoCtx(wctx, "contended", func() int {
				t.Error("withdrawn job ran in a waiter")
				return 0
			})
			waiterErr <- err
		}()
	}
	// Give the waiters a moment to block on the shared job, then cancel
	// the owner: every coalesced waiter is released with its error.
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-ownerErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("owner got %v, want context.Canceled", err)
	}
	wcancel()
	for i := 0; i < waiters; i++ {
		if err := <-waiterErr; !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter got %v, want context.Canceled", err)
		}
	}
	close(release)
	s.Do("hog", func() int { t.Error("re-ran the hog"); return 0 })

	st := s.Stats()
	// hog + owner + waiters + the hog re-read above.
	if st.Requests != 3+waiters {
		t.Fatalf("requests %d, want %d", st.Requests, 3+waiters)
	}
	if st.Canceled != 1+waiters {
		t.Fatalf("canceled %d, want %d (owner plus released waiters)", st.Canceled, 1+waiters)
	}
	if st.Hits != 1 {
		t.Fatalf("hits %d, want 1 (only the hog re-read was served)", st.Hits)
	}
	if st.Requests != st.Executed+st.Hits+st.Canceled {
		t.Fatalf("accounting does not balance: %+v", st)
	}
}

// TestOffer verifies preloaded values are served without executing and
// never overwrite an existing job.
func TestOffer(t *testing.T) {
	s := New[string, int](1)
	if !s.Offer("warm", 5) {
		t.Fatal("Offer rejected a fresh key")
	}
	if s.Offer("warm", 6) {
		t.Fatal("Offer overwrote an existing result")
	}
	if v := s.Do("warm", func() int { t.Error("preloaded key executed"); return 0 }); v != 5 {
		t.Fatalf("got %d, want 5", v)
	}
	st := s.Stats()
	if st.Executed != 0 || st.Hits != 1 || st.Requests != 1 {
		t.Fatalf("stats %+v, want executed=0 hits=1 requests=1", st)
	}
	if v, ok := s.Cached("warm"); !ok || v != 5 {
		t.Fatalf("Cached = %d,%v, want 5,true", v, ok)
	}
}

// TestOfferRespectsLimit verifies offered results participate in the
// LRU bound like executed ones.
func TestOfferRespectsLimit(t *testing.T) {
	s := New[int, int](1)
	s.SetLimit(2)
	for k := 0; k < 5; k++ {
		s.Offer(k, k*10)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 under limit", s.Len())
	}
	if s.Evictions() != 3 {
		t.Fatalf("evictions %d, want 3", s.Evictions())
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
