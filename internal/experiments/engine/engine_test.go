package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestDoMemoizes verifies the exactly-once contract: any number of
// requests for one key execute the job a single time and all observe
// the same value.
func TestDoMemoizes(t *testing.T) {
	s := New[string, int](4)
	var runs atomic.Int32
	const callers = 64
	results := make([]int, callers)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = s.Do("k", func() int {
				return int(runs.Add(1)) * 100
			})
		}(i)
	}
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Fatalf("job ran %d times, want exactly 1", got)
	}
	for i, r := range results {
		if r != 100 {
			t.Fatalf("caller %d got %d, want 100", i, r)
		}
	}
	st := s.Stats()
	if st.Requests != callers || st.Executed != 1 || st.Hits != callers-1 {
		t.Fatalf("stats %+v, want requests=%d executed=1 hits=%d", st, callers, callers-1)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

// TestDeterminismAcrossWorkerCounts verifies that the result set is a
// pure function of the keys, independent of pool size and submission
// concurrency.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	compute := func(k int) int { return k*k + 7 }
	const keys = 200
	run := func(workers int) []int {
		s := New[int, int](workers)
		out := make([]int, keys)
		var wg sync.WaitGroup
		for k := 0; k < keys; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				// Every key requested three times from racing goroutines.
				for i := 0; i < 3; i++ {
					out[k] = s.Do(k%50, func() int { return compute(k % 50) })
				}
			}(k)
		}
		wg.Wait()
		if st := s.Stats(); st.Executed != 50 {
			t.Fatalf("workers=%d executed %d distinct jobs, want 50", workers, st.Executed)
		}
		return out
	}
	serial := run(1)
	for _, workers := range []int{2, 8, 32} {
		if got := run(workers); !equalInts(got, serial) {
			t.Fatalf("workers=%d results differ from serial run", workers)
		}
	}
}

// TestWorkerBound verifies the pool never runs more than `workers`
// jobs at once.
func TestWorkerBound(t *testing.T) {
	const workers = 3
	s := New[int, int](workers)
	var inFlight, peak atomic.Int32
	var wg sync.WaitGroup
	for k := 0; k < 100; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			s.Do(k, func() int {
				n := inFlight.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				defer inFlight.Add(-1)
				return k
			})
		}(k)
	}
	wg.Wait()
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds worker bound %d", p, workers)
	}
	if s.Workers() != workers {
		t.Fatalf("Workers() = %d, want %d", s.Workers(), workers)
	}
}

// TestCached verifies non-blocking cache reads.
func TestCached(t *testing.T) {
	s := New[string, int](1)
	if _, ok := s.Cached("missing"); ok {
		t.Fatal("Cached hit on a key never requested")
	}
	release := make(chan struct{})
	started := make(chan struct{})
	go s.Do("slow", func() int { close(started); <-release; return 9 })
	<-started
	if _, ok := s.Cached("slow"); ok {
		t.Fatal("Cached returned an in-flight job")
	}
	close(release)
	if v := s.Do("slow", func() int { t.Error("re-ran a cached job"); return 0 }); v != 9 {
		t.Fatalf("got %d, want 9", v)
	}
	if v, ok := s.Cached("slow"); !ok || v != 9 {
		t.Fatalf("Cached = %d,%v after completion, want 9,true", v, ok)
	}
}

// TestStressConcurrency hammers the scheduler from many goroutines
// over a shared key space; run under -race this validates the
// synchronization of the job map, the singleflight handoff and the
// stats counters.
func TestStressConcurrency(t *testing.T) {
	s := New[string, string](8)
	const goroutines, iters, keySpace = 32, 200, 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := fmt.Sprintf("key-%d", (g*iters+i)%keySpace)
				want := k + "!"
				if got := s.Do(k, func() string { return k + "!" }); got != want {
					t.Errorf("Do(%q) = %q, want %q", k, got, want)
					return
				}
				if v, ok := s.Cached(k); ok && v != want {
					t.Errorf("Cached(%q) = %q, want %q", k, v, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Executed != keySpace {
		t.Fatalf("executed %d, want %d", st.Executed, keySpace)
	}
	if st.Requests != goroutines*iters || st.Hits != st.Requests-keySpace {
		t.Fatalf("stats %+v inconsistent", st)
	}
	if r := st.HitRate(); r <= 0.9 {
		t.Fatalf("hit rate %.3f suspiciously low", r)
	}
}

// TestPanicSafety verifies a panicking job releases its worker slot,
// re-raises in present and future callers, and leaves the scheduler
// usable for other keys.
func TestPanicSafety(t *testing.T) {
	s := New[string, int](1)
	mustPanic := func(f func()) (r any) {
		defer func() { r = recover() }()
		f()
		return nil
	}
	if r := mustPanic(func() { s.Do("bad", func() int { panic("boom") }) }); r != "boom" {
		t.Fatalf("executor recovered %v, want boom", r)
	}
	// A later caller for the same key sees the same panic...
	if r := mustPanic(func() { s.Do("bad", func() int { return 1 }) }); r != "boom" {
		t.Fatalf("waiter recovered %v, want boom", r)
	}
	// ...Cached does not report it as a value...
	if _, ok := s.Cached("bad"); ok {
		t.Fatal("Cached returned a panicked job as a value")
	}
	// ...and the single worker slot was released: other keys still run.
	if v := s.Do("good", func() int { return 42 }); v != 42 {
		t.Fatalf("scheduler unusable after panic: got %d", v)
	}
	if st := s.Stats(); st.Executed != 2 {
		t.Fatalf("executed %d, want 2 (panicked job counts as executed)", st.Executed)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
