// Package engine provides the shared execution layer for the
// experiment harnesses: a concurrent scheduler that memoizes the
// result of each keyed job, coalesces concurrent requests for the same
// key onto a single execution (singleflight), and bounds the number of
// jobs running at once with a worker pool.
//
// The scheduler is generic and knows nothing about simulations; the
// experiments package keys each RunSpec canonically and submits the
// simulation as the job. One Scheduler shared across every figure and
// table harness guarantees each distinct simulation executes exactly
// once per batch, however many harnesses request it and in whatever
// order.
package engine

import (
	"container/list"
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Stats is the scheduler's request accounting. Every finished request
// counts toward exactly one of Executed, Hits or Canceled, so
// Requests = Executed + Hits + Canceled once the scheduler is idle.
type Stats struct {
	Requests   int64 // total Do/DoCtx calls
	Executed   int64 // jobs that did the work themselves (distinct keys, minus external-tier hits)
	Hits       int64 // requests served a completed result (memoized, coalesced, or an external tier)
	Inflight   int64 // jobs holding a worker slot right now
	QueueDepth int64 // owning requests waiting for a worker slot right now
	Canceled   int64 // requests abandoned via context, or released unserved by a withdrawn owner
	Evictions  int64 // completed results dropped by the LRU bound
}

// HitRate returns Hits/Requests, or 0 with no requests.
func (s Stats) HitRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Requests)
}

// Scheduler executes keyed jobs at most once each, with at most
// `workers` jobs running concurrently. Results stay cached for the
// scheduler's lifetime, so it also acts as the batch's run cache.
type Scheduler[K comparable, V any] struct {
	slots chan struct{}

	mu   sync.Mutex
	jobs map[K]*job[V]

	// Optional LRU bound on retained results (see SetLimit). Completed
	// jobs (panicked included) are tracked; in-flight jobs are never
	// evicted.
	limit  int
	lru    *list.List
	lruIdx map[K]*list.Element

	requests  atomic.Int64
	executed  atomic.Int64
	hits      atomic.Int64
	evictions atomic.Int64
	inflight  atomic.Int64
	queued    atomic.Int64 // owners blocked on slot acquisition
	canceled  atomic.Int64
	external  atomic.Int64 // jobs whose run() was served by an external tier (see NoteExternalHit)
}

type job[V any] struct {
	done     chan struct{}
	val      V
	panicked any   // non-nil if run() panicked; re-raised in every caller
	err      error // non-nil if the owning request was canceled while queued
}

// New returns a scheduler bounded to `workers` concurrent jobs;
// workers <= 0 means GOMAXPROCS.
func New[K comparable, V any](workers int) *Scheduler[K, V] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Scheduler[K, V]{
		slots: make(chan struct{}, workers),
		jobs:  make(map[K]*job[V]),
	}
}

// Do returns the memoized result for key, running `run` if and only if
// this is the first request for it. Concurrent callers with the same
// key block until the single execution finishes and then share its
// result. If run panics, the panic is re-raised in every caller for
// the key (present and future) and the worker slot is released, so
// one bad job cannot poison the pool. `run` must not call Do on the
// same scheduler (jobs holding worker slots waiting on other jobs can
// deadlock the pool).
func (s *Scheduler[K, V]) Do(key K, run func() V) V {
	for {
		v, err := s.DoCtx(context.Background(), key, run)
		if err == nil {
			return v
		}
		// With a background context the only error path is coalescing
		// onto a job whose owner was canceled while queued; the key has
		// already been withdrawn, so retrying re-executes it.
	}
}

// DoCtx is Do with cancellation. The context governs this request, not
// the shared execution: a waiter that coalesced onto an in-flight run
// stops waiting when ctx fires (the run continues for the others),
// while the owning request — the first for its key — cancels the job
// outright if ctx fires before a worker slot frees up, withdrawing the
// key so a later request re-executes it. Waiters that had coalesced
// onto a withdrawn job receive the owner's cancellation error; Do
// retries it transparently, DoCtx callers see context.Canceled (or
// DeadlineExceeded) and decide themselves. Once a job has started
// running it always runs to completion: simulations are memoized
// forever, so finishing work someone already paid for is never waste.
func (s *Scheduler[K, V]) DoCtx(ctx context.Context, key K, run func() V) (V, error) {
	s.requests.Add(1)
	s.mu.Lock()
	if j, ok := s.jobs[key]; ok {
		if el, tracked := s.lruIdx[key]; tracked {
			s.lru.MoveToFront(el)
		}
		s.mu.Unlock()
		select {
		case <-j.done:
		case <-ctx.Done():
			s.canceled.Add(1)
			return *new(V), ctx.Err()
		}
		if j.err != nil {
			// The job never ran: its owner withdrew it while queued and
			// released us with its error. We were never served, so this
			// request is a cancellation, not a hit.
			s.canceled.Add(1)
			return *new(V), j.err
		}
		s.hits.Add(1)
		if j.panicked != nil {
			panic(j.panicked)
		}
		return j.val, nil
	}
	j := &job[V]{done: make(chan struct{})}
	s.jobs[key] = j
	s.mu.Unlock()

	s.queued.Add(1)
	select {
	case s.slots <- struct{}{}:
		s.queued.Add(-1)
	case <-ctx.Done():
		s.queued.Add(-1)
		s.withdraw(key, j, ctx.Err())
		return *new(V), ctx.Err()
	}
	// The slot acquisition can race a cancellation; prefer the
	// cancellation so a disconnected client never starts a simulation.
	if err := ctx.Err(); err != nil {
		<-s.slots
		s.withdraw(key, j, err)
		return *new(V), err
	}
	s.inflight.Add(1)
	func() {
		defer func() {
			j.panicked = recover()
			s.inflight.Add(-1)
			<-s.slots
			s.executed.Add(1)
			close(j.done)
		}()
		j.val = run()
	}()
	s.noteCompleted(key)
	if j.panicked != nil {
		panic(j.panicked)
	}
	return j.val, nil
}

// withdraw removes a never-started job so future requests re-execute,
// and releases every waiter that coalesced onto it with err. The
// Canceled increment here covers the owning request only; each
// released waiter counts itself when it observes j.err.
func (s *Scheduler[K, V]) withdraw(key K, j *job[V], err error) {
	s.mu.Lock()
	// Only withdraw the job if it is still ours: the map cannot have
	// been replaced (replacement requires the key absent, and we only
	// delete it here), so this is a plain delete.
	delete(s.jobs, key)
	s.mu.Unlock()
	j.err = err
	s.canceled.Add(1)
	close(j.done)
}

// Offer registers an already-computed result for key if the scheduler
// has no job for it, without counting toward the request stats. Used
// to preload a long-lived scheduler from a persistent cache. Returns
// whether the value was installed.
func (s *Scheduler[K, V]) Offer(key K, val V) bool {
	s.mu.Lock()
	if _, ok := s.jobs[key]; ok {
		s.mu.Unlock()
		return false
	}
	j := &job[V]{done: make(chan struct{}), val: val}
	close(j.done)
	s.jobs[key] = j
	s.mu.Unlock()
	s.noteCompleted(key)
	return true
}

// noteCompleted registers a finished execution with the LRU bound and
// evicts the coldest completed jobs beyond the limit. Panicked jobs
// are tracked too: with no limit they are retained (re-requesting the
// key re-raises the panic, matching the unbounded scheduler), but a
// bounded scheduler must not let them accumulate — once evicted, a
// re-request re-executes.
func (s *Scheduler[K, V]) noteCompleted(key K) {
	s.mu.Lock()
	if s.limit > 0 {
		if _, ok := s.lruIdx[key]; !ok {
			s.lruIdx[key] = s.lru.PushFront(key)
		}
		for s.lru.Len() > s.limit {
			back := s.lru.Back()
			k := back.Value.(K)
			s.lru.Remove(back)
			delete(s.lruIdx, k)
			delete(s.jobs, k)
			s.evictions.Add(1)
		}
	}
	s.mu.Unlock()
}

// SetLimit bounds how many completed results the scheduler retains;
// the least-recently-requested results beyond the bound are evicted
// and re-requesting them re-executes the job. n <= 0 removes the bound
// (the default). Intended for long-lived batches (services) where the
// run cache would otherwise grow without bound.
func (s *Scheduler[K, V]) SetLimit(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.limit = n
	if n <= 0 {
		s.limit = 0
		s.lru, s.lruIdx = nil, nil
		return
	}
	if s.lru == nil {
		s.lru = list.New()
		s.lruIdx = make(map[K]*list.Element)
		// Adopt already-completed jobs (panicked included) in arbitrary
		// order so a limit set after the fact still bounds the cache.
		//lint:ordered adoption order only biases which memoized results evict first; results are unaffected
		for k, j := range s.jobs {
			select {
			case <-j.done:
				s.lruIdx[k] = s.lru.PushFront(k)
			default:
			}
		}
	}
	for s.lru.Len() > s.limit {
		back := s.lru.Back()
		k := back.Value.(K)
		s.lru.Remove(back)
		delete(s.lruIdx, k)
		delete(s.jobs, k)
		s.evictions.Add(1)
	}
}

// NoteExternalHit reclassifies the currently-executing job as served
// by an external tier (a disk cache, a peer replica) rather than
// computed: Stats counts it as a Hit instead of an Executed, so
// Executed keeps meaning "work this scheduler actually performed".
// Call it from inside the job closure, at most once per execution; the
// Requests = Executed + Hits + Canceled invariant is preserved.
func (s *Scheduler[K, V]) NoteExternalHit() { s.external.Add(1) }

// Evictions returns how many completed results the LRU bound dropped.
func (s *Scheduler[K, V]) Evictions() int64 { return s.evictions.Load() }

// Cached returns the completed result for key, if any. It never blocks
// on an in-flight job and does not count toward request stats.
func (s *Scheduler[K, V]) Cached(key K) (V, bool) {
	s.mu.Lock()
	j, ok := s.jobs[key]
	s.mu.Unlock()
	if !ok {
		return *new(V), false
	}
	select {
	case <-j.done:
		if j.panicked != nil || j.err != nil {
			return *new(V), false
		}
		return j.val, true
	default:
		return *new(V), false
	}
}

// Len returns the number of distinct keys seen (completed or
// in-flight).
func (s *Scheduler[K, V]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// Workers returns the concurrency bound.
func (s *Scheduler[K, V]) Workers() int { return cap(s.slots) }

// Stats returns a snapshot of the request accounting. Jobs flagged by
// NoteExternalHit move from Executed to Hits; the external counter is
// read first so a concurrent flag-then-complete can only undercount
// the move, never drive Executed negative.
func (s *Scheduler[K, V]) Stats() Stats {
	ext := s.external.Load()
	executed := s.executed.Load() - ext
	if executed < 0 {
		// The job that flagged itself has not closed out yet; its
		// executed increment lands momentarily.
		ext += executed
		executed = 0
	}
	return Stats{
		Requests:   s.requests.Load(),
		Executed:   executed,
		Hits:       s.hits.Load() + ext,
		Inflight:   s.inflight.Load(),
		QueueDepth: s.queued.Load(),
		Canceled:   s.canceled.Load(),
		Evictions:  s.evictions.Load(),
	}
}
