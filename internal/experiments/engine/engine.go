// Package engine provides the shared execution layer for the
// experiment harnesses: a concurrent scheduler that memoizes the
// result of each keyed job, coalesces concurrent requests for the same
// key onto a single execution (singleflight), and bounds the number of
// jobs running at once with a worker pool.
//
// The scheduler is generic and knows nothing about simulations; the
// experiments package keys each RunSpec canonically and submits the
// simulation as the job. One Scheduler shared across every figure and
// table harness guarantees each distinct simulation executes exactly
// once per batch, however many harnesses request it and in whatever
// order.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Stats is the scheduler's request accounting.
type Stats struct {
	Requests int64 // total Do calls
	Executed int64 // jobs actually run (distinct keys)
	Hits     int64 // requests served from cache or coalesced onto an in-flight run
}

// HitRate returns Hits/Requests, or 0 with no requests.
func (s Stats) HitRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Requests)
}

// Scheduler executes keyed jobs at most once each, with at most
// `workers` jobs running concurrently. Results stay cached for the
// scheduler's lifetime, so it also acts as the batch's run cache.
type Scheduler[K comparable, V any] struct {
	slots chan struct{}

	mu   sync.Mutex
	jobs map[K]*job[V]

	requests atomic.Int64
	executed atomic.Int64
	hits     atomic.Int64
}

type job[V any] struct {
	done     chan struct{}
	val      V
	panicked any // non-nil if run() panicked; re-raised in every caller
}

// New returns a scheduler bounded to `workers` concurrent jobs;
// workers <= 0 means GOMAXPROCS.
func New[K comparable, V any](workers int) *Scheduler[K, V] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Scheduler[K, V]{
		slots: make(chan struct{}, workers),
		jobs:  make(map[K]*job[V]),
	}
}

// Do returns the memoized result for key, running `run` if and only if
// this is the first request for it. Concurrent callers with the same
// key block until the single execution finishes and then share its
// result. If run panics, the panic is re-raised in every caller for
// the key (present and future) and the worker slot is released, so
// one bad job cannot poison the pool. `run` must not call Do on the
// same scheduler (jobs holding worker slots waiting on other jobs can
// deadlock the pool).
func (s *Scheduler[K, V]) Do(key K, run func() V) V {
	s.requests.Add(1)
	s.mu.Lock()
	if j, ok := s.jobs[key]; ok {
		s.mu.Unlock()
		s.hits.Add(1)
		<-j.done
		if j.panicked != nil {
			panic(j.panicked)
		}
		return j.val
	}
	j := &job[V]{done: make(chan struct{})}
	s.jobs[key] = j
	s.mu.Unlock()

	s.slots <- struct{}{}
	func() {
		defer func() {
			j.panicked = recover()
			<-s.slots
			s.executed.Add(1)
			close(j.done)
		}()
		j.val = run()
	}()
	if j.panicked != nil {
		panic(j.panicked)
	}
	return j.val
}

// Cached returns the completed result for key, if any. It never blocks
// on an in-flight job and does not count toward request stats.
func (s *Scheduler[K, V]) Cached(key K) (V, bool) {
	s.mu.Lock()
	j, ok := s.jobs[key]
	s.mu.Unlock()
	if !ok {
		return *new(V), false
	}
	select {
	case <-j.done:
		if j.panicked != nil {
			return *new(V), false
		}
		return j.val, true
	default:
		return *new(V), false
	}
}

// Len returns the number of distinct keys seen (completed or
// in-flight).
func (s *Scheduler[K, V]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// Workers returns the concurrency bound.
func (s *Scheduler[K, V]) Workers() int { return cap(s.slots) }

// Stats returns a snapshot of the request accounting.
func (s *Scheduler[K, V]) Stats() Stats {
	return Stats{
		Requests: s.requests.Load(),
		Executed: s.executed.Load(),
		Hits:     s.hits.Load(),
	}
}
