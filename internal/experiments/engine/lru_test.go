package engine

import (
	"sync"
	"testing"
)

func TestLRUEvictionReExecutes(t *testing.T) {
	s := New[int, int](1)
	s.SetLimit(2)
	calls := 0
	run := func(k int) int {
		return s.Do(k, func() int { calls++; return k * 10 })
	}
	run(1)
	run(2)
	run(3) // evicts 1
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if got := run(2); got != 20 || calls != 3 {
		t.Fatalf("retained key re-ran: val %d calls %d", got, calls)
	}
	if got := run(1); got != 10 || calls != 4 {
		t.Fatalf("evicted key not re-run: val %d calls %d", got, calls)
	}
	if s.Evictions() == 0 {
		t.Fatal("no evictions recorded")
	}
	if s.Len() > 2 {
		t.Fatalf("cache holds %d jobs, want <= 2", s.Len())
	}
}

func TestLRURecencyOrder(t *testing.T) {
	s := New[string, int](1)
	s.SetLimit(2)
	s.Do("a", func() int { return 1 })
	s.Do("b", func() int { return 2 })
	s.Do("a", func() int { t.Fatal("a re-ran"); return 0 }) // refresh a
	s.Do("c", func() int { return 3 })                      // must evict b, not a
	ran := false
	s.Do("a", func() int { ran = true; return 0 })
	if ran {
		t.Fatal("recently-used key was evicted")
	}
	s.Do("b", func() int { ran = true; return 0 })
	if !ran {
		t.Fatal("least-recently-used key survived over-limit insert")
	}
}

func TestLRULimitAdoptsExistingAndUnbounds(t *testing.T) {
	s := New[int, int](1)
	for k := 0; k < 5; k++ {
		s.Do(k, func() int { return k })
	}
	s.SetLimit(2) // adopt + trim existing results
	if s.Len() > 2 {
		t.Fatalf("limit set late kept %d jobs", s.Len())
	}
	s.SetLimit(0) // unbounded again: nothing more evicted
	before := s.Evictions()
	for k := 10; k < 20; k++ {
		s.Do(k, func() int { return k })
	}
	if s.Evictions() != before {
		t.Fatal("unbounded scheduler evicted")
	}
	if s.Len() < 10 {
		t.Fatalf("unbounded scheduler dropped results: %d", s.Len())
	}
}

func TestLRUBoundsPanickedJobs(t *testing.T) {
	s := New[int, int](1)
	s.SetLimit(2)
	boom := func() int { panic("boom") }
	mustPanic := func(k int) {
		defer func() {
			if recover() == nil {
				t.Fatalf("key %d did not panic", k)
			}
		}()
		s.Do(k, boom)
	}
	// Panicked jobs must count against the bound instead of
	// accumulating forever...
	for k := 0; k < 10; k++ {
		mustPanic(k)
	}
	if s.Len() > 2 {
		t.Fatalf("panicked jobs escaped the LRU bound: %d retained", s.Len())
	}
	// ...and once evicted, a re-request re-executes instead of
	// replaying the stale panic.
	ran := false
	if got := s.Do(0, func() int { ran = true; return 7 }); !ran || got != 7 {
		t.Fatalf("evicted panicked key did not re-execute: ran=%v got=%d", ran, got)
	}
}

func TestLRUConcurrentUse(t *testing.T) {
	s := New[int, int](4)
	s.SetLimit(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (g + i) % 32
				if got := s.Do(k, func() int { return k }); got != k {
					t.Errorf("Do(%d) = %d", k, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() > 8 {
		t.Fatalf("limit not enforced under concurrency: %d", s.Len())
	}
}
