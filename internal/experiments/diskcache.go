package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"samielsq/internal/core"
	"samielsq/internal/cpu"
	"samielsq/internal/energy"
	"samielsq/internal/lsq"
)

// diskCacheVersion tags the on-disk artifact format; bump it whenever
// RunResult's persisted shape changes so stale artifacts are treated
// as misses instead of being misread.
const diskCacheVersion = 1

// simStamp identifies the simulator build that produced an artifact.
// A spec key alone is not enough: a later commit may change simulation
// semantics, and serving an older build's artifact would reproduce
// numbers the current code cannot. The stamp is the VCS revision (plus
// a dirty marker) when the binary carries build info; builds without
// it (plain `go test`, dirty dev trees) share a conservative "dev"
// stamp — use -cachedir "" or a throwaway directory when iterating on
// simulator semantics uncommitted.
var simStamp = sync.OnceValue(func() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		rev, dirty := "", false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" && !dirty {
			return rev
		}
	}
	return "dev"
})

// diskArtifact is the persisted form of one RunResult. Everything the
// figure and table harnesses read from a result round-trips exactly:
// encoding/json renders float64 with the shortest representation that
// parses back to the identical bits, so figures regenerated from disk
// are byte-identical to fresh simulations. The memory-hierarchy state
// (RunResult.Hier) is deliberately not persisted — its aggregate rates
// already live in the CPU result — so disk-served results carry a nil
// Hier.
type diskArtifact struct {
	Version int
	Sim     string // simulator build stamp (see simStamp)
	Key     string
	CPU     cpu.Result
	Meter   *energy.Meter
	SAMIE   core.Stats
	Conv    lsq.OccupancyStats
}

// DiskCacheStats counts a cache's traffic.
type DiskCacheStats struct {
	Hits   int64 // results served from disk
	Misses int64 // absent, corrupt or incompatible artifacts
	Writes int64 // artifacts persisted
}

// DiskCache spills run results to a directory, content-addressed by
// the canonical RunSpec key, so repeated invocations (separate
// samie-bench runs, CI jobs, several processes on a shared cache
// directory) skip finished simulations entirely. Corrupt or partial
// files — a killed writer, a disk-full truncation — degrade to cache
// misses and are repaired by the rewrite after re-simulation.
// Concurrent writers are safe: artifacts are written to a unique temp
// file and atomically renamed into place.
type DiskCache struct {
	dir string

	hits, misses, writes atomic.Int64
}

// NewDiskCache opens (creating if needed) a cache rooted at dir.
func NewDiskCache(dir string) (*DiskCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("experiments: empty disk cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiments: disk cache: %w", err)
	}
	return &DiskCache{dir: dir}, nil
}

// DefaultCacheDir returns the conventional per-user cache location
// (<user cache dir>/samielsq).
func DefaultCacheDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("experiments: no user cache dir: %w", err)
	}
	return filepath.Join(base, "samielsq"), nil
}

// Dir returns the cache's root directory.
func (d *DiskCache) Dir() string { return d.dir }

// Stats returns a snapshot of the cache traffic counters.
func (d *DiskCache) Stats() DiskCacheStats {
	return DiskCacheStats{
		Hits:   d.hits.Load(),
		Misses: d.misses.Load(),
		Writes: d.writes.Load(),
	}
}

// path maps a canonical spec key to its content-addressed file.
func (d *DiskCache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, "run-"+hex.EncodeToString(sum[:])+".json")
}

// load returns the cached result for key, if a valid artifact exists.
func (d *DiskCache) load(key string) (RunResult, bool) {
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		d.misses.Add(1)
		return RunResult{}, false
	}
	var art diskArtifact
	if err := json.Unmarshal(data, &art); err != nil ||
		art.Version != diskCacheVersion || art.Sim != simStamp() ||
		art.Key != key || art.Meter == nil {
		// Corrupt, truncated, produced by a different simulator build,
		// version-skewed or hash-collided: treat as a miss; the
		// post-simulation store rewrites it.
		d.misses.Add(1)
		return RunResult{}, false
	}
	d.hits.Add(1)
	return RunResult{CPU: art.CPU, Meter: art.Meter, SAMIE: art.SAMIE, Conv: art.Conv}, true
}

// store persists a result. Failures are silent by design: the cache is
// an accelerator, never a correctness dependency.
func (d *DiskCache) store(key string, res RunResult) {
	art := diskArtifact{
		Version: diskCacheVersion,
		Sim:     simStamp(),
		Key:     key,
		CPU:     res.CPU,
		Meter:   res.Meter,
		SAMIE:   res.SAMIE,
		Conv:    res.Conv,
	}
	data, err := json.Marshal(art)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(d.dir, "tmp-run-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, d.path(key)); err != nil {
		os.Remove(name)
		return
	}
	d.writes.Add(1)
}
