package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"samielsq/internal/core"
	"samielsq/internal/cpu"
	"samielsq/internal/energy"
	"samielsq/internal/lsq"
)

// diskCacheVersion tags the on-disk artifact format; bump it whenever
// RunResult's persisted shape changes so stale artifacts are treated
// as misses instead of being misread. Version 2 added the normalized
// Spec so whole-suite preloading can reconstruct complete results.
const diskCacheVersion = 2

// simStamp identifies the simulator build that produced an artifact.
// A spec key alone is not enough: a later commit may change simulation
// semantics, and serving an older build's artifact would reproduce
// numbers the current code cannot. The stamp is the VCS revision (plus
// a dirty marker) when the binary carries build info; builds without
// it (plain `go test`, dirty dev trees) share a conservative "dev"
// stamp — use -cachedir "" or a throwaway directory when iterating on
// simulator semantics uncommitted.
var simStamp = sync.OnceValue(func() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		rev, dirty := "", false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" && !dirty {
			return rev
		}
	}
	return "dev"
})

// diskArtifact is the persisted form of one RunResult. Everything the
// figure and table harnesses read from a result round-trips exactly:
// encoding/json renders float64 with the shortest representation that
// parses back to the identical bits, so figures regenerated from disk
// are byte-identical to fresh simulations. The memory-hierarchy state
// (RunResult.Hier) is deliberately not persisted — its aggregate rates
// already live in the CPU result — so disk-served results carry a nil
// Hier.
type diskArtifact struct {
	Version int
	Sim     string // simulator build stamp (see simStamp)
	Key     string
	Spec    RunSpec // normalized; lets preloaded results keep their identity
	CPU     cpu.Result
	Meter   *energy.Meter
	SAMIE   core.Stats
	Conv    lsq.OccupancyStats
}

// DiskCacheStats counts a cache's traffic.
type DiskCacheStats struct {
	Hits   int64 // results served from disk
	Misses int64 // absent, corrupt or incompatible artifacts
	Writes int64 // artifacts persisted
}

// DiskCache spills run results to a directory, content-addressed by
// the canonical RunSpec key, so repeated invocations (separate
// samie-bench runs, CI jobs, several processes on a shared cache
// directory) skip finished simulations entirely. Corrupt or partial
// files — a killed writer, a disk-full truncation — degrade to cache
// misses and are repaired by the rewrite after re-simulation.
// Concurrent writers are safe: artifacts are written to a unique temp
// file and atomically renamed into place.
//
// Alongside the artifacts the cache maintains index.json, a key ->
// file map that lets a fresh process enumerate (and preload) the whole
// cache without reading every artifact body. The index is an
// accelerator, never an authority: per-key loads go straight to the
// content-addressed file, and a stale or missing index is rebuilt by
// RebuildIndex. Concurrent processes rewrite it atomically
// (last-writer-wins); keys a racing process added are still served by
// load, merely absent from this process's enumeration.
type DiskCache struct {
	dir string

	hits, misses, writes atomic.Int64

	mu  sync.Mutex
	idx map[string]indexEntry

	// Index flushes are debounced: a store marks the index dirty and
	// arms a timer; the whole O(N) marshal+write happens once per
	// flushDelay however many artifacts land in the window, instead of
	// once per store (O(N²) aggregate for a long-lived server). The
	// index stays an accelerator, never an authority — per-key loads go
	// to the content-addressed file — so a crash before the timer fires
	// loses only enumeration hints, which RebuildIndex recovers.
	// Prune, RebuildIndex and Close flush synchronously.
	flushDelay time.Duration
	dirty      bool
	flushTimer *time.Timer
	closed     bool

	// idxWriteMu serializes index.json rewrites so a newer snapshot is
	// never clobbered by an older one racing its rename.
	idxWriteMu sync.Mutex
}

// indexFile is the cache-directory index name.
const indexFile = "index.json"

// indexEntry locates one artifact from the index.
type indexEntry struct {
	File  string `json:"file"`
	Bytes int64  `json:"bytes"`
	Mod   int64  `json:"mod"` // unix seconds
}

// diskIndex is the persisted index shape.
type diskIndex struct {
	Version int
	Sim     string
	Keys    map[string]indexEntry
}

// defaultFlushDelay is how long a dirty index may wait before its
// debounced rewrite; long enough to batch a burst of stores, short
// enough that a sibling process adopting the index sees fresh keys.
const defaultFlushDelay = time.Second

// NewDiskCache opens (creating if needed) a cache rooted at dir,
// adopting a compatible existing index.
func NewDiskCache(dir string) (*DiskCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("experiments: empty disk cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiments: disk cache: %w", err)
	}
	d := &DiskCache{dir: dir, idx: map[string]indexEntry{}, flushDelay: defaultFlushDelay}
	if data, err := os.ReadFile(filepath.Join(dir, indexFile)); err == nil {
		var ix diskIndex
		if json.Unmarshal(data, &ix) == nil &&
			ix.Version == diskCacheVersion && ix.Sim == simStamp() && ix.Keys != nil {
			d.idx = ix.Keys
		}
	}
	return d, nil
}

// DefaultCacheDir returns the conventional per-user cache location
// (<user cache dir>/samielsq).
func DefaultCacheDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("experiments: no user cache dir: %w", err)
	}
	return filepath.Join(base, "samielsq"), nil
}

// ResolveCacheDir maps the conventional -cachedir flag value shared by
// the CLIs and the server to a concrete directory: "auto" resolves to
// DefaultCacheDir, "" keeps the disk cache disabled, anything else is
// used as-is.
func ResolveCacheDir(flagValue string) (string, error) {
	if flagValue == "auto" {
		return DefaultCacheDir()
	}
	return flagValue, nil
}

// OpenBatch assembles the standard command-line/server batch over a
// -cachedir flag value: disk-backed when a cache directory is
// available, degrading to an uncached batch when directory resolution
// or cache construction fails (warn observes the failure; a cache
// problem must never stop simulations). The second return is the
// resolved cache directory — "" when the batch runs uncached — for
// callers that report or prune it.
func OpenBatch(workers int, cachedirFlag string, warn func(err error)) (*Batch, string) {
	dir, err := ResolveCacheDir(cachedirFlag)
	if err != nil {
		warn(err)
		dir = ""
	}
	if dir != "" {
		b, err := NewBatchWithCache(workers, dir)
		if err == nil {
			return b, dir
		}
		warn(err)
	}
	return NewBatch(workers), ""
}

// Dir returns the cache's root directory.
func (d *DiskCache) Dir() string { return d.dir }

// Stats returns a snapshot of the cache traffic counters.
func (d *DiskCache) Stats() DiskCacheStats {
	return DiskCacheStats{
		Hits:   d.hits.Load(),
		Misses: d.misses.Load(),
		Writes: d.writes.Load(),
	}
}

// path maps a canonical spec key to its content-addressed file.
func (d *DiskCache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, "run-"+hex.EncodeToString(sum[:])+".json")
}

// load returns the cached result for key, if a valid artifact exists,
// counting a hit or miss.
func (d *DiskCache) load(key string) (RunResult, bool) {
	r, ok := d.read(key)
	if ok {
		d.hits.Add(1)
	} else {
		d.misses.Add(1)
	}
	return r, ok
}

// read is load without the traffic accounting; preloading uses it so
// warming a batch does not masquerade as request traffic.
func (d *DiskCache) read(key string) (RunResult, bool) {
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		return RunResult{}, false
	}
	var art diskArtifact
	if err := json.Unmarshal(data, &art); err != nil || !validArtifact(&art, key) {
		// Corrupt, truncated, produced by a different simulator build,
		// version-skewed or hash-collided: treat as a miss; the
		// post-simulation store rewrites it.
		return RunResult{}, false
	}
	return RunResult{Spec: art.Spec, CPU: art.CPU, Meter: art.Meter, SAMIE: art.SAMIE, Conv: art.Conv}, true
}

// validArtifact is the single acceptance predicate for run payloads
// from outside this process — disk artifacts (read, RebuildIndex) and
// peer-delivered bodies (ValidatePeerResult) alike: the format
// version, simulator build stamp and canonical key must all match,
// and the energy meter must be present.
func validArtifact(art *diskArtifact, key string) bool {
	return art.Version == diskCacheVersion && art.Sim == simStamp() &&
		art.Key == key && art.Meter != nil
}

// store persists a result. Failures are silent by design: the cache is
// an accelerator, never a correctness dependency.
//
//samie:deterministic
func (d *DiskCache) store(key string, res RunResult) {
	art := diskArtifact{
		Version: diskCacheVersion,
		Sim:     simStamp(),
		Key:     key,
		Spec:    res.Spec,
		CPU:     res.CPU,
		Meter:   res.Meter,
		SAMIE:   res.SAMIE,
		Conv:    res.Conv,
	}
	data, err := json.Marshal(art)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(d.dir, "tmp-run-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	// CreateTemp makes the file 0600; the cache directory is shared
	// between processes (and uids, on a common -cachedir), so widen to
	// the conventional artifact mode before publishing it.
	if err := os.Chmod(name, 0o644); err != nil {
		os.Remove(name)
		return
	}
	path := d.path(key)
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return
	}
	d.writes.Add(1)
	d.mu.Lock()
	//lint:ignore detpure Mod is operational index metadata; the keyed artifact body above is byte-deterministic
	d.idx[key] = indexEntry{File: filepath.Base(path), Bytes: int64(len(data)), Mod: time.Now().Unix()}
	d.markDirtyLocked()
	d.mu.Unlock()
}

// markDirtyLocked notes an index change and arms the debounce timer if
// none is pending. Caller holds d.mu. A closed cache flushed on Close;
// a straggling store after that is still served per-key from its
// artifact, so losing its index entry is harmless.
func (d *DiskCache) markDirtyLocked() {
	d.dirty = true
	if d.flushTimer == nil && !d.closed {
		d.flushTimer = time.AfterFunc(d.flushDelay, d.debouncedFlush)
	}
}

// debouncedFlush is the timer callback: rewrite the index if it is
// still dirty.
func (d *DiskCache) debouncedFlush() {
	d.mu.Lock()
	d.flushTimer = nil
	dirty := d.dirty
	d.dirty = false
	d.mu.Unlock()
	if dirty {
		d.flushIndex()
	}
}

// FlushIndex rewrites index.json immediately, cancelling any pending
// debounced flush. Call it before handing the directory to another
// process that will enumerate the index (tests, CI assertions);
// Prune, RebuildIndex and Close already do.
func (d *DiskCache) FlushIndex() {
	d.mu.Lock()
	d.dirty = false
	if d.flushTimer != nil {
		d.flushTimer.Stop()
		d.flushTimer = nil
	}
	d.mu.Unlock()
	d.flushIndex()
}

// Close flushes a dirty index and stops the debounce timer. The cache
// remains usable for per-key loads and stores (it holds no other
// resources), but further index changes are no longer flushed
// automatically. Safe to call more than once.
func (d *DiskCache) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	dirty := d.dirty
	d.dirty = false
	if d.flushTimer != nil {
		d.flushTimer.Stop()
		d.flushTimer = nil
	}
	d.mu.Unlock()
	if dirty {
		d.flushIndex()
	}
	return nil
}

// flushIndex atomically rewrites index.json from a snapshot of the
// in-memory index. The marshal and file I/O happen outside d.mu, so
// workers persisting results only contend on the map update, never on
// disk writes; idxWriteMu orders the snapshots. Failures are silent
// (accelerator, not authority; RebuildIndex repairs).
func (d *DiskCache) flushIndex() {
	d.idxWriteMu.Lock()
	defer d.idxWriteMu.Unlock()
	d.mu.Lock()
	snap := make(map[string]indexEntry, len(d.idx))
	for k, e := range d.idx {
		snap[k] = e
	}
	d.mu.Unlock()
	data, err := json.Marshal(diskIndex{Version: diskCacheVersion, Sim: simStamp(), Keys: snap})
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(d.dir, "tmp-index-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	// Same 0600 -> 0644 widening as store: sibling processes under
	// other uids must be able to enumerate the index.
	if _, err := tmp.Write(data); err == nil && tmp.Close() == nil && os.Chmod(name, 0o644) == nil {
		if os.Rename(name, filepath.Join(d.dir, indexFile)) == nil {
			return
		}
	} else {
		tmp.Close()
	}
	os.Remove(name)
}

// Keys returns the indexed artifact keys, sorted, without touching any
// artifact body.
func (d *DiskCache) Keys() []string {
	d.mu.Lock()
	keys := make([]string, 0, len(d.idx))
	for k := range d.idx {
		keys = append(keys, k)
	}
	d.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// RebuildIndex rescans the cache directory, validating every artifact
// body, and rewrites index.json from what it finds. Use it to adopt
// artifacts written by other processes or to repair a lost index.
// Returns the number of valid artifacts indexed.
func (d *DiskCache) RebuildIndex() (int, error) {
	files, err := filepath.Glob(filepath.Join(d.dir, "run-*.json"))
	if err != nil {
		return 0, fmt.Errorf("experiments: disk cache scan: %w", err)
	}
	fresh := map[string]indexEntry{}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			continue
		}
		var art diskArtifact
		if json.Unmarshal(data, &art) != nil ||
			!validArtifact(&art, art.Key) || d.path(art.Key) != f {
			continue
		}
		st, err := os.Stat(f)
		if err != nil {
			continue
		}
		fresh[art.Key] = indexEntry{File: filepath.Base(f), Bytes: st.Size(), Mod: st.ModTime().Unix()}
	}
	d.mu.Lock()
	d.idx = fresh
	d.mu.Unlock()
	d.FlushIndex()
	return len(fresh), nil
}

// PruneStats reports what a Prune pass did and what it left behind.
type PruneStats struct {
	Removed        int   // artifacts deleted
	FreedBytes     int64 // bytes those artifacts occupied
	Remaining      int   // artifacts kept
	RemainingBytes int64 // bytes they occupy
}

// Prune bounds the cache: artifacts older than maxAge are removed, and
// if the survivors still exceed maxBytes the oldest are removed until
// they fit. A zero maxAge or maxBytes disables that bound (Prune(0, 0)
// only sweeps leftover temp files). Stale temp files from killed
// writers are always collected. The index is rewritten to match.
func (d *DiskCache) Prune(maxBytes int64, maxAge time.Duration) (PruneStats, error) {
	type artifact struct {
		path  string
		bytes int64
		mod   time.Time
	}
	files, err := filepath.Glob(filepath.Join(d.dir, "run-*.json"))
	if err != nil {
		return PruneStats{}, fmt.Errorf("experiments: disk cache prune: %w", err)
	}
	arts := make([]artifact, 0, len(files))
	for _, f := range files {
		st, err := os.Stat(f)
		if err != nil {
			continue
		}
		arts = append(arts, artifact{f, st.Size(), st.ModTime()})
	}
	sort.Slice(arts, func(i, j int) bool { return arts[i].mod.Before(arts[j].mod) })

	now := time.Now()
	var ps PruneStats
	var total int64
	for _, a := range arts {
		total += a.bytes
	}
	doomed := map[string]bool{}
	for _, a := range arts {
		expired := maxAge > 0 && now.Sub(a.mod) > maxAge
		over := maxBytes > 0 && total > maxBytes
		if !expired && !over {
			ps.Remaining++
			ps.RemainingBytes += a.bytes
			continue
		}
		if err := os.Remove(a.path); err != nil && !os.IsNotExist(err) {
			// Undeletable file still occupies space; count it as kept.
			ps.Remaining++
			ps.RemainingBytes += a.bytes
			continue
		}
		doomed[filepath.Base(a.path)] = true
		ps.Removed++
		ps.FreedBytes += a.bytes
		total -= a.bytes
	}

	// Temp files orphaned by killed writers: anything older than an
	// hour was abandoned, not in-flight.
	tmps, _ := filepath.Glob(filepath.Join(d.dir, "tmp-*"))
	for _, f := range tmps {
		if st, err := os.Stat(f); err == nil && now.Sub(st.ModTime()) > time.Hour {
			os.Remove(f)
		}
	}

	d.mu.Lock()
	//lint:ordered per-key deletes of doomed entries; no cross-key state
	for k, e := range d.idx {
		if doomed[e.File] {
			delete(d.idx, k)
		}
	}
	d.mu.Unlock()
	d.FlushIndex()
	return ps, nil
}
