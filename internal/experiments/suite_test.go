package experiments

import (
	"strings"
	"sync"
	"testing"
)

// Batch-layer tests share one suite computation (suiteShared) and use
// reduced budgets under -short so `go test -short ./...` stays in the
// seconds range even on one core; the full run uses a larger budget
// and one more benchmark.

func suiteBench() []string {
	if testing.Short() {
		return []string{"facerec", "gzip"}
	}
	return []string{"ammp", "facerec", "gzip"}
}

// suiteInsts is deliberately small in both modes: these tests assert
// engine plumbing (exactly-once execution, byte-identity, worker
// determinism), which is budget-independent; fidelity lives in the
// figure-shape tests.
func suiteInsts() uint64 {
	if testing.Short() {
		return 12_000
	}
	return 20_000
}

var (
	suiteOnce   sync.Once
	suiteBatch  *Batch
	suiteResult SuiteResult
)

// suiteShared computes the full figure suite through one shared batch,
// once per test binary.
func suiteShared() (*Batch, SuiteResult) {
	suiteOnce.Do(func() {
		suiteBatch = NewBatch(0)
		suiteResult = suiteBatch.Suite(suiteBench(), suiteInsts())
	})
	return suiteBatch, suiteResult
}

// TestSuiteRunsEachSpecOnce is the cache-hit accounting test for the
// tentpole: the full figure suite through one shared batch executes
// each distinct RunSpec exactly once, and re-running any harness on
// the same batch executes nothing new.
func TestSuiteRunsEachSpecOnce(t *testing.T) {
	b, res := suiteShared()

	st := res.Runs
	if st.Executed != int64(b.DistinctRuns()) {
		t.Errorf("executed %d simulations for %d distinct specs", st.Executed, b.DistinctRuns())
	}
	if st.Hits+st.Executed != st.Requests {
		t.Errorf("accounting leak: %d hits + %d executed != %d requests", st.Hits, st.Executed, st.Requests)
	}
	if st.Hits == 0 {
		t.Error("no cross-harness reuse in the full suite; Figures 5/6 and 7-12 share every run")
	}

	// The suite's distinct-spec count is enumerable: Figure 1 needs
	// 8 geometries x 2 in-flight caps + 1 unbounded run per benchmark;
	// Figure 3 needs 3 unbounded-shared geometries; Figure 4 sweeps 16
	// SharedLSQ sizes, one of which (8 entries) IS the paper-config
	// SAMIE run; Figures 5/6 need the conventional/SAMIE pair; the
	// energy figures reuse that same pair entirely.
	wantDistinct := int64(len(suiteBench()) * (8*2 + 1 + 3 + 16 - 1 + 2))
	if st.Executed != wantDistinct {
		t.Errorf("executed %d distinct simulations, want %d", st.Executed, wantDistinct)
	}

	// Replaying two harnesses on the same batch must be pure cache.
	before := b.Stats().Executed
	_ = b.Figure56(suiteBench(), suiteInsts())
	_ = b.Energy(suiteBench(), suiteInsts())
	if after := b.Stats().Executed; after != before {
		t.Errorf("replay executed %d new simulations, want 0", after-before)
	}
}

// TestSuiteMatchesStandaloneHarnesses asserts the shared batch is
// invisible in the output: every figure produced by the suite renders
// byte-identically to the standalone harness at the same budget.
func TestSuiteMatchesStandaloneHarnesses(t *testing.T) {
	_, res := suiteShared()
	benchmarks, insts := suiteBench(), suiteInsts()
	for _, cmp := range []struct {
		name       string
		suite, own string
	}{
		{"Figure1", res.Figure1.String(), Figure1(benchmarks, insts).String()},
		{"Figure3", res.Figure3.String(), Figure3(benchmarks, insts).String()},
		{"Figure4", res.Figure4.String(), Figure4(benchmarks, insts, nil).String()},
		{"Figure56", res.Figure56.String(), Figure56(benchmarks, insts).String()},
		{"Energy", res.Energy.String(), Energy(benchmarks, insts).String()},
	} {
		if cmp.suite != cmp.own {
			t.Errorf("%s: suite output differs from standalone harness\nsuite:\n%s\nstandalone:\n%s",
				cmp.name, cmp.suite, cmp.own)
		}
	}
	if !strings.Contains(res.String(), "Shared batch:") {
		t.Error("suite rendering lost the run accounting")
	}
}

// TestBatchDeterministicAcrossWorkers asserts results are a pure
// function of the specs: 1 worker and N workers produce byte-identical
// figures.
func TestBatchDeterministicAcrossWorkers(t *testing.T) {
	benchmarks, insts := suiteBench()[:2], suiteInsts()
	serial := NewBatch(1).Figure56(benchmarks, insts)
	wide := NewBatch(8).Figure56(benchmarks, insts)
	if serial.String() != wide.String() {
		t.Errorf("worker count changed results\n1 worker:\n%s\n8 workers:\n%s", serial, wide)
	}
}

// TestKeyCanonicalization asserts default-filled and explicit specs
// collide, and materially different specs do not.
func TestKeyCanonicalization(t *testing.T) {
	base := RunSpec{Benchmark: "swim", Model: ModelConventional}
	same := []RunSpec{
		{Benchmark: "swim", Model: ModelConventional, ConvEntries: 128},
		{Benchmark: "swim", Model: ModelConventional, Insts: DefaultInsts},
		{Benchmark: "swim", Model: ModelConventional, Insts: DefaultInsts, Warmup: DefaultInsts / 2},
		// ARB fields are dead for a conventional run.
		{Benchmark: "swim", Model: ModelConventional, ARBBanks: 64, ARBAddrs: 2},
	}
	for i, s := range same {
		if Key(s) != Key(base) {
			t.Errorf("spec %d should share the base key\n got %s\nwant %s", i, Key(s), Key(base))
		}
	}
	diff := []RunSpec{
		{Benchmark: "gzip", Model: ModelConventional},
		{Benchmark: "swim", Model: ModelSAMIE},
		{Benchmark: "swim", Model: ModelConventional, ConvEntries: 16},
		{Benchmark: "swim", Model: ModelConventional, Insts: DefaultInsts + 1},
		{Benchmark: "swim", Model: ModelConventional, Warmup: 1},
	}
	for i, s := range diff {
		if Key(s) == Key(base) {
			t.Errorf("spec %d must not share the base key %s", i, Key(base))
		}
	}
}

// TestBatchSharesAcrossSpellings asserts the batch serves a
// default-spelled spec from a run requested with explicit defaults.
func TestBatchSharesAcrossSpellings(t *testing.T) {
	b := NewBatch(2)
	insts := uint64(16_000)
	r1 := b.Run(RunSpec{Benchmark: "gzip", Insts: insts, Model: ModelConventional})
	r2 := b.Run(RunSpec{Benchmark: "gzip", Insts: insts, Model: ModelConventional, ConvEntries: 128})
	if st := b.Stats(); st.Executed != 1 || st.Hits != 1 {
		t.Fatalf("stats %+v, want one execution and one hit", st)
	}
	if r1.CPU != r2.CPU {
		t.Error("cache returned different results for equivalent specs")
	}
}

// TestScenarioRegistry exercises the registry surface and one sweep
// end to end.
func TestScenarioRegistry(t *testing.T) {
	names := ScenarioNames()
	if len(names) < 8 {
		t.Fatalf("only %d built-in scenarios: %v", len(names), names)
	}
	for _, want := range []string{"models", "shared-lsq-sizes", "distrib-banking", "ablations"} {
		if _, ok := LookupScenario(want); !ok {
			t.Errorf("built-in scenario %q missing", want)
		}
	}
	if _, err := RunScenario("no-such-sweep", suiteBench(), 1000); err == nil {
		t.Error("unknown scenario did not error")
	}

	benchmarks, insts := suiteBench()[:2], suiteInsts()
	b := NewBatch(0)
	res, err := b.Scenario("distrib-banking", benchmarks, insts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IPC) != 2 || len(res.IPC[0]) != 3 {
		t.Fatalf("sweep shape %dx%d, want 2x3", len(res.IPC), len(res.IPC[0]))
	}
	for bi := range res.IPC {
		for vi, ipc := range res.IPC[bi] {
			if ipc <= 0.1 || ipc > 8 {
				t.Errorf("%s/%s IPC %.3f out of sane range", res.Benchmarks[bi], res.Variants[vi], ipc)
			}
			if res.EnergyNJ[bi][vi] <= 0 {
				t.Errorf("%s/%s consumed no LSQ energy", res.Benchmarks[bi], res.Variants[vi])
			}
		}
	}
	if gm := res.GeoMeanIPC(); len(gm) != 3 || gm[0] <= 0 {
		t.Errorf("geomean row broken: %v", gm)
	}
	if s := res.String(); !strings.Contains(s, "geomean") || !strings.Contains(s, "64x2") {
		t.Error("scenario rendering broken")
	}

	// The 64x2 variant is the paper config: a later paper-config run on
	// the same batch must be a cache hit.
	before := b.Stats().Executed
	b.Run(RunSpec{Benchmark: benchmarks[0], Insts: insts, Model: ModelSAMIE})
	if after := b.Stats().Executed; after != before {
		t.Error("scenario variant did not share the paper-config run")
	}
}
