package experiments

import (
	"context"
	"testing"
)

const specTestInsts = 4_000

// TestSuiteSpecsCoverSuite pins the shard-planning contract: a batch
// that has already run every SuiteSpecs spec must render the whole
// suite without executing anything new. If a figure harness grows a
// sweep point that SuiteSpecs does not enumerate, this fails — before
// the drift silently bypasses the cluster fabric (pkg/cluster asserts
// the same invariant at reassembly time).
func TestSuiteSpecsCoverSuite(t *testing.T) {
	benchmarks := []string{"gzip"}
	specs := SuiteSpecs(benchmarks, specTestInsts)
	// 37 distinct specs per benchmark: 16 ARB + 1 unbounded + 3
	// shared-unbounded + 16 Figure-4 sizes (one of them the paper
	// config shared with Figures 5/6) + the conventional model.
	if want := 37 * len(benchmarks); len(specs) != want {
		t.Fatalf("SuiteSpecs enumerates %d specs, want %d", len(specs), want)
	}
	seen := map[string]bool{}
	b := NewBatch(0)
	for _, s := range specs {
		key := Key(s)
		if seen[key] {
			t.Fatalf("duplicate key in SuiteSpecs: %s", key)
		}
		seen[key] = true
		b.Run(s)
	}
	if ex := b.Stats().Executed; ex != int64(len(specs)) {
		t.Fatalf("pre-running the plan executed %d, want %d", ex, len(specs))
	}
	b.Suite(benchmarks, specTestInsts)
	if ex := b.Stats().Executed; ex != int64(len(specs)) {
		t.Errorf("suite needed %d simulations the plan missed", ex-int64(len(specs)))
	}
}

// TestScenarioSpecsCoverScenario is the same contract for registered
// sweeps, including the scenario's own default benchmark rows.
func TestScenarioSpecsCoverScenario(t *testing.T) {
	for _, name := range ScenarioNames() {
		specs, rows, err := ScenarioSpecs(name, []string{"gzip"}, specTestInsts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rows) != 1 || rows[0] != "gzip" {
			t.Fatalf("%s: explicit benchmarks not honored: %v", name, rows)
		}
		b := NewBatch(0)
		for _, s := range specs {
			b.Run(s)
		}
		planned := b.Stats().Executed
		if _, err := b.ScenarioCtx(context.Background(), name, rows, specTestInsts, nil); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ex := b.Stats().Executed; ex != planned {
			t.Errorf("%s: sweep needed %d simulations the plan missed", name, ex-planned)
		}
	}

	// Default rows resolve from the scenario registration.
	_, rows, err := ScenarioSpecs("adversarial", nil, specTestInsts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0] != "pointer-chaser" || rows[1] != "store-burst" {
		t.Errorf("adversarial default rows = %v", rows)
	}
	if _, _, err := ScenarioSpecs("no-such-sweep", nil, specTestInsts); err == nil {
		t.Error("unknown scenario accepted")
	}
}
