package experiments

import (
	"strings"
	"testing"
)

// pressure is the subset of programs that exercises every qualitative
// regime: concentrated FP (ammp/apsi/art/mgrid), concentrated +
// high-pressure (facerec), even high-pressure (fma3d), pointer chasing
// (mcf), streaming (swim) and integer (gzip).
var pressure = []string{"ammp", "apsi", "art", "facerec", "fma3d", "mgrid", "mcf", "gzip", "swim"}

const figInsts = 80_000

// figBatch is shared by every figure-shape test in this file: the
// Figure 4 sweep's 8-entry point, Figure 5/6 and the energy figures
// all need the same paper-config runs, so the batch simulates each of
// them once across the whole test binary.
var figBatch = NewBatch(0)

// TestFigure3Shape verifies the paper's Figure 3 claims: concentrated
// programs need many SharedLSQ entries, integer programs almost none,
// and 32x4 needs (far) fewer than 128x1.
func TestFigure3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	f := figBatch.Figure3(pressure, figInsts)
	occ := map[string]Figure3Row{}
	for _, r := range f.Rows {
		occ[r.Benchmark] = r
	}
	for _, conc := range []string{"ammp", "apsi", "art", "mgrid"} {
		if occ[conc].Occ64x2 < 4 {
			t.Errorf("%s 64x2 occupancy %.1f too low for a concentrated program", conc, occ[conc].Occ64x2)
		}
	}
	if occ["gzip"].Occ64x2 > 3 {
		t.Errorf("gzip 64x2 occupancy %.1f too high for an integer program", occ["gzip"].Occ64x2)
	}
	for _, r := range f.Rows {
		if r.Occ32x4 > r.Occ128x1+0.5 {
			t.Errorf("%s: 32x4 occupancy %.1f above 128x1 %.1f", r.Benchmark, r.Occ32x4, r.Occ128x1)
		}
	}
	if !strings.Contains(f.String(), "SPEC") {
		t.Error("rendering lost the SPEC average row")
	}
}

// TestFigure4Shape verifies that more SharedLSQ entries monotonically
// satisfy more programs, and that integer programs are satisfied with
// few entries.
func TestFigure4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	f := figBatch.Figure4(pressure, figInsts, []int{0, 4, 8, 16, 32})
	for i := 1; i < len(f.Programs); i++ {
		if f.Programs[i] < f.Programs[i-1] {
			t.Fatalf("program count not monotonic: %v", f.Programs)
		}
	}
	if need, ok := f.PerBench["gzip"]; !ok || need > 8 {
		t.Errorf("gzip needs %d SharedLSQ entries, want <= 8 (the paper's operating point)", need)
	}
	if f.Programs[len(f.Programs)-1] < len(pressure)-2 {
		t.Errorf("only %d of %d programs satisfied at 32 entries", f.Programs[len(f.Programs)-1], len(pressure))
	}
}

// TestFigure56Shape verifies the Figure 5/6 story: small average IPC
// loss, gains for the high-pressure programs (facerec/fma3d), losses
// concentrated in the concentrated programs, and deadlocks essentially
// confined to them.
func TestFigure56Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	f := figBatch.Figure56(pressure, figInsts)
	rows := map[string]Figure56Row{}
	for _, r := range f.Rows {
		rows[r.Benchmark] = r
	}
	if m := f.MeanIPCLossPct(); m > 6 {
		t.Errorf("mean IPC loss %.2f%% too high (paper: 0.6%%)", m)
	}
	if rows["fma3d"].IPCLossPct > 1 {
		t.Errorf("fma3d should not lose IPC (got %+.2f%%)", rows["fma3d"].IPCLossPct)
	}
	if rows["facerec"].IPCLossPct > 2 {
		t.Errorf("facerec should be ~neutral or gain (got %+.2f%%)", rows["facerec"].IPCLossPct)
	}
	if rows["gzip"].IPCLossPct > 1 || rows["swim"].IPCLossPct > 1 {
		t.Errorf("well-behaved programs lose IPC: gzip %+.2f%% swim %+.2f%%",
			rows["gzip"].IPCLossPct, rows["swim"].IPCLossPct)
	}
	if rows["gzip"].DeadlocksPerM > 50 {
		t.Errorf("gzip deadlocks %.0f/Mcycle, want ~0", rows["gzip"].DeadlocksPerM)
	}
	if rows["ammp"].DeadlocksPerM < rows["gzip"].DeadlocksPerM {
		t.Error("ammp should deadlock more than gzip")
	}
}

// TestEnergyShape verifies the headline energy claims of §4.4-§4.5 on
// the representative subset: large LSQ savings, substantial Dcache and
// DTLB savings, active area in the same ballpark as the baseline.
func TestEnergyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	// A representative mix: the pressure programs alone understate the
	// savings because they are the paper's worst cases (Figure 8).
	suite := append([]string{"applu", "equake", "galgel", "wupwise", "crafty", "gcc", "vortex", "parser"}, pressure...)
	e := figBatch.Energy(suite, figInsts)
	if s := e.LSQSavings(); s < 0.45 {
		t.Errorf("LSQ savings %.1f%% too low (paper 82%%)", s*100)
	}
	if s := e.DcacheSavings(); s < 0.25 {
		t.Errorf("Dcache savings %.1f%% too low (paper 42%%)", s*100)
	}
	if s := e.DTLBSavings(); s < 0.45 {
		t.Errorf("DTLB savings %.1f%% too low (paper 73%%)", s*100)
	}
	if s := e.AreaSavings(); s < -0.5 || s > 0.6 {
		t.Errorf("area savings %.1f%% out of plausible band (paper ~5%%)", s*100)
	}
	rows := map[string]EnergyRow{}
	for _, r := range e.Rows {
		rows[r.Benchmark] = r
	}
	// Sharing drives the Dcache savings: mcf (lowest sharing in this
	// subset) must save less than swim (highest).
	mcf := 1 - rows["mcf"].SAMIEDcache/rows["mcf"].ConvDcache
	swim := 1 - rows["swim"].SAMIEDcache/rows["swim"].ConvDcache
	if mcf >= swim {
		t.Errorf("Dcache savings ordering wrong: mcf %.1f%% >= swim %.1f%%", mcf*100, swim*100)
	}
	// Every figure renders.
	for _, s := range []string{
		e.Figure7String(), e.Figure8String(), e.Figure9String(),
		e.Figure10String(), e.Figure11String(), e.Figure12String(),
	} {
		if len(s) == 0 {
			t.Fatal("empty figure rendering")
		}
	}
}

// TestFigure1Shape verifies the ARB trade-off of Figure 1: light
// banking keeps IPC near the unbounded LSQ, extreme banking loses
// substantially, and halving the in-flight cap hurts everywhere.
func TestFigure1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	f := figBatch.Figure1([]string{"facerec", "fma3d", "swim", "gzip"}, figInsts)
	first, last := f.Rows[0], f.Rows[len(f.Rows)-1]
	if first.RelIPC < 0.90 {
		t.Errorf("1x128 ARB keeps only %.1f%% of unbounded IPC", first.RelIPC*100)
	}
	if last.RelIPC > first.RelIPC {
		t.Errorf("128x1 (%.3f) should not beat 1x128 (%.3f)", last.RelIPC, first.RelIPC)
	}
	for _, r := range f.Rows {
		if r.RelIPCHalf > r.RelIPC+0.02 {
			t.Errorf("%dx%d: half cap (%.3f) beats full cap (%.3f)",
				r.Config.Banks, r.Config.Addrs, r.RelIPCHalf, r.RelIPC)
		}
	}
}

// TestTableHarnesses exercises the Table 1 / delay / Tables 4-6
// harnesses (static, no simulation).
func TestTableHarnesses(t *testing.T) {
	t1 := Table1()
	if len(t1.Rows) != 8 {
		t.Fatalf("Table 1 rows = %d", len(t1.Rows))
	}
	for _, r := range t1.Rows {
		if r.ModelImprovement < -1e-9 {
			t.Errorf("%dKB %dw %dp: negative improvement", r.SizeKB, r.Ways, r.Ports)
		}
	}
	d := Delays()
	for _, r := range d.Rows {
		if r.Model <= 0 || r.Paper <= 0 {
			t.Errorf("%s: non-positive delay", r.Structure)
		}
	}
	if !strings.Contains(Tables456String(), "Table 5") {
		t.Error("Tables456 rendering broken")
	}
}
