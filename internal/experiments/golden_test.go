package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// goldenBenchmarks and goldenInsts fix the reduced suite the golden
// test renders. Changing either invalidates testdata/golden_suite.txt;
// regenerate with UPDATE_GOLDEN=1 go test -run TestSuiteGolden.
var goldenBenchmarks = []string{"ammp", "gzip", "mcf", "swim"}

const goldenInsts = 25_000

// TestSuiteGolden pins the full rendered suite output byte-for-byte.
// Every figure, table and the run accounting flow through this string,
// so any change to simulation semantics, energy accounting order or
// rendering shows up as a diff. Performance refactors of the hot path
// must keep this byte-identical.
func TestSuiteGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden suite needs the full budget")
	}
	got := RunSuite(goldenBenchmarks, goldenInsts).String()
	path := filepath.Join("testdata", "golden_suite.txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %d bytes", len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		line, col := diffAt(got, string(want))
		t.Fatalf("suite output differs from golden at line %d col %d\n"+
			"regenerate with UPDATE_GOLDEN=1 only if the change is intended\n"+
			"for a cycle-level diagnosis of a simulation divergence, run the\n"+
			"scheduler differential (go test ./internal/cpu -run SchedulerDifferential):\n"+
			"its flight recorders name the first divergent issue cycle\n"+
			"got:\n%s", line, col, got)
	}
}

// diffAt locates the first differing byte as line/column for the
// failure message.
func diffAt(a, b string) (line, col int) {
	line, col = 1, 1
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return line, col
		}
		if a[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}
