package experiments

import (
	"context"
	"fmt"
	"runtime/debug"

	"samielsq/internal/core"
)

// figure3Geoms are the DistribLSQ geometries Figure 3 sweeps with an
// unbounded SharedLSQ; Figure3Ctx and SuiteSpecs must agree on them.
var figure3Geoms = []struct{ banks, entries int }{{128, 1}, {64, 2}, {32, 4}}

// figure4DefaultSizes is the SharedLSQ capacity axis Figure 4 sweeps
// when the caller passes none; Figure4Ctx and SuiteSpecs must agree.
var figure4DefaultSizes = []int{0, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44, 48, 52, 56, 60}

// SuiteSpecs enumerates the distinct simulations the full suite
// (Figures 1, 3, 4, 5/6 and the energy figures) needs, deduplicated by
// canonical key, in a deterministic order. A coordinator can partition
// this list across replicas, execute every spec exactly once
// cluster-wide, and reassemble the byte-identical suite from the
// results (see pkg/cluster). Nil benchmarks means the full 26-program
// suite; insts 0 means DefaultInsts.
func SuiteSpecs(benchmarks []string, insts uint64) []RunSpec {
	if len(benchmarks) == 0 {
		benchmarks = Benchmarks()
	}
	if insts == 0 {
		insts = DefaultInsts
	}
	var specs []RunSpec
	seen := map[string]bool{}
	add := func(s RunSpec) {
		n := Normalize(s)
		key := keyOf(n)
		if !seen[key] {
			seen[key] = true
			specs = append(specs, n)
		}
	}

	// Figure 1: the unbounded baseline plus the eight ARB geometries at
	// the full and halved in-flight caps.
	for _, b := range benchmarks {
		add(RunSpec{Benchmark: b, Insts: insts, Model: ModelUnbounded})
	}
	for _, cfg := range Figure1Configs() {
		for _, inflight := range [...]int{128, 64} {
			for _, b := range benchmarks {
				add(RunSpec{
					Benchmark: b, Insts: insts, Model: ModelARB,
					ARBBanks: cfg.Banks, ARBAddrs: cfg.Addrs, ARBInflight: inflight,
				})
			}
		}
	}
	// Figure 3: unbounded-SharedLSQ occupancy per DistribLSQ geometry.
	for _, g := range figure3Geoms {
		cfg := core.PaperConfig()
		cfg.Banks, cfg.EntriesPerBank = g.banks, g.entries
		cfg.SharedUnbounded = true
		for _, b := range benchmarks {
			c := cfg
			add(RunSpec{Benchmark: b, Insts: insts, Model: ModelSAMIE, SAMIE: &c})
		}
	}
	// Figure 4: the SharedLSQ size sweep (one size is the paper config,
	// shared with Figures 5/6 and the energy figures).
	for _, size := range figure4DefaultSizes {
		cfg := core.PaperConfig()
		cfg.SharedEntries = size
		for _, b := range benchmarks {
			c := cfg
			add(RunSpec{Benchmark: b, Insts: insts, Model: ModelSAMIE, SAMIE: &c})
		}
	}
	// Figures 5/6 and 7-12: the conventional/SAMIE pair.
	for _, b := range benchmarks {
		add(RunSpec{Benchmark: b, Insts: insts, Model: ModelConventional})
		add(RunSpec{Benchmark: b, Insts: insts, Model: ModelSAMIE})
	}
	return specs
}

// ScenarioSpecs enumerates the distinct simulations a registered
// scenario sweep needs over the benchmark rows, deduplicated by
// canonical key, together with the resolved benchmark list (the
// scenario's default rows when benchmarks is nil). The same partition
// contract as SuiteSpecs applies.
func ScenarioSpecs(name string, benchmarks []string, insts uint64) ([]RunSpec, []string, error) {
	sc, ok := LookupScenario(name)
	if !ok {
		return nil, nil, fmt.Errorf("experiments: unknown scenario %q", name)
	}
	benchmarks = sc.ResolveBenchmarks(benchmarks)
	if insts == 0 {
		insts = DefaultInsts
	}
	var specs []RunSpec
	seen := map[string]bool{}
	for _, b := range benchmarks {
		for _, v := range sc.Variants {
			n := Normalize(v.Spec(b, insts))
			key := keyOf(n)
			if !seen[key] {
				seen[key] = true
				specs = append(specs, n)
			}
		}
	}
	return specs, benchmarks, nil
}

// Offer installs a precomputed result for spec — typically fetched
// from a remote replica — into the batch's in-memory run cache, so a
// later harness request for the same spec is a cache hit instead of a
// simulation. No-op (returning false) if the batch already has a job
// for the spec. Offered results carry a nil memory hierarchy, exactly
// like disk-served ones.
func (b *Batch) Offer(spec RunSpec, res RunResult) bool {
	n := Normalize(spec)
	res.Spec = n
	res.Hier = nil
	return b.sched.Offer(keyOf(n), res)
}

// Cached returns the completed result for a canonical spec key if the
// batch already holds it — in memory, or in the attached disk cache —
// without executing anything and without counting toward the engine's
// request stats or the disk traffic counters. This is the cache-probe
// primitive behind GET /v1/runs/{key}.
func (b *Batch) Cached(key string) (RunResult, bool) {
	if r, ok := b.sched.Cached(key); ok {
		return r, true
	}
	if b.disk != nil {
		if r, ok := b.disk.read(key); ok {
			return r, true
		}
	}
	return RunResult{}, false
}

// RunEachCtx executes every spec through the batch, invoking onDone —
// when non-nil, from a single goroutine, in completion order — as each
// simulation finishes. Results are returned in spec order.
// Cancellation and panic containment follow RunAllCtx: queued
// simulations are withdrawn when ctx fires, completed cells stay
// memoized, and a panicking simulation surfaces as an error.
func (b *Batch) RunEachCtx(ctx context.Context, specs []RunSpec, onDone func(r RunResult, done, total int)) ([]RunResult, error) {
	out := make([]RunResult, len(specs))
	type doneMsg struct {
		i   int
		err error
	}
	ch := make(chan doneMsg, len(specs))
	for i, spec := range specs {
		go func(i int, spec RunSpec) {
			var err error
			defer func() {
				if p := recover(); p != nil {
					// The panic site's stack is only reachable here; carry
					// it so the failure stays diagnosable as an error.
					err = fmt.Errorf("experiments: %s simulation panicked: %v\n%s", spec.Benchmark, p, debug.Stack())
				}
				ch <- doneMsg{i, err}
			}()
			out[i], err = b.RunCtx(ctx, spec)
		}(i, spec)
	}
	var firstErr error
	completed := 0
	for range specs {
		d := <-ch
		if d.err != nil {
			if firstErr == nil {
				firstErr = d.err
			}
			continue
		}
		completed++
		if onDone != nil && firstErr == nil {
			onDone(out[d.i], completed, len(specs))
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
