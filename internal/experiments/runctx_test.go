package experiments

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRunCtxErrorsAreCallersOwn pins the service-facing contract: a
// RunCtx error is always the caller's own context error. A healthy
// caller that coalesced onto a queued run whose owner disconnected
// (the engine withdraws the job and fails its waiters with the owner's
// error) must transparently re-request instead of inheriting the other
// client's cancellation.
func TestRunCtxErrorsAreCallersOwn(t *testing.T) {
	b := NewBatch(1)

	// Occupy the single worker slot with a long simulation.
	hogDone := make(chan struct{})
	go func() {
		defer close(hogDone)
		b.Run(RunSpec{Benchmark: "swim", Insts: 300_000, Model: ModelSAMIE})
	}()
	deadline := time.Now().Add(10 * time.Second)
	for b.Stats().Inflight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("hog simulation never started")
		}
		time.Sleep(time.Millisecond)
	}

	// Client A owns a queued run; client B coalesces onto it.
	contended := RunSpec{Benchmark: "gzip", Insts: 5_000, Model: ModelSAMIE}
	ctxA, cancelA := context.WithCancel(context.Background())
	aErr := make(chan error, 1)
	go func() {
		_, err := b.RunCtx(ctxA, contended)
		aErr <- err
	}()
	for b.DistinctRuns() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("owner request never registered")
		}
		time.Sleep(time.Millisecond)
	}
	type out struct {
		r   RunResult
		err error
	}
	bOut := make(chan out, 1)
	go func() {
		r, err := b.RunCtx(context.Background(), contended)
		bOut <- out{r, err}
	}()
	// Give B a moment to coalesce onto A's job, then disconnect A.
	time.Sleep(5 * time.Millisecond)
	cancelA()
	if err := <-aErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("owner got %v, want its own context.Canceled", err)
	}

	// B's context is live: it must still receive the result once the
	// pool frees up, never A's cancellation.
	select {
	case got := <-bOut:
		if got.err != nil {
			t.Fatalf("healthy waiter inherited another client's cancellation: %v", got.err)
		}
		if got.r.CPU.Committed == 0 {
			t.Fatal("retried run produced an empty result")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("waiter never recovered from the withdrawn job")
	}
	<-hogDone
}
