package experiments

import (
	"fmt"
	"strings"
	"sync"

	"samielsq/internal/experiments/engine"
)

// SuiteResult bundles every artefact of the paper's evaluation,
// produced from one shared batch: Figures 1, 3, 4, 5/6 and 7-12 plus
// the static tables, together with the batch's run accounting.
type SuiteResult struct {
	Figure1  Figure1Result
	Figure3  Figure3Result
	Figure4  Figure4Result
	Figure56 Figure56Result
	Energy   EnergyResult

	Table1    Table1Result
	Delays    DelayResult
	Tables456 string

	Insts uint64

	// Runs is the shared scheduler's accounting for the whole suite;
	// Runs.Executed counts the distinct simulations actually performed,
	// Runs.Hits the cross-harness reuse.
	Runs engine.Stats
}

// RunSuite regenerates the full evaluation through one fresh shared
// batch sized to GOMAXPROCS.
func RunSuite(benchmarks []string, insts uint64) SuiteResult {
	return NewBatch(0).Suite(benchmarks, insts)
}

// Suite regenerates the full evaluation through the batch. The five
// simulation harnesses run concurrently and share the batch's run
// cache, so every distinct simulation (notably the conventional/SAMIE
// pair that Figures 5/6 and 7-12 both need) executes exactly once.
// Results are identical to running each harness on its own.
func (bt *Batch) Suite(benchmarks []string, insts uint64) SuiteResult {
	if insts == 0 {
		insts = DefaultInsts
	}
	res := SuiteResult{Insts: insts}
	var wg sync.WaitGroup
	for _, part := range []func(){
		func() { res.Figure1 = bt.Figure1(benchmarks, insts) },
		func() { res.Figure3 = bt.Figure3(benchmarks, insts) },
		func() { res.Figure4 = bt.Figure4(benchmarks, insts, nil) },
		func() { res.Figure56 = bt.Figure56(benchmarks, insts) },
		func() { res.Energy = bt.Energy(benchmarks, insts) },
	} {
		wg.Add(1)
		go func(part func()) {
			defer wg.Done()
			part()
		}(part)
	}
	wg.Wait()
	res.Table1 = Table1()
	res.Delays = Delays()
	res.Tables456 = Tables456String()
	res.Runs = bt.Stats()
	return res
}

// String renders every artefact in paper order, followed by the run
// accounting.
//
//samie:deterministic
func (s SuiteResult) String() string {
	var b strings.Builder
	for _, part := range []string{
		s.Figure1.String(), s.Figure3.String(), s.Figure4.String(),
		s.Figure56.String(), s.Energy.String(),
		s.Table1.String(), s.Delays.String(), s.Tables456,
	} {
		b.WriteString(part)
		if !strings.HasSuffix(part, "\n") {
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "Shared batch: %d simulations executed, %d of %d requests served from cache (%.0f%% reuse)\n",
		s.Runs.Executed, s.Runs.Hits, s.Runs.Requests, 100*s.Runs.HitRate())
	return b.String()
}
