package experiments

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakePeer is a scripted PeerStore: it serves a fixed result (or
// nothing) and counts fetches.
type fakePeer struct {
	res     RunResult
	ok      bool
	delay   time.Duration
	fetches atomic.Int64
}

func (f *fakePeer) Fetch(ctx context.Context, key string) (RunResult, bool) {
	f.fetches.Add(1)
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			return RunResult{}, false
		}
	}
	return f.res, f.ok
}

func TestPeerTierFetchInstallThenLocalHit(t *testing.T) {
	spec := cacheTestSpec()
	want := Run(spec) // the result the peer "holds"

	dir := t.TempDir()
	b, err := NewBatchWithCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	peer := &fakePeer{res: want, ok: true}
	b.SetPeerStore(peer)

	got := b.Run(spec)
	if got.CPU != want.CPU || *got.Meter != *want.Meter || got.SAMIE != want.SAMIE {
		t.Errorf("peer-served result differs from the executed one")
	}
	if got.Spec.Benchmark != spec.Benchmark || got.Spec.SAMIE == nil {
		t.Errorf("peer-served result lost its normalized spec: %+v", got.Spec)
	}
	if got.Hier != nil {
		t.Errorf("peer-served result must carry a nil Hier")
	}
	if n := peer.fetches.Load(); n != 1 {
		t.Fatalf("peer fetched %d times, want 1", n)
	}
	// A peer-served run is a store hit, not an execution.
	if st := b.Stats(); st.Executed != 0 || st.Hits != 1 {
		t.Errorf("engine stats %+v, want executed=0 hits=1", st)
	}
	ss := b.StoreStats()
	if ss.Peer.Hits != 1 || ss.Peer.Misses != 0 || ss.PeerInstalls != 1 {
		t.Errorf("peer tier stats %+v, want 1 hit, 0 misses, 1 install", ss.Peer)
	}
	if ss.Mem.Misses != 1 || ss.Disk.Misses != 1 {
		t.Errorf("upper tiers did not record the walk-down: %+v", ss)
	}
	if ss.PeerFetch.Count != 1 {
		t.Errorf("fetch histogram observed %d probes, want 1", ss.PeerFetch.Count)
	}

	// Second request: pure mem hit, the peer is not consulted again.
	b.Run(spec)
	if n := peer.fetches.Load(); n != 1 {
		t.Errorf("mem-cached spec re-fetched from peer (%d fetches)", n)
	}
	if ss := b.StoreStats(); ss.Mem.Hits != 1 {
		t.Errorf("second request not a mem hit: %+v", ss)
	}

	// The install is durable: a fresh batch over the same directory
	// serves from disk with the peer gone dark.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := NewBatchWithCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	b2.SetPeerStore(&fakePeer{ok: false})
	again := b2.Run(spec)
	if again.CPU != want.CPU {
		t.Errorf("disk-served result differs after peer install")
	}
	ss2 := b2.StoreStats()
	if ss2.Disk.Hits != 1 || ss2.Peer.Hits != 0 || ss2.Peer.Misses != 0 {
		t.Errorf("installed artifact not served from disk: %+v", ss2)
	}
	if st := b2.Stats(); st.Executed != 0 {
		t.Errorf("installed artifact re-simulated: %+v", st)
	}
}

func TestPeerTierDownDegradesToSimulation(t *testing.T) {
	b := NewBatch(1)
	peer := &fakePeer{ok: false} // down, empty, or timed out: all just "no"
	b.SetPeerStore(peer)

	res := b.Run(cacheTestSpec())
	if res.CPU.Committed == 0 {
		t.Fatal("simulation after peer miss produced nothing")
	}
	if n := peer.fetches.Load(); n != 1 {
		t.Errorf("peer fetched %d times, want 1", n)
	}
	if st := b.Stats(); st.Executed != 1 {
		t.Errorf("engine stats %+v, want executed=1", st)
	}
	ss := b.StoreStats()
	if ss.Peer.Hits != 0 || ss.Peer.Misses != 1 || ss.PeerInstalls != 0 {
		t.Errorf("peer tier stats %+v, want 0 hits, 1 miss", ss)
	}
}

func TestPeerTierConcurrentMissesCoalesce(t *testing.T) {
	spec := cacheTestSpec()
	peer := &fakePeer{res: Run(spec), ok: true, delay: 50 * time.Millisecond}
	b := NewBatch(4)
	b.SetPeerStore(peer)

	const callers = 8
	var wg sync.WaitGroup
	for range callers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.RunCtx(context.Background(), spec); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	// The singleflight owner does the one fetch; everyone else
	// coalesces onto it.
	if n := peer.fetches.Load(); n != 1 {
		t.Errorf("%d concurrent misses made %d peer fetches, want 1", callers, n)
	}
	if st := b.Stats(); st.Requests != callers || st.Executed != 0 || st.Hits != callers {
		t.Errorf("engine stats %+v, want requests=%d executed=0 hits=%d", st, callers, callers)
	}
}

func TestValidatePeerResult(t *testing.T) {
	spec := cacheTestSpec()
	res := Run(spec)
	key := Key(spec)

	if err := ValidatePeerResult(key, key, SimStamp(), res); err != nil {
		t.Errorf("valid peer result rejected: %v", err)
	}
	if err := ValidatePeerResult(key, "some-other-key", SimStamp(), res); err == nil {
		t.Error("key mismatch accepted")
	}
	if err := ValidatePeerResult(key, key, "different-build", res); err == nil {
		t.Error("simulator build-stamp mismatch accepted")
	}
	if err := ValidatePeerResult(key, key, SimStamp(), RunResult{}); err == nil {
		t.Error("meterless (corrupt) payload accepted")
	}
}

func TestStoreStatsAggregation(t *testing.T) {
	a := StoreStats{
		Mem:          TierStats{Hits: 1, Misses: 2},
		Disk:         TierStats{Hits: 3, Misses: 4},
		Peer:         TierStats{Hits: 5, Misses: 6},
		PeerInstalls: 5,
		PeerFetch:    FetchHist{Bounds: fetchBuckets, Counts: make([]uint64, len(fetchBuckets)+1), Sum: 1.5, Count: 11},
	}
	a.PeerFetch.Counts[0] = 11
	b := a
	b.PeerFetch = FetchHist{Bounds: fetchBuckets, Counts: make([]uint64, len(fetchBuckets)+1), Sum: 0.5, Count: 3}
	b.PeerFetch.Counts[1] = 3

	a.Add(b)
	if a.Peer.Hits != 10 || a.Peer.Misses != 12 || a.PeerInstalls != 10 {
		t.Errorf("aggregated peer tier %+v", a.Peer)
	}
	if a.PeerFetch.Count != 14 || a.PeerFetch.Sum != 2.0 {
		t.Errorf("aggregated histogram count=%d sum=%g", a.PeerFetch.Count, a.PeerFetch.Sum)
	}
	if a.PeerFetch.Counts[0] != 11 || a.PeerFetch.Counts[1] != 3 {
		t.Errorf("aggregated buckets %v", a.PeerFetch.Counts)
	}
}
