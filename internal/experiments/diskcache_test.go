package experiments

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// cacheTestSpec is a tiny simulation so the cache tests stay fast.
func cacheTestSpec() RunSpec {
	return RunSpec{Benchmark: "gzip", Insts: 5_000, Model: ModelSAMIE}
}

func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b1, err := NewBatchWithCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	fresh := b1.Run(cacheTestSpec())
	if st := b1.DiskStats(); st.Writes != 1 || st.Hits != 0 {
		t.Fatalf("first run stats = %+v, want 1 write", st)
	}

	// A second batch over the same directory must serve from disk and
	// reproduce the result exactly (everything figures consume).
	b2, err := NewBatchWithCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	cached := b2.Run(cacheTestSpec())
	if st := b2.DiskStats(); st.Hits != 1 || st.Writes != 0 {
		t.Fatalf("second run stats = %+v, want 1 hit", st)
	}
	if cached.CPU != fresh.CPU {
		t.Errorf("CPU result differs: disk %+v vs fresh %+v", cached.CPU, fresh.CPU)
	}
	if *cached.Meter != *fresh.Meter {
		t.Errorf("meter differs after round trip")
	}
	if cached.SAMIE != fresh.SAMIE {
		t.Errorf("SAMIE stats differ after round trip")
	}
	if cached.Hier != nil {
		t.Errorf("disk-served result must carry a nil Hier")
	}
	if cached.Spec.Insts != 5_000 || cached.Spec.SAMIE == nil {
		t.Errorf("restored spec not normalized: %+v", cached.Spec)
	}
}

func TestDiskCacheCorruptAndPartialFiles(t *testing.T) {
	dir := t.TempDir()
	b, err := NewBatchWithCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	b.Run(cacheTestSpec())

	files, err := filepath.Glob(filepath.Join(dir, "run-*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("expected one artifact, got %v (%v)", files, err)
	}
	for _, corrupt := range []func() error{
		func() error { return os.WriteFile(files[0], []byte("{not json"), 0o644) },       // corrupt
		func() error { return os.Truncate(files[0], 10) },                                // partial write
		func() error { return os.WriteFile(files[0], []byte(`{"Version":999}`), 0o644) }, // version skew
	} {
		if err := corrupt(); err != nil {
			t.Fatal(err)
		}
		nb, err := NewBatchWithCache(1, dir)
		if err != nil {
			t.Fatal(err)
		}
		res := nb.Run(cacheTestSpec())
		st := nb.DiskStats()
		if st.Hits != 0 || st.Misses != 1 || st.Writes != 1 {
			t.Fatalf("corrupt artifact not recovered: stats %+v", st)
		}
		if res.CPU.Committed == 0 {
			t.Fatal("re-simulation after corrupt artifact produced nothing")
		}
		// The rewrite must have repaired the artifact.
		rb, _ := NewBatchWithCache(1, dir)
		rb.Run(cacheTestSpec())
		if rs := rb.DiskStats(); rs.Hits != 1 {
			t.Fatalf("artifact not repaired after corruption: %+v", rs)
		}
	}
}

func TestDiskCacheConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	// Many batches race to simulate and persist the same spec; every
	// one must succeed and the surviving artifact must be valid.
	var wg sync.WaitGroup
	results := make([]RunResult, 6)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, err := NewBatchWithCache(1, dir)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = b.Run(cacheTestSpec())
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i].CPU != results[0].CPU {
			t.Fatalf("racing writers produced different results")
		}
	}
	b, _ := NewBatchWithCache(1, dir)
	b.Run(cacheTestSpec())
	if st := b.DiskStats(); st.Hits != 1 {
		t.Fatalf("artifact invalid after concurrent writers: %+v", st)
	}
}

func TestDiskCacheDisabledCleanly(t *testing.T) {
	// An empty cache directory is a configuration error for the
	// explicit constructor...
	if _, err := NewBatchWithCache(1, ""); err == nil {
		t.Fatal("empty cache dir accepted")
	}
	// ...while the plain batch simply has no disk cache: zero stats,
	// no files written anywhere.
	b := NewBatch(1)
	b.Run(cacheTestSpec())
	if st := b.DiskStats(); st != (DiskCacheStats{}) {
		t.Fatalf("cacheless batch reported disk traffic: %+v", st)
	}
}

// specFor is cacheTestSpec for an arbitrary benchmark.
func specFor(bench string) RunSpec {
	s := cacheTestSpec()
	s.Benchmark = bench
	return s
}

func TestDiskCacheIndexAndPreload(t *testing.T) {
	dir := t.TempDir()
	b1, err := NewBatchWithCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]RunResult{}
	for _, bench := range []string{"gzip", "swim"} {
		want[bench] = b1.Run(specFor(bench))
	}
	if keys := b1.Disk().Keys(); len(keys) != 2 {
		t.Fatalf("index holds %d keys after 2 stores, want 2", len(keys))
	}
	// Index rewrites are debounced; Close forces the flush so a fresh
	// process adopting the directory sees both keys.
	if err := b1.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh batch over the same directory preloads the whole suite
	// from the index: both specs then serve from memory with zero
	// simulations and zero disk traffic.
	b2, err := NewBatchWithCache(2, dir)
	if err != nil {
		t.Fatal(err)
	}
	n, err := b2.PreloadDisk()
	if err != nil || n != 2 {
		t.Fatalf("PreloadDisk = %d, %v; want 2, nil", n, err)
	}
	for _, bench := range []string{"gzip", "swim"} {
		r, err := b2.RunCtx(context.Background(), specFor(bench))
		if err != nil {
			t.Fatal(err)
		}
		if r.CPU != want[bench].CPU {
			t.Errorf("%s: preloaded CPU result differs", bench)
		}
		if r.Spec.Benchmark != bench || r.Spec.SAMIE == nil {
			t.Errorf("%s: preloaded result lost its normalized spec: %+v", bench, r.Spec)
		}
	}
	st := b2.Stats()
	if st.Executed != 0 || st.Hits != 2 {
		t.Fatalf("preloaded batch stats %+v, want executed=0 hits=2", st)
	}
	if ds := b2.DiskStats(); ds.Hits != 0 || ds.Misses != 0 {
		t.Fatalf("preload counted as disk traffic: %+v", ds)
	}

	// Preloading an uncached batch is a configuration error.
	if _, err := NewBatch(1).PreloadDisk(); err == nil {
		t.Fatal("PreloadDisk on a cacheless batch did not error")
	}
}

func TestDiskCacheRebuildIndex(t *testing.T) {
	dir := t.TempDir()
	b, err := NewBatchWithCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	b.Run(specFor("gzip"))
	b.Run(specFor("mcf"))
	b.Disk().FlushIndex()
	if err := os.Remove(filepath.Join(dir, indexFile)); err != nil {
		t.Fatal(err)
	}

	// Without an index a fresh cache enumerates nothing...
	d, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if keys := d.Keys(); len(keys) != 0 {
		t.Fatalf("lost index still enumerates %d keys", len(keys))
	}
	// ...and RebuildIndex recovers every valid artifact, skipping junk.
	if err := os.WriteFile(filepath.Join(dir, "run-zz.json"), []byte("{bad"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := d.RebuildIndex()
	if err != nil || n != 2 {
		t.Fatalf("RebuildIndex = %d, %v; want 2, nil", n, err)
	}
	if keys := d.Keys(); len(keys) != 2 {
		t.Fatalf("rebuilt index holds %d keys, want 2", len(keys))
	}
}

func TestDiskCachePruneBySize(t *testing.T) {
	dir := t.TempDir()
	b, err := NewBatchWithCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, bench := range []string{"gzip", "swim", "mcf"} {
		b.Run(specFor(bench))
	}
	files := artifactFiles(t, dir)
	if len(files) != 3 {
		t.Fatalf("have %d artifacts, want 3", len(files))
	}
	// Distinct mtimes so "oldest first" is deterministic.
	for i, p := range files {
		mt := time.Now().Add(-time.Duration(len(files)-i) * time.Hour)
		if err := os.Chtimes(p, mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// Keep one artifact's worth of bytes: pruning retains newest-first,
	// so the budget must fit the newest artifact (files[2] after the
	// Chtimes above — glob order is hash order, not age order).
	var one int64
	if st, err := os.Stat(files[len(files)-1]); err == nil {
		one = st.Size()
	}
	ps, err := b.Disk().Prune(one+16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Removed != 2 || ps.Remaining != 1 {
		t.Fatalf("prune stats %+v, want 2 removed, 1 remaining", ps)
	}
	if got := artifactFiles(t, dir); len(got) != 1 {
		t.Fatalf("%d artifacts survive, want 1", len(got))
	}
	if keys := b.Disk().Keys(); len(keys) != 1 {
		t.Fatalf("index holds %d keys after prune, want 1", len(keys))
	}
}

func TestDiskCachePruneByAge(t *testing.T) {
	dir := t.TempDir()
	b, err := NewBatchWithCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	b.Run(specFor("gzip"))
	b.Run(specFor("swim"))
	gzipArt := b.Disk().path(Key(specFor("gzip")))
	old := time.Now().Add(-48 * time.Hour)
	if err := os.Chtimes(gzipArt, old, old); err != nil {
		t.Fatal(err)
	}
	// A stale temp file from a killed writer is collected too.
	stale := filepath.Join(dir, "tmp-run-dead")
	if err := os.WriteFile(stale, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	ps, err := b.Disk().Prune(0, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Removed != 1 || ps.Remaining != 1 {
		t.Fatalf("prune stats %+v, want 1 removed, 1 remaining", ps)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived the prune")
	}
	// The unexpired artifact still serves.
	nb, _ := NewBatchWithCache(1, dir)
	nb.Run(specFor("swim"))
	if st := nb.DiskStats(); st.Hits != 1 {
		t.Fatalf("surviving artifact no longer serves: %+v", st)
	}
}

func TestDiskCacheDebouncedIndexFlush(t *testing.T) {
	dir := t.TempDir()
	b, err := NewBatchWithCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	d := b.Disk()
	// Lengthen the debounce so the window is observable: the store must
	// NOT rewrite index.json synchronously.
	d.flushDelay = time.Hour
	b.Run(specFor("gzip"))
	if _, err := os.Stat(filepath.Join(dir, indexFile)); !os.IsNotExist(err) {
		t.Fatalf("index.json written synchronously by store (err=%v); flush should be debounced", err)
	}
	// The in-memory index already enumerates the key regardless.
	if keys := d.Keys(); len(keys) != 1 {
		t.Fatalf("in-memory index holds %d keys, want 1", len(keys))
	}
	// A second store inside the pending window does not re-arm the
	// timer: one flush covers the burst.
	b.Run(specFor("swim"))
	if _, err := os.Stat(filepath.Join(dir, indexFile)); !os.IsNotExist(err) {
		t.Fatalf("burst store flushed early (err=%v)", err)
	}

	// With a short debounce the flush arrives without any forced call,
	// carrying every store of the burst.
	dirShort := t.TempDir()
	bs, err := NewBatchWithCache(1, dirShort)
	if err != nil {
		t.Fatal(err)
	}
	bs.Disk().flushDelay = 10 * time.Millisecond
	bs.Run(specFor("gzip"))
	bs.Run(specFor("swim"))
	deadline := time.Now().Add(5 * time.Second)
	for {
		nd, err := NewDiskCache(dirShort)
		if err != nil {
			t.Fatal(err)
		}
		if keys := nd.Keys(); len(keys) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("debounced flush never wrote a complete index.json")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Close on a dirty cache flushes immediately, and is idempotent.
	dir2 := t.TempDir()
	b2, err := NewBatchWithCache(1, dir2)
	if err != nil {
		t.Fatal(err)
	}
	b2.Disk().flushDelay = time.Hour
	b2.Run(specFor("gzip"))
	if _, err := os.Stat(filepath.Join(dir2, indexFile)); !os.IsNotExist(err) {
		t.Fatal("index.json present before Close despite hour-long debounce")
	}
	if err := b2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir2, indexFile)); err != nil {
		t.Fatalf("Close did not flush the index: %v", err)
	}
}

// artifactFiles lists the run artifacts sorted by name.
func artifactFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "run-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

func TestBatchCacheLimitLRU(t *testing.T) {
	b := NewBatch(1)
	b.SetCacheLimit(2)
	s1 := cacheTestSpec()
	s2 := cacheTestSpec()
	s2.Benchmark = "swim"
	s3 := cacheTestSpec()
	s3.Benchmark = "mcf"

	b.Run(s1)
	b.Run(s2)
	b.Run(s3) // evicts s1 (least recently requested)
	if got := b.Stats().Executed; got != 3 {
		t.Fatalf("executed %d, want 3", got)
	}
	b.Run(s2) // still cached
	if got := b.Stats().Executed; got != 3 {
		t.Fatalf("cached spec re-executed: %d", got)
	}
	r := b.Run(s1) // evicted: must re-simulate, and deterministically so
	if got := b.Stats().Executed; got != 4 {
		t.Fatalf("evicted spec served stale: executed %d, want 4", got)
	}
	if r.CPU.Committed == 0 {
		t.Fatal("re-simulated result empty")
	}
	if b.DistinctRuns() > 2 {
		t.Fatalf("cache holds %d results, want <= 2", b.DistinctRuns())
	}
}

func TestDiskCacheArtifactsWorldReadable(t *testing.T) {
	dir := t.TempDir()
	b, err := NewBatchWithCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	b.Run(cacheTestSpec())
	b.Disk().FlushIndex()

	// CreateTemp makes 0600 temp files; the rename must publish 0644 —
	// a sibling process under another uid sharing the cache directory
	// otherwise reads nothing and silently re-simulates.
	files := artifactFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("expected one artifact, got %v", files)
	}
	for _, f := range append(files, filepath.Join(dir, indexFile)) {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		if mode := st.Mode().Perm(); mode != 0o644 {
			t.Errorf("%s published with mode %o, want 644", filepath.Base(f), mode)
		}
	}
}
