package experiments

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// cacheTestSpec is a tiny simulation so the cache tests stay fast.
func cacheTestSpec() RunSpec {
	return RunSpec{Benchmark: "gzip", Insts: 5_000, Model: ModelSAMIE}
}

func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b1, err := NewBatchWithCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	fresh := b1.Run(cacheTestSpec())
	if st := b1.DiskStats(); st.Writes != 1 || st.Hits != 0 {
		t.Fatalf("first run stats = %+v, want 1 write", st)
	}

	// A second batch over the same directory must serve from disk and
	// reproduce the result exactly (everything figures consume).
	b2, err := NewBatchWithCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	cached := b2.Run(cacheTestSpec())
	if st := b2.DiskStats(); st.Hits != 1 || st.Writes != 0 {
		t.Fatalf("second run stats = %+v, want 1 hit", st)
	}
	if cached.CPU != fresh.CPU {
		t.Errorf("CPU result differs: disk %+v vs fresh %+v", cached.CPU, fresh.CPU)
	}
	if *cached.Meter != *fresh.Meter {
		t.Errorf("meter differs after round trip")
	}
	if cached.SAMIE != fresh.SAMIE {
		t.Errorf("SAMIE stats differ after round trip")
	}
	if cached.Hier != nil {
		t.Errorf("disk-served result must carry a nil Hier")
	}
	if cached.Spec.Insts != 5_000 || cached.Spec.SAMIE == nil {
		t.Errorf("restored spec not normalized: %+v", cached.Spec)
	}
}

func TestDiskCacheCorruptAndPartialFiles(t *testing.T) {
	dir := t.TempDir()
	b, err := NewBatchWithCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	b.Run(cacheTestSpec())

	files, err := filepath.Glob(filepath.Join(dir, "run-*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("expected one artifact, got %v (%v)", files, err)
	}
	for _, corrupt := range []func() error{
		func() error { return os.WriteFile(files[0], []byte("{not json"), 0o644) },       // corrupt
		func() error { return os.Truncate(files[0], 10) },                                // partial write
		func() error { return os.WriteFile(files[0], []byte(`{"Version":999}`), 0o644) }, // version skew
	} {
		if err := corrupt(); err != nil {
			t.Fatal(err)
		}
		nb, err := NewBatchWithCache(1, dir)
		if err != nil {
			t.Fatal(err)
		}
		res := nb.Run(cacheTestSpec())
		st := nb.DiskStats()
		if st.Hits != 0 || st.Misses != 1 || st.Writes != 1 {
			t.Fatalf("corrupt artifact not recovered: stats %+v", st)
		}
		if res.CPU.Committed == 0 {
			t.Fatal("re-simulation after corrupt artifact produced nothing")
		}
		// The rewrite must have repaired the artifact.
		rb, _ := NewBatchWithCache(1, dir)
		rb.Run(cacheTestSpec())
		if rs := rb.DiskStats(); rs.Hits != 1 {
			t.Fatalf("artifact not repaired after corruption: %+v", rs)
		}
	}
}

func TestDiskCacheConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	// Many batches race to simulate and persist the same spec; every
	// one must succeed and the surviving artifact must be valid.
	var wg sync.WaitGroup
	results := make([]RunResult, 6)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, err := NewBatchWithCache(1, dir)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = b.Run(cacheTestSpec())
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i].CPU != results[0].CPU {
			t.Fatalf("racing writers produced different results")
		}
	}
	b, _ := NewBatchWithCache(1, dir)
	b.Run(cacheTestSpec())
	if st := b.DiskStats(); st.Hits != 1 {
		t.Fatalf("artifact invalid after concurrent writers: %+v", st)
	}
}

func TestDiskCacheDisabledCleanly(t *testing.T) {
	// An empty cache directory is a configuration error for the
	// explicit constructor...
	if _, err := NewBatchWithCache(1, ""); err == nil {
		t.Fatal("empty cache dir accepted")
	}
	// ...while the plain batch simply has no disk cache: zero stats,
	// no files written anywhere.
	b := NewBatch(1)
	b.Run(cacheTestSpec())
	if st := b.DiskStats(); st != (DiskCacheStats{}) {
		t.Fatalf("cacheless batch reported disk traffic: %+v", st)
	}
}

func TestBatchCacheLimitLRU(t *testing.T) {
	b := NewBatch(1)
	b.SetCacheLimit(2)
	s1 := cacheTestSpec()
	s2 := cacheTestSpec()
	s2.Benchmark = "swim"
	s3 := cacheTestSpec()
	s3.Benchmark = "mcf"

	b.Run(s1)
	b.Run(s2)
	b.Run(s3) // evicts s1 (least recently requested)
	if got := b.Stats().Executed; got != 3 {
		t.Fatalf("executed %d, want 3", got)
	}
	b.Run(s2) // still cached
	if got := b.Stats().Executed; got != 3 {
		t.Fatalf("cached spec re-executed: %d", got)
	}
	r := b.Run(s1) // evicted: must re-simulate, and deterministically so
	if got := b.Stats().Executed; got != 4 {
		t.Fatalf("evicted spec served stale: executed %d, want 4", got)
	}
	if r.CPU.Committed == 0 {
		t.Fatal("re-simulated result empty")
	}
	if b.DistinctRuns() > 2 {
		t.Fatalf("cache holds %d results, want <= 2", b.DistinctRuns())
	}
}
