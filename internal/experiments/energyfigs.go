package experiments

import (
	"context"
	"fmt"
	"strings"

	"samielsq/internal/stats"
)

// EnergyRow is one benchmark's energy comparison, used by Figures
// 7-12 (all derive from the same conventional/SAMIE simulation pair).
type EnergyRow struct {
	Benchmark string

	// Figure 7: LSQ dynamic energy (pJ).
	ConvLSQ  float64
	SAMIELSQ float64

	// Figure 8: SAMIE breakdown (pJ).
	Distrib, Shared, AddrBuffer, Bus float64

	// Figures 9 and 10: Dcache and DTLB dynamic energy (pJ).
	ConvDcache, SAMIEDcache float64
	ConvDTLB, SAMIEDTLB     float64

	// Figures 11 and 12: accumulated active area (µm²·cycles).
	ConvArea                                float64
	SAMIEArea                               float64
	DistribArea, SharedArea, AddrBufferArea float64
}

// EnergyResult bundles Figures 7-12.
type EnergyResult struct {
	Rows  []EnergyRow
	Insts uint64
}

// Energy reproduces Figures 7-12 through a fresh single-use batch.
func Energy(benchmarks []string, insts uint64) EnergyResult {
	return NewBatch(0).Energy(benchmarks, insts)
}

// Energy runs the conventional/SAMIE pair per benchmark and extracts
// every energy and active-area series of §4.4-§4.5. The pair is the
// same one Figure56 uses, so a shared batch simulates it once for
// both harnesses.
func (bt *Batch) Energy(benchmarks []string, insts uint64) EnergyResult {
	return mustFigure(bt.EnergyCtx(context.Background(), benchmarks, insts))
}

// EnergyCtx is Energy with cancellation (see Figure1Ctx).
func (bt *Batch) EnergyCtx(ctx context.Context, benchmarks []string, insts uint64) (EnergyResult, error) {
	conv, err := bt.RunAllCtx(ctx, benchmarks, func(b string) RunSpec {
		return RunSpec{Benchmark: b, Insts: insts, Model: ModelConventional}
	})
	if err != nil {
		return EnergyResult{}, err
	}
	samie, err := bt.RunAllCtx(ctx, benchmarks, func(b string) RunSpec {
		return RunSpec{Benchmark: b, Insts: insts, Model: ModelSAMIE}
	})
	if err != nil {
		return EnergyResult{}, err
	}
	res := EnergyResult{Insts: insts}
	for i, b := range benchmarks {
		cm, sm := conv[i].Meter, samie[i].Meter
		res.Rows = append(res.Rows, EnergyRow{
			Benchmark:      b,
			ConvLSQ:        cm.ConvLSQ,
			SAMIELSQ:       sm.SAMIETotal(),
			Distrib:        sm.Distrib,
			Shared:         sm.Shared,
			AddrBuffer:     sm.AddrBuffer,
			Bus:            sm.Bus,
			ConvDcache:     cm.Dcache,
			SAMIEDcache:    sm.Dcache,
			ConvDTLB:       cm.DTLB,
			SAMIEDTLB:      sm.DTLB,
			ConvArea:       cm.ConvArea,
			SAMIEArea:      sm.SAMIEArea(),
			DistribArea:    sm.DistribArea,
			SharedArea:     sm.SharedArea,
			AddrBufferArea: sm.AddrBufferArea,
		})
	}
	return res, nil
}

// savings returns 1 - sum(new)/sum(old) over all rows.
func savings(rows []EnergyRow, old, new func(EnergyRow) float64) float64 {
	var o, n float64
	for _, r := range rows {
		o += old(r)
		n += new(r)
	}
	if o == 0 {
		return 0
	}
	return 1 - n/o
}

// LSQSavings returns the suite-wide LSQ dynamic-energy saving
// (paper: 82%).
func (e EnergyResult) LSQSavings() float64 {
	return savings(e.Rows, func(r EnergyRow) float64 { return r.ConvLSQ },
		func(r EnergyRow) float64 { return r.SAMIELSQ })
}

// DcacheSavings returns the suite-wide L1 Dcache saving (paper: 42%).
func (e EnergyResult) DcacheSavings() float64 {
	return savings(e.Rows, func(r EnergyRow) float64 { return r.ConvDcache },
		func(r EnergyRow) float64 { return r.SAMIEDcache })
}

// DTLBSavings returns the suite-wide DTLB saving (paper: 73%).
func (e EnergyResult) DTLBSavings() float64 {
	return savings(e.Rows, func(r EnergyRow) float64 { return r.ConvDTLB },
		func(r EnergyRow) float64 { return r.SAMIEDTLB })
}

// AreaSavings returns the accumulated-active-area saving (paper: ~5%).
func (e EnergyResult) AreaSavings() float64 {
	return savings(e.Rows, func(r EnergyRow) float64 { return r.ConvArea },
		func(r EnergyRow) float64 { return r.SAMIEArea })
}

// Figure7String renders Figure 7 (LSQ dynamic energy).
//
//samie:deterministic
func (e EnergyResult) Figure7String() string {
	t := stats.NewTable("benchmark", "conventional (nJ)", "SAMIE (nJ)", "saving")
	for _, r := range e.Rows {
		t.AddRow(r.Benchmark, r.ConvLSQ/1e3, r.SAMIELSQ/1e3, stats.Percent(1-r.SAMIELSQ/r.ConvLSQ))
	}
	return fmt.Sprintf("Figure 7: LSQ dynamic energy (suite saving %s, paper 82%%)\n%s",
		stats.Percent(e.LSQSavings()), t.String())
}

// Figure8String renders Figure 8 (SAMIE energy breakdown).
//
//samie:deterministic
func (e EnergyResult) Figure8String() string {
	t := stats.NewTable("benchmark", "DistribLSQ", "SharedLSQ", "AddrBuffer", "Bus")
	for _, r := range e.Rows {
		tot := r.Distrib + r.Shared + r.AddrBuffer + r.Bus
		if tot == 0 {
			tot = 1
		}
		t.AddRow(r.Benchmark, stats.Percent(r.Distrib/tot), stats.Percent(r.Shared/tot),
			stats.Percent(r.AddrBuffer/tot), stats.Percent(r.Bus/tot))
	}
	return "Figure 8: SAMIE-LSQ dynamic energy breakdown\n" + t.String()
}

// Figure9String renders Figure 9 (L1 Dcache energy).
//
//samie:deterministic
func (e EnergyResult) Figure9String() string {
	t := stats.NewTable("benchmark", "conventional (nJ)", "SAMIE (nJ)", "saving")
	for _, r := range e.Rows {
		t.AddRow(r.Benchmark, r.ConvDcache/1e3, r.SAMIEDcache/1e3, stats.Percent(1-r.SAMIEDcache/r.ConvDcache))
	}
	return fmt.Sprintf("Figure 9: L1 Dcache dynamic energy (suite saving %s, paper 42%%)\n%s",
		stats.Percent(e.DcacheSavings()), t.String())
}

// Figure10String renders Figure 10 (DTLB energy).
//
//samie:deterministic
func (e EnergyResult) Figure10String() string {
	t := stats.NewTable("benchmark", "conventional (nJ)", "SAMIE (nJ)", "saving")
	for _, r := range e.Rows {
		t.AddRow(r.Benchmark, r.ConvDTLB/1e3, r.SAMIEDTLB/1e3, stats.Percent(1-r.SAMIEDTLB/r.ConvDTLB))
	}
	return fmt.Sprintf("Figure 10: DTLB dynamic energy (suite saving %s, paper 73%%)\n%s",
		stats.Percent(e.DTLBSavings()), t.String())
}

// Figure11String renders Figure 11 (accumulated active area).
//
//samie:deterministic
func (e EnergyResult) Figure11String() string {
	t := stats.NewTable("benchmark", "conventional", "SAMIE", "SAMIE/conv")
	for _, r := range e.Rows {
		ratio := 0.0
		if r.ConvArea > 0 {
			ratio = r.SAMIEArea / r.ConvArea
		}
		t.AddRow(r.Benchmark, r.ConvArea, r.SAMIEArea, ratio)
	}
	return fmt.Sprintf("Figure 11: accumulated active LSQ area, µm²·cycles (suite saving %s, paper ~5%%)\n%s",
		stats.Percent(e.AreaSavings()), t.String())
}

// Figure12String renders Figure 12 (active-area breakdown).
//
//samie:deterministic
func (e EnergyResult) Figure12String() string {
	t := stats.NewTable("benchmark", "DistribLSQ", "SharedLSQ", "AddrBuffer")
	for _, r := range e.Rows {
		tot := r.DistribArea + r.SharedArea + r.AddrBufferArea
		if tot == 0 {
			tot = 1
		}
		t.AddRow(r.Benchmark, stats.Percent(r.DistribArea/tot),
			stats.Percent(r.SharedArea/tot), stats.Percent(r.AddrBufferArea/tot))
	}
	return "Figure 12: SAMIE-LSQ active-area breakdown\n" + t.String()
}

// String renders all six energy/area figures.
//
//samie:deterministic
func (e EnergyResult) String() string {
	var b strings.Builder
	for _, s := range []string{
		e.Figure7String(), e.Figure8String(), e.Figure9String(),
		e.Figure10String(), e.Figure11String(), e.Figure12String(),
	} {
		b.WriteString(s)
		b.WriteByte('\n')
	}
	return b.String()
}
