package experiments

// The tiered run store. A Batch resolves every requested spec through
// up to three backends before simulating:
//
//	tier 0 (mem)  — the engine scheduler's memoized results
//	tier 1 (disk) — the content-addressed DiskCache
//	tier 2 (peer) — a PeerStore probing sibling replicas over HTTP
//	simulate      — runNormalized, the authority of last resort
//
// The lookups happen inside the singleflight owner's job closure, so
// however many callers miss the mem tier concurrently, each key walks
// the lower tiers (and at most fetches from a peer) exactly once. A
// peer-delivered result is installed into the local disk cache, so a
// cold replica warms permanently from one fetch.

import (
	"context"
	"fmt"

	"samielsq/internal/obs"
)

// PeerStore is the tier-2 backend: on a local miss it returns the
// result for a canonical key from a sibling replica, or false when no
// peer holds it (unreachable peers count as not holding it — the
// caller degrades to simulation, never fails). Implementations must
// validate what they accept (see ValidatePeerResult); the Batch
// installs whatever a Fetch returns. pkg/cluster.PeerFetcher is the
// standard implementation.
type PeerStore interface {
	Fetch(ctx context.Context, key string) (RunResult, bool)
}

// SetPeerStore attaches (or, with nil, detaches) the batch's tier-2
// peer-fetch backend. Safe to call concurrently with running requests;
// in-flight jobs keep the store they started with.
func (b *Batch) SetPeerStore(p PeerStore) {
	if p == nil {
		b.peer.Store(nil)
		return
	}
	b.peer.Store(&peerBox{s: p})
}

// PeerStore returns the attached tier-2 backend, or nil.
func (b *Batch) PeerStore() PeerStore {
	if box := b.peer.Load(); box != nil {
		return box.s
	}
	return nil
}

// peerBox wraps the interface so an atomic.Pointer can hold it.
type peerBox struct{ s PeerStore }

// SimStamp identifies the simulator build this process runs (the VCS
// revision, or "dev" for unstamped/dirty builds). Peers exchange it
// alongside run payloads so a replica never adopts numbers a different
// simulator build produced — the same guard the disk tier applies to
// artifacts.
func SimStamp() string { return simStamp() }

// ValidatePeerResult vets a peer-delivered run payload through the
// same acceptance predicate the disk tier applies to artifacts
// (validArtifact): the peer must echo the requested canonical key,
// report this build's simulator stamp, and carry an energy meter.
// A non-nil error means the payload must be treated as a miss and
// never installed.
func ValidatePeerResult(key, gotKey, sim string, r RunResult) error {
	art := diskArtifact{Version: diskCacheVersion, Sim: sim, Key: gotKey, Meter: r.Meter}
	if !validArtifact(&art, key) {
		return fmt.Errorf("experiments: peer result rejected: key %q (want %q), sim %q (local %q), meter present %v",
			gotKey, key, sim, simStamp(), r.Meter != nil)
	}
	return nil
}

// TierStats is one tier's lookup accounting.
type TierStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// StoreStats is the tiered store's per-tier accounting: every request
// resolves at the first tier that hits, so a request served by the
// peer tier counts a miss at mem and disk and a hit at peer. Exposed
// through /v1/stats ("store") and /metrics
// (samie_store_{hits,misses}_total{tier="mem|disk|peer"}).
type StoreStats struct {
	Mem  TierStats `json:"mem"`
	Disk TierStats `json:"disk"`
	Peer TierStats `json:"peer"`

	// PeerInstalls counts peer-fetched results persisted into the
	// local disk tier.
	PeerInstalls int64 `json:"peer_installs"`

	// PeerFetch is the peer-probe latency distribution (hits and
	// misses both: a slow miss is the signal worth alerting on).
	PeerFetch FetchHist `json:"peer_fetch"`
}

// Add accumulates another snapshot into s; cluster tooling uses it to
// aggregate per-replica store stats.
func (s *StoreStats) Add(o StoreStats) {
	s.Mem.Hits += o.Mem.Hits
	s.Mem.Misses += o.Mem.Misses
	s.Disk.Hits += o.Disk.Hits
	s.Disk.Misses += o.Disk.Misses
	s.Peer.Hits += o.Peer.Hits
	s.Peer.Misses += o.Peer.Misses
	s.PeerInstalls += o.PeerInstalls
	s.PeerFetch.Add(o.PeerFetch)
}

// StoreStats snapshots the batch's tiered-store accounting. Mem-tier
// hits are the engine's (memoized + coalesced + externally served)
// minus what the lower tiers delivered; mem misses are the jobs that
// had to walk down.
func (b *Batch) StoreStats() StoreStats {
	es := b.sched.Stats()
	ds := b.DiskStats()
	peerHits := b.peerHits.Load()
	external := ds.Hits + peerHits
	memHits := es.Hits - external
	if memHits < 0 {
		// A lower-tier hit inside a still-closing job; transiently
		// clamp rather than report a negative counter.
		memHits = 0
	}
	return StoreStats{
		Mem:          TierStats{Hits: memHits, Misses: es.Executed + external},
		Disk:         TierStats{Hits: ds.Hits, Misses: ds.Misses},
		Peer:         TierStats{Hits: peerHits, Misses: b.peerMisses.Load()},
		PeerInstalls: b.peerInstalls.Load(),
		PeerFetch:    b.peerFetch.Snapshot(),
	}
}

// PhaseStats snapshots the batch's per-phase run-latency histograms
// (see internal/obs.Phase for the phase definitions). Exposed through
// /v1/stats ("run_phases") and /metrics (samie_run_phase_seconds).
func (b *Batch) PhaseStats() obs.PhaseStats {
	out := make(obs.PhaseStats, obs.NumPhases)
	for i, h := range b.phase {
		if s := h.Snapshot(); s.Count > 0 {
			out[obs.Phase(i).String()] = s
		}
	}
	return out
}

// fetchBuckets are the peer-fetch histogram's upper bounds in seconds
// (the Prometheus defaults trimmed to the latencies an HTTP probe can
// plausibly take).
var fetchBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// FetchHist is a snapshot of the peer-fetch latency histogram.
// Counts[i] is the number of observations ≤ Bounds[i] seconds
// (non-cumulative per bucket); the final element counts observations
// beyond every bound (+Inf). It is the shared obs histogram snapshot;
// the alias keeps the established name and wire shape.
type FetchHist = obs.HistSnapshot
