package experiments

import "testing"

// TestSmokeStack runs the full stack (trace -> CPU -> LSQ models ->
// energy) on a few representative benchmarks and checks coarse sanity
// invariants; detailed behaviour is covered by the per-package tests
// and the figure tests. Under -short the budget shrinks so the smoke
// coverage survives in fast runs.
func TestSmokeStack(t *testing.T) {
	insts := uint64(60_000)
	if testing.Short() {
		insts = 20_000
	}
	for _, bench := range []string{"gzip", "ammp", "swim", "mcf", "facerec"} {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			conv := Run(RunSpec{Benchmark: bench, Model: ModelConventional, Insts: insts})
			samie := Run(RunSpec{Benchmark: bench, Model: ModelSAMIE, Insts: insts})

			if conv.CPU.Committed < insts {
				t.Fatalf("conventional committed %d < requested", conv.CPU.Committed)
			}
			if samie.CPU.Committed < insts {
				t.Fatalf("samie committed %d < requested", samie.CPU.Committed)
			}
			if conv.CPU.IPC <= 0.1 || conv.CPU.IPC > 8 {
				t.Errorf("conventional IPC %.3f out of sane range", conv.CPU.IPC)
			}
			loss := (conv.CPU.IPC - samie.CPU.IPC) / conv.CPU.IPC
			if loss > 0.30 {
				t.Errorf("SAMIE IPC loss %.1f%% too large (conv %.3f, samie %.3f)",
					loss*100, conv.CPU.IPC, samie.CPU.IPC)
			}
			if samie.Meter.SAMIETotal() <= 0 {
				t.Error("SAMIE consumed no LSQ energy")
			}
			// §4.4: "the SAMIE-LSQ is much more energy-efficient than
			// the conventional LSQ for all but one program" — the
			// exception is ammp, whose SharedLSQ/AddrBuffer traffic
			// dominates; the reproduction shows the same exception.
			if bench != "ammp" && conv.Meter.ConvLSQ <= samie.Meter.SAMIETotal() {
				t.Errorf("expected conventional LSQ energy (%.3g) > SAMIE (%.3g)",
					conv.Meter.ConvLSQ, samie.Meter.SAMIETotal())
			}
			if samie.Meter.Dcache >= conv.Meter.Dcache {
				t.Errorf("expected SAMIE Dcache energy (%.3g) < conventional (%.3g)",
					samie.Meter.Dcache, conv.Meter.Dcache)
			}
			if samie.Meter.DTLB >= conv.Meter.DTLB {
				t.Errorf("expected SAMIE DTLB energy (%.3g) < conventional (%.3g)",
					samie.Meter.DTLB, conv.Meter.DTLB)
			}
			t.Logf("%s: conv IPC=%.3f samie IPC=%.3f (loss %.2f%%), deadlocks=%d, "+
				"LSQ energy %.3g -> %.3g, Dcache %.3g -> %.3g, DTLB %.3g -> %.3g",
				bench, conv.CPU.IPC, samie.CPU.IPC, loss*100, samie.CPU.DeadlockFlushes,
				conv.Meter.ConvLSQ, samie.Meter.SAMIETotal(),
				conv.Meter.Dcache, samie.Meter.Dcache,
				conv.Meter.DTLB, samie.Meter.DTLB)
		})
	}
}
