package experiments

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"sync"

	"samielsq/internal/core"
	"samielsq/internal/cpu"
	"samielsq/internal/stats"
	"samielsq/internal/trace"
)

// Variant is one column of a scenario: a named spec builder applied to
// every benchmark in the sweep.
type Variant struct {
	Name string
	Spec func(bench string, insts uint64) RunSpec
}

// Scenario is a named, registered sweep: a set of variants evaluated
// over a benchmark list through a shared batch. New workloads are one
// registry entry, not a new harness.
type Scenario struct {
	Name        string
	Description string
	Variants    []Variant

	// Benchmarks, when set, are the default rows of the sweep when the
	// caller passes none; nil means the full 26-program SPEC suite.
	// Scenarios built around non-SPEC workloads (the adversarial
	// personalities) use this so `-scenario name` needs no -bench.
	Benchmarks []string
}

// ResolveBenchmarks applies the scenario's default rows: an explicit
// list wins, then the scenario's own default, then the full suite.
// Every consumer of the rule — ScenarioCtx, ScenarioSpecs, the HTTP
// handler — resolves through here, so the precedence lives in exactly
// one place.
func (sc Scenario) ResolveBenchmarks(benchmarks []string) []string {
	if len(benchmarks) > 0 {
		return benchmarks
	}
	if len(sc.Benchmarks) > 0 {
		return sc.Benchmarks
	}
	return Benchmarks()
}

var (
	scenarioMu  sync.RWMutex
	scenarioReg = map[string]Scenario{}
)

// RegisterScenario adds a scenario to the registry. It panics on an
// empty name, no variants, or a duplicate name: registration is a
// programming act, typically from init or test setup.
func RegisterScenario(s Scenario) {
	if s.Name == "" || len(s.Variants) == 0 {
		panic("experiments: scenario needs a name and at least one variant")
	}
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	if _, dup := scenarioReg[s.Name]; dup {
		panic(fmt.Sprintf("experiments: scenario %q registered twice", s.Name))
	}
	scenarioReg[s.Name] = s
}

// ScenarioNames returns the registered scenario names, sorted.
func ScenarioNames() []string {
	scenarioMu.RLock()
	defer scenarioMu.RUnlock()
	names := make([]string, 0, len(scenarioReg))
	for n := range scenarioReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LookupScenario returns a registered scenario by name.
func LookupScenario(name string) (Scenario, bool) {
	scenarioMu.RLock()
	defer scenarioMu.RUnlock()
	s, ok := scenarioReg[name]
	return s, ok
}

// ScenarioResult is the outcome of one scenario sweep: IPC and LSQ
// dynamic energy per (benchmark, variant) cell.
type ScenarioResult struct {
	Name       string
	Benchmarks []string
	Variants   []string
	Insts      uint64

	IPC      [][]float64 // [benchmark][variant]
	EnergyNJ [][]float64 // LSQ dynamic energy, nJ; 0 for models without an energy account
}

// RunScenario evaluates a registered scenario through a fresh
// single-use batch.
func RunScenario(name string, benchmarks []string, insts uint64) (ScenarioResult, error) {
	return NewBatch(0).Scenario(name, benchmarks, insts)
}

// Scenario evaluates a registered scenario through the batch: every
// (benchmark, variant) cell is one spec, deduplicated against
// everything else the batch has run.
func (bt *Batch) Scenario(name string, benchmarks []string, insts uint64) (ScenarioResult, error) {
	return bt.ScenarioCtx(context.Background(), name, benchmarks, insts, nil)
}

// ScenarioProgress reports one completed sweep cell to a ScenarioCtx
// observer.
type ScenarioProgress struct {
	Benchmark   string
	Variant     string
	IPC         float64
	EnergyNJ    float64
	Done, Total int
}

// ScenarioCtx is Scenario with cancellation and progress reporting:
// onCell (when non-nil) observes every (benchmark, variant) cell as
// its simulation completes, from a single goroutine, in completion
// order. Cancellation withdraws the sweep's queued simulations; a cell
// whose simulation panics surfaces as an error instead of tearing the
// process down.
func (bt *Batch) ScenarioCtx(ctx context.Context, name string, benchmarks []string, insts uint64, onCell func(ScenarioProgress)) (ScenarioResult, error) {
	sc, ok := LookupScenario(name)
	if !ok {
		return ScenarioResult{}, fmt.Errorf("experiments: unknown scenario %q (have %s)",
			name, strings.Join(ScenarioNames(), ", "))
	}
	benchmarks = sc.ResolveBenchmarks(benchmarks)
	if insts == 0 {
		insts = DefaultInsts
	}
	res := ScenarioResult{Name: name, Benchmarks: benchmarks, Insts: insts}
	for _, v := range sc.Variants {
		res.Variants = append(res.Variants, v.Name)
	}
	res.IPC = make([][]float64, len(benchmarks))
	res.EnergyNJ = make([][]float64, len(benchmarks))
	for bi := range benchmarks {
		res.IPC[bi] = make([]float64, len(sc.Variants))
		res.EnergyNJ[bi] = make([]float64, len(sc.Variants))
	}

	type cell struct {
		bi, vi      int
		ipc, energy float64
		err         error
	}
	total := len(benchmarks) * len(sc.Variants)
	results := make(chan cell, total)
	for bi, bench := range benchmarks {
		for vi, v := range sc.Variants {
			go func(bi, vi int, bench string, v Variant) {
				c := cell{bi: bi, vi: vi}
				defer func() {
					if p := recover(); p != nil {
						// The panic site's stack is only reachable here;
						// carry it so the failure stays diagnosable once
						// flattened to an error.
						c.err = fmt.Errorf("experiments: scenario cell %s/%s panicked: %v\n%s",
							bench, v.Name, p, debug.Stack())
					}
					results <- c
				}()
				r, err := bt.RunCtx(ctx, v.Spec(bench, insts))
				if err != nil {
					c.err = err
					return
				}
				c.ipc, c.energy = r.CPU.IPC, r.LSQEnergyNJ()
			}(bi, vi, bench, v)
		}
	}
	var firstErr error
	for done := 1; done <= total; done++ {
		c := <-results
		if c.err != nil {
			if firstErr == nil {
				firstErr = c.err
			}
			continue
		}
		res.IPC[c.bi][c.vi] = c.ipc
		res.EnergyNJ[c.bi][c.vi] = c.energy
		if onCell != nil && firstErr == nil {
			onCell(ScenarioProgress{
				Benchmark: benchmarks[c.bi],
				Variant:   res.Variants[c.vi],
				IPC:       c.ipc,
				EnergyNJ:  c.energy,
				Done:      done,
				Total:     total,
			})
		}
	}
	if firstErr != nil {
		return ScenarioResult{}, firstErr
	}
	return res, nil
}

// GeoMeanIPC returns the geometric-mean IPC per variant.
func (r ScenarioResult) GeoMeanIPC() []float64 {
	out := make([]float64, len(r.Variants))
	for vi := range r.Variants {
		vs := make([]float64, 0, len(r.Benchmarks))
		for bi := range r.Benchmarks {
			vs = append(vs, r.IPC[bi][vi])
		}
		out[vi] = stats.GeoMean(vs)
	}
	return out
}

// String renders the IPC sweep with a geometric-mean row, then the
// LSQ-energy sweep.
//
//samie:deterministic
func (r ScenarioResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario %s: IPC per variant (%d instructions)\n", r.Name, r.Insts)
	ti := stats.NewTable(append([]string{"benchmark"}, r.Variants...)...)
	for bi, bench := range r.Benchmarks {
		cells := []any{bench}
		for _, v := range r.IPC[bi] {
			cells = append(cells, v)
		}
		ti.AddRow(cells...)
	}
	gm := []any{"geomean"}
	for _, v := range r.GeoMeanIPC() {
		gm = append(gm, v)
	}
	ti.AddRow(gm...)
	b.WriteString(ti.String())

	b.WriteString("LSQ dynamic energy (nJ) per variant\n")
	te := stats.NewTable(append([]string{"benchmark"}, r.Variants...)...)
	for bi, bench := range r.Benchmarks {
		cells := []any{bench}
		for _, v := range r.EnergyNJ[bi] {
			cells = append(cells, v)
		}
		te.AddRow(cells...)
	}
	b.WriteString(te.String())
	return b.String()
}

// samieVariant builds a SAMIE variant from a config mutation.
func samieVariant(name string, mutate func(*core.Config)) Variant {
	return Variant{Name: name, Spec: func(bench string, insts uint64) RunSpec {
		cfg := core.PaperConfig()
		mutate(&cfg)
		return RunSpec{Benchmark: bench, Insts: insts, Model: ModelSAMIE, SAMIE: &cfg}
	}}
}

// cpuVariant builds a SAMIE variant with a CPU-config mutation.
func cpuVariant(name string, mutate func(*cpu.Config)) Variant {
	return Variant{Name: name, Spec: func(bench string, insts uint64) RunSpec {
		ccfg := cpu.PaperConfig()
		mutate(&ccfg)
		return RunSpec{Benchmark: bench, Insts: insts, Model: ModelSAMIE, CPU: &ccfg}
	}}
}

// The built-in sweeps: every axis of the paper's design space plus the
// CPU knobs the harnesses expose.
func init() {
	RegisterScenario(Scenario{
		Name:        "models",
		Description: "every LSQ organization at its paper operating point",
		Variants: []Variant{
			{Name: "conv-128", Spec: func(b string, i uint64) RunSpec {
				return RunSpec{Benchmark: b, Insts: i, Model: ModelConventional, ConvEntries: 128}
			}},
			{Name: "conv-16", Spec: func(b string, i uint64) RunSpec {
				return RunSpec{Benchmark: b, Insts: i, Model: ModelConventional, ConvEntries: 16}
			}},
			{Name: "unbounded", Spec: func(b string, i uint64) RunSpec {
				return RunSpec{Benchmark: b, Insts: i, Model: ModelUnbounded}
			}},
			{Name: "arb-64x2", Spec: func(b string, i uint64) RunSpec {
				return RunSpec{Benchmark: b, Insts: i, Model: ModelARB, ARBBanks: 64, ARBAddrs: 2, ARBInflight: 128}
			}},
			samieVariant("samie-paper", func(*core.Config) {}),
		},
	})
	RegisterScenario(Scenario{
		Name:        "shared-lsq-sizes",
		Description: "SAMIE SharedLSQ capacity sweep (Figure 4's axis)",
		Variants: []Variant{
			samieVariant("shared-0", func(c *core.Config) { c.SharedEntries = 0 }),
			samieVariant("shared-4", func(c *core.Config) { c.SharedEntries = 4 }),
			samieVariant("shared-8", func(c *core.Config) { c.SharedEntries = 8 }),
			samieVariant("shared-16", func(c *core.Config) { c.SharedEntries = 16 }),
			samieVariant("shared-32", func(c *core.Config) { c.SharedEntries = 32 }),
		},
	})
	RegisterScenario(Scenario{
		Name:        "distrib-banking",
		Description: "DistribLSQ banks x entries geometries (Figure 3's axis)",
		Variants: []Variant{
			samieVariant("128x1", func(c *core.Config) { c.Banks, c.EntriesPerBank = 128, 1 }),
			samieVariant("64x2", func(c *core.Config) { c.Banks, c.EntriesPerBank = 64, 2 }),
			samieVariant("32x4", func(c *core.Config) { c.Banks, c.EntriesPerBank = 32, 4 }),
		},
	})
	RegisterScenario(Scenario{
		Name:        "slots-per-entry",
		Description: "instruction slots per DistribLSQ entry",
		Variants: []Variant{
			samieVariant("slots-4", func(c *core.Config) { c.SlotsPerEntry = 4 }),
			samieVariant("slots-8", func(c *core.Config) { c.SlotsPerEntry = 8 }),
			samieVariant("slots-16", func(c *core.Config) { c.SlotsPerEntry = 16 }),
		},
	})
	RegisterScenario(Scenario{
		Name:        "addrbuffer-sizes",
		Description: "AddrBuffer slot count sweep",
		Variants: []Variant{
			samieVariant("ab-16", func(c *core.Config) { c.AddrBufferSlots = 16 }),
			samieVariant("ab-32", func(c *core.Config) { c.AddrBufferSlots = 32 }),
			samieVariant("ab-64", func(c *core.Config) { c.AddrBufferSlots = 64 }),
		},
	})
	RegisterScenario(Scenario{
		Name:        "arb-inflight",
		Description: "ARB 64x2 in-flight cap sweep (Figure 1's second axis)",
		Variants: []Variant{
			{Name: "inflight-32", Spec: func(b string, i uint64) RunSpec {
				return RunSpec{Benchmark: b, Insts: i, Model: ModelARB, ARBBanks: 64, ARBAddrs: 2, ARBInflight: 32}
			}},
			{Name: "inflight-64", Spec: func(b string, i uint64) RunSpec {
				return RunSpec{Benchmark: b, Insts: i, Model: ModelARB, ARBBanks: 64, ARBAddrs: 2, ARBInflight: 64}
			}},
			{Name: "inflight-128", Spec: func(b string, i uint64) RunSpec {
				return RunSpec{Benchmark: b, Insts: i, Model: ModelARB, ARBBanks: 64, ARBAddrs: 2, ARBInflight: 128}
			}},
		},
	})
	RegisterScenario(Scenario{
		Name:        "dcache-ports",
		Description: "L1 Dcache port count under the SAMIE-LSQ",
		Variants: []Variant{
			cpuVariant("ports-1", func(c *cpu.Config) { c.DcachePorts = 1 }),
			cpuVariant("ports-2", func(c *cpu.Config) { c.DcachePorts = 2 }),
			cpuVariant("ports-4", func(c *cpu.Config) { c.DcachePorts = 4 }),
		},
	})
	RegisterScenario(Scenario{
		Name:        "deadlock-patience",
		Description: "§3.3 deadlock-avoidance patience sweep",
		Variants: []Variant{
			cpuVariant("patience-8", func(c *cpu.Config) { c.DeadlockPatience = 8 }),
			cpuVariant("patience-32", func(c *cpu.Config) { c.DeadlockPatience = 32 }),
			cpuVariant("patience-128", func(c *cpu.Config) { c.DeadlockPatience = 128 }),
		},
	})
	RegisterScenario(Scenario{
		Name:        "adversarial",
		Description: "LSQ organizations under the adversarial stress workloads (default rows: pointer-chaser, store-burst)",
		Benchmarks:  trace.AdversarialBenchmarks(),
		Variants: []Variant{
			{Name: "conv-128", Spec: func(b string, i uint64) RunSpec {
				return RunSpec{Benchmark: b, Insts: i, Model: ModelConventional, ConvEntries: 128}
			}},
			{Name: "unbounded", Spec: func(b string, i uint64) RunSpec {
				return RunSpec{Benchmark: b, Insts: i, Model: ModelUnbounded}
			}},
			samieVariant("samie-paper", func(*core.Config) {}),
		},
	})
	RegisterScenario(Scenario{
		Name:        "ablations",
		Description: "§3.4 extension switches: way caching, TLB caching, fast way-known",
		Variants: []Variant{
			samieVariant("baseline", func(*core.Config) {}),
			samieVariant("no-way-caching", func(c *core.Config) { c.DisableWayCaching = true }),
			samieVariant("no-tlb-caching", func(c *core.Config) { c.DisableTLBCaching = true }),
			samieVariant("fast-way-known", func(c *core.Config) { c.FastWayKnown = true }),
		},
	})
}
