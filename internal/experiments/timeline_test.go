package experiments

import (
	"testing"
)

// TestRunTimelineSimulated: a locally simulated run carries interval
// telemetry covering its measured window, and the batch folds it into
// the per-benchmark occupancy and energy rollups.
func TestRunTimelineSimulated(t *testing.T) {
	b := NewBatch(1)
	spec := cacheTestSpec()
	r := b.Run(spec)
	if r.Timeline == nil || len(r.Timeline.Samples) == 0 {
		t.Fatal("simulated run carries no timeline")
	}
	if r.Timeline.Stride == 0 {
		t.Fatal("timeline stride unset")
	}
	for _, ts := range r.Timeline.Samples {
		if ts.ROB < 0 || ts.LSQ < 0 || ts.IPC < 0 {
			t.Fatalf("implausible sample: %+v", ts)
		}
	}

	occ := b.TimelineStats()
	agg, ok := occ[spec.Benchmark]
	if !ok || agg.Runs != 1 || agg.Samples == 0 {
		t.Fatalf("occupancy rollup missing the run: %+v", occ)
	}
	if agg.MeanROB() <= 0 {
		t.Fatalf("mean ROB occupancy %v, want > 0", agg.MeanROB())
	}
	energy := b.EnergyPJ()
	var total float64
	for _, v := range energy {
		total += v
	}
	if total <= 0 {
		t.Fatalf("energy rollup empty: %+v", energy)
	}

	tls := b.Timelines()
	if len(tls) != 1 || tls[0].Benchmark != spec.Benchmark || len(tls[0].Samples) == 0 {
		t.Fatalf("retained timelines wrong: %+v", tls)
	}
	if tls[0].Key != Key(spec) {
		t.Fatalf("timeline key %q != spec key %q", tls[0].Key, Key(spec))
	}
}

// TestTimelineOutsideDeterministicPayload: telemetry must never leak
// into the determinism contract. The disk artifact strips it — a
// second batch over the same cache serves the identical simulated
// result with a nil Timeline — and the rollups count only local
// simulations.
func TestTimelineOutsideDeterministicPayload(t *testing.T) {
	dir := t.TempDir()
	b1, err := NewBatchWithCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	first := b1.Run(cacheTestSpec())
	if first.Timeline == nil {
		t.Fatal("setup: simulated run carries no timeline")
	}

	b2, err := NewBatchWithCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	second := b2.Run(cacheTestSpec())
	if second.Timeline != nil {
		t.Fatal("disk-served result carries a timeline; the artifact must strip telemetry")
	}
	// Identical simulation payload regardless of the telemetry side
	// channel.
	if first.SAMIE != second.SAMIE || first.Conv != second.Conv {
		t.Fatalf("disk round trip changed the deterministic payload:\nfirst: %+v\nsecond: %+v", first, second)
	}
	if len(b2.TimelineStats()) != 0 || len(b2.Timelines()) != 0 {
		t.Error("tier-served run leaked into the timeline rollups")
	}

	// The memoized second request reuses the first result, timeline
	// included, without double-counting the rollup.
	again := b1.Run(cacheTestSpec())
	if again.Timeline == nil {
		t.Fatal("memoized hit lost the timeline")
	}
	if agg := b1.TimelineStats()[cacheTestSpec().Benchmark]; agg.Runs != 1 {
		t.Fatalf("memoized hit double-counted the rollup: %+v", agg)
	}
}
