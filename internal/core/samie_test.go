package core

import (
	"math/rand"
	"testing"

	"samielsq/internal/energy"
)

// tiny returns a small configuration that is easy to fill in tests:
// 4 banks x 1 entry x 2 slots, 2 SharedLSQ entries, 4 AddrBuffer slots.
func tiny() Config {
	return Config{
		Banks: 4, EntriesPerBank: 1, SlotsPerEntry: 2,
		SharedEntries: 2, AddrBufferSlots: 4, LineBytes: 32,
	}
}

// addrForBank returns the address of line k within the given bank
// (4 banks x 32-byte lines).
func addrForBank(bank, k int) uint64 {
	return uint64(bank)*32 + uint64(k)*4*32 + 0x10000
}

func place(t *testing.T, s *SAMIE, seq uint64, isLoad bool, addr uint64) {
	t.Helper()
	s.Dispatch(seq, isLoad)
	pl := s.AddressReady(seq, isLoad, addr, 4)
	if !pl.Placed {
		t.Fatalf("seq %d at %#x not placed: %+v", seq, addr, pl)
	}
}

func TestConfigValidate(t *testing.T) {
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Banks = 0 },
		func(c *Config) { c.EntriesPerBank = 0 },
		func(c *Config) { c.SlotsPerEntry = 0 },
		func(c *Config) { c.SharedEntries = -1 },
		func(c *Config) { c.AddrBufferSlots = 0 },
		func(c *Config) { c.LineBytes = 33 },
	} {
		c := PaperConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("invalid config accepted: %+v", c)
		}
	}
	pc := PaperConfig()
	if err := pc.Validate(); err != nil {
		t.Fatal(err)
	}
	if pc.Banks != 64 || pc.EntriesPerBank != 2 || pc.SlotsPerEntry != 8 ||
		pc.SharedEntries != 8 || pc.AddrBufferSlots != 64 {
		t.Fatal("PaperConfig does not match Table 3")
	}
}

func TestSameLineSharesEntry(t *testing.T) {
	s := New(tiny(), nil)
	place(t, s, 1, true, addrForBank(0, 0))
	place(t, s, 2, false, addrForBank(0, 0)+8) // same line, other offset
	if s.DistribInUse() != 1 {
		t.Fatalf("distrib entries = %d, want 1 (shared line)", s.DistribInUse())
	}
	if s.SharedInUse() != 0 {
		t.Fatal("SharedLSQ used unnecessarily")
	}
}

func TestPlacementPriorityOrder(t *testing.T) {
	s := New(tiny(), nil)
	// Fill bank 0's single entry with line 0 (2 slots).
	place(t, s, 1, true, addrForBank(0, 0))
	place(t, s, 2, true, addrForBank(0, 0)+4)
	// Third access to the same line: entry full -> SharedLSQ.
	place(t, s, 3, true, addrForBank(0, 0)+8)
	if s.SharedInUse() != 1 {
		t.Fatalf("shared entries = %d, want 1", s.SharedInUse())
	}
	// A different line of bank 0 joins the SharedLSQ too.
	place(t, s, 4, true, addrForBank(0, 1))
	if s.SharedInUse() != 2 {
		t.Fatalf("shared entries = %d, want 2", s.SharedInUse())
	}
	// SharedLSQ full; next conflicting line goes to the AddrBuffer.
	s.Dispatch(5, true)
	pl := s.AddressReady(5, true, addrForBank(0, 2), 4)
	if !pl.Buffered {
		t.Fatalf("expected buffered placement, got %+v", pl)
	}
	if s.AddrBufferLen() != 1 {
		t.Fatalf("addrbuffer len = %d", s.AddrBufferLen())
	}
	// Another line in an empty bank still places directly.
	place(t, s, 6, true, addrForBank(1, 0))
}

func TestPlacementFailureWhenEverythingFull(t *testing.T) {
	cfg := tiny()
	cfg.AddrBufferSlots = 1
	s := New(cfg, nil)
	place(t, s, 1, true, addrForBank(0, 0))
	place(t, s, 2, true, addrForBank(0, 1)) // shared 1
	place(t, s, 3, true, addrForBank(0, 2)) // shared 2
	s.Dispatch(4, true)
	if pl := s.AddressReady(4, true, addrForBank(0, 3), 4); !pl.Buffered {
		t.Fatalf("expected buffer, got %+v", pl)
	}
	s.Dispatch(5, true)
	if pl := s.AddressReady(5, true, addrForBank(0, 4), 4); !pl.Failed {
		t.Fatalf("expected failure with full AddrBuffer, got %+v", pl)
	}
	if s.Stats().PlaceFailures != 1 {
		t.Fatalf("place failures = %d", s.Stats().PlaceFailures)
	}
}

func TestNewOpsPlaceWhileFIFONonEmpty(t *testing.T) {
	// A non-empty AddrBuffer does not block newly computed addresses
	// whose own bank has room; only buffered instructions wait on
	// their FIFO predecessors.
	s := New(tiny(), nil)
	place(t, s, 1, true, addrForBank(0, 0))
	place(t, s, 2, true, addrForBank(0, 1))
	place(t, s, 3, true, addrForBank(0, 2))
	s.Dispatch(4, true)
	if pl := s.AddressReady(4, true, addrForBank(0, 3), 4); !pl.Buffered {
		t.Fatal("op 4 not buffered")
	}
	s.Dispatch(5, true)
	if pl := s.AddressReady(5, true, addrForBank(1, 0), 4); !pl.Placed {
		t.Fatalf("op 5 should place directly in empty bank 1: %+v", pl)
	}
}

func TestCommitFreesEntry(t *testing.T) {
	s := New(tiny(), nil)
	place(t, s, 1, true, addrForBank(0, 0))
	place(t, s, 2, true, addrForBank(0, 0)+4)
	s.Commit(1)
	if s.DistribInUse() != 1 {
		t.Fatal("entry freed while a slot is still live")
	}
	s.Commit(2)
	if s.DistribInUse() != 0 {
		t.Fatal("entry not freed after last slot committed")
	}
	// The bank is reusable.
	place(t, s, 3, true, addrForBank(0, 5))
}

func TestTickDrainsFIFOInOrder(t *testing.T) {
	s := New(tiny(), nil)
	place(t, s, 1, true, addrForBank(0, 0))
	place(t, s, 2, true, addrForBank(0, 1))
	place(t, s, 3, true, addrForBank(0, 2))
	s.Dispatch(4, true)
	s.AddressReady(4, true, addrForBank(0, 3), 4)
	s.Dispatch(5, true)
	s.AddressReady(5, true, addrForBank(0, 4), 4)
	if s.AddrBufferLen() != 2 {
		t.Fatalf("buffer len = %d", s.AddrBufferLen())
	}
	// Nothing drains while everything is full.
	if got := s.Tick(); len(got) != 0 {
		t.Fatalf("Tick placed %v with full structures", got)
	}
	// Freeing the bank entry lets the FIFO head (and only it: the
	// second element also wants bank 0) place.
	s.Commit(1)
	got := s.Tick()
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("Tick placed %v, want [4]", got)
	}
	if s.AddrBufferLen() != 1 {
		t.Fatalf("buffer len after drain = %d", s.AddrBufferLen())
	}
}

func TestWayCachingProtocol(t *testing.T) {
	s := New(tiny(), nil)
	place(t, s, 1, true, addrForBank(0, 0))
	place(t, s, 2, true, addrForBank(0, 0)+8)
	// Before any access, no plan.
	if p := s.Plan(1); p.WayKnown || p.TLBCached {
		t.Fatalf("plan before access: %+v", p)
	}
	// First instruction performs a conventional access and records it.
	s.RecordAccess(1, 5, 2, 77)
	p := s.Plan(2)
	if !p.WayKnown || p.Set != 5 || p.Way != 2 {
		t.Fatalf("plan after record: %+v", p)
	}
	if !p.TLBCached {
		t.Fatal("translation not cached")
	}
	if s.Stats().WayKnownHits != 1 || s.Stats().TLBReuses != 1 {
		t.Fatalf("stats: %+v", s.Stats())
	}
	// presentBit flush invalidates locations but keeps translations.
	s.ClearCachedLocations()
	p = s.Plan(2)
	if p.WayKnown {
		t.Fatal("location survived ClearCachedLocations")
	}
	if !p.TLBCached {
		t.Fatal("translation should survive ClearCachedLocations")
	}
}

func TestWayCachingDisabled(t *testing.T) {
	cfg := tiny()
	cfg.DisableWayCaching = true
	cfg.DisableTLBCaching = true
	s := New(cfg, nil)
	place(t, s, 1, true, addrForBank(0, 0))
	place(t, s, 2, true, addrForBank(0, 0)+8)
	s.RecordAccess(1, 5, 2, 77)
	if p := s.Plan(2); p.WayKnown || p.TLBCached {
		t.Fatalf("ablation switches ignored: %+v", p)
	}
}

func TestEntryInvalidationClearsCachedState(t *testing.T) {
	s := New(tiny(), nil)
	place(t, s, 1, true, addrForBank(0, 0))
	s.RecordAccess(1, 3, 1, 9)
	s.Commit(1)
	// Same line again: new entry must not inherit stale state.
	place(t, s, 2, true, addrForBank(0, 0))
	if p := s.Plan(2); p.WayKnown || p.TLBCached {
		t.Fatalf("stale cached state: %+v", p)
	}
}

func TestForwardingWithinSAMIE(t *testing.T) {
	s := New(tiny(), nil)
	place(t, s, 1, false, addrForBank(2, 0)) // store
	place(t, s, 2, true, addrForBank(2, 0))  // load, same address
	src, ok := s.ForwardingSource(2)
	if !ok || src != 1 {
		t.Fatalf("forwarding = %d (%v), want 1", src, ok)
	}
}

func TestFlush(t *testing.T) {
	s := New(tiny(), nil)
	place(t, s, 1, true, addrForBank(0, 0))
	place(t, s, 2, true, addrForBank(0, 1))
	place(t, s, 3, true, addrForBank(0, 2))
	s.Dispatch(4, true)
	s.AddressReady(4, true, addrForBank(0, 3), 4)
	s.Flush()
	if s.InFlight() != 0 || s.DistribInUse() != 0 || s.SharedInUse() != 0 || s.AddrBufferLen() != 0 {
		t.Fatal("flush left state")
	}
	// Everything is usable again.
	place(t, s, 10, true, addrForBank(0, 0))
}

func TestEnergyEventsAtPlacement(t *testing.T) {
	m := energy.NewMeter()
	s := New(tiny(), m)
	place(t, s, 1, true, addrForBank(0, 0))
	if m.NBusSends != 1 || m.NDistribCompares != 1 || m.NSharedCompares != 1 {
		t.Fatalf("search events: bus=%d distrib=%d shared=%d",
			m.NBusSends, m.NDistribCompares, m.NSharedCompares)
	}
	if m.Distrib <= 0 {
		t.Fatal("no distrib energy")
	}
	// A buffered placement charges the AddrBuffer.
	place(t, s, 2, true, addrForBank(0, 1))
	place(t, s, 3, true, addrForBank(0, 2))
	s.Dispatch(4, true)
	s.AddressReady(4, true, addrForBank(0, 3), 4)
	if m.AddrBuffer <= 0 {
		t.Fatal("no AddrBuffer energy")
	}
}

func TestOccupancyStats(t *testing.T) {
	s := New(tiny(), nil)
	place(t, s, 1, true, addrForBank(0, 0))
	place(t, s, 2, true, addrForBank(0, 1)) // shared
	s.AccountCycle()
	s.AccountCycle()
	st := s.Stats()
	if st.Cycles != 2 {
		t.Fatalf("cycles = %d", st.Cycles)
	}
	if st.MeanSharedOcc() != 1 {
		t.Fatalf("mean shared occ = %v, want 1", st.MeanSharedOcc())
	}
	if st.ABEmptyFraction() != 1 {
		t.Fatalf("AB empty fraction = %v, want 1", st.ABEmptyFraction())
	}
	s.ResetStats()
	if s.Stats().Cycles != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestSharedUnboundedGrows(t *testing.T) {
	cfg := tiny()
	cfg.SharedUnbounded = true
	s := New(cfg, nil)
	// Overflow bank 0 far beyond the bounded shared size.
	for i := 0; i < 20; i++ {
		place(t, s, uint64(i+1), true, addrForBank(0, i))
	}
	if s.SharedInUse() < 10 {
		t.Fatalf("unbounded shared only holds %d entries", s.SharedInUse())
	}
	if s.AddrBufferLen() != 0 {
		t.Fatal("unbounded shared still buffered")
	}
}

// TestRandomizedInvariants drives a SAMIE with a random but valid
// operation sequence and checks structural invariants throughout.
func TestRandomizedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := New(tiny(), nil)
	type live struct {
		seq    uint64
		placed bool
	}
	var ops []live
	seq := uint64(0)
	for step := 0; step < 5000; step++ {
		switch {
		case rng.Intn(3) != 0 && len(ops) < 32:
			seq++
			isLoad := rng.Intn(2) == 0
			s.Dispatch(seq, isLoad)
			addr := addrForBank(rng.Intn(4), rng.Intn(6))
			pl := s.AddressReady(seq, isLoad, addr, 4)
			if pl.Failed {
				s.Flush()
				ops = ops[:0]
				continue
			}
			ops = append(ops, live{seq: seq, placed: pl.Placed})
		case len(ops) > 0:
			// Commit the oldest (program order).
			s.Commit(ops[0].seq)
			ops = ops[1:]
			for _, got := range s.Tick() {
				for i := range ops {
					if ops[i].seq == got {
						ops[i].placed = true
					}
				}
			}
		}
		s.AccountCycle()

		// Invariants.
		if s.InFlight() != len(ops) {
			t.Fatalf("step %d: in-flight %d, tracked %d", step, s.InFlight(), len(ops))
		}
		placed := 0
		for _, o := range ops {
			if o.placed || s.Placed(o.seq) {
				placed++
			}
		}
		capacity := 4*1*2 + 2*2 // distrib slots + shared slots
		if placed > capacity {
			t.Fatalf("step %d: %d placed ops exceed capacity %d", step, placed, capacity)
		}
		if s.DistribInUse() > 4 || s.SharedInUse() > 2 || s.AddrBufferLen() > 4 {
			t.Fatalf("step %d: structure overflow", step)
		}
	}
}

func TestFastWayKnownBonus(t *testing.T) {
	cfg := tiny()
	cfg.FastWayKnown = true
	s := New(cfg, nil)
	place(t, s, 1, true, addrForBank(0, 0))
	place(t, s, 2, true, addrForBank(0, 0)+8)
	s.RecordAccess(1, 3, 1, 42)
	p := s.Plan(2)
	if !p.WayKnown || p.LatencyBonus != 1 {
		t.Fatalf("FastWayKnown plan = %+v", p)
	}
	// Without the option the bonus stays zero.
	s2 := New(tiny(), nil)
	place(t, s2, 1, true, addrForBank(0, 0))
	place(t, s2, 2, true, addrForBank(0, 0)+8)
	s2.RecordAccess(1, 3, 1, 42)
	if p := s2.Plan(2); p.LatencyBonus != 0 {
		t.Fatalf("unexpected bonus: %+v", p)
	}
}
