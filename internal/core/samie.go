// Package core implements the SAMIE-LSQ: the set-associative,
// multiple-instruction-entry load/store queue that is the paper's
// contribution (§3).
//
// The SAMIE-LSQ groups in-flight memory instructions that access the
// same cache line into a single entry. Three structures cooperate:
//
//   - DistribLSQ: a highly banked queue. The bank is selected
//     direct-mapped from the cache-line address; within a bank the
//     (few) entries are searched fully associatively. Each entry keys
//     one cache line and holds several instruction slots.
//   - SharedLSQ: a small fully-associative spill structure with the
//     same entry format, for lines that find no room in their bank.
//   - AddrBuffer: a simple FIFO where instructions wait when neither
//     structure has room; buffered instructions cannot access the
//     cache and have placement priority over newly computed addresses.
//
// Entries additionally cache the line's physical location in the L1
// Dcache (set and way) and its DTLB translation, letting subsequent
// instructions in the entry skip the tag check, read a single way and
// skip the DTLB (§3.4). The presentBit protocol keeps the cached
// location coherent with replacements.
package core

import (
	"fmt"

	"samielsq/internal/energy"
	"samielsq/internal/lsq"
)

// Config sizes the SAMIE-LSQ structures.
type Config struct {
	Banks           int // DistribLSQ banks (direct-mapped by line address)
	EntriesPerBank  int
	SlotsPerEntry   int
	SharedEntries   int // SharedLSQ entries (ignored if SharedUnbounded)
	AddrBufferSlots int

	LineBytes int // cache line size the entries are keyed on

	// SharedUnbounded removes the SharedLSQ capacity limit; used by the
	// Figure 3 sizing study.
	SharedUnbounded bool

	// Ablation switches (§3.4 extensions).
	DisableWayCaching bool
	DisableTLBCaching bool

	// FastWayKnown enables the paper's future-work optimization
	// (§3.6, Table 1): way-known accesses skip the tag path and
	// complete one cycle earlier.
	FastWayKnown bool
}

// PaperConfig returns the Table 3 configuration: 64 banks x 2 entries
// x 8 slots, 8 SharedLSQ entries x 8 slots, 64 AddrBuffer slots,
// 32-byte lines.
func PaperConfig() Config {
	return Config{
		Banks:           64,
		EntriesPerBank:  2,
		SlotsPerEntry:   8,
		SharedEntries:   8,
		AddrBufferSlots: 64,
		LineBytes:       32,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Banks <= 0 || c.EntriesPerBank <= 0 || c.SlotsPerEntry <= 0 {
		return fmt.Errorf("core: banks, entries and slots must be positive")
	}
	if c.SharedEntries < 0 {
		return fmt.Errorf("core: SharedEntries must be >= 0")
	}
	if c.AddrBufferSlots <= 0 {
		return fmt.Errorf("core: AddrBufferSlots must be positive")
	}
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("core: LineBytes must be a positive power of two")
	}
	return nil
}

// location identifies where an instruction sits. It is packed into the
// tracker Op's Loc field (kind, bank, entry, slot) so the hot path
// needs no side map from sequence numbers to placements.
type location struct {
	kind  locKind
	bank  int // DistribLSQ bank (kindDistrib only)
	entry int // entry index within the bank / SharedLSQ
	slot  int
}

type locKind uint8

const (
	locNone locKind = iota
	locDistrib
	locShared
	locBuffer
)

// locOf unpacks op's placement; ok is false when op has none.
func locOf(op *lsq.Op) (location, bool) {
	if op == nil || op.Loc[0] < 0 {
		return location{}, false
	}
	return location{
		kind:  locKind(op.Loc[0]),
		bank:  op.Loc[1],
		entry: op.Loc[2],
		slot:  op.Loc[3],
	}, true
}

// slot is one instruction within an entry.
type slot struct {
	valid     bool
	seq       uint64
	isLoad    bool
	offset    uint16
	size      uint8
	performed bool
}

// entry keys one cache line and holds SlotsPerEntry instructions.
type entry struct {
	valid    bool
	lineAddr uint64
	slots    []slot
	used     int

	// §3.4 cached state.
	locValid bool // physical Dcache location cached (presentBit peer)
	set, way int
	vpnValid bool
	vpn      uint64
}

func (e *entry) freeSlot() int {
	for i := range e.slots {
		if !e.slots[i].valid {
			return i
		}
	}
	return -1
}

// abEntry is one AddrBuffer FIFO element.
type abEntry struct {
	seq    uint64
	isLoad bool
	addr   uint64
	size   uint8
}

// abRing is the AddrBuffer FIFO: a fixed-capacity ring so the
// insert/drain cycle never reallocates.
type abRing struct {
	buf  []abEntry
	head int
	n    int
}

func (r *abRing) len() int       { return r.n }
func (r *abRing) front() abEntry { return r.buf[r.head] }

func (r *abRing) push(e abEntry) {
	idx := r.head + r.n
	if idx >= len(r.buf) {
		idx -= len(r.buf)
	}
	r.buf[idx] = e
	r.n++
}

func (r *abRing) pop() {
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
}

func (r *abRing) clear() { r.head, r.n = 0, 0 }

// Stats aggregates SAMIE-specific statistics.
type Stats struct {
	PlacedDistrib  uint64
	PlacedShared   uint64
	Buffered       uint64 // insertions into the AddrBuffer
	PlaceFailures  uint64 // all three structures full (-> CPU flush)
	WayKnownHits   uint64 // accesses performed with a cached location
	TLBReuses      uint64
	PresentFlushes uint64 // ClearCachedLocations invocations

	Cycles            uint64
	SumSharedOcc      float64 // SharedLSQ entry occupancy per cycle
	MaxSharedOcc      int
	CyclesABNonEmpty  uint64 // cycles with at least one AddrBuffer element
	SumABOcc          float64
	SumDistribEntries float64 // in-use DistribLSQ entries per cycle
	SumInFlight       float64
}

// MeanSharedOcc returns the average SharedLSQ occupancy (entries).
func (s *Stats) MeanSharedOcc() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return s.SumSharedOcc / float64(s.Cycles)
}

// ABEmptyFraction returns the fraction of cycles with an empty
// AddrBuffer (the Figure 4 criterion).
func (s *Stats) ABEmptyFraction() float64 {
	if s.Cycles == 0 {
		return 1
	}
	return 1 - float64(s.CyclesABNonEmpty)/float64(s.Cycles)
}

// SAMIE implements lsq.Model.
type SAMIE struct {
	cfg     Config
	banks   [][]entry // [bank][entry]
	shared  []entry
	addrBuf abRing
	t       *lsq.Tracker
	meter   *energy.Meter
	stats   Stats

	lineMask uint64
	// scratch buffers reused across calls to avoid per-event allocation
	scratchSlots []int
	tickBuf      []uint64

	// Occupancy summaries maintained incrementally at fill/free so the
	// per-cycle accounting is O(1) instead of a walk over every bank.
	bankUsed        []int // valid entries per DistribLSQ bank
	banksWithFree   int   // banks with at least one free entry
	distribActive   int   // valid DistribLSQ entries
	sumDistribSlots int   // Σ min(used+1, SlotsPerEntry) over valid distrib entries
	sharedActive    int   // valid SharedLSQ entries
	sumSharedSlots  int   // Σ min(used+1, SlotsPerEntry) over valid shared entries
}

var _ lsq.Model = (*SAMIE)(nil)

// New builds a SAMIE-LSQ; meter may be nil. It panics on invalid
// configuration (use Config.Validate for data-driven configs).
func New(cfg Config, meter *energy.Meter) *SAMIE {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if meter == nil {
		meter = energy.NewMeter()
	}
	s := &SAMIE{
		cfg:      cfg,
		banks:    make([][]entry, cfg.Banks),
		t:        lsq.NewTracker(),
		meter:    meter,
		lineMask: ^(uint64(cfg.LineBytes) - 1),
		addrBuf:  abRing{buf: make([]abEntry, cfg.AddrBufferSlots)},
		bankUsed: make([]int, cfg.Banks),
	}
	s.banksWithFree = cfg.Banks
	for b := range s.banks {
		s.banks[b] = make([]entry, cfg.EntriesPerBank)
		for e := range s.banks[b] {
			s.banks[b][e].slots = make([]slot, cfg.SlotsPerEntry)
		}
	}
	shared := cfg.SharedEntries
	if cfg.SharedUnbounded {
		shared = 0 // grows on demand
	}
	s.shared = make([]entry, shared)
	for e := range s.shared {
		s.shared[e].slots = make([]slot, cfg.SlotsPerEntry)
	}
	return s
}

// NewPaper builds the Table 3 configuration.
func NewPaper(meter *energy.Meter) *SAMIE { return New(PaperConfig(), meter) }

// Config returns the configuration.
func (s *SAMIE) Config() Config { return s.cfg }

// Stats returns the accumulated statistics.
func (s *SAMIE) Stats() Stats { return s.stats }

// Meter returns the energy meter used by this instance.
func (s *SAMIE) Meter() *energy.Meter { return s.meter }

// Name implements lsq.Model.
func (s *SAMIE) Name() string { return "samie" }

func (s *SAMIE) lineOf(addr uint64) uint64 { return addr & s.lineMask }

func (s *SAMIE) bankOf(lineAddr uint64) int {
	return int((lineAddr / uint64(s.cfg.LineBytes)) % uint64(s.cfg.Banks))
}

// activeSlots is the §4.5 active slot count of an entry with `used`
// in-use slots: the in-use slots plus one pre-allocated, capped at the
// entry's capacity.
func (s *SAMIE) activeSlots(used int) int {
	if used+1 > s.cfg.SlotsPerEntry {
		return s.cfg.SlotsPerEntry
	}
	return used + 1
}

// Dispatch implements lsq.Model. The SAMIE-LSQ never stalls dispatch:
// instructions without a computed address occupy no LSQ resources.
//
//samie:hotpath
func (s *SAMIE) Dispatch(seq uint64, isLoad bool) bool {
	s.t.Add(seq, isLoad)
	return true
}

// chargeSearch accounts the energy of one placement search: the
// address is broadcast to its bank and compared against the in-use
// entries of that bank and of the SharedLSQ in parallel, and the age
// id is compared against the in-use slots of both (§4.2).
func (s *SAMIE) chargeSearch(bank int) {
	s.meter.BusSend()
	inBank := 0
	s.scratchSlots = s.scratchSlots[:0]
	for e := range s.banks[bank] {
		if s.banks[bank][e].valid {
			inBank++
			s.scratchSlots = append(s.scratchSlots, s.banks[bank][e].used)
		}
	}
	s.meter.DistribCompare(inBank)
	s.meter.DistribAgeCompare(s.scratchSlots)

	inShared := 0
	s.scratchSlots = s.scratchSlots[:0]
	for e := range s.shared {
		if s.shared[e].valid {
			inShared++
			s.scratchSlots = append(s.scratchSlots, s.shared[e].used)
		}
	}
	s.meter.SharedCompare(inShared)
	s.meter.SharedAgeCompare(s.scratchSlots)
}

// fillSlot installs the op into (entries, ei, si) and records the
// placement.
func (s *SAMIE) fillSlot(op *lsq.Op, kind locKind, bank, ei, si int) {
	var e *entry
	if kind == locDistrib {
		e = &s.banks[bank][ei]
	} else {
		e = &s.shared[ei]
	}
	newEntry := !e.valid
	if newEntry {
		*e = entry{valid: true, lineAddr: s.lineOf(op.Addr), slots: e.slots}
		for i := range e.slots {
			e.slots[i] = slot{}
		}
	}
	e.slots[si] = slot{
		valid:  true,
		seq:    op.Seq,
		isLoad: op.IsLoad,
		offset: uint16(op.Addr - e.lineAddr),
		size:   op.Size,
	}
	e.used++
	if kind == locDistrib {
		if newEntry {
			s.distribActive++
			s.bankUsed[bank]++
			if s.bankUsed[bank] == s.cfg.EntriesPerBank {
				s.banksWithFree--
			}
			s.sumDistribSlots += s.activeSlots(e.used)
		} else {
			s.sumDistribSlots += s.activeSlots(e.used) - s.activeSlots(e.used-1)
		}
	} else {
		if newEntry {
			s.sharedActive++
			s.sumSharedSlots += s.activeSlots(e.used)
		} else {
			s.sumSharedSlots += s.activeSlots(e.used) - s.activeSlots(e.used-1)
		}
	}
	s.t.SetPlaced(op)
	op.Loc = [4]int{int(kind), bank, ei, si}
	// Energy: write the age id (and the line address for new entries).
	if kind == locDistrib {
		s.stats.PlacedDistrib++
		s.meter.DistribRWAge()
		if newEntry {
			s.meter.DistribRWAddr()
		}
		if !op.IsLoad {
			s.meter.DistribRWDatum() // store data written into the slot
		}
	} else {
		s.stats.PlacedShared++
		s.meter.SharedRWAge()
		if newEntry {
			s.meter.SharedRWAddr()
		}
		if !op.IsLoad {
			s.meter.SharedRWDatum()
		}
	}
}

// tryPlace attempts DistribLSQ then SharedLSQ placement (§3.2).
//
//samie:hotpath
func (s *SAMIE) tryPlace(op *lsq.Op) bool {
	line := s.lineOf(op.Addr)
	bank := s.bankOf(line)

	// 1) Same line in the bank with a free slot.
	for ei := range s.banks[bank] {
		e := &s.banks[bank][ei]
		if e.valid && e.lineAddr == line {
			if si := e.freeSlot(); si >= 0 {
				s.fillSlot(op, locDistrib, bank, ei, si)
				return true
			}
		}
	}
	// 2) Free entry in the bank.
	for ei := range s.banks[bank] {
		if !s.banks[bank][ei].valid {
			s.fillSlot(op, locDistrib, bank, ei, 0)
			return true
		}
	}
	// 3) Same line in the SharedLSQ with a free slot.
	for ei := range s.shared {
		e := &s.shared[ei]
		if e.valid && e.lineAddr == line {
			if si := e.freeSlot(); si >= 0 {
				s.fillSlot(op, locShared, -1, ei, si)
				return true
			}
		}
	}
	// 4) Free SharedLSQ entry.
	for ei := range s.shared {
		if !s.shared[ei].valid {
			s.fillSlot(op, locShared, -1, ei, 0)
			return true
		}
	}
	// 5) Unbounded SharedLSQ grows on demand (Figure 3 study).
	if s.cfg.SharedUnbounded {
		//lint:ignore hotalloc unbounded-study growth is the point of SharedUnbounded; bounded configs never reach here
		s.shared = append(s.shared, entry{slots: make([]slot, s.cfg.SlotsPerEntry)})
		s.fillSlot(op, locShared, -1, len(s.shared)-1, 0)
		return true
	}
	return false
}

// AddressReady implements lsq.Model (§3.2): search the bank and the
// SharedLSQ in parallel; fall back to the AddrBuffer; fail if all
// three structures are full.
//
//samie:hotpath
func (s *SAMIE) AddressReady(seq uint64, isLoad bool, addr uint64, size uint8) lsq.Placement {
	op := s.t.Get(seq)
	if op == nil {
		return lsq.Placement{Failed: true}
	}
	s.t.SetAddress(op, addr, size)
	s.chargeSearch(s.bankOf(s.lineOf(addr)))
	if s.tryPlace(op) {
		return lsq.Placement{Placed: true}
	}
	if s.addrBuf.len() < s.cfg.AddrBufferSlots {
		s.addrBuf.push(abEntry{seq: seq, isLoad: isLoad, addr: addr, size: size})
		s.t.SetBuffered(op)
		s.stats.Buffered++
		s.meter.AddrBufferInsert()
		return lsq.Placement{Buffered: true}
	}
	s.stats.PlaceFailures++
	return lsq.Placement{Failed: true}
}

// Tick implements lsq.Model: drain the AddrBuffer head-first. The
// AddrBuffer is a strict FIFO (§3.3), so draining stops at the first
// element that still does not fit.
//
//samie:hotpath
func (s *SAMIE) Tick() []uint64 {
	placed := s.tickBuf[:0]
	for s.addrBuf.len() > 0 {
		head := s.addrBuf.front()
		op := s.t.Get(head.seq)
		if op == nil {
			// Flushed or otherwise gone; drop the stale element.
			s.addrBuf.pop()
			continue
		}
		if !s.tryPlace(op) {
			// Waiting in the FIFO costs nothing: the retry is a cheap
			// free-entry availability check, not an associative search.
			break
		}
		// A buffered instruction re-runs the placement search once,
		// when it actually leaves the buffer.
		s.chargeSearch(s.bankOf(s.lineOf(head.addr)))
		s.meter.AddrBufferRemove()
		s.addrBuf.pop()
		//lint:ignore hotalloc appends into the reused tickBuf; capacity amortizes to the drain high-water mark
		placed = append(placed, head.seq)
	}
	s.tickBuf = placed[:0]
	return placed
}

// Placed implements lsq.Model.
func (s *SAMIE) Placed(seq uint64) bool {
	op := s.t.Get(seq)
	return op != nil && op.Placed
}

// ForwardingSource implements lsq.Model. Store-to-load forwarding uses
// the slot age links established at placement time; the tracker search
// is the architectural equivalent.
//
//samie:hotpath
func (s *SAMIE) ForwardingSource(seq uint64) (uint64, bool) {
	src, ok := s.t.ForwardingSource(seq)
	if ok {
		// The load reads the store's datum from the slot and records
		// its own.
		loc, _ := locOf(s.t.Get(seq))
		if loc.kind == locShared {
			s.meter.SharedRWDatum()
			s.meter.SharedRWDatum()
		} else {
			s.meter.DistribRWDatum()
			s.meter.DistribRWDatum()
		}
	}
	return src, ok
}

// Plan implements lsq.Model: if the instruction's entry has a cached
// Dcache location (and translation), the access can skip the tag check
// and the DTLB.
func (s *SAMIE) Plan(seq uint64) lsq.AccessPlan {
	loc, ok := locOf(s.t.Get(seq))
	if !ok || loc.kind == locBuffer || loc.kind == locNone {
		return lsq.AccessPlan{}
	}
	e := s.entryAt(loc)
	if e == nil || !e.valid {
		return lsq.AccessPlan{}
	}
	plan := lsq.AccessPlan{}
	if e.locValid && !s.cfg.DisableWayCaching {
		plan.WayKnown = true
		plan.Set, plan.Way = e.set, e.way
		if s.cfg.FastWayKnown {
			plan.LatencyBonus = 1
		}
		// Reading the cached line id from the entry.
		if loc.kind == locShared {
			s.meter.SharedRWLineID()
		} else {
			s.meter.DistribRWLineID()
		}
		s.stats.WayKnownHits++
	}
	if e.vpnValid && !s.cfg.DisableTLBCaching {
		plan.TLBCached = true
		if loc.kind == locShared {
			s.meter.SharedRWTLB()
		} else {
			s.meter.DistribRWTLB()
		}
		s.stats.TLBReuses++
		s.meter.DTLBReuse()
	}
	return plan
}

// RecordAccess implements lsq.Model: after a conventional access the
// entry caches the physical location and the translation (§3.4).
func (s *SAMIE) RecordAccess(seq uint64, set, way int, vpn uint64) {
	loc, ok := locOf(s.t.Get(seq))
	if !ok || loc.kind == locBuffer || loc.kind == locNone {
		return
	}
	e := s.entryAt(loc)
	if e == nil || !e.valid {
		return
	}
	if !s.cfg.DisableWayCaching {
		e.locValid, e.set, e.way = true, set, way
		if loc.kind == locShared {
			s.meter.SharedRWLineID()
		} else {
			s.meter.DistribRWLineID()
		}
	}
	if !s.cfg.DisableTLBCaching {
		e.vpnValid, e.vpn = true, vpn
		if loc.kind == locShared {
			s.meter.SharedRWTLB()
		} else {
			s.meter.DistribRWTLB()
		}
	}
}

// NotePerformed implements lsq.Model.
func (s *SAMIE) NotePerformed(seq uint64) {
	op := s.t.Get(seq)
	if op == nil {
		return
	}
	op.Performed = true
	loc, ok := locOf(op)
	if !ok {
		return
	}
	if e := s.entryAt(loc); e != nil && e.valid && loc.slot < len(e.slots) {
		e.slots[loc.slot].performed = true
		if op.IsLoad {
			// The loaded datum is written into the slot.
			if loc.kind == locShared {
				s.meter.SharedRWDatum()
			} else {
				s.meter.DistribRWDatum()
			}
		}
	}
}

// ClearCachedLocations implements lsq.Model: the paper's conservative
// presentBit invalidation resets the cached location of every entry.
// Cached translations stay valid (they do not depend on residency).
func (s *SAMIE) ClearCachedLocations() {
	s.stats.PresentFlushes++
	for b := range s.banks {
		for e := range s.banks[b] {
			s.banks[b][e].locValid = false
		}
	}
	for e := range s.shared {
		s.shared[e].locValid = false
	}
}

func (s *SAMIE) entryAt(loc location) *entry {
	switch loc.kind {
	case locDistrib:
		if loc.bank >= 0 && loc.bank < len(s.banks) && loc.entry >= 0 && loc.entry < len(s.banks[loc.bank]) {
			return &s.banks[loc.bank][loc.entry]
		}
	case locShared:
		if loc.entry >= 0 && loc.entry < len(s.shared) {
			return &s.shared[loc.entry]
		}
	}
	return nil
}

// Commit implements lsq.Model: free the slot; the entry frees when its
// last slot goes.
func (s *SAMIE) Commit(seq uint64) {
	op := s.t.Remove(seq)
	loc, ok := locOf(op)
	if ok {
		if e := s.entryAt(loc); e != nil && e.valid && loc.slot < len(e.slots) && e.slots[loc.slot].valid && e.slots[loc.slot].seq == seq {
			if op != nil && !op.IsLoad {
				// Store datum read out on its way to the Dcache.
				if loc.kind == locShared {
					s.meter.SharedRWDatum()
				} else {
					s.meter.DistribRWDatum()
				}
			}
			e.slots[loc.slot] = slot{}
			e.used--
			if e.used == 0 {
				e.valid = false
				e.locValid = false
				e.vpnValid = false
				if loc.kind == locShared {
					s.sharedActive--
					s.sumSharedSlots -= s.activeSlots(1)
				} else {
					s.distribActive--
					s.sumDistribSlots -= s.activeSlots(1)
					if s.bankUsed[loc.bank] == s.cfg.EntriesPerBank {
						s.banksWithFree++
					}
					s.bankUsed[loc.bank]--
				}
			} else if loc.kind == locShared {
				s.sumSharedSlots += s.activeSlots(e.used) - s.activeSlots(e.used+1)
			} else {
				s.sumDistribSlots += s.activeSlots(e.used) - s.activeSlots(e.used+1)
			}
		}
	}
	// Buffered instructions that commit (cannot normally happen: the
	// deadlock check fires first) are dropped from the FIFO lazily in
	// Tick.
	_ = op
}

// Flush implements lsq.Model.
func (s *SAMIE) Flush() {
	s.t.Clear()
	s.addrBuf.clear()
	for b := range s.banks {
		for e := range s.banks[b] {
			s.banks[b][e].valid = false
			s.banks[b][e].used = 0
			s.banks[b][e].locValid = false
			s.banks[b][e].vpnValid = false
			for i := range s.banks[b][e].slots {
				s.banks[b][e].slots[i] = slot{}
			}
		}
	}
	if s.cfg.SharedUnbounded {
		s.shared = s.shared[:0]
	} else {
		for e := range s.shared {
			s.shared[e].valid = false
			s.shared[e].used = 0
			s.shared[e].locValid = false
			s.shared[e].vpnValid = false
			for i := range s.shared[e].slots {
				s.shared[e].slots[i] = slot{}
			}
		}
	}
	for b := range s.bankUsed {
		s.bankUsed[b] = 0
	}
	s.banksWithFree = s.cfg.Banks
	s.distribActive, s.sumDistribSlots = 0, 0
	s.sharedActive, s.sumSharedSlots = 0, 0
}

// AccountCycle implements lsq.Model: occupancy statistics and §4.5
// active-area accumulation. The entry/slot totals are maintained
// incrementally at fill/free time, so this per-cycle hook is O(1) —
// it does not walk the banks.
//
//samie:hotpath
func (s *SAMIE) AccountCycle() {
	s.stats.Cycles++
	s.stats.SumInFlight += float64(s.t.Len())

	sharedOcc := s.sharedActive
	s.stats.SumSharedOcc += float64(sharedOcc)
	if sharedOcc > s.stats.MaxSharedOcc {
		s.stats.MaxSharedOcc = sharedOcc
	}
	if s.addrBuf.len() > 0 {
		s.stats.CyclesABNonEmpty++
	}
	s.stats.SumABOcc += float64(s.addrBuf.len())

	// One extra pre-allocated entry (with one active slot) in the
	// SharedLSQ when it has room, and one per DistribLSQ bank with a
	// free entry.
	sharedEntries, sharedSlots := s.sharedActive, s.sumSharedSlots
	if !s.cfg.SharedUnbounded && sharedOcc < len(s.shared) {
		sharedEntries++
		sharedSlots++
	}
	s.stats.SumDistribEntries += float64(s.distribActive)

	s.meter.AccumulateSAMIEAreaCounts(
		s.distribActive+s.banksWithFree, s.sumDistribSlots+s.banksWithFree,
		sharedEntries, sharedSlots,
		s.addrBuf.len(), s.cfg.AddrBufferSlots)
}

// InFlight implements lsq.Model.
func (s *SAMIE) InFlight() int { return s.t.Len() }

// ResetStats implements lsq.Model.
func (s *SAMIE) ResetStats() { s.stats = Stats{} }

// FreeCapacity implements lsq.Model: in the worst case a computed
// address lands in the AddrBuffer, so the remaining FIFO slots bound
// how many address computations may safely be in flight (§3.3's
// alternative deadlock-avoidance rule).
func (s *SAMIE) FreeCapacity() int { return s.cfg.AddrBufferSlots - s.addrBuf.len() }

// SharedInUse returns the number of valid SharedLSQ entries (test and
// experiment hook).
func (s *SAMIE) SharedInUse() int {
	n := 0
	for e := range s.shared {
		if s.shared[e].valid {
			n++
		}
	}
	return n
}

// AddrBufferLen returns the current AddrBuffer length.
func (s *SAMIE) AddrBufferLen() int { return s.addrBuf.len() }

// DistribInUse returns the number of valid DistribLSQ entries.
func (s *SAMIE) DistribInUse() int {
	n := 0
	for b := range s.banks {
		for e := range s.banks[b] {
			if s.banks[b][e].valid {
				n++
			}
		}
	}
	return n
}
