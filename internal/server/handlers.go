package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"samielsq/internal/experiments"
	"samielsq/pkg/client"
)

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleRun executes (or serves from the shared cache) one simulation.
// Two concurrent identical requests coalesce into a single run.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req client.RunRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	spec, err := req.Spec()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if _, err := validBenchmarks([]string{spec.Benchmark}); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if spec.Insts == 0 {
		spec.Insts = s.cfg.DefaultInsts
	}
	if s.cfg.MaxInsts > 0 && spec.Insts > s.cfg.MaxInsts {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("insts %d exceeds the server cap %d", spec.Insts, s.cfg.MaxInsts))
		return
	}

	res, err := s.batch.RunCtx(r.Context(), spec)
	if err != nil {
		writeError(w, statusForError(err), fmt.Sprintf("run abandoned: %v", err))
		return
	}
	n := experiments.Normalize(spec)
	writeJSON(w, http.StatusOK, client.RunResponse{
		Key:         experiments.Key(spec),
		Benchmark:   n.Benchmark,
		Model:       client.ModelName(n.Model),
		Insts:       n.Insts,
		Warmup:      n.Warmup,
		CPU:         res.CPU,
		SAMIE:       res.SAMIE,
		Conv:        res.Conv,
		Meter:       res.Meter,
		LSQEnergyNJ: res.LSQEnergyNJ(),
	})
}

// handleFigure regenerates one paper figure through the shared batch;
// the rendered text is byte-identical to the library harness output.
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	benchmarks, insts, err := s.sweepParams(r.URL.Query().Get("bench"), r.URL.Query().Get("insts"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	type figureOut struct {
		text   string
		result any
	}
	var run func() figureOut
	switch name {
	case "1":
		run = func() figureOut { f := s.batch.Figure1(benchmarks, insts); return figureOut{f.String(), f} }
	case "3":
		run = func() figureOut { f := s.batch.Figure3(benchmarks, insts); return figureOut{f.String(), f} }
	case "4":
		run = func() figureOut { f := s.batch.Figure4(benchmarks, insts, nil); return figureOut{f.String(), f} }
	case "56":
		run = func() figureOut { f := s.batch.Figure56(benchmarks, insts); return figureOut{f.String(), f} }
	case "energy":
		run = func() figureOut { f := s.batch.Energy(benchmarks, insts); return figureOut{f.String(), f} }
	default:
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("unknown figure %q (have %s)", name, strings.Join(client.FigureNames(), ", ")))
		return
	}

	// The figure harnesses block; race them against the request
	// context. An abandoned harness still completes into the shared
	// cache, so the work is never wasted. A simulation panic must be
	// caught here — this goroutine is outside withRecovery's reach —
	// and surfaced as a 500 instead of tearing the process down.
	done := make(chan figureOut, 1)
	failed := make(chan any, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				failed <- p
			}
		}()
		done <- run()
	}()
	select {
	case out := <-done:
		raw, err := json.Marshal(out.result)
		if err != nil {
			writeError(w, http.StatusInternalServerError, fmt.Sprintf("encoding figure: %v", err))
			return
		}
		writeJSON(w, http.StatusOK, client.FigureResponse{
			Figure:     name,
			Benchmarks: benchmarks,
			Insts:      insts,
			Text:       out.text,
			Result:     raw,
		})
	case p := <-failed:
		s.log.Error("figure panic", "figure", name, "panic", fmt.Sprint(p))
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("figure failed: %v", p))
	case <-r.Context().Done():
		writeError(w, statusForError(r.Context().Err()),
			fmt.Sprintf("figure abandoned: %v", r.Context().Err()))
	}
}

// handleScenarios lists the registered sweeps.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	names := experiments.ScenarioNames()
	out := make([]client.ScenarioInfo, 0, len(names))
	for _, name := range names {
		sc, ok := experiments.LookupScenario(name)
		if !ok {
			continue
		}
		info := client.ScenarioInfo{Name: sc.Name, Description: sc.Description}
		for _, v := range sc.Variants {
			info.Variants = append(info.Variants, v.Name)
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleScenarioRun evaluates one registered sweep through the shared
// batch. With ?stream=1 the response is NDJSON: one "cell" event per
// completed (benchmark, variant) simulation, then a final "result".
func (s *Server) handleScenarioRun(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Resolve existence before any streaming headers go out, so an
	// unknown name is a clean 404.
	_, ok := experiments.LookupScenario(name)
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("unknown scenario %q (have %s)", name, strings.Join(experiments.ScenarioNames(), ", ")))
		return
	}
	var req client.ScenarioRunRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	benchmarks, err := validBenchmarks(req.Benchmarks)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	insts := req.Insts
	if insts == 0 {
		insts = s.cfg.DefaultInsts
	}
	if s.cfg.MaxInsts > 0 && insts > s.cfg.MaxInsts {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("insts %d exceeds the server cap %d", insts, s.cfg.MaxInsts))
		return
	}

	streaming := r.URL.Query().Get("stream") != ""
	var emit func(client.ScenarioEvent)
	if streaming {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		enc := json.NewEncoder(w)
		enc.SetEscapeHTML(false)
		flusher, _ := w.(http.Flusher)
		emit = func(ev client.ScenarioEvent) {
			_ = enc.Encode(ev) // Encode appends the newline NDJSON needs
			if flusher != nil {
				flusher.Flush()
			}
		}
	}

	// The library sweep does the fan-out, cancellation and panic
	// containment; the server only translates progress into NDJSON.
	var onCell func(experiments.ScenarioProgress)
	if emit != nil {
		onCell = func(p experiments.ScenarioProgress) {
			emit(client.ScenarioEvent{
				Type:      "cell",
				Benchmark: p.Benchmark,
				Variant:   p.Variant,
				IPC:       p.IPC,
				EnergyNJ:  p.EnergyNJ,
				Done:      p.Done,
				Total:     p.Total,
			})
		}
	}
	res, err := s.batch.ScenarioCtx(r.Context(), name, benchmarks, insts, onCell)
	if err != nil {
		if streaming {
			emit(client.ScenarioEvent{Type: "error", Error: err.Error()})
		} else {
			writeError(w, statusForError(err), fmt.Sprintf("scenario abandoned: %v", err))
		}
		return
	}
	if streaming {
		emit(client.ScenarioEvent{Type: "result", Result: &res, Text: res.String()})
		return
	}
	writeJSON(w, http.StatusOK, client.ScenarioRunResponse{Result: res, Text: res.String()})
}

// handleStats reports the engine/disk/process accounting.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsSnapshot())
}

// sweepParams parses the shared bench/insts query parameters.
func (s *Server) sweepParams(benchCSV, instsStr string) ([]string, uint64, error) {
	var names []string
	if benchCSV != "" {
		names = strings.Split(benchCSV, ",")
	}
	benchmarks, err := validBenchmarks(names)
	if err != nil {
		return nil, 0, err
	}
	insts := s.cfg.DefaultInsts
	if instsStr != "" {
		v, err := strconv.ParseUint(instsStr, 10, 64)
		if err != nil || v == 0 {
			return nil, 0, fmt.Errorf("bad insts %q", instsStr)
		}
		insts = v
	}
	if s.cfg.MaxInsts > 0 && insts > s.cfg.MaxInsts {
		return nil, 0, fmt.Errorf("insts %d exceeds the server cap %d", insts, s.cfg.MaxInsts)
	}
	return benchmarks, insts, nil
}
