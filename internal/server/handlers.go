package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"samielsq/internal/experiments"
	"samielsq/pkg/client"
)

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleRun executes (or serves from the shared cache) one simulation.
// Two concurrent identical requests coalesce into a single run.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req client.RunRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	spec, err := req.Spec()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if _, err := validBenchmarks([]string{spec.Benchmark}); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	spec.Insts, err = s.capInsts(spec.Insts)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	n := experiments.Normalize(spec)
	// Warm-up instructions are fully simulated before the measured
	// ones, so the cap must bound them too or a tiny-insts request
	// smuggles in an arbitrarily long simulation.
	if s.cfg.MaxInsts > 0 && n.Warmup > s.cfg.MaxInsts {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("warmup %d exceeds the server cap %d", n.Warmup, s.cfg.MaxInsts))
		return
	}
	if err := validSpec(n); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	res, err := s.batch.RunCtx(r.Context(), n)
	if err != nil {
		writeError(w, statusForError(err), fmt.Sprintf("run abandoned: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, client.RunResponse{
		Key:         experiments.Key(n),
		Benchmark:   n.Benchmark,
		Model:       client.ModelName(n.Model),
		Insts:       n.Insts,
		Warmup:      n.Warmup,
		CPU:         res.CPU,
		SAMIE:       res.SAMIE,
		Conv:        res.Conv,
		Meter:       res.Meter,
		LSQEnergyNJ: res.LSQEnergyNJ(),
	})
}

// figureOut is one rendered figure: the harness text plus the
// structured result to serialize.
type figureOut struct {
	text   string
	result any
}

// figureRun adapts one Figure*Ctx harness call to the shape
// handleFigure renders.
func figureRun[T interface{ String() string }](f func(ctx context.Context) (T, error)) func(context.Context) (figureOut, error) {
	return func(ctx context.Context) (figureOut, error) {
		v, err := f(ctx)
		if err != nil {
			return figureOut{}, err
		}
		return figureOut{v.String(), v}, nil
	}
}

// handleFigure regenerates one paper figure through the shared batch;
// the rendered text is byte-identical to the library harness output.
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	benchmarks, insts, err := s.sweepParams(r.URL.Query().Get("bench"), r.URL.Query().Get("insts"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	var run func(ctx context.Context) (figureOut, error)
	switch name {
	case "1":
		run = figureRun(func(ctx context.Context) (experiments.Figure1Result, error) {
			return s.batch.Figure1Ctx(ctx, benchmarks, insts)
		})
	case "3":
		run = figureRun(func(ctx context.Context) (experiments.Figure3Result, error) {
			return s.batch.Figure3Ctx(ctx, benchmarks, insts)
		})
	case "4":
		run = figureRun(func(ctx context.Context) (experiments.Figure4Result, error) {
			return s.batch.Figure4Ctx(ctx, benchmarks, insts, nil)
		})
	case "56":
		run = figureRun(func(ctx context.Context) (experiments.Figure56Result, error) {
			return s.batch.Figure56Ctx(ctx, benchmarks, insts)
		})
	case "energy":
		run = figureRun(func(ctx context.Context) (experiments.EnergyResult, error) {
			return s.batch.EnergyCtx(ctx, benchmarks, insts)
		})
	default:
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("unknown figure %q (have %s)", name, strings.Join(client.FigureNames(), ", ")))
		return
	}

	// The harnesses honor the request context: a timed-out or
	// disconnected client withdraws the figure's queued simulations —
	// started or shared ones finish into the cache — so abandoned
	// figure work never outlives the admission slot that paid for it.
	// A panicking simulation surfaces as an error, not a crash.
	out, err := run(r.Context())
	if err != nil {
		code := statusForError(err)
		if code == http.StatusInternalServerError {
			// A contained simulation failure, not a client that went
			// away: the error carries the panic stack, keep it in the
			// server log even if nobody reads the response.
			s.log.Error("figure failed", "figure", name, "err", err.Error())
		}
		writeError(w, code, fmt.Sprintf("figure %s: %v", name, err))
		return
	}
	raw, err := json.Marshal(out.result)
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("encoding figure: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, client.FigureResponse{
		Figure:     name,
		Benchmarks: benchmarks,
		Insts:      insts,
		Text:       out.text,
		Result:     raw,
	})
}

// handleScenarios lists the registered sweeps.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	names := experiments.ScenarioNames()
	out := make([]client.ScenarioInfo, 0, len(names))
	for _, name := range names {
		sc, ok := experiments.LookupScenario(name)
		if !ok {
			continue
		}
		info := client.ScenarioInfo{Name: sc.Name, Description: sc.Description}
		for _, v := range sc.Variants {
			info.Variants = append(info.Variants, v.Name)
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleScenarioRun evaluates one registered sweep through the shared
// batch. With ?stream=1 the response is NDJSON: one "cell" event per
// completed (benchmark, variant) simulation, then a final "result".
func (s *Server) handleScenarioRun(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Resolve existence before any streaming headers go out, so an
	// unknown name is a clean 404.
	_, ok := experiments.LookupScenario(name)
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("unknown scenario %q (have %s)", name, strings.Join(experiments.ScenarioNames(), ", ")))
		return
	}
	var req client.ScenarioRunRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	benchmarks, err := validBenchmarks(req.Benchmarks)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	insts, err := s.capInsts(req.Insts)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	// Only truthy values stream ("1", "true", ...): ?stream=0 must get
	// the documented plain-JSON response, not NDJSON.
	streaming, _ := strconv.ParseBool(r.URL.Query().Get("stream"))
	var emit func(client.ScenarioEvent)
	if streaming {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		enc := json.NewEncoder(w)
		enc.SetEscapeHTML(false)
		flusher, _ := w.(http.Flusher)
		emit = func(ev client.ScenarioEvent) {
			_ = enc.Encode(ev) // Encode appends the newline NDJSON needs
			if flusher != nil {
				flusher.Flush()
			}
		}
	}

	// The library sweep does the fan-out, cancellation and panic
	// containment; the server only translates progress into NDJSON.
	var onCell func(experiments.ScenarioProgress)
	if emit != nil {
		onCell = func(p experiments.ScenarioProgress) {
			emit(client.ScenarioEvent{
				Type:      "cell",
				Benchmark: p.Benchmark,
				Variant:   p.Variant,
				IPC:       p.IPC,
				EnergyNJ:  p.EnergyNJ,
				Done:      p.Done,
				Total:     p.Total,
			})
		}
	}
	res, err := s.batch.ScenarioCtx(r.Context(), name, benchmarks, insts, onCell)
	if err != nil {
		code := statusForError(err)
		if code == http.StatusInternalServerError {
			// A contained simulation failure, not a client that went
			// away: the error carries the panic stack, keep it in the
			// server log (in streaming mode the client only ever sees a
			// 200 plus an error event).
			s.log.Error("scenario failed", "scenario", name, "err", err.Error())
		}
		if streaming {
			emit(client.ScenarioEvent{Type: "error", Error: err.Error()})
		} else {
			writeError(w, code, fmt.Sprintf("scenario abandoned: %v", err))
		}
		return
	}
	if streaming {
		emit(client.ScenarioEvent{Type: "result", Result: &res, Text: res.String()})
		return
	}
	writeJSON(w, http.StatusOK, client.ScenarioRunResponse{Result: res, Text: res.String()})
}

// handleStats reports the engine/disk/process accounting.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsSnapshot())
}

// sweepParams parses the shared bench/insts query parameters.
func (s *Server) sweepParams(benchCSV, instsStr string) ([]string, uint64, error) {
	var names []string
	if benchCSV != "" {
		names = strings.Split(benchCSV, ",")
	}
	benchmarks, err := validBenchmarks(names)
	if err != nil {
		return nil, 0, err
	}
	var insts uint64
	if instsStr != "" {
		v, err := strconv.ParseUint(instsStr, 10, 64)
		if err != nil || v == 0 {
			return nil, 0, fmt.Errorf("bad insts %q", instsStr)
		}
		insts = v
	}
	insts, err = s.capInsts(insts)
	if err != nil {
		return nil, 0, err
	}
	return benchmarks, insts, nil
}
