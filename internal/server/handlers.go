package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"samielsq/internal/experiments"
	"samielsq/internal/obs"
	"samielsq/pkg/client"
)

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining() {
		// Shutting down: answer 503 so load balancers and coordinators
		// stop routing new work here while in-flight requests finish.
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// vetRun validates one wire run request end to end — benchmark,
// instruction and warm-up caps, model geometry — and returns the
// normalized spec it describes.
func (s *Server) vetRun(req client.RunRequest) (experiments.RunSpec, error) {
	spec, err := req.Spec()
	if err != nil {
		return experiments.RunSpec{}, err
	}
	if _, err := validBenchmarks([]string{spec.Benchmark}); err != nil {
		return experiments.RunSpec{}, err
	}
	spec.Insts, err = s.capInsts(spec.Insts)
	if err != nil {
		return experiments.RunSpec{}, err
	}
	n := experiments.Normalize(spec)
	// Warm-up instructions are fully simulated before the measured
	// ones, so the cap must bound them too or a tiny-insts request
	// smuggles in an arbitrarily long simulation.
	if s.cfg.MaxInsts > 0 && n.Warmup > s.cfg.MaxInsts {
		return experiments.RunSpec{}, fmt.Errorf("warmup %d exceeds the server cap %d", n.Warmup, s.cfg.MaxInsts)
	}
	if err := validSpec(n); err != nil {
		return experiments.RunSpec{}, err
	}
	return n, nil
}

// runResponseFor renders a normalized spec and its result as the wire
// response.
func runResponseFor(n experiments.RunSpec, res experiments.RunResult) client.RunResponse {
	return client.RunResponse{
		Key:         experiments.Key(n),
		Benchmark:   n.Benchmark,
		Model:       client.ModelName(n.Model),
		Insts:       n.Insts,
		Warmup:      n.Warmup,
		Sim:         experiments.SimStamp(),
		CPU:         res.CPU,
		SAMIE:       res.SAMIE,
		Conv:        res.Conv,
		Meter:       res.Meter,
		LSQEnergyNJ: res.LSQEnergyNJ(),
		Phases:      res.Phases,
	}
}

// handleRun executes (or serves from the shared cache) one simulation.
// Two concurrent identical requests coalesce into a single run.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req client.RunRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	n, err := s.vetRun(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	res, err := s.batch.RunCtx(r.Context(), n)
	if err != nil {
		writeError(w, statusForError(err), fmt.Sprintf("run abandoned: %v", err))
		return
	}
	resp := runResponseFor(n, res)
	if req.Timeline {
		// Interval telemetry is opt-in per request: the payload is an
		// order of magnitude larger than the result itself, and only
		// runs this replica simulated carry one.
		resp.Timeline = res.Timeline
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRunProbe answers whether the batch already holds the result
// for a canonical spec key — in memory or on disk — without ever
// simulating. 404 means "not cached", not "invalid": a cluster
// coordinator uses the distinction to decide where work must go.
func (s *Server) handleRunProbe(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	res, ok := s.batch.Cached(key)
	if !ok {
		s.probeMisses.Add(1)
		writeError(w, http.StatusNotFound, "run not cached")
		return
	}
	s.probeHits.Add(1)
	writeJSON(w, http.StatusOK, runResponseFor(res.Spec, res))
}

// handleRunTimeline streams a cached run's interval telemetry as
// NDJSON: one meta line ({"key","stride","samples"}), then one line
// per TimelineSample. 404 means the batch holds no timeline for the
// key — the run is not cached, or its result arrived via the disk or
// peer tier, which strip telemetry (only locally simulated runs carry
// it).
func (s *Server) handleRunTimeline(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	res, ok := s.batch.Cached(key)
	if !ok || res.Timeline == nil || len(res.Timeline.Samples) == 0 {
		writeError(w, http.StatusNotFound, "timeline not retained")
		return
	}
	t := res.Timeline
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	meta := struct {
		Key     string `json:"key"`
		Stride  uint64 `json:"stride"`
		Samples int    `json:"samples"`
	}{Key: key, Stride: t.Stride, Samples: len(t.Samples)}
	if err := enc.Encode(meta); err != nil {
		return
	}
	for _, ts := range t.Samples {
		if err := enc.Encode(ts); err != nil {
			return
		}
	}
}

// maxSuiteSpecs bounds one suite request's explicit shard. Every spec
// fans out a goroutine and a queued engine job while holding a single
// admission slot, so an unbounded list would let one request smuggle
// arbitrary load past the semaphore the way the /v1/runs caps exist to
// prevent. 4096 comfortably covers the largest legitimate shard (the
// full 26-benchmark suite is 962 distinct specs).
const maxSuiteSpecs = 4096

// handleSuite executes a suite spec set through the shared batch: the
// full enumeration for the requested benchmarks, or — the cluster
// shard path — exactly the specs the request names. With ?stream=1 the
// response is NDJSON: one "run" event per completed simulation (in
// completion order) carrying the full run payload, then a final
// "result" event.
func (s *Server) handleSuite(w http.ResponseWriter, r *http.Request) {
	var req client.SuiteRequest
	// Shards embed whole config objects per spec, so the body cap is
	// generous relative to /v1/runs.
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<24)).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	var specs []experiments.RunSpec
	if len(req.Specs) > maxSuiteSpecs {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("%d specs exceeds the per-request cap %d", len(req.Specs), maxSuiteSpecs))
		return
	}
	if len(req.Peers) > 0 && s.cfg.PeerAdopt != nil {
		// The coordinator names the rest of its fleet; hand the list to
		// the peer-fetch tier before the shard's lookups begin.
		s.cfg.PeerAdopt(req.Peers)
	}
	if len(req.Specs) > 0 {
		specs = make([]experiments.RunSpec, 0, len(req.Specs))
		for i, rr := range req.Specs {
			n, err := s.vetRun(rr)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("spec %d: %v", i, err))
				return
			}
			specs = append(specs, n)
		}
	} else {
		benchmarks, err := validBenchmarks(req.Benchmarks)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		insts, err := s.capInsts(req.Insts)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		specs = experiments.SuiteSpecs(benchmarks, insts)
	}
	s.suiteSpecs.Add(int64(len(specs)))

	emit := s.ndjsonEmitter(w, r)
	ctx := r.Context()
	var onDone func(res experiments.RunResult, done, total int)
	if emit != nil {
		// A draining server cancels the stream so the terminal error
		// event below goes out while the connection is still writable.
		var cancel context.CancelFunc
		ctx, cancel = s.drainAware(ctx)
		defer cancel()
		// Every run event carries the serving request's span context:
		// a coordinator resuming a truncated stream can then name the
		// trace each undelivered spec belonged to.
		tp := obs.SpanFromContext(ctx).TraceParent()
		if tp == "" {
			tp = r.Header.Get("traceparent")
		}
		onDone = func(res experiments.RunResult, done, total int) {
			rr := runResponseFor(res.Spec, res)
			emit(client.SuiteEvent{Type: "run", Run: &rr, Done: done, Total: total, Trace: tp})
		}
	}
	results, err := s.batch.RunEachCtx(ctx, specs, onDone)
	if err != nil {
		if errors.Is(context.Cause(ctx), errDraining) {
			err = errDraining
		}
		code := statusForError(err)
		if code == http.StatusInternalServerError {
			// A contained simulation failure, not a client that went
			// away: the error carries the panic stack, keep it in the
			// server log.
			s.log.Error("suite failed", "err", err.Error())
		}
		if emit != nil {
			emit(client.SuiteEvent{Type: "error", Error: err.Error()})
		} else {
			writeError(w, code, fmt.Sprintf("suite abandoned: %v", err))
		}
		return
	}
	if emit != nil {
		emit(client.SuiteEvent{Type: "result", Total: len(specs)})
		return
	}
	out := client.SuiteResponse{Total: len(specs), Runs: make([]client.RunResponse, 0, len(results))}
	for _, res := range results {
		out.Runs = append(out.Runs, runResponseFor(res.Spec, res))
	}
	writeJSON(w, http.StatusOK, out)
}

// figureOut is one rendered figure: the harness text plus the
// structured result to serialize.
type figureOut struct {
	text   string
	result any
}

// figureRun adapts one Figure*Ctx harness call to the shape
// handleFigure renders.
func figureRun[T interface{ String() string }](f func(ctx context.Context) (T, error)) func(context.Context) (figureOut, error) {
	return func(ctx context.Context) (figureOut, error) {
		v, err := f(ctx)
		if err != nil {
			return figureOut{}, err
		}
		return figureOut{v.String(), v}, nil
	}
}

// handleFigure regenerates one paper figure through the shared batch;
// the rendered text is byte-identical to the library harness output.
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	benchmarks, insts, err := s.sweepParams(r.URL.Query().Get("bench"), r.URL.Query().Get("insts"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	var run func(ctx context.Context) (figureOut, error)
	switch name {
	case "1":
		run = figureRun(func(ctx context.Context) (experiments.Figure1Result, error) {
			return s.batch.Figure1Ctx(ctx, benchmarks, insts)
		})
	case "3":
		run = figureRun(func(ctx context.Context) (experiments.Figure3Result, error) {
			return s.batch.Figure3Ctx(ctx, benchmarks, insts)
		})
	case "4":
		run = figureRun(func(ctx context.Context) (experiments.Figure4Result, error) {
			return s.batch.Figure4Ctx(ctx, benchmarks, insts, nil)
		})
	case "56":
		run = figureRun(func(ctx context.Context) (experiments.Figure56Result, error) {
			return s.batch.Figure56Ctx(ctx, benchmarks, insts)
		})
	case "energy":
		run = figureRun(func(ctx context.Context) (experiments.EnergyResult, error) {
			return s.batch.EnergyCtx(ctx, benchmarks, insts)
		})
	default:
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("unknown figure %q (have %s)", name, strings.Join(client.FigureNames(), ", ")))
		return
	}

	// The harnesses honor the request context: a timed-out or
	// disconnected client withdraws the figure's queued simulations —
	// started or shared ones finish into the cache — so abandoned
	// figure work never outlives the admission slot that paid for it.
	// A panicking simulation surfaces as an error, not a crash.
	out, err := run(r.Context())
	if err != nil {
		code := statusForError(err)
		if code == http.StatusInternalServerError {
			// A contained simulation failure, not a client that went
			// away: the error carries the panic stack, keep it in the
			// server log even if nobody reads the response.
			s.log.Error("figure failed", "figure", name, "err", err.Error())
		}
		writeError(w, code, fmt.Sprintf("figure %s: %v", name, err))
		return
	}
	raw, err := json.Marshal(out.result)
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("encoding figure: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, client.FigureResponse{
		Figure:     name,
		Benchmarks: benchmarks,
		Insts:      insts,
		Text:       out.text,
		Result:     raw,
	})
}

// handleScenarios lists the registered sweeps.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	names := experiments.ScenarioNames()
	out := make([]client.ScenarioInfo, 0, len(names))
	for _, name := range names {
		sc, ok := experiments.LookupScenario(name)
		if !ok {
			continue
		}
		info := client.ScenarioInfo{Name: sc.Name, Description: sc.Description, Benchmarks: sc.Benchmarks}
		for _, v := range sc.Variants {
			info.Variants = append(info.Variants, v.Name)
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleScenarioRun evaluates one registered sweep through the shared
// batch. With ?stream=1 the response is NDJSON: one "cell" event per
// completed (benchmark, variant) simulation, then a final "result".
func (s *Server) handleScenarioRun(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Resolve existence before any streaming headers go out, so an
	// unknown name is a clean 404.
	sc, ok := experiments.LookupScenario(name)
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("unknown scenario %q (have %s)", name, strings.Join(experiments.ScenarioNames(), ", ")))
		return
	}
	var req client.ScenarioRunRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	// One resolution rule everywhere: explicit request, then the
	// scenario's default rows, then the full suite.
	benchmarks, err := validBenchmarks(sc.ResolveBenchmarks(req.Benchmarks))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	insts, err := s.capInsts(req.Insts)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	emit := s.ndjsonEmitter(w, r)
	streaming := emit != nil
	ctx := r.Context()

	// The library sweep does the fan-out, cancellation and panic
	// containment; the server only translates progress into NDJSON.
	var onCell func(experiments.ScenarioProgress)
	if emit != nil {
		// As with suite streams: drain cancels the sweep so the error
		// event below reaches the client before the listener closes.
		var cancel context.CancelFunc
		ctx, cancel = s.drainAware(ctx)
		defer cancel()
		onCell = func(p experiments.ScenarioProgress) {
			emit(client.ScenarioEvent{
				Type:      "cell",
				Benchmark: p.Benchmark,
				Variant:   p.Variant,
				IPC:       p.IPC,
				EnergyNJ:  p.EnergyNJ,
				Done:      p.Done,
				Total:     p.Total,
			})
		}
	}
	res, err := s.batch.ScenarioCtx(ctx, name, benchmarks, insts, onCell)
	if err != nil {
		if errors.Is(context.Cause(ctx), errDraining) {
			err = errDraining
		}
		code := statusForError(err)
		if code == http.StatusInternalServerError {
			// A contained simulation failure, not a client that went
			// away: the error carries the panic stack, keep it in the
			// server log (in streaming mode the client only ever sees a
			// 200 plus an error event).
			s.log.Error("scenario failed", "scenario", name, "err", err.Error())
		}
		if streaming {
			emit(client.ScenarioEvent{Type: "error", Error: err.Error()})
		} else {
			writeError(w, code, fmt.Sprintf("scenario abandoned: %v", err))
		}
		return
	}
	if streaming {
		emit(client.ScenarioEvent{Type: "result", Result: &res, Text: res.String()})
		return
	}
	writeJSON(w, http.StatusOK, client.ScenarioRunResponse{Result: res, Text: res.String()})
}

// handleStats reports the engine/disk/process accounting.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsSnapshot())
}

// sweepParams parses the shared bench/insts query parameters.
func (s *Server) sweepParams(benchCSV, instsStr string) ([]string, uint64, error) {
	var names []string
	if benchCSV != "" {
		names = strings.Split(benchCSV, ",")
	}
	benchmarks, err := validBenchmarks(names)
	if err != nil {
		return nil, 0, err
	}
	var insts uint64
	if instsStr != "" {
		v, err := strconv.ParseUint(instsStr, 10, 64)
		if err != nil || v == 0 {
			return nil, 0, fmt.Errorf("bad insts %q", instsStr)
		}
		insts = v
	}
	insts, err = s.capInsts(insts)
	if err != nil {
		return nil, 0, err
	}
	return benchmarks, insts, nil
}
