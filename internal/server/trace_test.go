package server

import (
	"net/http"
	"testing"

	"samielsq/internal/obs"
	"samielsq/pkg/client"
)

// TestTraceEndpoints: a request carrying a traceparent header is
// adopted into that trace, retrievable via GET /v1/trace/{id}, and
// listed as a local root by GET /v1/traces; unknown IDs 404 and bad
// limits 400.
func TestTraceEndpoints(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})

	parent := obs.SpanContext{Trace: obs.NewTraceID(), Span: obs.NewSpanID()}
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", parent.TraceParent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/v1/trace/" + parent.Trace.String())
	if err != nil {
		t.Fatal(err)
	}
	tr := decodeBody[client.TraceResponse](t, resp)
	if tr.TraceID != parent.Trace.String() || len(tr.Spans) != 1 {
		t.Fatalf("trace response %+v, want 1 span under %s", tr, parent.Trace)
	}
	sp := tr.Spans[0]
	if sp.ParentID != parent.Span.String() {
		t.Errorf("span parent %q, want the propagated span %s", sp.ParentID, parent.Span)
	}
	if !sp.Root {
		t.Error("remote child span not marked as a local root")
	}
	if sp.Name != "GET /healthz" {
		t.Errorf("span name %q, want GET /healthz", sp.Name)
	}

	resp, err = http.Get(ts.URL + "/v1/traces?limit=5")
	if err != nil {
		t.Fatal(err)
	}
	listing := decodeBody[client.TracesResponse](t, resp)
	found := false
	for _, r := range listing.Traces {
		if r.TraceID == parent.Trace.String() {
			found = true
		}
	}
	if !found {
		t.Errorf("trace %s missing from the roots listing: %+v", parent.Trace, listing.Traces)
	}
	if listing.Dropped != 0 {
		t.Errorf("dropped = %d on a fresh recorder, want 0", listing.Dropped)
	}

	// Unknown trace IDs are a 404, bad limits a 400.
	for path, want := range map[string]int{
		"/v1/trace/00000000000000000000000000000000": http.StatusNotFound,
		"/v1/traces?limit=bogus":                     http.StatusBadRequest,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}
}
