package server

import (
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"samielsq/internal/experiments"
	"samielsq/internal/faultinject"
	"samielsq/pkg/client"
)

// statsSnapshot assembles the /v1/stats body; /metrics renders the
// same snapshot in Prometheus text form so the two never disagree.
func (s *Server) statsSnapshot() client.StatsResponse {
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	return client.StatsResponse{
		Engine:         s.batch.Stats(),
		Disk:           s.batch.DiskStats(),
		Store:          s.batch.StoreStats(),
		DistinctRuns:   s.batch.DistinctRuns(),
		Workers:        s.batch.Workers(),
		MaxConcurrent:  cap(s.sem),
		InflightHTTP:   s.inflight.Load(),
		RequestsServed: s.served.Load(),
		Throttled:      s.throttled.Load(),
		ProbeHits:      s.probeHits.Load(),
		ProbeMisses:    s.probeMisses.Load(),
		SuiteSpecs:     s.suiteSpecs.Load(),
		CacheDir:       s.cfg.CacheDir,
		Preloaded:      s.cfg.Preloaded,
		UptimeSeconds:  time.Since(s.start).Seconds(),
		Goroutines:     runtime.NumGoroutine(),
		HeapBytes:      mem.HeapAlloc,
		Chaos:          s.chaosSnapshot(),
	}
}

// handleMetrics is the Prometheus text exposition (format version
// 0.0.4): engine hit/miss/inflight counters, disk-cache traffic, HTTP
// admission accounting and process gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.statsSnapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	type metric struct {
		name, help, kind string
		value            float64
	}
	metrics := []metric{
		{"samie_engine_requests_total", "Run requests seen by the shared scheduler.", "counter", float64(st.Engine.Requests)},
		{"samie_engine_executed_total", "Distinct simulations actually executed.", "counter", float64(st.Engine.Executed)},
		{"samie_engine_hits_total", "Requests served from cache or coalesced onto an in-flight run.", "counter", float64(st.Engine.Hits)},
		{"samie_engine_canceled_total", "Requests abandoned via context before completing.", "counter", float64(st.Engine.Canceled)},
		{"samie_engine_evictions_total", "Memoized results dropped by the LRU bound.", "counter", float64(st.Engine.Evictions)},
		{"samie_engine_inflight", "Simulations holding a worker slot right now.", "gauge", float64(st.Engine.Inflight)},
		{"samie_engine_distinct_runs", "Distinct run specs in the in-memory cache.", "gauge", float64(st.DistinctRuns)},
		{"samie_engine_workers", "Worker-pool concurrency bound.", "gauge", float64(st.Workers)},
		{"samie_disk_cache_hits_total", "Results served from the on-disk cache.", "counter", float64(st.Disk.Hits)},
		{"samie_disk_cache_misses_total", "On-disk lookups that missed.", "counter", float64(st.Disk.Misses)},
		{"samie_disk_cache_writes_total", "Artifacts persisted to the on-disk cache.", "counter", float64(st.Disk.Writes)},
		{"samie_http_requests_total", "HTTP requests served, all endpoints.", "counter", float64(st.RequestsServed)},
		{"samie_http_throttled_total", "Requests shed with 429 at the admission semaphore.", "counter", float64(st.Throttled)},
		{"samie_http_probe_hits_total", "Cache probes (GET /v1/runs/{key}) that found a result.", "counter", float64(st.ProbeHits)},
		{"samie_http_probe_misses_total", "Cache probes that found nothing.", "counter", float64(st.ProbeMisses)},
		{"samie_http_suite_specs_total", "Simulations requested through POST /v1/suite.", "counter", float64(st.SuiteSpecs)},
		{"samie_http_inflight", "Admitted simulation requests in flight.", "gauge", float64(st.InflightHTTP)},
		{"samie_http_max_concurrent", "Admission semaphore capacity.", "gauge", float64(st.MaxConcurrent)},
		{"samie_preloaded_runs", "Results preloaded from disk at startup.", "gauge", float64(st.Preloaded)},
		{"samie_uptime_seconds", "Seconds since the server started.", "gauge", st.UptimeSeconds},
		{"samie_process_goroutines", "Live goroutines.", "gauge", float64(st.Goroutines)},
		{"samie_process_heap_bytes", "Heap bytes in use.", "gauge", float64(st.HeapBytes)},
	}
	for _, m := range metrics {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", m.name, m.help, m.name, m.kind, m.name, m.value)
	}

	// Tiered run store: per-tier hit/miss counters (labeled) plus the
	// peer-fetch latency histogram.
	tiers := []struct {
		name string
		t    experiments.TierStats
	}{
		{"mem", st.Store.Mem},
		{"disk", st.Store.Disk},
		{"peer", st.Store.Peer},
	}
	fmt.Fprintf(w, "# HELP samie_store_hits_total Run-store lookups served, per tier.\n# TYPE samie_store_hits_total counter\n")
	for _, tier := range tiers {
		fmt.Fprintf(w, "samie_store_hits_total{tier=%q} %d\n", tier.name, tier.t.Hits)
	}
	fmt.Fprintf(w, "# HELP samie_store_misses_total Run-store lookups that fell through, per tier.\n# TYPE samie_store_misses_total counter\n")
	for _, tier := range tiers {
		fmt.Fprintf(w, "samie_store_misses_total{tier=%q} %d\n", tier.name, tier.t.Misses)
	}
	fmt.Fprintf(w, "# HELP samie_store_peer_installs_total Peer-fetched results installed into the local disk cache.\n# TYPE samie_store_peer_installs_total counter\n")
	fmt.Fprintf(w, "samie_store_peer_installs_total %d\n", st.Store.PeerInstalls)

	// Chaos layer: always emitted (zeros when disabled) so monitoring
	// and CI can assert on the family's presence unconditionally.
	cc := s.chaosCounts()
	fmt.Fprintf(w, "# HELP samie_chaos_injected_total Faults injected by the chaos layer, per kind.\n# TYPE samie_chaos_injected_total counter\n")
	for _, k := range faultinject.Kinds() {
		fmt.Fprintf(w, "samie_chaos_injected_total{kind=%q} %d\n", k, cc.Get(k))
	}

	h := st.Store.PeerFetch
	fmt.Fprintf(w, "# HELP samie_store_peer_fetch_seconds Peer probe latency (hits and misses).\n# TYPE samie_store_peer_fetch_seconds histogram\n")
	var cum uint64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(w, "samie_store_peer_fetch_seconds_bucket{le=%q} %d\n", trimFloat(bound), cum)
	}
	fmt.Fprintf(w, "samie_store_peer_fetch_seconds_bucket{le=\"+Inf\"} %d\n", h.Count)
	fmt.Fprintf(w, "samie_store_peer_fetch_seconds_sum %g\n", h.Sum)
	fmt.Fprintf(w, "samie_store_peer_fetch_seconds_count %d\n", h.Count)
}

// trimFloat renders a histogram bound the canonical Prometheus way
// (shortest decimal form, "0.005" not "5e-03").
func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'f', -1, 64)
}
