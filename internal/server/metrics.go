package server

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"samielsq/internal/experiments"
	"samielsq/internal/faultinject"
	"samielsq/internal/obs"
	"samielsq/pkg/client"
)

// statsSnapshot assembles the /v1/stats body; /metrics renders the
// same snapshot in Prometheus text form so the two never disagree.
func (s *Server) statsSnapshot() client.StatsResponse {
	return client.StatsResponse{
		Engine:         s.batch.Stats(),
		Disk:           s.batch.DiskStats(),
		Store:          s.batch.StoreStats(),
		DistinctRuns:   s.batch.DistinctRuns(),
		Workers:        s.batch.Workers(),
		MaxConcurrent:  cap(s.sem),
		InflightHTTP:   s.inflight.Load(),
		RequestsServed: s.served.Load(),
		Throttled:      s.throttled.Load(),
		ProbeHits:      s.probeHits.Load(),
		ProbeMisses:    s.probeMisses.Load(),
		SuiteSpecs:     s.suiteSpecs.Load(),
		CacheDir:       s.cfg.CacheDir,
		Preloaded:      s.cfg.Preloaded,
		UptimeSeconds:  time.Since(s.start).Seconds(),
		Goroutines:     runtime.NumGoroutine(),
		HeapBytes:      s.heapBytes(),
		RunPhases:      s.batch.PhaseStats(),
		Chaos:          s.chaosSnapshot(),
		TimelineStats:  s.batch.TimelineStats(),
		EnergyPJ:       s.batch.EnergyPJ(),
		TraceDropped:   s.rec.Dropped(),
	}
}

// handleMetrics is the Prometheus text exposition (format version
// 0.0.4): engine hit/miss/inflight counters, disk-cache traffic,
// labeled HTTP request accounting, tiered-store counters, the
// peer-fetch and per-phase run latency histograms, chaos counters and
// process gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.statsSnapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	type metric struct {
		name, help, kind string
		value            float64
	}
	metrics := []metric{
		{"samie_engine_requests_total", "Run requests seen by the shared scheduler.", "counter", float64(st.Engine.Requests)},
		{"samie_engine_executed_total", "Distinct simulations actually executed.", "counter", float64(st.Engine.Executed)},
		{"samie_engine_hits_total", "Requests served from cache or coalesced onto an in-flight run.", "counter", float64(st.Engine.Hits)},
		{"samie_engine_canceled_total", "Requests abandoned via context before completing.", "counter", float64(st.Engine.Canceled)},
		{"samie_engine_evictions_total", "Memoized results dropped by the LRU bound.", "counter", float64(st.Engine.Evictions)},
		{"samie_engine_inflight", "Simulations holding a worker slot right now.", "gauge", float64(st.Engine.Inflight)},
		{"samie_engine_queue_depth", "Run requests waiting for a worker slot right now.", "gauge", float64(st.Engine.QueueDepth)},
		{"samie_trace_spans_dropped_total", "Spans overwritten in the trace ring before being read.", "counter", float64(st.TraceDropped)},
		{"samie_engine_distinct_runs", "Distinct run specs in the in-memory cache.", "gauge", float64(st.DistinctRuns)},
		{"samie_engine_workers", "Worker-pool concurrency bound.", "gauge", float64(st.Workers)},
		{"samie_disk_cache_hits_total", "Results served from the on-disk cache.", "counter", float64(st.Disk.Hits)},
		{"samie_disk_cache_misses_total", "On-disk lookups that missed.", "counter", float64(st.Disk.Misses)},
		{"samie_disk_cache_writes_total", "Artifacts persisted to the on-disk cache.", "counter", float64(st.Disk.Writes)},
		{"samie_http_throttled_total", "Requests shed with 429 at the admission semaphore.", "counter", float64(st.Throttled)},
		{"samie_http_probe_hits_total", "Cache probes (GET /v1/runs/{key}) that found a result.", "counter", float64(st.ProbeHits)},
		{"samie_http_probe_misses_total", "Cache probes that found nothing.", "counter", float64(st.ProbeMisses)},
		{"samie_http_suite_specs_total", "Simulations requested through POST /v1/suite.", "counter", float64(st.SuiteSpecs)},
		{"samie_http_inflight", "Admitted simulation requests in flight.", "gauge", float64(st.InflightHTTP)},
		{"samie_http_max_concurrent", "Admission semaphore capacity.", "gauge", float64(st.MaxConcurrent)},
		{"samie_preloaded_runs", "Results preloaded from disk at startup.", "gauge", float64(st.Preloaded)},
		{"samie_uptime_seconds", "Seconds since the server started.", "gauge", st.UptimeSeconds},
		{"samie_process_goroutines", "Live goroutines.", "gauge", float64(st.Goroutines)},
		{"samie_process_heap_bytes", "Heap bytes in use (sampled at most once per second).", "gauge", float64(st.HeapBytes)},
	}
	for _, m := range metrics {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", m.name, m.help, m.name, m.kind, m.name, m.value)
	}

	// Build identity, so a fleet dashboard can spot mixed simulator
	// builds at a glance (the same stamp the store tiers verify).
	fmt.Fprintf(w, "# HELP samie_build_info Simulator build identity; the value is always 1.\n# TYPE samie_build_info gauge\n")
	fmt.Fprintf(w, "samie_build_info{revision=\"%s\"} 1\n", promLabel(experiments.SimStamp()))

	// HTTP requests, split by normalized route and status code, plus
	// the per-route latency histogram.
	counts, durs := s.httpm.snapshot()
	keys := make([]routeCode, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].route != keys[j].route {
			return keys[i].route < keys[j].route
		}
		return keys[i].code < keys[j].code
	})
	fmt.Fprintf(w, "# HELP samie_http_requests_total HTTP requests served, by route and status code.\n# TYPE samie_http_requests_total counter\n")
	for _, k := range keys {
		fmt.Fprintf(w, "samie_http_requests_total{route=\"%s\",code=\"%d\"} %d\n", promLabel(k.route), k.code, counts[k])
	}
	routes := make([]string, 0, len(durs))
	for route := range durs {
		routes = append(routes, route)
	}
	sort.Strings(routes)
	fmt.Fprintf(w, "# HELP samie_http_request_seconds Request latency, by normalized route.\n# TYPE samie_http_request_seconds histogram\n")
	for _, route := range routes {
		writeHistSeries(w, "samie_http_request_seconds", fmt.Sprintf("route=\"%s\"", promLabel(route)), durs[route])
	}

	// Tiered run store: per-tier hit/miss counters (labeled) plus the
	// peer-fetch latency histogram.
	tiers := []struct {
		name string
		t    experiments.TierStats
	}{
		{"mem", st.Store.Mem},
		{"disk", st.Store.Disk},
		{"peer", st.Store.Peer},
	}
	fmt.Fprintf(w, "# HELP samie_store_hits_total Run-store lookups served, per tier.\n# TYPE samie_store_hits_total counter\n")
	for _, tier := range tiers {
		fmt.Fprintf(w, "samie_store_hits_total{tier=%q} %d\n", tier.name, tier.t.Hits)
	}
	fmt.Fprintf(w, "# HELP samie_store_misses_total Run-store lookups that fell through, per tier.\n# TYPE samie_store_misses_total counter\n")
	for _, tier := range tiers {
		fmt.Fprintf(w, "samie_store_misses_total{tier=%q} %d\n", tier.name, tier.t.Misses)
	}
	fmt.Fprintf(w, "# HELP samie_store_peer_installs_total Peer-fetched results installed into the local disk cache.\n# TYPE samie_store_peer_installs_total counter\n")
	fmt.Fprintf(w, "samie_store_peer_installs_total %d\n", st.Store.PeerInstalls)

	// Chaos layer: always emitted (zeros when disabled) so monitoring
	// and CI can assert on the family's presence unconditionally.
	cc := s.chaosCounts()
	fmt.Fprintf(w, "# HELP samie_chaos_injected_total Faults injected by the chaos layer, per kind.\n# TYPE samie_chaos_injected_total counter\n")
	for _, k := range faultinject.Kinds() {
		fmt.Fprintf(w, "samie_chaos_injected_total{kind=%q} %d\n", k, cc.Get(k))
	}

	fmt.Fprintf(w, "# HELP samie_store_peer_fetch_seconds Peer probe latency (hits and misses).\n# TYPE samie_store_peer_fetch_seconds histogram\n")
	writeHistSeries(w, "samie_store_peer_fetch_seconds", "", st.Store.PeerFetch)

	// Interval-telemetry rollups: per-benchmark occupancy gauges and
	// per-structure energy counters, aggregated over every locally
	// simulated run (tier-served results carry no timeline, so the
	// fleet-wide sum counts each simulation exactly once).
	if len(st.TimelineStats) > 0 {
		benches := make([]string, 0, len(st.TimelineStats))
		for b := range st.TimelineStats {
			benches = append(benches, b)
		}
		sort.Strings(benches)
		fmt.Fprintf(w, "# HELP samie_lsq_occupancy LSQ occupancy over sampled intervals, per benchmark.\n# TYPE samie_lsq_occupancy gauge\n")
		for _, b := range benches {
			agg := st.TimelineStats[b]
			fmt.Fprintf(w, "samie_lsq_occupancy{benchmark=%q,stat=\"mean\"} %g\n", promLabel(b), agg.MeanLSQ())
			fmt.Fprintf(w, "samie_lsq_occupancy{benchmark=%q,stat=\"peak\"} %d\n", promLabel(b), agg.PeakLSQ)
		}
	}
	if len(st.EnergyPJ) > 0 {
		structs := make([]string, 0, len(st.EnergyPJ))
		for k := range st.EnergyPJ {
			structs = append(structs, k)
		}
		sort.Strings(structs)
		fmt.Fprintf(w, "# HELP samie_energy_joules_total Modeled energy over sampled intervals, per structure.\n# TYPE samie_energy_joules_total counter\n")
		for _, k := range structs {
			fmt.Fprintf(w, "samie_energy_joules_total{structure=%q} %g\n", promLabel(k), st.EnergyPJ[k]*1e-12)
		}
	}

	// Per-phase run latency: every defined phase is always emitted
	// (zeros before the first observation) so dashboards and CI can
	// select the full set unconditionally.
	fmt.Fprintf(w, "# HELP samie_run_phase_seconds Where run wall-clock went, per engine-job phase.\n# TYPE samie_run_phase_seconds histogram\n")
	for _, p := range obs.AllPhases() {
		writeHistSeries(w, "samie_run_phase_seconds", fmt.Sprintf("phase=%q", p), st.RunPhases[p.String()])
	}
}

// writeHistSeries renders one histogram series in exposition format:
// cumulative buckets ending at +Inf, then sum and count. labels is
// the series' label block without braces ("" for none, `phase="x"`
// otherwise); le is appended to it for the bucket lines. An empty
// snapshot renders a valid all-zero series with only the +Inf bucket.
func writeHistSeries(w io.Writer, name, labels string, h obs.HistSnapshot) {
	bucket := func(le string) string {
		if labels == "" {
			return fmt.Sprintf("{le=%q}", le)
		}
		return fmt.Sprintf("{%s,le=%q}", labels, le)
	}
	plain := ""
	if labels != "" {
		plain = "{" + labels + "}"
	}
	var cum uint64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucket(trimFloat(bound)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucket("+Inf"), h.Count)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, plain, h.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, plain, h.Count)
}

// promLabel escapes a label value per the exposition format:
// backslash, double quote and newline.
func promLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// trimFloat renders a histogram bound the canonical Prometheus way
// (shortest decimal form, "0.005" not "5e-03").
func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'f', -1, 64)
}
