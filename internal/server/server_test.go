package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"samielsq/internal/core"
	"samielsq/internal/experiments"
	"samielsq/pkg/client"
)

// testInsts keeps handler tests in the tens of milliseconds.
const testInsts = 5_000

// newTestServer boots a service over a fresh batch and returns both.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *experiments.Batch) {
	t.Helper()
	if cfg.Batch == nil {
		cfg.Batch = experiments.NewBatch(2)
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.DefaultInsts == 0 {
		cfg.DefaultInsts = testInsts
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, cfg.Batch
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestRunEndpointExecutesAndDedups(t *testing.T) {
	_, ts, batch := newTestServer(t, Config{})
	req := client.RunRequest{Benchmark: "gzip", Model: client.ModelSAMIE}

	resp := postJSON(t, ts.URL+"/v1/runs", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	out := decodeBody[client.RunResponse](t, resp)
	if out.CPU.IPC <= 0 || out.Key == "" || out.Model != client.ModelSAMIE {
		t.Fatalf("implausible response: %+v", out)
	}
	if out.Insts != testInsts || out.Warmup != testInsts/2 {
		t.Fatalf("defaults not normalized: insts=%d warmup=%d", out.Insts, out.Warmup)
	}

	// The same request again is a pure cache hit.
	resp2 := postJSON(t, ts.URL+"/v1/runs", req)
	out2 := decodeBody[client.RunResponse](t, resp2)
	if out2.CPU != out.CPU {
		t.Error("repeated run returned a different result")
	}
	if st := batch.Stats(); st.Executed != 1 || st.Hits != 1 {
		t.Fatalf("dedup failed: %+v", st)
	}
}

func TestRunEndpointValidation(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{MaxInsts: 100_000})
	for name, body := range map[string]any{
		"bad_model":     client.RunRequest{Benchmark: "gzip", Model: "quantum"},
		"bad_benchmark": client.RunRequest{Benchmark: "nope", Model: client.ModelSAMIE},
		"insts_cap":     client.RunRequest{Benchmark: "gzip", Model: client.ModelSAMIE, Insts: 1_000_000},
		"warmup_cap":    client.RunRequest{Benchmark: "gzip", Model: client.ModelSAMIE, Insts: 1, Warmup: 1 << 60},
		"bad_samie_cfg": client.RunRequest{Benchmark: "gzip", Model: client.ModelSAMIE, SAMIE: &core.Config{}},
		"huge_samie": client.RunRequest{Benchmark: "gzip", Model: client.ModelSAMIE, Insts: 1,
			SAMIE: &core.Config{Banks: 1 << 30, EntriesPerBank: 1, SlotsPerEntry: 1, AddrBufferSlots: 1, LineBytes: 32}},
		"neg_conv": client.RunRequest{Benchmark: "gzip", Model: client.ModelConventional, ConvEntries: -1},
		"not_json": "}{",
	} {
		resp := postJSON(t, ts.URL+"/v1/runs", body)
		er := decodeBody[client.ErrorResponse](t, resp)
		if resp.StatusCode != http.StatusBadRequest || er.Error == "" {
			t.Errorf("%s: status %d, error %q; want 400 with message", name, resp.StatusCode, er.Error)
		}
	}
}

func TestFigureEndpointMatchesLibrary(t *testing.T) {
	_, ts, batch := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/figures/56?bench=gzip&insts=" + strconv.Itoa(testInsts))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	out := decodeBody[client.FigureResponse](t, resp)
	want := batch.Figure56([]string{"gzip"}, testInsts).String()
	if out.Text != want {
		t.Errorf("figure text differs from library harness\nserver:\n%s\nlibrary:\n%s", out.Text, want)
	}
	var parsed experiments.Figure56Result
	if err := json.Unmarshal(out.Result, &parsed); err != nil || len(parsed.Rows) != 1 {
		t.Errorf("structured result unusable: %v %+v", err, parsed)
	}

	if resp, _ := http.Get(ts.URL + "/v1/figures/99"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown figure gave %d, want 404", resp.StatusCode)
	}
	if resp, _ := http.Get(ts.URL + "/v1/figures/56?bench=nope"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown benchmark gave %d, want 400", resp.StatusCode)
	}
}

func TestScenarioEndpoints(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	infos := decodeBody[[]client.ScenarioInfo](t, resp)
	if len(infos) < 8 {
		t.Fatalf("only %d scenarios listed", len(infos))
	}
	for _, info := range infos {
		if info.Name == "" || len(info.Variants) == 0 {
			t.Fatalf("malformed scenario info: %+v", info)
		}
	}

	run := postJSON(t, ts.URL+"/v1/scenarios/shared-lsq-sizes/run",
		client.ScenarioRunRequest{Benchmarks: []string{"gzip"}, Insts: testInsts})
	if run.StatusCode != http.StatusOK {
		t.Fatalf("status %d", run.StatusCode)
	}
	out := decodeBody[client.ScenarioRunResponse](t, run)
	if len(out.Result.IPC) != 1 || len(out.Result.IPC[0]) != 5 {
		t.Fatalf("sweep shape %dx%d, want 1x5", len(out.Result.IPC), len(out.Result.Variants))
	}
	if !strings.Contains(out.Text, "geomean") {
		t.Error("rendered sweep lost the geomean row")
	}

	if resp := postJSON(t, ts.URL+"/v1/scenarios/no-such/run", client.ScenarioRunRequest{}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown scenario gave %d, want 404", resp.StatusCode)
	}

	// Falsy stream values mean "don't stream", per the documented
	// ?stream=1 contract (the cells above are already memoized, so this
	// re-request is cheap).
	run0 := postJSON(t, ts.URL+"/v1/scenarios/shared-lsq-sizes/run?stream=0",
		client.ScenarioRunRequest{Benchmarks: []string{"gzip"}, Insts: testInsts})
	if ct := run0.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("stream=0 answered %q, want plain application/json", ct)
	}
	if out0 := decodeBody[client.ScenarioRunResponse](t, run0); len(out0.Result.IPC) != 1 {
		t.Errorf("stream=0 lost the single-JSON response shape: %+v", out0)
	}
}

func TestScenarioStreaming(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	body, _ := json.Marshal(client.ScenarioRunRequest{Benchmarks: []string{"gzip"}, Insts: testInsts})
	resp, err := http.Post(ts.URL+"/v1/scenarios/distrib-banking/run?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var cells int
	var final *client.ScenarioEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		var ev client.ScenarioEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "cell":
			cells++
			if ev.Benchmark != "gzip" || ev.Variant == "" || ev.IPC <= 0 || ev.Total != 3 {
				t.Fatalf("malformed cell event: %+v", ev)
			}
			if final != nil {
				t.Fatal("cell event after the result event")
			}
		case "result":
			final = &ev
		default:
			t.Fatalf("unexpected event type %q", ev.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if cells != 3 {
		t.Fatalf("saw %d cell events, want 3 (distrib-banking variants)", cells)
	}
	if final == nil || final.Result == nil || len(final.Result.IPC) != 1 {
		t.Fatalf("missing or malformed final result: %+v", final)
	}
	// The streamed sweep must agree with the library harness.
	direct, err := experiments.RunScenario("distrib-banking", []string{"gzip"}, testInsts)
	if err != nil {
		t.Fatal(err)
	}
	for vi := range direct.IPC[0] {
		if final.Result.IPC[0][vi] != direct.IPC[0][vi] {
			t.Fatalf("streamed IPC[0][%d]=%v differs from library %v", vi, final.Result.IPC[0][vi], direct.IPC[0][vi])
		}
	}
}

func TestSaturationSheds429(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{MaxConcurrent: 1})
	// Hold the admission semaphore's only slot, as an admitted slow
	// request would.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	resp := postJSON(t, ts.URL+"/v1/runs", client.RunRequest{Benchmark: "gzip", Model: client.ModelSAMIE})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs <= 0 {
		t.Errorf("bad Retry-After %q", ra)
	}
	er := decodeBody[client.ErrorResponse](t, resp)
	if !strings.Contains(er.Error, "saturated") {
		t.Errorf("error %q does not explain the shed", er.Error)
	}
	// Cheap endpoints stay reachable while saturated.
	if hr, err := http.Get(ts.URL + "/healthz"); err != nil || hr.StatusCode != http.StatusOK {
		t.Errorf("healthz unavailable under saturation: %v %v", hr, err)
	}
	if st := s.statsSnapshot(); st.Throttled != 1 {
		t.Errorf("throttled count %d, want 1", st.Throttled)
	}
}

func TestRequestTimeoutCancelsQueuedRun(t *testing.T) {
	batch := experiments.NewBatch(1)
	_, ts, _ := newTestServer(t, Config{Batch: batch, RequestTimeout: 30 * time.Millisecond})

	// Occupy the single worker slot with a long simulation submitted
	// directly to the batch.
	hog := make(chan struct{})
	go func() {
		defer close(hog)
		batch.Run(experiments.RunSpec{Benchmark: "swim", Insts: 400_000, Model: experiments.ModelSAMIE})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for batch.Stats().Inflight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("hog simulation never started")
		}
		time.Sleep(time.Millisecond)
	}

	// This request queues behind the hog and must be withdrawn by its
	// deadline with 504, not leak a worker slot.
	resp := postJSON(t, ts.URL+"/v1/runs", client.RunRequest{Benchmark: "gzip", Model: client.ModelSAMIE})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	er := decodeBody[client.ErrorResponse](t, resp)
	if !strings.Contains(er.Error, "abandoned") {
		t.Errorf("error %q does not explain the cancellation", er.Error)
	}
	if st := batch.Stats(); st.Canceled == 0 {
		t.Errorf("engine never recorded the cancellation: %+v", st)
	}
	<-hog
}

// TestRequestTimeoutCancelsQueuedFigure verifies the figure endpoints
// honor the request deadline: queued simulations are withdrawn (no
// background work survives the 504) instead of running to completion
// in an untracked goroutine.
func TestRequestTimeoutCancelsQueuedFigure(t *testing.T) {
	batch := experiments.NewBatch(1)
	_, ts, _ := newTestServer(t, Config{Batch: batch, RequestTimeout: 30 * time.Millisecond})

	// Occupy the single worker slot so the figure's simulations queue.
	hog := make(chan struct{})
	go func() {
		defer close(hog)
		batch.Run(experiments.RunSpec{Benchmark: "swim", Insts: 400_000, Model: experiments.ModelSAMIE})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for batch.Stats().Inflight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("hog simulation never started")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/v1/figures/56?bench=gzip&insts=" + strconv.Itoa(testInsts))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	er := decodeBody[client.ErrorResponse](t, resp)
	if !strings.Contains(er.Error, "figure 56") {
		t.Errorf("error %q does not name the figure", er.Error)
	}
	if st := batch.Stats(); st.Canceled == 0 {
		t.Errorf("engine never recorded the figure cancellation: %+v", st)
	}
	// Nothing but the hog may execute: the timed-out figure's queued
	// simulations were withdrawn, not left running in the background.
	<-hog
	if st := batch.Stats(); st.Executed != 1 {
		t.Errorf("abandoned figure work executed anyway: %+v", st)
	}
}

// TestRecoveryInsideLogging verifies the middleware order Handler()
// uses: a panic becomes a 500 inside the logging wrapper, so the
// request still produces a log line and counts toward the served
// total instead of vanishing from monitoring.
func TestRecoveryInsideLogging(t *testing.T) {
	var buf bytes.Buffer
	s, err := New(Config{
		Batch:  experiments.NewBatch(1),
		Logger: slog.New(slog.NewTextHandler(&buf, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	h := s.withLogging(s.withRecovery(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	})))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/panicking", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if got := s.served.Load(); got != 1 {
		t.Errorf("served count %d, want 1: panicking request escaped accounting", got)
	}
	log := buf.String()
	if !strings.Contains(log, "status=500") || !strings.Contains(log, "/panicking") {
		t.Errorf("request log missing the panicking request:\n%s", log)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/runs", client.RunRequest{Benchmark: "gzip", Model: client.ModelSAMIE}).Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	values := map[string]float64{}
	families := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("unparseable metric line %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("non-numeric metric value in %q", line)
		}
		values[fields[0]] = v
		name, _, _ := strings.Cut(fields[0], "{")
		families[name] = true
	}
	for _, want := range []string{
		"samie_engine_requests_total", "samie_engine_executed_total", "samie_engine_hits_total",
		"samie_engine_inflight", "samie_disk_cache_hits_total", "samie_disk_cache_misses_total",
		"samie_http_requests_total", "samie_http_throttled_total", "samie_process_goroutines",
		"samie_uptime_seconds", "samie_build_info", "samie_http_request_seconds_bucket",
		"samie_run_phase_seconds_bucket",
	} {
		if !families[want] {
			t.Errorf("metric family %s missing", want)
		}
	}
	if values["samie_engine_executed_total"] != 1 {
		t.Errorf("executed metric %v, want 1", values["samie_engine_executed_total"])
	}
	// The run request landed on POST /v1/runs with a 200; the labeled
	// counter must say so.
	if v := values[`samie_http_requests_total{route="/v1/runs",code="200"}`]; v != 1 {
		t.Errorf("labeled run counter %v, want 1", v)
	}
	// The executed run must have observed the simulation phases.
	if v := values[`samie_run_phase_seconds_count{phase="measured"}`]; v != 1 {
		t.Errorf("measured phase count %v, want 1", v)
	}
}

func TestStatsEndpoint(t *testing.T) {
	dir := t.TempDir()
	batch, err := experiments.NewBatchWithCache(2, dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts, _ := newTestServer(t, Config{Batch: batch, CacheDir: dir})
	postJSON(t, ts.URL+"/v1/runs", client.RunRequest{Benchmark: "gzip", Model: client.ModelSAMIE}).Body.Close()

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	st := decodeBody[client.StatsResponse](t, resp)
	if st.Engine.Executed != 1 || st.Workers != 2 || st.CacheDir != dir {
		t.Fatalf("stats implausible: %+v", st)
	}
	if st.Disk.Writes != 1 {
		t.Fatalf("disk write not reported: %+v", st.Disk)
	}
	if st.UptimeSeconds <= 0 || st.Goroutines <= 0 {
		t.Fatalf("process gauges missing: %+v", st)
	}
}

// TestClientAgainstServer exercises the typed client end to end against
// a live handler: runs, figures, scenario streaming, stats, health,
// metrics, and throttling errors.
func TestClientAgainstServer(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{})
	c := client.New(ts.URL)
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}
	run, err := c.Run(ctx, client.RunRequest{Benchmark: "gzip", Model: client.ModelConventional})
	if err != nil || run.CPU.IPC <= 0 {
		t.Fatalf("run: %+v, %v", run, err)
	}
	if run.LSQEnergyNJ <= 0 {
		t.Errorf("conventional run carries no LSQ energy: %+v", run)
	}
	fig, err := c.Figure(ctx, "3", []string{"gzip"}, testInsts)
	if err != nil || !strings.Contains(fig.Text, "Figure 3") {
		t.Fatalf("figure: %v, %q", err, fig.Text)
	}
	infos, err := c.Scenarios(ctx)
	if err != nil || len(infos) < 8 {
		t.Fatalf("scenarios: %d, %v", len(infos), err)
	}
	var events int
	sw, err := c.RunScenario(ctx, "distrib-banking",
		client.ScenarioRunRequest{Benchmarks: []string{"gzip"}, Insts: testInsts},
		func(ev client.ScenarioEvent) { events++ })
	if err != nil || len(sw.Result.IPC) != 1 {
		t.Fatalf("scenario stream: %v", err)
	}
	if events != 4 { // 3 cells + 1 result
		t.Errorf("observed %d events, want 4", events)
	}
	stats, err := c.Stats(ctx)
	if err != nil || stats.Engine.Requests == 0 {
		t.Fatalf("stats: %+v, %v", stats, err)
	}
	if txt, err := c.Metrics(ctx); err != nil || !strings.Contains(txt, "samie_engine_requests_total") {
		t.Fatalf("metrics: %v", err)
	}

	// Errors surface as typed APIErrors.
	if _, err := c.Run(ctx, client.RunRequest{Benchmark: "gzip", Model: "bogus"}); err == nil {
		t.Fatal("bad model accepted")
	} else if ae, ok := err.(*client.APIError); !ok || ae.Status != http.StatusBadRequest {
		t.Fatalf("want *APIError 400, got %v", err)
	}
	for i := 0; i < cap(s.sem); i++ {
		s.sem <- struct{}{}
	}
	_, err = c.Run(ctx, client.RunRequest{Benchmark: "gzip", Model: client.ModelSAMIE})
	for i := 0; i < cap(s.sem); i++ {
		<-s.sem
	}
	if !client.IsThrottled(err) {
		t.Fatalf("saturation error not recognized: %v", err)
	}
	if ae := err.(*client.APIError); ae.RetryAfter <= 0 {
		t.Errorf("throttle error lost Retry-After: %+v", ae)
	}
}

func TestRunProbeEndpoint(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{})
	c := client.New(ts.URL)
	ctx := context.Background()

	spec := experiments.RunSpec{Benchmark: "gzip", Insts: testInsts, Model: experiments.ModelSAMIE}
	key := experiments.Key(spec)

	// Probing before anything ran is a miss — and must not simulate.
	if _, ok, err := c.ProbeRun(ctx, key); err != nil || ok {
		t.Fatalf("probe before run = ok=%v err=%v, want miss", ok, err)
	}

	ran, err := c.Run(ctx, client.RunRequest{Benchmark: "gzip", Model: client.ModelSAMIE, Insts: testInsts})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Key != key {
		t.Fatalf("run key %q differs from library key %q", ran.Key, key)
	}
	got, ok, err := c.ProbeRun(ctx, key)
	if err != nil || !ok {
		t.Fatalf("probe after run = ok=%v err=%v, want hit", ok, err)
	}
	if got.Key != key || got.CPU != ran.CPU || got.Benchmark != "gzip" {
		t.Errorf("probe payload differs from the run response: %+v vs %+v", got, ran)
	}
	if s.probeHits.Load() != 1 || s.probeMisses.Load() != 1 {
		t.Errorf("probe counters hits=%d misses=%d, want 1 and 1",
			s.probeHits.Load(), s.probeMisses.Load())
	}
	// The probe consumed no engine requests beyond the one real run.
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Engine.Requests != 1 || st.Engine.Executed != 1 {
		t.Errorf("probes distorted engine stats: %+v", st.Engine)
	}
	if st.ProbeHits != 1 || st.ProbeMisses != 1 {
		t.Errorf("/v1/stats probe counters %d/%d, want 1/1", st.ProbeHits, st.ProbeMisses)
	}
}

func TestRunProbeServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	warm, err := experiments.NewBatchWithCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := experiments.RunSpec{Benchmark: "gzip", Insts: testInsts, Model: experiments.ModelConventional}
	want := warm.Run(spec)
	if err := warm.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh server process over the same directory probes positive
	// without ever simulating: the artifact on disk is the answer.
	cold, err := experiments.NewBatchWithCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts, _ := newTestServer(t, Config{Batch: cold})
	got, ok, err := client.New(ts.URL).ProbeRun(context.Background(), experiments.Key(spec))
	if err != nil || !ok {
		t.Fatalf("disk probe = ok=%v err=%v, want hit", ok, err)
	}
	if got.CPU != want.CPU {
		t.Errorf("disk-probed CPU result differs")
	}
	if st := cold.Stats(); st.Executed != 0 {
		t.Errorf("probe executed %d simulations, want 0", st.Executed)
	}
}

func TestSuiteEndpointShard(t *testing.T) {
	s, ts, batch := newTestServer(t, Config{})
	c := client.New(ts.URL)
	ctx := context.Background()

	shard := client.SuiteRequest{Specs: []client.RunRequest{
		{Benchmark: "gzip", Model: client.ModelConventional, Insts: testInsts},
		{Benchmark: "gzip", Model: client.ModelSAMIE, Insts: testInsts},
	}}

	// Streaming: one run event per spec, then the final result.
	var runs, results int
	resp, err := c.Suite(ctx, shard, func(ev client.SuiteEvent) {
		switch ev.Type {
		case "run":
			runs++
			if ev.Run == nil || ev.Run.Key == "" {
				t.Errorf("run event missing payload: %+v", ev)
			}
		case "result":
			results++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 2 || results != 1 {
		t.Errorf("saw %d run and %d result events, want 2 and 1", runs, results)
	}
	if resp.Total != 2 || len(resp.Runs) != 2 {
		t.Errorf("collected response %+v, want 2 runs", resp)
	}
	if st := batch.Stats(); st.Executed != 2 {
		t.Fatalf("shard executed %d simulations, want 2", st.Executed)
	}

	// Non-streaming replay of the same shard: everything is a cache
	// hit, the runs come back in spec order.
	again, err := c.Suite(ctx, shard, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Runs) != 2 || again.Runs[0].Model != client.ModelConventional {
		t.Errorf("non-streaming shard response wrong: %+v", again)
	}
	if st := batch.Stats(); st.Executed != 2 {
		t.Errorf("replayed shard re-executed: %+v", st)
	}
	if s.suiteSpecs.Load() != 4 {
		t.Errorf("suite spec counter %d, want 4", s.suiteSpecs.Load())
	}
}

func TestSuiteEndpointEnumerates(t *testing.T) {
	_, ts, batch := newTestServer(t, Config{})
	c := client.New(ts.URL)

	// An empty Specs list means "the whole suite for these benchmarks":
	// the server enumerates the same spec set the library plans with.
	resp, err := c.Suite(context.Background(),
		client.SuiteRequest{Benchmarks: []string{"gzip"}, Insts: testInsts}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := len(experiments.SuiteSpecs([]string{"gzip"}, testInsts))
	if resp.Total != want || len(resp.Runs) != want {
		t.Fatalf("suite executed %d/%d specs, want %d", resp.Total, len(resp.Runs), want)
	}
	if st := batch.Stats(); st.Executed != int64(want) {
		t.Errorf("engine executed %d, want %d", st.Executed, want)
	}
}

func TestSuiteEndpointValidation(t *testing.T) {
	_, ts, batch := newTestServer(t, Config{MaxInsts: 100_000})
	for name, req := range map[string]client.SuiteRequest{
		"bad_model":      {Specs: []client.RunRequest{{Benchmark: "gzip", Model: "bogus"}}},
		"bad_benchmark":  {Specs: []client.RunRequest{{Benchmark: "nope", Model: client.ModelSAMIE}}},
		"insts_over_cap": {Specs: []client.RunRequest{{Benchmark: "gzip", Model: client.ModelSAMIE, Insts: 1 << 40}}},
		"bad_suite_name": {Benchmarks: []string{"nope"}},
		"shard_over_cap": {Specs: make([]client.RunRequest, maxSuiteSpecs+1)},
	} {
		resp := postJSON(t, ts.URL+"/v1/suite", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if st := batch.Stats(); st.Requests != 0 {
		t.Errorf("invalid suite requests reached the engine: %+v", st)
	}
}

func TestScenarioDefaultBenchmarks(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	c := client.New(ts.URL)
	ctx := context.Background()

	// The adversarial scenario declares its own default rows; an empty
	// request must sweep exactly those, not the 26-program suite.
	infos, err := c.Scenarios(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, info := range infos {
		if info.Name == "adversarial" {
			found = true
			if len(info.Benchmarks) != 2 {
				t.Errorf("adversarial default rows = %v, want the 2 stress workloads", info.Benchmarks)
			}
		}
	}
	if !found {
		t.Fatal("adversarial scenario not registered")
	}
	res, err := c.RunScenario(ctx, "adversarial", client.ScenarioRunRequest{Insts: testInsts}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Benchmarks) != 2 ||
		res.Result.Benchmarks[0] != "pointer-chaser" || res.Result.Benchmarks[1] != "store-burst" {
		t.Fatalf("default rows = %v, want [pointer-chaser store-burst]", res.Result.Benchmarks)
	}
}
