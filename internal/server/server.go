// Package server is the HTTP simulation service over the shared-run
// Batch engine: many clients share one long-lived memoizing scheduler
// (plus its disk cache), so concurrent identical requests coalesce
// into a single simulation and repeated figure regenerations serve
// from a warm cache.
//
// The wire types live in pkg/client so the typed client can never
// drift from the service. Endpoints:
//
//	POST /v1/runs                   one RunSpec -> stats + energy
//	GET  /v1/runs/{key}             cache probe: 200 if memoized/on-disk, 404 otherwise
//	POST /v1/suite                  suite spec set (or an explicit shard); ?stream=1 for NDJSON per-run progress
//	GET  /v1/figures/{1,3,4,56,energy}
//	GET  /v1/scenarios              registry listing
//	POST /v1/scenarios/{name}/run   sweep; ?stream=1 for NDJSON progress
//	GET  /v1/stats                  engine/disk/process accounting
//	GET  /healthz                   liveness
//	GET  /metrics                   Prometheus text exposition
//
// Production shape: simulation-triggering endpoints sit behind a
// request-level semaphore (429 + Retry-After on saturation) in front
// of the engine's worker pool, every request carries a deadline that
// cancels queued (not-yet-shared) simulations when the client goes
// away, and all requests are logged structurally.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"samielsq/internal/experiments"
	"samielsq/internal/faultinject"
	"samielsq/internal/obs"
	"samielsq/internal/trace"
)

// Config assembles a Server.
type Config struct {
	// Batch is the shared simulation engine; required.
	Batch *experiments.Batch

	// Logger receives structured request and lifecycle logs; default
	// slog.Default().
	Logger *slog.Logger

	// MaxConcurrent bounds simultaneously-admitted simulation requests
	// (runs, figures, scenario sweeps). Saturation answers 429 with
	// Retry-After. Default: 4x the batch's worker count, so short
	// coalescing requests queue while the pool is busy instead of
	// bouncing.
	MaxConcurrent int

	// RequestTimeout caps one simulation request end to end; 0 means
	// no server-imposed deadline. A timed-out (or disconnected)
	// request withdraws its queued simulations; started ones finish
	// and stay memoized.
	RequestTimeout time.Duration

	// DefaultInsts is the instruction budget when a request omits it;
	// default experiments.DefaultInsts.
	DefaultInsts uint64

	// MaxInsts rejects requests above this per-run budget with 400;
	// 0 means unlimited.
	MaxInsts uint64

	// RetryAfter is the hint returned with 429; default 5s.
	RetryAfter time.Duration

	// CacheDir and Preloaded are reported by /v1/stats (informational;
	// the batch already owns the actual cache).
	CacheDir  string
	Preloaded int

	// Chaos is the initial fault-injection spec (the -chaos flag).
	// The zero spec starts with injection disabled; POST /v1/chaos
	// reconfigures it at runtime either way.
	Chaos faultinject.Spec

	// PeerAdopt, when non-nil, receives the sibling replica set a
	// cluster coordinator supplies with a shard (SuiteRequest.Peers,
	// this replica excluded) so the batch's tier-2 peer-fetch store
	// can track the fleet without static configuration. Called from
	// request handlers; implementations must be safe for concurrent
	// use. Never called with an empty list.
	PeerAdopt func(peers []string)

	// Recorder receives every request's spans and serves /v1/trace*.
	// Nil gets a fresh enabled recorder of the default ring size; a
	// disabled recorder turns tracing off (requests still adopt and
	// log incoming traceparent IDs, they just record nothing).
	Recorder *obs.Recorder
}

// Server is the HTTP simulation service; construct with New, expose
// with Handler.
type Server struct {
	cfg   Config
	batch *experiments.Batch
	log   *slog.Logger
	sem   chan struct{}
	start time.Time
	mux   *http.ServeMux
	chaos chaosState
	rec   *obs.Recorder
	httpm httpMetrics

	// drainCtx is canceled by BeginDrain: /healthz flips to 503 so load
	// balancers stop routing here, and in-flight NDJSON streams are
	// canceled so each emits a terminal error event while its
	// connection is still writable.
	drainCtx    context.Context
	drainCancel context.CancelFunc

	served      atomic.Int64 // requests completed, all endpoints
	throttled   atomic.Int64 // 429s issued
	inflight    atomic.Int64 // admitted simulation requests in flight
	probeHits   atomic.Int64 // GET /v1/runs/{key} found
	probeMisses atomic.Int64 // GET /v1/runs/{key} not cached
	suiteSpecs  atomic.Int64 // simulations requested via POST /v1/suite

	// mem is the cached runtime.MemStats sample: ReadMemStats stops
	// the world, so stats/metrics scrapes share one sample refreshed
	// at most once per second instead of paying it per hit.
	mem struct {
		sync.Mutex
		snap atomic.Pointer[memSample]
	}
}

// memSample is one cached ReadMemStats result.
type memSample struct {
	at   time.Time
	heap uint64
}

// heapBytes returns the heap-in-use gauge from the shared sample,
// refreshing it when older than a second.
func (s *Server) heapBytes() uint64 {
	if cur := s.mem.snap.Load(); cur != nil && time.Since(cur.at) < time.Second {
		return cur.heap
	}
	s.mem.Lock()
	defer s.mem.Unlock()
	// Re-check under the lock: a concurrent scrape may have refreshed.
	if cur := s.mem.snap.Load(); cur != nil && time.Since(cur.at) < time.Second {
		return cur.heap
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.mem.snap.Store(&memSample{at: time.Now(), heap: ms.HeapAlloc})
	return ms.HeapAlloc
}

// New validates the config and assembles the service routes.
func New(cfg Config) (*Server, error) {
	if cfg.Batch == nil {
		return nil, fmt.Errorf("server: Config.Batch is required")
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4 * cfg.Batch.Workers()
	}
	if cfg.DefaultInsts == 0 {
		cfg.DefaultInsts = experiments.DefaultInsts
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 5 * time.Second
	}
	if cfg.Recorder == nil {
		cfg.Recorder = obs.NewRecorder(obs.DefaultRingSize)
		cfg.Recorder.SetEnabled(true)
	}
	s := &Server{
		cfg:   cfg,
		batch: cfg.Batch,
		log:   cfg.Logger,
		sem:   make(chan struct{}, cfg.MaxConcurrent),
		start: time.Now(),
		mux:   http.NewServeMux(),
		rec:   cfg.Recorder,
	}
	s.httpm.init()
	s.drainCtx, s.drainCancel = context.WithCancel(context.Background())
	s.setChaos(cfg.Chaos)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/chaos", s.handleChaosGet)
	s.mux.HandleFunc("POST /v1/chaos", s.handleChaosSet)
	s.mux.HandleFunc("GET /v1/trace/{id}", s.handleTraceGet)
	s.mux.HandleFunc("GET /v1/traces", s.handleTraces)
	s.mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	// The cache probe never simulates, so it bypasses the admission
	// semaphore like the other cheap read-only endpoints; the timeline
	// fetch reads the same cache and is just as cheap.
	s.mux.HandleFunc("GET /v1/runs/{key}", s.handleRunProbe)
	s.mux.HandleFunc("GET /v1/runs/{key}/timeline", s.handleRunTimeline)
	s.mux.Handle("POST /v1/runs", s.heavy(s.handleRun))
	s.mux.Handle("POST /v1/suite", s.heavy(s.handleSuite))
	s.mux.Handle("GET /v1/figures/{name}", s.heavy(s.handleFigure))
	s.mux.Handle("POST /v1/scenarios/{name}/run", s.heavy(s.handleScenarioRun))
	return s, nil
}

// Handler returns the full middleware-wrapped service handler.
// Recovery sits inside logging so a panicking request is converted to
// a 500 before the log line and served counter are emitted — a panic
// must not produce client-visible 500s that monitoring never sees.
// Chaos sits between them: injected faults show up in the request log
// like real ones, and a fault never bypasses recovery for the
// requests it lets through.
func (s *Server) Handler() http.Handler {
	return s.withLogging(s.withChaos(s.withRecovery(s.mux)))
}

// errDraining is the cause attached to stream contexts when the
// process enters its shutdown drain: the stream cannot complete, the
// client should re-request the undelivered work elsewhere.
var errDraining = errors.New("server draining: stream aborted, re-request undelivered work")

// BeginDrain flips the server into drain mode ahead of listener
// shutdown: /healthz starts answering 503 (so orchestrators stop
// routing new work here) and every in-flight NDJSON stream is canceled,
// letting its handler deliver a terminal error event over the
// still-open connection instead of vanishing mid-body. Idempotent;
// there is no way back — a draining process is on its way out.
func (s *Server) BeginDrain() {
	s.drainCancel()
}

// draining reports whether BeginDrain has been called.
func (s *Server) draining() bool {
	return s.drainCtx.Err() != nil
}

// drainAware derives a stream's working context: canceled when the
// client goes away (parent) or when the server begins draining, with
// errDraining as the cause so the handler can tell the two apart.
func (s *Server) drainAware(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancelCause(parent)
	stop := context.AfterFunc(s.drainCtx, func() { cancel(errDraining) })
	return ctx, func() { stop(); cancel(nil) }
}

// capInsts applies the server's default instruction budget and the
// -max-insts cap to one requested budget.
func (s *Server) capInsts(insts uint64) (uint64, error) {
	if insts == 0 {
		insts = s.cfg.DefaultInsts
	}
	if s.cfg.MaxInsts > 0 && insts > s.cfg.MaxInsts {
		return 0, fmt.Errorf("insts %d exceeds the server cap %d", insts, s.cfg.MaxInsts)
	}
	return insts, nil
}

// maxConfigDim bounds every client-supplied structure size or width.
// Simulated structures allocate — and per-cycle loops iterate —
// proportionally to these dimensions, so a tiny-insts request must
// not smuggle in an enormous machine; 1<<20 is ~1000x the paper
// configuration while still bounding one run's footprint.
const maxConfigDim = 1 << 20

// validSpec vets a normalized spec at the API boundary. The simulator
// constructors panic on malformed configurations — which would
// surface as a 500 from a worker and stay memoized under the spec's
// key — and an oversized geometry would allocate its structures
// inside the shared process, so both are a clean 400 instead.
func validSpec(n experiments.RunSpec) error {
	if err := n.CPU.Validate(); err != nil {
		return err
	}
	var err error
	dim := func(name string, v int) {
		if err == nil && v > maxConfigDim {
			err = fmt.Errorf("%s %d exceeds the server cap %d", name, v, maxConfigDim)
		}
	}
	dim("cpu.FetchWidth", n.CPU.FetchWidth)
	dim("cpu.DecodeWidth", n.CPU.DecodeWidth)
	dim("cpu.IssueInt", n.CPU.IssueInt)
	dim("cpu.IssueFP", n.CPU.IssueFP)
	dim("cpu.CommitWidth", n.CPU.CommitWidth)
	dim("cpu.FetchQueue", n.CPU.FetchQueue)
	dim("cpu.ROBSize", n.CPU.ROBSize)
	dim("cpu.IQInt", n.CPU.IQInt)
	dim("cpu.IQFP", n.CPU.IQFP)
	dim("cpu.IntALU", n.CPU.IntALU)
	dim("cpu.IntMulDiv", n.CPU.IntMulDiv)
	dim("cpu.FPALU", n.CPU.FPALU)
	dim("cpu.FPMulDiv", n.CPU.FPMulDiv)
	dim("cpu.DcachePorts", n.CPU.DcachePorts)
	dim("cpu.MispredictPenalty", n.CPU.MispredictPenalty)
	dim("cpu.DeadlockPatience", n.CPU.DeadlockPatience)
	switch n.Model {
	case experiments.ModelConventional:
		if n.ConvEntries <= 0 {
			return fmt.Errorf("conv_entries must be positive")
		}
		dim("conv_entries", n.ConvEntries)
	case experiments.ModelARB:
		if n.ARBBanks <= 0 || n.ARBAddrs <= 0 || n.ARBInflight <= 0 {
			return fmt.Errorf("arb_banks, arb_addrs and arb_inflight must be positive")
		}
		dim("arb_banks", n.ARBBanks)
		dim("arb_addrs", n.ARBAddrs)
		dim("arb_inflight", n.ARBInflight)
		if tot := int64(n.ARBBanks) * int64(n.ARBAddrs); err == nil && tot > maxConfigDim {
			err = fmt.Errorf("arb_banks*arb_addrs %d exceeds the server cap %d", tot, maxConfigDim)
		}
	case experiments.ModelSAMIE:
		if verr := n.SAMIE.Validate(); verr != nil {
			return verr
		}
		dim("samie.Banks", n.SAMIE.Banks)
		dim("samie.EntriesPerBank", n.SAMIE.EntriesPerBank)
		dim("samie.SlotsPerEntry", n.SAMIE.SlotsPerEntry)
		dim("samie.SharedEntries", n.SAMIE.SharedEntries)
		dim("samie.AddrBufferSlots", n.SAMIE.AddrBufferSlots)
		dim("samie.LineBytes", n.SAMIE.LineBytes)
		// int64 keeps the product exact even on 32-bit int: the
		// per-dimension caps bound it below 2^60.
		if tot := int64(n.SAMIE.Banks) * int64(n.SAMIE.EntriesPerBank) * int64(n.SAMIE.SlotsPerEntry); err == nil && tot > maxConfigDim {
			err = fmt.Errorf("samie DistribLSQ slots %d (Banks*EntriesPerBank*SlotsPerEntry) exceeds the server cap %d",
				tot, maxConfigDim)
		}
	}
	return err
}

// validBenchmarks checks every requested benchmark resolves to a
// workload personality, returning the validated list (nil input means
// the full suite).
func validBenchmarks(names []string) ([]string, error) {
	if len(names) == 0 {
		return experiments.Benchmarks(), nil
	}
	for _, n := range names {
		if _, err := trace.Personality(n); err != nil {
			return nil, fmt.Errorf("unknown benchmark %q", n)
		}
	}
	return names, nil
}
