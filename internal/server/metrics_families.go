package server

// metricFamilies is the authoritative list of every metric family the
// /metrics exposition renders. Three consumers keep each other
// honest: handleMetrics (which must render exactly these), the
// exposition test (which asserts every listed family appears in a
// fully populated server and nothing unlisted does), and the
// promnames analyzer in internal/lint (which statically diffs this
// list against the families the code registers, so adding or renaming
// a metric without updating the registry fails `samie-lint ./...`).
var metricFamilies = []string{
	"samie_build_info",
	"samie_chaos_injected_total",
	"samie_disk_cache_hits_total",
	"samie_disk_cache_misses_total",
	"samie_disk_cache_writes_total",
	"samie_energy_joules_total",
	"samie_engine_canceled_total",
	"samie_engine_distinct_runs",
	"samie_engine_evictions_total",
	"samie_engine_executed_total",
	"samie_engine_hits_total",
	"samie_engine_inflight",
	"samie_engine_queue_depth",
	"samie_engine_requests_total",
	"samie_engine_workers",
	"samie_http_inflight",
	"samie_http_max_concurrent",
	"samie_http_probe_hits_total",
	"samie_http_probe_misses_total",
	"samie_http_request_seconds",
	"samie_http_requests_total",
	"samie_http_suite_specs_total",
	"samie_http_throttled_total",
	"samie_lsq_occupancy",
	"samie_preloaded_runs",
	"samie_process_goroutines",
	"samie_process_heap_bytes",
	"samie_run_phase_seconds",
	"samie_store_hits_total",
	"samie_store_misses_total",
	"samie_store_peer_fetch_seconds",
	"samie_store_peer_installs_total",
	"samie_trace_spans_dropped_total",
	"samie_uptime_seconds",
}
