package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"samielsq/internal/obs"
	"samielsq/pkg/client"
)

// TestRunTimelineOptInAndEndpoint: the run response carries interval
// telemetry only when the request asked for it, and the NDJSON
// endpoint streams the cached run's samples (meta line first).
func TestRunTimelineOptInAndEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})

	// Without the opt-in the payload stays lean.
	resp := postJSON(t, ts.URL+"/v1/runs", client.RunRequest{Benchmark: "gzip", Model: client.ModelSAMIE})
	lean := decodeBody[client.RunResponse](t, resp)
	if lean.Timeline != nil {
		t.Fatal("timeline attached without opt-in")
	}

	// Opted in: same simulation (memoized), now with the timeline.
	resp = postJSON(t, ts.URL+"/v1/runs", client.RunRequest{Benchmark: "gzip", Model: client.ModelSAMIE, Timeline: true})
	full := decodeBody[client.RunResponse](t, resp)
	if full.Key != lean.Key || full.CPU != lean.CPU {
		t.Fatal("timeline opt-in changed the run identity or result")
	}
	if full.Timeline == nil || len(full.Timeline.Samples) == 0 {
		t.Fatal("opted-in response carries no timeline")
	}

	// The NDJSON endpoint serves the same samples.
	httpResp, err := http.Get(ts.URL + "/v1/runs/" + full.Key + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("timeline endpoint status %d", httpResp.StatusCode)
	}
	if ct := httpResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(httpResp.Body)
	if !sc.Scan() {
		t.Fatal("empty NDJSON body")
	}
	var meta struct {
		Key     string `json:"key"`
		Stride  uint64 `json:"stride"`
		Samples int    `json:"samples"`
	}
	if err := json.Unmarshal(sc.Bytes(), &meta); err != nil {
		t.Fatalf("meta line: %v", err)
	}
	if meta.Key != full.Key || meta.Stride != full.Timeline.Stride || meta.Samples != len(full.Timeline.Samples) {
		t.Fatalf("meta %+v disagrees with the run response (stride %d, %d samples)",
			meta, full.Timeline.Stride, len(full.Timeline.Samples))
	}
	var samples []obs.TimelineSample
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var s obs.TimelineSample
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("sample line: %v", err)
		}
		samples = append(samples, s)
	}
	if len(samples) != len(full.Timeline.Samples) || samples[0] != full.Timeline.Samples[0] {
		t.Fatalf("NDJSON samples disagree with the run response: %d vs %d", len(samples), len(full.Timeline.Samples))
	}

	// Unknown keys 404.
	httpResp, err = http.Get(ts.URL + "/v1/runs/nope/timeline")
	if err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown key status %d, want 404", httpResp.StatusCode)
	}
}

// TestClientTimelineRoundTrip drives the typed client against the
// NDJSON endpoint.
func TestClientTimelineRoundTrip(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	cl := client.New(ts.URL)

	res, err := cl.Run(t.Context(), client.RunRequest{Benchmark: "gzip", Model: client.ModelSAMIE, Timeline: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline == nil {
		t.Fatal("client run response lost the timeline")
	}

	tl, ok, err := cl.Timeline(t.Context(), res.Key)
	if err != nil || !ok {
		t.Fatalf("Timeline(%q) = ok=%v err=%v", res.Key, ok, err)
	}
	if tl.Stride != res.Timeline.Stride || len(tl.Samples) != len(res.Timeline.Samples) {
		t.Fatalf("client timeline disagrees: stride %d/%d, samples %d/%d",
			tl.Stride, res.Timeline.Stride, len(tl.Samples), len(res.Timeline.Samples))
	}

	// A key the server never simulated is a clean miss, not an error.
	_, ok, err = cl.Timeline(t.Context(), "missing-key")
	if err != nil || ok {
		t.Fatalf("missing key: ok=%v err=%v, want miss without error", ok, err)
	}
}
