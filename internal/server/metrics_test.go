package server

import (
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"samielsq/internal/experiments"
	"samielsq/pkg/client"
)

// expoSample is one parsed exposition sample: series name, ordered
// label block, numeric value.
type expoSample struct {
	name   string
	labels map[string]string
	value  float64
}

var (
	expoSampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)
	// One label pair: value chars are anything except raw backslash,
	// quote or newline, or one of the three legal escapes.
	expoLabelRE = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\\\|\\"|\\n)*)"(,|$)`)
)

// parseExposition validates and parses a Prometheus text-format body:
// every sample line must parse, every label block must consist of
// correctly escaped pairs, and every sample's family must have emitted
// its # HELP and # TYPE metadata earlier in the stream.
func parseExposition(t *testing.T, body string) ([]expoSample, map[string]string) {
	t.Helper()
	help := map[string]bool{}
	kinds := map[string]string{}
	var samples []expoSample
	for _, line := range strings.Split(body, "\n") {
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(line[len("# HELP "):], " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Fatalf("HELP line without text: %q", line)
			}
			help[parts[0]] = true
			continue
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(line[len("# TYPE "):])
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("unknown metric kind in %q", line)
			}
			kinds[parts[0]] = parts[1]
			continue
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unrecognized comment line %q", line)
		}
		m := expoSampleRE.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line %q", line)
		}
		labels := map[string]string{}
		for rest := m[3]; rest != ""; {
			lm := expoLabelRE.FindStringSubmatch(rest)
			if lm == nil {
				t.Fatalf("malformed label block in %q (at %q)", line, rest)
			}
			labels[lm[1]] = lm[2]
			rest = rest[len(lm[0]):]
		}
		v, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			t.Fatalf("non-numeric value in %q", line)
		}
		// Metadata must precede samples, per family. Histogram series
		// names carry _bucket/_sum/_count suffixes off the family name.
		family := m[1]
		if !help[family] {
			base := family
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if s, ok := strings.CutSuffix(family, suf); ok {
					base = s
					break
				}
			}
			if !help[base] || kinds[base] != "histogram" {
				t.Fatalf("sample %q has no preceding # HELP/# TYPE metadata", line)
			}
		}
		samples = append(samples, expoSample{name: m[1], labels: labels, value: v})
	}
	return samples, kinds
}

// histKey identifies one histogram series: family plus its label block
// minus le, serialized in sorted order.
func histKey(family string, labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(family)
	for _, k := range keys {
		sb.WriteString("|" + k + "=" + labels[k])
	}
	return sb.String()
}

// TestMetricsExpositionWellFormed populates every metric source — an
// executed run against a disk-backed batch (engine, store tiers and
// phase histograms), a 404 and a chaos-injected 500 (labeled HTTP
// counters, chaos counters) — then validates the whole /metrics body:
// metadata before samples for every family, cumulative histogram
// buckets ending at +Inf with the +Inf bucket equal to _count, and
// every label block correctly escaped.
func TestMetricsExpositionWellFormed(t *testing.T) {
	dir := t.TempDir()
	batch, err := experiments.NewBatchWithCache(2, dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts, _ := newTestServer(t, Config{Batch: batch, CacheDir: dir})

	// Populate: one simulated run (engine + disk store + phases + a
	// 200), one unknown route (404), then a chaos-injected error on a
	// real route (chaos counter + 500) before switching injection off.
	postJSON(t, ts.URL+"/v1/runs", client.RunRequest{Benchmark: "gzip", Model: client.ModelSAMIE}).Body.Close()
	resp, err := http.Get(ts.URL + "/no-such-route")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	postJSON(t, ts.URL+"/v1/chaos", client.ChaosRequest{Spec: "err=1,seed=1"}).Body.Close()
	if resp, err = http.Get(ts.URL + "/v1/scenarios"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("chaos-injected request returned %d, want 500", resp.StatusCode)
	}
	postJSON(t, ts.URL+"/v1/chaos", client.ChaosRequest{Spec: ""}).Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, kinds := parseExposition(t, string(data))

	// Every histogram family: buckets cumulative (non-decreasing in
	// emission order), last bucket le="+Inf", +Inf bucket == _count.
	type histState struct {
		lastBucket float64
		lastLe     string
		count      *float64
		buckets    int
	}
	hists := map[string]*histState{}
	get := func(family string, labels map[string]string) *histState {
		k := histKey(family, labels)
		if hists[k] == nil {
			hists[k] = &histState{}
		}
		return hists[k]
	}
	values := map[string]float64{}
	for _, s := range samples {
		if base, ok := strings.CutSuffix(s.name, "_bucket"); ok && kinds[base] == "histogram" {
			h := get(base, s.labels)
			le, ok := s.labels["le"]
			if !ok {
				t.Fatalf("histogram bucket %s without le label", s.name)
			}
			if s.value < h.lastBucket {
				t.Errorf("%s: bucket le=%q value %g below preceding bucket %g (not cumulative)",
					base, le, s.value, h.lastBucket)
			}
			h.lastBucket, h.lastLe = s.value, le
			h.buckets++
			continue
		}
		if base, ok := strings.CutSuffix(s.name, "_count"); ok && kinds[base] == "histogram" {
			v := s.value
			get(base, s.labels).count = &v
		}
		// Flat key for the spot checks below.
		k := s.name
		if len(s.labels) > 0 {
			pairs := make([]string, 0, len(s.labels))
			for name, val := range s.labels {
				pairs = append(pairs, name+"="+val)
			}
			sort.Strings(pairs)
			k += "{" + strings.Join(pairs, ",") + "}"
		}
		values[k] = s.value
	}
	for k, h := range hists {
		if h.buckets == 0 {
			continue
		}
		if h.lastLe != "+Inf" {
			t.Errorf("histogram %s: last bucket le=%q, want +Inf", k, h.lastLe)
		}
		if h.count == nil {
			t.Errorf("histogram %s: no _count sample", k)
		} else if *h.count != h.lastBucket {
			t.Errorf("histogram %s: +Inf bucket %g != count %g", k, h.lastBucket, *h.count)
		}
	}

	// Spot-check that the populated sources actually showed up, so the
	// structural assertions above ran against live series.
	for key, min := range map[string]float64{
		`samie_http_requests_total{code=200,route=/v1/runs}`:      1,
		`samie_http_requests_total{code=404,route=other}`:         1,
		`samie_http_requests_total{code=500,route=/v1/scenarios}`: 1,
		`samie_chaos_injected_total{kind=error}`:                  1,
		`samie_run_phase_seconds_count{phase=measured}`:           1,
		`samie_run_phase_seconds_count{phase=persist}`:            1,
		`samie_store_misses_total{tier=disk}`:                     1,
		// Interval-telemetry rollups from the simulated run.
		`samie_lsq_occupancy{benchmark=gzip,stat=peak}`: 1,
		`samie_energy_joules_total{structure=dcache}`:   1e-18,
	} {
		if values[key] < min {
			t.Errorf("%s = %g, want >= %g", key, values[key], min)
		}
	}
	if h := hists[histKey("samie_run_phase_seconds", map[string]string{"phase": "peer_tier"})]; h == nil || h.buckets == 0 {
		t.Error("untouched phase did not render its all-zero series")
	}
	// The new gauges and counters are present unconditionally (zero
	// when nothing was queued or dropped).
	for _, family := range []string{"samie_engine_queue_depth", "samie_trace_spans_dropped_total"} {
		if _, ok := values[family]; !ok {
			t.Errorf("metric family %s missing from the exposition", family)
		}
	}

	// The rendered family set must equal the metricFamilies registry
	// exactly — the same list the promnames analyzer statically diffs
	// against the registration sites, so a new or renamed metric
	// cannot ship without updating both.
	unlisted := make(map[string]bool, len(kinds))
	for name := range kinds {
		unlisted[name] = true
	}
	for _, fam := range metricFamilies {
		if !unlisted[fam] {
			t.Errorf("metricFamilies lists %s but the populated exposition never rendered it", fam)
		}
		delete(unlisted, fam)
	}
	for name := range unlisted {
		t.Errorf("family %s rendered but missing from metricFamilies", name)
	}
}
