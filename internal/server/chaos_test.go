package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"samielsq/internal/faultinject"
	"samielsq/pkg/client"
)

// chaosClient is a plain client with transport retries disabled so
// tests observe injected faults directly instead of surviving them.
func chaosClient(base string) *client.Client {
	return client.New(base, client.WithTransportRetries(-1))
}

func TestChaosInjectsErrorsDeterministically(t *testing.T) {
	spec, err := faultinject.ParseSpec("err=0.3,throttle=0.2,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	// Two fresh servers with the same seed, driven by the same
	// sequential request sequence, must fire identical fault counts.
	outcomes := func() (st client.ChaosState, statuses []int) {
		_, ts, _ := newTestServer(t, Config{Chaos: spec})
		for i := 0; i < 60; i++ {
			resp, err := http.Get(ts.URL + "/v1/runs/nonexistent-key")
			if err != nil {
				t.Fatalf("probe %d: %v", i, err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses = append(statuses, resp.StatusCode)
		}
		var cerr error
		st, cerr = chaosClient(ts.URL).Chaos(context.Background())
		if cerr != nil {
			t.Fatal(cerr)
		}
		return st, statuses
	}
	stA, seqA := outcomes()
	stB, seqB := outcomes()
	if stA.Injected != stB.Injected {
		t.Fatalf("same seed fired different counts: %+v vs %+v", stA.Injected, stB.Injected)
	}
	if stA.Injected.Errors == 0 || stA.Injected.Throttles == 0 {
		t.Fatalf("60 requests at err=0.3,throttle=0.2 fired %+v", stA.Injected)
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("request %d: status %d vs %d under the same seed", i, seqA[i], seqB[i])
		}
	}
	if !stA.Enabled || stA.Spec != spec.String() {
		t.Fatalf("chaos state = %+v, want enabled with spec %q", stA, spec.String())
	}
}

func TestChaosThrottleCarriesRetryAfter(t *testing.T) {
	spec, _ := faultinject.ParseSpec("throttle=1,seed=1")
	_, ts, _ := newTestServer(t, Config{Chaos: spec})
	resp, err := http.Get(ts.URL + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("injected 429 lacks Retry-After")
	}
}

func TestChaosResetSeversConnection(t *testing.T) {
	spec, _ := faultinject.ParseSpec("reset=1,seed=1")
	_, ts, _ := newTestServer(t, Config{Chaos: spec})
	_, err := chaosClient(ts.URL).Scenarios(context.Background())
	if err == nil {
		t.Fatal("request through reset=1 succeeded")
	}
	var ae *client.APIError
	if errors.As(err, &ae) {
		t.Fatalf("reset surfaced as an HTTP error (%v), want a transport failure", ae)
	}
}

func TestChaosTruncatesStreams(t *testing.T) {
	spec, _ := faultinject.ParseSpec("trunc=1,seed=7")
	s, ts, _ := newTestServer(t, Config{Chaos: spec})

	// A streamed suite over enough specs produces far more than the
	// truncation ceiling (8KB), so the cut must fire mid-stream and the
	// client must see the stream die without a result event.
	specs := make([]client.RunRequest, 0, 12)
	for i := 0; i < 12; i++ {
		specs = append(specs, client.RunRequest{
			Benchmark: "gzip", Model: client.ModelConventional,
			Insts: testInsts, ConvEntries: 8 + i,
		})
	}
	var events int
	_, err := chaosClient(ts.URL).Suite(context.Background(),
		client.SuiteRequest{Specs: specs}, func(ev client.SuiteEvent) { events++ })
	if err == nil {
		t.Fatal("truncated suite stream returned no error")
	}
	if c := s.chaosCounts(); c.Truncations == 0 {
		t.Fatalf("no truncation fired: %+v", c)
	}

	// The replica kept simulating past the cut: every spec is memoized,
	// so a clean re-request (chaos off) serves the full set without
	// executing anything new. The client's error arrives as soon as
	// the connection is severed, while the handler is still filling
	// the memo into its swallowed writer — wait for it to finish
	// before snapshotting Executed, or the re-request races the
	// original handler's tail.
	s.setChaos(faultinject.Spec{})
	var st client.StatsResponse
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, _ = chaosClient(ts.URL).Stats(context.Background())
		if st.Engine.Executed >= int64(len(specs)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("truncated handler never finished the memo: executed %d of %d", st.Engine.Executed, len(specs))
		}
		time.Sleep(10 * time.Millisecond)
	}
	before := st.Engine.Executed
	out, err := chaosClient(ts.URL).Suite(context.Background(), client.SuiteRequest{Specs: specs}, nil)
	if err != nil {
		t.Fatalf("re-request after truncation: %v", err)
	}
	if len(out.Runs) != len(specs) {
		t.Fatalf("re-request returned %d runs, want %d", len(out.Runs), len(specs))
	}
	st, _ = chaosClient(ts.URL).Stats(context.Background())
	if st.Engine.Executed != before {
		t.Fatalf("re-request re-executed: %d -> %d", before, st.Engine.Executed)
	}
}

func TestChaosRuntimeReconfigure(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	c := chaosClient(ts.URL)
	ctx := context.Background()

	st, err := c.Chaos(ctx)
	if err != nil || st.Enabled {
		t.Fatalf("initial chaos state = %+v, err %v; want disabled", st, err)
	}

	if st, err = c.SetChaos(ctx, "err=1,seed=3"); err != nil || !st.Enabled {
		t.Fatalf("SetChaos: %+v, %v", st, err)
	}
	if err := c.Health(ctx); err != nil {
		t.Fatalf("healthz must stay exempt under err=1: %v", err)
	}
	if _, err := c.Scenarios(ctx); err == nil {
		t.Fatal("scenarios under err=1 succeeded")
	}

	// Disable; counters must persist (monotonic across swaps).
	if st, err = c.SetChaos(ctx, ""); err != nil || st.Enabled {
		t.Fatalf("disable: %+v, %v", st, err)
	}
	if st.Injected.Errors == 0 {
		t.Fatalf("retired counters lost on swap: %+v", st.Injected)
	}
	if _, err := c.Scenarios(ctx); err != nil {
		t.Fatalf("scenarios after disable: %v", err)
	}

	// A malformed spec is a 400.
	if _, err := c.SetChaos(ctx, "err=2"); err == nil {
		t.Fatal("SetChaos(err=2) succeeded")
	}
}

func TestChaosMetricsAlwaysExported(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	c := chaosClient(ts.URL)
	text, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range faultinject.Kinds() {
		want := fmt.Sprintf("samie_chaos_injected_total{kind=%q} 0", k)
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q", want)
		}
	}

	if _, err := c.SetChaos(context.Background(), "err=1,seed=9"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		http.Get(ts.URL + "/v1/scenarios")
	}
	if text, err = c.Metrics(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, `samie_chaos_injected_total{kind="error"} 3`) {
		t.Fatalf("metrics did not count injected errors:\n%s", text)
	}
	// Stats embeds the same view.
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Chaos.Injected.Errors != 3 || !st.Chaos.Enabled {
		t.Fatalf("stats chaos block = %+v", st.Chaos)
	}
}

func TestChaosLatencyDelays(t *testing.T) {
	spec, _ := faultinject.ParseSpec("lat=30ms:30ms,seed=2")
	s, ts, _ := newTestServer(t, Config{Chaos: spec})
	begin := time.Now()
	if _, err := chaosClient(ts.URL).Scenarios(context.Background()); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(begin); d < 30*time.Millisecond {
		t.Fatalf("request took %v, want >= 30ms injected latency", d)
	}
	if c := s.chaosCounts(); c.Latencies == 0 {
		t.Fatalf("latency did not count: %+v", c)
	}
}
