package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"samielsq/internal/experiments"
	"samielsq/pkg/client"
)

// TestDrainAbortsLiveStreamWithTerminalEvent is the graceful-drain
// contract: BeginDrain mid-stream makes the in-flight NDJSON suite
// stream end with an explicit terminal error event — not a severed
// connection — and flips /healthz to 503 so nothing new is routed
// here.
func TestDrainAbortsLiveStreamWithTerminalEvent(t *testing.T) {
	// One worker and a long spec list keep the stream in flight while
	// the test flips the server into drain mode.
	s, ts, _ := newTestServer(t, Config{Batch: experiments.NewBatch(1)})

	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain healthz = %v/%v, want 200", resp, err)
	}

	// Each run is big enough (~tens of ms) that the single worker
	// cannot finish the whole list into the socket buffer before the
	// client has read the first event and begun the drain.
	var req client.SuiteRequest
	for i := 0; i < 16; i++ {
		req.Specs = append(req.Specs, client.RunRequest{
			Benchmark: "gzip", Insts: 1_000_000, Model: "conventional",
			ConvEntries: 8 + i,
		})
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/suite?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}

	var runs int
	var terminal *client.SuiteEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		var ev client.SuiteEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "run":
			runs++
			if runs == 1 {
				// The stream is live: begin the drain underneath it.
				s.BeginDrain()
			}
		case "error", "result":
			terminal = &ev
		}
		if terminal != nil {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream severed without a terminal event: %v (after %d runs)", err, runs)
	}
	if terminal == nil {
		t.Fatalf("stream ended with no terminal event after %d runs", runs)
	}
	if terminal.Type != "error" || !strings.Contains(terminal.Error, "draining") {
		t.Fatalf("terminal event %+v, want an error event naming the drain", terminal)
	}
	if runs == 16 {
		t.Fatal("every spec completed before the drain took effect; the test never exercised an in-flight abort")
	}

	// Draining flips liveness so orchestrators stop routing work here.
	after, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer after.Body.Close()
	if after.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", after.StatusCode)
	}
	if st := decodeBody[map[string]string](t, after); st["status"] != "draining" {
		t.Fatalf("draining healthz body %v", st)
	}
}

// TestDrainRejectsNewWork: simulation requests arriving after the
// drain began — streaming or not — are turned away with a retryable
// 503 before any work is admitted, while cheap read-only endpoints
// keep answering so operators can still observe the process.
func TestDrainRejectsNewWork(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{Batch: experiments.NewBatch(1)})
	s.BeginDrain()

	for _, url := range []string{ts.URL + "/v1/suite", ts.URL + "/v1/suite?stream=1"} {
		resp := postJSON(t, url, client.SuiteRequest{
			Specs: []client.RunRequest{{Benchmark: "gzip", Insts: testInsts, Model: "samie"}},
		})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("POST %s under drain = %d, want 503", url, resp.StatusCode)
		}
		if e := decodeBody[client.ErrorResponse](t, resp); !strings.Contains(e.Error, "draining") {
			t.Fatalf("drain rejection body %+v does not name the drain", e)
		}
	}

	// Observability must outlive the drain: stats still answers.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats under drain = %d, want 200", resp.StatusCode)
	}
}
