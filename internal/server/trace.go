package server

import (
	"net/http"
	"strconv"

	"samielsq/internal/obs"
	"samielsq/pkg/client"
)

// handleTraceGet serves every retained span of one trace, oldest
// first. 404 means "no spans retained" — never recorded (tracing
// disabled, unknown ID) or already evicted from the ring — not an
// invalid ID.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	spans := s.rec.Trace(id)
	counters := s.rec.CountersFor(id)
	if len(spans) == 0 && len(counters) == 0 {
		writeError(w, http.StatusNotFound, "trace not retained")
		return
	}
	writeJSON(w, http.StatusOK, client.TraceResponse{TraceID: id, Spans: spans, Counters: counters})
}

// handleTraces lists recent root spans, newest first. ?limit=N caps
// the listing (default 50).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "bad limit")
			return
		}
		limit = n
	}
	roots := s.rec.Roots(limit)
	if roots == nil {
		// An empty recorder answers an empty list, not JSON null.
		roots = []obs.TraceSummary{}
	}
	writeJSON(w, http.StatusOK, client.TracesResponse{Traces: roots, Dropped: s.rec.Dropped()})
}
