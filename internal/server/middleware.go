package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"samielsq/internal/obs"
	"samielsq/pkg/client"
)

// statusWriter records the status and byte count for the request log
// and passes Flush through for NDJSON streaming.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Hijack passes through so the chaos layer can sever connections from
// inside the logging wrapper.
func (w *statusWriter) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	hj, ok := w.ResponseWriter.(http.Hijacker)
	if !ok {
		return nil, nil, fmt.Errorf("server: response writer cannot hijack")
	}
	return hj.Hijack()
}

// withLogging emits one structured log line per request, and is also
// where a request joins the trace fabric: the incoming traceparent
// (if any) is adopted, a server span is opened around the handler —
// putting it on the request context so engine jobs hang their tier
// spans off it — and the trace/span IDs land in the log line. The
// per-{route,code} counters and per-route latency histogram are
// observed here too, on the normalized route label (bounded
// cardinality, never the raw path).
func (s *Server) withLogging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		begin := time.Now()
		route := routeLabel(r.URL.Path)
		parent, hasParent := obs.ParseTraceParent(r.Header.Get("traceparent"))
		ctx, span := s.rec.StartRemoteChild(r.Context(), r.Method+" "+route, parent)
		if span != nil {
			span.SetAttr("path", r.URL.Path)
			r = r.WithContext(ctx)
		}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		dur := time.Since(begin)
		s.served.Add(1)
		s.httpm.observe(route, sw.status, dur)
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"duration", dur.Round(time.Microsecond).String(),
			"remote", r.RemoteAddr,
		}
		switch {
		case span != nil:
			span.SetAttr("status", strconv.Itoa(sw.status))
			span.End()
			attrs = append(attrs,
				"trace_id", span.Context().Trace.String(),
				"span_id", span.Context().Span.String())
		case hasParent:
			// Recording is off but the caller propagated an identity:
			// keep the correlation in the log anyway.
			attrs = append(attrs, "trace_id", parent.Trace.String())
		}
		s.log.Info("request", attrs...)
	})
}

// routeLabel normalizes a request to its route pattern so metric
// labels stay bounded however many distinct keys, figures or trace
// IDs clients ask for. Unknown paths collapse into "other".
func routeLabel(path string) string {
	switch {
	case path == "/healthz" || path == "/metrics" ||
		path == "/v1/stats" || path == "/v1/chaos" ||
		path == "/v1/scenarios" || path == "/v1/runs" ||
		path == "/v1/suite" || path == "/v1/traces":
		return path
	case strings.HasPrefix(path, "/v1/runs/") && strings.HasSuffix(path, "/timeline"):
		return "/v1/runs/{key}/timeline"
	case strings.HasPrefix(path, "/v1/runs/"):
		return "/v1/runs/{key}"
	case strings.HasPrefix(path, "/v1/figures/"):
		return "/v1/figures/{name}"
	case strings.HasPrefix(path, "/v1/trace/"):
		return "/v1/trace/{id}"
	case strings.HasPrefix(path, "/v1/scenarios/") && strings.HasSuffix(path, "/run"):
		return "/v1/scenarios/{name}/run"
	default:
		return "other"
	}
}

// httpMetrics aggregates the labeled request metrics: one counter per
// {route, status code} and one latency histogram per route. Routes
// are a small closed set (routeLabel), so the maps stay tiny; the
// mutex guards only map access — histogram observes are lock-free.
type httpMetrics struct {
	mu     sync.Mutex
	counts map[routeCode]int64
	dur    map[string]*obs.Histogram
}

// routeCode keys one requests_total series.
type routeCode struct {
	route string
	code  int
}

// requestBuckets bound the per-route request-latency histogram: the
// peer-fetch ladder, which already spans "LAN round trip" to "long
// simulation request".
var requestBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

func (m *httpMetrics) init() {
	m.counts = make(map[routeCode]int64)
	m.dur = make(map[string]*obs.Histogram)
}

func (m *httpMetrics) observe(route string, code int, d time.Duration) {
	m.mu.Lock()
	m.counts[routeCode{route, code}]++
	h := m.dur[route]
	if h == nil {
		h = obs.NewHistogram(requestBuckets)
		m.dur[route] = h
	}
	m.mu.Unlock()
	h.Observe(d)
}

// snapshot copies the counters and snapshots every route histogram.
func (m *httpMetrics) snapshot() (map[routeCode]int64, map[string]obs.HistSnapshot) {
	m.mu.Lock()
	counts := make(map[routeCode]int64, len(m.counts))
	for k, v := range m.counts {
		counts[k] = v
	}
	hists := make(map[string]*obs.Histogram, len(m.dur))
	for k, h := range m.dur {
		hists[k] = h
	}
	m.mu.Unlock()
	out := make(map[string]obs.HistSnapshot, len(hists))
	for k, h := range hists {
		out[k] = h.Snapshot()
	}
	return counts, out
}

// withRecovery converts handler panics into 500s instead of tearing
// down the connection (and, under http.Serve, the goroutine's stack
// trace spam). Simulation panics surface here too: the engine
// re-raises a job panic in every caller.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.log.Error("panic", "path", r.URL.Path, "panic", fmt.Sprint(rec),
					"stack", string(debug.Stack()))
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// heavy admits a simulation-triggering request through the
// request-level semaphore and attaches the per-request deadline.
// Saturation answers 429 + Retry-After immediately: the engine worker
// pool bounds simulation parallelism, this bounds how many requests
// may pile onto it at all, so a burst degrades into fast, explicit
// backpressure instead of an unbounded goroutine queue.
func (s *Server) heavy(h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining() {
			// New simulation work arriving on a draining process gets a
			// retryable rejection before any headers or stream framing
			// go out; only already-admitted requests ride out the grace
			// window.
			writeError(w, http.StatusServiceUnavailable, errDraining.Error())
			return
		}
		select {
		case s.sem <- struct{}{}:
		default:
			s.throttled.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter/time.Second)))
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("saturated: %d simulation requests in flight", cap(s.sem)))
			return
		}
		s.inflight.Add(1)
		defer func() {
			s.inflight.Add(-1)
			<-s.sem
		}()
		if s.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(w, r)
	})
}

// ndjsonEmitter switches the response to NDJSON streaming when the
// request asked for it and returns the event writer; nil means the
// caller should respond with plain JSON. Only truthy ?stream values
// stream ("1", "true", ...): ?stream=0 must get the documented
// plain-JSON response, not NDJSON.
func (s *Server) ndjsonEmitter(w http.ResponseWriter, r *http.Request) func(ev any) {
	streaming, _ := strconv.ParseBool(r.URL.Query().Get("stream"))
	if !streaming {
		return nil
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	flusher, _ := w.(http.Flusher)
	return func(ev any) {
		_ = enc.Encode(ev) // Encode appends the newline NDJSON needs
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// writeJSON writes a JSON response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError writes the uniform JSON error body.
func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, client.ErrorResponse{Error: msg})
}

// statusForError maps a failed simulation request to its status: a
// server-imposed deadline is a 504, a vanished client gets a
// best-effort 499-style close (the write is moot anyway), and
// anything else — a contained simulation failure — is a 500.
func statusForError(err error) int {
	switch {
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusInternalServerError
	}
}
