package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"samielsq/internal/faultinject"
	"samielsq/pkg/client"
)

// chaosState holds the live injector and the counts retired by earlier
// injectors, so samie_chaos_injected_total stays monotonic across
// POST /v1/chaos reconfigurations.
type chaosState struct {
	inj atomic.Pointer[faultinject.Injector]

	mu      sync.Mutex
	retired faultinject.Counts
}

// setChaos swaps the fault spec at runtime. An empty (disabled) spec
// removes the injector entirely, restoring the zero-cost disabled
// path.
func (s *Server) setChaos(spec faultinject.Spec) {
	s.chaos.mu.Lock()
	defer s.chaos.mu.Unlock()
	var next *faultinject.Injector
	if spec.Enabled() {
		next = faultinject.New(spec)
	}
	if old := s.chaos.inj.Swap(next); old != nil {
		s.chaos.retired.Add(old.Counts())
	}
}

// ChaosCounts reports total injected faults — retired injectors plus
// the live one — for callers outside the HTTP surface (tests, embedding
// harnesses).
func (s *Server) ChaosCounts() faultinject.Counts { return s.chaosCounts() }

// chaosCounts snapshots total injected faults: retired injectors plus
// the live one.
func (s *Server) chaosCounts() faultinject.Counts {
	s.chaos.mu.Lock()
	counts := s.chaos.retired
	s.chaos.mu.Unlock()
	if in := s.chaos.inj.Load(); in != nil {
		counts.Add(in.Counts())
	}
	return counts
}

// chaosSnapshot assembles the wire view served by GET /v1/chaos and
// embedded in /v1/stats.
func (s *Server) chaosSnapshot() client.ChaosState {
	st := client.ChaosState{Injected: chaosCountsWire(s.chaosCounts())}
	if in := s.chaos.inj.Load(); in != nil {
		st.Enabled = true
		st.Spec = in.Spec().String()
	}
	return st
}

func chaosCountsWire(c faultinject.Counts) client.ChaosCounts {
	return client.ChaosCounts{
		Errors:      c.Errors,
		Throttles:   c.Throttles,
		Resets:      c.Resets,
		Truncations: c.Truncations,
		Latencies:   c.Latencies,
		Total:       c.Total(),
	}
}

// handleChaosGet reports the current fault spec and fired-fault
// counters.
func (s *Server) handleChaosGet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.chaosSnapshot())
}

// handleChaosSet reconfigures fault injection at runtime. The body
// carries the same spec grammar as the -chaos flag; an empty spec
// disables injection.
func (s *Server) handleChaosSet(w http.ResponseWriter, r *http.Request) {
	var req client.ChaosRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad chaos request: %v", err))
		return
	}
	spec, err := faultinject.ParseSpec(req.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.setChaos(spec)
	s.log.Info("chaos reconfigured", "spec", spec.String(), "enabled", spec.Enabled())
	writeJSON(w, http.StatusOK, s.chaosSnapshot())
}

// chaosExempt lists the endpoints fault injection skips: liveness,
// observability, and the chaos control plane itself must stay
// dependable or tests (and operators) lose the ability to see what the
// chaos layer is doing.
func chaosExempt(path string) bool {
	return path == "/healthz" || path == "/metrics" ||
		path == "/v1/stats" || strings.HasPrefix(path, "/v1/chaos") ||
		strings.HasPrefix(path, "/v1/trace")
}

// withChaos applies the drawn fault plan to each request. When no
// injector is installed the middleware is one atomic load and a nil
// check — nothing on the simulation hot path changes, and the 0
// allocs/op guards are unaffected.
func (s *Server) withChaos(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		in := s.chaos.inj.Load()
		if in == nil || chaosExempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		plan := in.Plan()
		if plan.Latency > 0 {
			in.Fired(faultinject.KindLatency)
			select {
			case <-time.After(plan.Latency):
			case <-r.Context().Done():
				return
			}
		}
		switch plan.Kind {
		case faultinject.KindError:
			in.Fired(faultinject.KindError)
			writeError(w, http.StatusInternalServerError, "chaos: injected fault")
			return
		case faultinject.KindThrottle:
			in.Fired(faultinject.KindThrottle)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "chaos: injected throttle")
			return
		case faultinject.KindReset:
			in.Fired(faultinject.KindReset)
			abortConn(w, true)
			return
		}
		if plan.TruncAfter > 0 {
			next.ServeHTTP(&truncWriter{ResponseWriter: w, in: in, remaining: plan.TruncAfter}, r)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// abortConn severs the underlying connection. With rst the socket is
// closed with linger 0 so the peer sees an RST (connection reset);
// without it a plain close leaves a chunked response unterminated, so
// the peer reads the bytes already flushed and then hits an
// unexpected-EOF mid-body. Falls through silently when the
// ResponseWriter cannot hijack (e.g. httptest.ResponseRecorder) — the
// response simply ends.
func abortConn(w http.ResponseWriter, rst bool) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		return
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		return
	}
	if rst {
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetLinger(0)
		}
	}
	_ = conn.Close()
}

// truncWriter delivers the first `remaining` response-body bytes, then
// severs the connection mid-body. The handler keeps running against a
// dead writer on purpose: a truncated suite stream still finishes its
// simulations and memoizes them, which is exactly the scenario the
// coordinator's stream resume exists for (the re-request is served
// from memo as Hits, preserving exactly-once Executed accounting).
type truncWriter struct {
	http.ResponseWriter
	in        *faultinject.Injector
	remaining int
	truncated bool
}

func (w *truncWriter) Write(p []byte) (int, error) {
	if w.truncated {
		return len(p), nil
	}
	if len(p) < w.remaining {
		w.remaining -= len(p)
		return w.ResponseWriter.Write(p)
	}
	_, _ = w.ResponseWriter.Write(p[:w.remaining])
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
	w.truncated = true
	w.remaining = 0
	w.in.Fired(faultinject.KindTruncate)
	abortConn(w.ResponseWriter, false)
	return len(p), nil
}

func (w *truncWriter) Flush() {
	if w.truncated {
		return
	}
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *truncWriter) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	hj, ok := w.ResponseWriter.(http.Hijacker)
	if !ok {
		return nil, nil, fmt.Errorf("server: response writer cannot hijack")
	}
	return hj.Hijack()
}
