// Package mem composes the memory hierarchy of Table 2: L1 I/D caches,
// a unified L2 and main memory, with the paper's latencies (L1D 2
// cycles, L2 hit 10, memory 100, 2-cycle interchunk transfer).
//
// The hierarchy is a timing model: accesses return a latency in cycles
// and update the underlying cache tag state. Port contention is
// enforced by the CPU model (which owns the per-cycle port budget);
// this package accounts pure access latency.
package mem

import (
	"fmt"

	"samielsq/internal/cache"
)

// Config describes the hierarchy latencies beyond the per-cache hit
// latencies.
type Config struct {
	MemLatency int // cycles for an L2 miss to reach data (paper: 100)
	InterChunk int // cycles between chunks of a line transfer (paper: 2)
	ChunkBytes int // transfer chunk size (8 bytes, one bus beat)
}

// PaperConfig returns the Table 2 hierarchy latencies.
func PaperConfig() Config {
	return Config{MemLatency: 100, InterChunk: 2, ChunkBytes: 8}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.MemLatency < 0 || c.InterChunk < 0 {
		return fmt.Errorf("mem: latencies must be non-negative")
	}
	if c.ChunkBytes <= 0 {
		return fmt.Errorf("mem: ChunkBytes must be positive")
	}
	return nil
}

// Hierarchy bundles the caches. The D-side path is L1D -> L2 -> memory
// and the I-side path is L1I -> L2 -> memory.
type Hierarchy struct {
	cfg Config
	L1D *cache.Cache
	L1I *cache.Cache
	L2  *cache.Cache

	l2Accesses, memAccesses uint64
}

// New builds a hierarchy from the given caches; any nil cache is
// replaced by its paper-default configuration.
func New(cfg Config, l1d, l1i, l2 *cache.Cache) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if l1d == nil {
		l1d = cache.New(cache.PaperL1D())
	}
	if l1i == nil {
		l1i = cache.New(cache.PaperL1I())
	}
	if l2 == nil {
		l2 = cache.New(cache.PaperL2())
	}
	return &Hierarchy{cfg: cfg, L1D: l1d, L1I: l1i, L2: l2}
}

// NewPaper builds the full Table 2 hierarchy.
func NewPaper() *Hierarchy {
	return New(PaperConfig(), nil, nil, nil)
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// transferCycles returns the extra cycles to stream a line into the
// upper level after the first chunk arrives.
func (h *Hierarchy) transferCycles(lineBytes int) int {
	chunks := lineBytes / h.cfg.ChunkBytes
	if chunks < 1 {
		chunks = 1
	}
	return (chunks - 1) * h.cfg.InterChunk
}

// DataResult reports a data access outcome.
type DataResult struct {
	Latency int          // total cycles until data available
	L1      cache.Result // L1D tag outcome (set/way/eviction info)
	L1Hit   bool
	L2Hit   bool // meaningful only when !L1Hit
}

// Data performs a data access through L1D (conventional tag-checked
// access), filling lower levels on misses, and returns the latency.
func (h *Hierarchy) Data(addr uint64, write bool) DataResult {
	res := DataResult{}
	res.L1 = h.L1D.Access(addr, write)
	res.L1Hit = res.L1.Hit
	res.Latency = h.L1D.Config().HitLatency
	if res.L1Hit {
		return res
	}
	res.Latency += h.lowerLatency(addr, &res.L2Hit)
	res.Latency += h.transferCycles(h.L1D.Config().LineBytes)
	return res
}

// DataDirect performs a way-known L1D access (§3.4): the physical
// location is supplied by the LSQ entry, no tag check happens and the
// access always hits (the presentBit protocol guarantees residency).
// It returns the L1 hit latency and reports whether the invariant held.
func (h *Hierarchy) DataDirect(addr uint64, set, way int, write bool) (latency int, ok bool) {
	ok = h.L1D.DirectAccess(addr, set, way, write)
	return h.L1D.Config().HitLatency, ok
}

// Inst performs an instruction fetch through L1I.
func (h *Hierarchy) Inst(addr uint64) int {
	r := h.L1I.Access(addr, false)
	lat := h.L1I.Config().HitLatency
	if r.Hit {
		return lat
	}
	var l2hit bool
	lat += h.lowerLatency(addr, &l2hit)
	lat += h.transferCycles(h.L1I.Config().LineBytes)
	return lat
}

// lowerLatency accesses L2 and, on a miss, memory; it returns the
// added latency beyond the L1 hit time.
func (h *Hierarchy) lowerLatency(addr uint64, l2hit *bool) int {
	h.l2Accesses++
	r2 := h.L2.Access(addr, false)
	lat := h.L2.Config().HitLatency
	if r2.Hit {
		*l2hit = true
		return lat
	}
	*l2hit = false
	h.memAccesses++
	lat += h.cfg.MemLatency + h.transferCycles(h.L2.Config().LineBytes)
	return lat
}

// ResetStats zeroes the hierarchy's access counters (cache contents
// are kept). Used at the end of simulation warm-up.
func (h *Hierarchy) ResetStats() {
	h.l2Accesses, h.memAccesses = 0, 0
	h.L1D.ResetStats()
	h.L1I.ResetStats()
	h.L2.ResetStats()
}

// L2Accesses returns the number of L2 lookups performed.
func (h *Hierarchy) L2Accesses() uint64 { return h.l2Accesses }

// MemAccesses returns the number of main-memory accesses performed.
func (h *Hierarchy) MemAccesses() uint64 { return h.memAccesses }
