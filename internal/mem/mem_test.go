package mem

import (
	"testing"

	"samielsq/internal/cache"
)

func TestConfigValidate(t *testing.T) {
	c := Config{MemLatency: -1, InterChunk: 2, ChunkBytes: 8}
	if err := c.Validate(); err == nil {
		t.Fatal("negative latency accepted")
	}
	c = Config{MemLatency: 100, InterChunk: 2, ChunkBytes: 0}
	if err := c.Validate(); err == nil {
		t.Fatal("zero chunk accepted")
	}
	pc := PaperConfig()
	if err := pc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyChain(t *testing.T) {
	h := NewPaper()
	// Cold data access: L1 miss (2) + L2 miss (10) + memory (100) +
	// L2 transfer (64/8-1)*2=14 + L1 transfer (32/8-1)*2=6 = 132.
	r := h.Data(0x10000, false)
	if r.L1Hit || r.L2Hit {
		t.Fatalf("cold access hit: %+v", r)
	}
	if r.Latency != 132 {
		t.Fatalf("cold latency = %d, want 132", r.Latency)
	}
	// Second access to the same line: L1 hit, 2 cycles.
	r = h.Data(0x10008, false)
	if !r.L1Hit || r.Latency != 2 {
		t.Fatalf("hit latency = %d (hit=%v), want 2", r.Latency, r.L1Hit)
	}
	// Neighbouring L1 line within the same (64-byte) L2 line: L1 miss,
	// L2 hit: 2 + 10 + 6 = 18.
	r = h.Data(0x10020, false)
	if r.L1Hit || !r.L2Hit {
		t.Fatalf("expected L2 hit: %+v", r)
	}
	if r.Latency != 18 {
		t.Fatalf("L2-hit latency = %d, want 18", r.Latency)
	}
}

func TestInstLatency(t *testing.T) {
	h := NewPaper()
	// Cold: 1 + 10 + 100 + 14 + 6 = 131.
	if lat := h.Inst(0x20000); lat != 131 {
		t.Fatalf("cold inst latency = %d, want 131", lat)
	}
	if lat := h.Inst(0x20004); lat != 1 {
		t.Fatalf("warm inst latency = %d, want 1", lat)
	}
}

func TestDataDirect(t *testing.T) {
	h := NewPaper()
	r := h.Data(0x30000, false)
	lat, ok := h.DataDirect(0x30010, r.L1.Set, r.L1.Way, false)
	if !ok || lat != 2 {
		t.Fatalf("direct access: ok=%v lat=%d", ok, lat)
	}
	if _, ok := h.DataDirect(0x99990000, r.L1.Set, r.L1.Way, false); ok {
		t.Fatal("direct access to absent line succeeded")
	}
}

func TestAccessCounters(t *testing.T) {
	h := NewPaper()
	h.Data(0x40000, false) // L1 miss, L2 miss, mem access
	h.Data(0x40000, false) // L1 hit
	if h.L2Accesses() != 1 || h.MemAccesses() != 1 {
		t.Fatalf("l2=%d mem=%d, want 1/1", h.L2Accesses(), h.MemAccesses())
	}
	h.ResetStats()
	if h.L2Accesses() != 0 || h.MemAccesses() != 0 {
		t.Fatal("ResetStats failed")
	}
	if h.L1D.Hits() != 0 {
		t.Fatal("ResetStats did not reach L1D")
	}
}

func TestCustomCaches(t *testing.T) {
	small := cache.New(cache.Config{Name: "s", SizeBytes: 1024, LineBytes: 32, Ways: 1, HitLatency: 3})
	h := New(PaperConfig(), small, nil, nil)
	if h.L1D.Config().HitLatency != 3 {
		t.Fatal("custom L1D not wired")
	}
	r := h.Data(0x1000, false)
	if r.Latency < 3 {
		t.Fatalf("latency %d below custom hit latency", r.Latency)
	}
}

func TestWriteDirties(t *testing.T) {
	h := NewPaper()
	h.Data(0x50000, true)
	// Fill the set to evict the dirty line; L1D is 4-way, 64 sets.
	setStride := uint64(64 * 32)
	for i := 1; i <= 4; i++ {
		h.Data(0x50000+uint64(i)*setStride, false)
	}
	if h.L1D.Writebacks() != 1 {
		t.Fatalf("writebacks = %d, want 1", h.L1D.Writebacks())
	}
}
