package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one loaded, parsed and type-checked package ready for
// analysis. Dependencies are resolved from gc export data (as written
// by `go list -export`), so only the target package's own files are
// re-checked from source.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load resolves patterns with the go tool (run in dir; "" means the
// current directory), parses every matched package and type-checks it
// against export data for its dependencies. Test files are not
// loaded: the invariants guarded here live in shipped code.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		return nil, errors.New("lint: no package patterns")
	}
	args := append([]string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard,ImportMap,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := map[string]string{}
	importMaps := map[string]map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if len(p.ImportMap) > 0 {
			importMaps[p.ImportPath] = p.ImportMap
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	// One importer instance across all targets keeps *types.Package
	// identities consistent for cross-package type comparisons.
	var current *listPkg
	lookup := func(path string) (io.ReadCloser, error) {
		if current != nil {
			if mapped, ok := current.ImportMap[path]; ok {
				path = mapped
			}
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for i := range targets {
		t := &targets[i]
		if len(t.GoFiles) == 0 {
			continue
		}
		current = t
		var files []*ast.File
		for _, g := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, g), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: parse: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
		}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-check %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath: t.ImportPath,
			Dir:     t.Dir,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return pkgs, nil
}
