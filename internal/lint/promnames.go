package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// PromNames enforces metrics hygiene over the Prometheus exposition
// in internal/server (files named metrics*.go):
//
//   - every family matches ^samie_[a-z0-9_]+$
//   - counters end in _total; gauges do not
//   - histograms end in _seconds or _bytes
//   - label names come from the allowed set (PromAllowedLabels)
//   - the package-level metricFamilies registry (consumed by the
//     exposition test) lists exactly the families the code renders
//
// Families are recognized from the []metric slice literal that drives
// the scalar loop and from every "# TYPE <name> <kind>" literal.
var PromNames = &Analyzer{
	Name: "promnames",
	Doc:  "checks Prometheus family naming, suffix, label and registry-sync rules in the metrics exposition",
	AppliesTo: func(pkgPath string) bool {
		return pkgPath == "samielsq/internal/server"
	},
	Run: runPromNames,
}

// PromAllowedLabels is the closed set of label names the exposition
// may use. Extending it is an API decision: dashboards and the
// cluster aggregation join on these.
var PromAllowedLabels = []string{
	"benchmark", "code", "kind", "le", "phase", "revision",
	"route", "stat", "structure", "tier",
}

var (
	promFamilyRE = regexp.MustCompile(`^samie_[a-z0-9_]+$`)
	promTypeRE   = regexp.MustCompile(`# TYPE ([A-Za-z_:][A-Za-z0-9_:]*) ([a-z]+)`)
	promLabelRE  = regexp.MustCompile(`([A-Za-z_][A-Za-z0-9_]*)=(?:%q|")`)
)

type promFamily struct {
	name string
	kind string
	pos  token.Pos
}

func runPromNames(p *Pass) error {
	var families []promFamily
	var familiesVar *ast.CompositeLit
	var familiesVarPos token.Pos
	labelsAt := map[string]token.Pos{}

	for _, f := range p.Files {
		base := p.Fset.Position(f.Pos()).Filename
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		if !strings.HasPrefix(base, "metrics") || !strings.HasSuffix(base, ".go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if name.Name == "metricFamilies" && i < len(n.Values) {
						if cl, ok := n.Values[i].(*ast.CompositeLit); ok {
							familiesVar = cl
							familiesVarPos = name.Pos()
						}
					}
				}
			case *ast.CompositeLit:
				families = append(families, metricSliceFamilies(p, n)...)
			case *ast.BasicLit:
				if n.Kind != token.STRING {
					return true
				}
				text, err := strconv.Unquote(n.Value)
				if err != nil {
					return true
				}
				for _, m := range promTypeRE.FindAllStringSubmatch(text, -1) {
					families = append(families, promFamily{name: m[1], kind: m[2], pos: n.Pos()})
				}
				for _, m := range promLabelRE.FindAllStringSubmatch(text, -1) {
					if _, seen := labelsAt[m[1]]; !seen {
						labelsAt[m[1]] = n.Pos()
					}
				}
			}
			return true
		})
	}
	if len(families) == 0 && familiesVar == nil {
		return nil
	}

	// Per-family rules, deduplicated by name (first declaration wins
	// the position; conflicting kinds are their own finding).
	kinds := map[string]promFamily{}
	for _, fam := range families {
		if prev, ok := kinds[fam.name]; ok {
			if prev.kind != fam.kind {
				p.Reportf(fam.pos, "metric %s declared as %s here but %s elsewhere", fam.name, fam.kind, prev.kind)
			}
			continue
		}
		kinds[fam.name] = fam
		if !promFamilyRE.MatchString(fam.name) {
			p.Reportf(fam.pos, "metric %s does not match ^samie_[a-z0-9_]+$", fam.name)
		}
		switch fam.kind {
		case "counter":
			if !strings.HasSuffix(fam.name, "_total") {
				p.Reportf(fam.pos, "counter %s must end in _total", fam.name)
			}
		case "gauge":
			if strings.HasSuffix(fam.name, "_total") {
				p.Reportf(fam.pos, "gauge %s must not end in _total", fam.name)
			}
		case "histogram":
			if !strings.HasSuffix(fam.name, "_seconds") && !strings.HasSuffix(fam.name, "_bytes") {
				p.Reportf(fam.pos, "histogram %s must end in _seconds or _bytes", fam.name)
			}
		default:
			p.Reportf(fam.pos, "metric %s has unknown type %q", fam.name, fam.kind)
		}
	}

	labels := make([]string, 0, len(labelsAt))
	for l := range labelsAt {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		if !pathIn(l, PromAllowedLabels) {
			p.Reportf(labelsAt[l], "label %q is not in the allowed set %v", l, PromAllowedLabels)
		}
	}

	checkFamilyRegistry(p, kinds, familiesVar, familiesVarPos, families)
	return nil
}

// metricSliceFamilies extracts (name, kind) pairs from elements of a
// composite literal whose element type is the server's metric struct
// ({name, help, kind, value}).
func metricSliceFamilies(p *Pass, cl *ast.CompositeLit) []promFamily {
	var out []promFamily
	for _, el := range cl.Elts {
		row, ok := el.(*ast.CompositeLit)
		if !ok || len(row.Elts) != 4 {
			continue
		}
		name, ok1 := stringLit(row.Elts[0])
		kind, ok2 := stringLit(row.Elts[2])
		if ok1 && ok2 && strings.HasPrefix(name, "samie_") {
			out = append(out, promFamily{name: name, kind: kind, pos: row.Elts[0].Pos()})
		}
	}
	return out
}

// checkFamilyRegistry enforces that the metricFamilies var — the list
// the exposition test walks — names exactly the families the code
// renders.
func checkFamilyRegistry(p *Pass, kinds map[string]promFamily, reg *ast.CompositeLit, regPos token.Pos, families []promFamily) {
	if reg == nil {
		if len(families) > 0 {
			p.Reportf(families[0].pos, "no package-level metricFamilies registry found; the exposition test cannot stay in sync")
		}
		return
	}
	listed := map[string]bool{}
	for _, el := range reg.Elts {
		name, ok := stringLit(el)
		if !ok {
			continue
		}
		listed[name] = true
		if _, rendered := kinds[name]; !rendered {
			p.Reportf(el.Pos(), "metricFamilies lists %s but the exposition never renders it", name)
		}
	}
	names := make([]string, 0, len(kinds))
	for n := range kinds {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if !listed[n] {
			p.Reportf(regPos, "family %s is rendered but missing from the metricFamilies registry", n)
		}
	}
}

func stringLit(e ast.Expr) (string, bool) {
	bl, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || bl.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(bl.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
