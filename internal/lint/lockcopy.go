package lint

import (
	"go/ast"
	"go/types"
)

// LockCopy flags copying values whose type transitively holds a
// sync.Mutex, sync.RWMutex, sync.WaitGroup, sync.Once, sync.Cond,
// sync.Map or a sync/atomic value type (all of which embed a noCopy
// guard). Copying one silently forks the lock or the atomic cell:
// the Batch, obs.Recorder and cluster breakerSet types are exactly
// the shapes where a copied mutex turns exactly-once accounting into
// a data race. Checked sites: by-value parameters/results/receivers,
// plain assignments from existing values, by-value call arguments and
// range-clause value copies. Constructing a fresh value with a
// composite literal is fine.
var LockCopy = &Analyzer{
	Name: "lockcopy",
	Doc:  "flags copies of types containing locks or atomic cells",
	Run:  runLockCopy,
}

func runLockCopy(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFuncSig(p, n)
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) {
						break
					}
					checkValueCopy(p, rhs, "assignment")
				}
			case *ast.CallExpr:
				if tv, ok := p.Info.Types[n.Fun]; ok && tv.IsType() {
					return true // conversion, not a call
				}
				for _, arg := range n.Args {
					checkValueCopy(p, arg, "call argument")
				}
			case *ast.RangeStmt:
				if n.Value == nil {
					return true
				}
				t := p.Info.TypeOf(n.Value)
				if lockPath := containsLock(t, nil); lockPath != "" {
					p.Reportf(n.Value.Pos(), "range clause copies %s which contains %s; iterate by index or store pointers", typeName(t), lockPath)
				}
			}
			return true
		})
	}
	return nil
}

func checkFuncSig(p *Pass, fd *ast.FuncDecl) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := p.Info.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if lockPath := containsLock(t, nil); lockPath != "" {
				p.Reportf(field.Type.Pos(), "%s passes %s by value, copying %s; use a pointer", what, typeName(t), lockPath)
			}
		}
	}
	check(fd.Recv, "receiver")
	if fd.Type != nil {
		check(fd.Type.Params, "parameter")
		check(fd.Type.Results, "result")
	}
}

// checkValueCopy flags an expression whose evaluation copies an
// existing lock-holding value. Fresh composite literals, address-of
// expressions and nil are construction, not copies.
func checkValueCopy(p *Pass, e ast.Expr, what string) {
	switch ast.Unparen(e).(type) {
	case *ast.CompositeLit, *ast.UnaryExpr, *ast.CallExpr, *ast.FuncLit, *ast.BasicLit:
		return
	}
	t := p.Info.TypeOf(e)
	if t == nil {
		return
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return
	}
	if lockPath := containsLock(t, nil); lockPath != "" {
		p.Reportf(e.Pos(), "%s copies %s which contains %s; use a pointer", what, typeName(t), lockPath)
	}
}

// containsLock returns a human-readable path to the first lock-like
// component of t ("" when t is copy-safe). Lock-like means declared
// in sync or sync/atomic with a non-basic underlying type (Mutex,
// WaitGroup, atomic.Int64, atomic.Pointer[T], ...), or any struct or
// array transitively holding one.
func containsLock(t types.Type, seen []types.Type) string {
	if t == nil {
		return ""
	}
	for _, s := range seen {
		if s == t {
			return ""
		}
	}
	seen = append(seen, t)
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync", "sync/atomic":
				if _, basic := named.Underlying().(*types.Basic); !basic {
					return obj.Pkg().Name() + "." + obj.Name()
				}
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if path := containsLock(u.Field(i).Type(), seen); path != "" {
				return path
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return ""
}

func typeName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
