package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// HotAlloc statically backstops the runtime 0 allocs/op guards: in a
// function annotated //samie:hotpath (the cycle-core step, scheduler
// wakeup/drain, LSQ tick and sampler fast paths) it flags constructs
// that allocate or may allocate:
//
//   - append (growth allocates; suppress with //lint:ignore hotalloc
//     where capacity is preallocated and proven by the allocs/op test)
//   - make, new
//   - map and slice composite literals
//   - any fmt call
//   - non-constant string concatenation, string<->[]byte/[]rune
//     conversions
//   - closures (func literals capture and escape)
//   - interface boxing of non-pointer-shaped values
//
// Only the annotated body is checked — callees are guarded by their
// own annotations, and the runtime guards cover what static analysis
// cannot see.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags allocating constructs inside //samie:hotpath functions",
	Run:  runHotAlloc,
}

func runHotAlloc(p *Pass) error {
	funcs := packageFuncs(p)
	ordered := make([]*funcInfo, 0, len(funcs))
	for _, fi := range funcs {
		if fi.markers[MarkerHotPath] && fi.decl.Body != nil {
			ordered = append(ordered, fi)
		}
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].decl.Pos() < ordered[j].decl.Pos() })
	for _, fi := range ordered {
		checkHotBody(p, fi)
	}
	return nil
}

func checkHotBody(p *Pass, fi *funcInfo) {
	name := fi.obj.Name()
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "closure in hot path %s captures variables and allocates", name)
			return false
		case *ast.CompositeLit:
			t := p.Info.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				p.Reportf(n.Pos(), "map literal allocates in hot path %s", name)
			case *types.Slice:
				p.Reportf(n.Pos(), "slice literal allocates in hot path %s", name)
			}
		case *ast.CallExpr:
			checkHotCall(p, n, name)
		case *ast.BinaryExpr:
			if n.Op != token.ADD {
				return true
			}
			t := p.Info.TypeOf(n)
			if t == nil || !isString(t) {
				return true
			}
			if tv, ok := p.Info.Types[n]; ok && tv.Value != nil {
				return true // constant-folded at compile time
			}
			p.Reportf(n.Pos(), "string concatenation allocates in hot path %s", name)
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				checkBoxing(p, n.Rhs[i], p.Info.TypeOf(lhs), name)
			}
		}
		return true
	})
}

func checkHotCall(p *Pass, call *ast.CallExpr, name string) {
	// Builtins and conversions.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				p.Reportf(call.Pos(), "append may grow and allocate in hot path %s", name)
			case "make":
				p.Reportf(call.Pos(), "make allocates in hot path %s", name)
			case "new":
				p.Reportf(call.Pos(), "new allocates in hot path %s", name)
			}
			return
		}
	}
	// Conversions: string([]byte), []byte(string), []rune(string), ...
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := p.Info.TypeOf(call.Args[0])
		if from != nil && isStringByteConversion(to, from) {
			p.Reportf(call.Pos(), "%s conversion allocates in hot path %s", types.ExprString(call.Fun), name)
		}
		return
	}
	if fn := usedFunc(p, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		p.Reportf(call.Pos(), "fmt.%s allocates in hot path %s", fn.Name(), name)
		return
	}
	// Interface boxing at call boundaries.
	if sig, ok := typeAsSignature(p.Info.TypeOf(call.Fun)); ok {
		for i, arg := range call.Args {
			var param types.Type
			switch {
			case sig.Variadic() && i >= sig.Params().Len()-1:
				last := sig.Params().At(sig.Params().Len() - 1).Type()
				if s, ok := last.Underlying().(*types.Slice); ok {
					param = s.Elem()
				}
			case i < sig.Params().Len():
				param = sig.Params().At(i).Type()
			}
			checkBoxing(p, arg, param, name)
		}
	}
}

// checkBoxing flags storing a non-pointer-shaped concrete value into
// an interface: the value escapes into a heap-allocated box.
func checkBoxing(p *Pass, expr ast.Expr, dst types.Type, name string) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	src := p.Info.TypeOf(expr)
	if src == nil || types.IsInterface(src) || isPointerShaped(src) {
		return
	}
	if b, ok := src.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	p.Reportf(expr.Pos(), "interface boxing of %s value allocates in hot path %s", src.String(), name)
}

func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isStringByteConversion(to, from types.Type) bool {
	return (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from))
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isPointerShaped reports whether boxing t into an interface stores
// the value directly in the data word without allocating.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}
