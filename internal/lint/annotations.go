package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Annotation markers. They live in a function's doc comment (or on
// the line block directly above an undocumented declaration):
//
//	//samie:deterministic — the function's output must be a pure
//	  function of its inputs: no clocks, no environment, no unseeded
//	  randomness, no map-ordered formatting. Checked by detpure, and
//	  propagated to every same-package function it statically calls.
//
//	//samie:hotpath — the function runs on the per-cycle fast path
//	  and must not contain allocating constructs. Checked by hotalloc
//	  on the annotated body only (callees are guarded by their own
//	  annotations; the runtime allocs/op tests backstop the gaps).
const (
	MarkerDeterministic = "samie:deterministic"
	MarkerHotPath       = "samie:hotpath"
)

// funcInfo pairs a declared function with its body and markers.
type funcInfo struct {
	decl    *ast.FuncDecl
	obj     *types.Func
	markers map[string]bool
	// root records, per propagated marker, the annotated function the
	// marker arrived from (itself for directly annotated functions).
	root map[string]*types.Func
}

// packageFuncs indexes every function declared in the package by its
// types object and records which annotation markers each carries.
func packageFuncs(p *Pass) map[*types.Func]*funcInfo {
	out := map[*types.Func]*funcInfo{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			obj, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{
				decl:    fd,
				obj:     obj,
				markers: map[string]bool{},
				root:    map[string]*types.Func{},
			}
			for _, m := range docMarkers(fd) {
				fi.markers[m] = true
				fi.root[m] = obj
			}
			out[obj] = fi
		}
	}
	return out
}

// docMarkers extracts //samie: markers from a declaration's doc.
func docMarkers(fd *ast.FuncDecl) []string {
	if fd.Doc == nil {
		return nil
	}
	var out []string
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(text, "samie:") {
			out = append(out, text)
		}
	}
	return out
}

// propagate spreads marker down static same-package call edges: if an
// annotated function calls a function declared in this package, the
// callee inherits the obligation (its body is analyzed too, with the
// diagnostic naming the annotated root). Interface dispatch and
// cross-package calls are not followed — annotate the callee directly
// when it matters.
func propagate(p *Pass, funcs map[*types.Func]*funcInfo, marker string) {
	work := make([]*funcInfo, 0, len(funcs))
	for _, fi := range funcs {
		if fi.markers[marker] {
			work = append(work, fi)
		}
	}
	for len(work) > 0 {
		fi := work[len(work)-1]
		work = work[:len(work)-1]
		if fi.decl.Body == nil {
			continue
		}
		root := fi.root[marker]
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(p, call)
			if callee == nil {
				return true
			}
			target, ok := funcs[callee]
			if !ok || target.markers[marker] {
				return true
			}
			target.markers[marker] = true
			target.root[marker] = root
			work = append(work, target)
			return true
		})
	}
}

// calleeFunc resolves a call expression to the statically-known
// function it invokes, or nil (interface dispatch, function values,
// conversions, builtins).
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				// Method value on an interface has no body here.
				if isInterfaceRecv(fn) {
					return nil
				}
				return fn
			}
			return nil
		}
		// Package-qualified call (pkg.F).
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func isInterfaceRecv(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}
