package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// DetPure enforces purity inside functions annotated
// //samie:deterministic — the canonical-key, golden-output,
// artifact-body and fingerprint paths whose bytes the golden suite
// and the exactly-once fleet rollups compare. Forbidden inside them
// (and inside every same-package function they statically call):
//
//   - clocks: time.Now, time.Since
//   - process environment: os.Getenv, os.LookupEnv, os.Environ
//   - unseeded randomness: any package-level math/rand or
//     math/rand/v2 function (methods on an explicitly seeded
//     *rand.Rand are allowed)
//   - map-keyed formatting: passing a value whose type contains a map
//     to an fmt formatting function (%v renders map entries in
//     randomized order)
//
// Annotations propagate down static same-package call edges;
// interface dispatch and cross-package calls are not followed, so
// annotate such callees directly.
var DetPure = &Analyzer{
	Name: "detpure",
	Doc:  "forbids clocks, env, unseeded randomness and map-keyed fmt verbs in //samie:deterministic functions",
	Run:  runDetPure,
}

// detBannedFuncs maps package path -> banned package-level functions.
// An empty list bans every package-level function of that package.
var detBannedFuncs = map[string][]string{
	"time":         {"Now", "Since", "Until"},
	"os":           {"Getenv", "LookupEnv", "Environ"},
	"math/rand":    {},
	"math/rand/v2": {},
}

func runDetPure(p *Pass) error {
	funcs := packageFuncs(p)
	propagate(p, funcs, MarkerDeterministic)

	// Analyze in source order for stable diagnostics.
	ordered := make([]*funcInfo, 0, len(funcs))
	for _, fi := range funcs {
		if fi.markers[MarkerDeterministic] && fi.decl.Body != nil {
			ordered = append(ordered, fi)
		}
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].decl.Pos() < ordered[j].decl.Pos() })

	for _, fi := range ordered {
		fi := fi
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := usedFunc(p, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			ctx := ""
			if root := fi.root[MarkerDeterministic]; root != nil && root != fi.obj {
				ctx = " (reached from //samie:deterministic " + root.Name() + ")"
			}
			pkgPath := fn.Pkg().Path()
			if banned, ok := detBannedFuncs[pkgPath]; ok && isPackageLevel(fn) {
				if len(banned) == 0 {
					p.Reportf(call.Pos(), "call to %s.%s in deterministic function %s uses the process-global random source%s", pkgPath, fn.Name(), fi.obj.Name(), ctx)
					return true
				}
				for _, b := range banned {
					if fn.Name() == b {
						p.Reportf(call.Pos(), "call to %s.%s in deterministic function %s%s", pkgPath, fn.Name(), fi.obj.Name(), ctx)
						return true
					}
				}
			}
			if pkgPath == "fmt" {
				for _, arg := range call.Args {
					t := p.Info.TypeOf(arg)
					if t != nil && typeContainsMap(t, map[types.Type]bool{}) {
						p.Reportf(arg.Pos(), "fmt argument %s contains a map; its entries format in randomized order inside deterministic function %s%s", types.ExprString(arg), fi.obj.Name(), ctx)
					}
				}
			}
			return true
		})
	}
	return nil
}

// usedFunc resolves the called function object, including methods.
func usedFunc(p *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPackageLevel reports whether fn is a package-level function (not
// a method) — the distinction between rand.Intn (global source) and
// (*rand.Rand).Intn (explicitly seeded).
func isPackageLevel(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// typeContainsMap reports whether a value of type t transitively
// holds a map (and would therefore format nondeterministically).
func typeContainsMap(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Map:
		return true
	case *types.Pointer:
		return typeContainsMap(u.Elem(), seen)
	case *types.Slice:
		return typeContainsMap(u.Elem(), seen)
	case *types.Array:
		return typeContainsMap(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeContainsMap(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}
