package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapIter flags `range` over a map anywhere in the deterministic
// payload path: map iteration order is randomized per run, so any
// byte of output, any cache key, any float accumulation ordered by it
// silently breaks the byte-identical golden guarantee.
//
// Two shapes are recognized as order-independent and allowed without
// a comment:
//
//   - the key-collect idiom — a body that only appends the key to a
//     slice (which the surrounding code then sorts):
//     for k := range m { keys = append(keys, k) }
//   - the per-key rebuild idiom — a body that only writes an entry of
//     another map under the iteration key:
//     for k, v := range m { out[k] = v }   // or out[k] += v
//
// Anything else needs either sorting before iteration or an explicit
// //lint:ordered <why order cannot matter> justification on the line
// above the range statement.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "flags map iteration in deterministic-path packages unless provably order-independent or justified with //lint:ordered",
	AppliesTo: func(pkgPath string) bool {
		return pathIn(pkgPath, DeterministicPathPackages)
	},
	Run: runMapIter,
}

// DeterministicPathPackages are the packages whose map iteration
// order can leak into simulation results, cache keys, golden output
// or stats/metrics exposition. cmd/ and examples/ binaries are linted
// only through the libraries they call.
var DeterministicPathPackages = []string{
	"samielsq",
	"samielsq/internal/bpred",
	"samielsq/internal/cache",
	"samielsq/internal/cacti",
	"samielsq/internal/core",
	"samielsq/internal/cpu",
	"samielsq/internal/energy",
	"samielsq/internal/experiments",
	"samielsq/internal/experiments/engine",
	"samielsq/internal/isa",
	"samielsq/internal/lsq",
	"samielsq/internal/mem",
	"samielsq/internal/obs",
	"samielsq/internal/server",
	"samielsq/internal/stats",
	"samielsq/internal/tlb",
	"samielsq/internal/trace",
	"samielsq/pkg/client",
	"samielsq/pkg/cluster",
}

func runMapIter(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderIndependentBody(p, rng) {
				return true
			}
			p.Reportf(rng.For, "iteration over map %s has randomized order; sort keys first, or justify with //lint:ordered", types.ExprString(rng.X))
			return true
		})
	}
	return nil
}

// orderIndependentBody recognizes the two allowed map-range shapes.
func orderIndependentBody(p *Pass, rng *ast.RangeStmt) bool {
	if rng.Body == nil || len(rng.Body.List) != 1 {
		return false
	}
	as, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	keyObj := rangeVarObj(p, rng.Key)
	if keyObj == nil {
		return false
	}
	switch lhs := as.Lhs[0].(type) {
	case *ast.Ident:
		// keys = append(keys, k)
		if as.Tok != token.ASSIGN {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return false
		}
		fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fn.Name != "append" {
			return false
		}
		if _, isBuiltin := p.Info.Uses[fn].(*types.Builtin); !isBuiltin {
			return false
		}
		dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok || p.Info.Uses[dst] != p.Info.Uses[lhs] || p.Info.Uses[dst] == nil {
			return false
		}
		arg, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
		return ok && p.Info.Uses[arg] == keyObj
	case *ast.IndexExpr:
		// out[k] = v, out[k] += v: distinct keys touch distinct
		// entries, so iteration order cannot matter.
		idx, ok := ast.Unparen(lhs.Index).(*ast.Ident)
		return ok && p.Info.Uses[idx] == keyObj
	}
	return false
}

func rangeVarObj(p *Pass, key ast.Expr) types.Object {
	id, ok := key.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return p.Info.Defs[id]
}
