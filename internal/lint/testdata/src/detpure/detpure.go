// Package detpure is the analysistest fixture for the detpure
// analyzer: clocks, environment reads, unseeded randomness and
// map-keyed fmt verbs inside //samie:deterministic functions, with
// propagation down static call edges.
package detpure

import (
	"fmt"
	"math/rand"
	"os"
	"time"
)

var epoch time.Time

// Key is a canonical-key builder; everything time- or env-dependent
// inside it must be flagged.
//
//samie:deterministic
func Key(parts map[string]int, r *rand.Rand) string {
	_ = time.Now()              // want `call to time.Now in deterministic function Key`
	_, _ = os.LookupEnv("HOME") // want `call to os.LookupEnv in deterministic function Key`
	_ = rand.Intn(4)            // want `call to math/rand.Intn in deterministic function Key uses the process-global random source`
	_ = r.Intn(4)               // methods on a seeded *rand.Rand are allowed
	sum := helper()
	return fmt.Sprintf("%d-%v", sum, parts) // want `fmt argument parts contains a map; its entries format in randomized order inside deterministic function Key`
}

// helper is not annotated itself: it inherits the obligation from Key
// through the static call edge, and the diagnostic names the root.
func helper() int {
	_ = time.Since(epoch) // want `call to time.Since in deterministic function helper \(reached from //samie:deterministic Key\)`
	return 0
}

// unmarked is outside every deterministic path: clocks are fine here.
func unmarked() time.Time {
	return time.Now()
}

// stamped demonstrates the escape hatch for a justified exception.
//
//samie:deterministic
func stamped() int64 {
	//lint:ignore detpure timestamp is operational metadata stripped before hashing
	return time.Now().Unix()
}
