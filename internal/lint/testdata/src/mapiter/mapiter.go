// Package mapiter is the analysistest fixture for the mapiter
// analyzer: each `want` comment pins a diagnostic the analyzer must
// produce on that line, and the unannotated shapes must stay silent.
package mapiter

import "sort"

// bad folds float64 values in map order: the classic nondeterministic
// accumulation the analyzer exists to catch.
func bad(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `iteration over map m has randomized order`
		total += v
	}
	return total
}

// sortedKeys uses the key-collect idiom, allowed without a comment.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// rebuild uses the per-key rebuild idiom, allowed without a comment.
func rebuild(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// accumulatePerKey is the += variant of the rebuild idiom.
func accumulatePerKey(m map[string]int, out map[string]int) {
	for k, v := range m {
		out[k] += v
	}
}

// justified carries an explicit order-independence argument.
func justified(m map[string]int) int {
	n := 0
	//lint:ordered commutative count; order cannot reach the result
	for range m {
		n++
	}
	return n
}

// twoStatements breaks the single-statement idiom shape and must be
// flagged even though each statement alone would be allowed.
func twoStatements(m map[string]int, out map[string]int) []string {
	var keys []string
	for k, v := range m { // want `iteration over map m has randomized order`
		out[k] = v
		keys = append(keys, k)
	}
	return keys
}

// sliceRange ranges over a slice, which is ordered: never flagged.
func sliceRange(xs []float64) float64 {
	total := 0.0
	for _, v := range xs {
		total += v
	}
	return total
}
