// Package lockcopy is the analysistest fixture for the lockcopy
// analyzer: by-value copies of types that transitively hold a lock or
// an atomic cell.
package lockcopy

import (
	"sync"
	"sync/atomic"
)

type guarded struct {
	mu sync.Mutex
	n  int
}

type metered struct {
	hits atomic.Int64
}

func byValueParam(g guarded) int { // want `parameter passes guarded by value, copying sync.Mutex; use a pointer`
	return g.n
}

func byValueResult() (g guarded) { // want `result passes guarded by value, copying sync.Mutex; use a pointer`
	return
}

func (m metered) byValueRecv() int64 { // want `receiver passes metered by value, copying atomic.Int64; use a pointer`
	return m.hits.Load()
}

func assignCopy(g *guarded) int {
	cp := *g // want `assignment copies guarded which contains sync.Mutex; use a pointer`
	return cp.n
}

func callArgCopy(g guarded) { // want `parameter passes guarded by value, copying sync.Mutex; use a pointer`
	use(g) // want `call argument copies guarded which contains sync.Mutex; use a pointer`
}

func use(guarded) {} // want `parameter passes guarded by value, copying sync.Mutex; use a pointer`

func rangeCopy(gs []guarded) int {
	total := 0
	for _, g := range gs { // want `range clause copies guarded which contains sync.Mutex; iterate by index or store pointers`
		total += g.n
	}
	return total
}

// pointers and fresh construction are fine.
func clean() *guarded {
	g := &guarded{}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g
}
