// Package hotalloc is the analysistest fixture for the hotalloc
// analyzer: allocating constructs inside //samie:hotpath functions.
package hotalloc

import "fmt"

type stat struct{ n int }

var sink interface{}

// bad exercises every construct class the analyzer flags.
//
//samie:hotpath
func bad(xs []int, name string) int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want `append may grow and allocate in hot path bad`
	}
	m := map[string]int{} // want `map literal allocates in hot path bad`
	m[name] = len(out)
	buf := make([]byte, 8) // want `make allocates in hot path bad`
	_ = buf
	f := func() int { return len(out) } // want `closure in hot path bad captures variables and allocates`
	_ = f()
	fmt.Println(len(out))    // want `fmt.Println allocates in hot path bad`
	label := "bench:" + name // want `string concatenation allocates in hot path bad`
	raw := []byte(name)      // want `\[\]byte conversion allocates in hot path bad`
	s := stat{n: len(raw)}
	sink = s // want `interface boxing of .*\.stat value allocates in hot path bad`
	return len(label)
}

// suppressed shows the escape hatch for a proven-preallocated append.
//
//samie:hotpath
func suppressed(buf []int) []int {
	//lint:ignore hotalloc caller preallocates capacity; guarded by the allocs/op test
	buf = append(buf, 1)
	return buf
}

// cold is unannotated: the same constructs draw no findings.
func cold(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
