// Package promnames is the analysistest fixture for the promnames
// analyzer. The file is named metrics.go because the analyzer only
// scans metrics*.go files, mirroring internal/server.
package promnames

import "fmt"

type metric struct {
	name  string
	help  string
	kind  string
	value float64
}

// metricFamilies mirrors the registry the exposition test walks.
var metricFamilies = []string{ // want `family samie_Bad_name is rendered but missing from the metricFamilies registry` `family samie_bad_count is rendered but missing from the metricFamilies registry` `family samie_oops_seconds is rendered but missing from the metricFamilies registry`
	"samie_good_total",
	"samie_runs_seconds",
	"samie_phantom_total", // want `metricFamilies lists samie_phantom_total but the exposition never renders it`
}

func render() string {
	ms := []metric{
		{"samie_good_total", "good counter", "counter", 1},
		{"samie_bad_count", "bad suffix", "counter", 1}, // want `counter samie_bad_count must end in _total`
		{"samie_Bad_name", "bad casing", "gauge", 1},    // want `metric samie_Bad_name does not match \^samie_\[a-z0-9_\]\+\$`
	}
	out := ""
	for _, m := range ms {
		out += fmt.Sprintf("# TYPE %s %s\n%s %g\n", m.name, m.kind, m.name, m.value)
	}
	out += "# TYPE samie_runs_seconds histogram\n"
	out += fmt.Sprintf("samie_runs_seconds_bucket{le=%q} 1\n", "+Inf")
	out += "# TYPE samie_oops_seconds counter\n"               // want `counter samie_oops_seconds must end in _total`
	out += "# TYPE samie_good_total gauge\n"                   // want `metric samie_good_total declared as gauge here but counter elsewhere`
	out += `samie_good_total{weird="x",phase="warm"} 1` + "\n" // want `label "weird" is not in the allowed set`
	return out
}
