// Package atomicalign is the analysistest fixture for the atomicalign
// analyzer: 64-bit sync/atomic operands whose struct offset is not
// 8-aligned under GOARCH=386.
package atomicalign

import "sync/atomic"

// counters puts the hot word after a uint32, landing it at offset 4
// under 386's 4-byte struct alignment.
type counters struct {
	flag uint32
	hits uint64
	errs int64
}

// aligned keeps the 64-bit fields first, so they are always 8-aligned.
type aligned struct {
	hits uint64
	flag uint32
}

// typed uses atomic.Uint64, which carries its own alignment guarantee
// and never goes through the address-taking API.
type typed struct {
	flag uint32
	hits atomic.Uint64
}

func bump(c *counters, a *aligned, t *typed) {
	atomic.AddUint64(&c.hits, 1) // want `field hits is used with 64-bit sync/atomic but sits at offset 4 under GOARCH=386; move it first in the struct or use atomic.Uint64`
	atomic.AddInt64(&c.errs, 1)  // want `field errs is used with 64-bit sync/atomic but sits at offset 12 under GOARCH=386; move it first in the struct or use atomic.Int64`
	atomic.AddUint64(&a.hits, 1)
	t.hits.Add(1)
}
