// Package lint implements the samie-lint analyzer suite: a set of
// custom static checks that prove this repository's load-bearing
// invariants — deterministic output, zero-allocation hot paths,
// metrics hygiene, 32-bit atomic alignment — as structural rules over
// the code instead of sampling them with runtime tests.
//
// The framework mirrors golang.org/x/tools/go/analysis in miniature
// (Analyzer, Pass, diagnostics) but is built entirely on the standard
// library: packages are loaded with `go list -export` and type-checked
// from source against gc export data, so the suite runs offline with
// no module dependencies. See docs/static-analysis.md for the
// invariant model and the annotation grammar.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore suppressions.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// AppliesTo restricts the analyzer to some package paths; nil
	// means every package. The test harness bypasses this gate.
	AppliesTo func(pkgPath string) bool
	// Run analyzes one package and reports findings through the pass.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Column   int            `json:"column"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Column, d.Analyzer, d.Message)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	suppress map[string]map[int][]string // file -> line -> suppression tokens
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos unless a suppression comment
// covers it: a //lint:ignore <name> <reason> (or an analyzer-specific
// token such as mapiter's //lint:ordered) on the same line or the line
// directly above.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressedAt(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Column:   position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressionTokens returns the comment markers that silence this
// analyzer at a site. Every analyzer honors "lint:ignore <name>";
// mapiter additionally honors the domain-specific "lint:ordered".
func (p *Pass) suppressionTokens() []string {
	toks := []string{"lint:ignore " + p.Analyzer.Name}
	if p.Analyzer.Name == "mapiter" {
		toks = append(toks, "lint:ordered")
	}
	return toks
}

func (p *Pass) suppressedAt(pos token.Position) bool {
	lines := p.suppress[pos.Filename]
	for _, tok := range p.suppressionTokens() {
		for _, l := range []int{pos.Line, pos.Line - 1} {
			for _, c := range lines[l] {
				if strings.HasPrefix(c, tok) {
					return true
				}
			}
		}
	}
	return false
}

// buildSuppressions indexes //lint: comments by file and line.
func buildSuppressions(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	out := map[string]map[int][]string{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := out[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					out[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], text)
			}
		}
	}
	return out
}

// RunAnalyzers applies every analyzer to every loaded package it
// applies to, returning all diagnostics sorted by position. The
// bypassApplies flag is used by the test harness to exercise an
// analyzer on a testdata package regardless of its AppliesTo gate.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer, bypassApplies bool) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup := buildSuppressions(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			if !bypassApplies && a.AppliesTo != nil && !a.AppliesTo(pkg.PkgPath) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				suppress: sup,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		if diags[i].Column != diags[j].Column {
			return diags[i].Column < diags[j].Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		MapIter,
		DetPure,
		HotAlloc,
		PromNames,
		AtomicAlign,
		LockCopy,
	}
}

// Lookup returns the named analyzer, or nil.
func Lookup(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// pathIn reports whether pkgPath is one of the listed package paths.
func pathIn(pkgPath string, paths []string) bool {
	for _, p := range paths {
		if pkgPath == p {
			return true
		}
	}
	return false
}
