package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// AtomicAlign proves the GOARCH=386 invariant PR 5 was bitten by:
// sync/atomic's 64-bit operations fault on 32-bit platforms when the
// operand is not 8-byte aligned, and 386 only guarantees 4-byte
// struct field alignment. The analyzer finds every raw int64/uint64
// struct field that the package passes to a 64-bit sync/atomic
// function and checks its offset under 386 sizes; misaligned fields
// must move to the front of the struct (or become atomic.Int64 /
// atomic.Uint64, which carry their own alignment).
var AtomicAlign = &Analyzer{
	Name: "atomicalign",
	Doc:  "checks that 64-bit sync/atomic operands are 8-byte aligned under GOARCH=386",
	Run:  runAtomicAlign,
}

var atomic64Funcs = map[string]bool{
	"AddInt64": true, "AddUint64": true,
	"LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true,
	"SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
}

func runAtomicAlign(p *Pass) error {
	// Fields passed by address to a 64-bit sync/atomic function.
	used := map[*types.Var]ast.Expr{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := usedFunc(p, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !atomic64Funcs[fn.Name()] {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
				if v, ok := s.Obj().(*types.Var); ok {
					if _, seen := used[v]; !seen {
						used[v] = call.Args[0]
					}
				}
			}
			return true
		})
	}
	if len(used) == 0 {
		return nil
	}

	sizes := types.SizesFor("gc", "386")
	fields := make([]*types.Var, 0, len(used))
	for v := range used {
		fields = append(fields, v)
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })
	for _, v := range fields {
		st, idx := owningStruct(p, v)
		if st == nil {
			continue
		}
		all := make([]*types.Var, st.NumFields())
		for i := range all {
			all[i] = st.Field(i)
		}
		offsets := sizes.Offsetsof(all)
		if offsets[idx]%8 != 0 {
			p.Reportf(used[v].Pos(), "field %s is used with 64-bit sync/atomic but sits at offset %d under GOARCH=386; move it first in the struct or use atomic.%s", v.Name(), offsets[idx], atomicTypeFor(v))
		}
	}
	return nil
}

// owningStruct finds the struct type declared in this package that
// contains field v, and v's index within it.
func owningStruct(p *Pass, v *types.Var) (*types.Struct, int) {
	scope := p.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return st, i
			}
		}
	}
	return nil, 0
}

func atomicTypeFor(v *types.Var) string {
	if b, ok := v.Type().Underlying().(*types.Basic); ok && b.Kind() == types.Uint64 {
		return "Uint64"
	}
	return "Int64"
}
