package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness mirrors golang.org/x/tools' analysistest in
// miniature: each testdata/src/<analyzer> package annotates the lines
// where diagnostics must appear with `// want` comments carrying one
// or more backquoted regexps. The analyzer must produce a diagnostic
// matching every expectation, and no diagnostic without one.

var wantTokenRE = regexp.MustCompile("`([^`]*)`")

type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// loadExpectations scans a fixture directory's Go files for `// want`
// comments, keyed by (file base name, line).
func loadExpectations(t *testing.T, dir string) map[string]map[int][]*expectation {
	t.Helper()
	out := map[string]map[int][]*expectation{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			_, after, found := strings.Cut(sc.Text(), "// want ")
			if !found {
				continue
			}
			for _, m := range wantTokenRE.FindAllStringSubmatch(after, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), line, m[1], err)
				}
				byLine := out[e.Name()]
				if byLine == nil {
					byLine = map[int][]*expectation{}
					out[e.Name()] = byLine
				}
				byLine[line] = append(byLine[line], &expectation{re: re, raw: m[1]})
			}
		}
		f.Close()
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// runFixture loads testdata/src/<name>, runs exactly the analyzer of
// the same name with the AppliesTo gate bypassed, and diffs the
// diagnostics against the fixture's want comments.
func runFixture(t *testing.T, name string) {
	t.Helper()
	a := Lookup(name)
	if a == nil {
		t.Fatalf("no analyzer named %q", name)
	}
	pkgs, err := Load(".", "./testdata/src/"+name)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture loaded %d packages, want 1", len(pkgs))
	}
	diags, err := RunAnalyzers(pkgs, []*Analyzer{a}, true)
	if err != nil {
		t.Fatal(err)
	}
	want := loadExpectations(t, filepath.Join("testdata", "src", name))
	if len(want) == 0 {
		t.Fatalf("fixture %s has no want comments; it would pass vacuously", name)
	}

	for _, d := range diags {
		base := filepath.Base(d.File)
		var hit *expectation
		for _, exp := range want[base][d.Line] {
			if exp.re.MatchString(d.Message) {
				hit = exp
				break
			}
		}
		if hit == nil {
			t.Errorf("unexpected diagnostic %s", d)
			continue
		}
		hit.matched = true
	}
	for file, byLine := range want {
		for line, exps := range byLine {
			for _, exp := range exps {
				if !exp.matched {
					t.Errorf("%s:%d: no diagnostic matched want %q", file, line, exp.raw)
				}
			}
		}
	}
}

func TestAnalyzerFixtures(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) { runFixture(t, a.Name) })
	}
}

// TestSuiteRegistry pins the suite's shape: at least the five
// invariant families the CI lane depends on, each resolvable by name.
func TestSuiteRegistry(t *testing.T) {
	if n := len(All()); n < 5 {
		t.Fatalf("analyzer suite has %d analyzers, want >= 5", n)
	}
	for _, name := range []string{"mapiter", "detpure", "hotalloc", "promnames", "atomicalign", "lockcopy"} {
		if Lookup(name) == nil {
			t.Errorf("Lookup(%q) = nil", name)
		}
		if a := Lookup(name); a != nil && a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", name)
		}
	}
	if Lookup("nosuch") != nil {
		t.Error("Lookup of unknown analyzer did not return nil")
	}
}

// TestRepoIsClean runs the full suite over the repository exactly the
// way CI's blocking lane does and requires zero findings, so a
// regression fails `go test ./...` even where the samie-lint binary
// is not wired in.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree lint is not short")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	diags, err := RunAnalyzers(pkgs, All(), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
