package tlb

import "testing"

func TestConfigValidate(t *testing.T) {
	for _, c := range []Config{
		{Name: "bad", Entries: 0},
		{Name: "bad", Entries: 4, HitLatency: -1},
		{Name: "bad", Entries: 4, MissPenalty: -1},
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("invalid config accepted: %+v", c)
		}
	}
	for _, c := range []Config{PaperDTLB(), PaperITLB()} {
		if err := c.Validate(); err != nil {
			t.Errorf("paper config rejected: %v", err)
		}
	}
}

func TestVPN(t *testing.T) {
	if VPN(0) != 0 || VPN(4095) != 0 || VPN(4096) != 1 {
		t.Fatal("VPN arithmetic wrong")
	}
}

func TestMissThenHit(t *testing.T) {
	tl := New(Config{Name: "t", Entries: 4, HitLatency: 1, MissPenalty: 30})
	hit, lat := tl.Lookup(0x1000)
	if hit || lat != 31 {
		t.Fatalf("cold lookup: hit=%v lat=%d", hit, lat)
	}
	hit, lat = tl.Lookup(0x1800) // same page
	if !hit || lat != 1 {
		t.Fatalf("same-page lookup: hit=%v lat=%d", hit, lat)
	}
	if tl.Hits() != 1 || tl.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d", tl.Hits(), tl.Misses())
	}
}

func TestLRUReplacement(t *testing.T) {
	tl := New(Config{Name: "t", Entries: 2, HitLatency: 1, MissPenalty: 10})
	tl.Lookup(0 * PageBytes)
	tl.Lookup(1 * PageBytes)
	tl.Lookup(0 * PageBytes) // touch page 0; page 1 is LRU
	tl.Lookup(2 * PageBytes) // evicts page 1
	if !tl.Probe(0) {
		t.Fatal("MRU page evicted")
	}
	if tl.Probe(1 * PageBytes) {
		t.Fatal("LRU page survived")
	}
	if !tl.Probe(2 * PageBytes) {
		t.Fatal("new page missing")
	}
}

func TestCapacity(t *testing.T) {
	cfg := PaperDTLB()
	tl := New(cfg)
	for i := 0; i < cfg.Entries; i++ {
		tl.Lookup(uint64(i) * PageBytes)
	}
	// All resident: re-touch hits.
	for i := 0; i < cfg.Entries; i++ {
		if hit, _ := tl.Lookup(uint64(i) * PageBytes); !hit {
			t.Fatalf("page %d evicted below capacity", i)
		}
	}
	if tl.Misses() != uint64(cfg.Entries) {
		t.Fatalf("misses = %d, want %d", tl.Misses(), cfg.Entries)
	}
}

func TestMissRateAndReset(t *testing.T) {
	tl := New(PaperDTLB())
	if tl.MissRate() != 0 {
		t.Fatal("empty TLB miss rate != 0")
	}
	tl.Lookup(0x1000)
	tl.Lookup(0x1000)
	if tl.MissRate() != 0.5 {
		t.Fatalf("miss rate = %v", tl.MissRate())
	}
	tl.ResetStats()
	if tl.Hits() != 0 || tl.Misses() != 0 {
		t.Fatal("ResetStats failed")
	}
	if !tl.Probe(0x1000) {
		t.Fatal("ResetStats dropped entries")
	}
}
