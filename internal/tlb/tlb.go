// Package tlb models the fully-associative translation lookaside
// buffers of Table 2: 128-entry ITLB and DTLB with LRU replacement and
// 1-cycle access. The SAMIE-LSQ caches a translation inside an LSQ
// entry so that instructions sharing the entry skip the DTLB lookup
// entirely (§3.4); that logic lives in the core package — this package
// only provides the TLB structure itself.
package tlb

import "fmt"

// PageBytes is the virtual memory page size assumed by the model.
const PageBytes = 4096

// Config sizes a TLB.
type Config struct {
	Name        string
	Entries     int
	HitLatency  int // cycles
	MissPenalty int // cycles added on a TLB miss (page-table walk)
}

// PaperDTLB returns the Table 2 DTLB: 128 entries, fully associative,
// 1-cycle access. The paper does not state the miss penalty; we use
// SimpleScalar's default 30-cycle walk.
func PaperDTLB() Config {
	return Config{Name: "dtlb", Entries: 128, HitLatency: 1, MissPenalty: 30}
}

// PaperITLB returns the Table 2 ITLB configuration.
func PaperITLB() Config {
	return Config{Name: "itlb", Entries: 128, HitLatency: 1, MissPenalty: 30}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Entries <= 0 {
		return fmt.Errorf("tlb %s: entries must be positive", c.Name)
	}
	if c.HitLatency < 0 || c.MissPenalty < 0 {
		return fmt.Errorf("tlb %s: latencies must be non-negative", c.Name)
	}
	return nil
}

type entry struct {
	vpn   uint64
	valid bool
	// Intrusive LRU list links (slot indices; -1 terminates).
	prev, next int
}

// TLB is a fully-associative LRU TLB over 4KB pages. Lookups are O(1):
// a vpn-indexed map finds the slot and an intrusive doubly-linked list
// maintains recency, replacing the original timestamp scan over every
// entry per access. Evicted slots are not deleted from the map — a
// stale index is detected by re-checking the slot's current vpn — so
// steady-state lookups allocate nothing; the map is bounded by the
// distinct pages the workload touches.
type TLB struct {
	cfg     Config
	entries []entry
	slotOf  map[uint64]int // vpn -> slot hint (validated on use)
	mru     int            // most recently used slot, -1 when empty
	lru     int            // least recently used slot, -1 when empty
	filled  int            // slots ever used (they fill in index order)

	hits, misses uint64
}

// New builds a TLB; panics on invalid configuration.
func New(cfg Config) *TLB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &TLB{
		cfg:     cfg,
		entries: make([]entry, cfg.Entries),
		slotOf:  make(map[uint64]int),
		mru:     -1,
		lru:     -1,
	}
}

// detach unlinks slot i from the recency list.
func (t *TLB) detach(i int) {
	e := &t.entries[i]
	if e.prev >= 0 {
		t.entries[e.prev].next = e.next
	} else {
		t.mru = e.next
	}
	if e.next >= 0 {
		t.entries[e.next].prev = e.prev
	} else {
		t.lru = e.prev
	}
}

// toFront makes slot i the most recently used.
func (t *TLB) toFront(i int) {
	e := &t.entries[i]
	e.prev, e.next = -1, t.mru
	if t.mru >= 0 {
		t.entries[t.mru].prev = i
	}
	t.mru = i
	if t.lru < 0 {
		t.lru = i
	}
}

// Config returns the TLB configuration.
func (t *TLB) Config() Config { return t.cfg }

// VPN returns the virtual page number of an address.
func VPN(addr uint64) uint64 { return addr / PageBytes }

// Translation is the cached result of a lookup; the SAMIE-LSQ stores
// one of these per entry.
type Translation struct {
	VPN   uint64
	Valid bool
}

// Lookup translates addr, filling on a miss, and returns whether it
// hit together with the latency in cycles.
func (t *TLB) Lookup(addr uint64) (hit bool, latency int) {
	vpn := VPN(addr)
	if i, ok := t.slotOf[vpn]; ok && t.entries[i].valid && t.entries[i].vpn == vpn {
		t.hits++
		if t.mru != i {
			t.detach(i)
			t.toFront(i)
		}
		return true, t.cfg.HitLatency
	}
	t.misses++
	var victim int
	if t.filled < len(t.entries) {
		victim = t.filled // slots fill in index order, like the original
		t.filled++
	} else {
		victim = t.lru
		t.detach(victim)
	}
	t.entries[victim].vpn = vpn
	t.entries[victim].valid = true
	t.toFront(victim)
	t.slotOf[vpn] = victim
	return false, t.cfg.HitLatency + t.cfg.MissPenalty
}

// Probe reports whether addr's page is resident without updating
// state.
func (t *TLB) Probe(addr uint64) bool {
	vpn := VPN(addr)
	i, ok := t.slotOf[vpn]
	return ok && t.entries[i].valid && t.entries[i].vpn == vpn
}

// ResetStats zeroes the hit/miss counters (entries are kept). Used at
// the end of simulation warm-up.
func (t *TLB) ResetStats() { t.hits, t.misses = 0, 0 }

// Hits returns the number of hitting lookups.
func (t *TLB) Hits() uint64 { return t.hits }

// Misses returns the number of missing lookups.
func (t *TLB) Misses() uint64 { return t.misses }

// MissRate returns misses/(hits+misses), 0 if no lookups.
func (t *TLB) MissRate() float64 {
	n := t.hits + t.misses
	if n == 0 {
		return 0
	}
	return float64(t.misses) / float64(n)
}
