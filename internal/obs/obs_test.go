package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceParentRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	hdr := sc.TraceParent()
	if len(hdr) != 55 || !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("malformed traceparent %q", hdr)
	}
	got, ok := ParseTraceParent(hdr)
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v want %+v", got, ok, sc)
	}
}

func TestParseTraceParentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-short-span-01",
		"00-00000000000000000000000000000000-0000000000000000-01", // all-zero IDs
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x",
		"00-4bf92f3577b34da6a3ce929d0e0e473Z-00f067aa0ba902b7-01",
	}
	for _, v := range bad {
		if _, ok := ParseTraceParent(v); ok {
			t.Fatalf("ParseTraceParent(%q) accepted", v)
		}
	}
	// Future versions and trailing vendor fields must still parse.
	for _, v := range []string{
		"cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
	} {
		if _, ok := ParseTraceParent(v); !ok {
			t.Fatalf("ParseTraceParent(%q) rejected", v)
		}
	}
}

func TestRecorderSpanTree(t *testing.T) {
	r := NewRecorder(64)
	r.SetEnabled(true)
	ctx, root := r.StartSpan(context.Background(), "sweep")
	_, child := r.StartSpan(ctx, "chunk")
	if child.Context().Trace != root.Context().Trace {
		t.Fatalf("child trace %s != root trace %s", child.Context().Trace, root.Context().Trace)
	}
	child.SetAttr("replica", "r1")
	child.End()
	root.End()

	spans := r.Trace(root.Context().Trace.String())
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	var rootRec, childRec SpanRecord
	for _, sr := range spans {
		switch sr.Name {
		case "sweep":
			rootRec = sr
		case "chunk":
			childRec = sr
		}
	}
	if !rootRec.Root || rootRec.ParentID != "" {
		t.Fatalf("root record wrong: %+v", rootRec)
	}
	if childRec.Root || childRec.ParentID != rootRec.SpanID {
		t.Fatalf("child record wrong: %+v (root span %s)", childRec, rootRec.SpanID)
	}
	if len(childRec.Attrs) != 1 || childRec.Attrs[0].Key != "replica" {
		t.Fatalf("child attrs wrong: %+v", childRec.Attrs)
	}

	roots := r.Roots(0)
	if len(roots) != 1 || roots[0].Name != "sweep" || roots[0].Spans != 2 {
		t.Fatalf("roots wrong: %+v", roots)
	}
}

func TestRemoteChildIsLocalRoot(t *testing.T) {
	r := NewRecorder(8)
	r.SetEnabled(true)
	remote := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	_, s := r.StartRemoteChild(context.Background(), "http GET", remote)
	if s.Context().Trace != remote.Trace {
		t.Fatalf("remote child did not adopt trace")
	}
	s.End()
	spans := r.Trace(remote.Trace.String())
	if len(spans) != 1 || !spans[0].Root || spans[0].ParentID != remote.Span.String() {
		t.Fatalf("remote child record wrong: %+v", spans)
	}
}

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(4)
	r.SetEnabled(true)
	for range 10 {
		_, s := r.StartSpan(context.Background(), "x")
		s.End()
	}
	if got := len(r.snapshot()); got != 4 {
		t.Fatalf("ring kept %d spans, want 4", got)
	}
	// Overwrites are no longer silent: each of the 6 evicted spans is
	// accounted on the dropped counter.
	if got := r.Dropped(); got != 6 {
		t.Fatalf("Dropped() = %d, want 6", got)
	}
}

func TestDisabledPathZeroAllocs(t *testing.T) {
	r := NewRecorder(8)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c2, s := r.StartSpan(ctx, "noop")
		s.SetAttr("k", "v")
		s.End()
		_, s2 := StartSpan(c2, "noop2")
		s2.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates: %v allocs/op", allocs)
	}
}

func TestDisabledSpanIsNil(t *testing.T) {
	r := NewRecorder(8)
	ctx, s := r.StartSpan(context.Background(), "x")
	if s != nil {
		t.Fatal("disabled recorder returned live span")
	}
	if s.TraceParent() != "" || s.Context().IsValid() {
		t.Fatal("nil span leaked identity")
	}
	if SpanFromContext(ctx) != nil {
		t.Fatal("disabled recorder mutated context")
	}
}

func TestHistogramSnapshotAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	if s := h.Snapshot(); s.Count != 0 || s.Bounds != nil {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	for range 50 {
		h.Observe(5 * time.Millisecond) // bucket 0
	}
	for range 40 {
		h.Observe(50 * time.Millisecond) // bucket 1
	}
	for range 10 {
		h.Observe(5 * time.Second) // +Inf bucket
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count %d", s.Count)
	}
	if got := []uint64{s.Counts[0], s.Counts[1], s.Counts[2], s.Counts[3]}; got[0] != 50 || got[1] != 40 || got[2] != 0 || got[3] != 10 {
		t.Fatalf("bucket counts %v", got)
	}
	// p50 lands exactly at the top of bucket 0.
	if q := s.Quantile(0.5); q < 0.009 || q > 0.011 {
		t.Fatalf("p50 = %v, want ~0.01", q)
	}
	// p95 lands in the +Inf bucket -> clamped to last finite bound.
	if q := s.Quantile(0.99); q != 1 {
		t.Fatalf("p99 = %v, want clamp to 1", q)
	}
	if q := s.Quantile(0); q != 0 {
		t.Fatalf("p0 = %v", q)
	}

	var agg HistSnapshot
	agg.Add(s)
	agg.Add(s)
	if agg.Count != 200 || agg.Counts[0] != 100 || agg.Sum <= s.Sum {
		t.Fatalf("merge wrong: %+v", agg)
	}
}

func TestPhaseTimesSetGetAndNames(t *testing.T) {
	var pt PhaseTimes
	if !pt.IsZero() {
		t.Fatal("zero value not zero")
	}
	for i, p := range AllPhases() {
		pt.Set(p, time.Duration(i+1)*time.Millisecond)
	}
	for i, p := range AllPhases() {
		want := float64(i+1) * 1e-3
		if got := pt.Get(p); got < want*0.999 || got > want*1.001 {
			t.Fatalf("phase %s = %v, want %v", p, got, want)
		}
	}
	seen := map[string]bool{}
	for _, p := range AllPhases() {
		name := p.String()
		if name == "unknown" || seen[name] {
			t.Fatalf("bad phase name %q", name)
		}
		seen[name] = true
	}
	// JSON omits phases that never ran.
	b, err := json.Marshal(PhaseTimes{DiskTier: 0.5})
	if err != nil || string(b) != `{"disk_tier":0.5}` {
		t.Fatalf("phase JSON: %s err=%v", b, err)
	}
}

func TestChromeTraceExport(t *testing.T) {
	r := NewRecorder(16)
	r.SetEnabled(true)
	ctx, root := r.StartSpan(context.Background(), "sweep")
	root.SetAttr("source", "coordinator")
	_, c := r.StartSpan(ctx, "chunk")
	c.SetAttr("source", "replica-1")
	c.End()
	root.End()

	out, err := ChromeTrace(r.snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &f); err != nil {
		t.Fatalf("not valid trace-event JSON: %v", err)
	}
	if len(f.TraceEvents) != 4 { // b/e pair per span
		t.Fatalf("got %d events, want 4", len(f.TraceEvents))
	}
	begins := 0
	pids := map[float64]bool{}
	for _, ev := range f.TraceEvents {
		if ev["ph"] == "b" {
			begins++
		}
		pids[ev["pid"].(float64)] = true
	}
	if begins != 2 {
		t.Fatalf("got %d begin events, want 2", begins)
	}
	if len(pids) != 2 {
		t.Fatalf("sources should land in distinct pid lanes, got %v", pids)
	}
}
