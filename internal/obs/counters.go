package obs

// Counter tracks: numeric time series (occupancy, IPC) recorded
// alongside spans and exported as Chrome counter ("C") events, so the
// -trace-out Perfetto view renders occupancy curves under the span
// tree. A track belongs to a trace, so cluster tooling can reassemble
// a sweep's tracks from every replica the same way it merges spans.

import "context"

// CounterSample is one point of a counter track: a timestamp in
// microseconds since the Unix epoch (the Chrome trace-event clock as
// this package emits it) and the series values at that instant.
type CounterSample struct {
	TS     int64              `json:"ts"`
	Values map[string]float64 `json:"values"`
}

// CounterTrack is one named multi-series counter. Source labels the
// process that recorded it (replica URL, "coordinator"); the Chrome
// export maps it to the same pid lane as that source's spans.
type CounterTrack struct {
	TraceID string          `json:"trace_id,omitempty"`
	Source  string          `json:"source,omitempty"`
	Name    string          `json:"name"`
	Samples []CounterSample `json:"samples"`
}

// maxCounterTracks bounds how many tracks a recorder retains; the
// oldest are evicted first, mirroring the span ring.
const maxCounterTracks = 256

// RecordCounters retains a counter track. No-op on a nil or disabled
// recorder. When the bound is hit the oldest track is dropped (counted
// with the same dropped accounting as span overwrites would be — the
// tracks ring is far larger than any sweep produces).
func (r *Recorder) RecordCounters(t CounterTrack) {
	if r == nil || !r.enabled.Load() || len(t.Samples) == 0 {
		return
	}
	r.mu.Lock()
	if len(r.counters) >= maxCounterTracks {
		n := copy(r.counters, r.counters[1:])
		r.counters = r.counters[:n]
		r.dropped.Add(1)
	}
	r.counters = append(r.counters, t)
	r.mu.Unlock()
}

// Counters copies every retained counter track, oldest first.
func (r *Recorder) Counters() []CounterTrack {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]CounterTrack(nil), r.counters...)
}

// CountersFor returns the retained counter tracks of one trace.
func (r *Recorder) CountersFor(traceID string) []CounterTrack {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []CounterTrack
	for _, t := range r.counters {
		if t.TraceID == traceID {
			out = append(out, t)
		}
	}
	return out
}

// RecordCounters retains a track on the recorder owned by the span in
// ctx (the request's recorder inside a traced handler), falling back
// to the Default recorder; the track inherits the context's trace ID
// when it carries none. Free when no recorder is enabled.
func RecordCounters(ctx context.Context, t CounterTrack) {
	rec := defaultRecorder
	if parent := SpanFromContext(ctx); parent != nil {
		rec = parent.rec
	}
	if sc := SpanContextFromContext(ctx); t.TraceID == "" && sc.IsValid() {
		t.TraceID = sc.Trace.String()
	}
	rec.RecordCounters(t)
}
