package obs

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end request tree; SpanID one node in
// it. Both render lowercase hex, matching the W3C traceparent layout.
type TraceID [16]byte

// SpanID identifies one span within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is all zeroes (invalid per W3C).
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is all zeroes (invalid per W3C).
func (s SpanID) IsZero() bool { return s == SpanID{} }

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }
func (s SpanID) String() string  { return hex.EncodeToString(s[:]) }

// NewTraceID returns a random non-zero trace ID.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		a, b := rand.Uint64(), rand.Uint64()
		for i := range 8 {
			t[i] = byte(a >> (8 * i))
			t[8+i] = byte(b >> (8 * i))
		}
	}
	return t
}

// NewSpanID returns a random non-zero span ID.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		v := rand.Uint64()
		for i := range 8 {
			s[i] = byte(v >> (8 * i))
		}
	}
	return s
}

// SpanContext is the propagated identity of a span: enough to parent
// remote children and to stamp a traceparent header.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// IsValid reports whether both IDs are non-zero.
func (sc SpanContext) IsValid() bool { return !sc.Trace.IsZero() && !sc.Span.IsZero() }

// TraceParent renders the W3C header value:
// "00-<32 hex trace>-<16 hex span>-01" (version 00, sampled flag set).
func (sc SpanContext) TraceParent() string {
	buf := make([]byte, 0, 55)
	buf = append(buf, "00-"...)
	buf = hex.AppendEncode(buf, sc.Trace[:])
	buf = append(buf, '-')
	buf = hex.AppendEncode(buf, sc.Span[:])
	buf = append(buf, "-01"...)
	return string(buf)
}

// ParseTraceParent parses a W3C traceparent header value. It accepts
// any version byte and ignores the flags, per the spec's
// forward-compatibility rules, but rejects malformed or all-zero IDs.
func ParseTraceParent(v string) (SpanContext, bool) {
	var sc SpanContext
	if len(v) < 55 || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return sc, false
	}
	if len(v) > 55 && v[55] != '-' {
		return sc, false
	}
	if _, err := hex.Decode(sc.Trace[:], []byte(v[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.Span[:], []byte(v[36:52])); err != nil {
		return SpanContext{}, false
	}
	if !sc.IsValid() {
		return SpanContext{}, false
	}
	return sc, true
}

// Span is one live node in a trace. A nil *Span is a valid no-op:
// every method tolerates it, so disabled-path callers never branch.
// A span is owned by the goroutine that started it; SetAttr and End
// are not synchronized against each other.
type Span struct {
	rec        *Recorder
	sc         SpanContext
	parent     SpanID
	remoteRoot bool // parent came over the wire; this span is a local root
	name       string
	start      time.Time
	attrs      []SpanAttr
	ended      bool
}

// SpanAttr is one key/value annotation on a span.
type SpanAttr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Context returns the span's propagation identity; the zero
// SpanContext for a nil span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// TraceParent renders the span's traceparent header value; empty for
// a nil span.
func (s *Span) TraceParent() string {
	if s == nil {
		return ""
	}
	return s.sc.TraceParent()
}

// SetAttr annotates the span. No-op on nil.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, SpanAttr{Key: key, Value: value})
}

// End completes the span and hands it to the recorder. Safe to call
// more than once; only the first call records.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	if s.rec == nil {
		return
	}
	s.rec.record(SpanRecord{
		TraceID:  s.sc.Trace.String(),
		SpanID:   s.sc.Span.String(),
		ParentID: parentString(s.parent),
		Name:     s.name,
		Root:     s.parent.IsZero() || s.remoteRoot,
		Start:    s.start,
		Duration: time.Since(s.start),
		Attrs:    s.attrs,
	})
}

func parentString(p SpanID) string {
	if p.IsZero() {
		return ""
	}
	return p.String()
}

// SpanRecord is a completed span as stored in the ring and served
// from /v1/trace/{id}.
type SpanRecord struct {
	TraceID  string        `json:"trace_id"`
	SpanID   string        `json:"span_id"`
	ParentID string        `json:"parent_id,omitempty"`
	Name     string        `json:"name"`
	Root     bool          `json:"root,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []SpanAttr    `json:"attrs,omitempty"`
}

// TraceSummary describes one recent root span for /v1/traces.
type TraceSummary struct {
	TraceID  string        `json:"trace_id"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Spans    int           `json:"spans"`
}

type ctxKey struct{}

// ContextWithSpan returns a context carrying the span. Passing a nil
// span returns ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// SpanContextFromContext returns the propagation identity carried by
// ctx (possibly from a remote, unrecorded span), or the zero value.
func SpanContextFromContext(ctx context.Context) SpanContext {
	return SpanFromContext(ctx).Context()
}

// Recorder keeps a fixed ring of recently completed spans. The
// enabled flag is an atomic so the disabled path costs one load and
// allocates nothing — the same discipline as the chaos layer's
// atomic-pointer check.
type Recorder struct {
	enabled atomic.Bool
	dropped atomic.Uint64 // records lost to ring overwrite/eviction

	mu       sync.Mutex
	ring     []SpanRecord
	next     int
	full     bool
	counters []CounterTrack
}

// DefaultRingSize bounds how many completed spans a recorder retains.
// A 148-spec sweep on one replica lands ~600 spans, so the default
// holds several sweeps of history.
const DefaultRingSize = 8192

// NewRecorder builds a recorder retaining up to size completed spans
// (DefaultRingSize when size <= 0). It starts disabled.
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		size = DefaultRingSize
	}
	return &Recorder{ring: make([]SpanRecord, size)}
}

// SetEnabled flips recording. Spans started while disabled are nil
// and stay nil; flipping affects only spans started afterwards.
func (r *Recorder) SetEnabled(on bool) {
	if r != nil {
		r.enabled.Store(on)
	}
}

// Enabled reports whether new spans record.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled.Load() }

// StartSpan begins a span as a child of the span in ctx (if any) and
// returns a derived context carrying it. When the recorder is nil or
// disabled it returns ctx unchanged and a nil span: zero allocations.
func (r *Recorder) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if r == nil || !r.enabled.Load() {
		return ctx, nil
	}
	s := &Span{rec: r, name: name, start: time.Now()}
	if parent := SpanFromContext(ctx); parent != nil {
		s.sc.Trace = parent.sc.Trace
		s.parent = parent.sc.Span
	} else {
		s.sc.Trace = NewTraceID()
	}
	s.sc.Span = NewSpanID()
	return ContextWithSpan(ctx, s), s
}

// StartRemoteChild begins a span parented to a propagated remote
// SpanContext (e.g. a parsed traceparent header). The span is marked
// as a local root so it shows up in Roots listings even though it has
// a parent elsewhere in the fabric.
func (r *Recorder) StartRemoteChild(ctx context.Context, name string, parent SpanContext) (context.Context, *Span) {
	if r == nil || !r.enabled.Load() {
		return ctx, nil
	}
	s := &Span{rec: r, name: name, start: time.Now()}
	if parent.IsValid() {
		s.sc.Trace = parent.Trace
		s.parent = parent.Span
		s.remoteRoot = true
	} else {
		s.sc.Trace = NewTraceID()
	}
	s.sc.Span = NewSpanID()
	return ContextWithSpan(ctx, s), s
}

func (r *Recorder) record(sr SpanRecord) {
	r.mu.Lock()
	if r.full {
		// The slot being reused still holds the oldest retained span;
		// overwriting it is a silent loss unless counted.
		r.dropped.Add(1)
	}
	r.ring[r.next] = sr
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Dropped reports how many records the recorder has lost to ring
// overwrite since construction. A rising value means the ring is too
// small for the retention window the caller expects.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// snapshot copies live records oldest-first.
func (r *Recorder) snapshot() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.ring)
	}
	out := make([]SpanRecord, 0, n)
	if r.full {
		out = append(out, r.ring[r.next:]...)
	}
	out = append(out, r.ring[:r.next]...)
	return out
}

// Spans copies every retained span, oldest-first — the driver export
// path (-trace-out) feeds this to ChromeTrace.
func (r *Recorder) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	return r.snapshot()
}

// Trace returns every retained span belonging to the trace ID
// (lowercase hex), oldest-first. Empty when unknown or evicted.
func (r *Recorder) Trace(traceID string) []SpanRecord {
	if r == nil {
		return nil
	}
	var out []SpanRecord
	for _, sr := range r.snapshot() {
		if sr.TraceID == traceID {
			out = append(out, sr)
		}
	}
	return out
}

// Roots summarizes recent root spans, newest-first, capped at limit
// (<=0 means 50).
func (r *Recorder) Roots(limit int) []TraceSummary {
	if r == nil {
		return nil
	}
	if limit <= 0 {
		limit = 50
	}
	all := r.snapshot()
	counts := make(map[string]int, len(all))
	for _, sr := range all {
		counts[sr.TraceID]++
	}
	var roots []TraceSummary
	for _, sr := range all {
		if !sr.Root {
			continue
		}
		roots = append(roots, TraceSummary{
			TraceID:  sr.TraceID,
			Name:     sr.Name,
			Start:    sr.Start,
			Duration: sr.Duration,
			Spans:    counts[sr.TraceID],
		})
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Start.After(roots[j].Start) })
	if len(roots) > limit {
		roots = roots[:limit]
	}
	return roots
}

// defaultRecorder serves process-wide tracing for the driver cmds
// (samie-cluster, samie-bench); servers own their own recorder.
var defaultRecorder = NewRecorder(DefaultRingSize)

// Default returns the process-wide recorder, disabled until a driver
// opts in (e.g. -trace-out).
func Default() *Recorder { return defaultRecorder }

// StartSpan starts a child of the span in ctx using that span's own
// recorder; with no parent in ctx it falls back to the Default
// recorder. This is the call sites' one-liner: inside a traced
// request it extends the request's trace, inside a driver with the
// default recorder enabled it opens a new local trace, and otherwise
// it is free.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if parent := SpanFromContext(ctx); parent != nil {
		return parent.rec.StartSpan(ctx, name)
	}
	return defaultRecorder.StartSpan(ctx, name)
}
