package obs

import (
	"encoding/json"
	"sort"
)

// chromeEvent is one entry in the Chrome trace-event JSON format
// (the "JSON Array Format" with a traceEvents wrapper) that Perfetto
// and chrome://tracing load directly. Spans are emitted as async
// begin/end pairs keyed by span ID so overlapping spans from many
// goroutines and replicas render on their own tracks without needing
// strict stack nesting; counter tracks are emitted as counter ("C")
// events, whose args must be numeric for the viewer to plot them.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	ID    string         `json:"id,omitempty"`
	TS    int64          `json:"ts"`  // microseconds
	PID   int            `json:"pid"` // process lane: one per source
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// ChromeTrace renders completed spans as Chrome trace-event JSON.
// Spans from different sources (attr "source", e.g. the coordinator
// vs each replica) land in different pid lanes so a merged
// multi-replica sweep reads as one timeline with one lane per
// process.
func ChromeTrace(spans []SpanRecord) ([]byte, error) {
	return ChromeTraceWithCounters(spans, nil)
}

// ChromeTraceWithCounters is ChromeTrace plus counter tracks: each
// track's samples become counter ("C") events in the pid lane of the
// track's source, so occupancy/IPC curves render under the same
// process's span tree.
func ChromeTraceWithCounters(spans []SpanRecord, tracks []CounterTrack) ([]byte, error) {
	sorted := append([]SpanRecord(nil), spans...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start.Before(sorted[j].Start) })

	lanes := map[string]int{}
	laneFor := func(src string) int {
		id, ok := lanes[src]
		if !ok {
			id = len(lanes) + 1
			lanes[src] = id
		}
		return id
	}
	laneOf := func(sr SpanRecord) int {
		src := ""
		for _, a := range sr.Attrs {
			if a.Key == "source" {
				src = a.Value
			}
		}
		return laneFor(src)
	}

	f := chromeFile{TraceEvents: make([]chromeEvent, 0, 2*len(sorted))}
	for _, sr := range sorted {
		args := map[string]any{
			"trace_id": sr.TraceID,
			"span_id":  sr.SpanID,
		}
		if sr.ParentID != "" {
			args["parent_id"] = sr.ParentID
		}
		for _, a := range sr.Attrs {
			args[a.Key] = a.Value
		}
		pid := laneOf(sr)
		begin := chromeEvent{
			Name:  sr.Name,
			Cat:   "span",
			Phase: "b",
			ID:    "0x" + sr.SpanID,
			TS:    sr.Start.UnixMicro(),
			PID:   pid,
			TID:   1,
			Args:  args,
		}
		end := begin
		end.Phase = "e"
		end.TS = sr.Start.Add(sr.Duration).UnixMicro()
		end.Args = nil
		f.TraceEvents = append(f.TraceEvents, begin, end)
	}
	for _, t := range tracks {
		pid := laneFor(t.Source)
		for _, s := range t.Samples {
			args := make(map[string]any, len(s.Values))
			for k, v := range s.Values {
				args[k] = v
			}
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name:  t.Name,
				Cat:   "counter",
				Phase: "C",
				TS:    s.TS,
				PID:   pid,
				TID:   1,
				Args:  args,
			})
		}
	}
	return json.MarshalIndent(f, "", " ")
}
