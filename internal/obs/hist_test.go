package obs

import (
	"testing"
	"time"
)

// Quantile edge cases beyond the happy path in obs_test.go: empty
// snapshots, all mass in one bucket, all mass in the +Inf overflow,
// and observations landing exactly on a bucket boundary.
func TestQuantileEmptySnapshot(t *testing.T) {
	var s HistSnapshot
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Fatalf("empty snapshot Quantile(%v) = %v, want 0", q, got)
		}
	}
	// A constructed-but-never-observed histogram snapshots to the same
	// zero value.
	if got := NewHistogram([]float64{1, 2}).Snapshot().Quantile(0.9); got != 0 {
		t.Fatalf("untouched histogram quantile = %v, want 0", got)
	}
}

func TestQuantileSingleBucketMass(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for range 100 {
		h.Observe(500 * time.Millisecond) // all in (0.1, 1]
	}
	s := h.Snapshot()
	// Every positive quantile interpolates within [0.1, 1]; the top hits
	// the bucket's upper edge and a vanishing q approaches its lower
	// edge. (Quantile(0) itself resolves in the empty first bucket and
	// reports 0 — same as the untouched case above.)
	for _, c := range []struct{ q, want float64 }{
		{1e-6, 0.1}, {0.5, 0.55}, {1, 1},
	} {
		got := s.Quantile(c.q)
		if got < c.want-1e-3 || got > c.want+1e-3 {
			t.Fatalf("Quantile(%v) = %v, want ~%v", c.q, got, c.want)
		}
	}
	if got := s.Quantile(0); got != 0 {
		t.Fatalf("Quantile(0) = %v, want 0", got)
	}
}

func TestQuantileAllMassInOverflow(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1})
	for range 10 {
		h.Observe(time.Hour) // all in +Inf
	}
	s := h.Snapshot()
	// Prometheus semantics: +Inf mass clamps to the last finite bound,
	// at every quantile.
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0.1 {
			t.Fatalf("Quantile(%v) = %v, want clamp to 0.1", q, got)
		}
	}
	// Out-of-range q values are clamped to [0, 1], not rejected: q > 1
	// behaves like q = 1 (clamped to the last bound here), q < 0 like
	// q = 0 (rank 0, resolved in the empty first bucket).
	if got := s.Quantile(2); got != 0.1 {
		t.Fatalf("Quantile(2) = %v, want 0.1", got)
	}
	if got := s.Quantile(-1); got != s.Quantile(0) {
		t.Fatalf("Quantile(-1) = %v, want Quantile(0) = %v", got, s.Quantile(0))
	}
}

func TestQuantileExactBoundaryObservations(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	// Upper edges are inclusive: an observation exactly on a bound must
	// land in that bucket, not the next one.
	for range 4 {
		h.Observe(time.Millisecond) // == bounds[0]
	}
	for range 4 {
		h.Observe(10 * time.Millisecond) // == bounds[1]
	}
	s := h.Snapshot()
	if s.Counts[0] != 4 || s.Counts[1] != 4 || s.Counts[2] != 0 {
		t.Fatalf("boundary observations landed wrong: counts %v", s.Counts)
	}
	// The median splits exactly between the two buckets: rank 4 is the
	// top of bucket 0.
	if got := s.Quantile(0.5); got != 0.001 {
		t.Fatalf("median = %v, want 0.001 (top of the first bucket)", got)
	}
	if got := s.Quantile(1); got < 0.01-1e-9 || got > 0.01+1e-9 {
		t.Fatalf("p100 = %v, want ~0.01", got)
	}
}
