package obs

import "time"

// Phase enumerates where wall-clock goes inside one engine job, from
// the moment the request reaches the scheduler to the artifact hitting
// disk. The set is closed: dashboards and the cluster stats printer
// iterate AllPhases, so adding a phase means extending this list.
type Phase int

const (
	// PhaseQueueWait: from job submission to the job closure starting
	// (engine slot acquisition + memo bookkeeping).
	PhaseQueueWait Phase = iota
	// PhaseDiskTier: loading a prior artifact from the disk tier.
	PhaseDiskTier
	// PhasePeerTier: probing/fetching the result from peer replicas.
	PhasePeerTier
	// PhaseWarmup: the run's warmup instructions (stats discarded).
	PhaseWarmup
	// PhaseMeasured: the measured simulation cycles.
	PhaseMeasured
	// PhasePersist: writing the finished artifact to the disk tier.
	PhasePersist

	NumPhases int = iota
)

var phaseNames = [NumPhases]string{
	"queue_wait", "disk_tier", "peer_tier", "warmup", "measured", "persist",
}

func (p Phase) String() string {
	if p < 0 || int(p) >= NumPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// AllPhases lists every phase in declaration order.
func AllPhases() []Phase {
	out := make([]Phase, NumPhases)
	for i := range out {
		out[i] = Phase(i)
	}
	return out
}

// PhaseTimes is the per-run phase breakdown in seconds, attached to
// RunResponse. A phase the run never entered stays zero and is
// omitted from JSON; e.g. a disk-tier hit reports only queue_wait and
// disk_tier.
type PhaseTimes struct {
	QueueWait float64 `json:"queue_wait,omitempty"`
	DiskTier  float64 `json:"disk_tier,omitempty"`
	PeerTier  float64 `json:"peer_tier,omitempty"`
	Warmup    float64 `json:"warmup,omitempty"`
	Measured  float64 `json:"measured,omitempty"`
	Persist   float64 `json:"persist,omitempty"`
}

// Set records a phase duration.
func (t *PhaseTimes) Set(p Phase, d time.Duration) {
	sec := d.Seconds()
	switch p {
	case PhaseQueueWait:
		t.QueueWait = sec
	case PhaseDiskTier:
		t.DiskTier = sec
	case PhasePeerTier:
		t.PeerTier = sec
	case PhaseWarmup:
		t.Warmup = sec
	case PhaseMeasured:
		t.Measured = sec
	case PhasePersist:
		t.Persist = sec
	}
}

// Get returns a phase duration in seconds.
func (t PhaseTimes) Get(p Phase) float64 {
	switch p {
	case PhaseQueueWait:
		return t.QueueWait
	case PhaseDiskTier:
		return t.DiskTier
	case PhasePeerTier:
		return t.PeerTier
	case PhaseWarmup:
		return t.Warmup
	case PhaseMeasured:
		return t.Measured
	case PhasePersist:
		return t.Persist
	}
	return 0
}

// IsZero reports whether no phase was recorded.
func (t PhaseTimes) IsZero() bool { return t == PhaseTimes{} }

// PhaseBuckets are the upper bounds for samie_run_phase_seconds.
// Phases span five orders of magnitude — disk loads are tens of
// microseconds, big measured runs are seconds — so the ladder starts
// far below the peer-fetch buckets.
var PhaseBuckets = []float64{
	1e-5, 1e-4, 1e-3, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// PhaseStats maps phase name to its latency distribution; the wire
// form inside stats responses.
type PhaseStats map[string]HistSnapshot

// Add merges another replica's phase stats for cluster aggregation.
// Callers that fold many PhaseStats must fix the fold order (the
// bucket sums are float64); within one call, distinct phase names
// merge independently.
func (p PhaseStats) Add(o PhaseStats) {
	//lint:ordered distinct phase names merge into distinct entries
	for name, snap := range o {
		cur := p[name]
		cur.Add(snap)
		p[name] = cur
	}
}
