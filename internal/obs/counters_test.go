package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
)

func TestRecordCountersRetainsAndFilters(t *testing.T) {
	r := NewRecorder(8)
	r.SetEnabled(true)
	r.RecordCounters(CounterTrack{Name: "empty"}) // no samples -> dropped silently
	r.RecordCounters(CounterTrack{TraceID: "t1", Name: "occ a", Samples: []CounterSample{{TS: 1, Values: map[string]float64{"lsq": 3}}}})
	r.RecordCounters(CounterTrack{TraceID: "t2", Name: "occ b", Samples: []CounterSample{{TS: 2, Values: map[string]float64{"lsq": 5}}}})

	if all := r.Counters(); len(all) != 2 || all[0].Name != "occ a" {
		t.Fatalf("counters = %+v, want 2 tracks oldest-first", all)
	}
	got := r.CountersFor("t2")
	if len(got) != 1 || got[0].Name != "occ b" || got[0].Samples[0].Values["lsq"] != 5 {
		t.Fatalf("CountersFor(t2) = %+v", got)
	}
	if r.CountersFor("missing") != nil {
		t.Fatal("unknown trace returned tracks")
	}
}

func TestRecordCountersDisabledAndNil(t *testing.T) {
	var nilRec *Recorder
	nilRec.RecordCounters(CounterTrack{Name: "x", Samples: []CounterSample{{TS: 1}}})
	if nilRec.Counters() != nil || nilRec.Dropped() != 0 {
		t.Fatal("nil recorder not inert")
	}
	r := NewRecorder(8) // disabled
	r.RecordCounters(CounterTrack{Name: "x", Samples: []CounterSample{{TS: 1}}})
	if len(r.Counters()) != 0 {
		t.Fatal("disabled recorder retained a track")
	}
}

func TestCounterTrackBoundEvictsOldest(t *testing.T) {
	r := NewRecorder(8)
	r.SetEnabled(true)
	for i := 0; i < maxCounterTracks+3; i++ {
		r.RecordCounters(CounterTrack{
			Name:    fmt.Sprintf("track-%d", i),
			Samples: []CounterSample{{TS: int64(i)}},
		})
	}
	all := r.Counters()
	if len(all) != maxCounterTracks {
		t.Fatalf("retained %d tracks, want %d", len(all), maxCounterTracks)
	}
	if all[0].Name != "track-3" || all[len(all)-1].Name != fmt.Sprintf("track-%d", maxCounterTracks+2) {
		t.Fatalf("eviction order wrong: first %q last %q", all[0].Name, all[len(all)-1].Name)
	}
	if r.Dropped() != 3 {
		t.Fatalf("Dropped() = %d, want 3 evicted tracks counted", r.Dropped())
	}
}

// TestChromeTraceCounterEvents: counter tracks export as "C" events
// with numeric args, sharing the pid lane of same-source spans so the
// occupancy curves render under that process's span tree.
func TestChromeTraceCounterEvents(t *testing.T) {
	r := NewRecorder(8)
	r.SetEnabled(true)
	_, sp := r.StartSpan(context.Background(), "simulate")
	sp.SetAttr("source", "replica-1")
	sp.End()

	out, err := ChromeTraceWithCounters(r.snapshot(), []CounterTrack{{
		Source: "replica-1",
		Name:   "occ gzip/samie",
		Samples: []CounterSample{
			{TS: 10, Values: map[string]float64{"lsq": 12, "ipc": 1.5}},
			{TS: 20, Values: map[string]float64{"lsq": 9, "ipc": 1.1}},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &f); err != nil {
		t.Fatalf("not valid trace-event JSON: %v", err)
	}
	var spanPID, counterPID float64 = -1, -2
	counters := 0
	for _, ev := range f.TraceEvents {
		switch ev["ph"] {
		case "b":
			spanPID = ev["pid"].(float64)
		case "C":
			counters++
			counterPID = ev["pid"].(float64)
			args := ev["args"].(map[string]any)
			if _, ok := args["lsq"].(float64); !ok {
				t.Fatalf("counter args not numeric: %+v", args)
			}
		}
	}
	if counters != 2 {
		t.Fatalf("got %d counter events, want 2", counters)
	}
	if spanPID != counterPID {
		t.Fatalf("counter lane %v != same-source span lane %v", counterPID, spanPID)
	}
}

// TestRecordCountersFromContext: the package-level helper routes to
// the recorder owned by the span in ctx and stamps the context's trace
// ID onto an unlabeled track.
func TestRecordCountersFromContext(t *testing.T) {
	r := NewRecorder(8)
	r.SetEnabled(true)
	ctx, sp := r.StartSpan(context.Background(), "sweep")
	RecordCounters(ctx, CounterTrack{Name: "occ", Samples: []CounterSample{{TS: 1}}})
	sp.End()

	got := r.CountersFor(sp.Context().Trace.String())
	if len(got) != 1 || got[0].Name != "occ" {
		t.Fatalf("track not stamped with the context trace: %+v", r.Counters())
	}
	// No span in ctx: falls back to the (disabled) default recorder and
	// stays a no-op rather than panicking.
	RecordCounters(context.Background(), CounterTrack{Name: "stray", Samples: []CounterSample{{TS: 9}}})
}
