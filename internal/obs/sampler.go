package obs

// Interval telemetry: the cycle core snapshots its microarchitectural
// state (IPC, queue occupancies, issue-scheduler load, per-structure
// energy deltas) every stride cycles into a bounded, self-compacting
// ring. The sampler follows the same discipline as spans: an atomic
// enabled gate, a nil receiver that is a total no-op, and zero
// allocations on the disabled path, so the hook can live in the
// simulator's per-cycle hot loop permanently.

import "sync/atomic"

// DefaultSampleStride is the default sampling interval in cycles.
const DefaultSampleStride = 4096

// DefaultTimelineCap bounds how many samples a timeline retains; when
// the buffer fills, adjacent samples merge pairwise and the stride
// doubles, so a run of any length fits.
const DefaultTimelineCap = 512

// TimelineSample is one interval snapshot. Occupancies are
// point-in-time values at the sample cycle; IPC and the *PJ fields
// are deltas over the interval since the previous sample.
type TimelineSample struct {
	Cycle   uint64  `json:"cycle"`
	IPC     float64 `json:"ipc"`
	ROB     int     `json:"rob"`
	FetchQ  int     `json:"fetch_q"`
	ReplayQ int     `json:"replay_q"`
	LSQ     int     `json:"lsq"`
	AddrBuf int     `json:"addr_buf,omitempty"`

	// Issue-scheduler load (zero under the legacy walk, which has no
	// scheduler state to introspect).
	Waiters int `json:"waiters,omitempty"`
	Wheel   int `json:"wheel,omitempty"`
	Attn    int `json:"attn,omitempty"`

	// Per-structure dynamic-energy deltas over the interval, pJ.
	ConvLSQPJ float64 `json:"conv_lsq_pj,omitempty"`
	DistribPJ float64 `json:"distrib_pj,omitempty"`
	SharedPJ  float64 `json:"shared_pj,omitempty"`
	AddrBufPJ float64 `json:"addr_buf_pj,omitempty"`
	BusPJ     float64 `json:"bus_pj,omitempty"`
	DcachePJ  float64 `json:"dcache_pj,omitempty"`
	DTLBPJ    float64 `json:"dtlb_pj,omitempty"`
}

// Timeline is the wire form of a completed run's interval samples.
// Stride is the final sampling interval (it doubles every time the
// buffer compacted, so long runs report a coarser stride than they
// started with).
type Timeline struct {
	Stride  uint64           `json:"stride"`
	Samples []TimelineSample `json:"samples"`
}

// IntervalSampler collects TimelineSamples at a fixed cycle stride
// into a bounded buffer. It is single-goroutine like the CPU core that
// feeds it; only the enabled gate is atomic so Due stays one load on
// the disabled path. The zero of everything useful: a nil sampler is
// never due and records nothing.
type IntervalSampler struct {
	enabled atomic.Bool

	baseStride uint64
	stride     uint64
	next       uint64 // first cycle at or after which Due fires
	samples    []TimelineSample
}

// NewIntervalSampler builds a sampler with the given stride in cycles
// (<=0 means DefaultSampleStride) and sample capacity (<=0 means
// DefaultTimelineCap; odd capacities round up so pairwise compaction
// stays exact). It starts disabled.
func NewIntervalSampler(stride uint64, capacity int) *IntervalSampler {
	if stride == 0 {
		stride = DefaultSampleStride
	}
	if capacity <= 0 {
		capacity = DefaultTimelineCap
	}
	if capacity%2 != 0 {
		capacity++
	}
	return &IntervalSampler{
		baseStride: stride,
		stride:     stride,
		next:       stride,
		samples:    make([]TimelineSample, 0, capacity),
	}
}

// SetEnabled flips sampling. No-op on nil.
func (s *IntervalSampler) SetEnabled(on bool) {
	if s != nil {
		s.enabled.Store(on)
	}
}

// Enabled reports whether the sampler collects.
func (s *IntervalSampler) Enabled() bool { return s != nil && s.enabled.Load() }

// Stride returns the current sampling interval in cycles.
func (s *IntervalSampler) Stride() uint64 {
	if s == nil {
		return 0
	}
	return s.stride
}

// Due reports whether the caller should snapshot at this cycle. This
// is the per-cycle gate: nil or disabled costs (at most) one atomic
// load and allocates nothing.
//
//samie:hotpath
func (s *IntervalSampler) Due(cycle uint64) bool {
	if s == nil || !s.enabled.Load() {
		return false
	}
	return cycle >= s.next
}

// Record appends one sample. When the buffer is full, adjacent samples
// merge pairwise (energy deltas sum, IPC averages, occupancies keep
// the later point) and the stride doubles — halve-stride compaction —
// so the buffer never exceeds its capacity and never reallocates.
//
//samie:hotpath
func (s *IntervalSampler) Record(ts TimelineSample) {
	if s == nil || !s.enabled.Load() {
		return
	}
	if len(s.samples) == cap(s.samples) {
		half := len(s.samples) / 2
		for i := 0; i < half; i++ {
			s.samples[i] = mergeSamples(s.samples[2*i], s.samples[2*i+1])
		}
		s.samples = s.samples[:half]
		s.stride *= 2
	}
	//lint:ignore hotalloc halve-stride compaction above guarantees len < cap here; never reallocates
	s.samples = append(s.samples, ts)
	s.next = ts.Cycle + s.stride
}

// mergeSamples folds two adjacent equal-width intervals into one:
// deltas sum, rates average, occupancies take the later (pure
// downsampling, so means over the retained samples stay unbiased).
func mergeSamples(a, b TimelineSample) TimelineSample {
	b.IPC = (a.IPC + b.IPC) / 2
	b.ConvLSQPJ += a.ConvLSQPJ
	b.DistribPJ += a.DistribPJ
	b.SharedPJ += a.SharedPJ
	b.AddrBufPJ += a.AddrBufPJ
	b.BusPJ += a.BusPJ
	b.DcachePJ += a.DcachePJ
	b.DTLBPJ += a.DTLBPJ
	return b
}

// Reset discards collected samples and restores the base stride,
// scheduling the next sample one stride past the given cycle. The CPU
// calls this at the warmup/measurement boundary so a timeline covers
// only the measured portion.
func (s *IntervalSampler) Reset(cycle uint64) {
	if s == nil {
		return
	}
	s.samples = s.samples[:0]
	s.stride = s.baseStride
	s.next = cycle + s.stride
}

// Snapshot copies the collected samples into a Timeline, or nil when
// nothing was collected.
func (s *IntervalSampler) Snapshot() *Timeline {
	if s == nil || len(s.samples) == 0 {
		return nil
	}
	out := make([]TimelineSample, len(s.samples))
	copy(out, s.samples)
	return &Timeline{Stride: s.stride, Samples: out}
}

// OccupancyAgg accumulates occupancy/IPC statistics over many
// timelines — the per-personality rows of samie-cluster -stats and
// the samie_lsq_occupancy metric family. Add merges two aggregates,
// so per-replica stats fold into a cluster view.
type OccupancyAgg struct {
	Runs    int64 `json:"runs"`
	Samples int64 `json:"samples"`

	SumIPC      float64 `json:"sum_ipc"`
	SumLSQ      float64 `json:"sum_lsq"`
	PeakLSQ     int     `json:"peak_lsq"`
	SumROB      float64 `json:"sum_rob"`
	PeakROB     int     `json:"peak_rob"`
	SumAddrBuf  float64 `json:"sum_addr_buf"`
	PeakAddrBuf int     `json:"peak_addr_buf"`
}

// Observe folds one run's timeline into the aggregate. Nil timelines
// are ignored.
func (a *OccupancyAgg) Observe(t *Timeline) {
	if t == nil || len(t.Samples) == 0 {
		return
	}
	a.Runs++
	for _, ts := range t.Samples {
		a.Samples++
		a.SumIPC += ts.IPC
		a.SumLSQ += float64(ts.LSQ)
		a.SumROB += float64(ts.ROB)
		a.SumAddrBuf += float64(ts.AddrBuf)
		if ts.LSQ > a.PeakLSQ {
			a.PeakLSQ = ts.LSQ
		}
		if ts.ROB > a.PeakROB {
			a.PeakROB = ts.ROB
		}
		if ts.AddrBuf > a.PeakAddrBuf {
			a.PeakAddrBuf = ts.AddrBuf
		}
	}
}

// Add merges another aggregate into this one (cluster-level rollup).
func (a *OccupancyAgg) Add(o OccupancyAgg) {
	a.Runs += o.Runs
	a.Samples += o.Samples
	a.SumIPC += o.SumIPC
	a.SumLSQ += o.SumLSQ
	a.SumROB += o.SumROB
	a.SumAddrBuf += o.SumAddrBuf
	if o.PeakLSQ > a.PeakLSQ {
		a.PeakLSQ = o.PeakLSQ
	}
	if o.PeakROB > a.PeakROB {
		a.PeakROB = o.PeakROB
	}
	if o.PeakAddrBuf > a.PeakAddrBuf {
		a.PeakAddrBuf = o.PeakAddrBuf
	}
}

// MeanIPC returns the mean per-interval IPC, or 0 with no samples.
func (a OccupancyAgg) MeanIPC() float64 { return a.mean(a.SumIPC) }

// MeanLSQ returns the mean sampled LSQ occupancy.
func (a OccupancyAgg) MeanLSQ() float64 { return a.mean(a.SumLSQ) }

// MeanROB returns the mean sampled ROB occupancy.
func (a OccupancyAgg) MeanROB() float64 { return a.mean(a.SumROB) }

// MeanAddrBuf returns the mean sampled AddrBuffer occupancy.
func (a OccupancyAgg) MeanAddrBuf() float64 { return a.mean(a.SumAddrBuf) }

func (a OccupancyAgg) mean(sum float64) float64 {
	if a.Samples == 0 {
		return 0
	}
	return sum / float64(a.Samples)
}
