// Package obs is the fabric's dependency-free observability layer:
// W3C-style trace propagation, a lock-cheap in-process span recorder,
// fixed-bucket latency histograms, and per-run phase timing. Every
// piece is safe for concurrent use and costs nothing measurable when
// recording is disabled, so it can stay woven through the hot serving
// paths permanently.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket latency histogram: one atomic counter
// per bucket plus an atomic nanosecond sum, so Observe never takes a
// lock and snapshots are wait-free reads. Bucket bounds are upper
// edges in seconds; observations above the last bound land in an
// implicit +Inf bucket.
type Histogram struct {
	bounds   []float64
	buckets  []atomic.Uint64 // len(bounds)+1; last is +Inf overflow
	sumNanos atomic.Int64
	count    atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending upper
// bounds (seconds). The bounds slice is retained; callers must not
// mutate it afterwards.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds:  bounds,
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	sec := d.Seconds()
	i := 0
	for i < len(h.bounds) && sec > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sumNanos.Add(int64(d))
	h.count.Add(1)
}

// Snapshot captures the current state. An untouched histogram
// snapshots to the zero value so JSON consumers can omit it.
func (h *Histogram) Snapshot() HistSnapshot {
	n := h.count.Load()
	if n == 0 {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.buckets)),
		Sum:    time.Duration(h.sumNanos.Load()).Seconds(),
		Count:  n,
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram, also used as
// the wire form in stats responses. Counts are per-bucket (not
// cumulative) and include the +Inf overflow bucket as the final
// element, so len(Counts) == len(Bounds)+1 when populated.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []uint64  `json:"counts,omitempty"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Add merges another snapshot into this one for cluster-level
// aggregation. Bucket layouts must match (both sides use the
// compiled-in bounds); an empty receiver adopts the other's layout.
func (s *HistSnapshot) Add(o HistSnapshot) {
	if o.Count == 0 {
		return
	}
	if s.Count == 0 {
		s.Bounds = o.Bounds
		s.Counts = append([]uint64(nil), o.Counts...)
		s.Sum, s.Count = o.Sum, o.Count
		return
	}
	for i := range s.Counts {
		if i < len(o.Counts) {
			s.Counts[i] += o.Counts[i]
		}
	}
	s.Sum += o.Sum
	s.Count += o.Count
}

// Quantile estimates the q-th quantile (0..1) from the bucket counts
// using linear interpolation within the containing bucket, the same
// scheme Prometheus' histogram_quantile uses. Observations in the
// +Inf bucket clamp to the last finite bound. Returns 0 for an empty
// snapshot.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: clamp to the last finite edge.
			if len(s.Bounds) == 0 {
				return 0
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		prev := cum - float64(c)
		frac := 0.0
		if c > 0 {
			frac = (rank - prev) / float64(c)
		}
		if math.IsNaN(frac) || frac < 0 {
			frac = 0
		}
		return lo + (hi-lo)*frac
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}
