package obs

import (
	"testing"
)

func TestSamplerDueAndStride(t *testing.T) {
	s := NewIntervalSampler(100, 8)
	if s.Enabled() {
		t.Fatal("sampler starts enabled")
	}
	if s.Due(1_000_000) {
		t.Fatal("disabled sampler reported due")
	}
	s.SetEnabled(true)
	if s.Due(99) {
		t.Fatal("due before the first stride boundary")
	}
	if !s.Due(100) || !s.Due(150) {
		t.Fatal("not due at/after the stride boundary")
	}
	s.Record(TimelineSample{Cycle: 150, IPC: 2})
	if s.Due(249) {
		t.Fatal("due again before a full stride elapsed")
	}
	if !s.Due(250) {
		t.Fatal("not due one stride after the last sample")
	}
	if s.Stride() != 100 {
		t.Fatalf("stride = %d, want 100", s.Stride())
	}

	// Defaults kick in for zero arguments; odd capacities round up so
	// pairwise compaction stays exact.
	d := NewIntervalSampler(0, 0)
	if d.Stride() != DefaultSampleStride {
		t.Fatalf("default stride = %d", d.Stride())
	}
	odd := NewIntervalSampler(1, 7)
	if cap(odd.samples) != 8 {
		t.Fatalf("odd capacity rounded to %d, want 8", cap(odd.samples))
	}
}

func TestSamplerNilIsNoop(t *testing.T) {
	var s *IntervalSampler
	s.SetEnabled(true)
	if s.Due(123) || s.Enabled() || s.Stride() != 0 {
		t.Fatal("nil sampler not inert")
	}
	s.Record(TimelineSample{Cycle: 1})
	s.Reset(0)
	if s.Snapshot() != nil {
		t.Fatal("nil sampler produced a timeline")
	}
}

// TestSamplerCompaction: filling the buffer halves it pairwise and
// doubles the stride, so an arbitrarily long run fits in a fixed
// buffer while deltas stay conserved and rates stay unbiased.
func TestSamplerCompaction(t *testing.T) {
	s := NewIntervalSampler(10, 4)
	s.SetEnabled(true)
	for i := uint64(1); i <= 4; i++ {
		s.Record(TimelineSample{Cycle: i * 10, IPC: float64(i), BusPJ: 1})
	}
	// Buffer full; the 5th record compacts [1,2],[3,4] then appends.
	s.Record(TimelineSample{Cycle: 50, IPC: 5, BusPJ: 1})
	tl := s.Snapshot()
	if tl == nil || len(tl.Samples) != 3 {
		t.Fatalf("post-compaction samples = %+v, want 3", tl)
	}
	if tl.Stride != 20 {
		t.Fatalf("stride = %d after one compaction, want 20", tl.Stride)
	}
	// Merged pairs: IPC averages, energy deltas sum, the later sample's
	// cycle/occupancy wins.
	if got := tl.Samples[0]; got.Cycle != 20 || got.IPC != 1.5 || got.BusPJ != 2 {
		t.Fatalf("merged sample 0 = %+v", got)
	}
	if got := tl.Samples[1]; got.Cycle != 40 || got.IPC != 3.5 || got.BusPJ != 2 {
		t.Fatalf("merged sample 1 = %+v", got)
	}
	if got := tl.Samples[2]; got.Cycle != 50 || got.IPC != 5 || got.BusPJ != 1 {
		t.Fatalf("appended sample = %+v", got)
	}
	// Total energy is conserved across compaction.
	var pj float64
	for _, ts := range tl.Samples {
		pj += ts.BusPJ
	}
	if pj != 5 {
		t.Fatalf("energy not conserved: %v pJ, want 5", pj)
	}
	// The next due point honors the doubled stride.
	if s.Due(69) || !s.Due(70) {
		t.Fatal("next due point ignores the doubled stride")
	}
}

// TestSamplerReset: the warmup boundary discards samples and restores
// the base stride so a timeline covers only the measured portion.
func TestSamplerReset(t *testing.T) {
	s := NewIntervalSampler(10, 4)
	s.SetEnabled(true)
	for i := uint64(1); i <= 5; i++ { // force one compaction
		s.Record(TimelineSample{Cycle: i * 10})
	}
	if s.Stride() != 20 {
		t.Fatalf("setup: stride = %d, want 20", s.Stride())
	}
	s.Reset(1000)
	if s.Snapshot() != nil {
		t.Fatal("samples survived reset")
	}
	if s.Stride() != 10 {
		t.Fatalf("stride after reset = %d, want base 10", s.Stride())
	}
	if s.Due(1009) || !s.Due(1010) {
		t.Fatal("next due point not rescheduled from the reset cycle")
	}
}

// TestSamplerDisabledPathZeroAllocs is the hot-loop guard: the
// per-cycle Due check (and a stray Record) on a disabled or nil
// sampler must not allocate — the hook lives in the simulator's step()
// permanently.
func TestSamplerDisabledPathZeroAllocs(t *testing.T) {
	s := NewIntervalSampler(0, 0)
	var nilS *IntervalSampler
	ts := TimelineSample{Cycle: 42}
	allocs := testing.AllocsPerRun(1000, func() {
		if s.Due(1 << 20) {
			t.Fatal("disabled sampler due")
		}
		s.Record(ts)
		if nilS.Due(1 << 20) {
			t.Fatal("nil sampler due")
		}
		nilS.Record(ts)
	})
	if allocs != 0 {
		t.Fatalf("disabled sampler path allocates: %v allocs/op", allocs)
	}
}

func TestOccupancyAggObserveAndAdd(t *testing.T) {
	var a OccupancyAgg
	a.Observe(nil) // ignored
	a.Observe(&Timeline{Samples: []TimelineSample{
		{IPC: 1, LSQ: 10, ROB: 20, AddrBuf: 2},
		{IPC: 3, LSQ: 30, ROB: 40, AddrBuf: 6},
	}})
	if a.Runs != 1 || a.Samples != 2 {
		t.Fatalf("agg counts %+v", a)
	}
	if a.MeanIPC() != 2 || a.MeanLSQ() != 20 || a.MeanROB() != 30 || a.MeanAddrBuf() != 4 {
		t.Fatalf("means wrong: %+v", a)
	}
	if a.PeakLSQ != 30 || a.PeakROB != 40 || a.PeakAddrBuf != 6 {
		t.Fatalf("peaks wrong: %+v", a)
	}

	var b OccupancyAgg
	b.Observe(&Timeline{Samples: []TimelineSample{{IPC: 5, LSQ: 50, ROB: 10}}})
	a.Add(b)
	if a.Runs != 2 || a.Samples != 3 || a.PeakLSQ != 50 || a.PeakROB != 40 {
		t.Fatalf("merged agg wrong: %+v", a)
	}
	if (OccupancyAgg{}).MeanIPC() != 0 {
		t.Fatal("empty agg mean not 0")
	}
}
