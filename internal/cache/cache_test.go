package cache

import (
	"math/rand"
	"testing"
)

func small() Config {
	return Config{Name: "t", SizeBytes: 1024, LineBytes: 32, Ways: 2, HitLatency: 1}
}

func TestConfigValidate(t *testing.T) {
	for _, c := range []Config{
		{Name: "bad", SizeBytes: 0, LineBytes: 32, Ways: 1},
		{Name: "bad", SizeBytes: 1024, LineBytes: 33, Ways: 1},
		{Name: "bad", SizeBytes: 1024, LineBytes: 32, Ways: 0},
		{Name: "bad", SizeBytes: 96 * 32, LineBytes: 32, Ways: 1}, // 96 sets: not pow2
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("invalid config accepted: %+v", c)
		}
	}
	for _, c := range []Config{PaperL1D(), PaperL1I(), PaperL2()} {
		if err := c.Validate(); err != nil {
			t.Errorf("paper config rejected: %v", err)
		}
	}
	l1d := PaperL1D()
	if l1d.Sets() != 64 {
		t.Fatalf("paper L1D sets = %d, want 64", l1d.Sets())
	}
}

func TestMissThenHit(t *testing.T) {
	c := New(small())
	r := c.Access(0x1000, false)
	if r.Hit {
		t.Fatal("cold access hit")
	}
	r2 := c.Access(0x1008, false) // same line
	if !r2.Hit || r2.Set != r.Set || r2.Way != r.Way {
		t.Fatalf("same-line access missed or moved: %+v vs %+v", r, r2)
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d", c.Hits(), c.Misses())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(small()) // 16 sets, 2 ways
	setStride := uint64(16 * 32)
	a, b, d := uint64(0x10000), uint64(0x10000)+setStride, uint64(0x10000)+2*setStride
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // touch a: b becomes LRU
	r := c.Access(d, false)
	if !r.Evicted || r.EvictedLine != b {
		t.Fatalf("evicted %#x (evicted=%v), want %#x", r.EvictedLine, r.Evicted, b)
	}
	if _, _, hit := c.Probe(a); !hit {
		t.Fatal("MRU line evicted")
	}
	if _, _, hit := c.Probe(b); hit {
		t.Fatal("LRU line survived")
	}
}

func TestWritebackCounting(t *testing.T) {
	c := New(small())
	setStride := uint64(16 * 32)
	c.Access(0x1000, true) // dirty
	c.Access(0x1000+setStride, false)
	c.Access(0x1000+2*setStride, false) // evicts dirty line
	if c.Writebacks() != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Writebacks())
	}
}

func TestDirectAccess(t *testing.T) {
	c := New(small())
	r := c.Access(0x2000, false)
	if !c.DirectAccess(0x2008, r.Set, r.Way, false) {
		t.Fatal("direct access to resident line failed")
	}
	if c.DirectAccess(0x2000, r.Set, (r.Way+1)%2, false) {
		t.Fatal("direct access to wrong way succeeded")
	}
	if c.DirectAccess(0x9999000, r.Set, r.Way, false) {
		t.Fatal("direct access to absent line succeeded")
	}
	if c.DirectAccess(0x2000, -1, 0, false) || c.DirectAccess(0x2000, 0, 99, false) {
		t.Fatal("out-of-range location accepted")
	}
}

func TestPresentBitProtocol(t *testing.T) {
	c := New(small())
	r := c.Access(0x3000, false)
	if c.PresentBit(r.Set, r.Way) {
		t.Fatal("presentBit set on fill")
	}
	c.SetPresentBit(r.Set, r.Way)
	if !c.PresentBit(r.Set, r.Way) {
		t.Fatal("SetPresentBit failed")
	}
	// Evicting this line must report EvictedHadPB.
	setStride := uint64(16 * 32)
	c.Access(0x3000+setStride, false)
	r3 := c.Access(0x3000+2*setStride, false)
	if !r3.Evicted || !r3.EvictedHadPB {
		t.Fatalf("eviction of presentBit line not flagged: %+v", r3)
	}
	// ClearAllPresentBits wipes everything.
	r4 := c.Access(0x4000, false)
	c.SetPresentBit(r4.Set, r4.Way)
	c.ClearAllPresentBits()
	if c.PresentBit(r4.Set, r4.Way) {
		t.Fatal("ClearAllPresentBits left a bit set")
	}
	// ClearPresentBit individual.
	c.SetPresentBit(r4.Set, r4.Way)
	c.ClearPresentBit(r4.Set, r4.Way)
	if c.PresentBit(r4.Set, r4.Way) {
		t.Fatal("ClearPresentBit failed")
	}
	// Out of range is a no-op.
	c.SetPresentBit(-1, 0)
	c.ClearPresentBit(0, 99)
	if c.PresentBit(-1, 0) {
		t.Fatal("out-of-range PresentBit true")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(small())
	c.Access(0x5000, false)
	if !c.Invalidate(0x5000) {
		t.Fatal("invalidate missed resident line")
	}
	if _, _, hit := c.Probe(0x5000); hit {
		t.Fatal("line survived invalidate")
	}
	if c.Invalidate(0x5000) {
		t.Fatal("invalidate hit absent line")
	}
}

func TestResetStats(t *testing.T) {
	c := New(small())
	c.Access(0x1000, false)
	c.Access(0x1000, false)
	c.ResetStats()
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
	// Contents preserved.
	if _, _, hit := c.Probe(0x1000); !hit {
		t.Fatal("ResetStats dropped cache contents")
	}
}

func TestMissRate(t *testing.T) {
	c := New(small())
	if c.MissRate() != 0 {
		t.Fatal("empty cache miss rate != 0")
	}
	c.Access(0x1000, false)
	c.Access(0x1000, false)
	if c.MissRate() != 0.5 {
		t.Fatalf("miss rate = %v, want 0.5", c.MissRate())
	}
}

// TestAgainstReferenceModel cross-checks hit/miss behaviour against a
// brute-force reference over a random access stream (property test).
func TestAgainstReferenceModel(t *testing.T) {
	cfg := Config{Name: "ref", SizeBytes: 2048, LineBytes: 32, Ways: 4, HitLatency: 1}
	c := New(cfg)
	sets := cfg.Sets()

	// Reference: per set, an LRU-ordered list of line addresses.
	ref := make([][]uint64, sets)
	refAccess := func(addr uint64) bool {
		line := addr &^ 31
		set := int((line >> 5) % uint64(sets))
		for i, l := range ref[set] {
			if l == line {
				ref[set] = append(append([]uint64{line}, ref[set][:i]...), ref[set][i+1:]...)
				return true
			}
		}
		ref[set] = append([]uint64{line}, ref[set]...)
		if len(ref[set]) > cfg.Ways {
			ref[set] = ref[set][:cfg.Ways]
		}
		return false
	}

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		addr := uint64(rng.Intn(8192)) * 8
		wantHit := refAccess(addr)
		got := c.Access(addr, rng.Intn(2) == 0)
		if got.Hit != wantHit {
			t.Fatalf("access %d (%#x): got hit=%v, reference hit=%v", i, addr, got.Hit, wantHit)
		}
	}
}
