// Package cache implements the set-associative caches of the modeled
// memory hierarchy, including the presentBit extension the SAMIE-LSQ
// adds to the L1 data cache (§3.4 of the paper): a bit per cache line
// that records whether the line's physical location (set and way) has
// been cached inside an LSQ entry, enabling later accesses from that
// entry to skip the tag check and read a single way.
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes one cache level.
type Config struct {
	Name       string
	SizeBytes  int
	LineBytes  int
	Ways       int
	HitLatency int // cycles
	Ports      int // read/write ports per cycle (0 = unlimited)
}

// PaperL1D returns the Table 2 L1 data cache: 8KB, 4-way, 32-byte
// lines, 4 R/W ports, 2-cycle hit.
func PaperL1D() Config {
	return Config{Name: "dl1", SizeBytes: 8 << 10, LineBytes: 32, Ways: 4, HitLatency: 2, Ports: 4}
}

// PaperL1I returns the Table 2 L1 instruction cache: 64KB, 2-way,
// 32-byte lines, 1-cycle hit.
func PaperL1I() Config {
	return Config{Name: "il1", SizeBytes: 64 << 10, LineBytes: 32, Ways: 2, HitLatency: 1, Ports: 1}
}

// PaperL2 returns the Table 2 unified L2: 512KB, 4-way, 64-byte lines,
// 10-cycle hit.
func PaperL2() Config {
	return Config{Name: "ul2", SizeBytes: 512 << 10, LineBytes: 64, Ways: 4, HitLatency: 10, Ports: 1}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %s: size, line and ways must be positive", c.Name)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if sets <= 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a positive power of two", c.Name, sets)
	}
	return nil
}

// Sets returns the number of sets implied by the configuration.
func (c *Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

type line struct {
	tag     uint64
	valid   bool
	dirty   bool
	present bool // presentBit: location is cached in some LSQ entry
	age     uint32
}

// Result describes the outcome of a cache access.
type Result struct {
	Hit          bool
	Set, Way     int
	Evicted      bool   // a valid line was evicted
	EvictedLine  uint64 // line address of the victim (if Evicted)
	EvictedHadPB bool   // victim's presentBit was set (LSQ must be told)
}

// Cache is a set-associative, write-back, LRU cache model. It tracks
// tags only (timing/energy model; no data storage).
type Cache struct {
	cfg       Config
	sets      [][]line
	lineShift uint
	setMask   uint64
	ageTick   uint32

	hits, misses, evictions, writebacks uint64
	pbSet, pbCleared                    uint64
}

// New builds a cache; it panics on invalid configuration (use
// Config.Validate for data-driven configs).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	c := &Cache{
		cfg:       cfg,
		sets:      make([][]line, sets),
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:   uint64(sets - 1),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// IndexOf returns the set index and tag for an address.
func (c *Cache) IndexOf(addr uint64) (set int, tag uint64) {
	l := addr >> c.lineShift
	return int(l & c.setMask), l >> uint(bits.TrailingZeros(uint(len(c.sets))))
}

// LineAddr returns the line address (address of byte 0 of the line).
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.LineBytes) - 1)
}

// Access performs a conventional access (tag check over all ways).
// On a miss the LRU way is filled with the new line. The returned
// Result reports the final location of the line and any eviction.
func (c *Cache) Access(addr uint64, write bool) Result {
	set, tag := c.IndexOf(addr)
	c.ageTick++
	ws := c.sets[set]
	for w := range ws {
		if ws[w].valid && ws[w].tag == tag {
			c.hits++
			ws[w].age = c.ageTick
			if write {
				ws[w].dirty = true
			}
			return Result{Hit: true, Set: set, Way: w}
		}
	}
	c.misses++
	// Choose victim: first invalid way, else LRU.
	victim := -1
	for w := range ws {
		if !ws[w].valid {
			victim = w
			break
		}
	}
	res := Result{Hit: false, Set: set}
	if victim < 0 {
		victim = 0
		for w := 1; w < len(ws); w++ {
			if ws[w].age < ws[victim].age {
				victim = w
			}
		}
		res.Evicted = true
		res.EvictedLine = c.reconstruct(set, ws[victim].tag)
		res.EvictedHadPB = ws[victim].present
		c.evictions++
		if ws[victim].dirty {
			c.writebacks++
		}
	}
	ws[victim] = line{tag: tag, valid: true, dirty: write, age: c.ageTick}
	res.Way = victim
	return res
}

// reconstruct rebuilds a line address from set and tag.
func (c *Cache) reconstruct(set int, tag uint64) uint64 {
	l := tag<<uint(bits.TrailingZeros(uint(len(c.sets)))) | uint64(set)
	return l << c.lineShift
}

// Probe checks for the line without updating LRU or filling; used by
// tests and by way-known accesses to verify correctness invariants.
func (c *Cache) Probe(addr uint64) (set, way int, hit bool) {
	set, tag := c.IndexOf(addr)
	for w := range c.sets[set] {
		if c.sets[set][w].valid && c.sets[set][w].tag == tag {
			return set, w, true
		}
	}
	return set, -1, false
}

// DirectAccess models a way-known access (§3.4): the LSQ entry cached
// (set, way) for this line, so no tag comparison is performed and only
// one way is read. It returns false if the stored location no longer
// holds the line — by construction this cannot happen while the
// presentBit protocol is followed, so callers treat false as an
// invariant violation.
func (c *Cache) DirectAccess(addr uint64, set, way int, write bool) bool {
	wantSet, tag := c.IndexOf(addr)
	if set != wantSet || way < 0 || way >= c.cfg.Ways {
		return false
	}
	ln := &c.sets[set][way]
	if !ln.valid || ln.tag != tag {
		return false
	}
	c.ageTick++
	ln.age = c.ageTick
	if write {
		ln.dirty = true
	}
	c.hits++
	return true
}

// SetPresentBit marks the line at (set, way) as having its location
// cached in an LSQ entry.
func (c *Cache) SetPresentBit(set, way int) {
	if set >= 0 && set < len(c.sets) && way >= 0 && way < c.cfg.Ways {
		if !c.sets[set][way].present {
			c.pbSet++
		}
		c.sets[set][way].present = true
	}
}

// ClearPresentBit clears the presentBit at (set, way).
func (c *Cache) ClearPresentBit(set, way int) {
	if set >= 0 && set < len(c.sets) && way >= 0 && way < c.cfg.Ways {
		if c.sets[set][way].present {
			c.pbCleared++
		}
		c.sets[set][way].present = false
	}
}

// PresentBit reports the presentBit at (set, way).
func (c *Cache) PresentBit(set, way int) bool {
	if set < 0 || set >= len(c.sets) || way < 0 || way >= c.cfg.Ways {
		return false
	}
	return c.sets[set][way].present
}

// ClearAllPresentBits clears every presentBit (used by the paper's
// conservative invalidation: when a presentBit line is replaced, all
// potentially affected LSQ entries reset their flag and the cache
// forgets all cached locations).
func (c *Cache) ClearAllPresentBits() {
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].present {
				c.pbCleared++
				c.sets[s][w].present = false
			}
		}
	}
}

// Invalidate drops a line if present (used by tests and by multi-level
// inclusion modeling if enabled).
func (c *Cache) Invalidate(addr uint64) bool {
	set, tag := c.IndexOf(addr)
	for w := range c.sets[set] {
		if c.sets[set][w].valid && c.sets[set][w].tag == tag {
			c.sets[set][w] = line{}
			return true
		}
	}
	return false
}

// ResetStats zeroes the access counters (cache contents are kept).
// Used at the end of simulation warm-up.
func (c *Cache) ResetStats() {
	c.hits, c.misses, c.evictions, c.writebacks = 0, 0, 0, 0
	c.pbSet, c.pbCleared = 0, 0
}

// Hits returns the number of hitting accesses.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the number of missing accesses.
func (c *Cache) Misses() uint64 { return c.misses }

// Evictions returns the number of valid-line evictions.
func (c *Cache) Evictions() uint64 { return c.evictions }

// Writebacks returns the number of dirty evictions.
func (c *Cache) Writebacks() uint64 { return c.writebacks }

// MissRate returns misses/(hits+misses), 0 if no accesses.
func (c *Cache) MissRate() float64 {
	t := c.hits + c.misses
	if t == 0 {
		return 0
	}
	return float64(c.misses) / float64(t)
}
