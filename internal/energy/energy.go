// Package energy implements the event-driven dynamic-energy and
// active-area accounting of §4.2–§4.5 of the paper.
//
// Dynamic energy: every LSQ, Dcache and DTLB activity is charged with
// the published CACTI-3.0-derived constants (Tables 4 and 5, and the
// cache/TLB access energies quoted in §4.2), accumulated per
// structure so the experiment harnesses can regenerate Figures 7–10
// and the SAMIE breakdown of Figure 8.
//
// Leakage proxy: following §4.5, the active area of each structure is
// accumulated *every cycle* (not averaged), using the Table 6 cell
// areas and the paper's activation policy (in-use entries plus a small
// pre-allocated reserve). Figures 11 and 12 come from these sums.
package energy

import "samielsq/internal/cacti"

// Widths fixes the per-field bit widths used to turn Table 6 cell
// areas into per-entry areas. The paper's configuration implies these
// values: 256-entry ROB -> 9-bit age ids (position + extra bit), 32-bit
// addresses over 32-byte lines, 64-bit data, 10-bit cache line ids for
// a 1024-line cache, ~20-bit cached translations.
type Widths struct {
	AddrBits   int
	LineIDBits int
	AgeBits    int
	DatumBits  int
	TLBBits    int
	OffsetBits int // offset within a cache line kept per slot
}

// DefaultWidths returns the widths implied by the paper configuration.
func DefaultWidths() Widths {
	return Widths{
		AddrBits:   32,
		LineIDBits: 10,
		AgeBits:    9,
		DatumBits:  64,
		TLBBits:    20,
		OffsetBits: 5,
	}
}

// Meter accumulates dynamic energy (pJ) per structure and active area
// (µm² · cycles).
type Meter struct {
	W Widths

	// Dynamic energy, pJ.
	ConvLSQ    float64
	Distrib    float64
	Shared     float64
	AddrBuffer float64
	Bus        float64
	Dcache     float64
	DTLB       float64

	// Accumulated active area, µm² · cycles.
	ConvArea       float64
	DistribArea    float64
	SharedArea     float64
	AddrBufferArea float64

	// Event counters (for tests and reporting).
	NConvCompares, NDistribCompares, NSharedCompares uint64
	NDcacheFull, NDcacheWayKnown, NDTLBLookups       uint64
	NTLBReuse, NBusSends                             uint64
}

// NewMeter returns a Meter with the default widths.
func NewMeter() *Meter { return &Meter{W: DefaultWidths()} }

// Reset zeroes all accumulated energy, area and event counts, keeping
// the configured widths. Used at the end of simulation warm-up.
func (m *Meter) Reset() {
	w := m.W
	*m = Meter{W: w}
}

// ---- Conventional LSQ events (Table 4) --------------------------------

// ConvCompare charges one associative address comparison against n
// addresses.
func (m *Meter) ConvCompare(n int) {
	m.NConvCompares++
	m.ConvLSQ += cacti.ConvLSQ.CmpBase + cacti.ConvLSQ.CmpPerAddr*float64(n)
}

// ConvRWAddr charges one address read or write.
func (m *Meter) ConvRWAddr() { m.ConvLSQ += cacti.ConvLSQ.RWAddr }

// ConvRWDatum charges one datum read or write.
func (m *Meter) ConvRWDatum() { m.ConvLSQ += cacti.ConvLSQ.RWDatum }

// ---- DistribLSQ events (Table 5) --------------------------------------

// BusSend charges broadcasting an address to a DistribLSQ bank.
func (m *Meter) BusSend() {
	m.NBusSends++
	m.Bus += cacti.BusSendAddr
}

// DistribCompare charges an address comparison against n in-use
// entries of one bank.
func (m *Meter) DistribCompare(n int) {
	m.NDistribCompares++
	m.Distrib += cacti.DistribLSQ.CmpBase + cacti.DistribLSQ.CmpPerAddr*float64(n)
}

// DistribAgeCompare charges age-id comparisons: for each entry, a
// fixed cost plus a per-id cost for its in-use slots. slotsPerEntry
// lists the in-use slot count of each compared entry.
func (m *Meter) DistribAgeCompare(slotsPerEntry []int) {
	for _, s := range slotsPerEntry {
		m.Distrib += cacti.DistribLSQ.AgeCmpBase + cacti.DistribLSQ.AgeCmpPerID*float64(s)
	}
}

// DistribRWAddr charges one line-address read/write in a bank.
func (m *Meter) DistribRWAddr() { m.Distrib += cacti.DistribLSQ.RWAddr }

// DistribRWAge charges one age-id read/write.
func (m *Meter) DistribRWAge() { m.Distrib += cacti.DistribLSQ.RWAge }

// DistribRWDatum charges one datum read/write.
func (m *Meter) DistribRWDatum() { m.Distrib += cacti.DistribLSQ.RWDatum }

// DistribRWTLB charges reading or writing the cached translation.
func (m *Meter) DistribRWTLB() { m.Distrib += cacti.DistribLSQ.RWTLB }

// DistribRWLineID charges reading or writing the cached line location.
func (m *Meter) DistribRWLineID() { m.Distrib += cacti.DistribLSQ.RWLineID }

// ---- SharedLSQ events (Table 5) ----------------------------------------

// SharedCompare charges an address comparison against n in-use
// SharedLSQ entries.
func (m *Meter) SharedCompare(n int) {
	m.NSharedCompares++
	m.Shared += cacti.SharedLSQ.CmpBase + cacti.SharedLSQ.CmpPerAddr*float64(n)
}

// SharedAgeCompare charges age-id comparisons over the SharedLSQ.
func (m *Meter) SharedAgeCompare(slotsPerEntry []int) {
	for _, s := range slotsPerEntry {
		m.Shared += cacti.SharedLSQ.AgeCmpBase + cacti.SharedLSQ.AgeCmpPerID*float64(s)
	}
}

// SharedRWAddr charges one line-address read/write.
func (m *Meter) SharedRWAddr() { m.Shared += cacti.SharedLSQ.RWAddr }

// SharedRWAge charges one age-id read/write.
func (m *Meter) SharedRWAge() { m.Shared += cacti.SharedLSQ.RWAge }

// SharedRWDatum charges one datum read/write.
func (m *Meter) SharedRWDatum() { m.Shared += cacti.SharedLSQ.RWDatum }

// SharedRWTLB charges reading or writing the cached translation.
func (m *Meter) SharedRWTLB() { m.Shared += cacti.SharedLSQ.RWTLB }

// SharedRWLineID charges reading or writing the cached line location.
func (m *Meter) SharedRWLineID() { m.Shared += cacti.SharedLSQ.RWLineID }

// ---- AddrBuffer events --------------------------------------------------

// AddrBufferInsert charges writing an instruction into the AddrBuffer.
func (m *Meter) AddrBufferInsert() {
	m.AddrBuffer += cacti.AddrBufferDatum + cacti.AddrBufferAgeID
}

// AddrBufferRemove charges reading an instruction out of the
// AddrBuffer.
func (m *Meter) AddrBufferRemove() {
	m.AddrBuffer += cacti.AddrBufferDatum + cacti.AddrBufferAgeID
}

// ---- Dcache / DTLB events ----------------------------------------------

// DcacheFull charges one conventional L1 Dcache access (all ways read,
// tags compared).
func (m *Meter) DcacheFull() {
	m.NDcacheFull++
	m.Dcache += cacti.DcacheFullAccess
}

// DcacheWayKnown charges one single-way, tag-less access (§3.4).
func (m *Meter) DcacheWayKnown() {
	m.NDcacheWayKnown++
	m.Dcache += cacti.DcacheWayKnown
}

// DTLBLookup charges one DTLB access.
func (m *Meter) DTLBLookup() {
	m.NDTLBLookups++
	m.DTLB += cacti.DTLBAccess
}

// DTLBReuse records a translation served from an LSQ entry (no DTLB
// energy; counted for reporting).
func (m *Meter) DTLBReuse() { m.NTLBReuse++ }

// ---- Per-entry areas (Table 6 cells × Widths bits) ----------------------

// ConvEntryArea returns the area of one conventional LSQ entry.
func (m *Meter) ConvEntryArea() float64 {
	return cacti.ConvAreas.AddrCAM*float64(m.W.AddrBits) +
		cacti.ConvAreas.Datum*float64(m.W.DatumBits)
}

// DistribEntryArea returns the per-entry overhead area of a DistribLSQ
// entry (line address, cached translation, cached line id).
func (m *Meter) DistribEntryArea() float64 {
	return cacti.DistribAreas.AddrCAM*float64(m.W.AddrBits-m.W.OffsetBits) +
		cacti.DistribAreas.TLB*float64(m.W.TLBBits) +
		cacti.DistribAreas.LineID*float64(m.W.LineIDBits)
}

// DistribSlotArea returns the per-slot area (age id, offset, datum).
func (m *Meter) DistribSlotArea() float64 {
	return cacti.DistribAreas.AgeCAM*float64(m.W.AgeBits+m.W.OffsetBits) +
		cacti.DistribAreas.Datum*float64(m.W.DatumBits)
}

// SharedEntryArea returns the per-entry overhead area of a SharedLSQ
// entry.
func (m *Meter) SharedEntryArea() float64 {
	return cacti.SharedAreas.AddrCAM*float64(m.W.AddrBits-m.W.OffsetBits) +
		cacti.SharedAreas.TLB*float64(m.W.TLBBits) +
		cacti.SharedAreas.LineID*float64(m.W.LineIDBits)
}

// SharedSlotArea returns the per-slot area of a SharedLSQ entry.
func (m *Meter) SharedSlotArea() float64 {
	return cacti.SharedAreas.AgeCAM*float64(m.W.AgeBits+m.W.OffsetBits) +
		cacti.SharedAreas.Datum*float64(m.W.DatumBits)
}

// AddrBufferSlotArea returns the area of one AddrBuffer slot.
func (m *Meter) AddrBufferSlotArea() float64 {
	return cacti.AddrBufferAreas.Datum*float64(m.W.AddrBits) +
		cacti.AddrBufferAreas.AgeCAM*float64(m.W.AgeBits)
}

// ---- Per-cycle active-area accumulation (§4.5) ---------------------------

// AccumulateConvArea adds one cycle of conventional-LSQ active area:
// in-use entries plus four pre-allocated entries.
func (m *Meter) AccumulateConvArea(inUse, capacity int) {
	active := inUse + 4
	if active > capacity {
		active = capacity
	}
	m.ConvArea += float64(active) * m.ConvEntryArea()
}

// AccumulateSAMIEAreaCounts adds one cycle of SAMIE-LSQ active area
// from entry/slot totals the caller maintains incrementally (the SAMIE
// hot path): the per-cycle accumulation is O(1) instead of a walk over
// every active entry. distribEntries/sharedEntries count the active
// entries — in-use plus the pre-allocated reserves (one per DistribLSQ
// bank with room and one in the SharedLSQ) — and distribSlots/
// sharedSlots their summed active slot counts (in-use slots + 1 per
// entry, capped at slotsPerEntry). The AddrBuffer reserve is §4.5's
// in-use + 4, capped at its capacity.
func (m *Meter) AccumulateSAMIEAreaCounts(distribEntries, distribSlots, sharedEntries, sharedSlots, addrBufInUse, addrBufCap int) {
	m.DistribArea += float64(distribEntries)*m.DistribEntryArea() + float64(distribSlots)*m.DistribSlotArea()
	m.SharedArea += float64(sharedEntries)*m.SharedEntryArea() + float64(sharedSlots)*m.SharedSlotArea()
	active := addrBufInUse + 4
	if active > addrBufCap {
		active = addrBufCap
	}
	m.AddrBufferArea += float64(active) * m.AddrBufferSlotArea()
}

// ---- Totals ---------------------------------------------------------------

// SAMIETotal returns the total SAMIE-LSQ dynamic energy (pJ),
// including the bank bus.
func (m *Meter) SAMIETotal() float64 {
	return m.Distrib + m.Shared + m.AddrBuffer + m.Bus
}

// SAMIEArea returns the total accumulated SAMIE active area.
func (m *Meter) SAMIEArea() float64 {
	return m.DistribArea + m.SharedArea + m.AddrBufferArea
}
