package energy

import (
	"math"
	"testing"

	"samielsq/internal/cacti"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestConvEvents(t *testing.T) {
	m := NewMeter()
	m.ConvCompare(10)
	want := cacti.ConvLSQ.CmpBase + 10*cacti.ConvLSQ.CmpPerAddr
	if !almost(m.ConvLSQ, want) {
		t.Fatalf("ConvCompare: %v, want %v", m.ConvLSQ, want)
	}
	m.ConvRWAddr()
	m.ConvRWDatum()
	want += cacti.ConvLSQ.RWAddr + cacti.ConvLSQ.RWDatum
	if !almost(m.ConvLSQ, want) {
		t.Fatalf("conv total %v, want %v", m.ConvLSQ, want)
	}
	if m.NConvCompares != 1 {
		t.Fatalf("NConvCompares = %d", m.NConvCompares)
	}
}

func TestDistribEvents(t *testing.T) {
	m := NewMeter()
	m.BusSend()
	m.DistribCompare(2)
	m.DistribAgeCompare([]int{3, 5})
	m.DistribRWAddr()
	m.DistribRWAge()
	m.DistribRWDatum()
	m.DistribRWTLB()
	m.DistribRWLineID()
	wantBus := cacti.BusSendAddr
	wantD := cacti.DistribLSQ.CmpBase + 2*cacti.DistribLSQ.CmpPerAddr +
		2*cacti.DistribLSQ.AgeCmpBase + 8*cacti.DistribLSQ.AgeCmpPerID +
		cacti.DistribLSQ.RWAddr + cacti.DistribLSQ.RWAge + cacti.DistribLSQ.RWDatum +
		cacti.DistribLSQ.RWTLB + cacti.DistribLSQ.RWLineID
	if !almost(m.Bus, wantBus) || !almost(m.Distrib, wantD) {
		t.Fatalf("distrib: bus %v/%v distrib %v/%v", m.Bus, wantBus, m.Distrib, wantD)
	}
}

func TestSharedEvents(t *testing.T) {
	m := NewMeter()
	m.SharedCompare(4)
	m.SharedAgeCompare([]int{1})
	m.SharedRWAddr()
	m.SharedRWAge()
	m.SharedRWDatum()
	m.SharedRWTLB()
	m.SharedRWLineID()
	want := cacti.SharedLSQ.CmpBase + 4*cacti.SharedLSQ.CmpPerAddr +
		cacti.SharedLSQ.AgeCmpBase + cacti.SharedLSQ.AgeCmpPerID +
		cacti.SharedLSQ.RWAddr + cacti.SharedLSQ.RWAge + cacti.SharedLSQ.RWDatum +
		cacti.SharedLSQ.RWTLB + cacti.SharedLSQ.RWLineID
	if !almost(m.Shared, want) {
		t.Fatalf("shared %v, want %v", m.Shared, want)
	}
}

func TestAddrBufferAndCacheEvents(t *testing.T) {
	m := NewMeter()
	m.AddrBufferInsert()
	m.AddrBufferRemove()
	want := 2 * (cacti.AddrBufferDatum + cacti.AddrBufferAgeID)
	if !almost(m.AddrBuffer, want) {
		t.Fatalf("addrbuffer %v, want %v", m.AddrBuffer, want)
	}
	m.DcacheFull()
	m.DcacheWayKnown()
	if !almost(m.Dcache, cacti.DcacheFullAccess+cacti.DcacheWayKnown) {
		t.Fatalf("dcache %v", m.Dcache)
	}
	m.DTLBLookup()
	m.DTLBReuse()
	if !almost(m.DTLB, cacti.DTLBAccess) {
		t.Fatalf("dtlb %v (reuse must be free)", m.DTLB)
	}
	if m.NDcacheFull != 1 || m.NDcacheWayKnown != 1 || m.NDTLBLookups != 1 || m.NTLBReuse != 1 {
		t.Fatal("event counters wrong")
	}
}

func TestSAMIETotal(t *testing.T) {
	m := NewMeter()
	m.BusSend()
	m.DistribRWAddr()
	m.SharedRWAddr()
	m.AddrBufferInsert()
	if !almost(m.SAMIETotal(), m.Bus+m.Distrib+m.Shared+m.AddrBuffer) {
		t.Fatal("SAMIETotal wrong")
	}
}

func TestEntryAreas(t *testing.T) {
	m := NewMeter()
	w := m.W
	wantConv := cacti.ConvAreas.AddrCAM*float64(w.AddrBits) + cacti.ConvAreas.Datum*float64(w.DatumBits)
	if !almost(m.ConvEntryArea(), wantConv) {
		t.Fatalf("conv entry area %v, want %v", m.ConvEntryArea(), wantConv)
	}
	if m.DistribEntryArea() <= 0 || m.DistribSlotArea() <= 0 ||
		m.SharedEntryArea() <= 0 || m.SharedSlotArea() <= 0 || m.AddrBufferSlotArea() <= 0 {
		t.Fatal("non-positive area")
	}
	// SAMIE cells are smaller than conventional cells: per-slot area
	// must be below a conventional entry.
	if m.DistribSlotArea() >= m.ConvEntryArea() {
		t.Fatal("distrib slot area not smaller than conventional entry")
	}
}

func TestAccumulateConvArea(t *testing.T) {
	m := NewMeter()
	m.AccumulateConvArea(10, 128)
	want := 14 * m.ConvEntryArea() // 10 in use + 4 reserve
	if !almost(m.ConvArea, want) {
		t.Fatalf("conv area %v, want %v", m.ConvArea, want)
	}
	// Capped at capacity.
	m2 := NewMeter()
	m2.AccumulateConvArea(127, 128)
	if !almost(m2.ConvArea, 128*m2.ConvEntryArea()) {
		t.Fatal("conv area not capped at capacity")
	}
}

func TestAccumulateSAMIEArea(t *testing.T) {
	m := NewMeter()
	// Two distrib entries with 2+3 active slots, one shared entry with
	// one slot, 5 AddrBuffer slots in use.
	m.AccumulateSAMIEAreaCounts(2, 5, 1, 1, 5, 64)
	wantD := 2*m.DistribEntryArea() + 5*m.DistribSlotArea()
	wantS := m.SharedEntryArea() + 1*m.SharedSlotArea()
	wantAB := 9 * m.AddrBufferSlotArea()
	if !almost(m.DistribArea, wantD) || !almost(m.SharedArea, wantS) || !almost(m.AddrBufferArea, wantAB) {
		t.Fatalf("areas %v/%v %v/%v %v/%v",
			m.DistribArea, wantD, m.SharedArea, wantS, m.AddrBufferArea, wantAB)
	}
	if !almost(m.SAMIEArea(), wantD+wantS+wantAB) {
		t.Fatal("SAMIEArea sum wrong")
	}
}

func TestReset(t *testing.T) {
	m := NewMeter()
	m.ConvCompare(5)
	m.DcacheFull()
	m.AccumulateConvArea(3, 128)
	m.Reset()
	if m.ConvLSQ != 0 || m.Dcache != 0 || m.ConvArea != 0 || m.NConvCompares != 0 {
		t.Fatal("Reset left residue")
	}
	if m.W != DefaultWidths() {
		t.Fatal("Reset lost widths")
	}
}
