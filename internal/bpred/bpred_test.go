package bpred

import (
	"math/rand"
	"testing"
)

func TestCounter2(t *testing.T) {
	c := counter2(0)
	if c.taken() {
		t.Fatal("0 predicts taken")
	}
	c = c.update(true).update(true)
	if !c.taken() {
		t.Fatal("2 should predict taken")
	}
	c = c.update(true).update(true)
	if c != 3 {
		t.Fatalf("counter overflowed: %d", c)
	}
	c = c.update(false).update(false).update(false).update(false)
	if c != 0 {
		t.Fatalf("counter underflowed: %d", c)
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two size accepted")
		}
	}()
	New(Config{BimodalEntries: 100, GshareEntries: 2048, SelectorEntries: 1024, BTBSets: 512, BTBWays: 4})
}

func TestBimodalLearnsBias(t *testing.T) {
	p := New(PaperConfig())
	const pc = 0x120000040
	wrong := 0
	for i := 0; i < 1000; i++ {
		pr := p.Predict(pc)
		if p.Resolve(pc, pr, true, pc-64) {
			wrong++
		}
	}
	if wrong > 10 {
		t.Fatalf("always-taken branch mispredicted %d/1000", wrong)
	}
}

func TestGshareLearnsPattern(t *testing.T) {
	// A period-4 pattern (TTTN) is learnable with global history; the
	// hybrid must converge well below the 25% bimodal floor.
	p := New(PaperConfig())
	const pc = 0x120000080
	wrong := 0
	const n = 4000
	for i := 0; i < n; i++ {
		taken := i%4 != 3
		pr := p.Predict(pc)
		if p.Resolve(pc, pr, taken, pc-32) {
			if i > n/2 {
				wrong++
			}
		}
	}
	if rate := float64(wrong) / (n / 2); rate > 0.10 {
		t.Fatalf("period-4 pattern mispredict rate %.3f after warmup", rate)
	}
}

func TestBTBTargetLearning(t *testing.T) {
	p := New(PaperConfig())
	const pc, target = 0x120000100, 0x120000040
	pr := p.Predict(pc)
	if pr.Target != 0 {
		t.Fatal("BTB hit before any insert")
	}
	p.Resolve(pc, pr, true, target)
	pr = p.Predict(pc)
	if pr.Target != target {
		t.Fatalf("BTB target = %#x, want %#x", pr.Target, target)
	}
}

func TestBTBTargetMispredictCounts(t *testing.T) {
	p := New(PaperConfig())
	const pc = 0x120000200
	// Train direction taken, then change the target: even with correct
	// direction the stale target is a misprediction.
	pr := p.Predict(pc)
	p.Resolve(pc, pr, true, 0x100)
	for i := 0; i < 8; i++ {
		pr = p.Predict(pc)
		p.Resolve(pc, pr, true, 0x100)
	}
	pr = p.Predict(pc)
	if !p.Resolve(pc, pr, true, 0x200) {
		t.Fatal("target change not flagged as misprediction")
	}
}

func TestBTBCapacityEviction(t *testing.T) {
	cfg := PaperConfig()
	cfg.BTBSets = 1 // single set, 4 ways
	p := New(cfg)
	// Insert 5 branches into the 4-way set.
	for i := 0; i < 5; i++ {
		pc := uint64(0x1000 + i*4)
		pr := p.Predict(pc)
		p.Resolve(pc, pr, true, pc+0x100)
	}
	hits := 0
	for i := 0; i < 5; i++ {
		pc := uint64(0x1000 + i*4)
		if p.Predict(pc).Target != 0 {
			hits++
		}
	}
	if hits != 4 {
		t.Fatalf("single set holds %d targets, want 4 (LRU eviction)", hits)
	}
}

func TestMispredictAccounting(t *testing.T) {
	p := New(PaperConfig())
	const pc = 0x120000300
	pr := p.Predict(pc)
	correct := pr.Taken
	p.Resolve(pc, pr, !correct, 0)
	if p.Mispredicts() != 1 {
		t.Fatalf("mispredicts = %d, want 1", p.Mispredicts())
	}
	if p.Lookups() != 1 {
		t.Fatalf("lookups = %d, want 1", p.Lookups())
	}
	if p.MispredictRate() != 1 {
		t.Fatalf("rate = %v", p.MispredictRate())
	}
	p.ResetStats()
	if p.Lookups() != 0 || p.Mispredicts() != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
	if p.MispredictRate() != 0 {
		t.Fatal("rate after reset should be 0")
	}
}

func TestHybridBeatsRandomBaseline(t *testing.T) {
	// Across a population of biased branches the hybrid predictor must
	// achieve well under 50% mispredicts.
	p := New(PaperConfig())
	rng := rand.New(rand.NewSource(42))
	type site struct {
		pc     uint64
		period int
	}
	sites := make([]site, 32)
	for i := range sites {
		sites[i] = site{pc: uint64(0x120000000 + i*4), period: 2 + rng.Intn(10)}
	}
	counts := make([]int, len(sites))
	wrong, total := 0, 0
	for i := 0; i < 20000; i++ {
		s := &sites[rng.Intn(len(sites))]
		counts[s.pc%32]++
		taken := counts[s.pc%32]%s.period != 0
		pr := p.Predict(s.pc)
		if p.Resolve(s.pc, pr, taken, s.pc-16) && i > 10000 {
			wrong++
		}
		if i > 10000 {
			total++
		}
	}
	if rate := float64(wrong) / float64(total); rate > 0.35 {
		t.Fatalf("steady-state mispredict rate %.3f too high", rate)
	}
}
