// Package bpred implements the paper's branch prediction hardware: a
// hybrid predictor built from a 2K-entry gshare, a 2K-entry bimodal
// table and a 1K-entry selector, plus a 2048-entry 4-way BTB
// (Table 2 of the paper).
//
// All tables use standard 2-bit saturating counters. The predictor is
// updated speculatively with the real outcome at resolution time (the
// CPU model resolves branches at execute), and the global history is
// repaired on mispredictions by the CPU's flush path.
package bpred

// counter2 is a 2-bit saturating counter; values 2 and 3 predict taken.
type counter2 uint8

func (c counter2) taken() bool { return c >= 2 }

func (c counter2) update(taken bool) counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Config sizes the predictor tables. All sizes must be powers of two.
type Config struct {
	BimodalEntries  int
	GshareEntries   int
	SelectorEntries int
	BTBSets         int
	BTBWays         int
}

// PaperConfig returns the Table 2 predictor configuration: hybrid
// 2K gshare + 2K bimodal + 1K selector, 2048-entry 4-way BTB.
func PaperConfig() Config {
	return Config{
		BimodalEntries:  2048,
		GshareEntries:   2048,
		SelectorEntries: 1024,
		BTBSets:         512, // 512 sets x 4 ways = 2048 entries
		BTBWays:         4,
	}
}

func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// Predictor is the hybrid direction predictor plus BTB.
type Predictor struct {
	cfg      Config
	bimodal  []counter2
	gshare   []counter2
	selector []counter2 // >=2 selects gshare
	history  uint32
	histMask uint32

	btbTags    [][]uint64
	btbTargets [][]uint64
	btbLRU     [][]uint8

	lookups     uint64
	mispredicts uint64
}

// New builds a predictor; it panics on non-power-of-two table sizes
// (a configuration programming error).
func New(cfg Config) *Predictor {
	for _, v := range [...]int{cfg.BimodalEntries, cfg.GshareEntries, cfg.SelectorEntries, cfg.BTBSets} {
		if !isPow2(v) {
			panic("bpred: table sizes must be powers of two")
		}
	}
	if cfg.BTBWays <= 0 {
		panic("bpred: BTBWays must be positive")
	}
	p := &Predictor{
		cfg:      cfg,
		bimodal:  make([]counter2, cfg.BimodalEntries),
		gshare:   make([]counter2, cfg.GshareEntries),
		selector: make([]counter2, cfg.SelectorEntries),
		histMask: uint32(cfg.GshareEntries - 1),
	}
	// Weakly taken initial state converges quickly either way.
	for i := range p.bimodal {
		p.bimodal[i] = 2
	}
	for i := range p.gshare {
		p.gshare[i] = 2
	}
	for i := range p.selector {
		p.selector[i] = 2
	}
	p.btbTags = make([][]uint64, cfg.BTBSets)
	p.btbTargets = make([][]uint64, cfg.BTBSets)
	p.btbLRU = make([][]uint8, cfg.BTBSets)
	for s := range p.btbTags {
		p.btbTags[s] = make([]uint64, cfg.BTBWays)
		p.btbTargets[s] = make([]uint64, cfg.BTBWays)
		p.btbLRU[s] = make([]uint8, cfg.BTBWays)
	}
	return p
}

func (p *Predictor) bimodalIdx(pc uint64) int {
	return int((pc >> 2) & uint64(p.cfg.BimodalEntries-1))
}

func (p *Predictor) gshareIdx(pc uint64) int {
	return int(((uint32(pc>>2) ^ p.history) & p.histMask))
}

func (p *Predictor) selectorIdx(pc uint64) int {
	return int((pc >> 2) & uint64(p.cfg.SelectorEntries-1))
}

// Prediction carries everything needed to later update the predictor.
type Prediction struct {
	Taken      bool
	Target     uint64 // 0 if the BTB missed
	usedGshare bool
	history    uint32 // history snapshot for repair
}

// Predict returns the hybrid direction prediction and BTB target for a
// branch at pc. The global history register is updated speculatively.
func (p *Predictor) Predict(pc uint64) Prediction {
	p.lookups++
	bi := p.bimodal[p.bimodalIdx(pc)].taken()
	gs := p.gshare[p.gshareIdx(pc)].taken()
	useG := p.selector[p.selectorIdx(pc)].taken()
	pred := Prediction{usedGshare: useG, history: p.history}
	if useG {
		pred.Taken = gs
	} else {
		pred.Taken = bi
	}
	pred.Target = p.btbLookup(pc)
	// Speculative history update; repaired via Prediction.history on a
	// misprediction (Resolve does the repair).
	p.history = ((p.history << 1) | b2u(pred.Taken)) & p.histMask
	return pred
}

// Resolve updates the predictor with the actual outcome and reports
// whether the prediction was wrong. On a wrong direction or a taken
// branch with unknown/incorrect target, the history is repaired with
// the actual outcome.
func (p *Predictor) Resolve(pc uint64, pr Prediction, taken bool, target uint64) (mispredicted bool) {
	// Direction tables are updated with the real outcome. gshare is
	// indexed with the history the prediction used.
	gIdx := int((uint32(pc>>2) ^ pr.history) & p.histMask)
	bIdx := p.bimodalIdx(pc)
	gOld := p.gshare[gIdx].taken()
	bOld := p.bimodal[bIdx].taken()
	p.gshare[gIdx] = p.gshare[gIdx].update(taken)
	p.bimodal[bIdx] = p.bimodal[bIdx].update(taken)
	// Selector trains toward the component that was right, when they
	// disagree.
	if gOld != bOld {
		sIdx := p.selectorIdx(pc)
		p.selector[sIdx] = p.selector[sIdx].update(gOld == taken)
	}
	mispredicted = pr.Taken != taken
	if taken {
		if pr.Target == 0 || pr.Target != target {
			mispredicted = true
		}
		p.btbInsert(pc, target)
	}
	if mispredicted {
		p.mispredicts++
		// Repair the global history: replay it as if the correct
		// outcome had been shifted in.
		p.history = ((pr.history << 1) | b2u(taken)) & p.histMask
	}
	return mispredicted
}

func (p *Predictor) btbSet(pc uint64) int {
	return int((pc >> 2) & uint64(p.cfg.BTBSets-1))
}

func (p *Predictor) btbLookup(pc uint64) uint64 {
	s := p.btbSet(pc)
	for w := 0; w < p.cfg.BTBWays; w++ {
		if p.btbTags[s][w] == pc && pc != 0 {
			p.touchBTB(s, w)
			return p.btbTargets[s][w]
		}
	}
	return 0
}

func (p *Predictor) btbInsert(pc, target uint64) {
	s := p.btbSet(pc)
	// Hit: update target.
	for w := 0; w < p.cfg.BTBWays; w++ {
		if p.btbTags[s][w] == pc {
			p.btbTargets[s][w] = target
			p.touchBTB(s, w)
			return
		}
	}
	// Miss: replace LRU way (highest age).
	victim, worst := 0, uint8(0)
	for w := 0; w < p.cfg.BTBWays; w++ {
		if p.btbTags[s][w] == 0 {
			victim = w
			break
		}
		if p.btbLRU[s][w] >= worst {
			victim, worst = w, p.btbLRU[s][w]
		}
	}
	p.btbTags[s][victim] = pc
	p.btbTargets[s][victim] = target
	p.touchBTB(s, victim)
}

// touchBTB ages all ways in the set and marks w most recently used.
func (p *Predictor) touchBTB(s, w int) {
	for i := 0; i < p.cfg.BTBWays; i++ {
		if p.btbLRU[s][i] < 255 {
			p.btbLRU[s][i]++
		}
	}
	p.btbLRU[s][w] = 0
}

// ResetStats zeroes the lookup/mispredict counters (tables are kept).
// Used at the end of simulation warm-up.
func (p *Predictor) ResetStats() { p.lookups, p.mispredicts = 0, 0 }

// Lookups returns the number of Predict calls.
func (p *Predictor) Lookups() uint64 { return p.lookups }

// Mispredicts returns the number of resolved mispredictions.
func (p *Predictor) Mispredicts() uint64 { return p.mispredicts }

// MispredictRate returns mispredicts/lookups (0 when no lookups).
func (p *Predictor) MispredictRate() float64 {
	if p.lookups == 0 {
		return 0
	}
	return float64(p.mispredicts) / float64(p.lookups)
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
