package faultinject

import (
	"strings"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("err=0.1,lat=5ms:50ms,reset=0.05,trunc=0.02,seed=42")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	want := Spec{Err: 0.1, Reset: 0.05, Trunc: 0.02, LatMin: 5 * time.Millisecond, LatMax: 50 * time.Millisecond, Seed: 42}
	if spec != want {
		t.Fatalf("spec = %+v, want %+v", spec, want)
	}
	if !spec.Enabled() {
		t.Fatal("spec should be enabled")
	}

	// Round-trip through String.
	back, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", spec.String(), err)
	}
	if back != spec {
		t.Fatalf("round-trip %q = %+v, want %+v", spec.String(), back, spec)
	}
}

func TestParseSpecDefaults(t *testing.T) {
	spec, err := ParseSpec("")
	if err != nil {
		t.Fatalf("ParseSpec(empty): %v", err)
	}
	if spec.Enabled() {
		t.Fatalf("zero spec should be disabled, got %+v", spec)
	}

	// Single-duration lat means a fixed delay.
	spec, err = ParseSpec("lat=10ms")
	if err != nil {
		t.Fatalf("ParseSpec(lat=10ms): %v", err)
	}
	if spec.LatMin != 10*time.Millisecond || spec.LatMax != 10*time.Millisecond {
		t.Fatalf("lat=10ms parsed to [%v, %v]", spec.LatMin, spec.LatMax)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"err=1.5",           // probability out of range
		"err=-0.1",          // negative
		"err=x",             // not a number
		"lat=5ms:1ms",       // max < min
		"lat=-5ms",          // negative duration
		"lat=abc",           // not a duration
		"seed=abc",          // not an integer
		"bogus=1",           // unknown key
		"err",               // not key=value
		"err=0.6,reset=0.6", // terminal kinds sum > 1
		"err=0.5,throttle=0.6",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", bad)
		}
	}
}

func TestPlanDeterministicPerSeed(t *testing.T) {
	spec, err := ParseSpec("err=0.2,throttle=0.1,lat=1ms:3ms,reset=0.1,trunc=0.2,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	a, b := New(spec), New(spec)
	for i := 0; i < 500; i++ {
		pa, pb := a.Plan(), b.Plan()
		if pa != pb {
			t.Fatalf("plan %d diverged: %+v vs %+v", i, pa, pb)
		}
	}

	// A different seed must change the drawn sequence.
	other := spec
	other.Seed = 8
	c := New(spec)
	d := New(other)
	same := 0
	for i := 0; i < 500; i++ {
		if c.Plan() == d.Plan() {
			same++
		}
	}
	if same == 500 {
		t.Fatal("seeds 7 and 8 drew identical 500-plan sequences")
	}
}

func TestPlanRespectsSpec(t *testing.T) {
	spec, _ := ParseSpec("err=0.3,throttle=0.2,reset=0.1,trunc=0.5,lat=1ms:4ms,seed=11")
	in := New(spec)
	var errs, throttles, resets, truncs int
	const n = 2000
	for i := 0; i < n; i++ {
		p := in.Plan()
		if p.Latency < spec.LatMin || p.Latency > spec.LatMax {
			t.Fatalf("latency %v outside [%v, %v]", p.Latency, spec.LatMin, spec.LatMax)
		}
		switch p.Kind {
		case KindError:
			errs++
		case KindThrottle:
			throttles++
		case KindReset:
			resets++
		}
		if p.TruncAfter != 0 {
			if p.Kind != KindNone {
				t.Fatalf("plan %+v truncates a terminated request", p)
			}
			if p.TruncAfter < truncMinBytes || p.TruncAfter > truncMaxBytes {
				t.Fatalf("truncation point %d outside [%d, %d]", p.TruncAfter, truncMinBytes, truncMaxBytes)
			}
			truncs++
		}
	}
	// Loose sanity on rates: each configured fault should fire within
	// a wide band of its expectation over 2000 draws.
	check := func(name string, got int, p float64) {
		t.Helper()
		lo, hi := int(float64(n)*p*0.5), int(float64(n)*p*1.5)
		if got < lo || got > hi {
			t.Errorf("%s fired %d times, want roughly [%d, %d]", name, got, lo, hi)
		}
	}
	check("err", errs, spec.Err)
	check("throttle", throttles, spec.Throttle)
	check("reset", resets, spec.Reset)
	// Truncation only applies to KindNone plans (p = 0.4 of draws).
	check("trunc", truncs, spec.Trunc*(1-spec.Err-spec.Throttle-spec.Reset))
}

func TestZeroSpecNeverFaults(t *testing.T) {
	in := New(Spec{Seed: 3})
	for i := 0; i < 200; i++ {
		if p := in.Plan(); p != (Plan{}) {
			t.Fatalf("zero spec drew %+v", p)
		}
	}
}

func TestFiredCounts(t *testing.T) {
	in := New(Spec{})
	in.Fired(KindError)
	in.Fired(KindError)
	in.Fired(KindTruncate)
	in.Fired(KindLatency)
	in.Fired(KindNone) // must not count
	c := in.Counts()
	if c.Errors != 2 || c.Truncations != 1 || c.Latencies != 1 || c.Throttles != 0 || c.Resets != 0 {
		t.Fatalf("counts = %+v", c)
	}
	if c.Total() != 4 {
		t.Fatalf("total = %d, want 4", c.Total())
	}
	var acc Counts
	acc.Add(c)
	acc.Add(c)
	if acc.Total() != 8 {
		t.Fatalf("accumulated total = %d, want 8", acc.Total())
	}
	for _, k := range Kinds() {
		if acc.Get(k) != 2*c.Get(k) {
			t.Fatalf("Get(%v) = %d, want %d", k, acc.Get(k), 2*c.Get(k))
		}
	}
}

func TestKindStrings(t *testing.T) {
	labels := make(map[string]bool)
	for _, k := range Kinds() {
		s := k.String()
		if s == "none" || strings.ContainsAny(s, " {}\"") {
			t.Fatalf("kind %d has bad metric label %q", k, s)
		}
		if labels[s] {
			t.Fatalf("duplicate label %q", s)
		}
		labels[s] = true
	}
}
