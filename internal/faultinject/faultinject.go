// Package faultinject is the deterministic, seedable fault layer the
// chaos harness injects into samie-serve: HTTP-level 500s and 429s,
// added latency, connection resets, and mid-body stream truncation,
// each drawn from one seeded PRNG so a fault schedule replays exactly.
//
// A Spec is parsed from a compact operator string —
//
//	err=0.1,throttle=0.05,lat=5ms:50ms,reset=0.05,trunc=0.02,seed=42
//
// — and compiled into an Injector whose Plan method draws the fault
// plan for one request. Draw order is fixed (latency, then the fault
// kind, then the truncation point), so for a given seed the i-th
// request always receives the i-th plan regardless of what earlier
// plans did to their requests: same seed + same request sequence →
// same injected-fault counts. Per-kind counters record only faults
// that actually fired, which is what tests assert against
// (samie_chaos_injected_total{kind=...}).
//
// The package knows nothing about HTTP; internal/server owns the
// middleware that applies a Plan to a live request, so the layer can
// also wrap non-HTTP consumers in tests.
package faultinject

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind names one injectable fault class.
type Kind int

const (
	// KindNone is the no-fault plan.
	KindNone Kind = iota
	// KindError answers the request with an injected HTTP 500.
	KindError
	// KindThrottle answers the request with an injected HTTP 429 +
	// Retry-After.
	KindThrottle
	// KindReset severs the connection abruptly (RST), mid-exchange.
	KindReset
	// KindTruncate severs the response mid-body after a drawn number
	// of bytes — an NDJSON stream loses its tail, a JSON body arrives
	// unparseable.
	KindTruncate
	// KindLatency delays the request by a drawn duration before it
	// proceeds (composable with every other kind).
	KindLatency

	kindCount
)

// String returns the metric label for the kind.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindThrottle:
		return "throttle"
	case KindReset:
		return "reset"
	case KindTruncate:
		return "truncate"
	case KindLatency:
		return "latency"
	}
	return "none"
}

// Kinds lists the countable fault kinds in metric-label order.
func Kinds() []Kind {
	return []Kind{KindError, KindThrottle, KindReset, KindTruncate, KindLatency}
}

// Truncation-point bounds: a drawn cut lands inside real payloads (one
// NDJSON run event is O(1KB), a run response O(2-10KB)) so streams
// lose their tails mid-line and JSON bodies arrive unparseable, while
// tiny bodies (health probes, error JSON) usually escape.
const (
	truncMinBytes = 256
	truncMaxBytes = 8192
)

// Spec is one parsed fault configuration. Probabilities are per
// request; zero disables that fault. The zero Spec injects nothing.
type Spec struct {
	Err      float64       // P(injected 500)
	Throttle float64       // P(injected 429 + Retry-After)
	Reset    float64       // P(abrupt connection reset)
	Trunc    float64       // P(mid-body response truncation)
	LatMin   time.Duration // added latency lower bound (with LatMax > 0)
	LatMax   time.Duration // added latency upper bound; 0 disables
	Seed     int64         // PRNG seed; same seed → same draw sequence
}

// Enabled reports whether the spec injects anything at all.
func (s Spec) Enabled() bool {
	return s.Err > 0 || s.Throttle > 0 || s.Reset > 0 || s.Trunc > 0 || s.LatMax > 0
}

// String renders the spec back in the grammar ParseSpec accepts.
func (s Spec) String() string {
	var parts []string
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, k+"="+strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	add("err", s.Err)
	add("throttle", s.Throttle)
	if s.LatMax > 0 {
		parts = append(parts, fmt.Sprintf("lat=%s:%s", s.LatMin, s.LatMax))
	}
	add("reset", s.Reset)
	add("trunc", s.Trunc)
	parts = append(parts, "seed="+strconv.FormatInt(s.Seed, 10))
	return strings.Join(parts, ",")
}

// ParseSpec parses the operator fault grammar:
//
//	err=0.1,throttle=0.05,lat=5ms:50ms,reset=0.05,trunc=0.02,seed=42
//
// Keys may appear in any order; omitted keys default to zero (fault
// disabled; seed 0). Probabilities must lie in [0, 1] and their sum
// (err+throttle+reset, the mutually-exclusive kinds) must not exceed
// 1. lat takes a single duration ("lat=10ms") or a min:max range.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	if strings.TrimSpace(s) == "" {
		return spec, nil
	}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Spec{}, fmt.Errorf("faultinject: %q is not key=value", field)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		prob := func(dst *float64) error {
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return fmt.Errorf("faultinject: %s=%q is not a probability in [0,1]", key, val)
			}
			*dst = p
			return nil
		}
		var err error
		switch key {
		case "err":
			err = prob(&spec.Err)
		case "throttle":
			err = prob(&spec.Throttle)
		case "reset":
			err = prob(&spec.Reset)
		case "trunc":
			err = prob(&spec.Trunc)
		case "seed":
			spec.Seed, err = strconv.ParseInt(val, 10, 64)
			if err != nil {
				err = fmt.Errorf("faultinject: seed=%q is not an integer", val)
			}
		case "lat":
			lo, hi, ranged := strings.Cut(val, ":")
			spec.LatMin, err = time.ParseDuration(lo)
			if err == nil && ranged {
				spec.LatMax, err = time.ParseDuration(hi)
			} else if err == nil {
				spec.LatMax = spec.LatMin
			}
			if err != nil {
				err = fmt.Errorf("faultinject: lat=%q is not a duration or min:max range", val)
			}
			if err == nil && (spec.LatMin < 0 || spec.LatMax < spec.LatMin) {
				err = fmt.Errorf("faultinject: lat=%q needs 0 <= min <= max", val)
			}
		default:
			err = fmt.Errorf("faultinject: unknown key %q (want err, throttle, lat, reset, trunc, seed)", key)
		}
		if err != nil {
			return Spec{}, err
		}
	}
	if sum := spec.Err + spec.Throttle + spec.Reset; sum > 1 {
		return Spec{}, fmt.Errorf("faultinject: err+throttle+reset = %g exceeds 1", sum)
	}
	return spec, nil
}

// Plan is the drawn fault schedule for one request.
type Plan struct {
	// Latency is added before the request proceeds; 0 means none.
	Latency time.Duration
	// Kind is the terminal fault (error/throttle/reset), or KindNone.
	Kind Kind
	// TruncAfter severs the response after this many body bytes;
	// 0 means no truncation. Only meaningful with Kind == KindNone
	// (a terminated request has no body to truncate).
	TruncAfter int
}

// Counts is a snapshot of faults that actually fired.
type Counts struct {
	Errors      int64 `json:"errors"`
	Throttles   int64 `json:"throttles"`
	Resets      int64 `json:"resets"`
	Truncations int64 `json:"truncations"`
	Latencies   int64 `json:"latencies"`
}

// Total sums every fired fault.
func (c Counts) Total() int64 {
	return c.Errors + c.Throttles + c.Resets + c.Truncations + c.Latencies
}

// Add accumulates another snapshot (metric continuity across injector
// swaps).
func (c *Counts) Add(o Counts) {
	c.Errors += o.Errors
	c.Throttles += o.Throttles
	c.Resets += o.Resets
	c.Truncations += o.Truncations
	c.Latencies += o.Latencies
}

// Get returns the count for one kind.
func (c Counts) Get(k Kind) int64 {
	switch k {
	case KindError:
		return c.Errors
	case KindThrottle:
		return c.Throttles
	case KindReset:
		return c.Resets
	case KindTruncate:
		return c.Truncations
	case KindLatency:
		return c.Latencies
	}
	return 0
}

// Injector draws fault plans from one seeded PRNG and counts what
// fired. Safe for concurrent use; with concurrent requests the
// ASSIGNMENT of plans to requests follows arrival order at the mutex,
// but the drawn sequence itself — and therefore the fault counts for a
// fixed request count — depends only on the seed.
type Injector struct {
	spec Spec

	mu  sync.Mutex
	rng *rand.Rand

	counts [kindCount]atomic.Int64
}

// New compiles a spec into an injector.
func New(spec Spec) *Injector {
	return &Injector{spec: spec, rng: rand.New(rand.NewSource(spec.Seed))}
}

// Spec returns the injector's configuration.
func (in *Injector) Spec() Spec { return in.spec }

// Counts snapshots the fired-fault counters.
func (in *Injector) Counts() Counts {
	return Counts{
		Errors:      in.counts[KindError].Load(),
		Throttles:   in.counts[KindThrottle].Load(),
		Resets:      in.counts[KindReset].Load(),
		Truncations: in.counts[KindTruncate].Load(),
		Latencies:   in.counts[KindLatency].Load(),
	}
}

// Fired records that a planned fault was actually applied. The
// middleware calls it at application time, not draw time: a truncation
// plan on a response shorter than its cut never fires, and must not
// count.
func (in *Injector) Fired(k Kind) {
	if k > KindNone && k < kindCount {
		in.counts[k].Add(1)
	}
}

// Plan draws the fault schedule for the next request. The draw order
// is fixed — latency, terminal kind, truncation — so the sequence of
// plans is a pure function of the seed.
func (in *Injector) Plan() Plan {
	in.mu.Lock()
	defer in.mu.Unlock()
	var p Plan
	if in.spec.LatMax > 0 {
		span := int64(in.spec.LatMax - in.spec.LatMin)
		p.Latency = in.spec.LatMin
		if span > 0 {
			p.Latency += time.Duration(in.rng.Int63n(span + 1))
		}
	}
	// One uniform draw picks among the mutually-exclusive terminal
	// kinds; their probabilities partition [0,1).
	u := in.rng.Float64()
	switch {
	case u < in.spec.Err:
		p.Kind = KindError
	case u < in.spec.Err+in.spec.Throttle:
		p.Kind = KindThrottle
	case u < in.spec.Err+in.spec.Throttle+in.spec.Reset:
		p.Kind = KindReset
	}
	// The truncation draws happen unconditionally so the sequence
	// stays aligned across seeds regardless of which kinds fired.
	truncHit := in.rng.Float64() < in.spec.Trunc
	cut := truncMinBytes + in.rng.Intn(truncMaxBytes-truncMinBytes+1)
	if truncHit && p.Kind == KindNone {
		p.TruncAfter = cut
	}
	return p
}
