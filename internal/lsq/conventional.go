package lsq

import (
	"samielsq/internal/energy"
)

// Conventional is the baseline LSQ of §4.2: a fully-associative
// structure of Entries entries allocated in program order at dispatch.
// For a fair energy comparison (as the paper assumes), a load address
// is compared only against the addresses of older stores whose address
// is known, and a store address only against younger loads with known
// addresses. Matching loads are forwarded from the store and skip the
// Dcache.
type Conventional struct {
	entries int
	t       *Tracker
	meter   *energy.Meter

	occupancy     OccupancyStats
	dispatchFails uint64
}

// OccupancyStats accumulates per-cycle occupancy for reporting.
type OccupancyStats struct {
	Cycles uint64
	SumOcc float64
	MaxOcc int
}

// Observe records one cycle at occupancy n.
func (o *OccupancyStats) Observe(n int) {
	o.Cycles++
	o.SumOcc += float64(n)
	if n > o.MaxOcc {
		o.MaxOcc = n
	}
}

// Mean returns the average occupancy.
func (o *OccupancyStats) Mean() float64 {
	if o.Cycles == 0 {
		return 0
	}
	return o.SumOcc / float64(o.Cycles)
}

// NewConventional builds the baseline with the given capacity
// (the paper uses 128) charging energy to meter. meter may be nil.
func NewConventional(entries int, meter *energy.Meter) *Conventional {
	if entries <= 0 {
		panic("lsq: conventional LSQ needs positive capacity")
	}
	if meter == nil {
		meter = energy.NewMeter()
	}
	return &Conventional{entries: entries, t: NewTracker(), meter: meter}
}

// Name implements Model.
func (c *Conventional) Name() string { return "conventional" }

// Entries returns the configured capacity.
func (c *Conventional) Entries() int { return c.entries }

// Dispatch implements Model; it fails when the queue is full.
//
//samie:hotpath
func (c *Conventional) Dispatch(seq uint64, isLoad bool) bool {
	if c.t.Len() >= c.entries {
		c.dispatchFails++
		return false
	}
	op := c.t.Add(seq, isLoad)
	c.t.SetPlaced(op) // entry allocated at dispatch
	return true
}

// AddressReady implements Model: the computed address is written into
// the entry and compared associatively per the §4.2 policy.
//
//samie:hotpath
func (c *Conventional) AddressReady(seq uint64, isLoad bool, addr uint64, size uint8) Placement {
	op := c.t.Get(seq)
	if op == nil {
		return Placement{Failed: true}
	}
	c.t.SetAddress(op, addr, size)
	c.meter.ConvRWAddr()
	if isLoad {
		c.meter.ConvCompare(c.t.CountOlderKnownStores(seq))
	} else {
		c.meter.ConvCompare(c.t.CountYoungerKnownLoads(seq))
		// Store data is written into the entry when available; we
		// charge it here (data ready at issue in this model).
		c.meter.ConvRWDatum()
	}
	return Placement{Placed: true}
}

// Tick implements Model (no buffering in the conventional LSQ).
func (c *Conventional) Tick() []uint64 { return nil }

// Placed implements Model.
func (c *Conventional) Placed(seq uint64) bool {
	op := c.t.Get(seq)
	return op != nil && op.Placed
}

// ForwardingSource implements Model.
//
//samie:hotpath
func (c *Conventional) ForwardingSource(seq uint64) (uint64, bool) {
	s, ok := c.t.ForwardingSource(seq)
	if ok {
		// Forwarded loads read the store datum and write their own.
		c.meter.ConvRWDatum()
		c.meter.ConvRWDatum()
	}
	return s, ok
}

// Plan implements Model; the conventional LSQ never caches locations.
func (c *Conventional) Plan(seq uint64) AccessPlan { return AccessPlan{} }

// RecordAccess implements Model (no-op).
func (c *Conventional) RecordAccess(seq uint64, set, way int, vpn uint64) {}

// NotePerformed implements Model.
func (c *Conventional) NotePerformed(seq uint64) {
	if op := c.t.Get(seq); op != nil {
		op.Performed = true
		if op.IsLoad {
			// The loaded datum is written into the entry.
			c.meter.ConvRWDatum()
		}
	}
}

// ClearCachedLocations implements Model (no-op).
func (c *Conventional) ClearCachedLocations() {}

// Commit implements Model.
func (c *Conventional) Commit(seq uint64) {
	op := c.t.Remove(seq)
	if op != nil && !op.IsLoad {
		// The store datum is read out to be written to memory.
		c.meter.ConvRWDatum()
	}
}

// Flush implements Model.
func (c *Conventional) Flush() { c.t.Clear() }

// AccountCycle implements Model: occupancy and §4.5 active area
// (in-use entries plus four pre-allocated).
//
//samie:hotpath
func (c *Conventional) AccountCycle() {
	n := c.t.Len()
	c.occupancy.Observe(n)
	c.meter.AccumulateConvArea(n, c.entries)
}

// InFlight implements Model.
func (c *Conventional) InFlight() int { return c.t.Len() }

// FreeCapacity implements Model: entries are pre-allocated at
// dispatch, so a computed address always has a home.
func (c *Conventional) FreeCapacity() int { return int(^uint(0) >> 1) }

// ResetStats implements Model.
func (c *Conventional) ResetStats() {
	c.occupancy = OccupancyStats{}
	c.dispatchFails = 0
}

// Occupancy returns the accumulated occupancy statistics.
func (c *Conventional) Occupancy() OccupancyStats { return c.occupancy }

// DispatchFails returns how many dispatch attempts were rejected.
func (c *Conventional) DispatchFails() uint64 { return c.dispatchFails }

// Unbounded is an idealized LSQ with no capacity limit, used as the
// reference for Figure 1. It performs the same forwarding as the
// conventional model but never stalls dispatch and charges no energy.
type Unbounded struct {
	t *Tracker
}

// NewUnbounded builds the ideal LSQ.
func NewUnbounded() *Unbounded { return &Unbounded{t: NewTracker()} }

// Name implements Model.
func (u *Unbounded) Name() string { return "unbounded" }

// Dispatch implements Model.
func (u *Unbounded) Dispatch(seq uint64, isLoad bool) bool {
	op := u.t.Add(seq, isLoad)
	u.t.SetPlaced(op)
	return true
}

// AddressReady implements Model.
func (u *Unbounded) AddressReady(seq uint64, isLoad bool, addr uint64, size uint8) Placement {
	op := u.t.Get(seq)
	if op == nil {
		return Placement{Failed: true}
	}
	u.t.SetAddress(op, addr, size)
	return Placement{Placed: true}
}

// Tick implements Model.
func (u *Unbounded) Tick() []uint64 { return nil }

// Placed implements Model.
func (u *Unbounded) Placed(seq uint64) bool { return u.t.Get(seq) != nil }

// ForwardingSource implements Model.
func (u *Unbounded) ForwardingSource(seq uint64) (uint64, bool) {
	return u.t.ForwardingSource(seq)
}

// Plan implements Model.
func (u *Unbounded) Plan(seq uint64) AccessPlan { return AccessPlan{} }

// RecordAccess implements Model (no-op).
func (u *Unbounded) RecordAccess(seq uint64, set, way int, vpn uint64) {}

// NotePerformed implements Model.
func (u *Unbounded) NotePerformed(seq uint64) {
	if op := u.t.Get(seq); op != nil {
		op.Performed = true
	}
}

// ClearCachedLocations implements Model (no-op).
func (u *Unbounded) ClearCachedLocations() {}

// Commit implements Model.
func (u *Unbounded) Commit(seq uint64) { u.t.Remove(seq) }

// Flush implements Model.
func (u *Unbounded) Flush() { u.t.Clear() }

// AccountCycle implements Model (no-op).
func (u *Unbounded) AccountCycle() {}

// InFlight implements Model.
func (u *Unbounded) InFlight() int { return u.t.Len() }

// ResetStats implements Model (no statistics kept).
func (u *Unbounded) ResetStats() {}

// FreeCapacity implements Model.
func (u *Unbounded) FreeCapacity() int { return int(^uint(0) >> 1) }
