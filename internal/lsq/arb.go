package lsq

// ARB models the Address Resolution Buffer of Franklin & Sohi as
// evaluated in Figure 1 of the paper: the LSQ is distributed over N
// banks, each bank holds M different addresses, and each address has
// room for up to P instructions, where P is also the total number of
// in-flight memory instructions allowed (the paper's configurations
// are "banks x addresses" with P = 128, and a "half" variant with
// P = 64).
//
// An instruction whose bank has no free address entry waits and
// retries every cycle; dispatch stalls when P instructions are in
// flight. As with the SAMIE-LSQ, a blocked oldest instruction is
// resolved by the CPU's deadlock-avoidance flush.
type ARB struct {
	banks     int
	addrs     int // addresses per bank
	inflight  int // P: maximum in-flight memory instructions
	t         *Tracker
	bankAddrs []arbBank // per bank: address -> #instructions using it
	pending   []uint64  // seqs waiting for a bank slot, oldest first
	placedBuf []uint64  // reused by Tick (see Model.Tick contract)

	placeFails uint64
	stalls     uint64
}

// arbBank tracks the in-use addresses of one bank. Banks hold few
// addresses in the paper's geometries, so a linear array of
// (word, refcount) pairs is faster than a hash map for the per-cycle
// placement retries; large-M geometries fall back to a map.
type arbBank struct {
	words []arbWord
	m     map[uint64]int // non-nil only when addrs > arbBankLinearMax
}

type arbWord struct {
	w uint64
	n int
}

// arbBankLinearMax is the largest per-bank address count served by the
// linear representation.
const arbBankLinearMax = 16

func (b *arbBank) len() int {
	if b.m != nil {
		return len(b.m)
	}
	return len(b.words)
}

// incr bumps the refcount of w if present, reporting whether it was.
func (b *arbBank) incr(w uint64) bool {
	if b.m != nil {
		if _, ok := b.m[w]; ok {
			b.m[w]++
			return true
		}
		return false
	}
	for i := range b.words {
		if b.words[i].w == w {
			b.words[i].n++
			return true
		}
	}
	return false
}

func (b *arbBank) insert(w uint64) {
	if b.m != nil {
		b.m[w] = 1
		return
	}
	b.words = append(b.words, arbWord{w: w, n: 1})
}

func (b *arbBank) release(w uint64) {
	if b.m != nil {
		if n, ok := b.m[w]; ok {
			if n <= 1 {
				delete(b.m, w)
			} else {
				b.m[w] = n - 1
			}
		}
		return
	}
	for i := range b.words {
		if b.words[i].w == w {
			b.words[i].n--
			if b.words[i].n <= 0 {
				last := len(b.words) - 1
				b.words[i] = b.words[last]
				b.words = b.words[:last]
			}
			return
		}
	}
}

func (b *arbBank) clear() {
	if b.m != nil {
		clear(b.m)
		return
	}
	b.words = b.words[:0]
}

// NewARB builds an ARB with banks x addrs geometry and an in-flight
// cap of inflight instructions.
func NewARB(banks, addrs, inflight int) *ARB {
	if banks <= 0 || addrs <= 0 || inflight <= 0 {
		panic("lsq: ARB parameters must be positive")
	}
	a := &ARB{
		banks:     banks,
		addrs:     addrs,
		inflight:  inflight,
		t:         NewTracker(),
		bankAddrs: make([]arbBank, banks),
	}
	if addrs > arbBankLinearMax {
		for i := range a.bankAddrs {
			a.bankAddrs[i].m = make(map[uint64]int)
		}
	}
	return a
}

// Name implements Model.
func (a *ARB) Name() string { return "arb" }

// word returns the 8-byte-aligned address the ARB disambiguates on.
func word(addr uint64) uint64 { return addr &^ 7 }

func (a *ARB) bankOf(addr uint64) int {
	return int((word(addr) >> 3) % uint64(a.banks))
}

// Dispatch implements Model; it enforces the total in-flight cap P.
//
//samie:hotpath
func (a *ARB) Dispatch(seq uint64, isLoad bool) bool {
	if a.t.Len() >= a.inflight {
		a.stalls++
		return false
	}
	a.t.Add(seq, isLoad)
	return true
}

// tryPlace attempts to put op into its bank.
//
//samie:hotpath
func (a *ARB) tryPlace(op *Op) bool {
	b := a.bankOf(op.Addr)
	w := word(op.Addr)
	bank := &a.bankAddrs[b]
	if !bank.incr(w) {
		if bank.len() >= a.addrs {
			return false
		}
		bank.insert(w)
	}
	a.t.SetPlaced(op)
	op.Loc[0] = b
	return true
}

// AddressReady implements Model.
//
//samie:hotpath
func (a *ARB) AddressReady(seq uint64, isLoad bool, addr uint64, size uint8) Placement {
	op := a.t.Get(seq)
	if op == nil {
		return Placement{Failed: true}
	}
	a.t.SetAddress(op, addr, size)
	if a.tryPlace(op) {
		return Placement{Placed: true}
	}
	a.placeFails++
	a.t.SetBuffered(op)
	//lint:ignore hotalloc pending is bounded by in-flight memory ops; capacity amortizes to that bound
	a.pending = append(a.pending, seq)
	return Placement{Buffered: true}
}

// Tick implements Model: retry pending placements, oldest first.
// Unlike the SAMIE AddrBuffer, the ARB's waiting instructions sit in
// reservation stations, so any of them may proceed when its own bank
// has room.
//
//samie:hotpath
func (a *ARB) Tick() []uint64 {
	if len(a.pending) == 0 {
		return nil
	}
	placed := a.placedBuf[:0]
	remaining := a.pending[:0]
	for _, seq := range a.pending {
		op := a.t.Get(seq)
		if op == nil {
			continue // flushed or committed
		}
		if a.tryPlace(op) {
			//lint:ignore hotalloc appends into the reused placedBuf
			placed = append(placed, seq)
		} else {
			//lint:ignore hotalloc in-place filter of pending; never exceeds its existing capacity
			remaining = append(remaining, seq)
		}
	}
	a.pending = remaining
	a.placedBuf = placed
	return placed
}

// Placed implements Model.
func (a *ARB) Placed(seq uint64) bool {
	op := a.t.Get(seq)
	return op != nil && op.Placed
}

// ForwardingSource implements Model.
//
//samie:hotpath
func (a *ARB) ForwardingSource(seq uint64) (uint64, bool) {
	return a.t.ForwardingSource(seq)
}

// Plan implements Model (the ARB caches nothing).
func (a *ARB) Plan(seq uint64) AccessPlan { return AccessPlan{} }

// RecordAccess implements Model (no-op).
func (a *ARB) RecordAccess(seq uint64, set, way int, vpn uint64) {}

// NotePerformed implements Model.
func (a *ARB) NotePerformed(seq uint64) {
	if op := a.t.Get(seq); op != nil {
		op.Performed = true
	}
}

// ClearCachedLocations implements Model (no-op).
func (a *ARB) ClearCachedLocations() {}

// release frees the bank slot held by op.
func (a *ARB) release(op *Op) {
	if op == nil || !op.Placed || op.Loc[0] < 0 {
		return
	}
	a.bankAddrs[op.Loc[0]].release(word(op.Addr))
}

// Commit implements Model.
func (a *ARB) Commit(seq uint64) {
	a.release(a.t.Get(seq))
	a.t.Remove(seq)
}

// Flush implements Model.
func (a *ARB) Flush() {
	a.t.Clear()
	for i := range a.bankAddrs {
		a.bankAddrs[i].clear() // reuse the storage: flushes are frequent under pressure
	}
	a.pending = a.pending[:0]
}

// AccountCycle implements Model (the ARB experiments measure IPC
// only).
func (a *ARB) AccountCycle() {}

// InFlight implements Model.
func (a *ARB) InFlight() int { return a.t.Len() }

// ResetStats implements Model.
func (a *ARB) ResetStats() { a.placeFails, a.stalls = 0, 0 }

// FreeCapacity implements Model: conflicting instructions wait in
// reservation stations, so AddressReady never fails outright.
func (a *ARB) FreeCapacity() int { return int(^uint(0) >> 1) }

// PlaceFails returns how many placements had to wait for a bank slot.
func (a *ARB) PlaceFails() uint64 { return a.placeFails }

// DispatchStalls returns how many dispatches were rejected by the
// in-flight cap.
func (a *ARB) DispatchStalls() uint64 { return a.stalls }
