package lsq

// ARB models the Address Resolution Buffer of Franklin & Sohi as
// evaluated in Figure 1 of the paper: the LSQ is distributed over N
// banks, each bank holds M different addresses, and each address has
// room for up to P instructions, where P is also the total number of
// in-flight memory instructions allowed (the paper's configurations
// are "banks x addresses" with P = 128, and a "half" variant with
// P = 64).
//
// An instruction whose bank has no free address entry waits and
// retries every cycle; dispatch stalls when P instructions are in
// flight. As with the SAMIE-LSQ, a blocked oldest instruction is
// resolved by the CPU's deadlock-avoidance flush.
type ARB struct {
	banks     int
	addrs     int // addresses per bank
	inflight  int // P: maximum in-flight memory instructions
	t         *Tracker
	bankAddrs []map[uint64]int // per bank: address -> #instructions using it
	pending   []uint64         // seqs waiting for a bank slot, oldest first

	placeFails uint64
	stalls     uint64
}

// NewARB builds an ARB with banks x addrs geometry and an in-flight
// cap of inflight instructions.
func NewARB(banks, addrs, inflight int) *ARB {
	if banks <= 0 || addrs <= 0 || inflight <= 0 {
		panic("lsq: ARB parameters must be positive")
	}
	a := &ARB{
		banks:     banks,
		addrs:     addrs,
		inflight:  inflight,
		t:         NewTracker(),
		bankAddrs: make([]map[uint64]int, banks),
	}
	for i := range a.bankAddrs {
		a.bankAddrs[i] = make(map[uint64]int)
	}
	return a
}

// Name implements Model.
func (a *ARB) Name() string { return "arb" }

// word returns the 8-byte-aligned address the ARB disambiguates on.
func word(addr uint64) uint64 { return addr &^ 7 }

func (a *ARB) bankOf(addr uint64) int {
	return int((word(addr) >> 3) % uint64(a.banks))
}

// Dispatch implements Model; it enforces the total in-flight cap P.
func (a *ARB) Dispatch(seq uint64, isLoad bool) bool {
	if a.t.Len() >= a.inflight {
		a.stalls++
		return false
	}
	a.t.Add(seq, isLoad)
	return true
}

// tryPlace attempts to put op into its bank.
func (a *ARB) tryPlace(op *Op) bool {
	b := a.bankOf(op.Addr)
	w := word(op.Addr)
	bank := a.bankAddrs[b]
	if _, ok := bank[w]; ok {
		bank[w]++
	} else if len(bank) < a.addrs {
		bank[w] = 1
	} else {
		return false
	}
	op.Placed = true
	op.Buffered = false
	op.Loc[0] = b
	return true
}

// AddressReady implements Model.
func (a *ARB) AddressReady(seq uint64, isLoad bool, addr uint64, size uint8) Placement {
	op := a.t.Get(seq)
	if op == nil {
		return Placement{Failed: true}
	}
	op.Addr, op.Size, op.AddrKnown = addr, size, true
	if a.tryPlace(op) {
		return Placement{Placed: true}
	}
	a.placeFails++
	op.Buffered = true
	a.pending = append(a.pending, seq)
	return Placement{Buffered: true}
}

// Tick implements Model: retry pending placements, oldest first.
// Unlike the SAMIE AddrBuffer, the ARB's waiting instructions sit in
// reservation stations, so any of them may proceed when its own bank
// has room.
func (a *ARB) Tick() []uint64 {
	if len(a.pending) == 0 {
		return nil
	}
	var placed []uint64
	remaining := a.pending[:0]
	for _, seq := range a.pending {
		op := a.t.Get(seq)
		if op == nil {
			continue // flushed or committed
		}
		if a.tryPlace(op) {
			placed = append(placed, seq)
		} else {
			remaining = append(remaining, seq)
		}
	}
	a.pending = remaining
	return placed
}

// Placed implements Model.
func (a *ARB) Placed(seq uint64) bool {
	op := a.t.Get(seq)
	return op != nil && op.Placed
}

// ForwardingSource implements Model.
func (a *ARB) ForwardingSource(seq uint64) (uint64, bool) {
	return a.t.ForwardingSource(seq)
}

// Plan implements Model (the ARB caches nothing).
func (a *ARB) Plan(seq uint64) AccessPlan { return AccessPlan{} }

// RecordAccess implements Model (no-op).
func (a *ARB) RecordAccess(seq uint64, set, way int, vpn uint64) {}

// NotePerformed implements Model.
func (a *ARB) NotePerformed(seq uint64) {
	if op := a.t.Get(seq); op != nil {
		op.Performed = true
	}
}

// ClearCachedLocations implements Model (no-op).
func (a *ARB) ClearCachedLocations() {}

// release frees the bank slot held by op.
func (a *ARB) release(op *Op) {
	if op == nil || !op.Placed || op.Loc[0] < 0 {
		return
	}
	bank := a.bankAddrs[op.Loc[0]]
	w := word(op.Addr)
	if n, ok := bank[w]; ok {
		if n <= 1 {
			delete(bank, w)
		} else {
			bank[w] = n - 1
		}
	}
}

// Commit implements Model.
func (a *ARB) Commit(seq uint64) {
	a.release(a.t.Get(seq))
	a.t.Remove(seq)
}

// Flush implements Model.
func (a *ARB) Flush() {
	a.t.Clear()
	for i := range a.bankAddrs {
		a.bankAddrs[i] = make(map[uint64]int)
	}
	a.pending = a.pending[:0]
}

// AccountCycle implements Model (the ARB experiments measure IPC
// only).
func (a *ARB) AccountCycle() {}

// InFlight implements Model.
func (a *ARB) InFlight() int { return a.t.Len() }

// ResetStats implements Model.
func (a *ARB) ResetStats() { a.placeFails, a.stalls = 0, 0 }

// FreeCapacity implements Model: conflicting instructions wait in
// reservation stations, so AddressReady never fails outright.
func (a *ARB) FreeCapacity() int { return int(^uint(0) >> 1) }

// PlaceFails returns how many placements had to wait for a bank slot.
func (a *ARB) PlaceFails() uint64 { return a.placeFails }

// DispatchStalls returns how many dispatches were rejected by the
// in-flight cap.
func (a *ARB) DispatchStalls() uint64 { return a.stalls }
