package lsq

import (
	"testing"

	"samielsq/internal/energy"
)

func TestTrackerOrderAndLookup(t *testing.T) {
	tr := NewTracker()
	tr.Add(10, true)
	tr.Add(20, false)
	tr.Add(30, true)
	if tr.Len() != 3 {
		t.Fatalf("len = %d", tr.Len())
	}
	if tr.IndexOf(20) != 1 || tr.IndexOf(99) != -1 {
		t.Fatal("IndexOf wrong")
	}
	if tr.Get(20) == nil || tr.Get(99) != nil {
		t.Fatal("Get wrong")
	}
	tr.Remove(10)
	if tr.Len() != 2 || tr.IndexOf(20) != 0 {
		t.Fatal("Remove broke ordering")
	}
	tr.Clear()
	if tr.Len() != 0 || tr.Get(20) != nil {
		t.Fatal("Clear failed")
	}
}

func TestOverlaps(t *testing.T) {
	mk := func(addr uint64, size uint8) *Op {
		return &Op{Addr: addr, Size: size, AddrKnown: true}
	}
	cases := []struct {
		a, b *Op
		want bool
	}{
		{mk(100, 4), mk(100, 4), true},
		{mk(100, 4), mk(103, 4), true},  // partial
		{mk(100, 4), mk(104, 4), false}, // adjacent
		{mk(104, 4), mk(100, 4), false},
		{mk(100, 8), mk(104, 2), true}, // contained
	}
	for i, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("case %d: overlaps = %v, want %v", i, got, c.want)
		}
	}
	unknown := &Op{Addr: 100, Size: 4}
	if unknown.Overlaps(mk(100, 4)) {
		t.Error("unknown address overlapped")
	}
}

func TestForwardingSourcePicksYoungest(t *testing.T) {
	tr := NewTracker()
	s1 := tr.Add(1, false)
	s2 := tr.Add(2, false)
	l := tr.Add(3, true)
	for _, op := range []*Op{s1, s2, l} {
		tr.SetAddress(op, 0x1000, 4)
		tr.SetPlaced(op)
	}
	src, ok := tr.ForwardingSource(3)
	if !ok || src != 2 {
		t.Fatalf("forwarding source = %d (%v), want 2", src, ok)
	}
	// A store after the load must not forward.
	s3 := tr.Add(4, false)
	tr.SetAddress(s3, 0x1000, 4)
	tr.SetPlaced(s3)
	src, ok = tr.ForwardingSource(3)
	if !ok || src != 2 {
		t.Fatal("younger store forwarded to older load")
	}
	// Stores are never forwarded to.
	if _, ok := tr.ForwardingSource(2); ok {
		t.Fatal("store got a forwarding source")
	}
}

func TestCompareCounts(t *testing.T) {
	tr := NewTracker()
	s1 := tr.Add(1, false)
	tr.SetAddress(s1, 0x100, 4)
	tr.SetPlaced(s1)
	s2 := tr.Add(2, false) // address unknown
	tr.SetPlaced(s2)
	l := tr.Add(3, true)
	tr.SetAddress(l, 0x200, 4)
	tr.SetPlaced(l)
	if n := tr.CountOlderKnownStores(3); n != 1 {
		t.Fatalf("older known stores = %d, want 1", n)
	}
	if n := tr.CountYoungerKnownLoads(1); n != 1 {
		t.Fatalf("younger known loads = %d, want 1", n)
	}
	if n := tr.CountYoungerKnownLoads(999); n != 0 {
		t.Fatalf("unknown seq counted %d loads", n)
	}
}

func TestConventionalCapacity(t *testing.T) {
	c := NewConventional(2, nil)
	if !c.Dispatch(1, true) || !c.Dispatch(2, false) {
		t.Fatal("dispatch below capacity failed")
	}
	if c.Dispatch(3, true) {
		t.Fatal("dispatch above capacity succeeded")
	}
	if c.DispatchFails() != 1 {
		t.Fatalf("dispatch fails = %d", c.DispatchFails())
	}
	c.Commit(1)
	if !c.Dispatch(3, true) {
		t.Fatal("dispatch after commit failed")
	}
	if c.InFlight() != 2 {
		t.Fatalf("in flight = %d", c.InFlight())
	}
}

func TestConventionalEnergyAccounting(t *testing.T) {
	m := energy.NewMeter()
	c := NewConventional(128, m)
	c.Dispatch(1, false)
	c.AddressReady(1, false, 0x1000, 4) // store: compare vs 0 loads + addr write + datum write
	c.Dispatch(2, true)
	c.AddressReady(2, true, 0x1000, 4) // load: compare vs 1 store + addr write
	if m.NConvCompares != 2 {
		t.Fatalf("compares = %d", m.NConvCompares)
	}
	if m.ConvLSQ <= 0 {
		t.Fatal("no energy charged")
	}
	// Forwarding charges datum traffic.
	before := m.ConvLSQ
	if _, ok := c.ForwardingSource(2); !ok {
		t.Fatal("forwarding failed")
	}
	if m.ConvLSQ <= before {
		t.Fatal("forward charged no energy")
	}
}

func TestConventionalOccupancyAndReset(t *testing.T) {
	c := NewConventional(128, nil)
	c.Dispatch(1, true)
	c.AccountCycle()
	c.AccountCycle()
	occ := c.Occupancy()
	if occ.Cycles != 2 || occ.Mean() != 1 {
		t.Fatalf("occupancy = %+v", occ)
	}
	c.ResetStats()
	if c.Occupancy().Cycles != 0 {
		t.Fatal("ResetStats failed")
	}
	c.Flush()
	if c.InFlight() != 0 {
		t.Fatal("Flush failed")
	}
}

func TestUnboundedNeverStalls(t *testing.T) {
	u := NewUnbounded()
	for i := uint64(0); i < 1000; i++ {
		if !u.Dispatch(i, i%2 == 0) {
			t.Fatal("unbounded LSQ stalled")
		}
		pl := u.AddressReady(i, i%2 == 0, 0x1000+i*8, 8)
		if !pl.Placed {
			t.Fatal("unbounded LSQ failed to place")
		}
	}
	if u.InFlight() != 1000 {
		t.Fatalf("in flight = %d", u.InFlight())
	}
	for i := uint64(0); i < 1000; i++ {
		u.Commit(i)
	}
	if u.InFlight() != 0 {
		t.Fatal("commits did not drain")
	}
}

func TestARBSameAddressSharing(t *testing.T) {
	a := NewARB(4, 1, 128)
	a.Dispatch(1, false)
	a.Dispatch(2, true)
	// Two instructions to the same word share the single address entry.
	if pl := a.AddressReady(1, false, 0x1000, 8); !pl.Placed {
		t.Fatal("first placement failed")
	}
	if pl := a.AddressReady(2, true, 0x1000, 8); !pl.Placed {
		t.Fatal("same-address placement failed")
	}
	// A different word mapping to the same bank must wait.
	a.Dispatch(3, true)
	pl := a.AddressReady(3, true, 0x1000+4*8, 8) // +4 words: same bank (4 banks)
	if !pl.Buffered {
		t.Fatalf("conflicting placement should buffer: %+v", pl)
	}
	if a.PlaceFails() != 1 {
		t.Fatalf("place fails = %d", a.PlaceFails())
	}
	// Draining the bank lets the pending op in via Tick.
	a.Commit(1)
	a.Commit(2)
	placed := a.Tick()
	if len(placed) != 1 || placed[0] != 3 {
		t.Fatalf("Tick placed %v", placed)
	}
	if !a.Placed(3) {
		t.Fatal("op not marked placed")
	}
}

func TestARBInflightCap(t *testing.T) {
	a := NewARB(4, 4, 2)
	if !a.Dispatch(1, true) || !a.Dispatch(2, true) {
		t.Fatal("dispatch under cap failed")
	}
	if a.Dispatch(3, true) {
		t.Fatal("dispatch over cap succeeded")
	}
	if a.DispatchStalls() != 1 {
		t.Fatalf("stalls = %d", a.DispatchStalls())
	}
}

func TestARBFlush(t *testing.T) {
	a := NewARB(2, 1, 128)
	a.Dispatch(1, false)
	a.AddressReady(1, false, 0x1000, 8)
	a.Dispatch(2, true)
	a.AddressReady(2, true, 0x1000+16, 8) // same bank, other word: buffered
	a.Flush()
	if a.InFlight() != 0 {
		t.Fatal("flush left ops")
	}
	if got := a.Tick(); len(got) != 0 {
		t.Fatalf("flushed pending placed: %v", got)
	}
	// Bank state cleared: a fresh op places immediately.
	a.Dispatch(3, true)
	if pl := a.AddressReady(3, true, 0x2000, 8); !pl.Placed {
		t.Fatal("placement after flush failed")
	}
}

func TestARBReleaseFreesAddress(t *testing.T) {
	a := NewARB(1, 1, 128)
	a.Dispatch(1, false)
	a.AddressReady(1, false, 0x1000, 8)
	a.Dispatch(2, false)
	if pl := a.AddressReady(2, false, 0x2000, 8); pl.Placed {
		t.Fatal("second address fit in 1-address bank")
	}
	a.Commit(1)
	if got := a.Tick(); len(got) != 1 {
		t.Fatalf("release did not free the address entry: %v", got)
	}
}
