package lsq

import (
	"testing"
)

// trackerChurn drives one add/address/place/forward/commit wave of n
// memory instructions through the tracker, like the CPU does.
func trackerChurn(t *Tracker, startSeq uint64, n int) {
	for i := 0; i < n; i++ {
		seq := startSeq + uint64(i)
		op := t.Add(seq, i%3 != 0) // every third op a store
		t.SetPlaced(op)
		t.SetAddress(op, 0x1000+uint64(i%64)*8, 8)
	}
	for i := 0; i < n; i++ {
		seq := startSeq + uint64(i)
		if op := t.Get(seq); op.IsLoad {
			t.ForwardingSource(seq)
			t.CountOlderKnownStores(seq)
		} else {
			t.CountYoungerKnownLoads(seq)
		}
	}
	for i := 0; i < n; i++ {
		t.Remove(startSeq + uint64(i))
	}
}

// TestTrackerZeroAllocSteadyState guards the tracker's hot paths: once
// the ring and free list have grown to the working-set size, the
// add/lookup/count/forward/remove cycle must not allocate.
func TestTrackerZeroAllocSteadyState(t *testing.T) {
	tr := NewTracker()
	seq := uint64(0)
	trackerChurn(tr, seq, 128) // grow ring, free list, fenwicks
	seq += 128
	if n := testing.AllocsPerRun(10, func() {
		trackerChurn(tr, seq, 128)
		seq += 128
	}); n > 0 {
		t.Errorf("tracker churn allocates %.1f per wave, want 0", n)
	}
}

// TestForwardingMemoInvalidation exercises the delta-repair path: a
// memoized "no source" answer must pick up stores that become
// candidates later, and a memoized source must expire when it retires.
func TestForwardingMemoInvalidation(t *testing.T) {
	tr := NewTracker()
	st := tr.Add(1, false)
	ld := tr.Add(2, true)
	tr.SetAddress(ld, 0x100, 8)
	tr.SetPlaced(ld)
	if _, ok := tr.ForwardingSource(2); ok {
		t.Fatal("no-store window forwarded")
	}
	// The older store's address arrives later and overlaps: the load's
	// memo must be repaired.
	tr.SetAddress(st, 0x100, 8)
	tr.SetPlaced(st)
	if src, ok := tr.ForwardingSource(2); !ok || src != 1 {
		t.Fatalf("memo missed late candidate: %d %v", src, ok)
	}
	// Retiring the store invalidates the memoized source.
	tr.Remove(1)
	if _, ok := tr.ForwardingSource(2); ok {
		t.Fatal("retired store still forwarded")
	}
}

// TestForwardingMemoAfterWindowOverflow forces the delta log to
// overflow so the full-rescan fallback runs.
func TestForwardingMemoAfterWindowOverflow(t *testing.T) {
	tr := NewTracker()
	ld := tr.Add(0, true)
	tr.SetAddress(ld, 0x10, 8)
	tr.SetPlaced(ld)
	tr.ForwardingSource(0) // memo: no source
	// Push far more candidates through than the window holds; the last
	// one is younger than the load so none may forward — but one older
	// overlapping store added via out-of-order address arrival must be
	// found after the overflow.
	for i := 1; i <= 3*candWindow; i++ {
		op := tr.Add(uint64(i), false)
		tr.SetPlaced(op)
		tr.SetAddress(op, 0x10, 8)
	}
	if _, ok := tr.ForwardingSource(0); ok {
		t.Fatal("younger stores forwarded to an older load")
	}
}

func BenchmarkHotPathTrackerChurn(b *testing.B) {
	tr := NewTracker()
	seq := uint64(0)
	trackerChurn(tr, seq, 128)
	seq += 128
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trackerChurn(tr, seq, 128)
		seq += 128
	}
}

func BenchmarkHotPathForwardingSource(b *testing.B) {
	tr := NewTracker()
	for i := 0; i < 64; i++ {
		op := tr.Add(uint64(i), i%2 == 0)
		tr.SetPlaced(op)
		tr.SetAddress(op, 0x1000+uint64(i)*8, 8)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ForwardingSource(63)
	}
}
