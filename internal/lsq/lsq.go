// Package lsq defines the load/store-queue model abstraction used by
// the CPU simulator, plus the two baselines of the paper: the
// conventional fully-associative LSQ (§4.2) and the ARB of Franklin &
// Sohi (§2, evaluated in Figure 1). The SAMIE-LSQ itself lives in
// package core and implements the same Model interface.
//
// Protocol between the CPU and a Model, per memory instruction:
//
//	Dispatch(seq, isLoad)        at rename; false stalls dispatch
//	AddressReady(seq, ...)       when the effective address is computed
//	Tick()                       once per cycle; drains placement buffers
//	ForwardingSource(seq)        when a load is ready to perform
//	Plan(seq) / RecordAccess     around the Dcache access (way caching)
//	NotePerformed(seq)           when the access/forward completes
//	Commit(seq)                  in order at retirement
//	Flush()                      on a pipeline flush
//	AccountCycle()               once per cycle (occupancy/area stats)
//
// The conservative readyBit disambiguation scheme (§3.1) is enforced
// by the CPU model: a load only performs once every older store's
// address is known, which is what makes ForwardingSource exact.
package lsq

// AccessPlan tells the CPU how a Dcache access may be performed.
type AccessPlan struct {
	WayKnown  bool // location cached in the LSQ entry: single-way, no tag check
	Set, Way  int
	TLBCached bool // translation cached: skip the DTLB lookup

	// LatencyBonus is the cycles shaved off the access because the
	// way-known path is faster than a conventional access (Table 1;
	// the paper leaves exploiting this to future work, implemented
	// here behind core.Config.FastWayKnown).
	LatencyBonus int
}

// Placement reports where AddressReady put an instruction.
type Placement struct {
	Placed   bool // resident in a searchable LSQ structure
	Buffered bool // waiting (SAMIE AddrBuffer / ARB bank-conflict queue)
	Failed   bool // nowhere to put it: the CPU must flush (§3.3)
}

// Model is a load/store queue organization.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// Dispatch reserves space at rename time; false stalls dispatch.
	Dispatch(seq uint64, isLoad bool) bool
	// AddressReady delivers a computed effective address.
	AddressReady(seq uint64, isLoad bool, addr uint64, size uint8) Placement
	// Tick runs once per cycle and returns the sequence numbers that
	// moved from a buffer into the searchable LSQ this cycle. The
	// returned slice is only valid until the next Tick call:
	// implementations reuse it to keep the per-cycle path
	// allocation-free.
	Tick() []uint64
	// Placed reports whether the instruction is searchable (used by
	// the deadlock check at the ROB head).
	Placed(seq uint64) bool
	// ForwardingSource returns the youngest older store whose access
	// overlaps the load's bytes, if any.
	ForwardingSource(seq uint64) (storeSeq uint64, ok bool)
	// Plan returns how the Dcache access for seq may be performed.
	Plan(seq uint64) AccessPlan
	// RecordAccess informs the model of a completed conventional
	// access so it can cache the line location and translation.
	RecordAccess(seq uint64, set, way int, vpn uint64)
	// NotePerformed marks the memory access (or forward) complete.
	NotePerformed(seq uint64)
	// ClearCachedLocations invalidates all cached line locations
	// (presentBit flush, §3.4).
	ClearCachedLocations()
	// Commit retires the instruction, in order.
	Commit(seq uint64)
	// Flush drops every non-committed instruction.
	Flush()
	// AccountCycle runs per-cycle statistics (occupancy, active area).
	AccountCycle()
	// ResetStats zeroes occupancy/event statistics (state is kept);
	// called at the end of simulation warm-up.
	ResetStats()
	// FreeCapacity returns how many additional computed addresses the
	// model can accept without AddressReady failing. The CPU gates
	// address computations on it (the paper's §3.3 alternative to
	// flushing when every structure is full).
	FreeCapacity() int
	// InFlight returns the number of tracked memory instructions.
	InFlight() int
}

// Op is the per-instruction record shared by the LSQ models.
//
// Addr/Size/AddrKnown and Placed/Buffered must be changed through the
// owning Tracker's SetAddress / SetPlaced / SetBuffered so the
// tracker's incremental summary counters (which replace per-op rescans
// on the simulator hot path) stay coherent. The remaining fields are
// free for models to use directly.
type Op struct {
	Seq       uint64
	IsLoad    bool
	Addr      uint64
	Size      uint8
	AddrKnown bool
	Placed    bool
	Buffered  bool
	Performed bool
	// Loc holds model-defined placement indices.
	Loc [4]int

	slot    int  // physical ring slot (tracker internal)
	counted bool // contributes to the known+placed summary trees

	// Memoized forwarding-source answer (tracker internal): valid
	// while fwdEpoch == tracker.storeEpoch+1.
	fwdEpoch uint64
	fwdSrc   uint64
	fwdOK    bool
}

// Overlaps reports whether the two accesses touch a common byte (both
// addresses must be known).
func (op *Op) Overlaps(other *Op) bool {
	if !op.AddrKnown || !other.AddrKnown {
		return false
	}
	aEnd := op.Addr + uint64(op.Size)
	bEnd := other.Addr + uint64(other.Size)
	return op.Addr < bEnd && other.Addr < aEnd
}

// fenwick is a binary indexed tree over the tracker's physical ring
// slots; it answers "how many counted ops in this slot range" in
// O(log n) so the conventional-LSQ CAM-energy counts need no rescan.
type fenwick struct {
	tree []int32
}

func (f *fenwick) init(n int) {
	if cap(f.tree) >= n+1 {
		f.tree = f.tree[:n+1]
		for i := range f.tree {
			f.tree[i] = 0
		}
	} else {
		f.tree = make([]int32, n+1)
	}
}

func (f *fenwick) add(i int, delta int32) {
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// prefix returns the count in physical slots [0, i).
func (f *fenwick) prefix(i int) int {
	s := int32(0)
	for ; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return int(s)
}

// Tracker keeps the in-flight memory instructions in program order.
// It is shared by all LSQ models (including the SAMIE-LSQ in package
// core). Storage is an age-ordered ring with a free list of Op
// records, so steady-state tracking allocates nothing; lookups are
// O(log n) binary searches over the seq-sorted ring.
type Tracker struct {
	ops  []*Op // ring storage; an op's physical slot is stable for its lifetime
	head int
	n    int
	free []*Op

	// Incremental summaries of placed ops with known addresses.
	stores  fenwick // counted stores per slot
	loads   fenwick // counted loads per slot
	nStores int
	nLoads  int

	// storeEpoch advances whenever a store becomes a forwarding
	// candidate (placed with a known address); it validates the per-op
	// forwarding memos. candLog keeps the last candWindow candidate
	// seqs so a slightly-stale memo is repaired by applying just the
	// delta instead of rescanning the whole window.
	storeEpoch uint64
	candLog    [candWindow]uint64

	// seqHint is a direct-mapped pointer table indexed by seq&seqHintMask.
	// In-flight sequence numbers span at most the ROB window, so for the
	// simulator this turns Get into one array probe; arbitrary seq
	// patterns (tests) fall back to the binary search on a miss.
	seqHint [seqHintSize]*Op
}

// candWindow bounds how many new-candidate events a forwarding memo
// may lag behind and still be repaired incrementally.
const candWindow = 64

const (
	seqHintSize = 1024
	seqHintMask = seqHintSize - 1
)

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	t := &Tracker{ops: make([]*Op, 16)}
	t.stores.init(len(t.ops))
	t.loads.init(len(t.ops))
	return t
}

func (t *Tracker) physical(logical int) int {
	i := t.head + logical
	if i >= len(t.ops) {
		i -= len(t.ops)
	}
	return i
}

// opAt returns the op at a logical (age-ordered) position.
func (t *Tracker) opAt(logical int) *Op { return t.ops[t.physical(logical)] }

func (t *Tracker) grow() {
	old := t.ops
	nb := make([]*Op, 2*len(old))
	for i := 0; i < t.n; i++ {
		op := t.opAt(i)
		op.slot = i
		nb[i] = op
	}
	t.ops, t.head = nb, 0
	t.stores.init(len(nb))
	t.loads.init(len(nb))
	for i := 0; i < t.n; i++ {
		if op := nb[i]; op.counted {
			if op.IsLoad {
				t.loads.add(op.slot, 1)
			} else {
				t.stores.add(op.slot, 1)
			}
		}
	}
}

// Add registers a new in-flight memory instruction. Sequence numbers
// must be strictly increasing across Adds.
//
//samie:hotpath
func (t *Tracker) Add(seq uint64, isLoad bool) *Op {
	if t.n == len(t.ops) {
		t.grow()
	}
	var op *Op
	if k := len(t.free); k > 0 {
		op = t.free[k-1]
		t.free = t.free[:k-1]
	} else {
		op = &Op{}
	}
	*op = Op{Seq: seq, IsLoad: isLoad, Loc: [4]int{-1, -1, -1, -1}}
	slot := t.physical(t.n)
	op.slot = slot
	t.ops[slot] = op
	t.n++
	t.seqHint[seq&seqHintMask] = op
	return op
}

// Get returns the op for seq, or nil.
//
//samie:hotpath
func (t *Tracker) Get(seq uint64) *Op {
	if op := t.seqHint[seq&seqHintMask]; op != nil && op.Seq == seq {
		return op
	}
	i := t.search(seq)
	if i < t.n {
		if op := t.opAt(i); op.Seq == seq {
			t.seqHint[seq&seqHintMask] = op
			return op
		}
	}
	return nil
}

// search returns the first logical position whose Seq >= seq.
func (t *Tracker) search(seq uint64) int {
	lo, hi := 0, t.n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.opAt(mid).Seq < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// IndexOf returns the position of seq in the ordered list, or -1.
func (t *Tracker) IndexOf(seq uint64) int {
	i := t.search(seq)
	if i < t.n && t.opAt(i).Seq == seq {
		return i
	}
	return -1
}

// recount moves op in or out of the known+placed summaries after a
// state transition.
//
//samie:hotpath
func (t *Tracker) recount(op *Op) {
	want := op.Placed && op.AddrKnown
	if want == op.counted {
		return
	}
	op.counted = want
	delta := int32(1)
	if !want {
		delta = -1
	}
	if op.IsLoad {
		t.loads.add(op.slot, delta)
		t.nLoads += int(delta)
	} else {
		t.stores.add(op.slot, delta)
		t.nStores += int(delta)
		if want {
			// A new forwarding candidate exists: log it so memoized
			// forwarding answers can catch up incrementally.
			t.candLog[t.storeEpoch%candWindow] = op.Seq
			t.storeEpoch++
		}
	}
}

// SetAddress records the computed effective address for op.
//
//samie:hotpath
func (t *Tracker) SetAddress(op *Op, addr uint64, size uint8) {
	op.Addr, op.Size, op.AddrKnown = addr, size, true
	if op.IsLoad {
		op.fwdEpoch = 0 // the op's own memo (if any) predates its address
	}
	t.recount(op)
}

// SetPlaced marks op resident in a searchable LSQ structure.
func (t *Tracker) SetPlaced(op *Op) {
	op.Placed, op.Buffered = true, false
	t.recount(op)
}

// SetBuffered marks op waiting in a placement buffer.
func (t *Tracker) SetBuffered(op *Op) { op.Buffered = true }

// uncount removes op from the summaries (at removal time).
//
//samie:hotpath
func (t *Tracker) uncount(op *Op) {
	if !op.counted {
		return
	}
	op.counted = false
	if op.IsLoad {
		t.loads.add(op.slot, -1)
		t.nLoads--
	} else {
		t.stores.add(op.slot, -1)
		t.nStores--
		// No epoch bump: in-order removal can only retire the youngest
		// match itself, which the memo hit path detects by presence.
	}
}

// Remove drops seq and returns its op; commits arrive in order so this
// is almost always the front element. The returned op is recycled on
// the next Add — read what you need from it immediately.
//
//samie:hotpath
func (t *Tracker) Remove(seq uint64) *Op {
	if t.n == 0 {
		return nil
	}
	if front := t.ops[t.head]; front.Seq == seq {
		t.uncount(front)
		if t.seqHint[seq&seqHintMask] == front {
			t.seqHint[seq&seqHintMask] = nil
		}
		t.ops[t.head] = nil
		t.head++
		if t.head == len(t.ops) {
			t.head = 0
		}
		t.n--
		//lint:ignore hotalloc free list is bounded by tracker capacity, preallocated at construction
		t.free = append(t.free, front)
		return front
	}
	// Out-of-order removal (not exercised by the CPU, which commits in
	// order): compact the ring, repositioning every younger op.
	i := t.IndexOf(seq)
	if i < 0 {
		return nil
	}
	op := t.opAt(i)
	t.uncount(op)
	if t.seqHint[op.Seq&seqHintMask] == op {
		t.seqHint[op.Seq&seqHintMask] = nil
	}
	for j := i; j < t.n-1; j++ {
		moved := t.opAt(j + 1)
		if moved.counted {
			if moved.IsLoad {
				t.loads.add(moved.slot, -1)
			} else {
				t.stores.add(moved.slot, -1)
			}
		}
		moved.slot = t.physical(j)
		t.ops[moved.slot] = moved
		if moved.counted {
			if moved.IsLoad {
				t.loads.add(moved.slot, 1)
			} else {
				t.stores.add(moved.slot, 1)
			}
		}
	}
	t.ops[t.physical(t.n-1)] = nil
	t.n--
	//lint:ignore hotalloc free list is bounded by tracker capacity, preallocated at construction
	t.free = append(t.free, op)
	return op
}

// Clear drops every op.
func (t *Tracker) Clear() {
	for i := 0; i < t.n; i++ {
		p := t.physical(i)
		op := t.ops[p]
		if t.seqHint[op.Seq&seqHintMask] == op {
			t.seqHint[op.Seq&seqHintMask] = nil
		}
		t.free = append(t.free, op)
		t.ops[p] = nil
	}
	t.head, t.n = 0, 0
	t.stores.init(len(t.ops))
	t.loads.init(len(t.ops))
	t.nStores, t.nLoads = 0, 0
	t.storeEpoch++
}

// Len returns the number of tracked ops.
func (t *Tracker) Len() int { return t.n }

// olderCounted returns how many counted ops of the given tree sit at
// logical positions [0, i).
//
//samie:hotpath
func (t *Tracker) olderCounted(f *fenwick, i int) int {
	end := t.head + i
	if end <= len(t.ops) {
		return f.prefix(end) - f.prefix(t.head)
	}
	return f.prefix(len(t.ops)) - f.prefix(t.head) + f.prefix(end-len(t.ops))
}

// ForwardingSource scans older placed stores, youngest first, for a
// byte overlap with the load identified by seq. Answers are memoized
// per load and invalidated when a new forwarding candidate appears
// (storeEpoch) or the memoized source retires, so the per-cycle retry
// a waiting load performs is O(log n) instead of a rescan.
//
//samie:hotpath
func (t *Tracker) ForwardingSource(seq uint64) (uint64, bool) {
	op := t.Get(seq)
	if op == nil || !op.IsLoad {
		return 0, false
	}
	// A memo records the answer as of candidate-epoch fwdEpoch-1
	// (fwdEpoch 0 = no memo). If the memo lags by no more than the
	// candidate log window, repair it by considering only the
	// candidates that appeared since; otherwise rescan.
	if op.fwdEpoch > 0 && t.storeEpoch+1-op.fwdEpoch <= candWindow {
		for e := op.fwdEpoch - 1; e < t.storeEpoch; e++ {
			cand := t.candLog[e%candWindow]
			if cand >= seq || (op.fwdOK && cand <= op.fwdSrc) {
				continue // not older than the load, or not younger than the best
			}
			o := t.Get(cand)
			if o != nil && !o.IsLoad && o.Placed && o.Overlaps(op) {
				op.fwdSrc, op.fwdOK = cand, true
			}
		}
		op.fwdEpoch = t.storeEpoch + 1
		if !op.fwdOK {
			return 0, false
		}
		if t.Get(op.fwdSrc) != nil {
			return op.fwdSrc, true
		}
		// The memoized source retired. In-order removal means every
		// older candidate retired before it, and the delta above holds
		// every newer one: there is no source now.
		op.fwdOK = false
		return 0, false
	}
	op.fwdEpoch = t.storeEpoch + 1
	op.fwdOK = false
	if t.nStores == 0 {
		return 0, false
	}
	i := t.search(seq) // == IndexOf(seq): op was found by Get above
	for j := i - 1; j >= 0; j-- {
		o := t.opAt(j)
		if !o.IsLoad && o.Placed && o.Overlaps(op) {
			op.fwdSrc, op.fwdOK = o.Seq, true
			return o.Seq, true
		}
	}
	return 0, false
}

// CountOlderKnownStores counts placed older stores with known
// addresses (conventional-LSQ comparison set for a load).
func (t *Tracker) CountOlderKnownStores(seq uint64) int {
	i := t.IndexOf(seq)
	if i < 0 {
		return 0
	}
	return t.olderCounted(&t.stores, i)
}

// CountYoungerKnownLoads counts placed younger loads with known
// addresses (conventional-LSQ comparison set for a store).
func (t *Tracker) CountYoungerKnownLoads(seq uint64) int {
	i := t.IndexOf(seq)
	if i < 0 {
		return 0
	}
	return t.nLoads - t.olderCounted(&t.loads, i+1)
}
