// Package lsq defines the load/store-queue model abstraction used by
// the CPU simulator, plus the two baselines of the paper: the
// conventional fully-associative LSQ (§4.2) and the ARB of Franklin &
// Sohi (§2, evaluated in Figure 1). The SAMIE-LSQ itself lives in
// package core and implements the same Model interface.
//
// Protocol between the CPU and a Model, per memory instruction:
//
//	Dispatch(seq, isLoad)        at rename; false stalls dispatch
//	AddressReady(seq, ...)       when the effective address is computed
//	Tick()                       once per cycle; drains placement buffers
//	ForwardingSource(seq)        when a load is ready to perform
//	Plan(seq) / RecordAccess     around the Dcache access (way caching)
//	NotePerformed(seq)           when the access/forward completes
//	Commit(seq)                  in order at retirement
//	Flush()                      on a pipeline flush
//	AccountCycle()               once per cycle (occupancy/area stats)
//
// The conservative readyBit disambiguation scheme (§3.1) is enforced
// by the CPU model: a load only performs once every older store's
// address is known, which is what makes ForwardingSource exact.
package lsq

import "sort"

// AccessPlan tells the CPU how a Dcache access may be performed.
type AccessPlan struct {
	WayKnown  bool // location cached in the LSQ entry: single-way, no tag check
	Set, Way  int
	TLBCached bool // translation cached: skip the DTLB lookup

	// LatencyBonus is the cycles shaved off the access because the
	// way-known path is faster than a conventional access (Table 1;
	// the paper leaves exploiting this to future work, implemented
	// here behind core.Config.FastWayKnown).
	LatencyBonus int
}

// Placement reports where AddressReady put an instruction.
type Placement struct {
	Placed   bool // resident in a searchable LSQ structure
	Buffered bool // waiting (SAMIE AddrBuffer / ARB bank-conflict queue)
	Failed   bool // nowhere to put it: the CPU must flush (§3.3)
}

// Model is a load/store queue organization.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// Dispatch reserves space at rename time; false stalls dispatch.
	Dispatch(seq uint64, isLoad bool) bool
	// AddressReady delivers a computed effective address.
	AddressReady(seq uint64, isLoad bool, addr uint64, size uint8) Placement
	// Tick runs once per cycle and returns the sequence numbers that
	// moved from a buffer into the searchable LSQ this cycle.
	Tick() []uint64
	// Placed reports whether the instruction is searchable (used by
	// the deadlock check at the ROB head).
	Placed(seq uint64) bool
	// ForwardingSource returns the youngest older store whose access
	// overlaps the load's bytes, if any.
	ForwardingSource(seq uint64) (storeSeq uint64, ok bool)
	// Plan returns how the Dcache access for seq may be performed.
	Plan(seq uint64) AccessPlan
	// RecordAccess informs the model of a completed conventional
	// access so it can cache the line location and translation.
	RecordAccess(seq uint64, set, way int, vpn uint64)
	// NotePerformed marks the memory access (or forward) complete.
	NotePerformed(seq uint64)
	// ClearCachedLocations invalidates all cached line locations
	// (presentBit flush, §3.4).
	ClearCachedLocations()
	// Commit retires the instruction, in order.
	Commit(seq uint64)
	// Flush drops every non-committed instruction.
	Flush()
	// AccountCycle runs per-cycle statistics (occupancy, active area).
	AccountCycle()
	// ResetStats zeroes occupancy/event statistics (state is kept);
	// called at the end of simulation warm-up.
	ResetStats()
	// FreeCapacity returns how many additional computed addresses the
	// model can accept without AddressReady failing. The CPU gates
	// address computations on it (the paper's §3.3 alternative to
	// flushing when every structure is full).
	FreeCapacity() int
	// InFlight returns the number of tracked memory instructions.
	InFlight() int
}

// Op is the per-instruction record shared by the LSQ models.
type Op struct {
	Seq       uint64
	IsLoad    bool
	Addr      uint64
	Size      uint8
	AddrKnown bool
	Placed    bool
	Buffered  bool
	Performed bool
	// Loc holds model-defined placement indices.
	Loc [3]int
}

// Overlaps reports whether the two accesses touch a common byte (both
// addresses must be known).
func (op *Op) Overlaps(other *Op) bool {
	if !op.AddrKnown || !other.AddrKnown {
		return false
	}
	aEnd := op.Addr + uint64(op.Size)
	bEnd := other.Addr + uint64(other.Size)
	return op.Addr < bEnd && other.Addr < aEnd
}

// Tracker keeps the in-flight memory instructions in program order.
// It is shared by all LSQ models (including the SAMIE-LSQ in package
// core).
type Tracker struct {
	ops   []*Op
	bySeq map[uint64]*Op
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{bySeq: make(map[uint64]*Op)}
}

// Add registers a new in-flight memory instruction. Sequence numbers
// must be strictly increasing across Adds.
func (t *Tracker) Add(seq uint64, isLoad bool) *Op {
	op := &Op{Seq: seq, IsLoad: isLoad, Loc: [3]int{-1, -1, -1}}
	t.ops = append(t.ops, op)
	t.bySeq[seq] = op
	return op
}

// Get returns the op for seq, or nil.
func (t *Tracker) Get(seq uint64) *Op { return t.bySeq[seq] }

// IndexOf returns the position of seq in the ordered list, or -1.
func (t *Tracker) IndexOf(seq uint64) int {
	i := sort.Search(len(t.ops), func(i int) bool { return t.ops[i].Seq >= seq })
	if i < len(t.ops) && t.ops[i].Seq == seq {
		return i
	}
	return -1
}

// Remove drops seq and returns its op; commits arrive in order so this
// is almost always the front element.
func (t *Tracker) Remove(seq uint64) *Op {
	op, ok := t.bySeq[seq]
	if !ok {
		return nil
	}
	delete(t.bySeq, seq)
	i := t.IndexOf(seq)
	if i >= 0 {
		t.ops = append(t.ops[:i], t.ops[i+1:]...)
	}
	return op
}

// Clear drops every op.
func (t *Tracker) Clear() {
	t.ops = t.ops[:0]
	t.bySeq = make(map[uint64]*Op)
}

// Len returns the number of tracked ops.
func (t *Tracker) Len() int { return len(t.ops) }

// Ops returns the ordered in-flight ops (not a copy; callers must not
// mutate the slice structure).
func (t *Tracker) Ops() []*Op { return t.ops }

// ForwardingSource scans older placed stores, youngest first, for a
// byte overlap with the load identified by seq.
func (t *Tracker) ForwardingSource(seq uint64) (uint64, bool) {
	op := t.bySeq[seq]
	if op == nil || !op.IsLoad {
		return 0, false
	}
	i := t.IndexOf(seq)
	for j := i - 1; j >= 0; j-- {
		o := t.ops[j]
		if !o.IsLoad && o.Placed && o.Overlaps(op) {
			return o.Seq, true
		}
	}
	return 0, false
}

// CountOlderKnownStores counts placed older stores with known
// addresses (conventional-LSQ comparison set for a load).
func (t *Tracker) CountOlderKnownStores(seq uint64) int {
	i := t.IndexOf(seq)
	n := 0
	for j := 0; j < i; j++ {
		o := t.ops[j]
		if !o.IsLoad && o.AddrKnown && o.Placed {
			n++
		}
	}
	return n
}

// CountYoungerKnownLoads counts placed younger loads with known
// addresses (conventional-LSQ comparison set for a store).
func (t *Tracker) CountYoungerKnownLoads(seq uint64) int {
	i := t.IndexOf(seq)
	if i < 0 {
		return 0
	}
	n := 0
	for j := i + 1; j < len(t.ops); j++ {
		o := t.ops[j]
		if o.IsLoad && o.AddrKnown && o.Placed {
			n++
		}
	}
	return n
}
