package cpu

import (
	"testing"

	"samielsq/internal/core"
	"samielsq/internal/energy"
	"samielsq/internal/isa"
	"samielsq/internal/lsq"
	"samielsq/internal/trace"
)

// shortDifferentialSet is the reduced matrix for -short (the race CI
// lane): a pointer chaser (the wakeup scheduler's raison d'être), a
// store-dominated mix, the two adversarial personalities, and two
// FP-heavy programs so both issue lanes see contention.
var shortDifferentialSet = []string{
	"mcf", "gzip", "swim", "art", "pointer-chaser", "store-burst",
}

// TestSchedulerDifferential runs every personality under both issue
// engines — the legacy O(in-flight) active-list walk and the
// event-driven wakeup scheduler — and requires identical per-run
// statistics. The full mode covers all 26 CPU2000 personalities plus
// the adversarial pair; Result equality covers cycles, IPC, every
// stall classification (HeadWaitIssue & co.), flush and forwarding
// counts, so any issue-order or wakeup-timing drift fails loudly.
func TestSchedulerDifferential(t *testing.T) {
	benchmarks := append(append([]string{}, trace.Benchmarks()...), "pointer-chaser", "store-burst")
	insts := uint64(30_000)
	if testing.Short() {
		benchmarks = shortDifferentialSet
		insts = 8_000
	}
	models := map[string]func(m *energy.Meter) lsq.Model{
		"samie":        func(m *energy.Meter) lsq.Model { return core.NewPaper(m) },
		"conventional": func(m *energy.Meter) lsq.Model { return lsq.NewConventional(128, m) },
	}
	for _, bench := range benchmarks {
		for mname, mk := range models {
			if mname == "conventional" && testing.Short() && bench != "mcf" && bench != "store-burst" {
				continue // one model is enough for most of the short matrix
			}
			bench, mname, mk := bench, mname, mk
			t.Run(bench+"/"+mname, func(t *testing.T) {
				t.Parallel()
				p := trace.MustPersonality(bench)
				run := func(legacy bool) (Result, energy.Meter, *FlightRecorder) {
					cfg := PaperConfig()
					cfg.LegacyIssueWalk = legacy
					m := energy.NewMeter()
					c := New(cfg, trace.NewGenerator(p), mk(m), nil, nil, nil, m)
					fr := NewFlightRecorder(16)
					c.SetFlightRecorder(fr)
					return c.Run(insts), *m, fr
				}
				wakeup, wakeupE, wakeupFR := run(false)
				legacy, legacyE, legacyFR := run(true)
				if wakeup != legacy {
					// The flight recorders turn "results differ" into a
					// cycle-level diagnosis: first divergent issue set,
					// plus each engine's last recorded frames.
					if cyc, ok := FirstDivergence(wakeupFR, legacyFR); ok {
						t.Errorf("first divergent issue set at cycle %d", cyc)
					}
					t.Fatalf("wakeup scheduler diverged from the legacy walk:\nwakeup: %+v\nlegacy: %+v\nwakeup tail:\n%slegacy tail:\n%s",
						wakeup, legacy, wakeupFR.Dump(), legacyFR.Dump())
				}
				// Energy is part of the contract: LSQ models charge
				// CAM/entry energy per model call, so the wakeup path
				// must preserve the exact call pattern, not just the
				// architectural outcome.
				if wakeupE != legacyE {
					t.Fatalf("energy accounting diverged:\nwakeup: %+v\nlegacy: %+v", wakeupE, legacyE)
				}
			})
		}
	}
}

// TestWakeupObservesRecycledProducer pins the generation-tag protocol
// of the wakeup path: a consumer's wakeup is enqueued on the timing
// wheel when its producer load performs (at the producer's readyAt),
// but the commit stage runs before the issue stage, so when readyAt
// arrives the producer — sitting at the ROB head — has already
// committed and its dynInst slot recycled (generation bumped) before
// the wakeup drains. producerDone must classify the operand as ready
// via the generation mismatch without reading the recycled slot's
// stale state/readyAt.
func TestWakeupObservesRecycledProducer(t *testing.T) {
	var insts []isa.Inst
	insts = append(insts, load(1, 0x900000)) // cold miss: long readyAt
	insts = append(insts, alu(2, 1))         // consumer of the load
	for i := 0; i < 64; i++ {
		insts = append(insts, alu(int16(3+i%8), isa.RegNone))
	}

	c := mk(insts, nil) // default: wakeup scheduler
	if c.ev == nil {
		t.Fatal("wakeup scheduler not active by default")
	}
	// Step until the load commits. The commit happens at the cycle the
	// load's readyAt expires — the same cycle the consumer's wheel
	// entry fires.
	deadline := 10_000
	for c.res.Committed == 0 {
		c.step()
		if deadline--; deadline < 0 {
			t.Fatal("load never committed")
		}
	}
	if c.res.Committed != 1 {
		t.Fatalf("committed %d this cycle, want exactly the producer load", c.res.Committed)
	}
	if len(c.freeInsts) == 0 {
		t.Fatal("producer was not recycled at commit")
	}
	// The consumer is now the ROB head. Its wakeup drained this same
	// cycle, after the recycle: it must have observed the recycled
	// producer as done and issued.
	head := c.rob.front()
	if head.in.Cls != isa.ClassIntALU {
		t.Fatalf("ROB head is %v, want the consumer ALU", head.in.Cls)
	}
	if head.state < stIssued {
		t.Fatalf("consumer state %d after its producer's recycle-cycle wakeup, want issued", head.state)
	}
	if head.srcA != nil {
		t.Fatal("consumer still holds a reference to the recycled producer")
	}

	// The end-to-end run must match the legacy walk exactly.
	run := func(legacy bool) Result {
		cfg := PaperConfig()
		cfg.LegacyIssueWalk = legacy
		cc := New(cfg, isa.NewSliceStream(insts), lsq.NewUnbounded(), nil, nil, nil, nil)
		return cc.Run(uint64(len(insts)))
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("recycle scenario diverged:\nwakeup: %+v\nlegacy: %+v", a, b)
	}
}

// TestWheelLapRequeue pins the timing-wheel overflow path: an entry
// whose wake cycle is more than wheelSize cycles ahead must re-queue
// at drain time instead of waking early.
func TestWheelLapRequeue(t *testing.T) {
	c := mk([]isa.Inst{alu(1, isa.RegNone)}, nil)
	c.Run(1)
	d := &dynInst{}
	far := c.cycle + wheelSize + 5
	c.ev.park(d, far)
	for cyc := c.cycle + 1; cyc < far; cyc++ {
		c.ev.drainWheel(cyc)
		if got, ok := c.ev.attn.nextSet(0, c.ev.attn.mask+1); ok {
			t.Fatalf("lapped wheel entry woke early at cycle %d (bit %d)", cyc, got)
		}
	}
	c.ev.drainWheel(far)
	if _, ok := c.ev.attn.nextSet(0, c.ev.attn.mask+1); !ok {
		t.Fatal("wheel entry never fired at its wake cycle")
	}
}

// TestSeqBitmapWindow exercises the bitmap over a wrapping seq window.
func TestSeqBitmapWindow(t *testing.T) {
	b := newSeqBitmap(256)
	base := uint64(1<<40) - 3 // straddles the mask boundary
	b.set(base + 1)
	b.set(base + 200)
	if s, ok := b.nextSet(base, base+256); !ok || s != base+1 {
		t.Fatalf("nextSet = %d,%v want %d", s, ok, base+1)
	}
	if s, ok := b.nextSet(base+2, base+256); !ok || s != base+200 {
		t.Fatalf("nextSet = %d,%v want %d", s, ok, base+200)
	}
	b.clear(base + 200)
	if _, ok := b.nextSet(base+2, base+256); ok {
		t.Fatal("cleared bit still found")
	}
	if _, ok := b.nextSet(base+2, base+100); ok {
		t.Fatal("nextSet ignored its end bound")
	}
}
