package cpu

// Interval telemetry: the per-cycle hook that feeds an attached
// obs.IntervalSampler. The sampler is optional (nil by default) and
// the disabled path is a nil-receiver check plus one atomic load, so
// the hook lives in step() permanently without disturbing the
// zero-allocation hot path (hotpath_test.go pins this).

import (
	"math/bits"

	"samielsq/internal/obs"
)

// sampleBase is the delta baseline of the previous sample: interval
// IPC and the per-structure energy deltas are differences against it.
type sampleBase struct {
	cycle     uint64
	committed uint64

	conv, distrib, shared, addrBuf, bus, dcache, dtlb float64
}

// SetSampler attaches (or with nil detaches) an interval telemetry
// sampler. The baseline resets to the current cycle so the first
// sample's deltas cover only cycles simulated after attachment.
func (c *CPU) SetSampler(s *obs.IntervalSampler) {
	c.sampler = s
	c.resetSampleBase()
}

// Sampler returns the attached sampler, or nil.
func (c *CPU) Sampler() *obs.IntervalSampler { return c.sampler }

func (c *CPU) resetSampleBase() {
	m := c.meter
	c.sampBase = sampleBase{
		cycle:     c.cycle,
		committed: c.res.Committed,
		conv:      m.ConvLSQ,
		distrib:   m.Distrib,
		shared:    m.Shared,
		addrBuf:   m.AddrBuffer,
		bus:       m.Bus,
		dcache:    m.Dcache,
		dtlb:      m.DTLB,
	}
}

// endOfCycleTelemetry runs after every simulated cycle (both the
// normal and the deadlock-flush exit of step). It only observes —
// nothing here may touch architectural or metered state.
//
//samie:hotpath
func (c *CPU) endOfCycleTelemetry() {
	if c.sampler.Due(c.cycle) {
		c.recordSample()
	}
	if c.flight != nil {
		waiters, wheel, attn := c.schedStats()
		c.flight.endCycle(c.cycle, c.rob.len(), waiters, wheel, attn)
	}
}

// addrBuffered is the optional model hook the SAMIE-LSQ implements;
// other models report no AddrBuffer occupancy.
type addrBuffered interface{ AddrBufferLen() int }

// recordSample snapshots the pipeline into the sampler and advances
// the delta baseline. Runs once per stride, so the O(ROB + wheel)
// scheduler introspection is off the per-cycle path.
func (c *CPU) recordSample() {
	m := c.meter
	ts := obs.TimelineSample{
		Cycle:   c.cycle,
		ROB:     c.rob.len(),
		FetchQ:  c.fetchQ.len(),
		ReplayQ: c.replayQ.len(),
		LSQ:     c.model.InFlight(),

		ConvLSQPJ: m.ConvLSQ - c.sampBase.conv,
		DistribPJ: m.Distrib - c.sampBase.distrib,
		SharedPJ:  m.Shared - c.sampBase.shared,
		AddrBufPJ: m.AddrBuffer - c.sampBase.addrBuf,
		BusPJ:     m.Bus - c.sampBase.bus,
		DcachePJ:  m.Dcache - c.sampBase.dcache,
		DTLBPJ:    m.DTLB - c.sampBase.dtlb,
	}
	if cycles := c.cycle - c.sampBase.cycle; cycles > 0 {
		ts.IPC = float64(c.res.Committed-c.sampBase.committed) / float64(cycles)
	}
	if ab, ok := c.model.(addrBuffered); ok {
		ts.AddrBuf = ab.AddrBufferLen()
	}
	ts.Waiters, ts.Wheel, ts.Attn = c.schedStats()
	c.sampler.Record(ts)
	c.resetSampleBase()
}

// schedStats introspects the event-driven issue scheduler: total
// waiter-list depth (instructions parked on a producer), timing-wheel
// load, and attention-bitmap population. All zero under
// LegacyIssueWalk, which keeps no scheduler state.
func (c *CPU) schedStats() (waiters, wheel, attn int) {
	if c.ev == nil {
		return 0, 0, 0
	}
	for _, w := range c.ev.attn.words {
		attn += bits.OnesCount64(w)
	}
	for i := range c.ev.wheel {
		for d := c.ev.wheel[i]; d != nil; d = d.wheelNext {
			wheel++
		}
	}
	for i := 0; i < c.rob.len(); i++ {
		for w := c.rob.at(i).waiterHead; w != nil; w = w.waitNext {
			waiters++
		}
	}
	return waiters, wheel, attn
}
