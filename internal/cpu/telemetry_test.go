package cpu

import (
	"strings"
	"testing"

	"samielsq/internal/core"
	"samielsq/internal/energy"
	"samielsq/internal/lsq"
	"samielsq/internal/obs"
	"samielsq/internal/trace"
)

// TestSamplerCollectsFromPipeline: an enabled sampler attached to a
// running CPU collects monotone interval samples with live occupancy
// and energy deltas.
func TestSamplerCollectsFromPipeline(t *testing.T) {
	p := trace.MustPersonality("gzip")
	m := energy.NewMeter()
	c := New(PaperConfig(), trace.NewGenerator(p), core.NewPaper(m), nil, nil, nil, m)
	s := obs.NewIntervalSampler(256, 64)
	s.SetEnabled(true)
	c.SetSampler(s)
	c.Run(50_000)

	tl := s.Snapshot()
	if tl == nil || len(tl.Samples) == 0 {
		t.Fatal("no samples collected from a live pipeline")
	}
	if tl.Stride < 256 {
		t.Fatalf("stride = %d, want >= the configured 256", tl.Stride)
	}
	var sawROB, sawLSQ, sawEnergy bool
	last := uint64(0)
	for _, ts := range tl.Samples {
		if ts.Cycle <= last {
			t.Fatalf("sample cycles not increasing: %d after %d", ts.Cycle, last)
		}
		last = ts.Cycle
		if ts.IPC < 0 || ts.ROB < 0 || ts.LSQ < 0 {
			t.Fatalf("negative sample fields: %+v", ts)
		}
		sawROB = sawROB || ts.ROB > 0
		sawLSQ = sawLSQ || ts.LSQ > 0
		sawEnergy = sawEnergy || ts.DcachePJ > 0 || ts.SharedPJ > 0 || ts.DistribPJ > 0
	}
	if !sawROB || !sawLSQ {
		t.Fatalf("occupancies never nonzero (rob=%v lsq=%v) over %d samples", sawROB, sawLSQ, len(tl.Samples))
	}
	if !sawEnergy {
		t.Fatal("energy deltas never nonzero with a live meter")
	}
	// The scheduler stats come from the wakeup engine's structures.
	if c.ev == nil {
		t.Fatal("wakeup scheduler expected by default")
	}
}

// TestRunWarmTimedResetsSampler: the warmup portion must not leak into
// the measured timeline — every retained sample is post-warmup.
func TestRunWarmTimedResetsSampler(t *testing.T) {
	p := trace.MustPersonality("gzip")
	c := New(PaperConfig(), trace.NewGenerator(p), lsq.NewUnbounded(), nil, nil, nil, nil)
	s := obs.NewIntervalSampler(128, 32)
	s.SetEnabled(true)
	c.SetSampler(s)
	res, _, _ := c.RunWarmTimed(5_000, 10_000)

	// The global cycle counter keeps running across the warmup reset, so
	// the measured window is the last res.Cycles cycles.
	warmupEnd := c.cycle - res.Cycles
	tl := s.Snapshot()
	if tl == nil || len(tl.Samples) == 0 {
		t.Fatal("no measured samples")
	}
	for _, ts := range tl.Samples {
		if ts.Cycle <= warmupEnd {
			t.Fatalf("sample at cycle %d predates the warmup boundary %d", ts.Cycle, warmupEnd)
		}
	}
}

// TestStepZeroAllocWithTelemetryDisabled extends the hot-path guard to
// the telemetry hook: with a sampler attached but disabled (and no
// flight recorder), the per-cycle path must still not allocate.
func TestStepZeroAllocWithTelemetryDisabled(t *testing.T) {
	p := trace.MustPersonality("gzip")
	c := New(PaperConfig(), trace.NewGenerator(p), core.NewPaper(nil), nil, nil, nil, nil)
	s := obs.NewIntervalSampler(0, 0) // attached, never enabled
	c.SetSampler(s)
	c.Run(20000)
	n := testing.AllocsPerRun(5, func() {
		for i := 0; i < 2000; i++ {
			c.step()
		}
	})
	if n > 0 {
		t.Errorf("%.1f allocs per 2000 cycles with a disabled sampler attached, want 0", n)
	}
}

func TestFlightRecorderFingerprintAndRing(t *testing.T) {
	feed := func(f *FlightRecorder, mutate bool) {
		for cyc := uint64(1); cyc <= 10; cyc++ {
			f.noteIssue(cyc * 3)
			if cyc == 7 && mutate {
				f.noteIssue(999) // the seeded mutation
			}
			f.noteIssue(cyc*3 + 1)
			f.endCycle(cyc, int(cyc), 0, 0, 0)
		}
	}
	a, b := NewFlightRecorder(4), NewFlightRecorder(4)
	feed(a, false)
	feed(b, false)
	if cyc, ok := FirstDivergence(a, b); ok {
		t.Fatalf("identical recordings reported divergence at %d", cyc)
	}
	if a.Cycles() != 10 {
		t.Fatalf("fingerprinted %d cycles, want 10", a.Cycles())
	}
	// The ring keeps only the last 4 full frames, oldest first.
	frames := a.Frames()
	if len(frames) != 4 || frames[0].Cycle != 7 || frames[3].Cycle != 10 {
		t.Fatalf("frames = %+v, want cycles 7..10", frames)
	}
	if got := frames[3].Issued; len(got) != 2 || got[0] != 30 {
		t.Fatalf("frame issue set = %v", got)
	}

	c := NewFlightRecorder(4)
	feed(c, true)
	cyc, ok := FirstDivergence(a, c)
	if !ok || cyc != 7 {
		t.Fatalf("FirstDivergence = %d,%v want cycle 7", cyc, ok)
	}
	// A shorter recording diverges at its end.
	d := NewFlightRecorder(4)
	d.noteIssue(3)
	d.noteIssue(4)
	d.endCycle(1, 1, 0, 0, 0)
	if cyc, ok := FirstDivergence(a, d); !ok || cyc != 2 {
		t.Fatalf("length-mismatch divergence = %d,%v want cycle 2", cyc, ok)
	}

	dump := a.Dump()
	if !strings.Contains(dump, "cycle") || !strings.Contains(dump, "issued=[30 31]") {
		t.Fatalf("dump unreadable:\n%s", dump)
	}
	if NewFlightRecorder(4).Dump() != "(no frames recorded)" {
		t.Fatal("empty dump placeholder missing")
	}
}

func TestFlightRecorderLimitCycles(t *testing.T) {
	f := NewFlightRecorder(8)
	f.LimitCycles(3)
	for cyc := uint64(1); cyc <= 10; cyc++ {
		f.noteIssue(cyc)
		f.endCycle(cyc, 0, 0, 0, 0)
	}
	if f.Cycles() != 3 {
		t.Fatalf("recorded %d cycles past the limit, want 3", f.Cycles())
	}
	frames := f.Frames()
	if len(frames) != 3 || frames[2].Cycle != 3 {
		t.Fatalf("frames past the limit: %+v", frames)
	}
}

// TestForcedDivergenceNamesFirstCycle attaches flight recorders to two
// genuinely different runs — the SAMIE LSQ versus the conventional
// LSQ, which issue memory operations on different cycles — and
// requires the recorder pair to name a first divergent cycle and
// produce a usable dump. This is the failure-path drill for the
// scheduler-differential and golden suites: when those ever diverge,
// this is the diagnosis they print.
func TestForcedDivergenceNamesFirstCycle(t *testing.T) {
	p := trace.MustPersonality("mcf")
	run := func(model lsq.Model, legacy bool) *FlightRecorder {
		cfg := PaperConfig()
		cfg.LegacyIssueWalk = legacy
		c := New(cfg, trace.NewGenerator(p), model, nil, nil, nil, nil)
		fr := NewFlightRecorder(8)
		c.SetFlightRecorder(fr)
		c.Run(5_000)
		return fr
	}
	a := run(core.NewPaper(nil), false)
	b := run(lsq.NewConventional(8, nil), true) // tiny LSQ: stalls differently, and on the legacy walk
	cyc, ok := FirstDivergence(a, b)
	if !ok {
		t.Fatal("different LSQ models never diverged in issue order")
	}
	if cyc == 0 || cyc > uint64(a.Cycles())+1 {
		t.Fatalf("divergence cycle %d out of recorded range (%d cycles)", cyc, a.Cycles())
	}
	if dump := b.Dump(); dump == "(no frames recorded)" {
		t.Fatal("divergent run retained no frames to dump")
	}
	t.Logf("first divergent issue set at cycle %d", cyc)
}
