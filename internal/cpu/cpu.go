// Package cpu implements the cycle-level out-of-order superscalar
// processor model used by the paper's evaluation: an enhanced
// sim-outorder-style pipeline with a reorder buffer separate from the
// issue queues, modeled structure ports, the Table 2 configuration by
// default, and pluggable load/store-queue models (lsq.Model).
//
// The pipeline stages are fetch -> dispatch (decode/rename) -> issue ->
// execute -> writeback -> commit. Memory disambiguation follows the
// paper's conservative readyBit scheme (§3.1): a load performs its
// access only when every older store's address is known; a store whose
// address is computed sets the readyBits of younger instructions up to
// the next unknown-address store.
package cpu

import (
	"fmt"

	"samielsq/internal/bpred"
	"samielsq/internal/energy"
	"samielsq/internal/isa"
	"samielsq/internal/lsq"
	"samielsq/internal/mem"
	"samielsq/internal/tlb"
)

// Config is the processor configuration (Table 2).
type Config struct {
	FetchWidth  int
	DecodeWidth int
	IssueInt    int // INT issue width per cycle
	IssueFP     int // FP issue width per cycle
	CommitWidth int

	FetchQueue int
	ROBSize    int
	IQInt      int
	IQFP       int

	IntALU    int // 1-cycle latency, pipelined
	IntMulDiv int // mult 3 cycles pipelined; div 20 cycles non-pipelined
	FPALU     int // 2 cycles, pipelined
	FPMulDiv  int // mult 4 cycles pipelined; div 12 cycles non-pipelined

	DcachePorts int

	// MispredictPenalty is the front-end redirect/refill delay after a
	// branch misprediction resolves (and after a deadlock flush).
	MispredictPenalty int

	// DeadlockPatience is how many consecutive cycles the ROB head may
	// sit unplaced in the LSQ before the §3.3 deadlock-avoidance flush
	// fires.
	DeadlockPatience int
}

// PaperConfig returns the Table 2 configuration.
func PaperConfig() Config {
	return Config{
		FetchWidth:        8,
		DecodeWidth:       8,
		IssueInt:          8,
		IssueFP:           8,
		CommitWidth:       8,
		FetchQueue:        64,
		ROBSize:           256,
		IQInt:             128,
		IQFP:              128,
		IntALU:            6,
		IntMulDiv:         3,
		FPALU:             4,
		FPMulDiv:          2,
		DcachePorts:       4,
		MispredictPenalty: 8,
		DeadlockPatience:  32,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	for _, v := range [...]struct {
		n string
		v int
	}{
		{"FetchWidth", c.FetchWidth}, {"DecodeWidth", c.DecodeWidth},
		{"IssueInt", c.IssueInt}, {"IssueFP", c.IssueFP},
		{"CommitWidth", c.CommitWidth}, {"FetchQueue", c.FetchQueue},
		{"ROBSize", c.ROBSize}, {"IQInt", c.IQInt}, {"IQFP", c.IQFP},
		{"IntALU", c.IntALU}, {"IntMulDiv", c.IntMulDiv},
		{"FPALU", c.FPALU}, {"FPMulDiv", c.FPMulDiv},
		{"DcachePorts", c.DcachePorts},
	} {
		if v.v <= 0 {
			return fmt.Errorf("cpu: %s must be positive", v.n)
		}
	}
	if c.MispredictPenalty < 0 || c.DeadlockPatience < 0 {
		return fmt.Errorf("cpu: penalties must be non-negative")
	}
	return nil
}

// Instruction latencies (Table 2).
const (
	latIntALU = 1
	latIntMul = 3
	latIntDiv = 20
	latFPALU  = 2
	latFPMul  = 4
	latFPDiv  = 12
	latAGEN   = 1 // address generation on an integer ALU
	latFwd    = 1 // store-to-load forward
)

type instState uint8

const (
	stFetched instState = iota
	stDispatched
	stAGENDone // memory only: address computed, in LSQ placement flow
	stIssued   // execution latency counting down
	stDone     // result ready / access performed
	stCommitted
)

// dynInst is one in-flight dynamic instruction.
type dynInst struct {
	in    isa.Inst
	state instState

	srcA, srcB *dynInst // producers still in flight at rename (nil = ready)
	readyAt    uint64   // cycle the result becomes available (once issued)

	pred       bpred.Prediction
	mispredict bool
	predMade   bool

	// Memory state.
	placed    bool
	buffered  bool
	performed bool
}

func (d *dynInst) isMem() bool { return d.in.Cls.IsMem() }

func producerDone(p *dynInst, cycle uint64) bool {
	return p == nil || (p.state >= stDone && p.readyAt <= cycle)
}

// srcsReady reports whether both producers have completed by cycle.
func (d *dynInst) srcsReady(cycle uint64) bool {
	return producerDone(d.srcA, cycle) && producerDone(d.srcB, cycle)
}

// agenReady reports whether the address operands are ready. For
// stores only SrcA (the address register) gates address generation:
// the data operand (SrcB) is needed only to complete, matching real
// pipelines where the store address is computed independently of the
// data. This is what lets the readyBit scheme make progress.
func (d *dynInst) agenReady(cycle uint64) bool {
	if d.in.Cls == isa.ClassStore {
		return producerDone(d.srcA, cycle)
	}
	return d.srcsReady(cycle)
}

// dataReady reports whether a store's data operand is available.
func (d *dynInst) dataReady(cycle uint64) bool {
	return producerDone(d.srcB, cycle)
}

// fuPool models a pool of functional units that may be occupied for
// multiple cycles (non-pipelined operations).
type fuPool struct {
	busyUntil []uint64
}

func newFUPool(n int) *fuPool { return &fuPool{busyUntil: make([]uint64, n)} }

// acquire reserves a unit until cycle+occupancy; it returns false when
// every unit is busy.
func (p *fuPool) acquire(cycle uint64, occupancy int) bool {
	for i := range p.busyUntil {
		if p.busyUntil[i] <= cycle {
			p.busyUntil[i] = cycle + uint64(occupancy)
			return true
		}
	}
	return false
}

func (p *fuPool) reset() {
	for i := range p.busyUntil {
		p.busyUntil[i] = 0
	}
}

// Result summarizes a simulation.
type Result struct {
	Cycles            uint64
	Committed         uint64
	IPC               float64
	Loads, Stores     uint64
	ForwardedLoads    uint64
	BranchLookups     uint64
	BranchMispredicts uint64
	DeadlockFlushes   uint64
	PlacementFailures uint64 // §3.3 scenario 2 flushes
	L1DMissRate       float64
	DTLBMissRate      float64
	FetchStallCycles  uint64
	DispatchStalls    uint64 // cycles dispatch blocked by ROB/IQ/LSQ

	// Head-of-ROB stall classification (cycles where nothing
	// committed, by the state of the head instruction).
	HeadWaitIssue    uint64 // head not yet issued (sources or FU)
	HeadWaitExec     uint64 // head executing (latency)
	HeadLoadReadyBit uint64 // head load blocked by an older store address
	HeadLoadNoPort   uint64 // head load blocked on a Dcache port
	HeadLoadData     uint64 // head load access in flight
	HeadStoreWait    uint64 // head store waiting (placement or data)
	HeadUnplaced     uint64 // head memory op not placed in the LSQ

	FetchStallBranch uint64 // fetch blocked by an unresolved mispredict
	FetchStallOther  uint64 // fetch blocked by I-cache/ITLB/redirect delay
}

// CPU is one simulator instance. Construct with New and call Run once.
type CPU struct {
	cfg   Config
	strm  isa.Stream
	model lsq.Model
	hier  *mem.Hierarchy
	dtlb  *tlb.TLB
	itlb  *tlb.TLB
	bp    *bpred.Predictor
	meter *energy.Meter

	cycle   uint64
	rob     []*dynInst
	robMap  map[uint64]*dynInst
	fetchQ  []*dynInst
	replayQ []*dynInst // flushed instructions awaiting re-fetch
	iqInt   int
	iqFP    int

	lastWriter [isa.NumLogicalRegs]*dynInst

	intMulDiv *fuPool
	fpMulDiv  *fuPool

	unknownStores map[uint64]*dynInst
	minUnknownSeq uint64 // cached; ^0 when none
	minUnknownOK  bool

	pendingAgens      int // memory AGENs issued, address not yet delivered
	fetchBlockedUntil uint64
	blockingBranch    *dynInst // mispredicted branch gating fetch
	lastFetchLine     uint64

	headBlocked int // consecutive cycles the ROB head sat unplaced

	streamDone bool

	res Result
}

// New wires a CPU together. Nil subsystems get paper defaults; meter
// may be nil (a fresh meter is created).
func New(cfg Config, strm isa.Stream, model lsq.Model, hier *mem.Hierarchy, dtlbU *tlb.TLB, bp *bpred.Predictor, meter *energy.Meter) *CPU {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if strm == nil {
		panic("cpu: nil instruction stream")
	}
	if model == nil {
		panic("cpu: nil LSQ model")
	}
	if hier == nil {
		hier = mem.NewPaper()
	}
	if dtlbU == nil {
		dtlbU = tlb.New(tlb.PaperDTLB())
	}
	if bp == nil {
		bp = bpred.New(bpred.PaperConfig())
	}
	if meter == nil {
		meter = energy.NewMeter()
	}
	return &CPU{
		cfg:           cfg,
		strm:          strm,
		model:         model,
		hier:          hier,
		dtlb:          dtlbU,
		itlb:          tlb.New(tlb.PaperITLB()),
		bp:            bp,
		meter:         meter,
		intMulDiv:     newFUPool(cfg.IntMulDiv),
		fpMulDiv:      newFUPool(cfg.FPMulDiv),
		unknownStores: make(map[uint64]*dynInst),
		robMap:        make(map[uint64]*dynInst),
	}
}

// Meter returns the energy meter.
func (c *CPU) Meter() *energy.Meter { return c.meter }

// Cycle returns the current cycle (for tests).
func (c *CPU) Cycle() uint64 { return c.cycle }

// RunWarm simulates warmInsts instructions to warm the caches, TLBs
// and predictor (as the paper does before measuring), resets every
// statistic, then simulates and reports measureInsts more.
func (c *CPU) RunWarm(warmInsts, measureInsts uint64) Result {
	if warmInsts > 0 {
		c.Run(warmInsts)
		c.res = Result{}
		c.meter.Reset()
		c.hier.ResetStats()
		c.dtlb.ResetStats()
		c.itlb.ResetStats()
		c.bp.ResetStats()
		c.model.ResetStats()
	}
	return c.Run(measureInsts)
}

// Run simulates until maxInsts instructions commit (or the stream
// drains) and returns the result summary.
func (c *CPU) Run(maxInsts uint64) Result {
	// Safety valve: a bounded simulation must terminate even if a
	// model bug wedges the pipeline.
	startCycle := c.cycle
	maxCycles := startCycle + maxInsts*40 + 1_000_000
	for c.res.Committed < maxInsts && c.cycle < maxCycles {
		if c.streamDone && len(c.rob) == 0 && len(c.fetchQ) == 0 && len(c.replayQ) == 0 {
			break
		}
		c.step()
	}
	c.res.Cycles = c.cycle - startCycle
	if c.res.Cycles > 0 {
		c.res.IPC = float64(c.res.Committed) / float64(c.res.Cycles)
	}
	c.res.L1DMissRate = c.hier.L1D.MissRate()
	c.res.DTLBMissRate = c.dtlb.MissRate()
	return c.res
}

// step advances one cycle, running the stages in reverse order so that
// same-cycle structural effects propagate like hardware.
func (c *CPU) step() {
	c.cycle++
	dports := c.cfg.DcachePorts

	c.commit(&dports)
	if c.checkDeadlock() {
		c.model.AccountCycle()
		return
	}
	c.drainAddrBuffer()
	c.writebackAndIssue(&dports)
	c.dispatch()
	c.fetch()
	c.model.AccountCycle()
}

// ---- Commit ---------------------------------------------------------------

func (c *CPU) commit(dports *int) {
	n := 0
	for n < c.cfg.CommitWidth && len(c.rob) > 0 {
		d := c.rob[0]
		if d.state < stDone || d.readyAt > c.cycle {
			if n == 0 {
				c.classifyHeadStall(d)
			}
			break
		}
		if d.isMem() && d.in.Cls == isa.ClassStore {
			// Stores write the Dcache at commit and need a port.
			if *dports <= 0 {
				break
			}
			*dports--
			c.performStoreCommit(d)
		}
		c.model.Commit(d.in.Seq)
		d.state = stCommitted
		delete(c.robMap, d.in.Seq)
		c.rob = c.rob[1:]
		c.res.Committed++
		n++
	}
}

// classifyHeadStall records why the ROB head could not commit this
// cycle (profiling aid; no architectural effect).
func (c *CPU) classifyHeadStall(d *dynInst) {
	switch {
	case d.state == stDispatched || d.state == stFetched:
		c.res.HeadWaitIssue++
	case d.state == stIssued:
		c.res.HeadWaitExec++
	case d.state == stAGENDone && !d.placed:
		c.res.HeadUnplaced++
	case d.state == stAGENDone && d.in.Cls == isa.ClassLoad && !d.performed:
		if c.minUnknownStore() < d.in.Seq {
			c.res.HeadLoadReadyBit++
		} else {
			c.res.HeadLoadNoPort++
		}
	case d.state == stAGENDone && d.in.Cls == isa.ClassStore:
		c.res.HeadStoreWait++
	case d.state == stDone && d.readyAt > c.cycle:
		if d.in.Cls == isa.ClassLoad {
			c.res.HeadLoadData++
		} else {
			c.res.HeadWaitExec++
		}
	}
}

// performStoreCommit runs the store's Dcache write, with the SAMIE
// way/TLB shortcuts when available.
func (c *CPU) performStoreCommit(d *dynInst) {
	plan := c.model.Plan(d.in.Seq)
	if plan.WayKnown {
		c.meter.DcacheWayKnown()
		if _, ok := c.hier.DataDirect(d.in.Addr, plan.Set, plan.Way, true); !ok {
			// The presentBit protocol makes this unreachable; treat a
			// violation loudly in development.
			panic("cpu: way-known store access missed (presentBit protocol violated)")
		}
		if !plan.TLBCached {
			c.meter.DTLBLookup()
			c.dtlb.Lookup(d.in.Addr)
		}
		return
	}
	if !plan.TLBCached {
		c.meter.DTLBLookup()
		c.dtlb.Lookup(d.in.Addr)
	}
	c.meter.DcacheFull()
	res := c.hier.Data(d.in.Addr, true)
	c.handleEviction(res.L1.Evicted, res.L1.EvictedHadPB)
	c.model.RecordAccess(d.in.Seq, res.L1.Set, res.L1.Way, tlb.VPN(d.in.Addr))
	c.hier.L1D.SetPresentBit(res.L1.Set, res.L1.Way)
}

// handleEviction applies the §3.4 conservative presentBit
// invalidation.
func (c *CPU) handleEviction(evicted, hadPB bool) {
	if evicted && hadPB {
		c.model.ClearCachedLocations()
		c.hier.L1D.ClearAllPresentBits()
	}
}

// ---- Deadlock avoidance (§3.3) --------------------------------------------

func (c *CPU) checkDeadlock() bool {
	if len(c.rob) == 0 {
		c.headBlocked = 0
		return false
	}
	head := c.rob[0]
	// The head is deadlocked if its address is computed but no LSQ
	// structure can hold it, or if the address-computation gate itself
	// is closed (AddrBuffer full) so its address can never be computed.
	blocked := head.isMem() && !head.placed &&
		(head.state == stAGENDone ||
			(head.state == stDispatched && c.model.FreeCapacity() <= 0))
	if blocked {
		c.headBlocked++
		if c.headBlocked >= c.cfg.DeadlockPatience {
			c.res.DeadlockFlushes++
			c.flushPipeline()
			return true
		}
		return false
	}
	c.headBlocked = 0
	return false
}

// flushPipeline resets every non-committed instruction and queues it
// for re-fetch in program order (the oldest instruction re-enters
// first, guaranteeing forward progress).
func (c *CPU) flushPipeline() {
	var all []*dynInst
	all = append(all, c.rob...)
	all = append(all, c.fetchQ...)
	all = append(all, c.replayQ...)
	for _, d := range all {
		d.state = stFetched
		d.placed = false
		d.buffered = false
		d.performed = false
		d.predMade = false
		d.mispredict = false
		d.readyAt = 0
	}
	c.replayQ = all
	c.rob = nil
	c.robMap = make(map[uint64]*dynInst)
	c.fetchQ = nil
	c.iqInt, c.iqFP = 0, 0
	for i := range c.lastWriter {
		c.lastWriter[i] = nil
	}
	c.intMulDiv.reset()
	c.fpMulDiv.reset()
	c.unknownStores = make(map[uint64]*dynInst)
	c.minUnknownOK = false
	c.pendingAgens = 0
	c.model.Flush()
	c.blockingBranch = nil
	c.fetchBlockedUntil = c.cycle + uint64(c.cfg.MispredictPenalty)
	c.headBlocked = 0
}

// ---- LSQ buffer drain -------------------------------------------------------

func (c *CPU) drainAddrBuffer() {
	for _, seq := range c.model.Tick() {
		if d := c.findROB(seq); d != nil {
			d.placed = true
			d.buffered = false
		}
	}
}

// findROB locates an in-flight instruction by sequence number.
func (c *CPU) findROB(seq uint64) *dynInst { return c.robMap[seq] }

// ---- Issue / execute / writeback -------------------------------------------

// minUnknownStore returns the lowest sequence number among stores with
// uncomputed addresses (^0 when none): the readyBit frontier.
func (c *CPU) minUnknownStore() uint64 {
	if c.minUnknownOK {
		return c.minUnknownSeq
	}
	minSeq := ^uint64(0)
	for seq := range c.unknownStores {
		if seq < minSeq {
			minSeq = seq
		}
	}
	c.minUnknownSeq = minSeq
	c.minUnknownOK = true
	return minSeq
}

func (c *CPU) writebackAndIssue(dports *int) {
	intIssued, fpIssued := 0, 0
	aluUsed := 0

	for _, d := range c.rob {
		switch d.state {
		case stIssued:
			if d.readyAt <= c.cycle {
				c.completeExec(d)
			}
		case stDispatched:
			if d.isMem() {
				if !d.agenReady(c.cycle) {
					continue
				}
			} else if !d.srcsReady(c.cycle) {
				continue
			}
			if d.in.Cls.IsFP() {
				if fpIssued >= c.cfg.IssueFP {
					continue
				}
				if c.issueFP(d) {
					fpIssued++
					c.iqFP--
				}
			} else {
				if intIssued >= c.cfg.IssueInt {
					continue
				}
				if c.issueInt(d, &aluUsed) {
					intIssued++
					c.iqInt--
				}
			}
		case stAGENDone:
			// Memory instructions waiting to perform their access.
			if d.in.Cls == isa.ClassLoad {
				c.tryPerformLoad(d, dports)
			} else if d.placed && !d.performed && d.dataReady(c.cycle) {
				// A placed store with its data available is complete:
				// it will write the cache at commit.
				d.performed = true
				d.state = stDone
				d.readyAt = c.cycle
				c.model.NotePerformed(d.in.Seq)
			}
		}
	}
}

// completeExec handles writeback for a finished instruction.
func (c *CPU) completeExec(d *dynInst) {
	if d.in.Cls == isa.ClassBranch {
		miss := c.bp.Resolve(d.in.PC, d.pred, d.in.Taken, d.in.Target)
		if miss {
			c.res.BranchMispredicts++
		}
		if c.blockingBranch == d {
			c.blockingBranch = nil
			c.fetchBlockedUntil = c.cycle + uint64(c.cfg.MispredictPenalty)
		}
		d.state = stDone
		return
	}
	if d.isMem() {
		// AGEN finished: hand the address to the LSQ.
		d.state = stAGENDone
		if c.pendingAgens > 0 {
			c.pendingAgens--
		}
		pl := c.model.AddressReady(d.in.Seq, d.in.Cls == isa.ClassLoad, d.in.Addr, d.in.Size)
		if d.in.Cls == isa.ClassStore {
			delete(c.unknownStores, d.in.Seq)
			c.minUnknownOK = false
		}
		switch {
		case pl.Placed:
			d.placed = true
		case pl.Buffered:
			d.buffered = true
		case pl.Failed:
			// §3.3 scenario 2: nothing had room.
			c.res.PlacementFailures++
			c.res.DeadlockFlushes++
			c.flushPipeline()
		}
		return
	}
	d.state = stDone
}

// issueInt starts an integer-side instruction (including AGEN for
// memory operations). Returns false on a structural hazard.
func (c *CPU) issueInt(d *dynInst, aluUsed *int) bool {
	switch d.in.Cls {
	case isa.ClassIntALU, isa.ClassBranch, isa.ClassNop:
		if *aluUsed >= c.cfg.IntALU {
			return false
		}
		*aluUsed++
		d.state = stIssued
		d.readyAt = c.cycle + latIntALU
	case isa.ClassLoad, isa.ClassStore:
		if *aluUsed >= c.cfg.IntALU {
			return false
		}
		// §3.3 alternative rule: never start an address computation
		// that is not guaranteed a landing slot.
		if c.pendingAgens >= c.model.FreeCapacity() {
			return false
		}
		c.pendingAgens++
		*aluUsed++
		d.state = stIssued
		d.readyAt = c.cycle + latAGEN
	case isa.ClassIntMul:
		if !c.intMulDiv.acquire(c.cycle, 1) {
			return false
		}
		d.state = stIssued
		d.readyAt = c.cycle + latIntMul
	case isa.ClassIntDiv:
		if !c.intMulDiv.acquire(c.cycle, latIntDiv) {
			return false
		}
		d.state = stIssued
		d.readyAt = c.cycle + latIntDiv
	default:
		d.state = stIssued
		d.readyAt = c.cycle + 1
	}
	return true
}

// issueFP starts an FP instruction.
func (c *CPU) issueFP(d *dynInst) bool {
	switch d.in.Cls {
	case isa.ClassFPALU:
		// FPALU pool is pipelined; modeled as an issue-width-limited
		// pool per cycle.
		d.state = stIssued
		d.readyAt = c.cycle + latFPALU
	case isa.ClassFPMul:
		if !c.fpMulDiv.acquire(c.cycle, 1) {
			return false
		}
		d.state = stIssued
		d.readyAt = c.cycle + latFPMul
	case isa.ClassFPDiv:
		if !c.fpMulDiv.acquire(c.cycle, latFPDiv) {
			return false
		}
		d.state = stIssued
		d.readyAt = c.cycle + latFPDiv
	default:
		d.state = stIssued
		d.readyAt = c.cycle + 1
	}
	return true
}

// tryPerformLoad attempts the memory access of a load whose address is
// known: it must be placed in the LSQ, its readyBit must be set (no
// older store with an unknown address) and a Dcache port must be free
// unless the data is forwarded.
func (c *CPU) tryPerformLoad(d *dynInst, dports *int) {
	if d.performed || !d.placed {
		return
	}
	if c.minUnknownStore() < d.in.Seq {
		return // readyBit clear: an older store address is unknown
	}
	if src, ok := c.model.ForwardingSource(d.in.Seq); ok {
		// Forward once the store's data is available.
		if st := c.findROB(src); st != nil && !st.performed {
			return
		}
		d.performed = true
		d.state = stDone
		d.readyAt = c.cycle + latFwd
		c.res.ForwardedLoads++
		c.model.NotePerformed(d.in.Seq)
		return
	}
	if *dports <= 0 {
		return
	}
	*dports--
	d.performed = true
	c.model.NotePerformed(d.in.Seq)

	plan := c.model.Plan(d.in.Seq)
	var lat int
	if plan.WayKnown {
		c.meter.DcacheWayKnown()
		l, ok := c.hier.DataDirect(d.in.Addr, plan.Set, plan.Way, false)
		if !ok {
			panic("cpu: way-known load access missed (presentBit protocol violated)")
		}
		lat = l - plan.LatencyBonus
		if lat < 1 {
			lat = 1
		}
		if !plan.TLBCached {
			c.meter.DTLBLookup()
			if hit, tl := c.dtlb.Lookup(d.in.Addr); !hit {
				lat += tl
			}
		}
	} else {
		var tlbLat int
		if !plan.TLBCached {
			c.meter.DTLBLookup()
			if hit, tl := c.dtlb.Lookup(d.in.Addr); !hit {
				tlbLat = tl
			}
		}
		c.meter.DcacheFull()
		res := c.hier.Data(d.in.Addr, false)
		c.handleEviction(res.L1.Evicted, res.L1.EvictedHadPB)
		c.model.RecordAccess(d.in.Seq, res.L1.Set, res.L1.Way, tlb.VPN(d.in.Addr))
		c.hier.L1D.SetPresentBit(res.L1.Set, res.L1.Way)
		lat = res.Latency + tlbLat
	}
	d.state = stDone
	d.readyAt = c.cycle + uint64(lat)
}

// ---- Dispatch ----------------------------------------------------------------

func (c *CPU) dispatch() {
	n := 0
	stalled := false
	for n < c.cfg.DecodeWidth && len(c.fetchQ) > 0 {
		d := c.fetchQ[0]
		if len(c.rob) >= c.cfg.ROBSize {
			stalled = true
			break
		}
		if d.in.Cls.IsFP() {
			if c.iqFP >= c.cfg.IQFP {
				stalled = true
				break
			}
		} else if c.iqInt >= c.cfg.IQInt {
			stalled = true
			break
		}
		if d.isMem() && !c.model.Dispatch(d.in.Seq, d.in.Cls == isa.ClassLoad) {
			stalled = true
			break
		}
		// Rename: bind producers.
		d.srcA, d.srcB = nil, nil
		if d.in.SrcA != isa.RegNone {
			d.srcA = c.lastWriter[d.in.SrcA]
		}
		if d.in.SrcB != isa.RegNone {
			d.srcB = c.lastWriter[d.in.SrcB]
		}
		if d.in.Dest != isa.RegNone {
			c.lastWriter[d.in.Dest] = d
		}
		if d.in.Cls == isa.ClassStore {
			c.unknownStores[d.in.Seq] = d
			c.minUnknownOK = false
		}
		if d.in.Cls == isa.ClassLoad {
			c.res.Loads++
		} else if d.in.Cls == isa.ClassStore {
			c.res.Stores++
		}
		d.state = stDispatched
		if d.in.Cls.IsFP() {
			c.iqFP++
		} else {
			c.iqInt++
		}
		c.rob = append(c.rob, d)
		c.robMap[d.in.Seq] = d
		c.fetchQ = c.fetchQ[1:]
		n++
	}
	if stalled {
		c.res.DispatchStalls++
	}
}

// ---- Fetch --------------------------------------------------------------------

func (c *CPU) fetch() {
	if c.cycle < c.fetchBlockedUntil || c.blockingBranch != nil {
		c.res.FetchStallCycles++
		if c.blockingBranch != nil {
			c.res.FetchStallBranch++
		} else {
			c.res.FetchStallOther++
		}
		return
	}
	n := 0
	for n < c.cfg.FetchWidth && len(c.fetchQ) < c.cfg.FetchQueue {
		d := c.nextInst()
		if d == nil {
			return
		}
		// Instruction cache: one lookup per new line.
		lineAddr := d.in.PC &^ 31
		if lineAddr != c.lastFetchLine {
			c.lastFetchLine = lineAddr
			if hit, _ := c.itlb.Lookup(d.in.PC); !hit {
				c.fetchBlockedUntil = c.cycle + uint64(c.itlb.Config().MissPenalty)
			}
			if lat := c.hier.Inst(d.in.PC); lat > c.hier.L1I.Config().HitLatency {
				c.fetchBlockedUntil = c.cycle + uint64(lat)
				c.fetchQ = append(c.fetchQ, d)
				return
			}
		}
		if d.in.Cls == isa.ClassBranch {
			d.pred = c.bp.Predict(d.in.PC)
			d.predMade = true
			c.res.BranchLookups++
			wrongDir := d.pred.Taken != d.in.Taken
			wrongTgt := d.in.Taken && (d.pred.Target == 0 || d.pred.Target != d.in.Target)
			d.mispredict = wrongDir || wrongTgt
			c.fetchQ = append(c.fetchQ, d)
			n++
			if d.mispredict {
				// Fetch chases the wrong path until the branch resolves.
				c.blockingBranch = d
				return
			}
			if d.pred.Taken {
				// A correctly predicted taken branch ends the fetch
				// group.
				return
			}
			continue
		}
		c.fetchQ = append(c.fetchQ, d)
		n++
	}
}

// nextInst pulls the next instruction, preferring flushed instructions
// awaiting replay.
func (c *CPU) nextInst() *dynInst {
	if len(c.replayQ) > 0 {
		d := c.replayQ[0]
		c.replayQ = c.replayQ[1:]
		return d
	}
	if c.streamDone {
		return nil
	}
	var in isa.Inst
	if !c.strm.Next(&in) {
		c.streamDone = true
		return nil
	}
	return &dynInst{in: in}
}
