// Package cpu implements the cycle-level out-of-order superscalar
// processor model used by the paper's evaluation: an enhanced
// sim-outorder-style pipeline with a reorder buffer separate from the
// issue queues, modeled structure ports, the Table 2 configuration by
// default, and pluggable load/store-queue models (lsq.Model).
//
// The pipeline stages are fetch -> dispatch (decode/rename) -> issue ->
// execute -> writeback -> commit. Memory disambiguation follows the
// paper's conservative readyBit scheme (§3.1): a load performs its
// access only when every older store's address is known; a store whose
// address is computed sets the readyBits of younger instructions up to
// the next unknown-address store.
//
// The per-instruction path is allocation-free in steady state (see
// docs/performance.md): dynamic instructions come from a free list
// recycled at commit, the ROB/fetch/replay queues are ring buffers, and
// in-flight lookups are direct seq-indexed ring addressing instead of
// maps. This requires streams to deliver consecutive sequence numbers
// (isa.Stream's contract), which makes the ROB a contiguous seq window.
package cpu

import (
	"fmt"
	"time"

	"samielsq/internal/bpred"
	"samielsq/internal/energy"
	"samielsq/internal/isa"
	"samielsq/internal/lsq"
	"samielsq/internal/mem"
	"samielsq/internal/obs"
	"samielsq/internal/tlb"
)

// Config is the processor configuration (Table 2).
type Config struct {
	FetchWidth  int
	DecodeWidth int
	IssueInt    int // INT issue width per cycle
	IssueFP     int // FP issue width per cycle
	CommitWidth int

	FetchQueue int
	ROBSize    int
	IQInt      int
	IQFP       int

	IntALU    int // 1-cycle latency, pipelined
	IntMulDiv int // mult 3 cycles pipelined; div 20 cycles non-pipelined
	FPALU     int // 2 cycles, pipelined
	FPMulDiv  int // mult 4 cycles pipelined; div 12 cycles non-pipelined

	DcachePorts int

	// MispredictPenalty is the front-end redirect/refill delay after a
	// branch misprediction resolves (and after a deadlock flush).
	MispredictPenalty int

	// DeadlockPatience is how many consecutive cycles the ROB head may
	// sit unplaced in the LSQ before the §3.3 deadlock-avoidance flush
	// fires.
	DeadlockPatience int

	// LegacyIssueWalk selects the pre-wakeup issue engine: the
	// per-cycle compacting walk over the age-ordered active list,
	// O(in-flight) per cycle. The default (false) is the event-driven
	// wakeup scheduler (see sched.go), which produces bit-identical
	// results while touching only O(issue width + newly woken)
	// instructions per cycle; the walk is kept for differential
	// testing (TestSchedulerDifferential).
	LegacyIssueWalk bool
}

// PaperConfig returns the Table 2 configuration.
func PaperConfig() Config {
	return Config{
		FetchWidth:        8,
		DecodeWidth:       8,
		IssueInt:          8,
		IssueFP:           8,
		CommitWidth:       8,
		FetchQueue:        64,
		ROBSize:           256,
		IQInt:             128,
		IQFP:              128,
		IntALU:            6,
		IntMulDiv:         3,
		FPALU:             4,
		FPMulDiv:          2,
		DcachePorts:       4,
		MispredictPenalty: 8,
		DeadlockPatience:  32,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	for _, v := range [...]struct {
		n string
		v int
	}{
		{"FetchWidth", c.FetchWidth}, {"DecodeWidth", c.DecodeWidth},
		{"IssueInt", c.IssueInt}, {"IssueFP", c.IssueFP},
		{"CommitWidth", c.CommitWidth}, {"FetchQueue", c.FetchQueue},
		{"ROBSize", c.ROBSize}, {"IQInt", c.IQInt}, {"IQFP", c.IQFP},
		{"IntALU", c.IntALU}, {"IntMulDiv", c.IntMulDiv},
		{"FPALU", c.FPALU}, {"FPMulDiv", c.FPMulDiv},
		{"DcachePorts", c.DcachePorts},
	} {
		if v.v <= 0 {
			return fmt.Errorf("cpu: %s must be positive", v.n)
		}
	}
	if c.MispredictPenalty < 0 || c.DeadlockPatience < 0 {
		return fmt.Errorf("cpu: penalties must be non-negative")
	}
	return nil
}

// Instruction latencies (Table 2).
const (
	latIntALU = 1
	latIntMul = 3
	latIntDiv = 20
	latFPALU  = 2
	latFPMul  = 4
	latFPDiv  = 12
	latAGEN   = 1 // address generation on an integer ALU
	latFwd    = 1 // store-to-load forward
)

type instState uint8

const (
	stFetched instState = iota
	stDispatched
	stAGENDone // memory only: address computed, in LSQ placement flow
	stIssued   // execution latency counting down
	stDone     // result ready / access performed
	stCommitted
)

// dynInst is one in-flight dynamic instruction. Instances are recycled
// through the CPU's free list at commit; gen disambiguates a recycled
// slot from the instruction a stale reference was bound to.
type dynInst struct {
	in    isa.Inst
	state instState
	gen   uint32 // bumped every time the slot is recycled

	// Class lanes, precomputed at allocation: the issue walk consults
	// them every cycle per in-flight instruction.
	mem bool
	fp  bool

	// Producers still in flight at rename (nil = ready). genA/genB are
	// the producers' generations at bind time: a mismatch means the
	// producer has committed and its slot was recycled — i.e. the value
	// is long since ready.
	srcA, srcB *dynInst
	genA, genB uint32

	readyAt uint64 // cycle the result becomes available (once issued)

	pred       bpred.Prediction
	mispredict bool
	predMade   bool

	// Memory state.
	placed      bool
	buffered    bool
	performed   bool
	addrUnknown bool // store dispatched, address not yet computed

	// Wakeup-scheduler links (nil/0 under LegacyIssueWalk). waiterHead
	// anchors the intrusive list of consumers parked on this
	// instruction as a producer (chained through their waitNext);
	// wheelNext/wakeCycle place this instruction in a timing-wheel
	// bucket. A recycled instruction never carries live links: its
	// waiter list drains at the stDone transition, which precedes any
	// commit.
	waiterHead *dynInst
	waitNext   *dynInst
	wheelNext  *dynInst
	wakeCycle  uint64
}

func (d *dynInst) isMem() bool { return d.mem }

func producerDone(p *dynInst, gen uint32, cycle uint64) bool {
	return p == nil || p.gen != gen || (p.state >= stDone && p.readyAt <= cycle)
}

// srcsReady reports whether both producers have completed by cycle.
// A producer observed done is severed (the verdict is permanent until
// a flush, which rebinds producers at re-dispatch), so the repeated
// per-cycle rechecks of a waiting instruction degrade to nil tests
// instead of pointer chases.
func (d *dynInst) srcsReady(cycle uint64) bool {
	if d.srcA != nil {
		if !producerDone(d.srcA, d.genA, cycle) {
			return false
		}
		d.srcA = nil
	}
	if d.srcB != nil {
		if !producerDone(d.srcB, d.genB, cycle) {
			return false
		}
		d.srcB = nil
	}
	return true
}

// agenReady reports whether the address operands are ready. For
// stores only SrcA (the address register) gates address generation:
// the data operand (SrcB) is needed only to complete, matching real
// pipelines where the store address is computed independently of the
// data. This is what lets the readyBit scheme make progress.
func (d *dynInst) agenReady(cycle uint64) bool {
	if d.in.Cls == isa.ClassStore {
		if d.srcA != nil {
			if !producerDone(d.srcA, d.genA, cycle) {
				return false
			}
			d.srcA = nil
		}
		return true
	}
	return d.srcsReady(cycle)
}

// dataReady reports whether a store's data operand is available.
func (d *dynInst) dataReady(cycle uint64) bool {
	if d.srcB != nil {
		if !producerDone(d.srcB, d.genB, cycle) {
			return false
		}
		d.srcB = nil
	}
	return true
}

// writerRef is a generation-tagged reference to the last architectural
// writer of a register. The writer may have committed (and its slot
// been recycled) by the time a consumer renames against it; the
// generation check classifies that case as "value ready".
type writerRef struct {
	d   *dynInst
	gen uint32
}

// fuPool models a pool of functional units that may be occupied for
// multiple cycles (non-pipelined operations).
type fuPool struct {
	busyUntil []uint64
	// minBusy caches min(busyUntil): when it is still in the future the
	// whole pool is busy and acquire fails without scanning.
	minBusy uint64
}

func newFUPool(n int) *fuPool { return &fuPool{busyUntil: make([]uint64, n)} }

// acquire reserves a unit until cycle+occupancy; it returns false when
// every unit is busy. The all-busy path is O(1) via the min-tracking
// index; a successful acquire rescans the (small) pool to refresh it.
func (p *fuPool) acquire(cycle uint64, occupancy int) bool {
	if p.minBusy > cycle {
		return false
	}
	acquired := false
	newMin := ^uint64(0)
	for i := range p.busyUntil {
		if !acquired && p.busyUntil[i] <= cycle {
			p.busyUntil[i] = cycle + uint64(occupancy)
			acquired = true
		}
		if p.busyUntil[i] < newMin {
			newMin = p.busyUntil[i]
		}
	}
	if acquired {
		p.minBusy = newMin
	}
	return acquired
}

func (p *fuPool) reset() {
	for i := range p.busyUntil {
		p.busyUntil[i] = 0
	}
	p.minBusy = 0
}

// Result summarizes a simulation.
type Result struct {
	Cycles            uint64
	Committed         uint64
	IPC               float64
	Loads, Stores     uint64
	ForwardedLoads    uint64
	BranchLookups     uint64
	BranchMispredicts uint64
	DeadlockFlushes   uint64
	PlacementFailures uint64 // §3.3 scenario 2 flushes
	L1DMissRate       float64
	DTLBMissRate      float64
	FetchStallCycles  uint64
	DispatchStalls    uint64 // cycles dispatch blocked by ROB/IQ/LSQ

	// Head-of-ROB stall classification (cycles where nothing
	// committed, by the state of the head instruction).
	HeadWaitIssue    uint64 // head not yet issued (sources or FU)
	HeadWaitExec     uint64 // head executing (latency)
	HeadLoadReadyBit uint64 // head load blocked by an older store address
	HeadLoadNoPort   uint64 // head load blocked on a Dcache port
	HeadLoadData     uint64 // head load access in flight
	HeadStoreWait    uint64 // head store waiting (placement or data)
	HeadUnplaced     uint64 // head memory op not placed in the LSQ

	FetchStallBranch uint64 // fetch blocked by an unresolved mispredict
	FetchStallOther  uint64 // fetch blocked by I-cache/ITLB/redirect delay
}

// CPU is one simulator instance. Construct with New and call Run once.
type CPU struct {
	cfg   Config
	strm  isa.Stream
	model lsq.Model
	hier  *mem.Hierarchy
	dtlb  *tlb.TLB
	itlb  *tlb.TLB
	bp    *bpred.Predictor
	meter *energy.Meter

	cycle      uint64
	rob        instRing // contiguous seq window; index = seq - headSeq
	robNextSeq uint64   // expected seq of the next dispatch (contiguity check)
	fetchQ     instRing
	replayQ    instRing // flushed instructions awaiting re-fetch
	iqInt      int
	iqFP       int

	lastWriter [isa.NumLogicalRegs]writerRef

	intMulDiv *fuPool
	fpMulDiv  *fuPool

	// readyBit frontier: stores dispatched whose address is still
	// uncomputed, tracked on the instructions themselves plus a count
	// and a monotone min-seq cursor (recomputed lazily by a forward
	// ring scan from the previous frontier).
	unknownCount  int
	minUnknownSeq uint64 // last computed frontier; ^0 when none
	minUnknownOK  bool

	pendingAgens      int // memory AGENs issued, address not yet delivered
	fetchBlockedUntil uint64
	blockingBranch    *dynInst // mispredicted branch gating fetch
	lastFetchLine     uint64

	headBlocked int // consecutive cycles the ROB head sat unplaced

	streamDone bool

	// dynInst arena: committed instructions return here and are handed
	// back out by nextInst, so the steady-state pipeline allocates
	// nothing per instruction.
	freeInsts []*dynInst

	flushScratch []*dynInst // reused by flushPipeline
	flushEpoch   uint64     // bumped per flush; guards in-progress ROB walks

	// nextScratch receives Stream.Next output. A local would escape to
	// the heap through the interface call — one boxed isa.Inst per
	// fetched instruction; a field costs nothing.
	nextScratch isa.Inst

	// active is the age-ordered subset of the ROB that still needs
	// per-cycle attention (dispatched, executing, or waiting on the
	// memory system). Instructions leave it when they reach stDone, so
	// the writeback/issue walk skips completed instructions piling up
	// behind a blocked head. Compaction preserves age order, keeping
	// issue priority identical to a full ROB walk. Only maintained
	// under LegacyIssueWalk.
	active []*dynInst

	// ev is the event-driven wakeup scheduler (sched.go); nil under
	// LegacyIssueWalk.
	ev *eventSched

	// sampler is the optional interval telemetry collector
	// (telemetry.go); nil unless attached, and free when disabled.
	sampler  *obs.IntervalSampler
	sampBase sampleBase

	// flight is the optional per-cycle issue recorder (flight.go),
	// attached only by diagnostic tests.
	flight *FlightRecorder

	res Result
}

// SetFlightRecorder attaches (or with nil detaches) a flight recorder.
func (c *CPU) SetFlightRecorder(f *FlightRecorder) { c.flight = f }

// New wires a CPU together. Nil subsystems get paper defaults; meter
// may be nil (a fresh meter is created).
func New(cfg Config, strm isa.Stream, model lsq.Model, hier *mem.Hierarchy, dtlbU *tlb.TLB, bp *bpred.Predictor, meter *energy.Meter) *CPU {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if strm == nil {
		panic("cpu: nil instruction stream")
	}
	if model == nil {
		panic("cpu: nil LSQ model")
	}
	if hier == nil {
		hier = mem.NewPaper()
	}
	if dtlbU == nil {
		dtlbU = tlb.New(tlb.PaperDTLB())
	}
	if bp == nil {
		bp = bpred.New(bpred.PaperConfig())
	}
	if meter == nil {
		meter = energy.NewMeter()
	}
	c := &CPU{
		cfg:       cfg,
		strm:      strm,
		model:     model,
		hier:      hier,
		dtlb:      dtlbU,
		itlb:      tlb.New(tlb.PaperITLB()),
		bp:        bp,
		meter:     meter,
		intMulDiv: newFUPool(cfg.IntMulDiv),
		fpMulDiv:  newFUPool(cfg.FPMulDiv),
		rob:       newInstRing(cfg.ROBSize),
		fetchQ:    newInstRing(cfg.FetchQueue + cfg.FetchWidth),
		replayQ:   newInstRing(4),
		freeInsts: make([]*dynInst, 0, cfg.ROBSize+cfg.FetchQueue),
		active:    make([]*dynInst, 0, cfg.ROBSize),
	}
	if !cfg.LegacyIssueWalk {
		c.ev = newEventSched(cfg.ROBSize)
	}
	return c
}

// Meter returns the energy meter.
func (c *CPU) Meter() *energy.Meter { return c.meter }

// Cycle returns the current cycle (for tests).
func (c *CPU) Cycle() uint64 { return c.cycle }

// allocInst hands out a dynInst for in, recycling a committed one when
// available.
//
//samie:hotpath
func (c *CPU) allocInst(in isa.Inst) *dynInst {
	if n := len(c.freeInsts); n > 0 {
		d := c.freeInsts[n-1]
		c.freeInsts = c.freeInsts[:n-1]
		gen := d.gen
		*d = dynInst{in: in, gen: gen, mem: in.Cls.IsMem(), fp: in.Cls.IsFP()}
		return d
	}
	return &dynInst{in: in, mem: in.Cls.IsMem(), fp: in.Cls.IsFP()}
}

// recycleInst returns a committed instruction to the arena. The
// generation bump retires every outstanding reference (rename bindings,
// lastWriter entries) to the old occupant.
//
//samie:hotpath
func (c *CPU) recycleInst(d *dynInst) {
	d.gen++
	//lint:ignore hotalloc freeInsts is preallocated to ROBSize+FetchQueue, the max ever recycled
	c.freeInsts = append(c.freeInsts, d)
}

// RunWarm simulates warmInsts instructions to warm the caches, TLBs
// and predictor (as the paper does before measuring), resets every
// statistic, then simulates and reports measureInsts more.
func (c *CPU) RunWarm(warmInsts, measureInsts uint64) Result {
	res, _, _ := c.RunWarmTimed(warmInsts, measureInsts)
	return res
}

// RunWarmTimed is RunWarm plus wall-clock attribution: it reports how
// long the warmup and measured portions each took on the host, so the
// profiling layer can split a run's simulation time into its phases.
// The simulated result is identical to RunWarm's.
func (c *CPU) RunWarmTimed(warmInsts, measureInsts uint64) (Result, time.Duration, time.Duration) {
	var warmDur time.Duration
	if warmInsts > 0 {
		start := time.Now()
		c.Run(warmInsts)
		warmDur = time.Since(start)
		c.res = Result{}
		c.meter.Reset()
		c.hier.ResetStats()
		c.dtlb.ResetStats()
		c.itlb.ResetStats()
		c.bp.ResetStats()
		c.model.ResetStats()
		// Telemetry covers the measured portion only: drop warmup
		// samples and re-baseline the deltas against the reset meter.
		c.sampler.Reset(c.cycle)
		c.resetSampleBase()
	}
	start := time.Now()
	res := c.Run(measureInsts)
	return res, warmDur, time.Since(start)
}

// Run simulates until maxInsts instructions commit (or the stream
// drains) and returns the result summary.
func (c *CPU) Run(maxInsts uint64) Result {
	// Safety valve: a bounded simulation must terminate even if a
	// model bug wedges the pipeline.
	startCycle := c.cycle
	maxCycles := startCycle + maxInsts*40 + 1_000_000
	for c.res.Committed < maxInsts && c.cycle < maxCycles {
		if c.streamDone && c.rob.len() == 0 && c.fetchQ.len() == 0 && c.replayQ.len() == 0 {
			break
		}
		c.step()
	}
	c.res.Cycles = c.cycle - startCycle
	if c.res.Cycles > 0 {
		c.res.IPC = float64(c.res.Committed) / float64(c.res.Cycles)
	}
	c.res.L1DMissRate = c.hier.L1D.MissRate()
	c.res.DTLBMissRate = c.dtlb.MissRate()
	return c.res
}

// step advances one cycle, running the stages in reverse order so that
// same-cycle structural effects propagate like hardware.
//
//samie:hotpath
func (c *CPU) step() {
	c.cycle++
	dports := c.cfg.DcachePorts

	c.commit(&dports)
	if c.checkDeadlock() {
		c.model.AccountCycle()
		c.endOfCycleTelemetry()
		return
	}
	c.drainAddrBuffer()
	if c.ev != nil {
		c.wakeupIssue(&dports)
	} else {
		c.writebackAndIssue(&dports)
	}
	c.dispatch()
	c.fetch()
	c.model.AccountCycle()
	c.endOfCycleTelemetry()
}

// ---- Commit ---------------------------------------------------------------

//samie:hotpath
func (c *CPU) commit(dports *int) {
	n := 0
	for n < c.cfg.CommitWidth && c.rob.len() > 0 {
		d := c.rob.front()
		if d.state < stDone || d.readyAt > c.cycle {
			if n == 0 {
				c.classifyHeadStall(d)
			}
			break
		}
		if d.isMem() && d.in.Cls == isa.ClassStore {
			// Stores write the Dcache at commit and need a port.
			if *dports <= 0 {
				break
			}
			*dports--
			c.performStoreCommit(d)
		}
		c.model.Commit(d.in.Seq)
		d.state = stCommitted
		c.rob.popFront()
		c.recycleInst(d)
		c.res.Committed++
		n++
	}
}

// classifyHeadStall records why the ROB head could not commit this
// cycle (profiling aid; no architectural effect).
func (c *CPU) classifyHeadStall(d *dynInst) {
	switch {
	case d.state == stDispatched || d.state == stFetched:
		c.res.HeadWaitIssue++
	case d.state == stIssued:
		c.res.HeadWaitExec++
	case d.state == stAGENDone && !d.placed:
		c.res.HeadUnplaced++
	case d.state == stAGENDone && d.in.Cls == isa.ClassLoad && !d.performed:
		if c.minUnknownStore() < d.in.Seq {
			c.res.HeadLoadReadyBit++
		} else {
			c.res.HeadLoadNoPort++
		}
	case d.state == stAGENDone && d.in.Cls == isa.ClassStore:
		c.res.HeadStoreWait++
	case d.state == stDone && d.readyAt > c.cycle:
		if d.in.Cls == isa.ClassLoad {
			c.res.HeadLoadData++
		} else {
			c.res.HeadWaitExec++
		}
	}
}

// performStoreCommit runs the store's Dcache write, with the SAMIE
// way/TLB shortcuts when available.
func (c *CPU) performStoreCommit(d *dynInst) {
	plan := c.model.Plan(d.in.Seq)
	if plan.WayKnown {
		c.meter.DcacheWayKnown()
		if _, ok := c.hier.DataDirect(d.in.Addr, plan.Set, plan.Way, true); !ok {
			// The presentBit protocol makes this unreachable; treat a
			// violation loudly in development.
			panic("cpu: way-known store access missed (presentBit protocol violated)")
		}
		if !plan.TLBCached {
			c.meter.DTLBLookup()
			c.dtlb.Lookup(d.in.Addr)
		}
		return
	}
	if !plan.TLBCached {
		c.meter.DTLBLookup()
		c.dtlb.Lookup(d.in.Addr)
	}
	c.meter.DcacheFull()
	res := c.hier.Data(d.in.Addr, true)
	c.handleEviction(res.L1.Evicted, res.L1.EvictedHadPB)
	c.model.RecordAccess(d.in.Seq, res.L1.Set, res.L1.Way, tlb.VPN(d.in.Addr))
	c.hier.L1D.SetPresentBit(res.L1.Set, res.L1.Way)
}

// handleEviction applies the §3.4 conservative presentBit
// invalidation.
func (c *CPU) handleEviction(evicted, hadPB bool) {
	if evicted && hadPB {
		c.model.ClearCachedLocations()
		c.hier.L1D.ClearAllPresentBits()
	}
}

// ---- Deadlock avoidance (§3.3) --------------------------------------------

func (c *CPU) checkDeadlock() bool {
	if c.rob.len() == 0 {
		c.headBlocked = 0
		return false
	}
	head := c.rob.front()
	// The head is deadlocked if its address is computed but no LSQ
	// structure can hold it, or if the address-computation gate itself
	// is closed (AddrBuffer full) so its address can never be computed.
	blocked := head.isMem() && !head.placed &&
		(head.state == stAGENDone ||
			(head.state == stDispatched && c.model.FreeCapacity() <= 0))
	if blocked {
		c.headBlocked++
		if c.headBlocked >= c.cfg.DeadlockPatience {
			c.res.DeadlockFlushes++
			c.flushPipeline()
			return true
		}
		return false
	}
	c.headBlocked = 0
	return false
}

// flushPipeline resets every non-committed instruction and queues it
// for re-fetch in program order (the oldest instruction re-enters
// first, guaranteeing forward progress).
func (c *CPU) flushPipeline() {
	all := c.flushScratch[:0]
	for i := 0; i < c.rob.len(); i++ {
		all = append(all, c.rob.at(i))
	}
	for i := 0; i < c.fetchQ.len(); i++ {
		all = append(all, c.fetchQ.at(i))
	}
	for i := 0; i < c.replayQ.len(); i++ {
		all = append(all, c.replayQ.at(i))
	}
	for _, d := range all {
		d.state = stFetched
		d.placed = false
		d.buffered = false
		d.performed = false
		d.predMade = false
		d.mispredict = false
		d.addrUnknown = false
		d.readyAt = 0
		d.waiterHead = nil
		d.waitNext = nil
		d.wheelNext = nil
		d.wakeCycle = 0
	}
	c.rob.clear()
	c.fetchQ.clear()
	c.replayQ.clear()
	c.active = c.active[:0]
	if c.ev != nil {
		c.ev.reset()
	}
	for _, d := range all {
		c.replayQ.pushBack(d)
	}
	c.flushScratch = all[:0]
	c.iqInt, c.iqFP = 0, 0
	for i := range c.lastWriter {
		c.lastWriter[i] = writerRef{}
	}
	c.intMulDiv.reset()
	c.fpMulDiv.reset()
	c.unknownCount = 0
	c.minUnknownSeq = 0
	c.minUnknownOK = false
	c.pendingAgens = 0
	c.model.Flush()
	c.blockingBranch = nil
	c.fetchBlockedUntil = c.cycle + uint64(c.cfg.MispredictPenalty)
	c.headBlocked = 0
	c.flushEpoch++
}

// ---- LSQ buffer drain -------------------------------------------------------

//samie:hotpath
func (c *CPU) drainAddrBuffer() {
	for _, seq := range c.model.Tick() {
		if d := c.findROB(seq); d != nil {
			d.placed = true
			d.buffered = false
			if c.ev != nil {
				// The instruction was parked on placement: perform (or
				// complete) attempts resume this cycle, like the legacy
				// walk's per-cycle recheck.
				c.ev.attn.set(seq)
			}
		}
	}
}

// findROB locates an in-flight instruction by sequence number. The ROB
// is a contiguous window of sequence numbers, so this is direct ring
// addressing, not a search.
func (c *CPU) findROB(seq uint64) *dynInst {
	if c.rob.len() == 0 {
		return nil
	}
	head := c.rob.front().in.Seq
	if seq < head || seq-head >= uint64(c.rob.len()) {
		return nil
	}
	return c.rob.at(int(seq - head))
}

// ---- Issue / execute / writeback -------------------------------------------

// minUnknownStore returns the lowest sequence number among stores with
// uncomputed addresses (^0 when none): the readyBit frontier. The
// frontier is monotone between flushes, so the lazy recompute resumes
// the ring scan from the previous frontier instead of rescanning.
func (c *CPU) minUnknownStore() uint64 {
	if c.minUnknownOK {
		return c.minUnknownSeq
	}
	c.minUnknownOK = true
	if c.unknownCount == 0 || c.rob.len() == 0 {
		c.minUnknownSeq = ^uint64(0)
		return c.minUnknownSeq
	}
	head := c.rob.front().in.Seq
	start := 0
	if c.minUnknownSeq != ^uint64(0) && c.minUnknownSeq > head {
		start = int(c.minUnknownSeq - head)
		if start > c.rob.len() {
			start = c.rob.len()
		}
	}
	for i := start; i < c.rob.len(); i++ {
		if d := c.rob.at(i); d.addrUnknown {
			c.minUnknownSeq = d.in.Seq
			return c.minUnknownSeq
		}
	}
	c.minUnknownSeq = ^uint64(0)
	return c.minUnknownSeq
}

//samie:hotpath
func (c *CPU) writebackAndIssue(dports *int) {
	intIssued, fpIssued := 0, 0
	aluUsed := 0
	epoch := c.flushEpoch

	// Walk the active instructions oldest-first, compacting in place:
	// an instruction that reaches stDone drops out and is never
	// revisited, so completed work piling up behind a blocked head
	// costs nothing per cycle.
	act := c.active
	w := 0
	for i := 0; i < len(act); i++ {
		d := act[i]
		switch d.state {
		case stIssued:
			if d.readyAt <= c.cycle {
				c.completeExec(d)
				if c.flushEpoch != epoch {
					// completeExec flushed the pipeline (§3.3 scenario
					// 2): flushPipeline rebuilt the active list; do not
					// touch it here.
					return
				}
			}
		case stDispatched:
			// Once a lane's issue width is spent, younger instructions
			// of that lane skip their (costlier) dependence checks —
			// they could not issue either way.
			if d.fp {
				if fpIssued >= c.cfg.IssueFP {
					break
				}
				if !d.srcsReady(c.cycle) {
					break
				}
				if c.issueFP(d) {
					fpIssued++
					c.iqFP--
				}
			} else {
				if intIssued >= c.cfg.IssueInt {
					break
				}
				if d.mem {
					if !d.agenReady(c.cycle) {
						break
					}
				} else if !d.srcsReady(c.cycle) {
					break
				}
				if c.issueInt(d, &aluUsed) {
					intIssued++
					c.iqInt--
				}
			}
		case stAGENDone:
			// Memory instructions waiting to perform their access.
			if d.in.Cls == isa.ClassLoad {
				c.tryPerformLoad(d, dports)
			} else if d.placed && !d.performed && d.dataReady(c.cycle) {
				// A placed store with its data available is complete:
				// it will write the cache at commit.
				d.performed = true
				d.state = stDone
				d.readyAt = c.cycle
				c.model.NotePerformed(d.in.Seq)
			}
		}
		if d.state < stDone {
			act[w] = d
			w++
		}
	}
	c.active = act[:w]
}

// completeExec handles writeback for a finished instruction.
func (c *CPU) completeExec(d *dynInst) {
	if d.in.Cls == isa.ClassBranch {
		miss := c.bp.Resolve(d.in.PC, d.pred, d.in.Taken, d.in.Target)
		if miss {
			c.res.BranchMispredicts++
		}
		if c.blockingBranch == d {
			c.blockingBranch = nil
			c.fetchBlockedUntil = c.cycle + uint64(c.cfg.MispredictPenalty)
		}
		d.state = stDone
		c.wakeWaiters(d)
		return
	}
	if d.isMem() {
		// AGEN finished: hand the address to the LSQ.
		d.state = stAGENDone
		if c.pendingAgens > 0 {
			c.pendingAgens--
		}
		pl := c.model.AddressReady(d.in.Seq, d.in.Cls == isa.ClassLoad, d.in.Addr, d.in.Size)
		if d.in.Cls == isa.ClassStore && d.addrUnknown {
			wasOK, wasFront := c.minUnknownOK, c.minUnknownSeq
			d.addrUnknown = false
			c.unknownCount--
			if wasOK && d.in.Seq == wasFront {
				// The frontier store resolved: recompute lazily from
				// here (the next frontier can only be younger).
				c.minUnknownOK = false
			}
			if c.ev != nil && (!wasOK || d.in.Seq == wasFront) {
				// The readyBit frontier may have advanced: wake every
				// load it passed. A resolve behind a still-valid
				// frontier cannot unblock anyone and wakes nothing.
				c.wakeReadyBitWaiters(c.minUnknownStore())
			}
		}
		switch {
		case pl.Placed:
			d.placed = true
		case pl.Buffered:
			d.buffered = true
		case pl.Failed:
			// §3.3 scenario 2: nothing had room.
			c.res.PlacementFailures++
			c.res.DeadlockFlushes++
			c.flushPipeline()
		}
		return
	}
	d.state = stDone
	c.wakeWaiters(d)
}

// issueInt starts an integer-side instruction (including AGEN for
// memory operations). Returns false on a structural hazard.
func (c *CPU) issueInt(d *dynInst, aluUsed *int) bool {
	switch d.in.Cls {
	case isa.ClassIntALU, isa.ClassBranch, isa.ClassNop:
		if *aluUsed >= c.cfg.IntALU {
			return false
		}
		*aluUsed++
		d.state = stIssued
		d.readyAt = c.cycle + latIntALU
	case isa.ClassLoad, isa.ClassStore:
		if *aluUsed >= c.cfg.IntALU {
			return false
		}
		// §3.3 alternative rule: never start an address computation
		// that is not guaranteed a landing slot.
		if c.pendingAgens >= c.model.FreeCapacity() {
			return false
		}
		c.pendingAgens++
		*aluUsed++
		d.state = stIssued
		d.readyAt = c.cycle + latAGEN
	case isa.ClassIntMul:
		if !c.intMulDiv.acquire(c.cycle, 1) {
			return false
		}
		d.state = stIssued
		d.readyAt = c.cycle + latIntMul
	case isa.ClassIntDiv:
		if !c.intMulDiv.acquire(c.cycle, latIntDiv) {
			return false
		}
		d.state = stIssued
		d.readyAt = c.cycle + latIntDiv
	default:
		d.state = stIssued
		d.readyAt = c.cycle + 1
	}
	if c.flight != nil {
		c.flight.noteIssue(d.in.Seq)
	}
	return true
}

// issueFP starts an FP instruction.
func (c *CPU) issueFP(d *dynInst) bool {
	switch d.in.Cls {
	case isa.ClassFPALU:
		// FPALU pool is pipelined; modeled as an issue-width-limited
		// pool per cycle.
		d.state = stIssued
		d.readyAt = c.cycle + latFPALU
	case isa.ClassFPMul:
		if !c.fpMulDiv.acquire(c.cycle, 1) {
			return false
		}
		d.state = stIssued
		d.readyAt = c.cycle + latFPMul
	case isa.ClassFPDiv:
		if !c.fpMulDiv.acquire(c.cycle, latFPDiv) {
			return false
		}
		d.state = stIssued
		d.readyAt = c.cycle + latFPDiv
	default:
		d.state = stIssued
		d.readyAt = c.cycle + 1
	}
	if c.flight != nil {
		c.flight.noteIssue(d.in.Seq)
	}
	return true
}

// loadBlock classifies why tryPerformLoad could not perform a load
// this cycle. The wakeup scheduler parks the load on the matching
// event; the legacy walk ignores the value and rechecks every cycle.
type loadBlock uint8

const (
	loadPerformed loadBlock = iota
	loadNotPlaced           // waiting for the AddrBuffer drain
	loadReadyBit            // an older store's address is unknown
	loadFwdWait             // the forwarding source store has not performed
	loadNoPort              // Dcache ports exhausted this cycle
)

// tryPerformLoad attempts the memory access of a load whose address is
// known: it must be placed in the LSQ, its readyBit must be set (no
// older store with an unknown address) and a Dcache port must be free
// unless the data is forwarded.
func (c *CPU) tryPerformLoad(d *dynInst, dports *int) loadBlock {
	if d.performed || !d.placed {
		if d.performed {
			return loadPerformed
		}
		return loadNotPlaced
	}
	if c.minUnknownStore() < d.in.Seq {
		return loadReadyBit // readyBit clear: an older store address is unknown
	}
	if src, ok := c.model.ForwardingSource(d.in.Seq); ok {
		// Forward once the store's data is available.
		if st := c.findROB(src); st != nil && !st.performed {
			return loadFwdWait
		}
		d.performed = true
		d.state = stDone
		d.readyAt = c.cycle + latFwd
		c.res.ForwardedLoads++
		c.model.NotePerformed(d.in.Seq)
		c.wakeWaiters(d)
		return loadPerformed
	}
	if *dports <= 0 {
		return loadNoPort
	}
	*dports--
	d.performed = true
	c.model.NotePerformed(d.in.Seq)

	plan := c.model.Plan(d.in.Seq)
	var lat int
	if plan.WayKnown {
		c.meter.DcacheWayKnown()
		l, ok := c.hier.DataDirect(d.in.Addr, plan.Set, plan.Way, false)
		if !ok {
			panic("cpu: way-known load access missed (presentBit protocol violated)")
		}
		lat = l - plan.LatencyBonus
		if lat < 1 {
			lat = 1
		}
		if !plan.TLBCached {
			c.meter.DTLBLookup()
			if hit, tl := c.dtlb.Lookup(d.in.Addr); !hit {
				lat += tl
			}
		}
	} else {
		var tlbLat int
		if !plan.TLBCached {
			c.meter.DTLBLookup()
			if hit, tl := c.dtlb.Lookup(d.in.Addr); !hit {
				tlbLat = tl
			}
		}
		c.meter.DcacheFull()
		res := c.hier.Data(d.in.Addr, false)
		c.handleEviction(res.L1.Evicted, res.L1.EvictedHadPB)
		c.model.RecordAccess(d.in.Seq, res.L1.Set, res.L1.Way, tlb.VPN(d.in.Addr))
		c.hier.L1D.SetPresentBit(res.L1.Set, res.L1.Way)
		lat = res.Latency + tlbLat
	}
	d.state = stDone
	d.readyAt = c.cycle + uint64(lat)
	c.wakeWaiters(d)
	return loadPerformed
}

// ---- Dispatch ----------------------------------------------------------------

//samie:hotpath
func (c *CPU) dispatch() {
	n := 0
	stalled := false
	for n < c.cfg.DecodeWidth && c.fetchQ.len() > 0 {
		d := c.fetchQ.front()
		if c.rob.len() >= c.cfg.ROBSize {
			stalled = true
			break
		}
		if d.fp {
			if c.iqFP >= c.cfg.IQFP {
				stalled = true
				break
			}
		} else if c.iqInt >= c.cfg.IQInt {
			stalled = true
			break
		}
		if d.isMem() && !c.model.Dispatch(d.in.Seq, d.in.Cls == isa.ClassLoad) {
			stalled = true
			break
		}
		// Rename: bind producers.
		d.srcA, d.srcB = nil, nil
		if d.in.SrcA != isa.RegNone {
			w := c.lastWriter[d.in.SrcA]
			d.srcA, d.genA = w.d, w.gen
		}
		if d.in.SrcB != isa.RegNone {
			w := c.lastWriter[d.in.SrcB]
			d.srcB, d.genB = w.d, w.gen
		}
		if d.in.Dest != isa.RegNone {
			c.lastWriter[d.in.Dest] = writerRef{d: d, gen: d.gen}
		}
		if d.in.Cls == isa.ClassStore {
			d.addrUnknown = true
			c.unknownCount++
			if c.minUnknownOK && d.in.Seq < c.minUnknownSeq {
				// Only possible when the cached frontier was "none"
				// (^0): the new store becomes the frontier.
				c.minUnknownSeq = d.in.Seq
			}
		}
		if d.in.Cls == isa.ClassLoad {
			c.res.Loads++
		} else if d.in.Cls == isa.ClassStore {
			c.res.Stores++
		}
		d.state = stDispatched
		if d.fp {
			c.iqFP++
		} else {
			c.iqInt++
		}
		if c.robNextSeq != 0 && c.rob.len() > 0 && d.in.Seq != c.robNextSeq {
			panic("cpu: instruction stream delivered non-consecutive sequence numbers")
		}
		c.robNextSeq = d.in.Seq + 1
		c.rob.pushBack(d)
		if c.ev != nil {
			c.schedAdmit(d)
		} else {
			//lint:ignore hotalloc active is preallocated to ROBSize, the max in flight
			c.active = append(c.active, d)
		}
		c.fetchQ.popFront()
		n++
	}
	if stalled {
		c.res.DispatchStalls++
	}
}

// ---- Fetch --------------------------------------------------------------------

//samie:hotpath
func (c *CPU) fetch() {
	if c.cycle < c.fetchBlockedUntil || c.blockingBranch != nil {
		c.res.FetchStallCycles++
		if c.blockingBranch != nil {
			c.res.FetchStallBranch++
		} else {
			c.res.FetchStallOther++
		}
		return
	}
	n := 0
	for n < c.cfg.FetchWidth && c.fetchQ.len() < c.cfg.FetchQueue {
		d := c.nextInst()
		if d == nil {
			return
		}
		// Instruction cache: one lookup per new line.
		lineAddr := d.in.PC &^ 31
		if lineAddr != c.lastFetchLine {
			c.lastFetchLine = lineAddr
			if hit, _ := c.itlb.Lookup(d.in.PC); !hit {
				c.fetchBlockedUntil = c.cycle + uint64(c.itlb.Config().MissPenalty)
			}
			if lat := c.hier.Inst(d.in.PC); lat > c.hier.L1I.Config().HitLatency {
				c.fetchBlockedUntil = c.cycle + uint64(lat)
				c.fetchQ.pushBack(d)
				return
			}
		}
		if d.in.Cls == isa.ClassBranch {
			d.pred = c.bp.Predict(d.in.PC)
			d.predMade = true
			c.res.BranchLookups++
			wrongDir := d.pred.Taken != d.in.Taken
			wrongTgt := d.in.Taken && (d.pred.Target == 0 || d.pred.Target != d.in.Target)
			d.mispredict = wrongDir || wrongTgt
			c.fetchQ.pushBack(d)
			n++
			if d.mispredict {
				// Fetch chases the wrong path until the branch resolves.
				c.blockingBranch = d
				return
			}
			if d.pred.Taken {
				// A correctly predicted taken branch ends the fetch
				// group.
				return
			}
			continue
		}
		c.fetchQ.pushBack(d)
		n++
	}
}

// nextInst pulls the next instruction, preferring flushed instructions
// awaiting replay.
func (c *CPU) nextInst() *dynInst {
	if c.replayQ.len() > 0 {
		return c.replayQ.popFront()
	}
	if c.streamDone {
		return nil
	}
	if !c.strm.Next(&c.nextScratch) {
		c.streamDone = true
		return nil
	}
	return c.allocInst(c.nextScratch)
}
