package cpu

import (
	"testing"

	"samielsq/internal/core"
	"samielsq/internal/lsq"
	"samielsq/internal/trace"
)

// steadyAllocs reports the allocations of 2000 simulated cycles after
// the pipeline and the model have reached steady state.
func steadyAllocs(t *testing.T, model lsq.Model) float64 {
	t.Helper()
	p := trace.MustPersonality("gzip")
	c := New(PaperConfig(), trace.NewGenerator(p), model, nil, nil, nil, nil)
	c.Run(20000) // fill the arena, grow every scratch buffer
	return testing.AllocsPerRun(5, func() {
		for i := 0; i < 2000; i++ {
			c.step()
		}
	})
}

// TestStepZeroAllocSteadyState is the hot-path guard: once warm, the
// per-cycle path must not allocate, whatever the LSQ model. A failure
// here means a map, append or escape crept back into the
// per-instruction path — see docs/performance.md.
func TestStepZeroAllocSteadyState(t *testing.T) {
	models := map[string]func() lsq.Model{
		"conventional": func() lsq.Model { return lsq.NewConventional(128, nil) },
		"unbounded":    func() lsq.Model { return lsq.NewUnbounded() },
		"arb":          func() lsq.Model { return lsq.NewARB(8, 16, 128) },
		"samie":        func() lsq.Model { return core.NewPaper(nil) },
	}
	for name, mk := range models {
		t.Run(name, func(t *testing.T) {
			if n := steadyAllocs(t, mk()); n > 0 {
				t.Errorf("%s: %.1f allocs per 2000 steady-state cycles, want 0", name, n)
			}
		})
	}
}

// BenchmarkHotPathStep measures raw simulator cycles per second on the
// paper configuration with the SAMIE-LSQ (the dominant workload of
// every figure harness).
func BenchmarkHotPathStep(b *testing.B) {
	p := trace.MustPersonality("gzip")
	c := New(PaperConfig(), trace.NewGenerator(p), core.NewPaper(nil), nil, nil, nil, nil)
	c.Run(20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.step()
	}
}
