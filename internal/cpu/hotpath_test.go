package cpu

import (
	"testing"

	"samielsq/internal/core"
	"samielsq/internal/lsq"
	"samielsq/internal/trace"
)

// steadyAllocs reports the allocations of 2000 simulated cycles after
// the pipeline and the model have reached steady state.
func steadyAllocs(t *testing.T, model lsq.Model, bench string) float64 {
	t.Helper()
	p := trace.MustPersonality(bench)
	c := New(PaperConfig(), trace.NewGenerator(p), model, nil, nil, nil, nil)
	c.Run(20000) // fill the arena, grow every scratch buffer
	return testing.AllocsPerRun(5, func() {
		for i := 0; i < 2000; i++ {
			c.step()
		}
	})
}

// TestStepZeroAllocSteadyState is the hot-path guard: once warm, the
// per-cycle path must not allocate, whatever the LSQ model. A failure
// here means a map, append or escape crept back into the
// per-instruction path — see docs/performance.md. The pointer-chaser
// personality additionally pins the wakeup scheduler's structures
// (waiter lists, timing wheel, wait bitmaps) under the long
// dependence chains they exist for.
func TestStepZeroAllocSteadyState(t *testing.T) {
	models := map[string]func() lsq.Model{
		"conventional": func() lsq.Model { return lsq.NewConventional(128, nil) },
		"unbounded":    func() lsq.Model { return lsq.NewUnbounded() },
		"arb":          func() lsq.Model { return lsq.NewARB(8, 16, 128) },
		"samie":        func() lsq.Model { return core.NewPaper(nil) },
	}
	for _, bench := range []string{"gzip", "pointer-chaser"} {
		for name, mk := range models {
			t.Run(bench+"/"+name, func(t *testing.T) {
				if n := steadyAllocs(t, mk(), bench); n > 0 {
					t.Errorf("%s/%s: %.1f allocs per 2000 steady-state cycles, want 0", bench, name, n)
				}
			})
		}
	}
}

func benchSteps(b *testing.B, bench string, legacy bool) {
	p := trace.MustPersonality(bench)
	cfg := PaperConfig()
	cfg.LegacyIssueWalk = legacy
	c := New(cfg, trace.NewGenerator(p), core.NewPaper(nil), nil, nil, nil, nil)
	c.Run(20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.step()
	}
}

// BenchmarkHotPathStep measures raw simulator cycles per second on the
// paper configuration with the SAMIE-LSQ (the dominant workload of
// every figure harness).
func BenchmarkHotPathStep(b *testing.B) { benchSteps(b, "gzip", false) }

// BenchmarkHotPathStepPointerChaser measures the wakeup scheduler on
// its worst-case-for-the-legacy-walk workload: a serial random load
// chain keeping the ROB full of parked instructions. Compare against
// the LegacyWalk variant for the scheduler's cycles/sec win.
func BenchmarkHotPathStepPointerChaser(b *testing.B) { benchSteps(b, "pointer-chaser", false) }

// BenchmarkHotPathStepPointerChaserLegacyWalk is the same workload on
// the pre-wakeup O(in-flight) issue walk.
func BenchmarkHotPathStepPointerChaserLegacyWalk(b *testing.B) { benchSteps(b, "pointer-chaser", true) }

// BenchmarkHotPathStepMcf is the paper's real low-IPC pointer chaser.
func BenchmarkHotPathStepMcf(b *testing.B) { benchSteps(b, "mcf", false) }
