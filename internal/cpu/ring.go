package cpu

// instRing is a growable ring buffer of in-flight instructions. The
// pipeline queues (ROB, fetch queue, replay queue) push at the tail and
// pop at the head every cycle; a ring makes both O(1) with no
// steady-state allocation — the buffer grows (rarely) to the high-water
// mark and is reused for the rest of the simulation.
type instRing struct {
	buf  []*dynInst
	head int
	n    int
}

func newInstRing(capacity int) instRing {
	if capacity < 4 {
		capacity = 4
	}
	return instRing{buf: make([]*dynInst, capacity)}
}

func (r *instRing) len() int { return r.n }

// at returns the i-th element from the head (0 = oldest).
func (r *instRing) at(i int) *dynInst {
	idx := r.head + i
	if idx >= len(r.buf) {
		idx -= len(r.buf)
	}
	return r.buf[idx]
}

func (r *instRing) front() *dynInst { return r.buf[r.head] }

func (r *instRing) pushBack(d *dynInst) {
	if r.n == len(r.buf) {
		r.grow()
	}
	idx := r.head + r.n
	if idx >= len(r.buf) {
		idx -= len(r.buf)
	}
	r.buf[idx] = d
	r.n++
}

func (r *instRing) popFront() *dynInst {
	d := r.buf[r.head]
	r.buf[r.head] = nil // release the reference for reuse accounting
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return d
}

// clear empties the ring, dropping references so recycled instructions
// are not pinned through the backing array.
func (r *instRing) clear() {
	for i := 0; i < r.n; i++ {
		idx := r.head + i
		if idx >= len(r.buf) {
			idx -= len(r.buf)
		}
		r.buf[idx] = nil
	}
	r.head, r.n = 0, 0
}

func (r *instRing) grow() {
	nb := make([]*dynInst, 2*len(r.buf))
	for i := 0; i < r.n; i++ {
		nb[i] = r.at(i)
	}
	r.buf, r.head = nb, 0
}
