package cpu

import "testing"

func TestFUPoolOccupancy(t *testing.T) {
	p := newFUPool(2)

	// Two units: both acquirable at cycle 10 with different occupancies.
	if !p.acquire(10, 5) || !p.acquire(10, 1) {
		t.Fatal("free units not acquired")
	}
	// Pool exhausted: the fast-fail path must reject without state change.
	if p.acquire(10, 1) {
		t.Fatal("acquired from a fully busy pool")
	}
	// The 1-cycle unit frees at cycle 11, the 5-cycle one at 15.
	if p.acquire(10, 1) {
		t.Fatal("unit freed early")
	}
	if !p.acquire(11, 2) {
		t.Fatal("unit not free at its release cycle")
	}
	if p.acquire(12, 1) {
		t.Fatal("both units should be busy at cycle 12 (until 13 and 15)")
	}
	if !p.acquire(13, 1) {
		t.Fatal("unit not free after 2-cycle occupancy")
	}
	if !p.acquire(15, 1) {
		t.Fatal("unit not free after the 5-cycle occupancy")
	}

	// reset clears every reservation and the min-tracking index.
	p.reset()
	if !p.acquire(0, 3) || !p.acquire(0, 3) {
		t.Fatal("reset did not free the pool")
	}
	if p.acquire(1, 1) {
		t.Fatal("reset pool over-acquired")
	}
}

// TestFUPoolMinTrackingConsistency cross-checks the min-tracking fast
// path against a brute-force scan over a pseudo-random schedule.
func TestFUPoolMinTrackingConsistency(t *testing.T) {
	p := newFUPool(3)
	ref := make([]uint64, 3)
	rngState := uint64(12345)
	rng := func(n int) int {
		rngState = rngState*6364136223846793005 + 1442695040888963407
		return int((rngState >> 33) % uint64(n))
	}
	for cycle := uint64(0); cycle < 2000; cycle++ {
		occ := 1 + rng(20)
		want := false
		for i := range ref {
			if ref[i] <= cycle {
				ref[i] = cycle + uint64(occ)
				want = true
				break
			}
		}
		if got := p.acquire(cycle, occ); got != want {
			t.Fatalf("cycle %d occ %d: acquire = %v, brute force = %v", cycle, occ, got, want)
		}
	}
}
