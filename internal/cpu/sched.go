package cpu

import (
	"math/bits"

	"samielsq/internal/isa"
)

// Event-driven wakeup scheduler (the default issue engine; the legacy
// per-cycle active-list walk remains behind Config.LegacyIssueWalk for
// differential testing).
//
// The legacy walk visits every in-flight instruction every cycle —
// O(in-flight) switch dispatches, operand checks and LSQ re-probes per
// cycle, which is exactly the regime low-IPC pointer chasers (mcf, the
// pointer-chaser stress personality) spend hundreds of cycles in. The
// wakeup scheduler instead keeps a blocked instruction parked on the
// one event that can unblock it and visits only the instructions that
// might act this cycle, so the issue stage touches O(issue width +
// newly woken) instructions.
//
// Correctness bar: byte-identical simulation results (the golden suite
// and TestSchedulerDifferential are the arbiters). Two properties make
// that achievable:
//
//  1. Age-ordered visiting. The legacy walk's per-cycle order is ROB
//     age order; every same-cycle interaction (a producer completing
//     before its consumer issues, an AGEN consuming LSQ capacity before
//     a younger AGEN's gate check, lane-width cutoffs) follows from it.
//     The scheduler therefore keeps "needs attention this cycle" as a
//     bitmap indexed by seq (the ROB is a contiguous seq window), and
//     the walk scans it in seq order. Wakes raised mid-walk are always
//     for younger instructions — producers wake consumers, stores wake
//     younger loads — so the scan picks them up in their correct age
//     position.
//
//  2. Conservative, never-late wakeups. A woken instruction re-runs the
//     exact per-cycle check the legacy walk ran, so waking too often
//     costs only time. What must never happen is waking late: for every
//     blocking condition there is a hook that fires the first cycle the
//     legacy walk's check could newly pass:
//
//     operand not ready      -> parked on the producer's waiter list;
//                               drained into the wheel/attention at the
//                               producer's stDone transition, at its
//                               readyAt cycle (producerDone's gate)
//     execution latency      -> timing-wheel entry at readyAt
//     not placed in the LSQ  -> drainAddrBuffer wakes the instruction
//                               the cycle the model reports placement
//     readyBit (older store  -> rbWait bitmap; the store-address
//     address unknown)          delivery path wakes every waiter the
//                               frontier advanced past
//     structural hazards     -> attention bit stays set (per-cycle
//     (lane width, FU, ports,   contention must be re-arbitrated
//     AGEN capacity gate,       against age priority every cycle)
//     forwarding data wait)
//
// A load whose forwarding source store has not yet delivered its data
// deliberately stays in the attention set rather than parking on the
// store: the legacy walk re-probes Model.ForwardingSource every cycle,
// and LSQ models charge CAM/entry energy per probe (the paper's
// conventional LSQ burns search energy on every retry). Retrying keeps
// the per-cycle model call sequence — and therefore the metered energy
// — bit-identical. These waits are short (the store's data is already
// the next thing to arrive) and rare on the low-IPC chains the
// scheduler targets.
//
// A pipeline flush discards every wait structure wholesale; flushed
// instructions re-enter through dispatch, which re-parks them from the
// rebuilt ROB ring.

// wheelSize bounds the timing wheel. Deltas are execution latencies
// (bounded by a memory-hierarchy miss, well under wheelSize); an entry
// that lapped the wheel anyway is re-queued at drain, so correctness
// does not depend on the bound.
const (
	wheelSize = 1024
	wheelMask = wheelSize - 1
)

// seqBitmap is a bitset over the ROB's contiguous sequence-number
// window, indexed by seq & mask. The backing size is the next power of
// two >= ROBSize, so live sequence numbers never alias.
type seqBitmap struct {
	words []uint64
	mask  uint64
}

func newSeqBitmap(window int) seqBitmap {
	size := 64
	for size < window {
		size <<= 1
	}
	return seqBitmap{words: make([]uint64, size/64), mask: uint64(size - 1)}
}

func (b *seqBitmap) set(seq uint64) {
	i := seq & b.mask
	b.words[i>>6] |= 1 << (i & 63)
}

func (b *seqBitmap) clear(seq uint64) {
	i := seq & b.mask
	b.words[i>>6] &^= 1 << (i & 63)
}

// nextSet returns the smallest set seq in [from, end). The caller
// guarantees end-from is at most the bitmap size (the ROB window).
// Bits set during an in-progress scan at positions >= the cursor are
// observed — the property same-cycle wakeups rely on.
func (b *seqBitmap) nextSet(from, end uint64) (uint64, bool) {
	for seq := from; seq < end; {
		i := seq & b.mask
		w := b.words[i>>6] >> (i & 63)
		if w != 0 {
			s := seq + uint64(bits.TrailingZeros64(w))
			if s < end {
				return s, true
			}
			return 0, false
		}
		seq += 64 - (i & 63)
	}
	return 0, false
}

func (b *seqBitmap) reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// eventSched is the scheduler state. All storage is fixed at
// construction; parking and waking are pointer/bit operations on
// intrusive dynInst links, so the steady-state path allocates nothing.
type eventSched struct {
	// attn holds the instructions the walk must visit this cycle (and,
	// for per-cycle structural losers, again next cycle).
	attn seqBitmap
	// rbWait holds loads blocked on the readyBit frontier (an older
	// store's address is unknown).
	rbWait seqBitmap
	// wheel buckets future wakeups by cycle & wheelMask (intrusive
	// lists through dynInst.wheelNext).
	wheel [wheelSize]*dynInst
}

func newEventSched(robSize int) *eventSched {
	return &eventSched{
		attn:   newSeqBitmap(robSize),
		rbWait: newSeqBitmap(robSize),
	}
}

// reset discards every wait structure (pipeline flush). The per-inst
// intrusive links are cleared by the flush loop that resets the
// instructions themselves.
func (ev *eventSched) reset() {
	ev.attn.reset()
	ev.rbWait.reset()
	for i := range ev.wheel {
		ev.wheel[i] = nil
	}
}

// park schedules d's next visit at cycle `at`.
//
//samie:hotpath
func (ev *eventSched) park(d *dynInst, at uint64) {
	d.wakeCycle = at
	i := at & wheelMask
	d.wheelNext = ev.wheel[i]
	ev.wheel[i] = d
}

// parkOnProducer parks d until producer p's value is available. A
// producer that already wrote back (stDone, waiter list drained) can
// only be waiting out its readyAt, which is a known cycle: wheel. An
// in-flight producer gets d on its waiter list, drained at its stDone
// transition. Callers only park when producerDone reported false, so p
// is live (generation matched) and, if stDone, readyAt is in the
// future.
//
//samie:hotpath
func (ev *eventSched) parkOnProducer(d, p *dynInst) {
	if p.state >= stDone {
		ev.park(d, p.readyAt)
		return
	}
	d.waitNext = p.waiterHead
	p.waiterHead = d
}

// drainWheel moves this cycle's bucket into the attention set. Entries
// whose wake cycle lapped the wheel re-queue for their real cycle.
//
//samie:hotpath
func (ev *eventSched) drainWheel(cycle uint64) {
	i := cycle & wheelMask
	d := ev.wheel[i]
	ev.wheel[i] = nil
	for d != nil {
		next := d.wheelNext
		d.wheelNext = nil
		if d.wakeCycle > cycle {
			ev.park(d, d.wakeCycle)
		} else {
			ev.attn.set(d.in.Seq)
		}
		d = next
	}
}

// wakeWaiters drains d's waiter list at its stDone transition. Waiters
// whose check (producerDone) passes this cycle go straight to the
// attention set — they are younger than d, so the in-progress walk
// still visits them in age order this cycle, exactly as the legacy
// walk would. A result arriving later (a load's readyAt) goes to the
// wheel. The list empties here, before d can ever commit and be
// recycled: a waiter that drains after the recycle re-checks
// producerDone, whose generation test classifies the recycled slot as
// long since done without reading its stale state.
//
//samie:hotpath
func (c *CPU) wakeWaiters(d *dynInst) {
	if c.ev == nil {
		return
	}
	w := d.waiterHead
	d.waiterHead = nil
	for w != nil {
		next := w.waitNext
		w.waitNext = nil
		if d.readyAt > c.cycle {
			c.ev.park(w, d.readyAt)
		} else {
			c.ev.attn.set(w.in.Seq)
		}
		w = next
	}
}

// parkIssueOperands mirrors the issue gate of the legacy walk
// (srcsReady, or agenReady's address-operand-only rule for stores),
// parking d on the first producer whose value is still outstanding.
// Severing observed-done producers matches the legacy helpers, so the
// per-visit recheck degrades to nil tests either way.
//
//samie:hotpath
func (c *CPU) parkIssueOperands(d *dynInst) bool {
	if d.srcA != nil {
		if !producerDone(d.srcA, d.genA, c.cycle) {
			c.ev.parkOnProducer(d, d.srcA)
			return true
		}
		d.srcA = nil
	}
	if d.in.Cls == isa.ClassStore {
		// Only the address register gates a store's AGEN; the data
		// operand is waited on after placement (stepStore).
		return false
	}
	if d.srcB != nil {
		if !producerDone(d.srcB, d.genB, c.cycle) {
			c.ev.parkOnProducer(d, d.srcB)
			return true
		}
		d.srcB = nil
	}
	return false
}

// schedAdmit registers a freshly dispatched instruction: parked on its
// first outstanding producer, or put up for attention next cycle (the
// legacy walk likewise first considers a new dispatch the following
// cycle, dispatch running after the issue stage).
//
//samie:hotpath
func (c *CPU) schedAdmit(d *dynInst) {
	if !c.parkIssueOperands(d) {
		c.ev.attn.set(d.in.Seq)
	}
}

// wakeReadyBitWaiters wakes every load the advancing readyBit frontier
// unblocked: those older than the new frontier store (newFrontier is
// ^0 when no store address is outstanding). Called from the
// store-address-delivery path whenever the frontier may have moved;
// woken loads re-run tryPerformLoad in their age position this cycle,
// matching the legacy walk's per-cycle recheck.
//
//samie:hotpath
func (c *CPU) wakeReadyBitWaiters(newFrontier uint64) {
	if c.rob.len() == 0 {
		return
	}
	head := c.rob.front().in.Seq
	end := head + uint64(c.rob.len())
	limit := end
	if newFrontier != ^uint64(0) && newFrontier+1 < end {
		limit = newFrontier + 1
	}
	ev := c.ev
	for seq := head; ; {
		s, ok := ev.rbWait.nextSet(seq, limit)
		if !ok {
			return
		}
		ev.rbWait.clear(s)
		ev.attn.set(s)
		seq = s + 1
	}
}

// wakeupIssue is the event-driven issue/writeback stage: drain this
// cycle's wheel bucket, then visit the attention set in age order with
// the same per-instruction actions as the legacy walk. Lane-width and
// structural losers keep their attention bit (contention re-arbitrates
// by age next cycle); everything else leaves the set by parking on its
// blocking event or by completing.
//
//samie:hotpath
func (c *CPU) wakeupIssue(dports *int) {
	ev := c.ev
	ev.drainWheel(c.cycle)
	if c.rob.len() == 0 {
		return
	}
	intIssued, fpIssued := 0, 0
	aluUsed := 0
	epoch := c.flushEpoch
	head := c.rob.front().in.Seq
	end := head + uint64(c.rob.len())
	for seq := head; ; {
		s, ok := ev.attn.nextSet(seq, end)
		if !ok {
			break
		}
		seq = s + 1
		d := c.findROB(s)
		if d == nil {
			ev.attn.clear(s)
			continue
		}
		switch d.state {
		case stIssued:
			if d.readyAt > c.cycle {
				break // early wake; the wheel fires again at readyAt
			}
			c.completeExec(d)
			if c.flushEpoch != epoch {
				// completeExec flushed the pipeline (§3.3 scenario 2):
				// every wait structure was rebuilt; stop the walk.
				return
			}
			if d.state >= stDone {
				ev.attn.clear(s)
			}
			// stAGENDone keeps its bit: the first perform attempt is
			// next cycle, as in the legacy walk.
		case stDispatched:
			if d.fp {
				if fpIssued >= c.cfg.IssueFP {
					break // lane spent: stay for next cycle's arbitration
				}
				if c.parkIssueOperands(d) {
					ev.attn.clear(s)
					break
				}
				if c.issueFP(d) {
					fpIssued++
					c.iqFP--
					ev.attn.clear(s)
					ev.park(d, d.readyAt)
				}
				// FU busy: bit stays set, retry next cycle.
			} else {
				if intIssued >= c.cfg.IssueInt {
					break
				}
				if c.parkIssueOperands(d) {
					ev.attn.clear(s)
					break
				}
				if c.issueInt(d, &aluUsed) {
					intIssued++
					c.iqInt--
					ev.attn.clear(s)
					ev.park(d, d.readyAt)
				}
				// ALU/FU busy or AGEN capacity gate: retry next cycle.
			}
		case stAGENDone:
			if d.in.Cls == isa.ClassLoad {
				switch c.tryPerformLoad(d, dports) {
				case loadPerformed:
					ev.attn.clear(s)
				case loadNotPlaced:
					ev.attn.clear(s) // drainAddrBuffer wakes it at placement
				case loadReadyBit:
					ev.attn.clear(s)
					ev.rbWait.set(s)
				case loadFwdWait, loadNoPort:
					// Port contention re-arbitrates by age every cycle,
					// and a forwarding wait must re-probe the model per
					// cycle to keep its metered search energy identical
					// to the legacy walk: bit stays set.
				}
			} else {
				c.stepStore(d, s)
			}
		default:
			// stFetched/stDone have nothing to do here.
			ev.attn.clear(s)
		}
	}
}

// stepStore is the wakeup-scheduler counterpart of the legacy walk's
// placed-store completion: a placed store whose data is available
// completes (it writes the cache at commit). An unplaced store waits
// for the AddrBuffer drain; missing data parks on the data producer.
//
//samie:hotpath
func (c *CPU) stepStore(d *dynInst, s uint64) {
	ev := c.ev
	if !d.placed || d.performed {
		ev.attn.clear(s)
		return
	}
	if !d.dataReady(c.cycle) {
		ev.attn.clear(s)
		ev.parkOnProducer(d, d.srcB)
		return
	}
	d.performed = true
	d.state = stDone
	d.readyAt = c.cycle
	c.model.NotePerformed(d.in.Seq)
	ev.attn.clear(s)
	c.wakeWaiters(d)
}
