package cpu

import (
	"math/rand"
	"testing"

	"samielsq/internal/core"
	"samielsq/internal/energy"
	"samielsq/internal/isa"
	"samielsq/internal/lsq"
	"samielsq/internal/trace"
)

// mk builds a CPU over a slice trace with an unbounded LSQ unless a
// model is given.
func mk(insts []isa.Inst, model lsq.Model) *CPU {
	if model == nil {
		model = lsq.NewUnbounded()
	}
	return New(PaperConfig(), isa.NewSliceStream(insts), model, nil, nil, nil, nil)
}

func alu(dest, src int16) isa.Inst {
	return isa.Inst{Cls: isa.ClassIntALU, Dest: dest, SrcA: src, SrcB: isa.RegNone}
}

func load(dest int16, addr uint64) isa.Inst {
	return isa.Inst{Cls: isa.ClassLoad, Dest: dest, SrcA: isa.RegNone, SrcB: isa.RegNone, Addr: addr, Size: 4}
}

func store(addr uint64, dataSrc int16) isa.Inst {
	return isa.Inst{Cls: isa.ClassStore, Dest: isa.RegNone, SrcA: isa.RegNone, SrcB: dataSrc, Addr: addr, Size: 4}
}

func TestConfigValidate(t *testing.T) {
	c := PaperConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.FetchWidth = 0
	if err := c.Validate(); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRunsToCompletion(t *testing.T) {
	var insts []isa.Inst
	for i := 0; i < 100; i++ {
		insts = append(insts, alu(int16(i%8), isa.RegNone))
	}
	r := mk(insts, nil).Run(1000)
	if r.Committed != 100 {
		t.Fatalf("committed %d, want 100", r.Committed)
	}
	if r.Cycles == 0 || r.IPC <= 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
}

func TestIndependentALUsSuperscalar(t *testing.T) {
	// 600 independent ALU ops on a 6-ALU, 8-wide machine: IPC must be
	// well above scalar.
	var insts []isa.Inst
	for i := 0; i < 600; i++ {
		insts = append(insts, alu(int16(i%32), isa.RegNone))
	}
	r := mk(insts, nil).Run(600)
	if r.IPC < 3 {
		t.Fatalf("independent ALU IPC = %.2f, want >= 3", r.IPC)
	}
}

func TestSerialChainBoundByLatency(t *testing.T) {
	// A pure dependence chain of N 1-cycle ALU ops takes at least N
	// cycles.
	const n = 200
	var insts []isa.Inst
	for i := 0; i < n; i++ {
		insts = append(insts, alu(0, 0)) // r0 = f(r0)
	}
	r := mk(insts, nil).Run(n)
	if r.Cycles < n {
		t.Fatalf("serial chain finished in %d cycles (< %d)", r.Cycles, n)
	}
	if r.IPC > 1.05 {
		t.Fatalf("serial chain IPC = %.2f > 1", r.IPC)
	}
}

func TestDivNonPipelined(t *testing.T) {
	// Four independent divides on 3 mul/div units: the fourth must wait
	// for a unit (20-cycle occupancy), so total > 40.
	var insts []isa.Inst
	for i := 0; i < 4; i++ {
		insts = append(insts, isa.Inst{Cls: isa.ClassIntDiv, Dest: int16(i), SrcA: isa.RegNone, SrcB: isa.RegNone})
	}
	r := mk(insts, nil).Run(4)
	if r.Cycles < 40 {
		t.Fatalf("4 divides on 3 units took %d cycles, want >= 40", r.Cycles)
	}
}

func TestLoadLatency(t *testing.T) {
	// A single load (cold caches): its consumer sees L1+L2+mem latency.
	insts := []isa.Inst{
		load(1, 0x100000),
		alu(2, 1),
	}
	r := mk(insts, nil).Run(2)
	if r.Cycles < 130 {
		t.Fatalf("cold load chain took %d cycles, want >= 130", r.Cycles)
	}
	if r.Loads != 1 {
		t.Fatalf("loads = %d", r.Loads)
	}
}

func TestStoreForwarding(t *testing.T) {
	// A load overlapping an older store gets its data forwarded and
	// never touches the Dcache.
	insts := []isa.Inst{
		store(0x200000, isa.RegNone),
		load(1, 0x200000),
	}
	c := mk(insts, nil)
	r := c.Run(2)
	if r.ForwardedLoads != 1 {
		t.Fatalf("forwarded = %d, want 1", r.ForwardedLoads)
	}
	// The only full Dcache access is the store's commit write.
	if c.Meter().NDcacheFull != 1 {
		t.Fatalf("dcache accesses = %d, want 1 (store commit only)", c.Meter().NDcacheFull)
	}
}

func TestReadyBitBlocksLoad(t *testing.T) {
	// A load behind a store whose *address* depends on a long-latency
	// op cannot perform before the store's address is known: the
	// conservative readyBit scheme (§3.1).
	slowAddr := isa.Inst{Cls: isa.ClassIntDiv, Dest: 5, SrcA: isa.RegNone, SrcB: isa.RegNone}
	st := isa.Inst{Cls: isa.ClassStore, Dest: isa.RegNone, SrcA: 5, SrcB: isa.RegNone, Addr: 0x300000, Size: 4}
	ld := load(1, 0x400000) // different address: no forwarding
	r := mk([]isa.Inst{slowAddr, st, ld}, nil).Run(3)
	// div 20 + store AGEN + load access (cold, >=130).
	if r.Cycles < 150 {
		t.Fatalf("readyBit not enforced: %d cycles", r.Cycles)
	}
}

func TestBranchMispredictPenalty(t *testing.T) {
	// Unpredictable branch directions throttle fetch; compare IPC of a
	// predictable vs an alternating-direction stream with the same mix.
	mkStream := func(period int) []isa.Inst {
		rng := rand.New(rand.NewSource(3))
		var insts []isa.Inst
		for i := 0; i < 2000; i++ {
			if i%5 == 4 {
				taken := false
				if period > 0 {
					taken = (i/5)%period != 0
				} else {
					taken = rng.Intn(2) == 0
				}
				insts = append(insts, isa.Inst{
					Cls: isa.ClassBranch, PC: 0x120000040, Dest: isa.RegNone,
					SrcA: isa.RegNone, SrcB: isa.RegNone,
					Taken: taken, Target: 0x120000000,
				})
			} else {
				insts = append(insts, alu(int16(i%32), isa.RegNone))
			}
		}
		return insts
	}
	good := mk(mkStream(64), nil).Run(2000)
	bad := mk(mkStream(-1), nil).Run(2000)
	if bad.IPC >= good.IPC {
		t.Fatalf("mispredicts did not hurt: good %.2f, bad %.2f", good.IPC, bad.IPC)
	}
	if bad.BranchMispredicts <= good.BranchMispredicts {
		t.Fatalf("mispredict counts: good %d, bad %d", good.BranchMispredicts, bad.BranchMispredicts)
	}
}

func TestDeadlockFlushForwardProgress(t *testing.T) {
	// Construct the genuine §3.3 deadlock: the oldest memory
	// instruction's address resolves late (behind a divide), by which
	// time younger instructions have filled every structure its line
	// could occupy. The pipeline must flush and still complete.
	cfg := core.Config{
		Banks: 1, EntriesPerBank: 1, SlotsPerEntry: 1,
		SharedEntries: 1, AddrBufferSlots: 8, LineBytes: 32,
	}
	s := core.New(cfg, nil)
	var insts []isa.Inst
	insts = append(insts, isa.Inst{Cls: isa.ClassIntDiv, Dest: 5, SrcA: isa.RegNone, SrcB: isa.RegNone})
	// Oldest load: address register depends on the divide.
	insts = append(insts, isa.Inst{Cls: isa.ClassLoad, Dest: 1, SrcA: 5, SrcB: isa.RegNone, Addr: 0x500000, Size: 4})
	// Younger loads to distinct lines fill the bank entry and the
	// SharedLSQ long before the oldest load's address is known; they
	// cannot commit (the oldest blocks the ROB head), so the oldest
	// cannot be placed: deadlock.
	for i := 0; i < 30; i++ {
		insts = append(insts, load(int16(2+i%6), uint64(0x500040+i*64)))
	}
	c := mk(insts, s)
	r := c.Run(32)
	if r.Committed != 32 {
		t.Fatalf("committed %d, want 32 (no forward progress)", r.Committed)
	}
	if r.DeadlockFlushes == 0 {
		t.Fatal("expected a deadlock-avoidance flush")
	}
}

func TestDeterminism(t *testing.T) {
	p := trace.MustPersonality("gzip")
	run := func() Result {
		m := core.NewPaper(nil)
		c := New(PaperConfig(), trace.NewGenerator(p), m, nil, nil, nil, nil)
		return c.Run(20000)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic results:\n%+v\n%+v", a, b)
	}
}

func TestRunWarmResetsStats(t *testing.T) {
	p := trace.MustPersonality("gzip")
	c := New(PaperConfig(), trace.NewGenerator(p), lsq.NewConventional(128, nil), nil, nil, nil, nil)
	r := c.RunWarm(10000, 10000)
	// The last commit group may overshoot by up to the commit width.
	if r.Committed < 10000 || r.Committed > 10000+8 {
		t.Fatalf("measured %d, want ~10000", r.Committed)
	}
	// Measured cycles must not include the warm-up.
	if r.Cycles > 10000*40 {
		t.Fatalf("cycles %d look like they include warm-up", r.Cycles)
	}
	if r.IPC <= 0 {
		t.Fatal("IPC not computed")
	}
}

func TestROBCapacityStalls(t *testing.T) {
	// A long-latency head op with hundreds of followers fills the ROB:
	// dispatch stalls must be recorded.
	var insts []isa.Inst
	insts = append(insts, load(1, 0x600000)) // cold: >=130 cycles
	insts = append(insts, alu(2, 1))         // consumer keeps it at head
	for i := 0; i < 500; i++ {
		insts = append(insts, alu(int16(3+i%8), isa.RegNone))
	}
	r := mk(insts, nil).Run(502)
	if r.DispatchStalls == 0 {
		t.Fatal("no dispatch stalls with a blocked ROB head")
	}
}

func TestWayKnownStorePath(t *testing.T) {
	// With the SAMIE, a second access to the same line uses the cached
	// way: NDcacheWayKnown must rise.
	m := energy.NewMeter()
	s := core.NewPaper(m)
	// The store's address depends on the first load's data, so the
	// readyBit keeps the later same-line loads from performing until
	// the first access has cached the line's location and translation.
	// They still *place* early, sharing the first load's entry.
	insts := []isa.Inst{
		load(1, 0x700000),
		{Cls: isa.ClassStore, Dest: isa.RegNone, SrcA: 1, SrcB: isa.RegNone, Addr: 0x800000, Size: 4},
		load(2, 0x700008),
		load(3, 0x700010),
	}
	c := New(PaperConfig(), isa.NewSliceStream(insts), s, nil, nil, nil, m)
	c.Run(4)
	if c.Meter().NDcacheWayKnown == 0 {
		t.Fatal("no way-known accesses for same-line loads")
	}
	if c.Meter().NTLBReuse == 0 {
		t.Fatal("no TLB reuses for same-line loads")
	}
}
