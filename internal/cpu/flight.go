package cpu

// Flight recorder: a diagnostic ring of recent per-cycle issue
// activity, attached by the scheduler-differential and golden tests so
// a "results differ" failure names the first divergent cycle and shows
// what each issue engine did around it. Never attached in production
// paths — the per-cycle hook is a nil check there.

import (
	"fmt"
	"strings"
)

// FlightFrame is one cycle's issue activity: the sequence numbers that
// entered execution this cycle plus the scheduler's load at the end of
// the cycle.
type FlightFrame struct {
	Cycle   uint64
	Issued  []uint64
	ROB     int
	Waiters int
	Wheel   int
	Attn    int
}

// FlightRecorder keeps a bounded ring of recent FlightFrames and a
// compact per-cycle fingerprint of the issue set for every recorded
// cycle, so two runs can be compared cycle-by-cycle without retaining
// full frames for the whole run.
type FlightRecorder struct {
	frames []FlightFrame
	next   int
	full   bool

	firstCycle uint64   // cycle of prints[0]
	prints     []uint64 // FNV-1a of each cycle's issue set, in order
	cur        []uint64 // seqs issued in the in-progress cycle
	limit      uint64   // stop recording after this cycle; 0 = unlimited
}

// DefaultFlightDepth is how many full frames a recorder retains.
const DefaultFlightDepth = 64

// NewFlightRecorder builds a recorder retaining up to depth full
// frames (DefaultFlightDepth when depth <= 0).
func NewFlightRecorder(depth int) *FlightRecorder {
	if depth <= 0 {
		depth = DefaultFlightDepth
	}
	return &FlightRecorder{frames: make([]FlightFrame, depth)}
}

// LimitCycles stops recording after the given cycle, so a re-run
// pointed at a known divergence keeps the frames *around* it instead
// of letting later cycles evict them. Zero removes the limit.
func (f *FlightRecorder) LimitCycles(last uint64) { f.limit = last }

// noteIssue marks one instruction as issued in the current cycle
// (called from issueInt/issueFP when the instruction wins its slot).
func (f *FlightRecorder) noteIssue(seq uint64) {
	f.cur = append(f.cur, seq)
}

// endCycle closes the current cycle: fingerprint the issue set, retain
// a full frame in the ring, reset the scratch.
//
//samie:deterministic
func (f *FlightRecorder) endCycle(cycle uint64, rob, waiters, wheel, attn int) {
	if f.limit != 0 && cycle > f.limit {
		f.cur = f.cur[:0]
		return
	}
	if len(f.prints) == 0 {
		f.firstCycle = cycle
	}
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for _, s := range f.cur {
		for i := 0; i < 8; i++ {
			h ^= uint64(byte(s >> (8 * i)))
			h *= fnvPrime
		}
	}
	f.prints = append(f.prints, h)

	fr := &f.frames[f.next]
	fr.Cycle = cycle
	fr.Issued = append(fr.Issued[:0], f.cur...)
	fr.ROB, fr.Waiters, fr.Wheel, fr.Attn = rob, waiters, wheel, attn
	f.next++
	if f.next == len(f.frames) {
		f.next = 0
		f.full = true
	}
	f.cur = f.cur[:0]
}

// Cycles reports how many cycles the recorder fingerprinted.
func (f *FlightRecorder) Cycles() int {
	if f == nil {
		return 0
	}
	return len(f.prints)
}

// Frames returns the retained frames oldest-first.
func (f *FlightRecorder) Frames() []FlightFrame {
	if f == nil {
		return nil
	}
	n := f.next
	if f.full {
		n = len(f.frames)
	}
	out := make([]FlightFrame, 0, n)
	if f.full {
		out = append(out, f.frames[f.next:]...)
	}
	out = append(out, f.frames[:f.next]...)
	return out
}

// FirstDivergence compares two recorders' per-cycle issue fingerprints
// and returns the first cycle where they differ (a shorter recording
// diverges at its end). ok is false when the recordings agree over
// their common length and are equally long.
func FirstDivergence(a, b *FlightRecorder) (cycle uint64, ok bool) {
	if a == nil || b == nil {
		return 0, false
	}
	n := min(len(a.prints), len(b.prints))
	for i := 0; i < n; i++ {
		if a.prints[i] != b.prints[i] {
			return a.firstCycle + uint64(i), true
		}
	}
	if len(a.prints) != len(b.prints) {
		return a.firstCycle + uint64(n), true
	}
	return 0, false
}

// Dump renders the retained frames for a test failure message: one
// line per cycle with the issued sequence numbers and scheduler load.
func (f *FlightRecorder) Dump() string {
	frames := f.Frames()
	if len(frames) == 0 {
		return "(no frames recorded)"
	}
	var b strings.Builder
	for _, fr := range frames {
		fmt.Fprintf(&b, "cycle %6d: issued=%v rob=%d waiters=%d wheel=%d attn=%d\n",
			fr.Cycle, fr.Issued, fr.ROB, fr.Waiters, fr.Wheel, fr.Attn)
	}
	return b.String()
}
