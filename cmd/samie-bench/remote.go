package main

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"samielsq"
	"samielsq/internal/obs"
	"samielsq/pkg/client"
	"samielsq/pkg/cluster"
)

// remoteClient builds the driver for -server: a plain typed client for
// one URL, or the rendezvous-sharded fabric when the flag carries a
// comma-separated replica list.
func remoteClient(serverURL string) (client.API, error) {
	if strings.Contains(serverURL, ",") {
		return cluster.New(strings.Split(serverURL, ","))
	}
	return client.New(serverURL), nil
}

// runRemote executes the requested figures and scenarios against a
// samie-serve instance (or a replica set behind the cluster fabric)
// instead of simulating locally; the server-side batches dedup the
// work across every client. Returns a process exit code.
func runRemote(serverURL string, benchmarks []string, insts uint64, figs, scenarios []string, listScenarios, stats bool, want func(string) bool, energyWanted bool) int {
	c, err := remoteClient(serverURL)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	// With -trace-out the default recorder is live, so this roots every
	// remote request (figures, scenario streams, sharded sweeps) of the
	// invocation in one trace; otherwise the span is nil and free.
	ctx, root := obs.StartSpan(context.Background(), "bench.remote")
	defer root.End()
	if err := c.Health(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "server %s unreachable: %v\n", serverURL, err)
		return 1
	}

	if listScenarios {
		infos, err := c.Scenarios(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, info := range infos {
			fmt.Printf("%-20s %s (%d variants)\n", info.Name, info.Description, len(info.Variants))
		}
		return 0
	}

	// Figures render the same text the local harnesses produce; the
	// bytes come from the server's shared batch.
	for _, name := range client.FigureNames() {
		wanted := false
		switch name {
		case "56":
			wanted = want("5") || want("6")
		case "energy":
			wanted = energyWanted
		default:
			wanted = want(name)
		}
		if !wanted {
			continue
		}
		fig, err := c.Figure(ctx, name, benchmarks, insts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Println(fig.Text)
	}

	for _, name := range scenarios {
		res, err := c.RunScenario(ctx, name,
			client.ScenarioRunRequest{Benchmarks: benchmarks, Insts: insts},
			func(ev client.ScenarioEvent) {
				if ev.Type == "cell" {
					fmt.Fprintf(os.Stderr, "\r%s: %d/%d cells", name, ev.Done, ev.Total)
					if ev.Done == ev.Total {
						fmt.Fprintln(os.Stderr)
					}
				}
			})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Println(res.Text)
	}

	if stats {
		st, err := c.Stats(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("server batch: %d simulations executed, %d of %d requests served from cache (%.0f%% reuse), %d workers\n",
			st.Engine.Executed, st.Engine.Hits, st.Engine.Requests, 100*st.Engine.HitRate(), st.Workers)
		if st.CacheDir != "" {
			fmt.Printf("server disk cache %s: %d hits, %d misses, %d writes\n",
				st.CacheDir, st.Disk.Hits, st.Disk.Misses, st.Disk.Writes)
		}
	}
	return 0
}

// runPrune applies the disk-cache bounds and reports what it did.
// Returns a process exit code.
func runPrune(dir string, maxBytes int64, maxAge time.Duration) int {
	ps, err := samielsq.PruneCache(dir, maxBytes, maxAge)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("pruned %s: removed %d artifacts (%d bytes), %d remain (%d bytes)\n",
		dir, ps.Removed, ps.FreedBytes, ps.Remaining, ps.RemainingBytes)
	return 0
}
