// Command samie-bench regenerates the paper's evaluation artefacts:
// every figure (1, 3, 4, 5, 6, 7-12) and table (1, 4, 5, 6) plus the
// §3.6 delay analysis.
//
// Usage:
//
//	samie-bench                      # everything, default budget
//	samie-bench -insts 1000000       # higher-fidelity run
//	samie-bench -fig 5 -fig 6        # specific figures
//	samie-bench -bench ammp,swim     # subset of the suite
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"samielsq/internal/experiments"
)

type figList []string

func (f *figList) String() string     { return strings.Join(*f, ",") }
func (f *figList) Set(v string) error { *f = append(*f, v); return nil }

func main() {
	var figs figList
	insts := flag.Uint64("insts", experiments.DefaultInsts, "measured instructions per benchmark")
	benchCSV := flag.String("bench", "", "comma-separated benchmark subset (default: all 26)")
	flag.Var(&figs, "fig", "figure to regenerate (1,3,4,5,6,7..12); repeatable")
	table1 := flag.Bool("table1", false, "regenerate Table 1 only")
	delays := flag.Bool("delays", false, "regenerate the §3.6 delay analysis only")
	tables456 := flag.Bool("tables456", false, "print Tables 4/5/6 and model cross-checks only")
	flag.Parse()

	benchmarks := experiments.Benchmarks()
	if *benchCSV != "" {
		benchmarks = strings.Split(*benchCSV, ",")
	}

	specific := len(figs) > 0 || *table1 || *delays || *tables456
	want := func(f string) bool {
		if !specific {
			return true
		}
		for _, g := range figs {
			if g == f {
				return true
			}
		}
		return false
	}

	if want("1") {
		fmt.Println(experiments.Figure1(benchmarks, *insts))
	}
	if want("3") {
		fmt.Println(experiments.Figure3(benchmarks, *insts))
	}
	if want("4") {
		fmt.Println(experiments.Figure4(benchmarks, *insts, nil))
	}
	if want("5") || want("6") {
		fmt.Println(experiments.Figure56(benchmarks, *insts))
	}
	energyWanted := false
	for _, f := range []string{"7", "8", "9", "10", "11", "12"} {
		if want(f) {
			energyWanted = true
		}
	}
	if energyWanted {
		fmt.Println(experiments.Energy(benchmarks, *insts))
	}
	if !specific || *table1 {
		fmt.Println(experiments.Table1())
	}
	if !specific || *delays {
		fmt.Println(experiments.Delays())
	}
	if !specific || *tables456 {
		fmt.Println(experiments.Tables456String())
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
}
