// Command samie-bench regenerates the paper's evaluation artefacts:
// every figure (1, 3, 4, 5, 6, 7-12) and table (1, 4, 5, 6) plus the
// §3.6 delay analysis. All simulations execute through one shared
// batch, so a spec needed by several figures (e.g. the
// conventional/SAMIE pair behind Figures 5/6 and 7-12) simulates
// exactly once.
//
// Usage:
//
//	samie-bench                      # everything, default budget
//	samie-bench -insts 1000000       # higher-fidelity run
//	samie-bench -fig 5 -fig 6        # specific figures
//	samie-bench -bench ammp,swim     # subset of the suite
//	samie-bench -list-scenarios      # named sweeps from the registry
//	samie-bench -scenario models     # run a registered sweep
//	samie-bench -workers 4 -stats    # bound the pool, print cache stats
//	samie-bench -cachedir ""         # disable the on-disk run cache
//	samie-bench -prune -prune-max-bytes 1000000000      # bound the disk cache
//	samie-bench -server http://host:8344 -fig 5 -fig 6  # remote mode via samie-serve
//	samie-bench -server http://a:8344,http://b:8344     # remote mode over a replica set (pkg/cluster)
//	samie-bench -profile             # measure hot-path throughput
//	samie-bench -profile -baseline BENCH_hotpath.json   # CI regression gate
//
// Results are spilled to an on-disk cache (content-addressed by the
// canonical RunSpec key, default <user cache dir>/samielsq, override
// with -cachedir, disable with -cachedir "") so repeated invocations
// reuse finished simulations across processes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"samielsq/internal/experiments"
	"samielsq/internal/obs"
)

type stringList []string

func (f *stringList) String() string     { return strings.Join(*f, ",") }
func (f *stringList) Set(v string) error { *f = append(*f, v); return nil }

func main() {
	var figs, scenarios stringList
	insts := flag.Uint64("insts", experiments.DefaultInsts, "measured instructions per benchmark")
	benchCSV := flag.String("bench", "", "comma-separated benchmark subset (default: all 26)")
	flag.Var(&figs, "fig", "figure to regenerate (1,3,4,5,6,7..12); repeatable")
	flag.Var(&scenarios, "scenario", "registered scenario sweep to run; repeatable")
	listScenarios := flag.Bool("list-scenarios", false, "list registered scenario sweeps and exit")
	workers := flag.Int("workers", 0, "max concurrent simulations (default GOMAXPROCS)")
	stats := flag.Bool("stats", false, "print the shared batch's run-cache accounting")
	table1 := flag.Bool("table1", false, "regenerate Table 1 only")
	delays := flag.Bool("delays", false, "regenerate the §3.6 delay analysis only")
	tables456 := flag.Bool("tables456", false, "print Tables 4/5/6 and model cross-checks only")
	cachedir := flag.String("cachedir", "auto", `on-disk run cache directory ("auto" = <user cache dir>/samielsq, "" disables)`)
	serverURL := flag.String("server", "", "run remotely against this samie-serve base URL (or a comma-separated replica list, sharded by rendezvous hashing) instead of simulating locally")
	prune := flag.Bool("prune", false, "prune the on-disk run cache per -prune-max-* and exit")
	pruneMaxBytes := flag.Int64("prune-max-bytes", 0, "with -prune: keep at most this many artifact bytes (0 = unbounded)")
	pruneMaxAge := flag.Duration("prune-max-age", 0, "with -prune: drop artifacts older than this (0 = keep forever)")
	profile := flag.Bool("profile", false, "measure hot-path throughput (insts/sec per model) and exit")
	profileInsts := flag.Uint64("profile-insts", 50_000, "measured instructions per profile case")
	profileReps := flag.Int("profile-reps", 3, "repetitions per profile case (best wins)")
	profileLabel := flag.String("profile-label", "local", "label for the recorded profile session")
	profileLegacy := flag.Bool("profile-legacy-walk", false, "profile on the pre-wakeup LegacyIssueWalk issue engine (before/after trajectory entries; skips the figure1 sweep)")
	benchOut := flag.String("bench-out", "", "append the profile session to this BENCH_*.json file")
	baseline := flag.String("baseline", "", "compare the profile session against this BENCH_*.json (exit 1 on regression)")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional throughput regression vs -baseline")
	traceOut := flag.String("trace-out", "", "write this invocation's span trace as Chrome trace-event JSON here (open in Perfetto); for the fleet-wide sweep view use samie-cluster -trace-out")
	timelineOut := flag.String("timeline-out", "", "write every locally simulated run's interval timeline as NDJSON here (one meta line + one sample line per interval, per run)")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	if *traceOut != "" {
		obs.Default().SetEnabled(true)
	}
	if *profile {
		entry := runProfile(*profileInsts, *profileReps, *profileLabel, *profileLegacy)
		if *benchOut != "" {
			if err := writeBenchOut(*benchOut, entry); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("profile session appended to %s\n", *benchOut)
		}
		if *baseline != "" {
			failures, err := compareBaseline(entry, *baseline, *tolerance)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if len(failures) > 0 {
				for _, f := range failures {
					fmt.Fprintln(os.Stderr, "REGRESSION:", f)
				}
				os.Exit(1)
			}
			fmt.Printf("all cases within %.0f%% of baseline\n", *tolerance*100)
		}
		return
	}
	// Resolve the disk cache directory once; -prune and the local
	// batch share the -cachedir semantics.
	dir, dirErr := experiments.ResolveCacheDir(*cachedir)
	if dirErr != nil {
		fmt.Fprintf(os.Stderr, "disk cache disabled: %v\n", dirErr)
		dir = ""
	}
	if *prune {
		if dir == "" {
			fmt.Fprintln(os.Stderr, "-prune needs a cache directory (-cachedir)")
			os.Exit(2)
		}
		os.Exit(runPrune(dir, *pruneMaxBytes, *pruneMaxAge))
	}

	var benchmarks []string // nil = the full suite
	if *benchCSV != "" {
		benchmarks = strings.Split(*benchCSV, ",")
	}

	specific := len(figs) > 0 || len(scenarios) > 0 || *table1 || *delays || *tables456
	want := func(f string) bool {
		if !specific {
			return true
		}
		for _, g := range figs {
			if g == f {
				return true
			}
		}
		return false
	}
	energyWanted := false
	for _, f := range []string{"7", "8", "9", "10", "11", "12"} {
		if want(f) {
			energyWanted = true
		}
	}

	// Remote mode: the figures and scenarios run on a samie-serve
	// instance whose long-lived batch dedups work across all clients;
	// the static tables never simulate, so they render locally.
	if *serverURL != "" {
		code := runRemote(*serverURL, benchmarks, *insts, figs, scenarios, *listScenarios, *stats, want, energyWanted)
		if code == 0 && !*listScenarios {
			if !specific || *table1 {
				fmt.Println(experiments.Table1())
			}
			if !specific || *delays {
				fmt.Println(experiments.Delays())
			}
			if !specific || *tables456 {
				fmt.Println(experiments.Tables456String())
			}
		}
		writeTrace(*traceOut)
		os.Exit(code)
	}

	if *listScenarios {
		for _, name := range experiments.ScenarioNames() {
			sc, _ := experiments.LookupScenario(name)
			fmt.Printf("%-20s %s (%d variants)\n", name, sc.Description, len(sc.Variants))
		}
		return
	}

	// Validate scenario names before any simulation runs: a typo must
	// not cost a full figure sweep first.
	for _, name := range scenarios {
		if _, ok := experiments.LookupScenario(name); !ok {
			fmt.Fprintf(os.Stderr, "unknown scenario %q (see -list-scenarios)\n", name)
			os.Exit(2)
		}
	}

	// Scenarios resolve their own default rows (Scenario.Benchmarks,
	// e.g. the adversarial workloads) when -bench is absent, so they
	// must see the unfilled list; the figure harnesses default to the
	// full suite here.
	scenarioBench := benchmarks
	if benchmarks == nil {
		benchmarks = experiments.Benchmarks()
	}

	// One batch shared by every figure and scenario this invocation
	// renders, spilling results to disk unless -cachedir "" asked not
	// to (a cache failure degrades to the uncached batch).
	var batch *experiments.Batch
	batch, dir = experiments.OpenBatch(*workers, dir, func(err error) {
		fmt.Fprintf(os.Stderr, "disk cache disabled: %v\n", err)
	})

	// One span per harness so -trace-out shows where a local
	// invocation's wall-clock went (recorder disabled otherwise:
	// StartSpan returns nil and this is free).
	traced := func(name string, fn func()) {
		_, sp := obs.StartSpan(context.Background(), name)
		defer sp.End()
		fn()
	}
	if want("1") {
		traced("figure1", func() { fmt.Println(batch.Figure1(benchmarks, *insts)) })
	}
	if want("3") {
		traced("figure3", func() { fmt.Println(batch.Figure3(benchmarks, *insts)) })
	}
	if want("4") {
		traced("figure4", func() { fmt.Println(batch.Figure4(benchmarks, *insts, nil)) })
	}
	if want("5") || want("6") {
		traced("figure56", func() { fmt.Println(batch.Figure56(benchmarks, *insts)) })
	}
	if energyWanted {
		traced("energy", func() { fmt.Println(batch.Energy(benchmarks, *insts)) })
	}
	for _, name := range scenarios {
		var res experiments.ScenarioResult
		var err error
		traced("scenario "+name, func() { res, err = batch.Scenario(name, scenarioBench, *insts) })
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Println(res)
	}
	if !specific || *table1 {
		fmt.Println(experiments.Table1())
	}
	if !specific || *delays {
		fmt.Println(experiments.Delays())
	}
	if !specific || *tables456 {
		fmt.Println(experiments.Tables456String())
	}
	if *stats {
		st := batch.Stats()
		fmt.Printf("shared batch: %d simulations executed, %d of %d requests served from cache (%.0f%% reuse), %d workers\n",
			st.Executed, st.Hits, st.Requests, 100*st.HitRate(), batch.Workers())
		if dir != "" {
			ds := batch.DiskStats()
			fmt.Printf("disk cache %s: %d hits, %d misses, %d writes\n", dir, ds.Hits, ds.Misses, ds.Writes)
		}
	}
	if *timelineOut != "" {
		if err := writeTimelines(*timelineOut, batch.Timelines()); err != nil {
			fmt.Fprintf(os.Stderr, "timeline-out: %v\n", err)
		}
	}
	// Flush the disk cache's debounced index before exiting.
	if err := batch.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "cache close: %v\n", err)
	}
	writeTrace(*traceOut)
}

// writeTimelines dumps the batch's retained run timelines as NDJSON:
// for each run a meta line ({"key","benchmark","model","stride",
// "samples"}) followed by one line per interval sample. Runs served
// from the disk cache carry no timeline and are absent.
func writeTimelines(path string, tls []experiments.RunTimeline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	var samples int
	for _, tl := range tls {
		meta := struct {
			Key       string `json:"key"`
			Benchmark string `json:"benchmark"`
			Model     string `json:"model"`
			Stride    uint64 `json:"stride"`
			Samples   int    `json:"samples"`
		}{tl.Key, tl.Benchmark, tl.Model, tl.Stride, len(tl.Samples)}
		if err := enc.Encode(meta); err != nil {
			f.Close()
			return err
		}
		for _, ts := range tl.Samples {
			if err := enc.Encode(ts); err != nil {
				f.Close()
				return err
			}
		}
		samples += len(tl.Samples)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "timeline: %d runs, %d samples written to %s\n", len(tls), samples, path)
	return nil
}

// writeTrace exports every span and counter track this process
// recorded as Chrome trace-event JSON. No-op without -trace-out.
func writeTrace(path string) {
	if path == "" {
		return
	}
	spans := obs.Default().Spans()
	tracks := obs.Default().Counters()
	data, err := obs.ChromeTraceWithCounters(spans, tracks)
	if err == nil {
		err = os.WriteFile(path, data, 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "trace: %d spans, %d counter tracks written to %s\n", len(spans), len(tracks), path)
}
