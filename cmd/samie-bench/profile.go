package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"samielsq/internal/cpu"
	"samielsq/internal/experiments"
)

// The -profile mode measures raw simulator throughput (instructions
// simulated per second) on a fixed case matrix — one case per LSQ
// model on representative workloads — and records the repo's
// performance trajectory in BENCH_hotpath.json. CI re-profiles the
// baseline commit on its own runner and gates the working tree with
// -baseline against that same-machine session (absolute insts/sec are
// not comparable across machines).

// benchEntry is one measurement session.
type benchEntry struct {
	Label string      `json:"label"`
	Date  string      `json:"date"`
	Go    string      `json:"go"`
	Insts uint64      `json:"insts_per_case"`
	Notes string      `json:"notes,omitempty"`
	Cases []benchCase `json:"cases"`
}

type benchCase struct {
	Name        string  `json:"name"`
	InstsPerSec float64 `json:"insts_per_sec"`
}

// benchFile is the BENCH_hotpath.json layout: an append-only history,
// oldest first. The last entry is the baseline CI compares against.
type benchFile struct {
	Schema  int          `json:"schema"`
	History []benchEntry `json:"history"`
}

// profileSpec names one profiled configuration.
type profileSpec struct {
	name string
	spec func(bench string, insts uint64) experiments.RunSpec
}

var profileSpecs = []profileSpec{
	{"samie", func(b string, n uint64) experiments.RunSpec {
		return experiments.RunSpec{Benchmark: b, Insts: n, Model: experiments.ModelSAMIE}
	}},
	{"conventional", func(b string, n uint64) experiments.RunSpec {
		return experiments.RunSpec{Benchmark: b, Insts: n, Model: experiments.ModelConventional}
	}},
	{"arb64x2", func(b string, n uint64) experiments.RunSpec {
		return experiments.RunSpec{Benchmark: b, Insts: n, Model: experiments.ModelARB,
			ARBBanks: 64, ARBAddrs: 2, ARBInflight: 128}
	}},
	{"unbounded", func(b string, n uint64) experiments.RunSpec {
		return experiments.RunSpec{Benchmark: b, Insts: n, Model: experiments.ModelUnbounded}
	}},
}

var profileBenchmarks = []string{"gzip", "swim"}

// adversarialProfile extends the matrix with the stress personalities
// the event-driven wakeup scheduler targets: the serial random load
// chain (worst case for the legacy O(in-flight) issue walk) and the
// store-dominated burst mix. Profiled under the two models whose
// per-cycle cost the scheduler changes most.
var (
	adversarialBenchmarks = []string{"pointer-chaser", "store-burst"}
	adversarialModelNames = []string{"samie", "conventional"}
)

// withLegacyWalk pins a spec to the pre-wakeup issue engine, for
// before/after trajectory entries (-profile-legacy-walk).
func withLegacyWalk(spec experiments.RunSpec) experiments.RunSpec {
	cfg := cpu.PaperConfig()
	cfg.LegacyIssueWalk = true
	spec.CPU = &cfg
	return spec
}

// runProfileCase measures one spec: reps repetitions, best throughput
// wins (the first repetition also pays trace materialization; later
// ones measure the simulator itself, which is what the trajectory
// tracks).
func runProfileCase(spec experiments.RunSpec, reps int) float64 {
	n := experiments.Normalize(spec)
	simulated := n.Warmup + n.Insts
	best := 0.0
	for r := 0; r < reps; r++ {
		start := time.Now()
		experiments.Run(n)
		if ips := float64(simulated) / time.Since(start).Seconds(); ips > best {
			best = ips
		}
	}
	return best
}

// figure1FastSuite is the representative slice the aggregate
// Figure1-class case sweeps (17 LSQ configurations per program).
var figure1FastSuite = []string{"ammp", "facerec", "swim", "mcf", "gzip"}

// runFigure1Sweep measures the aggregate throughput of a full Figure 1
// regeneration — the heaviest multi-model workload in the repo. Each
// program runs once per ARB geometry at both in-flight caps, plus the
// unbounded reference.
func runFigure1Sweep(reps int) float64 {
	const insts = 60_000
	specsPerProgram := float64(2*len(experiments.Figure1Configs()) + 1)
	simulated := float64(len(figure1FastSuite)) * specsPerProgram * (insts + insts/2)
	best := 0.0
	for r := 0; r < reps; r++ {
		start := time.Now()
		experiments.Figure1(figure1FastSuite, insts)
		if ips := simulated / time.Since(start).Seconds(); ips > best {
			best = ips
		}
	}
	return best
}

// runProfile executes the matrix and returns the session entry. With
// legacyWalk the per-model cases run on the pre-wakeup issue engine
// (for before/after trajectory entries); the figure1 aggregate sweep
// always exercises the default engine and is skipped in that mode.
func runProfile(insts uint64, reps int, label string, legacyWalk bool) benchEntry {
	e := benchEntry{
		Label: label,
		Date:  time.Now().UTC().Format("2006-01-02"),
		Go:    runtime.Version(),
		Insts: insts,
	}
	measure := func(name string, spec experiments.RunSpec) {
		if legacyWalk {
			spec = withLegacyWalk(spec)
		}
		ips := runProfileCase(spec, reps)
		e.Cases = append(e.Cases, benchCase{Name: name, InstsPerSec: ips})
		fmt.Printf("%-26s %12.0f insts/sec\n", name, ips)
	}
	for _, ps := range profileSpecs {
		for _, b := range profileBenchmarks {
			measure(ps.name+"/"+b, ps.spec(b, insts))
		}
	}
	for _, ps := range profileSpecs {
		for _, mname := range adversarialModelNames {
			if ps.name != mname {
				continue
			}
			for _, b := range adversarialBenchmarks {
				measure(ps.name+"/"+b, ps.spec(b, insts))
			}
		}
	}
	if !legacyWalk {
		sweepReps := 2
		if reps < sweepReps {
			sweepReps = reps
		}
		ips := runFigure1Sweep(sweepReps)
		e.Cases = append(e.Cases, benchCase{Name: "figure1-sweep/fastsuite", InstsPerSec: ips})
		fmt.Printf("%-26s %12.0f insts/sec\n", "figure1-sweep/fastsuite", ips)
	}
	sort.Slice(e.Cases, func(i, j int) bool { return e.Cases[i].Name < e.Cases[j].Name })
	return e
}

func readBenchFile(path string) (benchFile, error) {
	var f benchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != 1 || len(f.History) == 0 {
		return f, fmt.Errorf("%s: unsupported schema or empty history", path)
	}
	return f, nil
}

func (e benchEntry) caseMap() map[string]float64 {
	m := make(map[string]float64, len(e.Cases))
	for _, c := range e.Cases {
		m[c.Name] = c.InstsPerSec
	}
	return m
}

// compareBaseline reports the cases of `cur` that regressed more than
// tolerance (fraction) against the last history entry of the baseline
// file. Cases absent from the baseline are informational only.
func compareBaseline(cur benchEntry, basePath string, tolerance float64) (failures []string, err error) {
	f, err := readBenchFile(basePath)
	if err != nil {
		return nil, err
	}
	base := f.History[len(f.History)-1]
	baseCases := base.caseMap()
	for _, c := range cur.Cases {
		want, ok := baseCases[c.Name]
		if !ok || want <= 0 {
			continue
		}
		ratio := c.InstsPerSec / want
		fmt.Printf("%-22s %12.0f vs baseline %12.0f  (%.2fx)\n", c.Name, c.InstsPerSec, want, ratio)
		if ratio < 1-tolerance {
			failures = append(failures,
				fmt.Sprintf("%s: %.0f insts/sec is %.0f%% below baseline %.0f",
					c.Name, c.InstsPerSec, (1-ratio)*100, want))
		}
	}
	return failures, nil
}

// writeBenchOut writes (or appends to) a bench file at path. Only a
// missing file starts a fresh history: an unreadable or incompatible
// existing file is an error, so the append-only trajectory is never
// silently overwritten.
func writeBenchOut(path string, e benchEntry) error {
	f := benchFile{Schema: 1}
	prev, err := readBenchFile(path)
	switch {
	case err == nil:
		f = prev
	case os.IsNotExist(err):
		// fresh file
	default:
		return fmt.Errorf("refusing to overwrite %s: %w", path, err)
	}
	f.History = append(f.History, e)
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
