package main

// The go command's vet-tool protocol (the unitchecker protocol): for
// every package, the driver writes a JSON config describing the
// already-compiled unit — source files, the import map and export
// data for every dependency — and invokes the tool with that file as
// its sole argument. The tool analyzes the unit, writes its (empty,
// for samie-lint: no cross-package facts) .vetx output so the driver
// can cache the run, prints findings to stderr and exits 2 when any
// were found. This lets `go vet -vettool=samie-lint ./...` reuse the
// go command's build graph, caching and parallelism.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"samielsq/internal/lint"
)

// vetConfig mirrors the fields of the driver-written config file that
// samie-lint consumes.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVetTool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "samie-lint: reading vet config: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "samie-lint: parsing vet config: %v\n", err)
		return 1
	}
	// The driver demands the facts file regardless of findings.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			os.WriteFile(cfg.VetxOutput, []byte("samie-lint: no facts\n"), 0o666)
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, g := range cfg.GoFiles {
		// Test files are out of scope, matching the standalone loader:
		// the invariants protect production payload paths, and test
		// assertions iterate maps freely. The go command hands the
		// tool test-augmented package variants; lint only the
		// production half (an external _test package ends up empty
		// and is skipped wholesale below).
		if strings.HasSuffix(g, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, g, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintf(os.Stderr, "samie-lint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		writeVetx()
		return 0
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "samie-lint: type-check %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pkg := &lint.Package{
		PkgPath: cfg.ImportPath,
		Dir:     cfg.Dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, lint.All(), false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "samie-lint: %v\n", err)
		return 1
	}
	writeVetx()
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", d.File, d.Line, d.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
