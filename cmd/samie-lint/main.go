// Command samie-lint runs the repository's invariant analyzers
// (internal/lint) over a set of packages.
//
// Standalone:
//
//	samie-lint ./...
//	samie-lint -json ./...
//	samie-lint -analyzers mapiter,detpure ./internal/experiments
//
// As a vet tool (per-package, driven by the go command):
//
//	go vet -vettool=$(which samie-lint) ./...
//
// Exit codes (the pre-commit contract): 0 — clean; 1 — one or more
// findings; 2 — usage or load error (a finding was *not* proven
// absent). -json writes one {"file","line","column","analyzer",
// "message"} object per finding as a JSON array on stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"samielsq/internal/lint"
)

func main() {
	// The go command probes vet tools with -V=full (version stamp) and
	// -flags (supported flags, as a JSON array), then invokes them with
	// a *.cfg file; all three paths bypass normal flag parsing.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		fmt.Printf("samie-lint version 1 (analyzers: %s)\n", strings.Join(analyzerNames(), ","))
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(os.Args) >= 2 && strings.HasSuffix(os.Args[len(os.Args)-1], ".cfg") {
		os.Exit(runVetTool(os.Args[len(os.Args)-1]))
	}

	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	names := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: samie-lint [-json] [-analyzers a,b] packages...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	analyzers := lint.All()
	if *names != "" {
		analyzers = analyzers[:0:0]
		for _, n := range strings.Split(*names, ",") {
			a := lint.Lookup(strings.TrimSpace(n))
			if a == nil {
				fmt.Fprintf(os.Stderr, "samie-lint: unknown analyzer %q (use -list)\n", n)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	pkgs, err := lint.Load("", flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := lint.RunAnalyzers(pkgs, analyzers, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func analyzerNames() []string {
	var out []string
	for _, a := range lint.All() {
		out = append(out, a.Name)
	}
	return out
}
