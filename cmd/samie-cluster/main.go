// Command samie-cluster fans whole-suite or scenario regeneration out
// across a set of samie-serve replicas: the suite's distinct
// simulations are partitioned by rendezvous hashing of their canonical
// keys, each replica executes its shard exactly once (streaming
// results back as they complete), and the paper artefacts are
// reassembled locally — byte-identical to the single-node harnesses.
// A replica that dies mid-sweep is quarantined and its remaining work
// re-shards onto the survivors.
//
// Usage:
//
//	samie-cluster -replicas http://a:8344,http://b:8344                 # full suite, all 26 benchmarks
//	samie-cluster -replicas ... -bench ammp,gzip,mcf,swim -insts 25000  # golden subset
//	samie-cluster -replicas ... -scenario models -scenario adversarial  # sharded sweeps
//	samie-cluster -replicas ... -stats                                  # + per-replica accounting (stderr)
//	samie-cluster -replicas ... -trace-out sweep.json                   # fleet-wide Chrome trace (Perfetto)
//
// See docs/cluster.md for the deployment story.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sort"
	"strings"
	"time"

	"samielsq/internal/experiments"
	"samielsq/internal/obs"
	"samielsq/pkg/client"
	"samielsq/pkg/cluster"
)

type stringList []string

func (f *stringList) String() string     { return strings.Join(*f, ",") }
func (f *stringList) Set(v string) error { *f = append(*f, v); return nil }

func main() {
	var scenarios stringList
	replicas := flag.String("replicas", "", "comma-separated samie-serve base URLs (required)")
	benchCSV := flag.String("bench", "", "comma-separated benchmark subset (default: all 26; scenarios may carry their own default rows)")
	insts := flag.Uint64("insts", 0, "measured instructions per benchmark (default: the library default)")
	flag.Var(&scenarios, "scenario", "registered scenario sweep to shard across the cluster; repeatable (default: the full suite)")
	stats := flag.Bool("stats", false, "print per-replica and aggregate engine accounting to stderr afterwards")
	retryBudget := flag.Int("max-retry-budget", 32, "total stream resumes + re-shard rounds a sweep may spend before giving up")
	timeout := flag.Duration("timeout", 0, "overall deadline for the sweep (0 = none)")
	quiet := flag.Bool("quiet", false, "suppress per-run progress on stderr")
	traceOut := flag.String("trace-out", "", "write the sweep's fleet-wide trace (coordinator + every replica's spans) as Chrome trace-event JSON here; open in Perfetto or chrome://tracing")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	if *replicas == "" {
		fmt.Fprintln(os.Stderr, "-replicas is required (comma-separated samie-serve URLs)")
		os.Exit(2)
	}

	c, err := cluster.New(strings.Split(*replicas, ","),
		cluster.WithRetryBudget(*retryBudget),
		cluster.WithLogger(slog.New(slog.NewTextHandler(os.Stderr, nil))))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *traceOut != "" {
		// Coordinator-side tracing is opt-in: with the recorder enabled
		// every sweep opens a root span whose chunk children ride the
		// shard requests as traceparent headers, so the replicas record
		// their spans under the same trace IDs.
		obs.Default().SetEnabled(true)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := c.Health(ctx); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var benchmarks []string // nil = the full suite / scenario default
	if *benchCSV != "" {
		benchmarks = strings.Split(*benchCSV, ",")
	}
	// Validate scenario names up front: a typo must not cost a sweep.
	for _, name := range scenarios {
		if _, ok := experiments.LookupScenario(name); !ok {
			fmt.Fprintf(os.Stderr, "unknown scenario %q (have %s)\n", name, strings.Join(experiments.ScenarioNames(), ", "))
			os.Exit(2)
		}
	}

	progress := func(label string) func(cluster.Progress) {
		if *quiet {
			return nil
		}
		return func(p cluster.Progress) {
			fmt.Fprintf(os.Stderr, "\r%s: %d/%d runs (last from %s)", label, p.Done, p.Total, p.Replica)
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	var sweepTraces []string
	if len(scenarios) == 0 {
		res, err := c.Suite(ctx, benchmarks, *insts, progress("suite"))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Exact bytes (no extra newline): CI diffs this against the
		// golden suite rendering.
		fmt.Print(res.String())
		sweepTraces = append(sweepTraces, c.SweepTraceID())
	}
	for _, name := range scenarios {
		res, err := c.Scenario(ctx, name, benchmarks, *insts, progress(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(res.String())
		sweepTraces = append(sweepTraces, c.SweepTraceID())
	}

	if *traceOut != "" {
		if err := writeSweepTrace(ctx, c, sweepTraces, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *stats {
		per, err := c.PerReplicaStats(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		reps := make([]string, 0, len(per))
		for rep := range per {
			reps = append(reps, rep)
		}
		sort.Strings(reps)
		var executed, requests, hits int64
		var store experiments.StoreStats
		for _, rep := range reps {
			st := per[rep]
			executed += st.Engine.Executed
			requests += st.Engine.Requests
			hits += st.Engine.Hits
			store.Add(st.Store)
			fmt.Fprintf(os.Stderr, "replica %s: %d executed, %d of %d served from cache, %d workers, up %s\n",
				rep, st.Engine.Executed, st.Engine.Hits, st.Engine.Requests,
				st.Workers, (time.Duration(st.UptimeSeconds) * time.Second).Round(time.Second))
			if ps := st.Store.Peer; ps.Hits > 0 || ps.Misses > 0 {
				fmt.Fprintf(os.Stderr, "  store: mem %d/%d, disk %d/%d, peer %d/%d hits/misses, %d peer-installed\n",
					st.Store.Mem.Hits, st.Store.Mem.Misses, st.Store.Disk.Hits, st.Store.Disk.Misses,
					ps.Hits, ps.Misses, st.Store.PeerInstalls)
			}
			if line := phaseLine(st.RunPhases); line != "" {
				fmt.Fprintf(os.Stderr, "  phases: %s\n", line)
			}
		}
		fmt.Fprintf(os.Stderr, "cluster: %d replicas, %d simulations executed, %d of %d requests served from cache\n",
			len(reps), executed, hits, requests)
		if store.Peer.Hits > 0 || store.Peer.Misses > 0 {
			fmt.Fprintf(os.Stderr, "cluster store: %d peer fetches delivered, %d missed, %d installed to disk\n",
				store.Peer.Hits, store.Peer.Misses, store.PeerInstalls)
		}
		sw := c.SweepStats()
		fmt.Fprintf(os.Stderr, "cluster sweep: %d rounds, %d stream resumes, %d throttle waits, %d of %d retry budget spent, %d breaker trips\n",
			sw.Rounds, sw.Resumes, sw.ThrottleWaits, sw.RetriesUsed, sw.RetryBudget, sw.BreakerTrips)
		if id := c.SweepTraceID(); id != "" {
			fmt.Fprintf(os.Stderr, "cluster sweep trace: %s\n", id)
		}
		agg, err := c.Stats(ctx)
		if err == nil {
			printOccupancyTable(os.Stderr, agg)
		}
	}
}

// printOccupancyTable renders the fleet-wide interval-telemetry
// rollup: one row per benchmark personality with mean/peak structure
// occupancy and sampled IPC, then the modeled per-structure energy
// split. Silent when no replica retained telemetry (all runs were
// cache hits, or the fleet predates interval sampling).
func printOccupancyTable(w io.Writer, agg client.StatsResponse) {
	if len(agg.TimelineStats) > 0 {
		benches := make([]string, 0, len(agg.TimelineStats))
		for b := range agg.TimelineStats {
			benches = append(benches, b)
		}
		sort.Strings(benches)
		fmt.Fprintf(w, "cluster occupancy (sampled intervals, per personality):\n")
		fmt.Fprintf(w, "  %-12s %6s %10s %9s %9s %9s %9s %8s\n",
			"benchmark", "runs", "samples", "lsq-mean", "lsq-peak", "rob-mean", "rob-peak", "ipc")
		for _, b := range benches {
			oa := agg.TimelineStats[b]
			fmt.Fprintf(w, "  %-12s %6d %10d %9.1f %9d %9.1f %9d %8.3f\n",
				b, oa.Runs, oa.Samples, oa.MeanLSQ(), oa.PeakLSQ, oa.MeanROB(), oa.PeakROB, oa.MeanIPC())
		}
	}
	if len(agg.EnergyPJ) > 0 {
		structs := make([]string, 0, len(agg.EnergyPJ))
		for k := range agg.EnergyPJ {
			structs = append(structs, k)
		}
		sort.Strings(structs)
		var parts []string
		for _, k := range structs {
			parts = append(parts, fmt.Sprintf("%s=%.3guJ", k, agg.EnergyPJ[k]*1e-6))
		}
		fmt.Fprintf(w, "cluster energy (sampled): %s\n", strings.Join(parts, " "))
	}
}

// phaseLine renders one replica's per-phase latency percentiles
// (p50/p95/p99 from the samie_run_phase_seconds snapshot), skipping
// phases the replica never entered. Empty when the replica predates
// phase accounting.
func phaseLine(ps obs.PhaseStats) string {
	var parts []string
	for _, p := range obs.AllPhases() {
		h := ps[p.String()]
		if h.Count == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s p50=%s p95=%s p99=%s n=%d",
			p, fmtSecs(h.Quantile(0.50)), fmtSecs(h.Quantile(0.95)), fmtSecs(h.Quantile(0.99)), h.Count))
	}
	return strings.Join(parts, ", ")
}

// fmtSecs renders a seconds quantile as a compact duration.
func fmtSecs(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond).String()
}

// writeSweepTrace reassembles the fleet-wide trace tree for the
// sweeps this invocation ran — the coordinator's own spans plus every
// replica's retained spans for those trace IDs, each tagged with its
// source so the Chrome export lays them out in per-process lanes —
// and writes it as Chrome trace-event JSON.
func writeSweepTrace(ctx context.Context, c *cluster.ShardedClient, traceIDs []string, path string) error {
	spans := obs.Default().Spans()
	for i := range spans {
		spans[i].Attrs = append(spans[i].Attrs, obs.SpanAttr{Key: "source", Value: "coordinator"})
	}
	seen := map[string]bool{}
	var tracks []obs.CounterTrack
	for _, id := range traceIDs {
		if id == "" || seen[id] {
			continue
		}
		seen[id] = true
		s, t := c.TraceData(ctx, id)
		spans = append(spans, s...)
		tracks = append(tracks, t...)
	}
	data, err := obs.ChromeTraceWithCounters(spans, tracks)
	if err != nil {
		return fmt.Errorf("trace-out: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("trace-out: %w", err)
	}
	fmt.Fprintf(os.Stderr, "trace: %d spans, %d counter tracks written to %s\n", len(spans), len(tracks), path)
	return nil
}
