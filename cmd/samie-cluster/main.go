// Command samie-cluster fans whole-suite or scenario regeneration out
// across a set of samie-serve replicas: the suite's distinct
// simulations are partitioned by rendezvous hashing of their canonical
// keys, each replica executes its shard exactly once (streaming
// results back as they complete), and the paper artefacts are
// reassembled locally — byte-identical to the single-node harnesses.
// A replica that dies mid-sweep is quarantined and its remaining work
// re-shards onto the survivors.
//
// Usage:
//
//	samie-cluster -replicas http://a:8344,http://b:8344                 # full suite, all 26 benchmarks
//	samie-cluster -replicas ... -bench ammp,gzip,mcf,swim -insts 25000  # golden subset
//	samie-cluster -replicas ... -scenario models -scenario adversarial  # sharded sweeps
//	samie-cluster -replicas ... -stats                                  # + per-replica accounting (stderr)
//
// See docs/cluster.md for the deployment story.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"samielsq/internal/experiments"
	"samielsq/pkg/cluster"
)

type stringList []string

func (f *stringList) String() string     { return strings.Join(*f, ",") }
func (f *stringList) Set(v string) error { *f = append(*f, v); return nil }

func main() {
	var scenarios stringList
	replicas := flag.String("replicas", "", "comma-separated samie-serve base URLs (required)")
	benchCSV := flag.String("bench", "", "comma-separated benchmark subset (default: all 26; scenarios may carry their own default rows)")
	insts := flag.Uint64("insts", 0, "measured instructions per benchmark (default: the library default)")
	flag.Var(&scenarios, "scenario", "registered scenario sweep to shard across the cluster; repeatable (default: the full suite)")
	stats := flag.Bool("stats", false, "print per-replica and aggregate engine accounting to stderr afterwards")
	retryBudget := flag.Int("max-retry-budget", 32, "total stream resumes + re-shard rounds a sweep may spend before giving up")
	timeout := flag.Duration("timeout", 0, "overall deadline for the sweep (0 = none)")
	quiet := flag.Bool("quiet", false, "suppress per-run progress on stderr")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	if *replicas == "" {
		fmt.Fprintln(os.Stderr, "-replicas is required (comma-separated samie-serve URLs)")
		os.Exit(2)
	}

	c, err := cluster.New(strings.Split(*replicas, ","), cluster.WithRetryBudget(*retryBudget))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := c.Health(ctx); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var benchmarks []string // nil = the full suite / scenario default
	if *benchCSV != "" {
		benchmarks = strings.Split(*benchCSV, ",")
	}
	// Validate scenario names up front: a typo must not cost a sweep.
	for _, name := range scenarios {
		if _, ok := experiments.LookupScenario(name); !ok {
			fmt.Fprintf(os.Stderr, "unknown scenario %q (have %s)\n", name, strings.Join(experiments.ScenarioNames(), ", "))
			os.Exit(2)
		}
	}

	progress := func(label string) func(cluster.Progress) {
		if *quiet {
			return nil
		}
		return func(p cluster.Progress) {
			fmt.Fprintf(os.Stderr, "\r%s: %d/%d runs (last from %s)", label, p.Done, p.Total, p.Replica)
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	if len(scenarios) == 0 {
		res, err := c.Suite(ctx, benchmarks, *insts, progress("suite"))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Exact bytes (no extra newline): CI diffs this against the
		// golden suite rendering.
		fmt.Print(res.String())
	}
	for _, name := range scenarios {
		res, err := c.Scenario(ctx, name, benchmarks, *insts, progress(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(res.String())
	}

	if *stats {
		per, err := c.PerReplicaStats(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		reps := make([]string, 0, len(per))
		for rep := range per {
			reps = append(reps, rep)
		}
		sort.Strings(reps)
		var executed, requests, hits int64
		var store experiments.StoreStats
		for _, rep := range reps {
			st := per[rep]
			executed += st.Engine.Executed
			requests += st.Engine.Requests
			hits += st.Engine.Hits
			store.Add(st.Store)
			fmt.Fprintf(os.Stderr, "replica %s: %d executed, %d of %d served from cache, %d workers, up %s\n",
				rep, st.Engine.Executed, st.Engine.Hits, st.Engine.Requests,
				st.Workers, (time.Duration(st.UptimeSeconds) * time.Second).Round(time.Second))
			if ps := st.Store.Peer; ps.Hits > 0 || ps.Misses > 0 {
				fmt.Fprintf(os.Stderr, "  store: mem %d/%d, disk %d/%d, peer %d/%d hits/misses, %d peer-installed\n",
					st.Store.Mem.Hits, st.Store.Mem.Misses, st.Store.Disk.Hits, st.Store.Disk.Misses,
					ps.Hits, ps.Misses, st.Store.PeerInstalls)
			}
		}
		fmt.Fprintf(os.Stderr, "cluster: %d replicas, %d simulations executed, %d of %d requests served from cache\n",
			len(reps), executed, hits, requests)
		if store.Peer.Hits > 0 || store.Peer.Misses > 0 {
			fmt.Fprintf(os.Stderr, "cluster store: %d peer fetches delivered, %d missed, %d installed to disk\n",
				store.Peer.Hits, store.Peer.Misses, store.PeerInstalls)
		}
		sw := c.SweepStats()
		fmt.Fprintf(os.Stderr, "cluster sweep: %d rounds, %d stream resumes, %d throttle waits, %d of %d retry budget spent, %d breaker trips\n",
			sw.Rounds, sw.Resumes, sw.ThrottleWaits, sw.RetriesUsed, sw.RetryBudget, sw.BreakerTrips)
	}
}
