// Command samie-cacti queries the analytical CACTI-3.0-style model:
// access delay, energy and area for RAM/CAM arrays and set-associative
// caches at 0.10 µm, as used by the paper's Table 1 and §3.6.
//
// Usage:
//
//	samie-cacti -kind cache -size 8192 -ways 4 -line 32 -ports 2
//	samie-cacti -kind cam -rows 128 -bits 32 -ports 4
//	samie-cacti -kind ram -rows 64 -bits 41 -ports 2
package main

import (
	"flag"
	"fmt"
	"os"

	"samielsq/internal/cacti"
)

func main() {
	kind := flag.String("kind", "cache", "structure kind: cache, ram, cam")
	size := flag.Int("size", 8192, "cache size in bytes")
	ways := flag.Int("ways", 4, "cache associativity")
	line := flag.Int("line", 32, "cache line bytes")
	rows := flag.Int("rows", 128, "array rows (ram/cam)")
	bits := flag.Int("bits", 32, "array bits per row (ram/cam)")
	ports := flag.Int("ports", 2, "read/write ports")
	flag.Parse()

	tech := cacti.Tech100nm()
	switch *kind {
	case "cache":
		d := tech.CacheAccess(*size, *ways, *line, *ports)
		impr := 0.0
		if d.Conventional > 0 {
			impr = (1 - d.WayKnown/d.Conventional) * 100
		}
		fmt.Printf("%dKB %d-way %d-port cache (%dB lines)\n", *size>>10, *ways, *ports, *line)
		fmt.Printf("  conventional access  %.3f ns\n", d.Conventional)
		fmt.Printf("  way-known access     %.3f ns (%.1f%% faster)\n", d.WayKnown, impr)
	case "ram", "cam":
		g := cacti.Geometry{Rows: *rows, Bits: *bits, Assoc: 1, Ports: *ports, CAM: *kind == "cam"}
		fmt.Printf("%s array: %d rows x %d bits, %d ports\n", *kind, *rows, *bits, *ports)
		fmt.Printf("  access delay  %.3f ns\n", tech.AccessDelay(g))
		fmt.Printf("  access energy %.2f pJ\n", tech.AccessEnergy(g))
		fmt.Printf("  area          %.0f um^2\n", tech.Area(g))
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}
}
