// Command samie-serve exposes the shared-run simulation engine as a
// JSON-over-HTTP service: many clients share one long-lived memoizing
// Batch (plus its on-disk cache), so concurrent identical requests
// coalesce into a single simulation and figure regenerations serve
// from a warm cache. See docs/http-api.md for the endpoint reference.
//
// Usage:
//
//	samie-serve                          # :8344, disk cache at <user cache dir>/samielsq
//	samie-serve -addr :9000 -workers 8   # bind + simulation parallelism
//	samie-serve -cache-limit 4096        # bound the in-memory run cache (LRU)
//	samie-serve -cache-max-bytes 1000000000 -cache-max-age 720h
//	samie-serve -preload                 # warm the run cache from the disk index
//	samie-serve -max-concurrent 64 -request-timeout 5m
//	samie-serve -peers http://b:8344,http://c:8344   # tier-2 peer fetch from siblings
//	samie-serve -pprof-addr 127.0.0.1:6060           # net/http/pprof on a private listener
//
// The process drains gracefully on SIGINT/SIGTERM: /healthz flips to
// 503, live NDJSON streams receive a terminal error event before the
// listener closes, in-flight simulations finish (bounded by
// -shutdown-grace), queued ones are withdrawn.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"samielsq/internal/experiments"
	"samielsq/internal/faultinject"
	"samielsq/internal/server"
	"samielsq/pkg/cluster"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	workers := flag.Int("workers", 0, "max concurrent simulations (default GOMAXPROCS)")
	maxConcurrent := flag.Int("max-concurrent", 0, "max admitted simulation requests (default 4x workers); beyond it requests get 429 + Retry-After")
	requestTimeout := flag.Duration("request-timeout", 10*time.Minute, "per-request deadline for simulation endpoints (0 disables)")
	defaultInsts := flag.Uint64("default-insts", experiments.DefaultInsts, "instruction budget when a request omits insts")
	maxInsts := flag.Uint64("max-insts", 10_000_000, "reject requests above this per-run budget (0 = unlimited)")
	cachedir := flag.String("cachedir", "auto", `on-disk run cache directory ("auto" = <user cache dir>/samielsq, "" disables)`)
	cacheLimit := flag.Int("cache-limit", 0, "LRU bound on in-memory memoized runs (0 = unbounded)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0, "prune the disk cache to this many bytes (0 = unbounded)")
	cacheMaxAge := flag.Duration("cache-max-age", 0, "prune disk artifacts older than this (0 = keep forever)")
	pruneInterval := flag.Duration("cache-prune-interval", 15*time.Minute, "how often to re-apply the disk cache bounds")
	preload := flag.Bool("preload", false, "preload the in-memory run cache from the disk cache index at startup")
	peers := flag.String("peers", "", "comma-separated sibling replica base URLs for the tier-2 peer-fetch store (this replica excluded)")
	peerTimeout := flag.Duration("peer-timeout", 3*time.Second, "per-peer probe deadline for tier-2 fetches")
	peerAdopt := flag.Bool("peer-adopt", true, "adopt the sibling replica set a cluster coordinator supplies with each shard")
	shutdownGrace := flag.Duration("shutdown-grace", 30*time.Second, "how long shutdown waits for in-flight requests to drain")
	chaos := flag.String("chaos", "", `deterministic fault injection spec, e.g. "err=0.1,lat=5ms:50ms,reset=0.05,trunc=0.02,seed=42" (testing only; POST /v1/chaos reconfigures at runtime)`)
	pprofAddr := flag.String("pprof-addr", "", `serve net/http/pprof on this separate address ("" disables); bind it privately — the profiles expose internals`)
	logJSON := flag.Bool("log-json", false, "log as JSON instead of text")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	log := slog.New(handler)

	chaosSpec, err := faultinject.ParseSpec(*chaos)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-chaos: %v\n", err)
		os.Exit(2)
	}

	// Assemble the shared batch: one memoizing scheduler for every
	// client of this process, spilling to disk unless -cachedir ""
	// asked not to (a cache failure degrades to the uncached batch).
	batch, dir := experiments.OpenBatch(*workers, *cachedir, func(err error) {
		log.Warn("disk cache disabled", "err", err)
	})
	if *cacheLimit > 0 {
		batch.SetCacheLimit(*cacheLimit)
	}

	preloaded := 0
	if dir != "" {
		// Apply the disk bounds before preloading so a bounded cache
		// never warms with artifacts it is about to drop.
		pruneDisk(log, batch, *cacheMaxBytes, *cacheMaxAge)
		if *preload {
			n, err := batch.PreloadDisk()
			if err != nil {
				log.Warn("preload failed", "err", err)
			} else {
				preloaded = n
				log.Info("preloaded run cache", "runs", n, "dir", dir)
			}
		}
	}

	// Tier-2 peer fetch: a static -peers list enables it at boot; with
	// -peer-adopt a coordinator's pushed replica set enables (or
	// retargets) it at the first shard. Either way the fetcher is
	// created once and retargeted thereafter, so its quarantine state
	// and the batch wiring survive fleet changes.
	var peerMu sync.Mutex
	var fetcher *cluster.PeerFetcher
	setPeers := func(urls []string) {
		peerMu.Lock()
		defer peerMu.Unlock()
		if fetcher == nil {
			fetcher = cluster.NewPeerFetcher(urls, cluster.WithPeerTimeout(*peerTimeout))
			batch.SetPeerStore(fetcher)
			log.Info("peer-fetch tier enabled", "peers", fetcher.Peers())
			return
		}
		fetcher.SetPeers(urls)
	}
	if *peers != "" {
		setPeers(strings.Split(*peers, ","))
	}

	cfg := server.Config{
		Batch:          batch,
		Logger:         log,
		MaxConcurrent:  *maxConcurrent,
		RequestTimeout: *requestTimeout,
		DefaultInsts:   *defaultInsts,
		MaxInsts:       *maxInsts,
		CacheDir:       dir,
		Preloaded:      preloaded,
		Chaos:          chaosSpec,
	}
	if *peerAdopt {
		cfg.PeerAdopt = setPeers
	}
	srv, err := server.New(cfg)
	if err != nil {
		log.Error("config", "err", err)
		os.Exit(2)
	}
	if chaosSpec.Enabled() {
		log.Warn("chaos fault injection ENABLED", "spec", chaosSpec.String())
	}

	// Profiling stays off the service mux entirely: its own listener on
	// its own (private) address, so the API surface never grows pprof
	// endpoints and an operator can firewall the two independently.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Error("pprof listen", "err", err)
			os.Exit(1)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Info("pprof listening", "addr", pln.Addr().String())
		go func() {
			// The operator asked for profiling; losing it silently would
			// leave an incident undebuggable, so a dead pprof server
			// takes the process down rather than limping on without it.
			if err := http.Serve(pln, mux); err != nil {
				log.Error("pprof server failed", "err", err)
				os.Exit(1)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen", "err", err)
		os.Exit(1)
	}
	hs := newHTTPServer(srv.Handler())

	// Periodic disk-cache hygiene for long-lived processes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if dir != "" && (*cacheMaxBytes > 0 || *cacheMaxAge > 0) && *pruneInterval > 0 {
		go func() {
			t := time.NewTicker(*pruneInterval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					pruneDisk(log, batch, *cacheMaxBytes, *cacheMaxAge)
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Info("samie-serve listening",
		"addr", ln.Addr().String(),
		"workers", batch.Workers(),
		"cachedir", dir,
		"default_insts", *defaultInsts,
	)

	select {
	case err := <-errc:
		log.Error("serve", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: /healthz flips to 503 and in-flight NDJSON
	// streams get a terminal error event over their still-open
	// connections (the coordinator re-requests the undelivered work
	// elsewhere), then the listener closes and admitted non-streaming
	// requests finish inside the grace window. Queued simulations whose
	// requests die with the window are withdrawn by their contexts, so
	// nothing leaks.
	log.Info("shutting down, draining in-flight simulations", "grace", shutdownGrace.String())
	srv.BeginDrain()
	shCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Error("shutdown", "err", err)
		os.Exit(1)
	}
	// Flush the disk cache's debounced index so the next process over
	// this directory enumerates everything this one wrote.
	if err := batch.Close(); err != nil {
		log.Warn("cache close", "err", err)
	}
	st := batch.Stats()
	log.Info("stopped", "executed", st.Executed, "hits", st.Hits, "requests", st.Requests)
}

// newHTTPServer wraps the service handler with the connection-level
// timeouts the handler itself cannot impose. ReadHeaderTimeout drops a
// client that trickles its request head (slowloris — the admission
// semaphore only guards requests that finish arriving), IdleTimeout
// reclaims parked keep-alive connections. WriteTimeout deliberately
// stays 0: suite and scenario NDJSON streams legitimately run for as
// long as the sweep simulates, and a non-zero value would sever them
// mid-stream (per-request deadlines already come from -request-timeout
// via the handler's context).
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// pruneDisk applies the disk bounds and logs the outcome.
func pruneDisk(log *slog.Logger, batch *experiments.Batch, maxBytes int64, maxAge time.Duration) {
	if maxBytes <= 0 && maxAge <= 0 {
		return
	}
	ps, err := batch.Disk().Prune(maxBytes, maxAge)
	if err != nil {
		log.Warn("disk cache prune failed", "err", err)
		return
	}
	log.Info("disk cache pruned",
		"removed", ps.Removed, "freed_bytes", ps.FreedBytes,
		"remaining", ps.Remaining, "remaining_bytes", ps.RemainingBytes)
}
