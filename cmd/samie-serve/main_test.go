package main

import (
	"context"
	"io"
	"log/slog"
	"net"
	"net/http"
	"testing"

	"samielsq/internal/experiments"
	"samielsq/internal/server"
	"samielsq/pkg/client"
)

func TestHTTPServerTimeouts(t *testing.T) {
	hs := newHTTPServer(http.NewServeMux())
	if hs.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset: a trickled request head holds a connection forever (slowloris)")
	}
	if hs.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset: parked keep-alive connections are never reclaimed")
	}
	if hs.WriteTimeout != 0 {
		t.Errorf("WriteTimeout = %s, must stay 0 so long NDJSON suite/scenario streams are never severed", hs.WriteTimeout)
	}
}

// TestConfiguredServerStreamsScenario runs a real scenario stream
// through the exact http.Server main builds, proving the header/idle
// timeouts do not sever a long-lived NDJSON response.
func TestConfiguredServerStreamsScenario(t *testing.T) {
	s, err := server.New(server.Config{
		Batch:        experiments.NewBatch(1),
		Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
		DefaultInsts: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := newHTTPServer(s.Handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })

	events := 0
	c := client.New("http://" + ln.Addr().String())
	res, err := c.RunScenario(context.Background(), "distrib-banking",
		client.ScenarioRunRequest{Benchmarks: []string{"gzip"}, Insts: 10_000},
		func(ev client.ScenarioEvent) { events++ })
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 || res.Text == "" {
		t.Errorf("stream through the configured server yielded %d events and %d bytes", events, len(res.Text))
	}
}
