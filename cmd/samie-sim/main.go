// Command samie-sim runs one benchmark under a chosen LSQ model and
// prints the simulation summary: IPC, stall breakdown, LSQ statistics
// and the dynamic energy per structure.
//
// Usage:
//
//	samie-sim -bench swim                 # SAMIE-LSQ, paper config
//	samie-sim -bench ammp -model conv     # 128-entry conventional LSQ
//	samie-sim -bench gcc -model arb -banks 64 -addrs 2
//	samie-sim -bench swim -banks 32 -entries 4 -slots 8 -shared 16
package main

import (
	"flag"
	"fmt"
	"os"

	"samielsq/internal/core"
	"samielsq/internal/experiments"
)

func main() {
	bench := flag.String("bench", "swim", "benchmark name (see -list)")
	model := flag.String("model", "samie", "LSQ model: samie, conv, arb, unbounded")
	insts := flag.Uint64("insts", experiments.DefaultInsts, "measured instructions")
	warmup := flag.Uint64("warmup", 0, "warm-up instructions (default insts/2)")
	list := flag.Bool("list", false, "list benchmarks and exit")
	showKey := flag.Bool("key", false, "print the spec's canonical engine cache key")
	cachedir := flag.String("cachedir", "auto", `on-disk run cache directory ("auto" = <user cache dir>/samielsq, "" disables)`)

	banks := flag.Int("banks", 64, "DistribLSQ banks (samie) / ARB banks")
	entries := flag.Int("entries", 2, "DistribLSQ entries per bank")
	slots := flag.Int("slots", 8, "slots per entry")
	shared := flag.Int("shared", 8, "SharedLSQ entries")
	addrBuf := flag.Int("addrbuf", 64, "AddrBuffer slots")
	addrs := flag.Int("addrs", 2, "ARB addresses per bank")
	inflight := flag.Int("inflight", 128, "ARB in-flight cap / conventional entries")
	flag.Parse()

	if *list {
		for _, b := range experiments.Benchmarks() {
			fmt.Println(b)
		}
		return
	}

	spec := experiments.RunSpec{Benchmark: *bench, Insts: *insts, Warmup: *warmup}
	switch *model {
	case "samie":
		cfg := core.PaperConfig()
		cfg.Banks, cfg.EntriesPerBank, cfg.SlotsPerEntry = *banks, *entries, *slots
		cfg.SharedEntries, cfg.AddrBufferSlots = *shared, *addrBuf
		spec.Model = experiments.ModelSAMIE
		spec.SAMIE = &cfg
	case "conv":
		spec.Model = experiments.ModelConventional
		spec.ConvEntries = *inflight
	case "arb":
		spec.Model = experiments.ModelARB
		spec.ARBBanks, spec.ARBAddrs, spec.ARBInflight = *banks, *addrs, *inflight
	case "unbounded":
		spec.Model = experiments.ModelUnbounded
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *model)
		os.Exit(2)
	}

	if *showKey {
		fmt.Println(experiments.Key(spec))
	}

	// A single run still goes through the engine so the spec takes the
	// same normalization path as the batch harnesses — and through the
	// shared on-disk artifact cache (same -cachedir semantics as
	// samie-bench), so repeated CLI invocations reuse finished
	// simulations and contribute theirs back.
	batch, _ := experiments.OpenBatch(1, *cachedir, func(err error) {
		fmt.Fprintf(os.Stderr, "disk cache disabled: %v\n", err)
	})
	// Close flushes the debounced index so sibling processes adopting
	// the cache directory can enumerate this run's artifact.
	defer batch.Close()
	r := batch.Run(spec)
	c := r.CPU
	fmt.Printf("benchmark          %s (%s model)\n", *bench, *model)
	fmt.Printf("instructions       %d (cycles %d)\n", c.Committed, c.Cycles)
	fmt.Printf("IPC                %.4f\n", c.IPC)
	fmt.Printf("loads/stores       %d / %d (forwarded %d)\n", c.Loads, c.Stores, c.ForwardedLoads)
	fmt.Printf("branch mispredicts %d of %d (%.2f%%)\n",
		c.BranchMispredicts, c.BranchLookups,
		100*float64(c.BranchMispredicts)/float64(max(c.BranchLookups, 1)))
	fmt.Printf("L1D miss rate      %.3f   DTLB miss rate %.4f\n", c.L1DMissRate, c.DTLBMissRate)
	fmt.Printf("deadlock flushes   %d (%.1f per Mcycle)\n",
		c.DeadlockFlushes, 1e6*float64(c.DeadlockFlushes)/float64(max(c.Cycles, 1)))
	fmt.Printf("fetch stalls       %d (branch %d, other %d); dispatch stalls %d\n",
		c.FetchStallCycles, c.FetchStallBranch, c.FetchStallOther, c.DispatchStalls)

	m := r.Meter
	fmt.Printf("\nDynamic energy (nJ)\n")
	switch spec.Model {
	case experiments.ModelConventional:
		fmt.Printf("  LSQ (conventional) %.1f\n", m.ConvLSQ/1e3)
	case experiments.ModelSAMIE:
		fmt.Printf("  DistribLSQ %.1f  SharedLSQ %.1f  AddrBuffer %.1f  Bus %.1f  (total %.1f)\n",
			m.Distrib/1e3, m.Shared/1e3, m.AddrBuffer/1e3, m.Bus/1e3, m.SAMIETotal()/1e3)
	}
	fmt.Printf("  Dcache %.1f  DTLB %.1f\n", m.Dcache/1e3, m.DTLB/1e3)

	if spec.Model == experiments.ModelSAMIE {
		s := r.SAMIE
		fmt.Printf("\nSAMIE-LSQ statistics\n")
		fmt.Printf("  placed: distrib %d, shared %d, buffered %d, failures %d\n",
			s.PlacedDistrib, s.PlacedShared, s.Buffered, s.PlaceFailures)
		fmt.Printf("  way-known accesses %d, TLB reuses %d, presentBit flushes %d\n",
			s.WayKnownHits, s.TLBReuses, s.PresentFlushes)
		fmt.Printf("  mean SharedLSQ occupancy %.2f (max %d); AddrBuffer idle %.2f%% of cycles\n",
			s.MeanSharedOcc(), s.MaxSharedOcc, 100*s.ABEmptyFraction())
	}
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
