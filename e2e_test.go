package samielsq_test

// End-to-end test matrix over the public API. Every case below is
// listed in docs/functional-testing.md with the same case ID; keep the
// two in sync. Each case runs as one named subtest (E00001...), so
//
//	go test -run 'TestE2E/E00007' .
//
// replays a single case. Budgets shrink under -short so the whole
// matrix stays in the seconds range on one core.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"samielsq"
	"samielsq/internal/faultinject"
	"samielsq/internal/obs"
	"samielsq/internal/server"
	"samielsq/pkg/client"
	"samielsq/pkg/cluster"
)

// e2eInsts is the per-benchmark instruction budget for simulation
// cases.
func e2eInsts() uint64 {
	if testing.Short() {
		return 10_000
	}
	return 25_000
}

// e2eBench is the two-benchmark subset simulation cases sweep: one
// streaming FP program, one integer program.
var e2eBench = []string{"swim", "gzip"}

type e2eCase struct {
	id, name string
	run      func(t *testing.T)
}

func TestE2E(t *testing.T) {
	cases := []e2eCase{
		{"E00001", "benchmark_suite_and_personalities", caseBenchmarkSuite},
		{"E00002", "paper_configurations", casePaperConfigs},
		{"E00003", "compare_headline_savings", caseCompareHeadlines},
		{"E00004", "compare_shares_figure56_runs", caseCompareSharesRuns},
		{"E00005", "figure56_end_to_end", caseFigure56},
		{"E00006", "energy_figures_end_to_end", caseEnergy},
		{"E00007", "suite_shared_batch_exactly_once", caseSuiteExactlyOnce},
		{"E00008", "suite_figures_match_standalone", caseSuiteMatchesStandalone},
		{"E00009", "scenario_registry_sweep", caseScenarioSweep},
		{"E00010", "scenario_unknown_name_errors", caseScenarioUnknown},
		{"E00011", "scenario_custom_registration", caseScenarioCustom},
		{"E00012", "static_tables_render", caseStaticTables},
		{"E00013", "deterministic_across_workers", caseDeterminism},
		{"E00014", "engine_key_canonicalization", caseKeyCanonicalization},
		{"E00015", "server_concurrent_runs_coalesce", caseServerRunsCoalesce},
		{"E00016", "server_figures_match_golden_suite", caseServerFiguresGolden},
		{"E00017", "server_metrics_exposition_parses", caseServerMetrics},
		{"E00018", "server_scenario_stream_matches_library", caseServerScenarioStream},
		{"E00019", "cluster_two_replica_suite_exactly_once", caseClusterSuiteExactlyOnce},
		{"E00020", "cluster_failover_replica_stopped_mid_sweep", caseClusterFailoverMidSweep},
		{"E00021", "server_run_cache_probe", caseRunCacheProbe},
		{"E00022", "cluster_cold_replica_peer_warm", caseClusterColdReplicaPeerWarm},
		{"E00023", "cluster_chaos_sweep_byte_identical_exactly_once", caseClusterChaosSweep},
		{"E00024", "cluster_chaos_stream_resume_exactly_once", caseClusterChaosStreamResume},
		{"E00025", "server_drain_stream_terminal_event", caseServerDrainStream},
		{"E00026", "cluster_traced_sweep_single_tree", caseClusterSweepTrace},
	}
	seen := map[string]bool{}
	for _, c := range cases {
		if seen[c.id] {
			t.Fatalf("duplicate case ID %s", c.id)
		}
		seen[c.id] = true
		t.Run(c.id+"_"+c.name, c.run)
	}
}

func caseBenchmarkSuite(t *testing.T) {
	bs := samielsq.Benchmarks()
	if len(bs) != 26 {
		t.Fatalf("suite has %d programs, want 26", len(bs))
	}
	for _, want := range e2eBench {
		found := false
		for _, b := range bs {
			found = found || b == want
		}
		if !found {
			t.Errorf("suite misses %s", want)
		}
	}
	if _, err := samielsq.BenchmarkPersonality("swim"); err != nil {
		t.Fatal(err)
	}
	if _, err := samielsq.BenchmarkPersonality("nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func casePaperConfigs(t *testing.T) {
	sc := samielsq.PaperSAMIEConfig()
	if sc.Banks != 64 || sc.EntriesPerBank != 2 || sc.SlotsPerEntry != 8 ||
		sc.SharedEntries != 8 || sc.AddrBufferSlots != 64 {
		t.Fatalf("Table 3 config wrong: %+v", sc)
	}
	cc := samielsq.PaperCPUConfig()
	if cc.ROBSize != 256 || cc.FetchWidth != 8 || cc.DcachePorts != 4 {
		t.Fatalf("Table 2 config wrong: %+v", cc)
	}
}

func caseCompareHeadlines(t *testing.T) {
	r := samielsq.Compare("swim", e2eInsts())
	if r.Benchmark != "swim" {
		t.Fatalf("result for %q, want swim", r.Benchmark)
	}
	if r.Conventional.IPC <= 0 || r.SAMIE.IPC <= 0 {
		t.Fatalf("non-positive IPC: %+v", r)
	}
	if r.IPCLossPct > 5 {
		t.Errorf("swim IPC loss %.2f%% too high", r.IPCLossPct)
	}
	if r.LSQSavingPct < 40 {
		t.Errorf("LSQ saving %.1f%% too low", r.LSQSavingPct)
	}
	if r.DcacheSavingPct < 15 {
		t.Errorf("Dcache saving %.1f%% too low", r.DcacheSavingPct)
	}
	if r.DTLBSavingPct < 30 {
		t.Errorf("DTLB saving %.1f%% too low", r.DTLBSavingPct)
	}
}

func caseCompareSharesRuns(t *testing.T) {
	b := samielsq.NewBatch(0)
	fig := b.Figure56(e2eBench, e2eInsts())
	before := b.Stats().Executed
	r := samielsq.CompareIn(b, "swim", e2eInsts())
	if after := b.Stats().Executed; after != before {
		t.Errorf("CompareIn simulated %d new runs after Figure56, want 0", after-before)
	}
	if r.Conventional.IPC != fig.Rows[0].ConvIPC || r.SAMIE.IPC != fig.Rows[0].SAMIEIPC {
		t.Errorf("CompareIn IPCs (%.4f, %.4f) differ from Figure56 row (%.4f, %.4f)",
			r.Conventional.IPC, r.SAMIE.IPC, fig.Rows[0].ConvIPC, fig.Rows[0].SAMIEIPC)
	}
}

func caseFigure56(t *testing.T) {
	f := samielsq.Figure56(e2eBench, e2eInsts())
	if len(f.Rows) != len(e2eBench) {
		t.Fatalf("%d rows, want %d", len(f.Rows), len(e2eBench))
	}
	for _, r := range f.Rows {
		if r.ConvIPC <= 0 || r.SAMIEIPC <= 0 {
			t.Errorf("%s: non-positive IPC", r.Benchmark)
		}
	}
	s := f.String()
	if !strings.Contains(s, "SPEC mean IPC loss") || !strings.Contains(s, "deadlocks/Mcycle") {
		t.Errorf("rendering lost headline lines:\n%s", s)
	}
}

func caseEnergy(t *testing.T) {
	e := samielsq.Energy(e2eBench, e2eInsts())
	if len(e.Rows) != len(e2eBench) {
		t.Fatalf("%d rows, want %d", len(e.Rows), len(e2eBench))
	}
	if s := e.LSQSavings(); s < 0.4 || s > 1 {
		t.Errorf("LSQ savings %.2f out of band (paper 0.82)", s)
	}
	if s := e.DcacheSavings(); s < 0.15 || s > 1 {
		t.Errorf("Dcache savings %.2f out of band (paper 0.42)", s)
	}
	if s := e.DTLBSavings(); s < 0.3 || s > 1 {
		t.Errorf("DTLB savings %.2f out of band (paper 0.73)", s)
	}
	for _, part := range []string{"Figure 7", "Figure 8", "Figure 9", "Figure 10", "Figure 11", "Figure 12"} {
		if !strings.Contains(e.String(), part) {
			t.Errorf("rendering lost %s", part)
		}
	}
}

func caseSuiteExactlyOnce(t *testing.T) {
	res := samielsq.RunSuite(e2eBench, e2eInsts())
	st := res.Runs
	if st.Executed == 0 || st.Hits == 0 {
		t.Fatalf("suite accounting implausible: %+v", st)
	}
	if st.Hits+st.Executed != st.Requests {
		t.Errorf("accounting leak: %d hits + %d executed != %d requests", st.Hits, st.Executed, st.Requests)
	}
	// Exactly-once across the whole suite: 16 ARB + 1 unbounded + 3
	// unbounded-shared + 16 Figure-4 sizes (one being the paper config)
	// + the conventional/SAMIE pair, per benchmark.
	want := int64(len(e2eBench) * 37)
	if st.Executed != want {
		t.Errorf("executed %d distinct simulations, want %d", st.Executed, want)
	}
	if !strings.Contains(res.String(), "Shared batch:") {
		t.Error("suite rendering lost the run accounting")
	}
}

func caseSuiteMatchesStandalone(t *testing.T) {
	b := samielsq.NewBatch(0)
	suiteFig := b.Figure56(e2eBench, e2eInsts())
	suiteEnergy := b.Energy(e2eBench, e2eInsts())
	if got, want := suiteFig.String(), samielsq.Figure56(e2eBench, e2eInsts()).String(); got != want {
		t.Errorf("Figure56 through shared batch differs from standalone\nshared:\n%s\nstandalone:\n%s", got, want)
	}
	if got, want := suiteEnergy.String(), samielsq.Energy(e2eBench, e2eInsts()).String(); got != want {
		t.Errorf("Energy through shared batch differs from standalone\nshared:\n%s\nstandalone:\n%s", got, want)
	}
}

func caseScenarioSweep(t *testing.T) {
	names := samielsq.ScenarioNames()
	if len(names) < 8 {
		t.Fatalf("only %d registered scenarios: %v", len(names), names)
	}
	res, err := samielsq.RunScenario("shared-lsq-sizes", e2eBench, e2eInsts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IPC) != len(e2eBench) || len(res.Variants) != 5 {
		t.Fatalf("sweep shape %dx%d, want %dx5", len(res.IPC), len(res.Variants), len(e2eBench))
	}
	for bi := range res.IPC {
		for vi, ipc := range res.IPC[bi] {
			if ipc <= 0.1 || ipc > 8 {
				t.Errorf("%s/%s IPC %.3f out of sane range",
					res.Benchmarks[bi], res.Variants[vi], ipc)
			}
		}
	}
	if !strings.Contains(res.String(), "geomean") {
		t.Error("sweep rendering lost the geomean row")
	}
}

func caseScenarioUnknown(t *testing.T) {
	if _, err := samielsq.RunScenario("no-such-sweep", e2eBench, 1000); err == nil {
		t.Fatal("unknown scenario did not error")
	} else if !strings.Contains(err.Error(), "no-such-sweep") {
		t.Errorf("error %q does not name the missing scenario", err)
	}
}

func caseScenarioCustom(t *testing.T) {
	cfg := samielsq.PaperSAMIEConfig()
	cfg.SharedEntries = 12
	samielsq.RegisterScenario(samielsq.Scenario{
		Name:        "e2e-custom",
		Description: "registered by the e2e matrix",
		Variants: []samielsq.ScenarioVariant{
			{Name: "shared-12", Spec: func(bench string, insts uint64) samielsq.RunSpec {
				c := cfg
				return samielsq.RunSpec{Benchmark: bench, Insts: insts, Model: samielsq.ModelSAMIE, SAMIE: &c}
			}},
		},
	})
	res, err := samielsq.RunScenario("e2e-custom", e2eBench[:1], e2eInsts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IPC) != 1 || len(res.IPC[0]) != 1 || res.IPC[0][0] <= 0 {
		t.Fatalf("custom sweep broken: %+v", res.IPC)
	}
}

func caseStaticTables(t *testing.T) {
	t1 := samielsq.Table1()
	if len(t1.Rows) != 8 || !strings.Contains(t1.String(), "8KB") {
		t.Fatal("Table 1 broken")
	}
	d := samielsq.Delays()
	if len(d.Rows) < 6 || !strings.Contains(d.String(), "SharedLSQ") {
		t.Fatal("delay analysis broken")
	}
	if !strings.Contains(samielsq.Tables456(), "452") {
		t.Fatal("Tables 4/5/6 rendering broken")
	}
}

func caseDeterminism(t *testing.T) {
	serial := samielsq.NewBatch(1).Figure56(e2eBench, e2eInsts())
	wide := samielsq.NewBatch(4).Figure56(e2eBench, e2eInsts())
	if serial.String() != wide.String() {
		t.Error("worker count changed figure output")
	}
	a := samielsq.Compare("gzip", e2eInsts())
	b := samielsq.Compare("gzip", e2eInsts())
	if a.Conventional.IPC != b.Conventional.IPC || a.SAMIE.IPC != b.SAMIE.IPC {
		t.Error("repeated Compare not deterministic")
	}
}

// bootServer starts the HTTP simulation service over a fresh shared
// batch on a random port and returns a typed client plus the batch for
// engine-level assertions.
func bootServer(t *testing.T) (*client.Client, *samielsq.Batch) {
	t.Helper()
	batch := samielsq.NewBatch(0)
	s, err := server.New(server.Config{
		Batch:        batch,
		Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
		DefaultInsts: e2eInsts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return client.New(ts.URL), batch
}

func caseServerRunsCoalesce(t *testing.T) {
	c, batch := bootServer(t)
	req := client.RunRequest{Benchmark: "swim", Model: client.ModelSAMIE, Insts: e2eInsts()}

	// Two concurrent identical requests must produce exactly one
	// underlying simulation: either the second coalesces onto the
	// in-flight run or it hits the memoized result, but it never
	// simulates again.
	var wg sync.WaitGroup
	results := make([]client.RunResponse, 2)
	errs := make([]error, 2)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Run(context.Background(), req)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if results[0].CPU != results[1].CPU || results[0].Key != results[1].Key {
		t.Error("concurrent identical requests returned different results")
	}
	st := batch.Stats()
	if st.Executed != 1 || st.Hits != 1 || st.Requests != 2 {
		t.Fatalf("coalescing failed: %+v, want executed=1 hits=1 requests=2", st)
	}
	// The server's own stats endpoint reports the same engine counters.
	remote, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if remote.Engine != st {
		t.Errorf("/v1/stats engine %+v differs from batch %+v", remote.Engine, st)
	}
}

func caseServerFiguresGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden figure comparison needs the full budget")
	}
	// The byte-for-byte bar: every figure endpoint must render exactly
	// the text pinned in the golden suite (same benchmarks and budget
	// as TestSuiteGolden).
	golden, err := os.ReadFile("internal/experiments/testdata/golden_suite.txt")
	if err != nil {
		t.Fatal(err)
	}
	goldenBenchmarks := []string{"ammp", "gzip", "mcf", "swim"}
	const goldenInsts = 25_000

	c, _ := bootServer(t)
	for _, fig := range []string{"1", "3", "4", "56", "energy"} {
		resp, err := c.Figure(context.Background(), fig, goldenBenchmarks, goldenInsts)
		if err != nil {
			t.Fatalf("figure %s: %v", fig, err)
		}
		if resp.Text == "" || !strings.Contains(string(golden), resp.Text) {
			t.Errorf("figure %s: server text not byte-identical to the golden suite\nserver:\n%s", fig, resp.Text)
		}
	}
}

func caseServerMetrics(t *testing.T) {
	c, _ := bootServer(t)
	if _, err := c.Run(context.Background(),
		client.RunRequest{Benchmark: "gzip", Model: client.ModelConventional, Insts: e2eInsts()}); err != nil {
		t.Fatal(err)
	}
	text, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	values := map[string]float64{} // full series incl. label block
	families := map[string]bool{}  // family names with labels stripped
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("unparseable metric line %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("non-numeric value in %q", line)
		}
		values[fields[0]] = v
		name, _, _ := strings.Cut(fields[0], "{")
		families[name] = true
	}
	if values["samie_engine_executed_total"] != 1 {
		t.Errorf("samie_engine_executed_total = %v, want 1", values["samie_engine_executed_total"])
	}
	for _, name := range []string{
		"samie_engine_requests_total", "samie_engine_hits_total", "samie_engine_inflight",
		"samie_disk_cache_hits_total", "samie_http_requests_total", "samie_http_throttled_total",
		"samie_uptime_seconds", "samie_process_goroutines", "samie_build_info",
		"samie_http_request_seconds_bucket", "samie_run_phase_seconds_bucket",
	} {
		if !families[name] {
			t.Errorf("metric family %s missing", name)
		}
	}
	if v := values[`samie_http_requests_total{route="/v1/runs",code="200"}`]; v != 1 {
		t.Errorf(`samie_http_requests_total{route="/v1/runs",code="200"} = %v, want 1`, v)
	}
	// The run above simulated, so the measured phase must have one
	// observation on this fresh server.
	if v := values[`samie_run_phase_seconds_count{phase="measured"}`]; v != 1 {
		t.Errorf(`samie_run_phase_seconds_count{phase="measured"} = %v, want 1`, v)
	}
}

func caseServerScenarioStream(t *testing.T) {
	c, _ := bootServer(t)
	var cells, finals int
	streamed, err := c.RunScenario(context.Background(), "distrib-banking",
		client.ScenarioRunRequest{Benchmarks: e2eBench[:1], Insts: e2eInsts()},
		func(ev client.ScenarioEvent) {
			switch ev.Type {
			case "cell":
				cells++
			case "result":
				finals++
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if cells != 3 || finals != 1 {
		t.Errorf("saw %d cell and %d result events, want 3 and 1", cells, finals)
	}
	direct, err := samielsq.RunScenario("distrib-banking", e2eBench[:1], e2eInsts())
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Text != direct.String() {
		t.Errorf("streamed sweep differs from library harness\nserver:\n%s\nlibrary:\n%s",
			streamed.Text, direct.String())
	}
	// Unknown scenarios surface as typed 404s through the client.
	if _, err := c.RunScenario(context.Background(), "no-such-sweep", client.ScenarioRunRequest{}, nil); err == nil {
		t.Fatal("unknown scenario did not error")
	} else if ae, ok := err.(*client.APIError); !ok || ae.Status != http.StatusNotFound {
		t.Fatalf("want *APIError 404, got %v", err)
	}
}

func caseKeyCanonicalization(t *testing.T) {
	b := samielsq.NewBatch(1)
	insts := e2eInsts()
	r1 := b.Run(samielsq.RunSpec{Benchmark: "gzip", Insts: insts, Model: 0})
	r2 := b.Run(samielsq.RunSpec{Benchmark: "gzip", Insts: insts, Model: 0, ConvEntries: 128})
	if st := b.Stats(); st.Executed != 1 || st.Hits != 1 {
		t.Fatalf("equivalent spellings not coalesced: %+v", st)
	}
	if r1.CPU != r2.CPU {
		t.Error("coalesced runs returned different results")
	}
}

// bootReplica starts one service replica for the cluster cases,
// returning its httptest server (so a test can sever live connections,
// simulating a stopped process), the backing batch for engine-level
// assertions, and a kill switch that 503s every subsequent request.
func bootReplica(t *testing.T) (*httptest.Server, *samielsq.Batch, *atomic.Bool) {
	t.Helper()
	batch := samielsq.NewBatch(0)
	s, err := server.New(server.Config{
		Batch:        batch,
		Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
		DefaultInsts: e2eInsts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	kill := &atomic.Bool{}
	h := s.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if kill.Load() {
			http.Error(w, "replica stopped", http.StatusServiceUnavailable)
			return
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, batch, kill
}

func caseClusterSuiteExactlyOnce(t *testing.T) {
	tsA, batchA, _ := bootReplica(t)
	tsB, batchB, _ := bootReplica(t)
	cs, err := cluster.New([]string{tsA.URL, tsB.URL})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	suite, err := cs.Suite(ctx, e2eBench, e2eInsts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// The cluster-regenerated suite must be byte-identical to the
	// single-node path: same figures, same tables, same accounting.
	want := samielsq.RunSuite(e2eBench, e2eInsts())
	if got := suite.String(); got != want.String() {
		t.Errorf("cluster suite differs from single-node RunSuite\ncluster:\n%s\nsingle-node:\n%s", got, want.String())
	}

	// Exactly-once cluster-wide, verified from the replicas' engine
	// stats aggregated through /v1/stats: the distinct spec count is
	// the total executed, split across both replicas.
	specs := samielsq.SuiteSpecs(e2eBench, e2eInsts())
	agg, err := cs.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Engine.Executed != int64(len(specs)) {
		t.Errorf("cluster executed %d simulations for %d distinct specs", agg.Engine.Executed, len(specs))
	}
	execA, execB := batchA.Stats().Executed, batchB.Stats().Executed
	if execA+execB != int64(len(specs)) {
		t.Errorf("replica executions %d+%d != %d distinct specs", execA, execB, len(specs))
	}
	if execA == 0 || execB == 0 {
		t.Errorf("sharding degenerate: replica executions A=%d B=%d", execA, execB)
	}
}

func caseClusterFailoverMidSweep(t *testing.T) {
	tsA, batchA, killA := bootReplica(t)
	tsB, batchB, _ := bootReplica(t)
	cs, err := cluster.New([]string{tsA.URL, tsB.URL}, cluster.WithQuarantine(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	// Stop replica A after the first completed run lands: new requests
	// 503 and its live suite stream is severed, exactly what a killed
	// process looks like to the coordinator. The sweep must finish on
	// B and still render byte-identically.
	var stopOnce sync.Once
	suite, err := cs.Suite(context.Background(), e2eBench[:1], e2eInsts(), func(p cluster.Progress) {
		stopOnce.Do(func() {
			killA.Store(true)
			tsA.CloseClientConnections()
		})
	})
	if err != nil {
		t.Fatalf("sweep did not survive losing a replica: %v", err)
	}
	want := samielsq.RunSuite(e2eBench[:1], e2eInsts())
	if got := suite.String(); got != want.String() {
		t.Errorf("post-failover suite differs from single-node RunSuite\ncluster:\n%s\nsingle-node:\n%s", got, want.String())
	}
	// The survivor carried the sweep; the stopped replica may have
	// executed a handful before dying, but every distinct spec is
	// covered at least once.
	specs := samielsq.SuiteSpecs(e2eBench[:1], e2eInsts())
	execA, execB := batchA.Stats().Executed, batchB.Stats().Executed
	if execB == 0 {
		t.Error("surviving replica executed nothing")
	}
	if execA+execB < int64(len(specs)) {
		t.Errorf("cluster executed %d+%d simulations, fewer than the %d distinct specs", execA, execB, len(specs))
	}
}

func caseRunCacheProbe(t *testing.T) {
	c, batch := bootServer(t)
	ctx := context.Background()

	spec := samielsq.RunSpec{Benchmark: "swim", Insts: e2eInsts(), Model: samielsq.ModelSAMIE}
	key := samielsq.RunKey(spec)

	// Probing an unknown key is a clean miss that never simulates.
	if _, ok, err := c.ProbeRun(ctx, key); err != nil || ok {
		t.Fatalf("probe before run = ok=%v err=%v, want miss", ok, err)
	}
	if batch.Stats().Requests != 0 {
		t.Fatal("cache probe reached the engine")
	}

	ran, err := c.Run(ctx, client.RunRequest{Benchmark: "swim", Model: client.ModelSAMIE, Insts: e2eInsts()})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Key != key {
		t.Fatalf("server key %q differs from library RunKey %q", ran.Key, key)
	}
	got, ok, err := c.ProbeRun(ctx, key)
	if err != nil || !ok {
		t.Fatalf("probe after run = ok=%v err=%v, want hit", ok, err)
	}
	if got.CPU != ran.CPU || got.LSQEnergyNJ != ran.LSQEnergyNJ {
		t.Errorf("probe payload differs from the original run")
	}
	if st := batch.Stats(); st.Requests != 1 || st.Executed != 1 {
		t.Errorf("probes distorted engine accounting: %+v", st)
	}
}

// caseClusterColdReplicaPeerWarm: a replica that joins with an empty
// disk cache serves a previously-executed sweep entirely from its
// peer's store — byte-identical figures, zero simulations of its own,
// every delivered key attributed to the peer tier.
func caseClusterColdReplicaPeerWarm(t *testing.T) {
	ctx := context.Background()

	// Replica A executes the sweep the normal way.
	tsA, batchA, _ := bootReplica(t)
	csA, err := cluster.New([]string{tsA.URL})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := csA.Suite(ctx, e2eBench, e2eInsts(), nil); err != nil {
		t.Fatal(err)
	}
	specs := samielsq.SuiteSpecs(e2eBench, e2eInsts())
	if exec := batchA.Stats().Executed; exec != int64(len(specs)) {
		t.Fatalf("warm replica executed %d of %d specs", exec, len(specs))
	}

	// Replica B: fresh process, empty disk cache, peer-wired to A.
	batchB, err := samielsq.NewBatchWithCache(0, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	batchB.SetPeerStore(cluster.NewPeerFetcher([]string{tsA.URL}))
	sB, err := server.New(server.Config{
		Batch:        batchB,
		Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
		DefaultInsts: e2eInsts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(sB.Handler())
	t.Cleanup(tsB.Close)

	// Re-shard the whole sweep onto B alone.
	csB, err := cluster.New([]string{tsB.URL})
	if err != nil {
		t.Fatal(err)
	}
	suite, err := csB.Suite(ctx, e2eBench, e2eInsts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := samielsq.RunSuite(e2eBench, e2eInsts())
	if got := suite.String(); got != want.String() {
		t.Errorf("peer-warmed suite differs from single-node RunSuite\ncold replica:\n%s\nsingle-node:\n%s", got, want.String())
	}

	// The cold replica simulated nothing: every key came from A.
	if st := batchB.Stats(); st.Executed != 0 {
		t.Errorf("cold replica executed %d simulations, want 0: %+v", st.Executed, st)
	}
	ss := batchB.StoreStats()
	if ss.Peer.Hits != int64(len(specs)) || ss.PeerInstalls != int64(len(specs)) {
		t.Errorf("peer tier delivered %d keys and installed %d, want %d of each",
			ss.Peer.Hits, ss.PeerInstalls, len(specs))
	}
	if ss.Peer.Misses != 0 {
		t.Errorf("peer tier recorded %d misses against a fully warm sibling", ss.Peer.Misses)
	}
	if ss.PeerFetch.Count != uint64(len(specs)) {
		t.Errorf("fetch histogram observed %d probes, want %d", ss.PeerFetch.Count, len(specs))
	}

	// The delivery is visible on B's Prometheus surface.
	text, err := client.New(tsB.URL).Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantLine := fmt.Sprintf("samie_store_hits_total{tier=\"peer\"} %d", len(specs))
	if !strings.Contains(text, wantLine) {
		t.Errorf("/metrics missing %q", wantLine)
	}
	if !strings.Contains(text, "samie_store_peer_fetch_seconds_bucket{le=\"+Inf\"}") {
		t.Error("/metrics missing the peer-fetch histogram")
	}
}

// caseClusterSweepTrace: a coordinator-traced two-replica sweep
// reconstructs as one tree — the local sweep root covers a chunk child
// per shard request batch, every chunk has a server-side request span
// under the same trace ID on the replica that served it, and per-phase
// run timings land on every replica that executed work — while the
// rendered suite stays byte-identical to the single-node harness.
func caseClusterSweepTrace(t *testing.T) {
	ctx := context.Background()
	tsA, batchA, _ := bootReplica(t)
	tsB, batchB, _ := bootReplica(t)
	cs, err := cluster.New([]string{tsA.URL, tsB.URL})
	if err != nil {
		t.Fatal(err)
	}

	// A private enabled recorder stands in for samie-cluster's
	// -trace-out: rooting the context in it routes the sweep and chunk
	// spans here without touching the process-wide default recorder.
	rec := obs.NewRecorder(0)
	rec.SetEnabled(true)
	tctx, root := rec.StartSpan(ctx, "e2e.sweep-trace")
	suite, err := cs.Suite(tctx, e2eBench, e2eInsts(), nil)
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	want := samielsq.RunSuite(e2eBench, e2eInsts())
	if suite.String() != want.String() {
		t.Error("traced sweep no longer byte-identical to the single-node suite")
	}

	traceID := cs.SweepTraceID()
	if traceID == "" {
		t.Fatal("SweepTraceID empty after a traced sweep")
	}

	// Coordinator side: exactly one sweep span, every chunk its child.
	local := rec.Trace(traceID)
	sweepID := ""
	for _, sr := range local {
		if sr.Name == "sweep" {
			if sweepID != "" {
				t.Error("more than one sweep span in the trace")
			}
			sweepID = sr.SpanID
		}
	}
	if sweepID == "" {
		t.Fatal("no sweep span recorded")
	}
	chunkCovered := map[string]bool{} // chunk span id -> has a server-side child
	for _, sr := range local {
		if sr.Name != "sweep.chunk" {
			continue
		}
		if sr.ParentID != sweepID {
			t.Errorf("chunk span %s parented to %q, want the sweep span", sr.SpanID, sr.ParentID)
		}
		chunkCovered[sr.SpanID] = false
	}
	if len(chunkCovered) == 0 {
		t.Fatal("no sweep.chunk spans recorded")
	}

	// Replica side: every span the fleet retained for this trace carries
	// the trace ID and its source replica, and every chunk span has at
	// least one server-side request span as its remote child.
	remote := cs.TraceSpans(ctx, traceID)
	for _, sr := range remote {
		if sr.TraceID != traceID {
			t.Fatalf("replica span %s carries trace %s, want %s", sr.SpanID, sr.TraceID, traceID)
		}
		if _, isChunk := chunkCovered[sr.ParentID]; isChunk {
			chunkCovered[sr.ParentID] = true
		}
		src := ""
		for _, a := range sr.Attrs {
			if a.Key == "source" {
				src = a.Value
			}
		}
		if src != tsA.URL && src != tsB.URL {
			t.Errorf("replica span %s has source %q, want a replica URL", sr.SpanID, src)
		}
	}
	for id, covered := range chunkCovered {
		if !covered {
			t.Errorf("chunk span %s has no server-side child span", id)
		}
	}

	// Counter tracks: every replica that simulated work retained
	// occupancy tracks under the sweep trace, each tagged with its
	// source replica, and the merged Chrome export renders them as
	// counter ("C") events alongside the span tree.
	_, tracks := cs.TraceData(ctx, traceID)
	if len(tracks) == 0 {
		t.Fatal("traced sweep retained no counter tracks")
	}
	for _, tr := range tracks {
		if tr.TraceID != traceID {
			t.Errorf("counter track %q carries trace %s, want %s", tr.Name, tr.TraceID, traceID)
		}
		if tr.Source != tsA.URL && tr.Source != tsB.URL {
			t.Errorf("counter track %q has source %q, want a replica URL", tr.Name, tr.Source)
		}
		if len(tr.Samples) == 0 {
			t.Errorf("counter track %q has no samples", tr.Name)
		}
	}
	chrome, err := obs.ChromeTraceWithCounters(remote, tracks)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(chrome), `"ph": "C"`) {
		t.Error("merged Chrome export carries no counter events")
	}

	// Phase accounting: the aggregate measured-phase count covers the
	// whole sweep, and each replica observed it once per simulation it
	// executed.
	specs := samielsq.SuiteSpecs(e2eBench, e2eInsts())
	agg, err := cs.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n := agg.RunPhases["measured"].Count; n != uint64(len(specs)) {
		t.Errorf("aggregate measured-phase observations = %d, want %d", n, len(specs))
	}
	// The fleet-wide timeline rollup counts each simulation exactly
	// once: only the replica that executed a spec retains its telemetry.
	var occRuns int64
	for _, oa := range agg.TimelineStats {
		occRuns += oa.Runs
	}
	if occRuns != int64(len(specs)) {
		t.Errorf("aggregate occupancy rollup covers %d runs, want %d", occRuns, len(specs))
	}
	for name, b := range map[string]*samielsq.Batch{"A": batchA, "B": batchB} {
		ps := b.PhaseStats()
		if ex := b.Stats().Executed; ex > 0 && ps["measured"].Count != uint64(ex) {
			t.Errorf("replica %s measured-phase count %d != executed %d", name, ps["measured"].Count, ex)
		}
	}
}

// bootChaosReplica starts one service replica with deterministic fault
// injection enabled, returning its URL, the backing batch for
// exactly-once assertions, and the server handle for fault accounting.
func bootChaosReplica(t *testing.T, spec string) (string, *samielsq.Batch, *server.Server) {
	t.Helper()
	cspec, err := faultinject.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	batch := samielsq.NewBatch(0)
	s, err := server.New(server.Config{
		Batch:        batch,
		Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
		DefaultInsts: e2eInsts(),
		Chaos:        cspec,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL, batch, s
}

// chaosCoordinator builds the resilient coordinator the chaos cases
// share: pinned backoff seed (reproducible), short waits (fast tests),
// and a retry budget generous enough for heavy injected fault rates.
func chaosCoordinator(t *testing.T, urls ...string) *cluster.ShardedClient {
	t.Helper()
	cs, err := cluster.New(urls,
		cluster.WithQuarantine(200*time.Millisecond),
		cluster.WithBackoffSeed(42),
		cluster.WithMaxRetryWait(250*time.Millisecond),
		cluster.WithRetryBudget(512))
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

// caseClusterChaosSweep is the robustness capstone: a two-replica
// sweep with every fault kind injected at nonzero rates must still
// render byte-identically — against testdata/golden_suite.txt at the
// full budget — and execute each distinct spec exactly once
// cluster-wide. Faults may slow the sweep down; they must never change
// its bytes or its accounting.
func caseClusterChaosSweep(t *testing.T) {
	const spec = "err=0.1,lat=1ms:3ms,reset=0.05,trunc=0.25,seed=42"
	urlA, batchA, srvA := bootChaosReplica(t, spec)
	urlB, batchB, srvB := bootChaosReplica(t, spec)
	cs := chaosCoordinator(t, urlA, urlB)

	benchmarks, insts := e2eBench, e2eInsts()
	if !testing.Short() {
		// The golden bar: same benchmarks and budget the golden suite
		// pins, so the sweep output can be diffed against its bytes.
		benchmarks, insts = []string{"ammp", "gzip", "mcf", "swim"}, 25_000
	}
	suite, err := cs.Suite(context.Background(), benchmarks, insts, nil)
	if err != nil {
		t.Fatalf("sweep did not survive chaos: %v (sweep %+v)", err, cs.SweepStats())
	}
	if testing.Short() {
		if want := samielsq.RunSuite(benchmarks, insts).String(); suite.String() != want {
			t.Error("chaos sweep differs from single-node RunSuite")
		}
	} else {
		golden, err := os.ReadFile("internal/experiments/testdata/golden_suite.txt")
		if err != nil {
			t.Fatal(err)
		}
		if suite.String() != string(golden) {
			t.Error("chaos sweep not byte-identical to testdata/golden_suite.txt")
		}
	}

	// Exactly-once under fire: injected errors and resets fire before
	// the handler (nothing executes), truncated streams resume from the
	// replica's memo — so the distinct spec count is the exact
	// cluster-wide execution total.
	specs := samielsq.SuiteSpecs(benchmarks, insts)
	execA, execB := batchA.Stats().Executed, batchB.Stats().Executed
	if execA+execB != int64(len(specs)) {
		t.Errorf("cluster executed %d+%d simulations for %d distinct specs, want exactly once",
			execA, execB, len(specs))
	}
	// The case only proves something if faults actually fired.
	injected := srvA.ChaosCounts()
	injected.Add(srvB.ChaosCounts())
	if injected.Total() == 0 {
		t.Error("no faults injected across the sweep; the chaos spec never engaged")
	}
}

// caseClusterChaosStreamResume: with every suite stream truncated
// mid-body, the coordinator finishes the sweep by resuming undelivered
// specs from the same replica — which memoized the work it kept
// computing past the cut — so nothing re-executes and the rendering
// stays byte-identical.
func caseClusterChaosStreamResume(t *testing.T) {
	url, batch, srv := bootChaosReplica(t, "trunc=1,seed=7")
	cs := chaosCoordinator(t, url)

	suite, err := cs.Suite(context.Background(), e2eBench, e2eInsts(), nil)
	if err != nil {
		t.Fatalf("sweep did not survive total truncation: %v (sweep %+v)", err, cs.SweepStats())
	}
	if want := samielsq.RunSuite(e2eBench, e2eInsts()).String(); suite.String() != want {
		t.Error("resumed sweep differs from single-node RunSuite")
	}
	specs := samielsq.SuiteSpecs(e2eBench, e2eInsts())
	if exec := batch.Stats().Executed; exec != int64(len(specs)) {
		t.Errorf("replica executed %d simulations for %d distinct specs; resumes must drain the memo, not re-execute", exec, len(specs))
	}
	if st := cs.SweepStats(); st.Resumes == 0 {
		t.Errorf("sweep finished without a single stream resume under trunc=1: %+v (injected %+v)",
			st, srv.ChaosCounts())
	}
	if srv.ChaosCounts().Truncations == 0 {
		t.Error("no truncations fired; the case never exercised the resume path")
	}
}

// caseServerDrainStream: the graceful-drain contract end to end —
// beginning a drain under a live NDJSON suite stream produces an
// explicit terminal error event on the open connection (the
// coordinator's cue to re-request undelivered work elsewhere) and
// flips /healthz to 503 so nothing new is routed here.
func caseServerDrainStream(t *testing.T) {
	batch := samielsq.NewBatch(1)
	s, err := server.New(server.Config{
		Batch:        batch,
		Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
		DefaultInsts: e2eInsts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Large runs on a single worker keep the stream in flight while the
	// drain begins underneath it.
	var req client.SuiteRequest
	for i := 0; i < 16; i++ {
		req.Specs = append(req.Specs, client.RunRequest{
			Benchmark: "gzip", Insts: 1_000_000, Model: client.ModelConventional,
			ConvEntries: 8 + i,
		})
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/suite?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	var runs int
	var terminal *client.SuiteEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() && terminal == nil {
		var ev client.SuiteEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "run":
			if runs++; runs == 1 {
				s.BeginDrain()
			}
		case "error", "result":
			terminal = &ev
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream severed without a terminal event: %v", err)
	}
	if terminal == nil || terminal.Type != "error" || !strings.Contains(terminal.Error, "draining") {
		t.Fatalf("terminal event %+v after %d runs, want an error event naming the drain", terminal, runs)
	}
	if runs == len(req.Specs) {
		t.Fatal("every spec completed before the drain took effect; the case never exercised an in-flight abort")
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining /healthz answered %d, want 503", hz.StatusCode)
	}
}
