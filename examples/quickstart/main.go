// Quickstart: compare the SAMIE-LSQ against the paper's conventional
// 128-entry LSQ on one workload and print the headline numbers the
// paper reports (IPC loss, LSQ/Dcache/DTLB energy savings).
package main

import (
	"fmt"

	"samielsq"
)

func main() {
	res := samielsq.Compare("swim", 150_000)

	fmt.Printf("benchmark: %s\n", res.Benchmark)
	fmt.Printf("conventional LSQ: IPC %.3f\n", res.Conventional.IPC)
	fmt.Printf("SAMIE-LSQ:        IPC %.3f (loss %.2f%%; paper average 0.6%%)\n",
		res.SAMIE.IPC, res.IPCLossPct)
	fmt.Printf("LSQ dynamic energy saving:    %.1f%% (paper average 82%%)\n", res.LSQSavingPct)
	fmt.Printf("L1 Dcache energy saving:      %.1f%% (paper average 42%%)\n", res.DcacheSavingPct)
	fmt.Printf("DTLB energy saving:           %.1f%% (paper average 73%%)\n", res.DTLBSavingPct)
	fmt.Printf("deadlock-avoidance flushes:   %d\n", res.SAMIE.DeadlockFlushes)
	fmt.Printf("way-known Dcache accesses:    %d\n", res.SAMIEDetail.WayKnownHits)
	fmt.Printf("DTLB lookups avoided:         %d\n", res.SAMIEDetail.TLBReuses)
}
