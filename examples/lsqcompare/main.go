// lsqcompare runs a memory-pressure workload (the paper's motivating
// scenario: a wide machine with a large instruction window) under all
// four LSQ organizations — unbounded ideal, conventional 128-entry,
// ARB 64x2, and SAMIE-LSQ — and prints an IPC/energy comparison,
// reproducing the qualitative story of §2-§3: the ARB loses IPC when
// heavily banked, while the SAMIE-LSQ keeps the banking's energy
// benefit at almost no IPC cost.
package main

import (
	"fmt"

	"samielsq/internal/experiments"
	"samielsq/internal/stats"
)

func main() {
	const bench = "facerec" // high LSQ pressure, concentrated lines
	const insts = 150_000

	type row struct {
		name string
		spec experiments.RunSpec
	}
	rows := []row{
		{"unbounded (ideal)", experiments.RunSpec{Benchmark: bench, Insts: insts, Model: experiments.ModelUnbounded}},
		{"conventional 128", experiments.RunSpec{Benchmark: bench, Insts: insts, Model: experiments.ModelConventional}},
		{"ARB 64x2", experiments.RunSpec{Benchmark: bench, Insts: insts, Model: experiments.ModelARB,
			ARBBanks: 64, ARBAddrs: 2, ARBInflight: 128}},
		{"SAMIE-LSQ (Table 3)", experiments.RunSpec{Benchmark: bench, Insts: insts, Model: experiments.ModelSAMIE}},
	}

	t := stats.NewTable("LSQ model", "IPC", "vs ideal", "LSQ energy (nJ)", "deadlocks")
	var idealIPC float64
	for i, r := range rows {
		res := experiments.Run(r.spec)
		if i == 0 {
			idealIPC = res.CPU.IPC
		}
		var lsqE float64
		switch r.spec.Model {
		case experiments.ModelConventional:
			lsqE = res.Meter.ConvLSQ / 1e3
		case experiments.ModelSAMIE:
			lsqE = res.Meter.SAMIETotal() / 1e3
		}
		rel := "-"
		if idealIPC > 0 {
			rel = stats.Percent(res.CPU.IPC / idealIPC)
		}
		t.AddRow(r.name, res.CPU.IPC, rel, lsqE, res.CPU.DeadlockFlushes)
	}
	fmt.Printf("LSQ organizations on %q (%d instructions)\n\n%s", bench, insts, t.String())
}
