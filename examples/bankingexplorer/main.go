// bankingexplorer sweeps the SAMIE-LSQ geometry — banks x entries and
// slots per entry — on one benchmark, reproducing the §3.5 sizing
// discussion: highly banked DistribLSQs need a SharedLSQ for
// conflicting addresses, and more slots per entry trade leakage for
// Dcache/DTLB energy.
package main

import (
	"fmt"

	"samielsq"
	"samielsq/internal/experiments"
	"samielsq/internal/stats"
)

func main() {
	const bench = "ammp" // the paper's worst-case concentrated program
	const insts = 120_000

	fmt.Printf("SAMIE-LSQ geometry sweep on %q\n\n", bench)

	t := stats.NewTable("geometry", "IPC", "shared occ", "AddrBuffer idle", "deadlocks/Mcycle", "LSQ energy (nJ)")
	for _, g := range []struct{ banks, entries int }{
		{128, 1}, {64, 2}, {32, 4}, {16, 8},
	} {
		cfg := samielsq.PaperSAMIEConfig()
		cfg.Banks, cfg.EntriesPerBank = g.banks, g.entries
		res := experiments.Run(experiments.RunSpec{
			Benchmark: bench, Insts: insts, Model: experiments.ModelSAMIE, SAMIE: &cfg,
		})
		t.AddRow(fmt.Sprintf("%dx%d", g.banks, g.entries),
			res.CPU.IPC,
			res.SAMIE.MeanSharedOcc(),
			stats.Percent(res.SAMIE.ABEmptyFraction()),
			1e6*float64(res.CPU.DeadlockFlushes)/float64(res.CPU.Cycles),
			res.Meter.SAMIETotal()/1e3)
	}
	fmt.Println(t.String())

	t2 := stats.NewTable("slots/entry", "IPC", "way-known accesses", "DTLB reuses", "Dcache energy (nJ)")
	for _, slots := range []int{2, 4, 8, 16} {
		cfg := samielsq.PaperSAMIEConfig()
		cfg.SlotsPerEntry = slots
		res := experiments.Run(experiments.RunSpec{
			Benchmark: bench, Insts: insts, Model: experiments.ModelSAMIE, SAMIE: &cfg,
		})
		t2.AddRow(slots, res.CPU.IPC, res.SAMIE.WayKnownHits, res.SAMIE.TLBReuses,
			res.Meter.Dcache/1e3)
	}
	fmt.Println(t2.String())
}
