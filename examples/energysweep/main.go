// energysweep reproduces the paper's headline energy claims over a
// subset of the suite and shows where the savings come from: fewer and
// narrower address comparisons in the LSQ, single-way tag-less Dcache
// accesses, and DTLB lookups served from cached translations.
package main

import (
	"fmt"

	"samielsq"
	"samielsq/internal/stats"
)

func main() {
	benchmarks := []string{"ammp", "swim", "mcf", "sixtrack", "gzip", "facerec"}
	const insts = 120_000

	t := stats.NewTable("benchmark", "LSQ saving", "Dcache saving", "DTLB saving",
		"way-known frac", "TLB-reuse frac")
	for _, b := range benchmarks {
		r := samielsq.Compare(b, insts)
		accesses := r.SAMIEMeter.NDcacheFull + r.SAMIEMeter.NDcacheWayKnown
		lookups := r.SAMIEMeter.NDTLBLookups + r.SAMIEMeter.NTLBReuse
		wayFrac, tlbFrac := 0.0, 0.0
		if accesses > 0 {
			wayFrac = float64(r.SAMIEMeter.NDcacheWayKnown) / float64(accesses)
		}
		if lookups > 0 {
			tlbFrac = float64(r.SAMIEMeter.NTLBReuse) / float64(lookups)
		}
		t.AddRow(b,
			fmt.Sprintf("%.1f%%", r.LSQSavingPct),
			fmt.Sprintf("%.1f%%", r.DcacheSavingPct),
			fmt.Sprintf("%.1f%%", r.DTLBSavingPct),
			stats.Percent(wayFrac), stats.Percent(tlbFrac))
	}
	fmt.Println("SAMIE-LSQ energy savings (paper averages: LSQ 82%, Dcache 42%, DTLB 73%)")
	fmt.Println()
	fmt.Println(t.String())
}
