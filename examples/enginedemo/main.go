// Command enginedemo exercises the shared-run engine through the
// public API: one batch serves the figure harnesses, Compare and a
// scenario sweep, and the run-cache accounting shows the reuse.
package main

import (
	"fmt"
	"os"

	"samielsq"
)

func main() {
	benchmarks := []string{"swim", "gzip"}
	const insts = 20_000

	b := samielsq.NewBatch(0)
	fig := b.Figure56(benchmarks, insts)
	fmt.Println(fig)

	// Compare reuses the pair of runs Figure56 already simulated.
	r := samielsq.CompareIn(b, "swim", insts)
	fmt.Printf("swim via CompareIn: IPC %.3f -> %.3f, LSQ saving %.0f%%\n",
		r.Conventional.IPC, r.SAMIE.IPC, r.LSQSavingPct)

	sweep, err := b.Scenario("shared-lsq-sizes", benchmarks, insts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(sweep)

	st := b.Stats()
	fmt.Printf("batch: %d executed, %d of %d requests from cache (%.0f%% reuse)\n",
		st.Executed, st.Hits, st.Requests, 100*st.HitRate())
}
