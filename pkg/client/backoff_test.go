package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestBackoffDeterministicJitter(t *testing.T) {
	bo := Backoff{Base: 10 * time.Millisecond, Cap: time.Second, Seed: 42}
	for attempt := 0; attempt < 5; attempt++ {
		a := bo.Delay("replica-1", attempt, nil)
		b := bo.Delay("replica-1", attempt, nil)
		if a != b {
			t.Fatalf("attempt %d: same (seed, key, attempt) gave %v then %v", attempt, a, b)
		}
	}
	// Different seeds must de-synchronize at least one attempt.
	other := bo
	other.Seed = 43
	same := true
	for attempt := 0; attempt < 5; attempt++ {
		if bo.Delay("replica-1", attempt, nil) != other.Delay("replica-1", attempt, nil) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 5-attempt schedules")
	}
}

func TestBackoffExponentialCapped(t *testing.T) {
	bo := Backoff{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Seed: 1}
	prevCeil := time.Duration(0)
	for attempt := 0; attempt < 10; attempt++ {
		d := bo.Delay("k", attempt, nil)
		// Equal jitter keeps each delay within [step/2, step] for the
		// capped exponential step.
		step := min(bo.Base<<attempt, bo.Cap)
		if d < step/2 || d > step {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, step/2, step)
		}
		if d > bo.Cap {
			t.Fatalf("attempt %d: delay %v exceeds cap %v", attempt, d, bo.Cap)
		}
		if step == bo.Cap && prevCeil == bo.Cap && d < step/2 {
			t.Fatalf("capped delays regressed: %v", d)
		}
		prevCeil = step
	}
}

func TestBackoffHonorsRetryAfter(t *testing.T) {
	bo := Backoff{Base: time.Millisecond, Cap: time.Second, Seed: 7}
	err := &APIError{Status: http.StatusTooManyRequests, RetryAfter: 100 * time.Millisecond}
	d := bo.Delay("k", 0, err)
	if d < 100*time.Millisecond || d > 125*time.Millisecond {
		t.Fatalf("Retry-After 100ms gave delay %v, want [100ms, 125ms]", d)
	}
	// The cap overrides an oversized hint: a 20ms budget must not
	// sleep the server's suggested 5s.
	tight := Backoff{Base: time.Millisecond, Cap: 20 * time.Millisecond, Seed: 7}
	err.RetryAfter = 5 * time.Second
	d = tight.Delay("k", 0, err)
	if d > 25*time.Millisecond {
		t.Fatalf("capped Retry-After gave delay %v, want <= 25ms", d)
	}
}

func TestBackoffSleepCancel(t *testing.T) {
	bo := Backoff{Base: time.Hour, Cap: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- bo.Sleep(ctx, "k", 0, nil) }()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Sleep returned nil after cancel")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep did not return after cancel")
	}
}

func TestSendRetriesTransportErrors(t *testing.T) {
	// A server that resets the first two connections and then serves:
	// send must survive via transport retries without the caller seeing
	// any error.
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			hj := w.(http.Hijacker)
			conn, _, err := hj.Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	c := New(srv.URL, WithBackoff(Backoff{Base: time.Millisecond, Cap: 5 * time.Millisecond}))
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health after two injected resets: %v", err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want 3", n)
	}
}

func TestSendDoesNotRetryAPIErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer srv.Close()

	c := New(srv.URL, WithBackoff(Backoff{Base: time.Millisecond, Cap: 5 * time.Millisecond}))
	err := c.Health(context.Background())
	if err == nil {
		t.Fatal("expected an error from a 500")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d calls for a 500, want 1 (no retry above HTTP)", n)
	}
}
