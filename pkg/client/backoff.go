package client

import (
	"context"
	"encoding/binary"
	"hash/fnv"
	"time"
)

// Backoff is the fleet-wide retry policy: capped exponential delays
// with deterministic jitter, honoring server Retry-After hints. The
// same policy drives client.send's transport retries, the cluster
// coordinator's throttle waits, and the peer fetcher, so every
// consumer backs off the same way.
//
// Jitter is a pure function of (Seed, key, attempt) — an FNV-1a hash
// mapped to a fraction — so a given actor's schedule replays exactly
// under test, while actors with different seeds (e.g. per-coordinator)
// spread out instead of waking in lockstep when they all honor the
// same Retry-After hint.
type Backoff struct {
	// Base is the first exponential delay; default 50ms.
	Base time.Duration
	// Cap bounds every delay, including Retry-After hints (a
	// coordinator with a 20ms budget must not sleep the server's
	// suggested 5s); default 15s.
	Cap time.Duration
	// Seed is the jitter identity. Two actors with different seeds
	// jitter differently over the same keys and attempts.
	Seed uint64
}

const (
	defaultBackoffBase = 50 * time.Millisecond
	defaultBackoffCap  = 15 * time.Second
)

// jitterFrac maps (seed, key, attempt) to a uniform fraction in [0, 1).
//
//samie:deterministic
func jitterFrac(seed uint64, key string, attempt int) float64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], seed)
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(key))
	binary.LittleEndian.PutUint64(buf[:], uint64(attempt))
	_, _ = h.Write(buf[:])
	// Top 53 bits give a full-precision float64 fraction.
	return float64(h.Sum64()>>11) / float64(uint64(1)<<53)
}

// Delay returns the wait before retry `attempt` (0-based) of the
// operation identified by key. A *APIError carrying a Retry-After hint
// takes precedence over the exponential schedule: the wait is the
// hint (capped) plus up to 25% deterministic jitter, so honoring the
// hint never synchronizes a fleet. Other errors — or nil — get equal
// jitter: half the capped exponential step fixed, half jittered.
func (b Backoff) Delay(key string, attempt int, err error) time.Duration {
	base, cp := b.Base, b.Cap
	if base <= 0 {
		base = defaultBackoffBase
	}
	if cp <= 0 {
		cp = defaultBackoffCap
	}
	frac := jitterFrac(b.Seed, key, attempt)
	if ae, ok := err.(*APIError); ok && ae.RetryAfter > 0 {
		hint := min(ae.RetryAfter, cp)
		return hint + time.Duration(frac*float64(hint)/4)
	}
	d := base
	for i := 0; i < attempt && d < cp; i++ {
		d *= 2
	}
	d = min(d, cp)
	return d/2 + time.Duration(frac*float64(d)/2)
}

// Sleep waits out Delay for the attempt, returning early with ctx.Err()
// on cancellation.
func (b Backoff) Sleep(ctx context.Context, key string, attempt int, err error) error {
	d := b.Delay(key, attempt, err)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
