package client

import (
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// maxDuration is the largest representable time.Duration.
const maxDuration = time.Duration(math.MaxInt64)

// ParseRetryAfter interprets an RFC 9110 §10.2.3 Retry-After header
// value: either delta-seconds or an HTTP-date. The second return is
// false when the value is absent or unparseable (callers should treat
// that as "no hint", not as zero backoff by fiat). The returned
// duration is clamped to >= 0 — a negative delta or a date in the past
// means "retry now", never a negative wait.
//
// This is the one Retry-After parser in the repo: pkg/client stamps
// every APIError.RetryAfter through it, and pkg/cluster's backoff and
// retry planning consume that field rather than re-reading headers.
func ParseRetryAfter(v string) (time.Duration, bool) {
	return parseRetryAfter(v, time.Now())
}

// parseRetryAfter is ParseRetryAfter against an explicit clock, so the
// HTTP-date arithmetic is testable.
func parseRetryAfter(v string, now time.Time) (time.Duration, bool) {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, true
		}
		// Cap before multiplying: a huge delta (e.g. 1e10) would
		// overflow the int64 nanosecond Duration into a negative wait.
		// Compare in int64 — the cap itself exceeds a 32-bit int.
		if int64(secs) > int64(maxDuration/time.Second) {
			return maxDuration - maxDuration%time.Second, true
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		d := t.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}
