package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 7, 28, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		in   string
		want time.Duration
		ok   bool
	}{
		{"delta seconds", "5", 5 * time.Second, true},
		{"zero", "0", 0, true},
		{"negative clamped", "-3", 0, true},
		{"padded delta", "  17 ", 17 * time.Second, true},
		{"http-date ahead", now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second, true},
		{"http-date past clamped", now.Add(-time.Hour).Format(http.TimeFormat), 0, true},
		{"rfc850 date", now.Add(30 * time.Second).Format("Monday, 02-Jan-06 15:04:05 GMT"), 30 * time.Second, true},
		{"huge delta saturates", "10000000000", maxDuration - maxDuration%time.Second, true},
		{"garbage", "soon", 0, false},
		{"empty", "", 0, false},
		{"fractional rejected", "1.5", 0, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, ok := parseRetryAfter(c.in, now)
			if ok != c.ok || got != c.want {
				t.Fatalf("parseRetryAfter(%q) = %v, %v; want %v, %v", c.in, got, ok, c.want, c.ok)
			}
		})
	}
}

// TestRetryAfterHTTPDateOnWire pins the end-to-end path: a 429 with an
// HTTP-date Retry-After must surface as a positive, non-garbage
// RetryAfter on the APIError (it was previously dropped as "no hint"),
// and a negative delta must never produce a negative backoff.
func TestRetryAfterHTTPDateOnWire(t *testing.T) {
	headers := make(chan string, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", <-headers)
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()
	c := New(srv.URL)

	headers <- time.Now().Add(30 * time.Second).UTC().Format(http.TimeFormat)
	_, err := c.Run(context.Background(), RunRequest{Benchmark: "gzip"})
	if !IsThrottled(err) {
		t.Fatalf("want throttled APIError, got %v", err)
	}
	ae := err.(*APIError)
	if ae.RetryAfter <= 0 || ae.RetryAfter > 31*time.Second {
		t.Fatalf("HTTP-date Retry-After = %v, want ~30s", ae.RetryAfter)
	}

	headers <- "-10"
	_, err = c.Run(context.Background(), RunRequest{Benchmark: "gzip"})
	if !IsThrottled(err) {
		t.Fatalf("want throttled APIError, got %v", err)
	}
	if ae := err.(*APIError); ae.RetryAfter != 0 {
		t.Fatalf("negative Retry-After = %v, want clamped to 0", ae.RetryAfter)
	}
}
