// Package client is the typed Go client for the samie-serve HTTP API,
// and the home of the wire types both sides share: the server
// (internal/server) marshals exactly these structs, so a client built
// from this package never drifts from the service.
//
// The API surface mirrors the library: POST /v1/runs executes (or
// dedups) one RunSpec, the figure endpoints regenerate paper
// artefacts, and the scenario endpoints drive registered sweeps, with
// long-running sweeps streamed as NDJSON progress events.
package client

import (
	"encoding/json"
	"fmt"

	"samielsq/internal/core"
	"samielsq/internal/cpu"
	"samielsq/internal/energy"
	"samielsq/internal/experiments"
	"samielsq/internal/experiments/engine"
	"samielsq/internal/lsq"
)

// Model name strings accepted by RunRequest.Model.
const (
	ModelConventional = "conventional"
	ModelUnbounded    = "unbounded"
	ModelARB          = "arb"
	ModelSAMIE        = "samie"
)

// ParseModel maps a wire model name to the experiments kind.
func ParseModel(s string) (experiments.ModelKind, error) {
	switch s {
	case ModelConventional:
		return experiments.ModelConventional, nil
	case ModelUnbounded:
		return experiments.ModelUnbounded, nil
	case ModelARB:
		return experiments.ModelARB, nil
	case ModelSAMIE:
		return experiments.ModelSAMIE, nil
	}
	return 0, fmt.Errorf("unknown model %q (want %s, %s, %s or %s)",
		s, ModelConventional, ModelUnbounded, ModelARB, ModelSAMIE)
}

// ModelName maps an experiments kind to its wire name.
func ModelName(m experiments.ModelKind) string {
	switch m {
	case experiments.ModelConventional:
		return ModelConventional
	case experiments.ModelUnbounded:
		return ModelUnbounded
	case experiments.ModelARB:
		return ModelARB
	case experiments.ModelSAMIE:
		return ModelSAMIE
	}
	return fmt.Sprintf("model-%d", int(m))
}

// RunRequest is the POST /v1/runs body: one simulation spec. Zero
// fields take the library defaults (Normalize), so the minimal request
// is {"benchmark": "swim", "model": "samie"}.
type RunRequest struct {
	Benchmark string `json:"benchmark"`
	Model     string `json:"model"`
	Insts     uint64 `json:"insts,omitempty"`
	Warmup    uint64 `json:"warmup,omitempty"`

	ConvEntries int `json:"conv_entries,omitempty"`

	ARBBanks    int `json:"arb_banks,omitempty"`
	ARBAddrs    int `json:"arb_addrs,omitempty"`
	ARBInflight int `json:"arb_inflight,omitempty"`

	SAMIE *core.Config `json:"samie,omitempty"`
	CPU   *cpu.Config  `json:"cpu,omitempty"`
}

// Spec converts the wire request into a library RunSpec.
func (r RunRequest) Spec() (experiments.RunSpec, error) {
	m, err := ParseModel(r.Model)
	if err != nil {
		return experiments.RunSpec{}, err
	}
	return experiments.RunSpec{
		Benchmark:   r.Benchmark,
		Insts:       r.Insts,
		Warmup:      r.Warmup,
		Model:       m,
		ConvEntries: r.ConvEntries,
		ARBBanks:    r.ARBBanks,
		ARBAddrs:    r.ARBAddrs,
		ARBInflight: r.ARBInflight,
		SAMIE:       r.SAMIE,
		CPU:         r.CPU,
	}, nil
}

// RequestFor renders a library spec as a wire request.
func RequestFor(spec experiments.RunSpec) RunRequest {
	return RunRequest{
		Benchmark:   spec.Benchmark,
		Model:       ModelName(spec.Model),
		Insts:       spec.Insts,
		Warmup:      spec.Warmup,
		ConvEntries: spec.ConvEntries,
		ARBBanks:    spec.ARBBanks,
		ARBAddrs:    spec.ARBAddrs,
		ARBInflight: spec.ARBInflight,
		SAMIE:       spec.SAMIE,
		CPU:         spec.CPU,
	}
}

// RunResponse is the POST /v1/runs result: the normalized identity of
// the run plus everything the library's RunResult carries (minus the
// memory-hierarchy internals, which do not serialize).
type RunResponse struct {
	Key       string `json:"key"` // canonical engine cache key
	Benchmark string `json:"benchmark"`
	Model     string `json:"model"`
	Insts     uint64 `json:"insts"`
	Warmup    uint64 `json:"warmup"`

	CPU   cpu.Result         `json:"cpu"`
	SAMIE core.Stats         `json:"samie_stats"`
	Conv  lsq.OccupancyStats `json:"conv_occupancy"`
	Meter *energy.Meter      `json:"energy"`

	// LSQEnergyNJ is the headline LSQ dynamic energy in nJ
	// (conventional or SAMIE total, whichever the model accounts).
	LSQEnergyNJ float64 `json:"lsq_energy_nj"`
}

// FigureNames lists the valid GET /v1/figures/{name} names.
func FigureNames() []string { return []string{"1", "3", "4", "56", "energy"} }

// FigureResponse is one figure regeneration: the rendered text
// (byte-identical to the library harness output) plus the structured
// result for programmatic use.
type FigureResponse struct {
	Figure     string          `json:"figure"`
	Benchmarks []string        `json:"benchmarks"`
	Insts      uint64          `json:"insts"`
	Text       string          `json:"text"`
	Result     json.RawMessage `json:"result,omitempty"`
}

// ScenarioInfo describes one registered scenario sweep.
type ScenarioInfo struct {
	Name        string   `json:"name"`
	Description string   `json:"description"`
	Variants    []string `json:"variants"`
}

// ScenarioRunRequest is the POST /v1/scenarios/{name}/run body.
type ScenarioRunRequest struct {
	Benchmarks []string `json:"benchmarks,omitempty"` // default: all 26
	Insts      uint64   `json:"insts,omitempty"`
}

// ScenarioRunResponse is the non-streaming sweep result.
type ScenarioRunResponse struct {
	Result experiments.ScenarioResult `json:"result"`
	Text   string                     `json:"text"`
}

// ScenarioEvent is one NDJSON line of a streamed sweep: "cell" events
// as each (benchmark, variant) simulation completes, then one final
// "result" event. An "error" event terminates the stream.
type ScenarioEvent struct {
	Type string `json:"type"` // "cell", "result" or "error"

	// cell fields
	Benchmark string  `json:"benchmark,omitempty"`
	Variant   string  `json:"variant,omitempty"`
	IPC       float64 `json:"ipc,omitempty"`
	EnergyNJ  float64 `json:"energy_nj,omitempty"`
	Done      int     `json:"done,omitempty"`
	Total     int     `json:"total,omitempty"`

	// result fields
	Result *experiments.ScenarioResult `json:"result,omitempty"`
	Text   string                      `json:"text,omitempty"`

	// error field
	Error string `json:"error,omitempty"`
}

// StatsResponse is the GET /v1/stats body: engine, disk-cache and
// process accounting for the shared batch behind the service.
type StatsResponse struct {
	Engine       engine.Stats               `json:"engine"`
	Disk         experiments.DiskCacheStats `json:"disk"`
	DistinctRuns int                        `json:"distinct_runs"`
	Workers      int                        `json:"workers"`

	MaxConcurrent  int   `json:"max_concurrent"`
	InflightHTTP   int64 `json:"inflight_http"`
	RequestsServed int64 `json:"requests_served"`
	Throttled      int64 `json:"throttled"` // 429s issued

	CacheDir      string  `json:"cache_dir,omitempty"`
	Preloaded     int     `json:"preloaded,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Goroutines    int     `json:"goroutines"`
	HeapBytes     uint64  `json:"heap_bytes"`
}

// ErrorResponse is the body of every non-2xx JSON error.
type ErrorResponse struct {
	Error string `json:"error"`
}
