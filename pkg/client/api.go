// Package client is the typed Go client for the samie-serve HTTP API,
// and the home of the wire types both sides share: the server
// (internal/server) marshals exactly these structs, so a client built
// from this package never drifts from the service.
//
// The API surface mirrors the library: POST /v1/runs executes (or
// dedups) one RunSpec, the figure endpoints regenerate paper
// artefacts, and the scenario endpoints drive registered sweeps, with
// long-running sweeps streamed as NDJSON progress events.
package client

import (
	"context"
	"encoding/json"
	"fmt"

	"samielsq/internal/core"
	"samielsq/internal/cpu"
	"samielsq/internal/energy"
	"samielsq/internal/experiments"
	"samielsq/internal/experiments/engine"
	"samielsq/internal/lsq"
	"samielsq/internal/obs"
)

// API is the samie-serve surface a driver consumes. *Client implements
// it against one replica; cluster.ShardedClient implements it over a
// rendezvous-sharded replica set, so tools like `samie-bench -server`
// accept either transparently.
type API interface {
	Run(ctx context.Context, req RunRequest) (RunResponse, error)
	ProbeRun(ctx context.Context, key string) (RunResponse, bool, error)
	Figure(ctx context.Context, figure string, benchmarks []string, insts uint64) (FigureResponse, error)
	Scenarios(ctx context.Context) ([]ScenarioInfo, error)
	RunScenario(ctx context.Context, name string, req ScenarioRunRequest, onEvent func(ScenarioEvent)) (ScenarioRunResponse, error)
	Stats(ctx context.Context) (StatsResponse, error)
	Health(ctx context.Context) error
}

// Model name strings accepted by RunRequest.Model.
const (
	ModelConventional = "conventional"
	ModelUnbounded    = "unbounded"
	ModelARB          = "arb"
	ModelSAMIE        = "samie"
)

// ParseModel maps a wire model name to the experiments kind.
func ParseModel(s string) (experiments.ModelKind, error) {
	switch s {
	case ModelConventional:
		return experiments.ModelConventional, nil
	case ModelUnbounded:
		return experiments.ModelUnbounded, nil
	case ModelARB:
		return experiments.ModelARB, nil
	case ModelSAMIE:
		return experiments.ModelSAMIE, nil
	}
	return 0, fmt.Errorf("unknown model %q (want %s, %s, %s or %s)",
		s, ModelConventional, ModelUnbounded, ModelARB, ModelSAMIE)
}

// ModelName maps an experiments kind to its wire name.
func ModelName(m experiments.ModelKind) string {
	switch m {
	case experiments.ModelConventional:
		return ModelConventional
	case experiments.ModelUnbounded:
		return ModelUnbounded
	case experiments.ModelARB:
		return ModelARB
	case experiments.ModelSAMIE:
		return ModelSAMIE
	}
	return fmt.Sprintf("model-%d", int(m))
}

// RunRequest is the POST /v1/runs body: one simulation spec. Zero
// fields take the library defaults (Normalize), so the minimal request
// is {"benchmark": "swim", "model": "samie"}.
type RunRequest struct {
	Benchmark string `json:"benchmark"`
	Model     string `json:"model"`
	Insts     uint64 `json:"insts,omitempty"`
	Warmup    uint64 `json:"warmup,omitempty"`

	ConvEntries int `json:"conv_entries,omitempty"`

	ARBBanks    int `json:"arb_banks,omitempty"`
	ARBAddrs    int `json:"arb_addrs,omitempty"`
	ARBInflight int `json:"arb_inflight,omitempty"`

	SAMIE *core.Config `json:"samie,omitempty"`
	CPU   *cpu.Config  `json:"cpu,omitempty"`

	// Timeline opts the response into carrying the run's interval
	// telemetry (RunResponse.Timeline). It is a wire-level request
	// option, not part of the simulation's identity: it does not enter
	// the RunSpec or the canonical cache key, and a cached run answers
	// with its retained timeline. Only runs this replica simulated
	// itself carry one (tier-served results report none).
	Timeline bool `json:"timeline,omitempty"`
}

// Spec converts the wire request into a library RunSpec.
func (r RunRequest) Spec() (experiments.RunSpec, error) {
	m, err := ParseModel(r.Model)
	if err != nil {
		return experiments.RunSpec{}, err
	}
	return experiments.RunSpec{
		Benchmark:   r.Benchmark,
		Insts:       r.Insts,
		Warmup:      r.Warmup,
		Model:       m,
		ConvEntries: r.ConvEntries,
		ARBBanks:    r.ARBBanks,
		ARBAddrs:    r.ARBAddrs,
		ARBInflight: r.ARBInflight,
		SAMIE:       r.SAMIE,
		CPU:         r.CPU,
	}, nil
}

// RequestFor renders a library spec as a wire request.
func RequestFor(spec experiments.RunSpec) RunRequest {
	return RunRequest{
		Benchmark:   spec.Benchmark,
		Model:       ModelName(spec.Model),
		Insts:       spec.Insts,
		Warmup:      spec.Warmup,
		ConvEntries: spec.ConvEntries,
		ARBBanks:    spec.ARBBanks,
		ARBAddrs:    spec.ARBAddrs,
		ARBInflight: spec.ARBInflight,
		SAMIE:       spec.SAMIE,
		CPU:         spec.CPU,
	}
}

// RunResponse is the POST /v1/runs result: the normalized identity of
// the run plus everything the library's RunResult carries (minus the
// memory-hierarchy internals, which do not serialize).
type RunResponse struct {
	Key       string `json:"key"` // canonical engine cache key
	Benchmark string `json:"benchmark"`
	Model     string `json:"model"`
	Insts     uint64 `json:"insts"`
	Warmup    uint64 `json:"warmup"`

	// Sim is the serving replica's simulator build stamp
	// (experiments.SimStamp). The peer-fetch tier refuses results from
	// a different build, exactly as the disk tier refuses such
	// artifacts.
	Sim string `json:"sim,omitempty"`

	CPU   cpu.Result         `json:"cpu"`
	SAMIE core.Stats         `json:"samie_stats"`
	Conv  lsq.OccupancyStats `json:"conv_occupancy"`
	Meter *energy.Meter      `json:"energy"`

	// LSQEnergyNJ is the headline LSQ dynamic energy in nJ
	// (conventional or SAMIE total, whichever the model accounts).
	LSQEnergyNJ float64 `json:"lsq_energy_nj"`

	// Phases is where the serving process spent wall-clock
	// materializing this result (see internal/obs.Phase); a tier-served
	// result reports only its lookup phases. Observability metadata:
	// excluded from determinism comparisons.
	Phases obs.PhaseTimes `json:"phases,omitzero"`

	// Timeline is the run's interval telemetry, present only when the
	// request set RunRequest.Timeline and the serving replica simulated
	// the run itself. Observability metadata, like Phases.
	Timeline *obs.Timeline `json:"timeline,omitempty"`
}

// Result converts the wire response back into a library RunResult.
// The normalized Spec is NOT reconstructed (the wire identity carries
// only benchmark/model/insts/warmup); callers that need the full spec
// — e.g. Batch.Offer — pair the response with the RunSpec they sent,
// matching on Key. The memory-hierarchy internals do not serialize, so
// the result carries a nil Hier, exactly like a disk-served one.
func (r RunResponse) Result() experiments.RunResult {
	return experiments.RunResult{
		CPU:      r.CPU,
		SAMIE:    r.SAMIE,
		Conv:     r.Conv,
		Meter:    r.Meter,
		Phases:   r.Phases,
		Timeline: r.Timeline,
	}
}

// FigureNames lists the valid GET /v1/figures/{name} names.
func FigureNames() []string { return []string{"1", "3", "4", "56", "energy"} }

// FigureResponse is one figure regeneration: the rendered text
// (byte-identical to the library harness output) plus the structured
// result for programmatic use.
type FigureResponse struct {
	Figure     string          `json:"figure"`
	Benchmarks []string        `json:"benchmarks"`
	Insts      uint64          `json:"insts"`
	Text       string          `json:"text"`
	Result     json.RawMessage `json:"result,omitempty"`
}

// ScenarioInfo describes one registered scenario sweep.
type ScenarioInfo struct {
	Name        string   `json:"name"`
	Description string   `json:"description"`
	Variants    []string `json:"variants"`

	// Benchmarks are the sweep's default rows when a run request names
	// none; empty means the full 26-program suite.
	Benchmarks []string `json:"benchmarks,omitempty"`
}

// ScenarioRunRequest is the POST /v1/scenarios/{name}/run body.
type ScenarioRunRequest struct {
	Benchmarks []string `json:"benchmarks,omitempty"` // default: all 26
	Insts      uint64   `json:"insts,omitempty"`
}

// ScenarioRunResponse is the non-streaming sweep result.
type ScenarioRunResponse struct {
	Result experiments.ScenarioResult `json:"result"`
	Text   string                     `json:"text"`
}

// ScenarioEvent is one NDJSON line of a streamed sweep: "cell" events
// as each (benchmark, variant) simulation completes, then one final
// "result" event. An "error" event terminates the stream.
type ScenarioEvent struct {
	Type string `json:"type"` // "cell", "result" or "error"

	// cell fields
	Benchmark string  `json:"benchmark,omitempty"`
	Variant   string  `json:"variant,omitempty"`
	IPC       float64 `json:"ipc,omitempty"`
	EnergyNJ  float64 `json:"energy_nj,omitempty"`
	Done      int     `json:"done,omitempty"`
	Total     int     `json:"total,omitempty"`

	// result fields
	Result *experiments.ScenarioResult `json:"result,omitempty"`
	Text   string                      `json:"text,omitempty"`

	// error field
	Error string `json:"error,omitempty"`
}

// SuiteRequest is the POST /v1/suite body. With Specs empty the
// replica enumerates and executes the full suite spec set for the
// benchmarks; with Specs set it executes exactly those simulations —
// the shard a cluster coordinator assigned to it (see pkg/cluster).
type SuiteRequest struct {
	Benchmarks []string `json:"benchmarks,omitempty"` // default: all 26
	Insts      uint64   `json:"insts,omitempty"`

	Specs []RunRequest `json:"specs,omitempty"`

	// Peers are the coordinator's other replicas (base URLs, the
	// target excluded): the replica may adopt them as its tier-2
	// peer-fetch set, so a fleet assembled by the coordinator needs no
	// static -peers configuration. Ignored when empty or when the
	// server disables adoption.
	Peers []string `json:"peers,omitempty"`
}

// SuiteEvent is one NDJSON line of a streamed suite execution: a "run"
// event as each distinct simulation completes, then one final
// "result". An "error" event terminates the stream.
type SuiteEvent struct {
	Type string `json:"type"` // "run", "result" or "error"

	// run fields
	Run   *RunResponse `json:"run,omitempty"`
	Done  int          `json:"done,omitempty"`
	Total int          `json:"total,omitempty"`

	// Trace is the serving request's span context as a W3C traceparent
	// value, so a stream consumer (e.g. samie-cluster resuming a
	// truncated stream) can attribute every delivered — and, by
	// elimination, every undelivered — spec to its trace.
	Trace string `json:"trace,omitempty"`

	// error field
	Error string `json:"error,omitempty"`
}

// SuiteResponse is the collected POST /v1/suite result. In streaming
// mode the runs arrive as individual events and the final "result"
// event carries only Total; Client.Suite reassembles Runs either way.
type SuiteResponse struct {
	Total int           `json:"total"`
	Runs  []RunResponse `json:"runs,omitempty"`
}

// StatsResponse is the GET /v1/stats body: engine, tiered-store and
// process accounting for the shared batch behind the service.
type StatsResponse struct {
	Engine       engine.Stats               `json:"engine"`
	Disk         experiments.DiskCacheStats `json:"disk"`
	Store        experiments.StoreStats     `json:"store"`
	DistinctRuns int                        `json:"distinct_runs"`
	Workers      int                        `json:"workers"`

	MaxConcurrent  int   `json:"max_concurrent"`
	InflightHTTP   int64 `json:"inflight_http"`
	RequestsServed int64 `json:"requests_served"`
	Throttled      int64 `json:"throttled"`    // 429s issued
	ProbeHits      int64 `json:"probe_hits"`   // GET /v1/runs/{key} found
	ProbeMisses    int64 `json:"probe_misses"` // GET /v1/runs/{key} not cached
	SuiteSpecs     int64 `json:"suite_specs"`  // simulations requested via POST /v1/suite

	CacheDir      string  `json:"cache_dir,omitempty"`
	Preloaded     int     `json:"preloaded,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Goroutines    int     `json:"goroutines"`
	HeapBytes     uint64  `json:"heap_bytes"`

	// RunPhases are the replica's per-phase run-latency histograms
	// (internal/obs.Phase definitions); phases never entered are
	// omitted. samie-cluster -stats renders these as per-replica
	// p50/p95/p99 summaries.
	RunPhases obs.PhaseStats `json:"run_phases,omitempty"`

	// TimelineStats are the per-benchmark occupancy aggregates of every
	// run this replica simulated itself (keyed by benchmark name);
	// samie-cluster -stats merges replicas' maps into the fleet-wide
	// per-personality occupancy table.
	TimelineStats map[string]obs.OccupancyAgg `json:"timeline_stats,omitempty"`

	// EnergyPJ is the per-structure dynamic energy (pJ) summed over
	// every run this replica simulated itself.
	EnergyPJ map[string]float64 `json:"energy_pj,omitempty"`

	// TraceDropped counts span records lost to trace-ring overwrite on
	// this replica (samie_trace_spans_dropped_total).
	TraceDropped uint64 `json:"trace_spans_dropped,omitempty"`

	Chaos ChaosState `json:"chaos"`
}

// TraceResponse is the GET /v1/trace/{id} body: every span the
// replica's recorder retains for one trace, oldest-first, plus any
// counter tracks (occupancy/IPC curves) recorded on the trace.
type TraceResponse struct {
	TraceID  string             `json:"trace_id"`
	Spans    []obs.SpanRecord   `json:"spans"`
	Counters []obs.CounterTrack `json:"counters,omitempty"`
}

// TracesResponse is the GET /v1/traces body: recent root spans,
// newest first, plus how many span records the replica's recorder has
// lost to ring overwrite (a rising Dropped means the ring is too small
// for the retention window being queried).
type TracesResponse struct {
	Traces  []obs.TraceSummary `json:"traces"`
	Dropped uint64             `json:"dropped"`
}

// ChaosRequest is the POST /v1/chaos body: a fault spec in the -chaos
// flag grammar (err=0.1,lat=5ms:50ms,reset=0.05,trunc=0.02,seed=42).
// An empty spec disables injection.
type ChaosRequest struct {
	Spec string `json:"spec"`
}

// ChaosCounts are the per-kind injected-fault totals, monotonic across
// runtime reconfigurations.
type ChaosCounts struct {
	Errors      int64 `json:"errors"`
	Throttles   int64 `json:"throttles"`
	Resets      int64 `json:"resets"`
	Truncations int64 `json:"truncations"`
	Latencies   int64 `json:"latencies"`
	Total       int64 `json:"total"`
}

// ChaosState is the GET /v1/chaos body (also embedded in /v1/stats):
// whether fault injection is live, under what spec, and what has fired.
type ChaosState struct {
	Enabled  bool        `json:"enabled"`
	Spec     string      `json:"spec,omitempty"`
	Injected ChaosCounts `json:"injected"`
}

// ErrorResponse is the body of every non-2xx JSON error.
type ErrorResponse struct {
	Error string `json:"error"`
}
