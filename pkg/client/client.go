package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"samielsq/internal/obs"
)

// Client talks to a samie-serve instance. The zero value is not
// usable; construct with New. Safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	bo      Backoff
	retries int
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles). The default client has no timeout:
// simulations legitimately run for minutes, so deadlines belong on the
// request context.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithBackoff substitutes the retry policy used for transport-level
// retries (and inherited by the cluster coordinator when it builds
// per-replica clients).
func WithBackoff(bo Backoff) Option {
	return func(c *Client) { c.bo = bo }
}

// WithTransportRetries sets how many times send re-issues a request
// that failed below HTTP (connection refused/reset before a response).
// Negative disables retries entirely; default 2.
func WithTransportRetries(n int) Option {
	return func(c *Client) { c.retries = n }
}

// New returns a client for the server at base, e.g.
// "http://localhost:8344".
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}, retries: 2}
	for _, o := range opts {
		o(c)
	}
	if c.retries < 0 {
		c.retries = 0
	}
	return c
}

// APIError is a non-2xx response from the server.
type APIError struct {
	Status     int           // HTTP status code
	Message    string        // server-provided error text
	RetryAfter time.Duration // from Retry-After on 429, else 0
}

func (e *APIError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("server: %s (HTTP %d, retry after %s)", e.Message, e.Status, e.RetryAfter)
	}
	return fmt.Sprintf("server: %s (HTTP %d)", e.Message, e.Status)
}

// IsThrottled reports whether err is the server shedding load (HTTP
// 429); the caller should back off by err.RetryAfter.
func IsThrottled(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.Status == http.StatusTooManyRequests
}

// roundTrip issues one JSON request; out may be nil to discard the
// body.
func (c *Client) roundTrip(ctx context.Context, method, path string, in, out any) error {
	resp, err := c.send(ctx, method, path, in)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if out == nil {
		_, err := io.Copy(io.Discard, resp.Body)
		return err
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s %s: %w", method, path, err)
	}
	return nil
}

// send issues the request and converts non-2xx statuses into
// *APIError; the caller owns the returned body.
//
// Failures below HTTP — connection refused, a reset before any
// response — are retried up to c.retries times under the shared
// backoff policy. A received response is never retried here, even a
// 5xx: *APIError classification (and the cluster's failover logic) own
// that layer, and streaming bodies that die mid-read are the stream
// consumer's problem (see cluster.RunSpecs resume).
func (c *Client) send(ctx context.Context, method, path string, in any) (*http.Response, error) {
	var data []byte
	if in != nil {
		var err error
		data, err = json.Marshal(in)
		if err != nil {
			return nil, fmt.Errorf("client: encoding %s %s: %w", method, path, err)
		}
	}
	// Every request carries a W3C traceparent: the span already on ctx
	// (a sweep's chunk span, a traced driver) when there is one,
	// otherwise a fresh identity — so server-side logs and traces
	// always have a correlation ID, traced or not. Computed before the
	// attempt loop: transport retries are one logical request and reuse
	// its identity.
	traceParent := traceParentFor(ctx)
	var resp *http.Response
	for attempt := 0; ; attempt++ {
		var body io.Reader
		if in != nil {
			body = bytes.NewReader(data)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
		if err != nil {
			return nil, err
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		req.Header.Set("traceparent", traceParent)
		resp, err = c.hc.Do(req)
		if err == nil {
			break
		}
		if ctx.Err() != nil || attempt >= c.retries {
			return nil, err
		}
		if serr := c.bo.Sleep(ctx, path, attempt, err); serr != nil {
			return nil, err
		}
	}
	if resp.StatusCode/100 == 2 {
		return resp, nil
	}
	defer resp.Body.Close()
	ae := &APIError{Status: resp.StatusCode}
	if d, ok := ParseRetryAfter(resp.Header.Get("Retry-After")); ok {
		ae.RetryAfter = d
	}
	var er ErrorResponse
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(raw, &er) == nil && er.Error != "" {
		ae.Message = er.Error
	} else {
		ae.Message = strings.TrimSpace(string(raw))
	}
	if ae.Message == "" {
		ae.Message = resp.Status
	}
	return nil, ae
}

// Verify *Client keeps satisfying the shared driver surface.
var _ API = (*Client)(nil)

// Run executes (or dedups, server-side) one simulation.
func (c *Client) Run(ctx context.Context, req RunRequest) (RunResponse, error) {
	var out RunResponse
	err := c.roundTrip(ctx, http.MethodPost, "/v1/runs", req, &out)
	return out, err
}

// ProbeRun asks whether the server already holds the result for a
// canonical spec key — in memory or on disk — without executing
// anything. The second return is false (with a nil error) when the
// key is simply not cached; errors are transport or server failures.
func (c *Client) ProbeRun(ctx context.Context, key string) (RunResponse, bool, error) {
	var out RunResponse
	err := c.roundTrip(ctx, http.MethodGet, "/v1/runs/"+url.PathEscape(key), nil, &out)
	if err != nil {
		if ae, ok := err.(*APIError); ok && ae.Status == http.StatusNotFound {
			return RunResponse{}, false, nil
		}
		return RunResponse{}, false, err
	}
	return out, true, nil
}

// Suite executes a suite spec set — the full enumeration, or the
// explicit shard in req.Specs — on the server. With a nil onEvent the
// call blocks for the collected result; with onEvent set the server
// streams NDJSON and onEvent observes every run as its simulation
// completes. Either way the returned response carries every run.
func (c *Client) Suite(ctx context.Context, req SuiteRequest, onEvent func(SuiteEvent)) (SuiteResponse, error) {
	if onEvent == nil {
		var out SuiteResponse
		err := c.roundTrip(ctx, http.MethodPost, "/v1/suite", req, &out)
		return out, err
	}
	resp, err := c.send(ctx, http.MethodPost, "/v1/suite?stream=1", req)
	if err != nil {
		return SuiteResponse{}, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out SuiteResponse
	sawResult := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev SuiteEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return SuiteResponse{}, fmt.Errorf("client: bad stream line %q: %w", line, err)
		}
		onEvent(ev)
		switch ev.Type {
		case "error":
			return SuiteResponse{}, fmt.Errorf("server: %s", ev.Error)
		case "run":
			if ev.Run != nil {
				out.Runs = append(out.Runs, *ev.Run)
			}
		case "result":
			out.Total = ev.Total
			sawResult = true
		}
	}
	if err := sc.Err(); err != nil {
		return SuiteResponse{}, fmt.Errorf("client: reading stream: %w", err)
	}
	if !sawResult {
		return SuiteResponse{}, fmt.Errorf("client: stream ended without a result event")
	}
	return out, nil
}

// Figure regenerates one paper figure ("1", "3", "4", "56" or
// "energy") over the benchmark subset (nil means all 26) at the given
// instruction budget (0 means the server default).
func (c *Client) Figure(ctx context.Context, figure string, benchmarks []string, insts uint64) (FigureResponse, error) {
	q := url.Values{}
	if len(benchmarks) > 0 {
		q.Set("bench", strings.Join(benchmarks, ","))
	}
	if insts > 0 {
		q.Set("insts", strconv.FormatUint(insts, 10))
	}
	path := "/v1/figures/" + url.PathEscape(figure)
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	var out FigureResponse
	err := c.roundTrip(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// Scenarios lists the registered scenario sweeps.
func (c *Client) Scenarios(ctx context.Context) ([]ScenarioInfo, error) {
	var out []ScenarioInfo
	err := c.roundTrip(ctx, http.MethodGet, "/v1/scenarios", nil, &out)
	return out, err
}

// RunScenario evaluates a registered sweep. With a nil onEvent the
// call blocks for the final result; with onEvent set the server
// streams NDJSON progress and onEvent observes every cell as its
// simulation completes, before the final result is returned.
func (c *Client) RunScenario(ctx context.Context, name string, req ScenarioRunRequest, onEvent func(ScenarioEvent)) (ScenarioRunResponse, error) {
	path := "/v1/scenarios/" + url.PathEscape(name) + "/run"
	if onEvent == nil {
		var out ScenarioRunResponse
		err := c.roundTrip(ctx, http.MethodPost, path, req, &out)
		return out, err
	}
	resp, err := c.send(ctx, http.MethodPost, path+"?stream=1", req)
	if err != nil {
		return ScenarioRunResponse{}, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var final ScenarioRunResponse
	sawResult := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev ScenarioEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return ScenarioRunResponse{}, fmt.Errorf("client: bad stream line %q: %w", line, err)
		}
		onEvent(ev)
		switch ev.Type {
		case "error":
			return ScenarioRunResponse{}, fmt.Errorf("server: %s", ev.Error)
		case "result":
			if ev.Result != nil {
				final = ScenarioRunResponse{Result: *ev.Result, Text: ev.Text}
				sawResult = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return ScenarioRunResponse{}, fmt.Errorf("client: reading stream: %w", err)
	}
	if !sawResult {
		return ScenarioRunResponse{}, fmt.Errorf("client: stream ended without a result event")
	}
	return final, nil
}

// Stats fetches the server's engine/disk/process accounting.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	err := c.roundTrip(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// Health probes /healthz; nil means the server is up and serving.
func (c *Client) Health(ctx context.Context) error {
	return c.roundTrip(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Chaos reports the server's fault-injection state and fired-fault
// counters.
func (c *Client) Chaos(ctx context.Context) (ChaosState, error) {
	var out ChaosState
	err := c.roundTrip(ctx, http.MethodGet, "/v1/chaos", nil, &out)
	return out, err
}

// SetChaos reconfigures the server's fault injection at runtime; an
// empty spec disables it. Returns the resulting state.
func (c *Client) SetChaos(ctx context.Context, spec string) (ChaosState, error) {
	var out ChaosState
	err := c.roundTrip(ctx, http.MethodPost, "/v1/chaos", ChaosRequest{Spec: spec}, &out)
	return out, err
}

// Metrics fetches the raw Prometheus exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	resp, err := c.send(ctx, http.MethodGet, "/metrics", nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// Trace fetches every span the server's recorder retains for one
// trace ID (lowercase hex). The second return is false (nil error)
// when the server holds no spans for the ID — never recorded, or
// already evicted from the ring.
func (c *Client) Trace(ctx context.Context, traceID string) (TraceResponse, bool, error) {
	var out TraceResponse
	err := c.roundTrip(ctx, http.MethodGet, "/v1/trace/"+url.PathEscape(traceID), nil, &out)
	if err != nil {
		if ae, ok := err.(*APIError); ok && ae.Status == http.StatusNotFound {
			return TraceResponse{}, false, nil
		}
		return TraceResponse{}, false, err
	}
	return out, true, nil
}

// Traces lists the server's recent root spans, newest-first, plus the
// replica's dropped-span count; limit <= 0 takes the server default.
func (c *Client) Traces(ctx context.Context, limit int) (TracesResponse, error) {
	path := "/v1/traces"
	if limit > 0 {
		path += "?limit=" + strconv.Itoa(limit)
	}
	var out TracesResponse
	err := c.roundTrip(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// Timeline fetches a cached run's interval telemetry as NDJSON from
// GET /v1/runs/{key}/timeline and reassembles it. The second return is
// false (nil error) when the server retains no timeline for the key —
// not cached, or the result arrived via the disk/peer tier, which
// strips telemetry.
func (c *Client) Timeline(ctx context.Context, key string) (obs.Timeline, bool, error) {
	resp, err := c.send(ctx, http.MethodGet, "/v1/runs/"+url.PathEscape(key)+"/timeline", nil)
	if err != nil {
		if ae, ok := err.(*APIError); ok && ae.Status == http.StatusNotFound {
			return obs.Timeline{}, false, nil
		}
		return obs.Timeline{}, false, err
	}
	defer resp.Body.Close()
	var t obs.Timeline
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	first := true
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if first {
			// Leading meta line: {"key":..., "stride":..., "samples":...}.
			first = false
			var meta struct {
				Stride uint64 `json:"stride"`
			}
			if err := json.Unmarshal(line, &meta); err != nil {
				return obs.Timeline{}, false, fmt.Errorf("client: bad timeline meta %q: %w", line, err)
			}
			t.Stride = meta.Stride
			continue
		}
		var ts obs.TimelineSample
		if err := json.Unmarshal(line, &ts); err != nil {
			return obs.Timeline{}, false, fmt.Errorf("client: bad timeline line %q: %w", line, err)
		}
		t.Samples = append(t.Samples, ts)
	}
	if err := sc.Err(); err != nil {
		return obs.Timeline{}, false, fmt.Errorf("client: reading timeline: %w", err)
	}
	return t, true, nil
}

// traceParentFor renders the traceparent header for a request: the
// identity of the span on ctx when one is there, else a fresh one.
func traceParentFor(ctx context.Context) string {
	if sc := obs.SpanContextFromContext(ctx); sc.IsValid() {
		return sc.TraceParent()
	}
	return obs.SpanContext{Trace: obs.NewTraceID(), Span: obs.NewSpanID()}.TraceParent()
}
