package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"samielsq/internal/experiments"
	"samielsq/internal/obs"
	"samielsq/pkg/client"
)

// ShardedClient drives a set of samie-serve replicas as if they were
// one server: it satisfies the same client.API surface as a
// single-replica pkg/client.Client, so `samie-bench -server` accepts a
// comma-separated replica list unchanged. Each request routes to the
// rendezvous owner of its canonical key — repeated requests for the
// same work always land on the same warm replica — with a per-replica
// circuit breaker (consecutive failures trip, half-open health probe
// readmits), 429/Retry-After-aware jittered retry, and failover down
// the key's weight ranking. Safe for concurrent use.
type ShardedClient struct {
	ring        *Rendezvous
	clients     map[string]*client.Client
	breakers    *breakerSet
	bo          client.Backoff
	retries429  int
	retryBudget int
	log         *slog.Logger

	sweepMu    sync.Mutex
	lastSweep  SweepStats
	sweepTrace string
}

// Option customizes a ShardedClient.
type Option func(*ShardedClient)

// WithHTTPClient substitutes the *http.Client used for every replica.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *ShardedClient) {
		for rep := range c.clients {
			c.clients[rep] = client.New(rep, client.WithHTTPClient(hc))
		}
	}
}

// WithQuarantine sets how long a tripped breaker stays open before its
// half-open probe; default 3s. (The name predates the breaker: the
// open state is what the old quarantine timer became.)
func WithQuarantine(d time.Duration) Option {
	return func(c *ShardedClient) { c.breakers.cooldown = d }
}

// WithBreakerThreshold sets how many consecutive failures trip a
// replica's breaker; default 2, so one flaky exchange never exiles a
// healthy replica. 1 restores trip-on-first-failure.
func WithBreakerThreshold(n int) Option {
	return func(c *ShardedClient) {
		if n >= 1 {
			c.breakers.threshold = n
		}
	}
}

// WithMaxRetryWait caps every backoff sleep, including how long a
// 429's Retry-After hint is honored before the request fails over
// anyway; default 15s.
func WithMaxRetryWait(d time.Duration) Option {
	return func(c *ShardedClient) { c.bo.Cap = d }
}

// WithBackoffSeed pins the deterministic-jitter identity (tests, or
// operators who want distinct coordinators spread explicitly). The
// default derives from the process, so coordinators honoring the same
// Retry-After hint wake staggered instead of in lockstep.
func WithBackoffSeed(seed uint64) Option {
	return func(c *ShardedClient) { c.bo.Seed = seed }
}

// WithLogger routes the coordinator's operational log lines (stream
// resumes, replica loss) to l; by default they are discarded so
// library embedders stay quiet.
func WithLogger(l *slog.Logger) Option {
	return func(c *ShardedClient) {
		if l != nil {
			c.log = l
		}
	}
}

// WithRetryBudget bounds the total number of shard retries (stream
// resumes, re-shards after replica loss, throttle rounds) one RunSpecs
// sweep may spend before giving up; default 32. See SweepStats.
func WithRetryBudget(n int) Option {
	return func(c *ShardedClient) {
		if n >= 0 {
			c.retryBudget = n
		}
	}
}

// New builds the fabric over the replica base URLs (e.g.
// "http://host-a:8344"). At least one replica is required; duplicates
// are collapsed.
func New(replicas []string, opts ...Option) (*ShardedClient, error) {
	urls := make([]string, 0, len(replicas))
	for _, r := range replicas {
		if r = strings.TrimRight(strings.TrimSpace(r), "/"); r != "" {
			urls = append(urls, r)
		}
	}
	ring := NewRendezvous(urls)
	if len(ring.Replicas()) == 0 {
		return nil, fmt.Errorf("cluster: at least one replica URL is required")
	}
	c := &ShardedClient{
		ring:        ring,
		clients:     map[string]*client.Client{},
		breakers:    newBreakerSet(2, 3*time.Second),
		bo:          client.Backoff{Cap: 15 * time.Second, Seed: processSeed()},
		retries429:  2,
		retryBudget: 32,
		log:         slog.New(slog.DiscardHandler),
	}
	for _, rep := range ring.Replicas() {
		c.clients[rep] = client.New(rep)
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// processSeed derives a per-coordinator jitter identity, so separate
// coordinator processes de-synchronize even when configured
// identically. Within one process the schedule is deterministic.
func processSeed() uint64 {
	return uint64(os.Getpid())<<32 ^ uint64(time.Now().UnixNano())
}

// Verify the fabric keeps satisfying the shared driver surface.
var _ client.API = (*ShardedClient)(nil)

// Replicas returns the configured replica URLs, sorted.
func (c *ShardedClient) Replicas() []string { return c.ring.Replicas() }

// markDown records a failed exchange with a replica; enough
// consecutive failures trip its breaker.
func (c *ShardedClient) markDown(rep string) {
	c.breakers.failure(rep)
}

// markUp closes a replica's breaker after a successful exchange.
func (c *ShardedClient) markUp(rep string) {
	c.breakers.success(rep)
}

// replicaState reports whether a replica is currently usable and
// whether it should be health-probed before carrying a real request
// (its breaker is half-open).
func (c *ShardedClient) replicaState(rep string) (usable, probeFirst bool) {
	return c.breakers.state(rep)
}

// candidates returns the failover order for key restricted to usable
// replicas; when every breaker is open it returns the full ranking
// (trying a possibly-dead replica beats failing without trying).
func (c *ShardedClient) candidates(key string) []string {
	ranked := c.ring.Ranked(key)
	usable := ranked[:0:0]
	for _, rep := range ranked {
		if ok, _ := c.replicaState(rep); ok {
			usable = append(usable, rep)
		}
	}
	if len(usable) == 0 {
		return ranked
	}
	return usable
}

// reprobe applies the half-open policy for one replica: when its
// breaker's cooldown just lapsed, a /healthz probe decides readmission
// (markUp, closing the breaker) or re-opening (markDown, returning the
// probe error). Both routing walks — do and healthyCandidate — share
// this, so the policy lives in one place. Callers decide separately
// whether a replica with an open breaker may be tried at all.
func (c *ShardedClient) reprobe(ctx context.Context, rep string) error {
	if _, probe := c.replicaState(rep); !probe {
		return nil
	}
	if err := c.clients[rep].Health(ctx); err != nil {
		c.markDown(rep)
		return err
	}
	c.markUp(rep)
	return nil
}

// healthyCandidate returns the highest-ranked replica for key that is
// usable right now, health-probing any whose quarantine just expired
// so a still-dead replica is not handed fresh work on faith. When
// every replica is down it returns the key's owner — trying beats
// failing without trying.
func (c *ShardedClient) healthyCandidate(ctx context.Context, key string) string {
	ranked := c.ring.Ranked(key)
	for _, rep := range ranked {
		if usable, _ := c.replicaState(rep); !usable {
			continue
		}
		if c.reprobe(ctx, rep) != nil {
			continue
		}
		return rep
	}
	return ranked[0]
}

// permanent reports a response that no other replica would answer
// differently: the request itself is wrong (4xx short of the 429
// saturation signal).
func permanent(err error) bool {
	var ae *client.APIError
	return errors.As(err, &ae) && ae.Status/100 == 4 && ae.Status != http.StatusTooManyRequests
}

// backoff sleeps before retrying rep, under the shared client.Backoff
// policy: a 429's Retry-After hint is honored (bounded by
// WithMaxRetryWait) with deterministic jitter layered on top, so N
// coordinators given the same hint wake staggered instead of
// re-stampeding the replica in lockstep; other errors get the capped
// exponential schedule. The hint is APIError.RetryAfter, which
// pkg/client stamps through its single client.ParseRetryAfter parser
// (delta-seconds and HTTP-date forms, clamped non-negative) — the
// fabric never re-reads headers itself.
func (c *ShardedClient) backoff(ctx context.Context, rep string, attempt int, err error) error {
	return c.bo.Sleep(ctx, rep, attempt, err)
}

// do routes one request: try the key's replicas in weight order,
// health-probing a just-unquarantined replica first, honoring
// Retry-After on 429 (bounded retries per replica), quarantining and
// failing over on transport or server errors.
func (c *ShardedClient) do(ctx context.Context, key string, f func(cl *client.Client) error) error {
	var lastErr error
	for _, rep := range c.candidates(key) {
		cl := c.clients[rep]
		if err := c.reprobe(ctx, rep); err != nil {
			lastErr = err
			continue
		}
		for attempt := 0; ; attempt++ {
			err := f(cl)
			if err == nil {
				c.markUp(rep)
				return nil
			}
			if ctx.Err() != nil {
				return err
			}
			if permanent(err) {
				return err
			}
			if client.IsThrottled(err) && attempt < c.retries429 {
				// Saturated, not dead: the replica asked us to come
				// back. Honor the hint before failing over.
				if werr := c.backoff(ctx, rep, attempt, err); werr != nil {
					return werr
				}
				continue
			}
			// Transport failure, server error, or an exhausted 429
			// budget: count it against the breaker and fall through to
			// the next-ranked replica.
			if !client.IsThrottled(err) {
				c.markDown(rep)
			}
			lastErr = err
			break
		}
	}
	return fmt.Errorf("cluster: every replica failed: %w", lastErr)
}

// Run executes one simulation on the replica owning the spec's
// canonical key, so identical requests from any coordinator coalesce
// on the same warm replica.
func (c *ShardedClient) Run(ctx context.Context, req client.RunRequest) (client.RunResponse, error) {
	spec, err := req.Spec()
	if err != nil {
		return client.RunResponse{}, err
	}
	key := experiments.Key(spec)
	var out client.RunResponse
	err = c.do(ctx, key, func(cl *client.Client) error {
		var e error
		out, e = cl.Run(ctx, req)
		return e
	})
	return out, err
}

// ProbeRun asks the cluster whether any replica already holds the
// result for a canonical key, checking the owner first and falling
// back down the ranking (a rebalance may have left the artifact on a
// previous owner).
func (c *ShardedClient) ProbeRun(ctx context.Context, key string) (client.RunResponse, bool, error) {
	var lastErr error
	for _, rep := range c.candidates(key) {
		out, ok, err := c.clients[rep].ProbeRun(ctx, key)
		if err != nil {
			if ctx.Err() != nil {
				return client.RunResponse{}, false, err
			}
			if permanent(err) {
				// The probe itself is malformed (4xx): no replica would
				// answer differently, and quarantining healthy replicas
				// over the requester's mistake would blind the fabric —
				// mirror do()/RunSpecs and fail fast instead.
				return client.RunResponse{}, false, err
			}
			c.markDown(rep)
			lastErr = err
			continue
		}
		c.markUp(rep)
		if ok {
			return out, true, nil
		}
	}
	if lastErr != nil {
		return client.RunResponse{}, false, fmt.Errorf("cluster: probe failed on every reachable replica: %w", lastErr)
	}
	return client.RunResponse{}, false, nil
}

// Figure regenerates one paper figure on a single replica chosen by
// rendezvous over the figure request's identity, so repeated
// regenerations reuse the same warm run cache.
func (c *ShardedClient) Figure(ctx context.Context, figure string, benchmarks []string, insts uint64) (client.FigureResponse, error) {
	key := fmt.Sprintf("figure|%s|%s|%d", figure, strings.Join(benchmarks, ","), insts)
	var out client.FigureResponse
	err := c.do(ctx, key, func(cl *client.Client) error {
		var e error
		out, e = cl.Figure(ctx, figure, benchmarks, insts)
		return e
	})
	return out, err
}

// Scenarios lists the registered sweeps from any healthy replica (the
// registry is identical across a homogeneous deployment).
func (c *ShardedClient) Scenarios(ctx context.Context) ([]client.ScenarioInfo, error) {
	var out []client.ScenarioInfo
	err := c.do(ctx, "scenarios", func(cl *client.Client) error {
		var e error
		out, e = cl.Scenarios(ctx)
		return e
	})
	return out, err
}

// RunScenario evaluates a registered sweep on a single replica chosen
// by rendezvous over the sweep's identity. For a sweep sharded across
// every replica, use Scenario instead.
//
// Failover replays the whole stream on the next replica, so the
// observer is shielded from the retry: each (benchmark, variant) cell
// is forwarded at most once with a monotonically rewritten Done
// counter, and mid-failover "error" events are swallowed (a terminal
// failure still surfaces as the returned error).
func (c *ShardedClient) RunScenario(ctx context.Context, name string, req client.ScenarioRunRequest, onEvent func(client.ScenarioEvent)) (client.ScenarioRunResponse, error) {
	key := fmt.Sprintf("scenario|%s|%s|%d", name, strings.Join(req.Benchmarks, ","), req.Insts)
	wrapped := onEvent
	if onEvent != nil {
		seen := map[string]bool{}
		forwarded := 0
		wrapped = func(ev client.ScenarioEvent) {
			switch ev.Type {
			case "cell":
				cellKey := ev.Benchmark + "\x00" + ev.Variant
				if seen[cellKey] {
					return
				}
				seen[cellKey] = true
				forwarded++
				ev.Done = forwarded
				onEvent(ev)
			case "result":
				onEvent(ev)
			}
		}
	}
	var out client.ScenarioRunResponse
	err := c.do(ctx, key, func(cl *client.Client) error {
		var e error
		out, e = cl.RunScenario(ctx, name, req, wrapped)
		return e
	})
	return out, err
}

// Stats aggregates /v1/stats across every reachable replica: counters
// and capacity gauges sum, uptime reports the longest-lived replica.
// An error is returned only when no replica answers.
func (c *ShardedClient) Stats(ctx context.Context) (client.StatsResponse, error) {
	per, err := c.PerReplicaStats(ctx)
	if err != nil {
		return client.StatsResponse{}, err
	}
	agg := client.StatsResponse{RunPhases: obs.PhaseStats{}}
	// Fold replicas in sorted-URL order: the aggregate includes
	// float64 sums (energy, histogram totals, occupancy aggregates)
	// whose rounding depends on addition order, so folding in map
	// order would make repeated -stats calls disagree in the last
	// bits. Sorting pins the fold order fleet-wide.
	reps := make([]string, 0, len(per))
	for rep := range per {
		reps = append(reps, rep)
	}
	sort.Strings(reps)
	for _, rep := range reps {
		st := per[rep]
		agg.RunPhases.Add(st.RunPhases)
		agg.Engine.Requests += st.Engine.Requests
		agg.Engine.Executed += st.Engine.Executed
		agg.Engine.Hits += st.Engine.Hits
		agg.Engine.Inflight += st.Engine.Inflight
		agg.Engine.QueueDepth += st.Engine.QueueDepth
		agg.Engine.Canceled += st.Engine.Canceled
		agg.Engine.Evictions += st.Engine.Evictions
		agg.Disk.Hits += st.Disk.Hits
		agg.Disk.Misses += st.Disk.Misses
		agg.Disk.Writes += st.Disk.Writes
		agg.DistinctRuns += st.DistinctRuns
		agg.Workers += st.Workers
		agg.MaxConcurrent += st.MaxConcurrent
		agg.InflightHTTP += st.InflightHTTP
		agg.RequestsServed += st.RequestsServed
		agg.Throttled += st.Throttled
		agg.ProbeHits += st.ProbeHits
		agg.ProbeMisses += st.ProbeMisses
		agg.SuiteSpecs += st.SuiteSpecs
		agg.Store.Add(st.Store)
		agg.Preloaded += st.Preloaded
		agg.Goroutines += st.Goroutines
		agg.HeapBytes += st.HeapBytes
		agg.TraceDropped += st.TraceDropped
		// Timeline rollups merge exactly-once across the fleet: only the
		// replica that simulated a run holds its telemetry, so summing
		// per-benchmark aggregates and energy never double-counts.
		if len(st.TimelineStats) > 0 && agg.TimelineStats == nil {
			agg.TimelineStats = map[string]obs.OccupancyAgg{}
		}
		//lint:ordered distinct benchmarks merge into distinct entries; cross-replica order is pinned by the sorted fold above
		for bench, oa := range st.TimelineStats {
			cur := agg.TimelineStats[bench]
			cur.Add(oa)
			agg.TimelineStats[bench] = cur
		}
		if len(st.EnergyPJ) > 0 && agg.EnergyPJ == nil {
			agg.EnergyPJ = map[string]float64{}
		}
		for k, v := range st.EnergyPJ {
			agg.EnergyPJ[k] += v
		}
		if st.UptimeSeconds > agg.UptimeSeconds {
			agg.UptimeSeconds = st.UptimeSeconds
		}
		if agg.CacheDir == "" {
			agg.CacheDir = st.CacheDir
		}
	}
	return agg, nil
}

// PerReplicaStats fetches /v1/stats from every replica, keyed by
// replica URL; unreachable replicas are omitted. An error is returned
// only when no replica answers.
func (c *ShardedClient) PerReplicaStats(ctx context.Context) (map[string]client.StatsResponse, error) {
	out := map[string]client.StatsResponse{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	var lastErr error
	for _, rep := range c.Replicas() {
		wg.Add(1)
		go func(rep string) {
			defer wg.Done()
			st, err := c.clients[rep].Stats(ctx)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				lastErr = err
				return
			}
			out[rep] = st
		}(rep)
	}
	wg.Wait()
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: no replica answered /v1/stats: %w", lastErr)
	}
	return out, nil
}

// Health probes every replica's /healthz concurrently; nil means at
// least one replica is up (the fabric can serve), with quarantine
// state refreshed for all of them.
func (c *ShardedClient) Health(ctx context.Context) error {
	var wg sync.WaitGroup
	errs := make([]error, len(c.Replicas()))
	reps := c.Replicas()
	for i, rep := range reps {
		wg.Add(1)
		go func(i int, rep string) {
			defer wg.Done()
			if err := c.clients[rep].Health(ctx); err != nil {
				c.markDown(rep)
				errs[i] = err
			} else {
				c.markUp(rep)
			}
		}(i, rep)
	}
	wg.Wait()
	var lastErr error
	for i, err := range errs {
		if err == nil {
			return nil
		}
		lastErr = fmt.Errorf("%s: %w", reps[i], err)
	}
	return fmt.Errorf("cluster: no healthy replica: %w", lastErr)
}

// SweepTraceID returns the trace ID of the most recent RunSpecs sweep
// (also the one behind Suite/Scenario), or "" when tracing was
// disabled during the sweep. Feed it to TraceSpans to reassemble the
// fleet-wide trace tree.
func (c *ShardedClient) SweepTraceID() string {
	c.sweepMu.Lock()
	defer c.sweepMu.Unlock()
	return c.sweepTrace
}

// TraceSpans collects every span the fleet retained for one trace:
// each replica's GET /v1/trace/{id} is queried concurrently and the
// results are merged, with each span's "source" attribute set to the
// replica URL that recorded it (coordinator-side spans are the
// caller's to contribute — they live in its own obs recorder). A
// replica that never saw the trace (404) contributes nothing; an
// unreachable replica is skipped the same way, so the merged view is
// best-effort by design. The caller typically appends its local
// recorder's spans and hands the lot to obs.ChromeTrace.
func (c *ShardedClient) TraceSpans(ctx context.Context, traceID string) []obs.SpanRecord {
	spans, _ := c.TraceData(ctx, traceID)
	return spans
}

// TraceData is TraceSpans plus the counter tracks the fleet retained
// for the trace: each replica's occupancy/IPC samples come back with
// CounterTrack.Source set to the replica URL, so a merged Perfetto
// export renders each replica's counters in its own lane next to its
// spans.
func (c *ShardedClient) TraceData(ctx context.Context, traceID string) ([]obs.SpanRecord, []obs.CounterTrack) {
	var mu sync.Mutex
	var wg sync.WaitGroup
	var all []obs.SpanRecord
	var tracks []obs.CounterTrack
	for _, rep := range c.Replicas() {
		wg.Add(1)
		go func(rep string) {
			defer wg.Done()
			tr, ok, err := c.clients[rep].Trace(ctx, traceID)
			if err != nil || !ok {
				return
			}
			for i := range tr.Spans {
				tr.Spans[i].Attrs = append(tr.Spans[i].Attrs, obs.SpanAttr{Key: "source", Value: rep})
			}
			for i := range tr.Counters {
				tr.Counters[i].Source = rep
			}
			mu.Lock()
			all = append(all, tr.Spans...)
			tracks = append(tracks, tr.Counters...)
			mu.Unlock()
		}(rep)
	}
	wg.Wait()
	sort.SliceStable(all, func(i, j int) bool { return all[i].Start.Before(all[j].Start) })
	sort.SliceStable(tracks, func(i, j int) bool {
		if tracks[i].Source != tracks[j].Source {
			return tracks[i].Source < tracks[j].Source
		}
		return tracks[i].Name < tracks[j].Name
	})
	return all, tracks
}
