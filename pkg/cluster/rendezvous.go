// Package cluster is the client-side fabric that scales samie-serve
// horizontally: deterministic rendezvous (HRW) hashing partitions the
// canonical run-key space over a set of replica URLs, so every replica
// owns a stable shard of the simulation space and concurrent
// coordinators agree on placement with no coordination service.
//
// The pieces compose bottom-up:
//
//   - Rendezvous ranks replicas per key with highest-random-weight
//     hashing: adding or removing a replica moves only the keys it
//     owns (~1/N of the space), everything else stays put.
//   - ShardedClient implements the same client.API surface as a
//     single-replica pkg/client.Client, routing each request to its
//     key's owner with health quarantine, 429/Retry-After-aware retry
//     and failover to the next-highest-weight replica.
//   - RunSpecs fans an explicit spec set out as per-replica shards
//     through POST /v1/suite, re-sharding a failed replica's remaining
//     work onto the survivors mid-sweep.
//   - Suite and Scenario rebuild the paper artefacts locally from the
//     collected results, byte-identical to the single-node harnesses.
package cluster

import (
	"hash/fnv"
	"io"
	"slices"
	"sort"
)

// Rendezvous deterministically ranks a replica set per key using
// highest-random-weight hashing. The weight function is pinned (FNV-1a
// over "replica\x00key"), so shard ownership is reproducible across
// processes, restarts and independently-configured coordinators — the
// property that lets any number of clients agree on which replica owns
// a canonical run key with no shared state.
type Rendezvous struct {
	replicas []string
}

// NewRendezvous builds a ring over the replica identifiers (typically
// base URLs), deduplicated; input order does not matter.
func NewRendezvous(replicas []string) *Rendezvous {
	seen := map[string]bool{}
	rs := make([]string, 0, len(replicas))
	for _, r := range replicas {
		if r != "" && !seen[r] {
			seen[r] = true
			rs = append(rs, r)
		}
	}
	sort.Strings(rs)
	return &Rendezvous{replicas: rs}
}

// Replicas returns the ring members, sorted.
func (r *Rendezvous) Replicas() []string { return slices.Clone(r.replicas) }

// weight is the pinned HRW weight: FNV-1a over replica, a zero
// separator, and the key. Do not change it — every deployed
// coordinator must compute identical weights.
//
//samie:deterministic
func weight(replica, key string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, replica)
	h.Write([]byte{0})
	io.WriteString(h, key)
	return h.Sum64()
}

// Owner returns the replica with the highest weight for key (ties, of
// probability ~2^-64, break toward the lexicographically smaller
// replica). Empty string only for an empty ring.
func (r *Rendezvous) Owner(key string) string {
	var best string
	var bestW uint64
	for _, rep := range r.replicas {
		if w := weight(rep, key); best == "" || w > bestW {
			best, bestW = rep, w
		}
	}
	return best
}

// Ranked returns every replica ordered by descending weight for key:
// the failover order. Ranked(key)[0] == Owner(key).
func (r *Rendezvous) Ranked(key string) []string {
	type rw struct {
		rep string
		w   uint64
	}
	rws := make([]rw, 0, len(r.replicas))
	for _, rep := range r.replicas {
		rws = append(rws, rw{rep, weight(rep, key)})
	}
	sort.Slice(rws, func(i, j int) bool {
		if rws[i].w != rws[j].w {
			return rws[i].w > rws[j].w
		}
		return rws[i].rep < rws[j].rep
	})
	out := make([]string, len(rws))
	for i, x := range rws {
		out[i] = x.rep
	}
	return out
}
