package cluster

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"samielsq/internal/experiments"
	"samielsq/internal/server"
	"samielsq/pkg/client"
)

// refWeight independently reimplements the pinned HRW weight (FNV-1a
// over "replica\x00key"), so a silent change to the production hash —
// which would strand every deployed coordinator's shard plan — fails
// this test.
func refWeight(rep, key string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(rep); i++ {
		h ^= uint64(rep[i])
		h *= prime
	}
	h ^= 0
	h *= prime
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return h
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = experiments.Key(experiments.RunSpec{
			Benchmark: "gzip", Insts: uint64(1000 + i), Model: experiments.ModelSAMIE,
		})
	}
	return keys
}

func TestRendezvousDeterministic(t *testing.T) {
	reps := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	shuffled := append([]string(nil), reps...)
	rand.New(rand.NewSource(7)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	r1, r2 := NewRendezvous(reps), NewRendezvous(shuffled)
	for _, key := range testKeys(500) {
		if r1.Owner(key) != r2.Owner(key) {
			t.Fatalf("owner for %q depends on replica input order", key)
		}
		// Owner matches the independently-computed reference: the hash
		// is pinned, so a fresh process (a "restart") must agree.
		wantRep, wantW := "", uint64(0)
		for _, rep := range reps {
			if w := refWeight(rep, key); wantRep == "" || w > wantW {
				wantRep, wantW = rep, w
			}
		}
		if got := r1.Owner(key); got != wantRep {
			t.Fatalf("owner for %q = %s, reference says %s", key, got, wantRep)
		}
		if ranked := r1.Ranked(key); ranked[0] != r1.Owner(key) || len(ranked) != len(reps) {
			t.Fatalf("Ranked disagrees with Owner for %q: %v", key, ranked)
		}
	}
}

func TestRendezvousMinimalDisruption(t *testing.T) {
	base := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	grown := append(append([]string(nil), base...), "http://e:1")
	rBase, rGrown := NewRendezvous(base), NewRendezvous(grown)

	keys := testKeys(2000)
	moved := 0
	for _, key := range keys {
		was, is := rBase.Owner(key), rGrown.Owner(key)
		if was != is {
			moved++
			// HRW's guarantee: a key only moves if the NEW replica now
			// owns it; ownership never migrates between survivors.
			if is != "http://e:1" {
				t.Fatalf("key %q moved %s -> %s, not to the added replica", key, was, is)
			}
		}
	}
	// Expect ~1/5 of the keys on the new replica; allow wide slack for
	// hash variance but fail on gross imbalance.
	want := len(keys) / len(grown)
	if moved > want*3/2 || moved < want/2 {
		t.Errorf("%d of %d keys moved when growing 4->5 replicas, want about %d", moved, len(keys), want)
	}

	// Shrinking: only the removed replica's keys move, to survivors.
	shrunk := NewRendezvous(base[:3])
	movedOut := 0
	for _, key := range keys {
		was, is := rBase.Owner(key), shrunk.Owner(key)
		if was == "http://d:1" {
			movedOut++
			if is == was {
				t.Fatalf("key %q still owned by the removed replica", key)
			}
		} else if was != is {
			t.Fatalf("key %q migrated between survivors (%s -> %s)", key, was, is)
		}
	}
	if movedOut == 0 {
		t.Fatal("removed replica owned no keys; test is vacuous")
	}
}

// bootReplica starts one samie-serve service over a fresh batch; the
// kill switch makes every subsequent request (healthz included) fail
// with 503, simulating a stopped replica without httptest's
// close-blocks-on-streams behavior.
func bootReplica(t *testing.T, workers int) (url string, batch *experiments.Batch, kill *atomic.Bool) {
	t.Helper()
	batch = experiments.NewBatch(workers)
	s, err := server.New(server.Config{
		Batch:        batch,
		Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
		DefaultInsts: 5_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	kill = &atomic.Bool{}
	h := s.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if kill.Load() {
			http.Error(w, "replica stopped", http.StatusServiceUnavailable)
			return
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts.URL, batch, kill
}

func TestShardedRunRoutesToOwner(t *testing.T) {
	urlA, batchA, _ := bootReplica(t, 1)
	urlB, batchB, _ := bootReplica(t, 1)
	c, err := New([]string{urlA, urlB})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	execCount := func(rep string) int64 {
		if rep == urlA {
			return batchA.Stats().Executed
		}
		return batchB.Stats().Executed
	}
	for i := 0; i < 4; i++ {
		req := client.RunRequest{Benchmark: "gzip", Model: client.ModelSAMIE, Insts: uint64(5_000 + i)}
		spec, _ := req.Spec()
		owner := c.ring.Owner(experiments.Key(spec))
		before := execCount(owner)
		if _, err := c.Run(ctx, req); err != nil {
			t.Fatal(err)
		}
		if after := execCount(owner); after != before+1 {
			t.Errorf("run %d did not execute on its owner %s", i, owner)
		}
	}
	// Identical re-requests hit the same warm replica's cache: total
	// executions stay put.
	req := client.RunRequest{Benchmark: "gzip", Model: client.ModelSAMIE, Insts: 5_000}
	if _, err := c.Run(ctx, req); err != nil {
		t.Fatal(err)
	}
	if tot := batchA.Stats().Executed + batchB.Stats().Executed; tot != 4 {
		t.Errorf("cluster executed %d simulations for 4 distinct specs", tot)
	}
}

func TestShardedFailoverOnUnhealthy(t *testing.T) {
	urlA, batchA, killA := bootReplica(t, 1)
	urlB, batchB, _ := bootReplica(t, 1)
	c, err := New([]string{urlA, urlB}, WithQuarantine(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Find a spec owned by A, then stop A: the run must fail over to B.
	var req client.RunRequest
	found := false
	for i := 0; i < 64 && !found; i++ {
		req = client.RunRequest{Benchmark: "swim", Model: client.ModelConventional, Insts: uint64(5_000 + i)}
		spec, _ := req.Spec()
		found = c.ring.Owner(experiments.Key(spec)) == urlA
	}
	if !found {
		t.Fatal("no spec owned by replica A in 64 tries")
	}
	killA.Store(true)
	if _, err := c.Run(ctx, req); err != nil {
		t.Fatalf("failover run failed: %v", err)
	}
	if batchB.Stats().Executed != 1 || batchA.Stats().Executed != 0 {
		t.Errorf("failover executed on A=%d B=%d, want 0/1",
			batchA.Stats().Executed, batchB.Stats().Executed)
	}
	// A is quarantined now: health still reports the fabric serving.
	if err := c.Health(ctx); err != nil {
		t.Fatalf("fabric unhealthy with one live replica: %v", err)
	}

	// After recovery and quarantine expiry, A serves its keys again.
	killA.Store(false)
	time.Sleep(60 * time.Millisecond)
	req2 := req
	req2.Insts += 1000
	for i := 0; i < 64; i++ {
		spec, _ := req2.Spec()
		if c.ring.Owner(experiments.Key(spec)) == urlA {
			break
		}
		req2.Insts++
	}
	before := batchA.Stats().Executed
	if _, err := c.Run(ctx, req2); err != nil {
		t.Fatal(err)
	}
	if batchA.Stats().Executed != before+1 {
		t.Error("recovered replica did not resume serving its keys")
	}
}

func TestShardedRetryAfterHonored(t *testing.T) {
	// A replica that sheds the first request with 429 + Retry-After
	// must be retried, not quarantined or failed.
	var calls atomic.Int64
	urlB, _, _ := bootReplica(t, 1)
	shedding := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"saturated"}`, http.StatusTooManyRequests)
			return
		}
		// Delegate everything else to a real replica's handler shape:
		// simplest is to proxy the run to the healthy server.
		resp, err := http.Post(urlB+r.URL.Path, "application/json", r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	t.Cleanup(shedding.Close)

	c, err := New([]string{shedding.URL}, WithMaxRetryWait(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.Run(context.Background(), client.RunRequest{Benchmark: "gzip", Model: client.ModelSAMIE, Insts: 5_000}); err != nil {
		t.Fatalf("throttled run never succeeded: %v", err)
	}
	if calls.Load() < 2 {
		t.Errorf("replica saw %d calls, want the 429 retried", calls.Load())
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("retry did not honor the (capped) Retry-After wait: %s", elapsed)
	}
}

func TestRunSpecsExactlyOnceAndAggregatedStats(t *testing.T) {
	urlA, batchA, _ := bootReplica(t, 2)
	urlB, batchB, _ := bootReplica(t, 2)
	c, err := New([]string{urlA, urlB})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	specs, rows, err := experiments.ScenarioSpecs("distrib-banking", []string{"gzip", "swim"}, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	var progress atomic.Int64
	results, err := c.RunSpecs(ctx, specs, func(p Progress) { progress.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(specs) || int(progress.Load()) != len(specs) {
		t.Fatalf("collected %d results and %d progress events for %d specs",
			len(results), progress.Load(), len(specs))
	}
	execA, execB := batchA.Stats().Executed, batchB.Stats().Executed
	if execA+execB != int64(len(specs)) {
		t.Errorf("cluster executed %d+%d simulations for %d distinct specs", execA, execB, len(specs))
	}
	// Exact placement: each replica executed precisely the keys it
	// owns. (With few specs and random test ports, a >0-per-replica
	// assertion would be a coin-flip; ownership is deterministic.)
	var ownedA int64
	for _, s := range specs {
		if c.ring.Owner(experiments.Key(s)) == urlA {
			ownedA++
		}
	}
	if execA != ownedA || execB != int64(len(specs))-ownedA {
		t.Errorf("executions A=%d B=%d do not match ownership A=%d B=%d",
			execA, execB, ownedA, int64(len(specs))-ownedA)
	}

	// The aggregated stats endpoint sees the same totals.
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Engine.Executed != int64(len(specs)) {
		t.Errorf("aggregated executed %d, want %d", st.Engine.Executed, len(specs))
	}
	if st.Workers != batchA.Workers()+batchB.Workers() {
		t.Errorf("aggregated workers %d", st.Workers)
	}

	// Scenario assembly over the same cluster renders byte-identically
	// to the library harness (and re-executes nothing).
	res, err := c.Scenario(ctx, "distrib-banking", []string{"gzip", "swim"}, 5_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := experiments.RunScenario("distrib-banking", rows, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != direct.String() {
		t.Errorf("cluster scenario differs from library:\ncluster:\n%s\nlibrary:\n%s", res.String(), direct.String())
	}
	if tot := batchA.Stats().Executed + batchB.Stats().Executed; tot != int64(len(specs)) {
		t.Errorf("scenario assembly re-executed: %d total executions", tot)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty replica list accepted")
	}
	c, err := New([]string{" http://a:1/ ", "http://a:1", "http://b:1"})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Replicas(); len(got) != 2 {
		t.Fatalf("duplicate replicas not collapsed: %v", got)
	}
	if _, err := c.Run(context.Background(), client.RunRequest{Benchmark: "gzip", Model: "bogus"}); err == nil {
		t.Fatal("invalid model accepted before routing")
	}
}

func ExampleNewRendezvous() {
	r := NewRendezvous([]string{"http://a:8344", "http://b:8344"})
	key := experiments.Key(experiments.RunSpec{Benchmark: "swim", Model: experiments.ModelSAMIE})
	fmt.Println(r.Owner(key) != "")
	// Output: true
}

func TestRunSpecsFailsFastOnRejectedShard(t *testing.T) {
	// Replicas with a tight -max-insts cap: a shard above it is a 400
	// that no replica can ever accept. The sweep must fail promptly
	// without quarantining the (healthy) replicas or burning stall
	// rounds on a doomed request.
	boot := func() (string, *atomic.Bool) {
		batch := experiments.NewBatch(1)
		s, err := server.New(server.Config{
			Batch:    batch,
			Logger:   slog.New(slog.NewTextHandler(io.Discard, nil)),
			MaxInsts: 10_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		return ts.URL, nil
	}
	urlA, _ := boot()
	urlB, _ := boot()
	c, err := New([]string{urlA, urlB})
	if err != nil {
		t.Fatal(err)
	}
	specs := []experiments.RunSpec{
		{Benchmark: "gzip", Insts: 1_000_000, Model: experiments.ModelSAMIE},
		{Benchmark: "swim", Insts: 1_000_000, Model: experiments.ModelSAMIE},
	}
	start := time.Now()
	_, err = c.RunSpecs(context.Background(), specs, nil)
	if err == nil {
		t.Fatal("over-cap shard accepted")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("rejected shard took %s to fail; should fail fast, not stall-retry", elapsed)
	}
	// The replicas were never at fault: both must still be usable.
	for _, rep := range c.Replicas() {
		if usable, _ := c.replicaState(rep); !usable {
			t.Errorf("healthy replica %s quarantined over a client error", rep)
		}
	}
}

func TestRunSpecsChunksLargeShards(t *testing.T) {
	// Shards larger than shardChunk split into sequential bounded
	// requests; every run still arrives exactly once.
	old := shardChunk
	shardChunk = 2
	defer func() { shardChunk = old }()

	urlA, batchA, _ := bootReplica(t, 2)
	urlB, batchB, _ := bootReplica(t, 2)
	c, err := New([]string{urlA, urlB})
	if err != nil {
		t.Fatal(err)
	}
	specs, _, err := experiments.ScenarioSpecs("shared-lsq-sizes", []string{"gzip", "swim"}, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) <= shardChunk {
		t.Fatalf("test needs more than %d specs to chunk, have %d", shardChunk, len(specs))
	}
	results, err := c.RunSpecs(context.Background(), specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(specs) {
		t.Fatalf("collected %d of %d results", len(results), len(specs))
	}
	if tot := batchA.Stats().Executed + batchB.Stats().Executed; tot != int64(len(specs)) {
		t.Errorf("chunked sweep executed %d simulations for %d distinct specs", tot, len(specs))
	}
}
